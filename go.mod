module fuzzydb

go 1.23
