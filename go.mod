module fuzzydb

go 1.22
