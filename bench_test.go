package fuzzydb_test

// One benchmark per experiment in the EXPERIMENTS.md index (E1–E14).
// Each benchmark measures the wall-clock of the algorithm under its
// experiment's workload and reports the paper's quantity of interest —
// the middleware access cost — via b.ReportMetric, so `go test -bench=.`
// regenerates both the performance and the cost shape of every claim.
//
// Workload generation is excluded from timing: databases are drawn once
// per size outside the timed loop.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fuzzydb"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

// runCost executes one evaluation on fresh counters and returns the
// unweighted middleware cost.
func runCost(b *testing.B, alg core.Algorithm, db *scoredb.Database, f agg.Func, k int, opts ...core.EvalOption) float64 {
	b.Helper()
	srcs := make([]subsys.Source, db.M())
	for i := range srcs {
		srcs[i] = subsys.FromList(db.List(i))
	}
	_, c, err := core.Evaluate(context.Background(), alg, srcs, f, k, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return float64(c.Sum())
}

// benchOver runs alg over the given databases round-robin. The reported
// middleware-cost/op is the exact mean over the db set, computed once
// outside the timed loop: costs are deterministic per database, so the
// metric is independent of b.N and bit-stable across runs and executors
// (cmd/benchjson -compare relies on this).
func benchOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k int, opts ...core.EvalOption) {
	b.Helper()
	var mean float64
	for _, db := range dbs {
		mean += runCost(b, alg, db, f, k, opts...)
	}
	mean /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCost(b, alg, dbs[i%len(dbs)], f, k, opts...)
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
}

func genDBs(n, m, trials int, law scoredb.GradeLaw, seed uint64) []*scoredb.Database {
	dbs := make([]*scoredb.Database, trials)
	for i := range dbs {
		dbs[i] = scoredb.Generator{N: n, M: m, Law: law, Seed: seed + uint64(i)}.MustGenerate()
	}
	return dbs
}

// BenchmarkE1_A0_SqrtN — Thm 5.3, m=2: sublinear cost, fitted exponent 0.5.
func BenchmarkE1_A0_SqrtN(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchOver(b, core.A0{}, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE2_A0_GeneralM — Thm 5.3: exponent (m−1)/m across m.
func BenchmarkE2_A0_GeneralM(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchOver(b, core.A0{}, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE1_A0_SqrtN_Parallel — the E1 workload under the concurrent
// executor (one worker per list): identical cost metrics by
// construction, wall-clock tracked against the serial run.
func BenchmarkE1_A0_SqrtN_Parallel(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchOver(b, core.A0{}, dbs, agg.Min, 10, core.WithExecutor(core.Concurrent{P: 2}))
		})
	}
}

// BenchmarkE2_A0_GeneralM_Parallel — the E2 workload with m workers, one
// per list.
func BenchmarkE2_A0_GeneralM_Parallel(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchOver(b, core.A0{}, dbs, agg.Min, 10, core.WithExecutor(core.Concurrent{P: m}))
		})
	}
}

// benchFaultyOver runs alg with every list wrapped in the full
// fault-tolerance stack — a seeded FaultSource at 0% rate under a
// Resilient retry/breaker policy — so ns/op measures the pure overhead
// the stack adds on the healthy path. With no faults firing, every
// access succeeds first try and the Section 5 tallies are untouched:
// the reported middleware-cost/op is computed THROUGH the stack and
// must stay bit-identical to the base benchmark's baseline (cmd/benchjson
// strips the _Faulty suffix and compares against exactly that).
func benchFaultyOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k int) {
	b.Helper()
	run := func(db *scoredb.Database) float64 {
		srcs := make([]subsys.Source, db.M())
		for i := range srcs {
			plan := subsys.FaultPlan{Seed: uint64(i) + 1, Rate: 0}
			srcs[i] = subsys.Resilient(
				subsys.NewFaultSource(subsys.FromList(db.List(i)), plan),
				subsys.Policy{MaxRetries: 2},
			)
		}
		_, c, err := core.Evaluate(context.Background(), alg, srcs, f, k)
		if err != nil {
			b.Fatal(err)
		}
		return float64(c.Sum())
	}
	var mean float64
	for _, db := range dbs {
		mean += run(db)
	}
	mean /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(dbs[i%len(dbs)])
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
}

// BenchmarkE1_A0_SqrtN_Faulty — the E1 workload through the resilience
// stack at 0% fault rate: cost metrics bit-identical to the base E1
// baseline, ns/op tracks what fault tolerance costs when nothing fails.
func BenchmarkE1_A0_SqrtN_Faulty(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchFaultyOver(b, core.A0{}, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE2_A0_GeneralM_Faulty — the E2 workload through the same
// healthy-path resilience stack.
func BenchmarkE2_A0_GeneralM_Faulty(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchFaultyOver(b, core.A0{}, dbs, agg.Min, 10)
		})
	}
}

// benchSourceLatency is the simulated per-call backend latency of the
// _Latency benchmark variants: every physical source call — one batched
// sorted span or one random probe — costs one millisecond, the IO-bound
// regime where the executor's shape dominates wall-clock.
const benchSourceLatency = time.Millisecond

// benchLatencyOver times alg under the given executor over
// latency-wrapped sources (1 ms per physical call, batch-amortized). The
// reported middleware-cost/op is computed over the undelayed sources —
// latency wrappers and executors never change the Section 5 tallies, so
// the metric stays pinned to the base benchmark's baseline — while
// ns/op records the latency-dominated wall-clock these variants exist
// to track. Ops here take 10^2–10^5 ms, so run them with -benchtime 1x
// (each op is deterministic in access count; only scheduling jitters).
func benchLatencyOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k int, x core.Executor) {
	b.Helper()
	var mean float64
	for _, db := range dbs {
		mean += runCost(b, alg, db, f, k)
	}
	mean /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := make([]subsys.Source, db.M())
		for j := range srcs {
			srcs[j] = subsys.NewLatencySource(subsys.FromList(db.List(j)), benchSourceLatency, 0)
		}
		if _, _, err := core.Evaluate(context.Background(), alg, srcs, f, k, core.WithExecutor(x)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
}

// BenchmarkE1_A0_SqrtN_Latency — the E1 workload over 1 ms/call remote
// sources under the pipelined executor: adaptive batched readahead per
// list plus a 128-wide random-access overlap. Cost metrics are pinned to
// the base E1 baseline; ns/op against the _LatencyConcurrent twin below
// is the latency-hiding win.
func BenchmarkE1_A0_SqrtN_Latency(b *testing.B) {
	for _, n := range []int{4096} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchLatencyOver(b, core.A0{}, dbs, agg.Min, 10, core.Pipelined{P: 128})
		})
	}
}

// BenchmarkE1_A0_SqrtN_LatencyConcurrent — the same 1 ms/call workload
// under the non-pipelined concurrent executor (one worker per list): the
// reference the pipeline is measured against.
func BenchmarkE1_A0_SqrtN_LatencyConcurrent(b *testing.B) {
	for _, n := range []int{4096} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchLatencyOver(b, core.A0{}, dbs, agg.Min, 10, core.Concurrent{P: 2})
		})
	}
}

// BenchmarkE2_A0_GeneralM_Latency — the E2/m=5 workload over 1 ms/call
// remote sources under the pipelined executor. The acceptance figure of
// this PR: ns/op here must be ≥5x below the _LatencyConcurrent twin —
// the random-access phase (~10^5 probes) overlaps 128 wide instead of
// m wide, an IO-bound speedup that shows even on one CPU.
func BenchmarkE2_A0_GeneralM_Latency(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchLatencyOver(b, core.A0{}, dbs, agg.Min, 10, core.Pipelined{P: 128})
		})
	}
}

// BenchmarkE2_A0_GeneralM_LatencyConcurrent — the E2/m=5 1 ms/call
// reference under Concurrent{P:m}. One op takes minutes of simulated
// waiting (~10^5 serial-ish probes): run with -benchtime 1x only.
func BenchmarkE2_A0_GeneralM_LatencyConcurrent(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchLatencyOver(b, core.A0{}, dbs, agg.Min, 10, core.Concurrent{P: m})
		})
	}
}

// benchShardedLatencyOver times a sharded evaluation over 1 ms/call
// remote sources, with or without per-shard prefetch pipelines. Like the
// other latency variants it reports the deterministic cost metrics from
// undelayed runs — middleware-cost/op is the unsharded-equivalent tally
// pinned to the base benchmark's baseline, sharded-cost/op the
// partitioned tally under sequential shards — while ns/op records the
// latency-dominated wall-clock. One op simulates minutes of waiting on
// the unpipelined path: run with -benchtime 1x.
func benchShardedLatencyOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k, shards int, prefetch bool) {
	b.Helper()
	var meanBase, meanSharded float64
	for _, db := range dbs {
		meanBase += runCost(b, alg, db, f, k)
		meanSharded += runShardedCost(b, alg, db, f, k, shards, 1)
	}
	meanBase /= float64(len(dbs))
	meanSharded /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := make([]subsys.Source, db.M())
		for j := range srcs {
			srcs[j] = subsys.NewLatencySource(subsys.FromList(db.List(j)), benchSourceLatency, 0)
		}
		cfg := core.ShardConfig{Shards: shards, Prefetch: prefetch}
		if _, err := core.EvaluateSharded(context.Background(), alg, srcs, f, k, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(meanBase, "middleware-cost/op")
	b.ReportMetric(meanSharded, "sharded-cost/op")
}

// BenchmarkE2_A0_GeneralM_ShardedLatency — the composed mode's headline:
// the E2/m=5 workload over 1 ms/call remote sources, sharded 4 ways WITH
// per-shard prefetch pipelines (WithShards ∘ WithPrefetch). The
// acceptance figure of this PR: ns/op here must be ≥5x below the
// NoPrefetch twin — per-shard batched sorted readahead plus the
// 64-wide random-access overlap, where the sharded-but-serial path pays
// a full round trip per access.
func BenchmarkE2_A0_GeneralM_ShardedLatency(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchShardedLatencyOver(b, core.A0{}, dbs, agg.Min, 10, 4, true)
		})
	}
}

// BenchmarkE2_A0_GeneralM_ShardedLatencyNoPrefetch — the same sharded
// query without prefetch: the serial-inside sharded path this PR
// composes away. One op is minutes of simulated round trips; run with
// -benchtime 1x only.
func BenchmarkE2_A0_GeneralM_ShardedLatencyNoPrefetch(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchShardedLatencyOver(b, core.A0{}, dbs, agg.Min, 10, 4, false)
		})
	}
}

// runShardedCost executes one sharded evaluation and returns its total
// unweighted middleware cost.
func runShardedCost(b *testing.B, alg core.Algorithm, db *scoredb.Database, f agg.Func, k, shards, par int) float64 {
	b.Helper()
	srcs := make([]subsys.Source, db.M())
	for i := range srcs {
		srcs[i] = subsys.FromList(db.List(i))
	}
	sr, err := core.EvaluateSharded(context.Background(), alg, srcs, f, k,
		core.ShardConfig{Shards: shards, Parallel: par})
	if err != nil {
		b.Fatal(err)
	}
	return float64(sr.Cost.Sum())
}

// benchShardedOver times the sharded evaluation (shards fanned out on
// GOMAXPROCS workers) and reports two deterministic cost metrics:
//
//   - middleware-cost/op — the Section 5 tallies of the EQUIVALENT
//     UNSHARDED evaluation: the semantic access work of the query, which
//     sharding must never change and which cmd/benchjson -compare pins
//     to the base benchmark's historical baseline bit for bit.
//   - sharded-cost/op — the partitioned evaluation's own total tallies
//     under sequential (deterministic) shard execution: the price of
//     partitioning, tracked as its own trajectory from BENCH_PR3.json
//     onward. On uniform data it exceeds the unsharded figure (each
//     shard scans its own slice); the threshold merge keeps the excess
//     bounded, and on skewed data drives it below the unsharded tally
//     (see BenchmarkE17_ShardedSkew).
func benchShardedOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k, shards int) {
	b.Helper()
	var meanBase, meanSharded float64
	for _, db := range dbs {
		meanBase += runCost(b, alg, db, f, k)
		meanSharded += runShardedCost(b, alg, db, f, k, shards, 1)
	}
	meanBase /= float64(len(dbs))
	meanSharded /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runShardedCost(b, alg, dbs[i%len(dbs)], f, k, shards, 0)
	}
	b.StopTimer()
	b.ReportMetric(meanBase, "middleware-cost/op")
	b.ReportMetric(meanSharded, "sharded-cost/op")
}

// BenchmarkE1_A0_SqrtN_Sharded — the E1 workload over 4 partitioned
// universe slices with the threshold-aware merge. Wall-clock rides the
// shard fan-out (one worker per shard, serial inside), so it tracks the
// serial figure divided by the core count available to the runner.
func BenchmarkE1_A0_SqrtN_Sharded(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchShardedOver(b, core.A0{}, dbs, agg.Min, 10, 4)
		})
	}
}

// BenchmarkE2_A0_GeneralM_Sharded — the E2 workload sharded 4 ways.
func BenchmarkE2_A0_GeneralM_Sharded(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchShardedOver(b, core.A0{}, dbs, agg.Min, 10, 4)
		})
	}
}

// skewedShardDB builds the skewed workload of the threshold-merge claim:
// every global top answer lives in the first quarter of the universe
// (high correlated grades in both lists), while the remaining ids carry
// mid-range grades in list 1 — pollution the unsharded round-robin must
// wade through — and grades ≈0 in list 2. The hot shard's re-ranked view
// never sees the polluters, and every cold shard's threshold collapses
// below the published global k-th grade after one round.
func skewedShardDB(b *testing.B, n, hot int) *scoredb.Database {
	b.Helper()
	e1 := make([]fuzzydb.Entry, n)
	e2 := make([]fuzzydb.Entry, n)
	for i := 0; i < n; i++ {
		var g1, g2 float64
		if i < hot {
			g1 = 0.999 - float64(i)/float64(hot)*0.95
			g2 = g1
		} else {
			g1 = 0.9 + (float64((i*7919)%n)+float64(i)/float64(n))/float64(n)*0.099
			g2 = (float64((i*104729)%n) + float64(i)/float64(n)) / float64(n) * 0.001
		}
		e1[i] = fuzzydb.Entry{Object: i, Grade: g1}
		e2[i] = fuzzydb.Entry{Object: i, Grade: g2}
	}
	l1, err := fuzzydb.NewList(e1)
	if err != nil {
		b.Fatal(err)
	}
	l2, err := fuzzydb.NewList(e2)
	if err != nil {
		b.Fatal(err)
	}
	db, err := scoredb.New([]*fuzzydb.List{l1, l2})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE17_ShardedSkew — the early-stopped-shards case: on skewed
// data the sharded evaluation's total middleware cost (sharded-cost/op)
// drops far BELOW the unsharded tally (middleware-cost/op), because the
// cold shards fence after a handful of accesses instead of feeding the
// round-robin pollution the unsharded scan must pay for.
func BenchmarkE17_ShardedSkew(b *testing.B) {
	for _, n := range []int{16384, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			const shards = 4
			db := skewedShardDB(b, n, n/shards)
			base := runCost(b, core.A0{}, db, agg.Min, 10)
			sharded := runShardedCost(b, core.A0{}, db, agg.Min, 10, shards, 1)
			if sharded >= base {
				b.Fatalf("sharded cost %v not below unsharded %v on skewed data", sharded, base)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runShardedCost(b, core.A0{}, db, agg.Min, 10, shards, 0)
			}
			b.StopTimer()
			b.ReportMetric(base, "middleware-cost/op")
			b.ReportMetric(sharded, "sharded-cost/op")
		})
	}
}

// sketchesOf builds the exact grade-distribution sketch of every list —
// the planning metadata a loaded engine serves from its subsystems.
func sketchesOf(db *scoredb.Database) []*subsys.Sketch {
	sketches := make([]*subsys.Sketch, db.M())
	for i := range sketches {
		sketches[i] = subsys.SketchList(db.List(i))
	}
	return sketches
}

// runShardedDetail executes one sharded evaluation under cfg and returns
// its total middleware cost and the largest single shard's cost — the
// straggler the weighted planner exists to shrink. Callers pass
// Parallel=1 configurations when the figures must be deterministic.
func runShardedDetail(b *testing.B, alg core.Algorithm, db *scoredb.Database, f agg.Func, k int, cfg core.ShardConfig) (total, maxShard float64) {
	b.Helper()
	srcs := make([]subsys.Source, db.M())
	for i := range srcs {
		srcs[i] = subsys.FromList(db.List(i))
	}
	sr, err := core.EvaluateSharded(context.Background(), alg, srcs, f, k, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range sr.PerShard {
		if s := float64(c.Sum()); s > maxShard {
			maxShard = s
		}
	}
	return float64(sr.Cost.Sum()), maxShard
}

// benchWeightedShardedOver times the sharded evaluation under the
// weighted (sketch-quantile) plan. middleware-cost/op is the unsharded
// tally pinned to the base benchmark's baseline (moving shard
// boundaries never changes the semantic access work of the query);
// weighted-sharded-cost/op is the weighted partition's own total under
// sequential (deterministic) shard execution, a new unit tracked from
// BENCH_PR9.json onward.
func benchWeightedShardedOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k, shards int) {
	b.Helper()
	sketches := make([][]*subsys.Sketch, len(dbs))
	var meanBase, meanWeighted float64
	for d, db := range dbs {
		sketches[d] = sketchesOf(db)
		meanBase += runCost(b, alg, db, f, k)
		total, _ := runShardedDetail(b, alg, db, f, k,
			core.ShardConfig{Shards: shards, Parallel: 1, Plan: core.ShardPlanWeighted, Sketches: sketches[d]})
		meanWeighted += total
	}
	meanBase /= float64(len(dbs))
	meanWeighted /= float64(len(dbs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := i % len(dbs)
		runShardedDetail(b, alg, dbs[d], f, k,
			core.ShardConfig{Shards: shards, Plan: core.ShardPlanWeighted, Sketches: sketches[d]})
	}
	b.StopTimer()
	b.ReportMetric(meanBase, "middleware-cost/op")
	b.ReportMetric(meanWeighted, "weighted-sharded-cost/op")
}

// BenchmarkE1_A0_SqrtN_WeightedShard — the E1 workload sharded 4 ways
// under the weighted plan. On uniform data the sketch quantiles land
// near the even cuts, so this variant pins the degenerate-adjacent
// regime: cost metrics identical to the base E1 baseline, the weighted
// partition's own tallies tracking the even _Sharded trajectory.
func BenchmarkE1_A0_SqrtN_WeightedShard(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 1)
			benchWeightedShardedOver(b, core.A0{}, dbs, agg.Min, 10, 4)
		})
	}
}

// BenchmarkE2_A0_GeneralM_WeightedShard — the E2 workload sharded 4
// ways under the weighted plan, across m.
func BenchmarkE2_A0_GeneralM_WeightedShard(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchWeightedShardedOver(b, core.A0{}, dbs, agg.Min, 10, 4)
		})
	}
}

// skewedPlanDB builds the weighted planner's workload: all grade mass
// and every global winner lives in the hot prefix, whose two lists are
// ANTI-correlated — an object at g1-rank r among the hot ids sits at
// g1-rank hot−1−r in list 2 — so the sorted prefixes of any hot slice
// only begin to intersect after covering half its width, and a shard
// over a hot slice of width w pays Θ(w) accesses. (The reversal
// survives restriction to any id slice, so the linear law holds for
// every shard the planner draws.) The cold tail carries near-zero mass
// in both lists and fences immediately. An even 4-way split hands
// shard 0 the entire hot region — a straggler carrying the whole
// partitioned cost — while the weighted plan cuts the hot region at
// mass quartiles.
func skewedPlanDB(b *testing.B, n, hot int) *scoredb.Database {
	b.Helper()
	e1 := make([]fuzzydb.Entry, n)
	e2 := make([]fuzzydb.Entry, n)
	for i := 0; i < n; i++ {
		var g1, g2 float64
		if i < hot {
			r := (i * 7919) % hot
			g1 = 0.5 + 0.5*(float64(r)+0.5)/float64(hot)
			g2 = 0.5 + 0.5*(float64(hot-1-r)+0.5)/float64(hot)
		} else {
			h := float64((i*104729)%n) / float64(n)
			g1 = 0.4 * h
			g2 = 0.0004 * h
		}
		e1[i] = fuzzydb.Entry{Object: i, Grade: g1}
		e2[i] = fuzzydb.Entry{Object: i, Grade: g2}
	}
	l1, err := fuzzydb.NewList(e1)
	if err != nil {
		b.Fatal(err)
	}
	l2, err := fuzzydb.NewList(e2)
	if err != nil {
		b.Fatal(err)
	}
	db, err := scoredb.New([]*fuzzydb.List{l1, l2})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE17_ShardedSkew_WeightedShard — the headline of the weighted
// planner: on the anti-correlated skewed workload the even split hands
// one shard the whole hot region and that straggler carries nearly the
// entire partitioned cost. Cutting at sketch quantiles spreads the hot
// mass across all shards, so the gate asserts the weighted plan's
// largest shard costs at most half the even plan's largest — with the
// total no worse. Both figures are deterministic (Parallel=1) and
// travel as max-shard-cost/op and weighted-sharded-cost/op;
// middleware-cost/op is this workload's own unsharded tally.
func BenchmarkE17_ShardedSkew_WeightedShard(b *testing.B) {
	for _, n := range []int{16384, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			const shards = 4
			db := skewedPlanDB(b, n, n/shards)
			sketches := sketchesOf(db)
			base := runCost(b, core.A0{}, db, agg.Min, 10)
			evenTotal, evenMax := runShardedDetail(b, core.A0{}, db, agg.Min, 10,
				core.ShardConfig{Shards: shards, Parallel: 1})
			wCfg := core.ShardConfig{Shards: shards, Parallel: 1, Plan: core.ShardPlanWeighted, Sketches: sketches}
			wTotal, wMax := runShardedDetail(b, core.A0{}, db, agg.Min, 10, wCfg)
			if wMax > 0.5*evenMax {
				b.Fatalf("weighted max shard cost %v exceeds half the even plan's %v", wMax, evenMax)
			}
			if wTotal > evenTotal {
				b.Fatalf("weighted total %v worse than even total %v", wTotal, evenTotal)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runShardedDetail(b, core.A0{}, db, agg.Min, 10, wCfg)
			}
			b.StopTimer()
			b.ReportMetric(base, "middleware-cost/op")
			b.ReportMetric(wTotal, "weighted-sharded-cost/op")
			b.ReportMetric(wMax, "max-shard-cost/op")
		})
	}
}

// BenchmarkE2_A0_GeneralM_Stealing — the E2 workload sharded 4 ways
// with parallel workers and work stealing enabled: the wall-clock
// trajectory of the racy mode. Stealing splits shards at
// scheduling-dependent points, so the evaluation's own tallies are not
// deterministic and no sharded unit is reported; the gated
// middleware-cost/op is the unsharded tally computed outside the timed
// loop, pinned to the base E2 baseline. Run the multi-core CI job with
// GOMAXPROCS>1 for steals to actually occur — on one processor the
// flag is live but splits rarely fire.
func BenchmarkE2_A0_GeneralM_Stealing(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			var mean float64
			for _, db := range dbs {
				mean += runCost(b, core.A0{}, db, agg.Min, 10)
			}
			mean /= float64(len(dbs))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := dbs[i%len(dbs)]
				srcs := make([]subsys.Source, db.M())
				for j := range srcs {
					srcs[j] = subsys.FromList(db.List(j))
				}
				cfg := core.ShardConfig{Shards: 4, Steal: true}
				if _, err := core.EvaluateSharded(context.Background(), core.A0{}, srcs, agg.Min, 10, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(mean, "middleware-cost/op")
		})
	}
}

// BenchmarkE3_A0_KScaling — Thm 5.3: cost ∝ k^(1/m) at fixed N.
func BenchmarkE3_A0_KScaling(b *testing.B) {
	dbs := genDBs(65536, 2, 4, scoredb.Uniform{}, 3)
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchOver(b, core.A0{}, dbs, agg.Min, k)
		})
	}
}

// BenchmarkE4_WimmersBound — tail of the per-list sorted depth: reports
// the max depth/√(Nk) ratio observed; [Wi98b] bounds exceedances of 2 by
// 2e-8.
func BenchmarkE4_WimmersBound(b *testing.B) {
	const n, k = 16384, 10
	dbs := genDBs(n, 2, 8, scoredb.Uniform{}, 4)
	var maxRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := []subsys.Source{subsys.FromList(db.List(0)), subsys.FromList(db.List(1))}
		_, c, err := core.Evaluate(context.Background(), core.A0{}, srcs, agg.Min, k)
		if err != nil {
			b.Fatal(err)
		}
		depth := float64(c.Sorted) / 2
		if r := depth / math.Sqrt(float64(n*k)); r > maxRatio {
			maxRatio = r
		}
	}
	b.StopTimer()
	b.ReportMetric(maxRatio, "max-depth/sqrt(Nk)")
}

// BenchmarkE5_LowerBound — Thm 6.4: fraction of runs at or below the
// θ = 0.5 envelope (must be ≤ θ^m = 0.25).
func BenchmarkE5_LowerBound(b *testing.B) {
	const n, m, k = 16384, 2, 5
	dbs := genDBs(n, m, 8, scoredb.Uniform{}, 5)
	norm := math.Pow(float64(n), 0.5) * math.Pow(k, 0.5)
	below := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runCost(b, core.A0{}, dbs[i%len(dbs)], agg.Min, k) <= 0.5*norm {
			below++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(below)/float64(b.N), "frac-below-theta-envelope")
}

// BenchmarkE6_ThetaBound — Thm 6.5: normalized cost stays in a constant
// band across N.
func BenchmarkE6_ThetaBound(b *testing.B) {
	for _, n := range []int{16384, 131072} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 6)
			norm := math.Sqrt(float64(n) * 10)
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total += runCost(b, core.A0{}, dbs[i%len(dbs)], agg.Min, 10) / norm
			}
			b.StopTimer()
			b.ReportMetric(total/float64(b.N), "cost/theta-bound")
		})
	}
}

// BenchmarkE7_B0_Disjunction — Rem 6.1: B₀ costs exactly mk regardless
// of N.
func BenchmarkE7_B0_Disjunction(b *testing.B) {
	for _, n := range []int{4096, 262144} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := genDBs(n, 3, 4, scoredb.Uniform{}, 7)
			benchOver(b, core.B0{}, dbs, agg.Max, 10)
		})
	}
}

// BenchmarkE8_Median — Rem 6.1: subset decomposition beats generic A₀ on
// the median.
func BenchmarkE8_Median(b *testing.B) {
	dbs := genDBs(65536, 3, 4, scoredb.Uniform{}, 8)
	b.Run("subset-decomposition", func(b *testing.B) {
		benchOver(b, core.OrderStat{}, dbs, agg.Median, 5)
	})
	b.Run("generic-A0", func(b *testing.B) {
		benchOver(b, core.A0{}, dbs, agg.Median, 5)
	})
}

// BenchmarkE9_HardQuery — Thm 7.1: Q ∧ ¬Q costs Θ(N).
func BenchmarkE9_HardQuery(b *testing.B) {
	for _, n := range []int{8192, 65536} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dbs := make([]*scoredb.Database, 4)
			for i := range dbs {
				db, err := scoredb.HardQueryPair(n, uint64(9+i))
				if err != nil {
					b.Fatal(err)
				}
				dbs[i] = db
			}
			benchOver(b, core.A0{}, dbs, agg.Min, 1)
		})
	}
}

// BenchmarkE10_Ullman — Sec 9: constant cost on bounded grades, Θ(√N) on
// uniform.
func BenchmarkE10_Ullman(b *testing.B) {
	const n = 65536
	b.Run("bounded-0.9", func(b *testing.B) {
		dbs := make([]*scoredb.Database, 4)
		for i := range dbs {
			l1 := scoredb.Generator{N: n, M: 1, Law: scoredb.BoundedAbove{Max: 0.9}, Seed: uint64(10 + i)}.MustGenerate().List(0)
			l2 := scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: uint64(1010 + i)}.MustGenerate().List(0)
			db, err := scoredb.New([]*fuzzydb.List{l1, l2})
			if err != nil {
				b.Fatal(err)
			}
			dbs[i] = db
		}
		benchOver(b, core.Ullman{}, dbs, agg.Min, 1)
	})
	b.Run("uniform", func(b *testing.B) {
		dbs := genDBs(n, 2, 4, scoredb.Uniform{}, 11)
		benchOver(b, core.Ullman{}, dbs, agg.Min, 1)
	})
}

// BenchmarkE11_A0Prime — Sec 4: A₀′'s random-access saving over A₀.
func BenchmarkE11_A0Prime(b *testing.B) {
	dbs := genDBs(65536, 3, 4, scoredb.Uniform{}, 12)
	b.Run("A0", func(b *testing.B) {
		benchOver(b, core.A0{}, dbs, agg.Min, 10)
	})
	b.Run("A0Prime", func(b *testing.B) {
		benchOver(b, core.A0Prime{}, dbs, agg.Min, 10)
	})
}

// BenchmarkE12_TNormRobustness — Secs 3/5: TA across strict aggregation
// functions (and the non-strict max for contrast).
func BenchmarkE12_TNormRobustness(b *testing.B) {
	dbs := genDBs(32768, 2, 4, scoredb.Uniform{}, 13)
	funcs := []agg.Func{agg.Min, agg.AlgebraicProduct, agg.BoundedDifference, agg.ArithmeticMean, agg.Max}
	for _, f := range funcs {
		b.Run(f.Name(), func(b *testing.B) {
			benchOver(b, core.TA{}, dbs, f, 10)
		})
	}
}

// BenchmarkE13_Correlation — Sec 7: cost falls as correlation rises.
func BenchmarkE13_Correlation(b *testing.B) {
	for _, rho := range []float64{-1, 0, 1} {
		b.Run(fmt.Sprintf("rho=%v", rho), func(b *testing.B) {
			dbs := make([]*scoredb.Database, 4)
			for i := range dbs {
				dbs[i] = scoredb.Generator{N: 16384, M: 2, Law: scoredb.Uniform{}, Seed: uint64(14 + i), Correlation: rho}.MustGenerate()
			}
			benchOver(b, core.A0{}, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE14_TAvsFA — the successor-family ablation.
func BenchmarkE14_TAvsFA(b *testing.B) {
	dbs := genDBs(65536, 2, 4, scoredb.Uniform{}, 15)
	algs := []core.Algorithm{core.A0{}, core.A0Prime{}, core.TA{}, core.NRA{}, core.Ullman{}}
	for _, alg := range algs {
		b.Run(alg.Name(), func(b *testing.B) {
			benchOver(b, alg, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE15_WeightedCostModel — Sec 5 inequality (1): skewed access
// prices preserve the Θ shape; reported metric is the weighted cost.
func BenchmarkE15_WeightedCostModel(b *testing.B) {
	dbs := genDBs(65536, 2, 4, scoredb.Uniform{}, 16)
	model := fuzzydb.CostModel{C1: 10, C2: 1}
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := []subsys.Source{subsys.FromList(db.List(0)), subsys.FromList(db.List(1))}
		_, c, err := core.Evaluate(context.Background(), core.A0{}, srcs, agg.Min, 10)
		if err != nil {
			b.Fatal(err)
		}
		total += model.Of(c)
	}
	b.StopTimer()
	b.ReportMetric(total/float64(b.N), "weighted-cost/op")
}

// BenchmarkE16_FilterFirst — Sec 4: the selective-conjunct plan against
// A0' on a rare binary predicate.
func BenchmarkE16_FilterFirst(b *testing.B) {
	const n = 32768
	dbs := make([]*scoredb.Database, 4)
	for i := range dbs {
		l0 := scoredb.Generator{N: n, M: 1, Law: scoredb.Binary{P: 0.002}, Seed: uint64(17 + i)}.MustGenerate().List(0)
		l1 := scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: uint64(1700 + i)}.MustGenerate().List(0)
		db, err := scoredb.New([]*fuzzydb.List{l0, l1})
		if err != nil {
			b.Fatal(err)
		}
		dbs[i] = db
	}
	b.Run("filter-first", func(b *testing.B) {
		benchOver(b, core.FilterFirst{}, dbs, agg.Min, 5)
	})
	b.Run("A0Prime", func(b *testing.B) {
		benchOver(b, core.A0Prime{}, dbs, agg.Min, 5)
	})
}

// BenchmarkEngineEndToEnd measures the full middleware path (parse, plan,
// evaluate) on the running example, the operation a Garlic deployment
// performs per user query.
func BenchmarkEngineEndToEnd(b *testing.B) {
	const n = 4096
	artists := make([]string, n)
	covers := make([][]float64, n)
	for i := range artists {
		if i%7 == 0 {
			artists[i] = "Beatles"
		} else {
			artists[i] = fmt.Sprintf("artist-%d", i%50)
		}
		covers[i] = []float64{float64(i%11) / 10, float64(i%13) / 12, float64(i%17) / 16}
	}
	eng, err := fuzzydb.NewEngine([]fuzzydb.Subsystem{
		fuzzydb.NewRelationalSubsystem("Artist", artists),
		fuzzydb.NewVectorSubsystem("AlbumColor", covers, map[string][]float64{"red": {1, 0, 0}}),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput is the concurrent-query load benchmark for
// the million-user target: many goroutines hammer one Engine's shared
// subsystems through the request API at once, so the pooled per-query
// state (dense caches, scratch, readahead buffers) is contended exactly
// as a deployment would contend it. Reported queries/sec is the
// aggregate engine throughput on this runner; allocs/op sizes the pools
// (steady-state allocations per query are what throttle the collector
// under sustained load). Wall-clock metrics only — nothing here is
// gated by the cost-regression harness.
func BenchmarkEngineThroughput(b *testing.B) {
	const n = 16384
	db := scoredb.Generator{N: n, M: 2, Seed: 23}.MustGenerate()
	a1 := fuzzydb.NewStaticSubsystem("A1", n)
	a1.Set("*", db.List(0))
	a2 := fuzzydb.NewStaticSubsystem("A2", n)
	a2.Set("*", db.List(1))
	eng, err := fuzzydb.NewEngine([]fuzzydb.Subsystem{a1, a2})
	if err != nil {
		b.Fatal(err)
	}
	q, err := fuzzydb.ParseQuery(`A1 = "*" AND A2 = "*"`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Query(ctx, q, fuzzydb.TopN(10)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "queries/sec")
	}
}

// BenchmarkEngineThroughput_Saturated extends BenchmarkEngineThroughput
// past the cooperative regime: the same workload behind an admission
// scheduler, driven by a mixed-tenant load generator at 4×
// oversubscription (4·MaxConcurrent callers split across two
// equal-weight tenants, each query under its own deadline). Reported
// alongside sustained queries/sec: p50/p99 latency, the shed rate, and
// the Jain fairness index over the tenants' settled access-cost shares
// — 1.0 is perfectly fair; the run fails if either tenant's share
// drifts more than 20% from its fair half, or if any shed request
// surfaces as anything but a typed *fuzzydb.OverloadError carrying a
// positive RetryAfter. Wall-clock metrics only — nothing here is gated
// by the cost-regression harness.
func BenchmarkEngineThroughput_Saturated(b *testing.B) {
	const (
		n       = 16384
		maxConc = 4
		oversub = 4
	)
	db := scoredb.Generator{N: n, M: 2, Seed: 23}.MustGenerate()
	a1 := fuzzydb.NewStaticSubsystem("A1", n)
	a1.Set("*", db.List(0))
	a2 := fuzzydb.NewStaticSubsystem("A2", n)
	a2.Set("*", db.List(1))
	tenants := []string{"tenant-a", "tenant-b"}
	sched := fuzzydb.NewScheduler(fuzzydb.SchedulerConfig{
		MaxConcurrent: maxConc,
		MaxQueue:      4, // small, so oversubscription genuinely sheds
		Rate:          1e9,
		Burst:         1e9, // generous buckets: the pressure is the concurrency gate
		Tenants: map[string]fuzzydb.SchedulerTenantConfig{
			tenants[0]: {Weight: 1},
			tenants[1]: {Weight: 1},
		},
	})
	eng, err := fuzzydb.NewEngine([]fuzzydb.Subsystem{a1, a2}, fuzzydb.WithScheduler(sched))
	if err != nil {
		b.Fatal(err)
	}
	q, err := fuzzydb.ParseQuery(`A1 = "*" AND A2 = "*"`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	workers := maxConc * oversub
	latencies := make([][]time.Duration, workers)
	var issued, shed, badShed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := tenants[w%len(tenants)]
			for issued.Add(1) <= int64(b.N) {
				qctx, cancel := context.WithTimeout(ctx, 30*time.Second)
				start := time.Now()
				_, qerr := eng.Query(qctx, q, fuzzydb.TopN(10), fuzzydb.WithTenant(tenant))
				cancel()
				if qerr != nil {
					var oe *fuzzydb.OverloadError
					if !errors.As(qerr, &oe) || oe.RetryAfter <= 0 {
						badShed.Add(1)
					}
					shed.Add(1)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(start))
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if badShed.Load() > 0 {
		b.Fatalf("%d rejections were not typed *fuzzydb.OverloadError with positive RetryAfter", badShed.Load())
	}
	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		b.ReportMetric(float64(all[len(all)/2]), "p50-ns")
		b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns")
	}
	var shares []float64
	var total float64
	for _, st := range sched.Stats() {
		shares = append(shares, st.SettledCost)
		total += st.SettledCost
	}
	if len(shares) == 2 && total > 0 {
		// Jain fairness index: (Σx)² / (k·Σx²); 1.0 = perfectly fair.
		var sq float64
		for _, x := range shares {
			sq += x * x
		}
		b.ReportMetric(total*total/(float64(len(shares))*sq), "fairness-index")
		// Only judge fairness once the sample is big enough to be
		// signal: short calibration runs (-benchtime=1x) stay silent.
		if int64(b.N) >= 256 {
			for i, x := range shares {
				if share := x / total; share < 0.4 || share > 0.6 {
					b.Fatalf("tenant %d settled share %.3f drifts more than 20%% from its fair half (shares %v)", i, share, shares)
				}
			}
		}
	}
	done := int64(len(all))
	if issuedN := done + shed.Load(); issuedN > 0 {
		b.ReportMetric(float64(shed.Load())/float64(issuedN), "shed-rate")
	}
	if secs := b.Elapsed().Seconds(); secs > 0 && done > 0 {
		b.ReportMetric(float64(done)/secs, "queries/sec")
	}
}

// benchCachedQuery parses the conjunction over lists A1…Am that the
// cached benchmark variants evaluate — the same query shape the base E2
// workload runs as a raw core evaluation.
func benchCachedQuery(b *testing.B, m int) fuzzydb.Query {
	b.Helper()
	s := `A1 = "*"`
	for i := 2; i <= m; i++ {
		s += fmt.Sprintf(` AND A%d = "*"`, i)
	}
	q, err := fuzzydb.ParseQuery(s)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// benchCachedRepeat times the E2 workload behind a result-cached engine
// under a skewed repeat mix: every distinct (database, k) key is warmed
// outside the timed loop, then a power-law-skewed stream of repeats is
// served entirely from the cache — the steady state the cache exists
// for. The gated middleware-cost/op is computed over the raw lists
// outside the timed loop exactly as benchOver does, so it stays
// bit-identical to the base E2 baseline (cmd/benchjson strips the
// _CachedRepeat suffix and compares against exactly that); ns/op records
// the O(k) hit path, the ≥20x headline against the base benchmark.
func benchCachedRepeat(b *testing.B, dbs []*scoredb.Database, f agg.Func, k int) {
	b.Helper()
	var mean float64
	for _, db := range dbs {
		mean += runCost(b, core.A0{}, db, f, k)
	}
	mean /= float64(len(dbs))

	const kinds = 16 // distinct k values per engine: k, k+1, …, k+kinds−1
	engines := make([]*fuzzydb.Engine, len(dbs))
	for d, db := range dbs {
		subs := make([]fuzzydb.Subsystem, db.M())
		for i := 0; i < db.M(); i++ {
			s := fuzzydb.NewStaticSubsystem(fmt.Sprintf("A%d", i+1), db.N())
			s.Set("*", db.List(i))
			subs[i] = s
		}
		eng, err := fuzzydb.NewEngine(subs, fuzzydb.WithCache(2*kinds))
		if err != nil {
			b.Fatal(err)
		}
		engines[d] = eng
	}
	q := benchCachedQuery(b, dbs[0].M())
	ctx := context.Background()
	for _, eng := range engines {
		for j := 0; j < kinds; j++ {
			if _, err := eng.Query(ctx, q, fuzzydb.TopN(k+j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Skewed repeats: a power-law pick concentrates most lookups on a few
	// hot keys (math/rand/v2 has no Zipf; x³ of a uniform is close enough
	// and deterministic under the fixed seed).
	rng := rand.New(rand.NewPCG(0xfa61, 96))
	total := len(engines) * kinds
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pick := int(float64(total) * math.Pow(rng.Float64(), 3))
		rep, err := engines[pick%len(engines)].Query(ctx, q, fuzzydb.TopN(k+pick/len(engines)))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cache != nil && rep.Cache.Hit {
			hits++
		}
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
	b.ReportMetric(float64(hits)/float64(b.N), "cache-hit-rate")
}

// benchCachedWriteMix drives cached engines over MUTABLE subsystems
// through an update/query mix: most writes land low grades strictly
// below any top-k threshold (τ-survivable — the entry's threshold test
// proves they cannot disturb the cached answer), while one write in
// eight raises an object above the threshold and must evict. The gated
// middleware-cost/op is the pristine-data E2 cost — UpdateGrade copies
// on write, so the generator's lists are never touched — bit-identical
// to the base baseline. The post-update hit-rate (the fraction of
// queries still served from cache with a write landing before each one)
// comes from a fixed-length deterministic schedule outside the timed
// loop, so the snapshot comparison sees a stable value; ns/op times the
// steady-state mix itself.
func benchCachedWriteMix(b *testing.B, dbs []*scoredb.Database, f agg.Func, k int) {
	b.Helper()
	var mean float64
	for _, db := range dbs {
		mean += runCost(b, core.A0{}, db, f, k)
	}
	mean /= float64(len(dbs))

	muts := make([][]*fuzzydb.MutableSubsystem, len(dbs))
	engines := make([]*fuzzydb.Engine, len(dbs))
	for d, db := range dbs {
		subs := make([]fuzzydb.Subsystem, db.M())
		muts[d] = make([]*fuzzydb.MutableSubsystem, db.M())
		for i := 0; i < db.M(); i++ {
			ms := fuzzydb.NewMutableSubsystem(fmt.Sprintf("A%d", i+1), db.N())
			ms.Set("*", db.List(i))
			muts[d][i] = ms
			subs[i] = ms
		}
		eng, err := fuzzydb.NewEngine(subs, fuzzydb.WithCache(8))
		if err != nil {
			b.Fatal(err)
		}
		engines[d] = eng
	}
	q := benchCachedQuery(b, dbs[0].M())
	ctx := context.Background()
	n := dbs[0].N()

	// step applies one write then one query, tallying whether the cached
	// answer survived the write.
	step := func(rng *rand.Rand, s int, count, hits *int) {
		d := s % len(engines)
		list := muts[d][s%len(muts[d])]
		if s%8 == 7 {
			// A raise into the top k: above any cached threshold, so the
			// survival test must evict.
			_ = list.UpdateGrade("*", rng.IntN(n), 0.9995+0.0004*rng.Float64())
		} else {
			// A low write: with min-style aggregation its bound stays
			// strictly below the cached kth grade, so the entry survives.
			_ = list.UpdateGrade("*", rng.IntN(n), 0.2*rng.Float64())
		}
		rep, err := engines[d].Query(ctx, q, fuzzydb.TopN(k))
		if err != nil {
			b.Fatal(err)
		}
		*count++
		if rep.Cache != nil && rep.Cache.Hit {
			*hits++
		}
	}

	rng := rand.New(rand.NewPCG(0xfa61, 8))
	for _, eng := range engines {
		if _, err := eng.Query(ctx, q, fuzzydb.TopN(k)); err != nil {
			b.Fatal(err)
		}
	}
	count, hits := 0, 0
	for s := 0; s < 256; s++ {
		step(rng, s, &count, &hits)
	}
	rate := float64(hits) / float64(count)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(rng, i, &count, &hits)
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
	b.ReportMetric(rate, "post-update-hit-rate")
}

// BenchmarkE2_A0_GeneralM_CachedRepeat — the E2 workload served from the
// result cache under a skewed repeat mix; the acceptance figure of the
// caching PR: ns/op here must be ≥20x below the uncached base E2 twin.
// Cost metrics are pinned to the base E2 baseline.
func BenchmarkE2_A0_GeneralM_CachedRepeat(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchCachedRepeat(b, dbs, agg.Min, 10)
		})
	}
}

// BenchmarkE2_A0_GeneralM_CachedWriteMix — the E2 workload over mutable
// sources under an interleaved update/query mix: τ-survivable writes
// keep serving hits, threshold-crossing writes evict and force a
// recompute. Cost metrics are pinned to the base E2 baseline; the
// post-update hit-rate shows invalidation evicting only the small
// fraction of writes that could actually disturb a cached answer.
func BenchmarkE2_A0_GeneralM_CachedWriteMix(b *testing.B) {
	for _, m := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchCachedWriteMix(b, dbs, agg.Min, 10)
		})
	}
}

// benchWireDelay is the simulated propagation delay of the _Wire
// benchmark variants: the loopback server answers each source request
// after 250µs, modelling network distance over the otherwise fully real
// HTTP/TCP/JSON path. Loopback alone has no waiting to hide — its
// round trip is pure CPU (serialization and stack traversal), which no
// amount of overlap can compress on a saturated core — so the delay is
// what makes the wire benchmarks measure latency HIDING rather than
// codec throughput, exactly as benchSourceLatency does for the
// in-process _Latency variants.
const benchWireDelay = 250 * time.Microsecond

// benchWireOver times alg over wire-backed sources served by a real
// loopback HTTP server — the tentpole figure of the wire PR. Like the
// _Latency variants, the reported middleware-cost/op is computed over
// the undelayed in-process sources outside the timed loop: the wire
// moves bytes, never costs, so the metric stays pinned bit-for-bit to
// the base benchmark's baseline (cmd/benchjson strips the _Wire /
// _WireNoPrefetch suffix and compares against exactly that). ns/op
// records the network-dominated wall-clock: every physical access is a
// JSON round trip over loopback TCP through the pooled transport, paid
// a benchWireDelay propagation delay per request. One server carries
// all trial databases side by side (lists "db<i>/A<j>"), one shared
// client dials it, both set up outside the timed loop.
func benchWireOver(b *testing.B, alg core.Algorithm, dbs []*scoredb.Database, f agg.Func, k int, x core.Executor) {
	b.Helper()
	var mean float64
	for _, db := range dbs {
		mean += runCost(b, alg, db, f, k)
	}
	mean /= float64(len(dbs))

	lists := make(map[string]subsys.Source)
	for d, db := range dbs {
		for i := 0; i < db.M(); i++ {
			lists[fmt.Sprintf("db%d/A%d", d, i+1)] = subsys.FromList(db.List(i))
		}
	}
	ss, err := wire.NewSourceServer(lists)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(benchWireDelay)
		ss.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client, err := wire.Dial(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	srcs := make([][]subsys.Source, len(dbs))
	for d, db := range dbs {
		srcs[d] = make([]subsys.Source, db.M())
		for i := range srcs[d] {
			s, err := client.Source(fmt.Sprintf("db%d/A%d", d, i+1))
			if err != nil {
				b.Fatal(err)
			}
			srcs[d][i] = s
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Evaluate(context.Background(), alg, srcs[i%len(dbs)], f, k, core.WithExecutor(x)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(mean, "middleware-cost/op")
}

// BenchmarkE2_A0_GeneralM_Wire — the E2/m=5 workload over wire-backed
// sources under the pipelined executor: per-list batched sorted
// readahead plus the 128-wide random-access overlap, all riding warm
// pooled loopback connections. The acceptance figure of this PR: ns/op
// here must be ≥5x below the _WireNoPrefetch twin. Cost metrics are
// pinned to the base E2 baseline. Run with -benchtime 1x (one op is
// seconds of real round trips on the unpipelined twin).
func BenchmarkE2_A0_GeneralM_Wire(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchWireOver(b, core.A0{}, dbs, agg.Min, 10, core.Pipelined{P: 128})
		})
	}
}

// BenchmarkE2_A0_GeneralM_WireNoPrefetch — the same wire workload under
// the serial executor: one blocking HTTP round trip per access, the
// reference the pipelined figure is measured against. Run with
// -benchtime 1x only.
func BenchmarkE2_A0_GeneralM_WireNoPrefetch(b *testing.B) {
	for _, m := range []int{5} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			dbs := genDBs(32768, m, 4, scoredb.Uniform{}, 2)
			benchWireOver(b, core.A0{}, dbs, agg.Min, 10, core.Serial{})
		})
	}
}
