package fuzzydb_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"fuzzydb"
)

// buildCDStore assembles the paper's running example through the public
// API only.
func buildCDStore(t *testing.T) *fuzzydb.Engine {
	t.Helper()
	names := []string{"Abbey Road", "Let It Be", "Sticky Fingers", "Beggars Banquet", "Nashville Skyline", "Revolver"}
	artists := []string{"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles"}
	covers := [][]float64{
		{0.8, 0.1, 0.1}, {0.1, 0.1, 0.1}, {0.9, 0.05, 0.05},
		{0.6, 0.5, 0.3}, {0.1, 0.2, 0.8}, {0.7, 0.2, 0.1},
	}
	titles := []string{
		"Abbey Road remaster", "Let It Be original mix", "Sticky Fingers deluxe",
		"Beggars Banquet", "Nashville Skyline", "Revolver mono",
	}
	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist", artists),
			fuzzydb.NewVectorSubsystem("AlbumColor", covers, map[string][]float64{
				"red": {1, 0, 0}, "blue": {0, 0, 1},
			}),
			fuzzydb.NewTextSubsystem("Title", titles),
		},
		fuzzydb.WithObjectNames(names),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEndToEndRunningExample(t *testing.T) {
	eng := buildCDStore(t)
	rep, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results: %v", rep.Results)
	}
	if eng.Name(rep.Results[0].Object) != "Abbey Road" {
		t.Errorf("top album = %q, want Abbey Road", eng.Name(rep.Results[0].Object))
	}
	if rep.Plan.Algorithm.Name() != "A0'" {
		t.Errorf("plan = %s", rep.Plan.Algorithm.Name())
	}
	if rep.Cost.Sum() == 0 {
		t.Error("cost not recorded")
	}
}

func TestEndToEndThreeSubsystems(t *testing.T) {
	eng := buildCDStore(t)
	rep, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red" AND Title = "remaster"`, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Only Abbey Road matches all three well.
	if eng.Name(rep.Results[0].Object) != "Abbey Road" {
		t.Errorf("top = %q", eng.Name(rep.Results[0].Object))
	}
	if rep.Results[0].Grade <= rep.Results[1].Grade {
		t.Errorf("grades not separated: %v", rep.Results)
	}
}

func TestDirectAlgorithmAccess(t *testing.T) {
	// Library users can bypass the engine: generate a synthetic workload
	// and run the algorithm family directly.
	db := fuzzydb.DatabaseGenerator{N: 2000, M: 2, Law: fuzzydb.UniformLaw{}, Seed: 7}.MustGenerate()
	srcs := fuzzydb.DatabaseSources(db)
	res, c, err := fuzzydb.TopK(srcs, fuzzydb.Min, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results: %v", res)
	}
	if c.Sum() >= 2*2000 {
		t.Errorf("A0 cost %v not sublinear", c)
	}
	// Same answers from the naive baseline.
	want, _, err := fuzzydb.TopKWith(fuzzydb.NaiveAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res[i].Grade-want[i].Grade) > 1e-12 {
			t.Errorf("grade %d: %v vs %v", i, res[i], want[i])
		}
	}
}

func TestAlgorithmFamilyExported(t *testing.T) {
	db := fuzzydb.DatabaseGenerator{N: 300, M: 2, Seed: 8}.MustGenerate()
	algs := []fuzzydb.Algorithm{
		fuzzydb.FaginsAlgorithm, fuzzydb.FaginsAlgorithmPrime,
		fuzzydb.ThresholdAlgorithm, fuzzydb.UllmanAlgorithm, fuzzydb.NaiveAlgorithm,
	}
	var ref []fuzzydb.Result
	for i, alg := range algs {
		res, _, err := fuzzydb.TopKWith(alg, fuzzydb.DatabaseSources(db), fuzzydb.Min, 4)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if i == 0 {
			ref = res
			continue
		}
		for j := range ref {
			if math.Abs(res[j].Grade-ref[j].Grade) > 1e-12 {
				t.Errorf("%s disagrees at %d: %v vs %v", alg.Name(), j, res[j], ref[j])
			}
		}
	}
}

func TestWeightedQueryThroughPublicAPI(t *testing.T) {
	// "Color matters twice as much as shape" (FW97 / Section 4).
	db := fuzzydb.DatabaseGenerator{N: 500, M: 2, Seed: 9}.MustGenerate()
	w, err := fuzzydb.NewWeighted(fuzzydb.Min, []float64{2.0 / 3, 1.0 / 3})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := fuzzydb.TopK(fuzzydb.DatabaseSources(db), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fuzzydb.TopKWith(fuzzydb.NaiveAlgorithm, fuzzydb.DatabaseSources(db), w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res[i].Grade-want[i].Grade) > 1e-12 {
			t.Errorf("weighted grade %d: %v vs %v", i, res[i], want[i])
		}
	}
}

func TestPaginationThroughPublicAPI(t *testing.T) {
	eng := buildCDStore(t)
	q, err := fuzzydb.ParseQuery(`Artist = "Beatles" AND AlbumColor ~ "red"`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Paginate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := p.NextPage(2)
	if err != nil {
		t.Fatal(err)
	}
	page2, err := p.NextPage(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 2 || len(page2) != 2 {
		t.Fatalf("pages %v / %v", page1, page2)
	}
}

func TestFilterThroughPublicAPI(t *testing.T) {
	eng := buildCDStore(t)
	q, err := fuzzydb.ParseQuery(`AlbumColor ~ "red"`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Filter(context.Background(), q, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Grade < 0.6 {
			t.Errorf("filter leaked %v", r)
		}
	}
}

func TestNonStandardSemanticsThroughPublicAPI(t *testing.T) {
	names := []string{"a", "b", "c"}
	artists := []string{"X", "X", "Y"}
	covers := [][]float64{{1, 0}, {0.5, 0.5}, {0, 1}}
	eng, err := fuzzydb.NewEngine(
		[]fuzzydb.Subsystem{
			fuzzydb.NewRelationalSubsystem("Artist", artists),
			fuzzydb.NewVectorSubsystem("Color", covers, map[string][]float64{"red": {1, 0}}),
		},
		fuzzydb.WithObjectNames(names),
		fuzzydb.WithSemantics(fuzzydb.SemanticsWithTNorm(fuzzydb.AlgebraicProduct)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.TopKString(`Artist = "X" AND Color ~ "red"`, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Under the product, the grade is 1 * similarity(a, red) = 1.
	if rep.Results[0].Object != 0 {
		t.Errorf("top = %v", rep.Results[0])
	}
	// Product conjunction is monotone but not min: planner must use A0.
	if rep.Plan.Algorithm.Name() != "A0" {
		t.Errorf("plan = %s, want A0", rep.Plan.Algorithm.Name())
	}
}

func TestGradedSetPublicAPI(t *testing.T) {
	s := fuzzydb.NewGradedSet()
	if err := s.Insert(0, 0.5); err != nil {
		t.Fatal(err)
	}
	l, err := fuzzydb.NewList([]fuzzydb.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	src := fuzzydb.SourceFromList(l)
	if src.Len() != 2 || src.Grade(0) != 0.9 {
		t.Error("SourceFromList broken")
	}
	sub := fuzzydb.NewStaticSubsystem("S", 2)
	sub.Set("t", l)
	if got, err := sub.Query("t"); err != nil || got.Len() != 2 {
		t.Error("StaticSubsystem broken")
	}
}

func TestOWAThroughPublicAPI(t *testing.T) {
	// Median as an OWA operator, evaluated by A0 (monotone).
	owa, err := fuzzydb.NewOWA([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fuzzydb.NewOWA([]float64{0.5}); err == nil {
		t.Error("bad OWA weights accepted")
	}
	db := fuzzydb.DatabaseGenerator{N: 200, M: 3, Seed: 10}.MustGenerate()
	res, _, err := fuzzydb.TopK(fuzzydb.DatabaseSources(db), owa, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fuzzydb.TopKWith(fuzzydb.NaiveAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Median, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res[i].Grade-want[i].Grade) > 1e-12 {
			t.Errorf("OWA median %v != median %v", res[i], want[i])
		}
	}
}

func TestCostModelPublicAPI(t *testing.T) {
	m := fuzzydb.CostModel{C1: 2, C2: 1}
	c := fuzzydb.Cost{Sorted: 5, Random: 3}
	if m.Of(c) != 13 {
		t.Errorf("weighted cost = %v", m.Of(c))
	}
}

func TestRequestAPIThroughFacade(t *testing.T) {
	eng := buildCDStore(t)
	ctx := context.Background()
	old, err := eng.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]fuzzydb.QueryOption{
		{fuzzydb.TopN(3)},
		{fuzzydb.TopN(3), fuzzydb.WithParallelism(2)},
	} {
		rep, err := eng.QueryString(ctx, `Artist = "Beatles" AND AlbumColor ~ "red"`, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cost != old.Cost || len(rep.Results) != len(old.Results) {
			t.Fatalf("Query disagrees with deprecated TopKString: %v %v vs %v %v",
				rep.Results, rep.Cost, old.Results, old.Cost)
		}
		for i := range rep.Results {
			if rep.Results[i] != old.Results[i] {
				t.Errorf("result %d: %v != %v", i, rep.Results[i], old.Results[i])
			}
		}
	}

	// Streaming matches the one-shot evaluation prefix.
	q, err := fuzzydb.ParseQuery(`Artist = "Beatles" AND AlbumColor ~ "red"`)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []fuzzydb.Result
	for r, err := range eng.Results(ctx, q, fuzzydb.TopN(2)) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
		if len(streamed) == 3 {
			break
		}
	}
	for i := range streamed {
		if streamed[i] != old.Results[i] {
			t.Errorf("streamed %d: %v != %v", i, streamed[i], old.Results[i])
		}
	}

	// Direct evaluation under both executors through the facade.
	db := fuzzydb.DatabaseGenerator{N: 800, M: 3, Law: fuzzydb.UniformLaw{}, Seed: 9}.MustGenerate()
	serialRes, serialCost, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, 6)
	if err != nil {
		t.Fatal(err)
	}
	concRes, concCost, err := fuzzydb.Evaluate(ctx, fuzzydb.FaginsAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, 6,
		fuzzydb.WithEvalExecutor(fuzzydb.ConcurrentExecutor(3)))
	if err != nil {
		t.Fatal(err)
	}
	if serialCost != concCost {
		t.Fatalf("executor cost mismatch: %v vs %v", serialCost, concCost)
	}
	for i := range serialRes {
		if serialRes[i] != concRes[i] {
			t.Errorf("executor result %d mismatch", i)
		}
	}
}

func TestBudgetThroughFacade(t *testing.T) {
	eng := buildCDStore(t)
	db := fuzzydb.DatabaseGenerator{N: 4000, M: 2, Law: fuzzydb.UniformLaw{}, Seed: 10}.MustGenerate()
	_, _, err := fuzzydb.Evaluate(context.Background(), fuzzydb.FaginsAlgorithm, fuzzydb.DatabaseSources(db), fuzzydb.Min, 10,
		fuzzydb.WithEvalBudget(25))
	if !errors.Is(err, fuzzydb.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *fuzzydb.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not expose *fuzzydb.BudgetError", err)
	}
	_ = eng
}
