// Package fuzzydb is a from-scratch implementation of the system in
// Ronald Fagin's "Combining Fuzzy Information from Multiple Systems"
// (PODS 1996 / JCSS 1999): graded-set query semantics for middleware over
// heterogeneous subsystems, and Fagin's Algorithm (A₀) — the provably
// optimal algorithm for finding the top k answers to monotone queries
// with sublinear middleware cost.
//
// The package is a facade over the implementation packages. Typical use
// mirrors the paper's running example — a compact-disk store with a
// relational subsystem for Artist and a QBIC-like image subsystem for
// AlbumColor — through the request API: every evaluation takes a
// context.Context and per-request options:
//
//	artist := fuzzydb.NewRelationalSubsystem("Artist", artists)
//	color := fuzzydb.NewVectorSubsystem("AlbumColor", covers, targets)
//	eng, err := fuzzydb.NewEngine([]fuzzydb.Subsystem{artist, color})
//	rep, err := eng.QueryString(ctx,
//		`Artist = "Beatles" AND AlbumColor ~ "red"`,
//		fuzzydb.TopN(10))
//
// The report carries the answers (a graded set), the exact middleware
// cost (sorted and random accesses, Section 5 of the paper), and the plan
// the optimizer chose (A₀′ for min-conjunctions, B₀ for disjunctions,
// naive for non-monotone queries, A₀ otherwise).
//
// # Requests: cancellation, budgets, parallelism, streaming
//
// The paper's model is middleware talking to remote, independently slow
// subsystems, so evaluation is request-scoped. Canceling the context
// stops an evaluation promptly, mid-phase; TopN bounds the answer count;
// WithAccessBudget caps the Section 5 spend (the evaluation stops with
// ErrBudgetExceeded and a partial-cost report rather than overshooting);
// WithParallelism(p) issues each round's sorted accesses concurrently —
// one worker per subsystem — with access tallies bit-identical to the
// serial execution, since readahead is buffered and only consumption is
// metered. For incremental consumption, Results streams answers in
// descending grade order:
//
//	for r, err := range eng.Results(ctx, q, fuzzydb.TopN(5)) {
//		if err != nil { ... }
//		fmt.Println(r.Object, r.Grade)
//	}
//
// The context-free entry points (TopK, TopKWith, eng.TopK,
// eng.TopKString) remain as deprecated wrappers over the request API and
// keep old callers compiling.
//
// # Sharded evaluation: partitioned universes
//
// WithShards(P) evaluates a request over P disjoint contiguous slices of
// the object universe: the planner's algorithm runs once per shard over
// re-ranked shard views of the subsystem results (each shard serial
// inside — or pipelined inside under WithPrefetch — with shards fanned
// out across workers), and the per-shard answers are combined by a
// threshold-aware top-k merge. Finished shards publish
// their exact answers to a shared scoreboard; a running shard whose
// frontier aggregate t(g̲₁,…,g̲ₘ) — an upper bound on everything it has
// not yet seen — falls strictly below the current global k-th grade is
// fenced and completes over the objects already seen. The answers carry
// the same grade sequence as the unsharded evaluation and the very same
// objects in the same order everywhere above the k-th grade; within a
// tie class AT the k-th grade, both strategies return a correct maximal
// choice (Section 4) drawn from their own candidate sets — byte-for-byte
// identical whenever the k-th grade is untied, which is the generic case
// for continuous grades. On skewed data the fencing makes the sharded
// evaluation do less total access work, not merely the same work in
// parallel. WithShards composes with
// the other options: WithParallelism caps the shard workers (1 =
// deterministic sequential shards) and WithAccessBudget becomes one
// reservation pool shared by every shard, so the global spend still
// never overshoots. The report gains a per-shard cost breakdown.
//
// Pagination composes with sharding: Results and Paginate under
// WithShards(P) keep per-shard state alive across pages, widen every
// shard's top-r computation in place, and merge each page globally, so
// the page sequence matches the unsharded pagination while deeper pages
// resume from each shard's already-paid prefixes.
//
// # Latency hiding: the pipelined executor
//
// When subsystems are genuinely remote — a millisecond per call rather
// than nanoseconds — the dominant cost is waiting, and WithPrefetch(d)
// evaluates the request through the pipelined executor: a background
// prefetcher per subsystem keeps each sorted stream ahead of the
// algorithm by issuing batched sorted accesses whose depth adapts to the
// source (start at 1, double on every stall up to a cap, shrink when
// the algorithm falls behind; d > 0 pins the depth instead), while the
// random-access phase overlaps across subsystems AND objects —
// WithParallelism(p>1) caps the probes in flight, a wider-than-CPU
// default applies otherwise. Payment stays strictly on delivery,
// so the Section 5 tallies remain bit-identical to serial evaluation —
// prefetched-but-unconsumed ranks cost nothing, budgets reserve before
// delivery and a failed reservation closes the pipelines, fencing
// drains them, and cancellation abandons even a wedged batch promptly.
// The report's Prefetch field carries the pipeline stats (deepest
// batch, stalls, physical calls). NewLatencySource / WithSubsystemLatency
// simulate such backends for benchmarking; on the E2/m=5 workload with
// 1 ms/call sources the pipelined executor is over an order of
// magnitude faster than the per-subsystem concurrent executor.
//
// Prefetch composes with sharding: WithShards(P) together with
// WithPrefetch(d) runs every shard under its own pipelined executor —
// the background prefetchers stream the shard's re-ranked views, the
// random-access gather overlaps within each shard, and the total gather
// width and readahead depth are budgeted globally across the shard
// workers, so P shards never multiply the goroutine or buffer footprint
// of one pipelined request. Payment stays on delivery under sharding
// too (tallies bit-identical to the serial sharded evaluation), shard
// fencing drains the fenced shard's pipelines without touching the
// shared budget pool, and Report.Prefetch aggregates the stats across
// shards. This is the configuration for sharded queries against slow
// multi-backend subsystems: on the E2/m=5 workload with 1 ms/call
// sources, the composed mode is ~50x faster than sharded-but-serial
// evaluation.
//
// # Fault tolerance: fallible sources, resilience, degradation
//
// Real remote subsystems fail, so source access is fallible end to end.
// A source that can fail implements the optional subsys.FallibleSource
// interface (TryEntry/TryEntries/TryGrade alongside the infallible
// methods); every evaluation entry point then surfaces a terminal
// failure as a typed *SourceError — which list, at which rank or object,
// after how many attempts — with a valid partial-cost report, under
// every executor and shard configuration alike. Between the backend and
// the evaluation sit two wrappers: NewFaultSource injects seeded
// deterministic faults for testing (error rate, transient or permanent,
// fail-after-N, wedged calls, per-phase targeting), and ResilientSource
// adds retries with exponential backoff and full jitter, per-access
// timeouts, and a circuit breaker — a retried access is still one
// metered access, so transient faults behind a resilient wrapper leave
// results AND Section 5 tallies bit-identical to a fault-free run (the
// cross-executor equivalence fuzz pins this). At the engine level,
// WithDegradedLists(d) opts a request in to graceful degradation: a
// permanently failed list is dropped, the pruned query re-evaluates over
// the survivors (the answer equals a fresh query over them), and
// Report.Degraded records what was lost.
//
// # Performance: the dense-universe fast path
//
// All built-in subsystems grade exactly the objects 0,…,N−1, and the
// engine exploits that: grade memos, seen-sets, and per-object counters
// are pooled flat arrays rather than maps, and sorted prefixes are
// delivered in batched spans. Reported access costs are bit-identical to
// the straightforward map-backed evaluation — the paper's Section 5
// tallies are the contract, the fast path only changes wall-clock. A
// custom Source over a sparse object universe works unchanged via the
// map fallback; one over a dense universe can opt into the fast path by
// also implementing subsys.UniverseHinter.
//
// # Deployment: the wire protocol and cmd/fuzzyserve
//
// The engine deploys as a network service. cmd/fuzzyserve serves a
// scoring database over a JSON/HTTP protocol (internal/wire) in two
// layers: the raw sorted lists as paged source RPCs (GET /v1/meta,
// POST /v1/entries, POST /v1/grade), and the full engine on the same
// mux (POST /v1/query for one-shot evaluation with the complete cost
// report, GET /v1/results for an NDJSON answer cursor that streams the
// continuation iterator and cancels the server-side evaluation when
// the client disconnects). Two client shapes consume it. A thin client
// posts whole queries — cmd/fuzzyquery -connect does this, printing
// the same report a local run prints. A full engine dials the source
// RPCs instead (wire.Dial): each remote list arrives as an ordinary
// Source that also implements subsys.FallibleSource (HTTP and
// transport failures flow through the typed-error, retry/breaker, and
// degradation machinery above — never a panic), binds per-request
// contexts to its network calls, and coalesces sorted spans into paged
// fetches over a pooled transport. Transparency is the contract, and
// it is pinned by loopback integration tests: results and Section 5
// tallies over wire-backed sources are bit-identical to in-process
// evaluation under every executor and shard configuration — the wire
// adds only latency, which is exactly what WithPrefetch hides (the
// _Wire benchmarks measure that win against a real network stack).
// See examples/wireserve for the minimal server-plus-client program.
//
// # Caching: epoch-versioned results over mutable sources
//
// Repeat queries dominate many read-heavy workloads, and a finished
// top-k answer is its own certificate of correctness (every object
// outside it aggregates to at most the k-th grade — the same bound the
// stop threshold τ = t(g̲₁,…,g̲ₘ) establishes). WithCache(n) equips an
// engine with a bounded LRU over completed reports, keyed by the
// normalized query AST, k, algorithm, aggregation law, and execution
// shape: a repeat request is served in O(k) with ZERO source accesses,
// bit-identical to recomputation (results and Section 5 tallies), with
// Report.Cache recording the hit, the data-version fingerprint, and
// the access cost saved. Only pure computations are cached — budgeted,
// degraded, non-exact (NRA), and non-monotone evaluations recompute
// every time, as do the streaming entry points.
//
// Data may change under the cache. NewMutableSubsystem serves graded
// lists that support in-place grade updates: UpdateGrade replaces one
// object's grade by copy-on-write (snapshots already handed to running
// evaluations or cursors are immutable), bumps the subsystem's epoch,
// and journals the change. A cache lookup whose entry lags the current
// epochs replays the missed updates through a threshold test against
// the entry's stored k-th grade: updates that provably cannot disturb
// the cached top k (lowered non-members; raises whose aggregate bound
// stays below the k-th grade) leave the entry serving hits, and only
// updates that could actually change the answer evict it — instead of
// the evict-all a version-tag cache would do. Wholesale list
// replacement (Set) and journal overflow evict conservatively, and
// eng.Invalidate drops everything. The equivalence contract — hit or
// miss, answers equal an always-recompute oracle — is pinned across
// executors, sharding, and random update interleavings by the
// middleware fuzz harness; see package internal/cache for the
// invalidation argument and the staleness contract.
//
// # Admission control: tenants, fair scheduling, load shedding
//
// One engine process shared by many callers needs a policy for who
// runs when the offered load exceeds what the sources can serve.
// WithScheduler(NewScheduler(cfg)) places an admission layer in front
// of Query and Results, denominated in the same Section 5 access-cost
// units the engine meters: each tenant (named per request by
// WithTenant) holds a token bucket refilled at a configured rate of
// cost units per second, a query reserves its tenant's recent-cost
// estimate on admission and settles the reservation against the exact
// cost its Report tallied (a cache hit settles at zero), and tenants
// with queued work are admitted in weighted-fair order — over any
// saturated interval each backlogged tenant receives access-cost
// service proportional to its configured weight. A global
// MaxConcurrent bounds the evaluations in flight, and each admitted
// query is granted a share of a global MaxWidth prefetch/gather
// envelope, clamping its pipelined fan-out and shard workers so total
// source pressure stays bounded no matter how many callers arrive.
//
// Work that cannot be served in time is shed, not queued forever: a
// request rejects with a typed *OverloadError — tenant, queue depth,
// and a RetryAfter advice — when its tenant's queue overflows or its
// context deadline provably cannot be met. cmd/fuzzyserve maps the
// shed to HTTP 429 with a Retry-After header, which resilient wire
// clients honor over their own exponential backoff, so a fleet drains
// at the server's advised pace. An engine built without WithScheduler
// has no admission layer at all: nothing is metered, queued, or
// reordered, and every report stays bit-identical to an engine that
// predates the scheduler.
//
// Lower-level building blocks — the algorithms, aggregation functions,
// graded sets, synthetic workload generators, and the experiment harness
// reproducing the paper's analysis — are exported as aliases so library
// users can compose them directly; see the type and function groups
// below.
package fuzzydb

import (
	"context"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/middleware"
	"fuzzydb/internal/query"
	"fuzzydb/internal/sched"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// Graded sets (Section 2 of the paper).
type (
	// Entry is one element of a graded set: an object with its grade.
	Entry = gradedset.Entry
	// GradedSet is a fuzzy set: objects mapped to grades in [0, 1].
	GradedSet = gradedset.GradedSet
	// List is a graded set materialized in descending-grade order.
	List = gradedset.List
)

// NewGradedSet returns an empty graded set.
func NewGradedSet() *GradedSet { return gradedset.New() }

// NewList builds a sorted graded list from entries.
func NewList(entries []Entry) (*List, error) { return gradedset.NewList(entries) }

// Aggregation functions (Section 3).
type (
	// AggFunc maps a grade vector to a grade; Monotone and Strict report
	// the properties the paper's theorems depend on.
	AggFunc = agg.Func
	// TNorm is a triangular norm (conjunction rule).
	TNorm = agg.TNorm
	// CoNorm is a triangular co-norm (disjunction rule).
	CoNorm = agg.CoNorm
)

// The standard rules and the catalogued t-norm zoo.
var (
	// Min is the standard fuzzy conjunction (Zadeh).
	Min = agg.Min
	// Max is the standard fuzzy disjunction (Zadeh).
	Max = agg.Max
	// Median is the middle order statistic (not strict; Remark 6.1).
	Median = agg.Median
	// ArithmeticMean averages grades (monotone and strict; not a t-norm).
	ArithmeticMean = agg.ArithmeticMean
	// GeometricMean is the multiplicative mean (monotone and strict).
	GeometricMean = agg.GeometricMean
	// AlgebraicProduct is the probabilistic t-norm x·y.
	AlgebraicProduct = agg.AlgebraicProduct
	// BoundedDifference is the Łukasiewicz t-norm max(0, x+y−1).
	BoundedDifference = agg.BoundedDifference
	// EinsteinProduct is the Einstein t-norm.
	EinsteinProduct = agg.EinsteinProduct
	// HamacherProduct is the Hamacher t-norm.
	HamacherProduct = agg.HamacherProduct
)

// NewWeighted builds the Fagin–Wimmers weighted form of base under
// weights (nonnegative, summing to 1).
func NewWeighted(base AggFunc, weights []float64) (AggFunc, error) {
	return agg.NewWeighted(base, weights)
}

// NewOWA builds Yager's ordered weighted averaging operator: grades are
// sorted descending and combined by the weight vector. OWA interpolates
// max, min, mean, median, and the gymnastics rule by choice of weights;
// it is strict exactly when the last weight is positive.
func NewOWA(weights []float64) (AggFunc, error) {
	return agg.NewOWA(weights)
}

// Parameterized t-norm families (all members monotone and strict, so the
// paper's bounds apply uniformly across each family).
var (
	// YagerTNorm is the Yager family: p=1 is bounded difference, p→∞
	// approaches min.
	YagerTNorm = agg.YagerTNorm
	// HamacherFamily sweeps Hamacher product (γ=0) through algebraic
	// (γ=1) to Einstein (γ=2) and beyond.
	HamacherFamily = agg.HamacherFamily
	// FrankTNorm is the Frank family: s→0 min, s→1 product, s→∞ bounded
	// difference.
	FrankTNorm = agg.FrankTNorm
	// DombiTNorm is the Dombi family: λ→∞ approaches min.
	DombiTNorm = agg.DombiTNorm
	// SchweizerSklarTNorm is the positive branch of the Schweizer–Sklar
	// family.
	SchweizerSklarTNorm = agg.SchweizerSklarTNorm
)

// ValidatedSource wraps a source with subsystem-contract checking:
// descending sorted order, no duplicate objects, grades in [0,1], and
// random access consistent with sorted access. Violations panic with a
// diagnostic; use it when integrating an untrusted subsystem.
func ValidatedSource(src Source) Source { return subsys.Validated(src) }

// Queries (Section 2) and their compiled form.
type (
	// Query is a Boolean combination of atomic queries.
	Query = query.Node
	// Atomic is an atomic query Attribute = Target.
	Atomic = query.Atomic
	// And is a fuzzy conjunction node.
	And = query.And
	// Or is a fuzzy disjunction node.
	Or = query.Or
	// Not is a fuzzy negation node.
	Not = query.Not
	// Semantics selects the connective rules (default: min/max/1−x).
	Semantics = query.Semantics
)

// ParseQuery reads a query in concrete syntax, e.g.
// `(Artist = "Beatles") AND (AlbumColor ~ "red")`.
func ParseQuery(s string) (Query, error) { return query.Parse(s) }

// StandardSemantics returns Zadeh's rules: min, max, 1−x.
func StandardSemantics() Semantics { return query.Standard() }

// SemanticsWithTNorm evaluates conjunctions with t and disjunctions with
// its dual co-norm.
func SemanticsWithTNorm(t TNorm) Semantics { return query.WithTNorm(t) }

// Subsystems (Section 4's access model).
type (
	// Source is a graded query result supporting sorted and random access.
	Source = subsys.Source
	// Subsystem answers atomic queries over one attribute.
	Subsystem = subsys.Subsystem
	// RelationalSubsystem grades crisply (0/1) from stored values.
	RelationalSubsystem = subsys.Relational
	// VectorSubsystem grades by feature-vector similarity (QBIC stand-in).
	VectorSubsystem = subsys.Vector
	// TextSubsystem grades by token overlap.
	TextSubsystem = subsys.Text
	// StaticSubsystem serves precomputed graded lists.
	StaticSubsystem = subsys.Static
)

// NewRelationalSubsystem builds a relational subsystem over values[obj].
func NewRelationalSubsystem(attr string, values []string) *RelationalSubsystem {
	return subsys.NewRelational(attr, values)
}

// NewVectorSubsystem builds a similarity subsystem over features[obj]
// with named target vectors.
func NewVectorSubsystem(attr string, features [][]float64, targets map[string][]float64) *VectorSubsystem {
	return subsys.NewVector(attr, features, targets)
}

// NewTextSubsystem builds a token-overlap subsystem over documents.
func NewTextSubsystem(attr string, docs []string) *TextSubsystem {
	return subsys.NewText(attr, docs)
}

// NewStaticSubsystem builds a subsystem serving registered graded lists.
func NewStaticSubsystem(attr string, n int) *StaticSubsystem {
	return subsys.NewStatic(attr, n)
}

// Mutable sources: versioned grade updates under the result cache.
type (
	// MutableSubsystem serves graded lists that support in-place grade
	// updates: UpdateGrade replaces one object's grade by copy-on-write
	// (snapshots handed to running evaluations stay immutable), bumps
	// the subsystem's epoch, and journals the change so a result cache
	// can invalidate selectively (see WithCache).
	MutableSubsystem = subsys.Mutable
	// VersionedSubsystem is the optional capability a result cache uses
	// to revalidate entries: a current epoch plus a bounded journal of
	// the grade updates since a given epoch.
	VersionedSubsystem = subsys.Versioned
	// GradeUpdate is one journaled grade change.
	GradeUpdate = subsys.Update
)

// DefaultJournalDepth is the update-journal bound NewMutableSubsystem
// uses; entries older than the journal evict cached results
// conservatively.
const DefaultJournalDepth = subsys.DefaultJournalDepth

// NewMutableSubsystem builds a mutable subsystem over n objects; register
// lists with Set, update grades in place with UpdateGrade.
func NewMutableSubsystem(attr string, n int) *MutableSubsystem {
	return subsys.NewMutable(attr, n, subsys.DefaultJournalDepth)
}

// SourceFromList wraps a graded list as a Source.
func SourceFromList(l *List) Source { return subsys.FromList(l) }

// LatencyOption configures simulated-latency wrappers (NewLatencySource,
// WithSubsystemLatency).
type LatencyOption = subsys.LatencyOption

// WithLatencyJitter makes a simulated-latency wrapper sleep a randomized
// duration: each delay is scaled by a seeded uniform factor in
// [1−frac, 1+frac], so concurrent executors see realistically uneven
// backends while access tallies stay untouched (jitter, like latency,
// moves wall-clock only).
func WithLatencyJitter(frac float64, seed uint64) LatencyOption {
	return subsys.WithLatencyJitter(frac, seed)
}

// NewLatencySource wraps a source with simulated remote-backend latency:
// every physical call sleeps perCall plus perItem per delivered entry or
// grade, so batched sorted access amortizes the per-call price over the
// span. Access tallies are unchanged — latency moves wall-clock only.
// Wrapping a fallible source (e.g. a FaultSource) preserves its failure
// behavior: the latency is paid, then the error surfaces.
func NewLatencySource(src Source, perCall, perItem time.Duration, opts ...LatencyOption) Source {
	return subsys.NewLatencySource(src, perCall, perItem, opts...)
}

// WithSubsystemLatency wraps a subsystem so every source it produces
// simulates remote-backend latency (see NewLatencySource): the stand-in
// for benchmarking and demonstrating the latency-hiding executors
// against slow backends.
func WithSubsystemLatency(sub Subsystem, perCall, perItem time.Duration, opts ...LatencyOption) Subsystem {
	return subsys.WithLatency(sub, perCall, perItem, opts...)
}

// Fault tolerance: fallible sources, fault injection, and resilience.
type (
	// SourceError is the typed error every evaluation entry point returns
	// when a subsystem list fails terminally: which list, at which rank or
	// object, after how many attempts, wrapping the underlying cause
	// (errors.As / errors.Unwrap).
	SourceError = subsys.SourceError
	// FaultPlan is a seeded deterministic fault-injection plan for
	// NewFaultSource / WithSubsystemFaults: error rate, transient-vs-
	// permanent behavior, fail-after-N, wedge duration, and per-phase
	// targeting.
	FaultPlan = subsys.FaultPlan
	// FaultPhase selects which access phases a fault plan targets.
	FaultPhase = subsys.FaultPhase
	// FaultError is the error an injected fault surfaces as; Transient()
	// reports whether retrying can clear it.
	FaultError = subsys.FaultError
	// ResiliencePolicy configures the Resilient wrapper: retries with
	// exponential backoff and full jitter, per-access timeouts, and a
	// circuit breaker.
	ResiliencePolicy = subsys.Policy
	// BreakerPolicy configures the circuit breaker inside a
	// ResiliencePolicy.
	BreakerPolicy = subsys.Breaker
	// ResilienceStats counts what a resilient wrapper did: retries,
	// timeouts, breaker trips, and fast-fails.
	ResilienceStats = subsys.ResilienceStats
	// BreakerOpenError reports an access refused by an open circuit
	// breaker (not retryable until the cooldown elapses).
	BreakerOpenError = subsys.BreakerOpenError
	// RetryError reports an access that kept failing after the policy's
	// retries; it wraps the final underlying error.
	RetryError = subsys.RetryError
	// TimeoutError reports an access abandoned by PerAccessTimeout.
	TimeoutError = subsys.TimeoutError
	// DegradedList records one subsystem list a degraded evaluation
	// dropped (see WithDegradedLists and Report.Degraded).
	DegradedList = middleware.DegradedList
)

// Fault phases for FaultPlan.Phase (zero value targets both).
const (
	// FaultSortedAccess targets sorted (ranked) access only.
	FaultSortedAccess = subsys.FaultSortedAccess
	// FaultRandomAccess targets random (by-object) access only.
	FaultRandomAccess = subsys.FaultRandomAccess
	// FaultBoth targets both access phases.
	FaultBoth = subsys.FaultBoth
)

// NewFaultSource wraps a source with seeded deterministic fault
// injection: accesses hitting the plan's fault sites fail with a
// *FaultError instead of delivering. Fault sites are a pure function of
// the seed and the access coordinates (rank or object), so the same plan
// fails at the same places under every executor, shard count, and batch
// shape — the property the cross-executor equivalence tests rely on.
func NewFaultSource(src Source, plan FaultPlan) Source {
	return subsys.NewFaultSource(src, plan)
}

// WithSubsystemFaults wraps a subsystem so every source it produces
// injects faults per the plan (each query's source gets a seed derived
// from the plan seed and the query target, so distinct atoms fail
// independently but reproducibly).
func WithSubsystemFaults(sub Subsystem, plan FaultPlan) Subsystem {
	return subsys.WithFaults(sub, plan)
}

// ResilientSource wraps a fallible source with the policy's retry,
// timeout, and circuit-breaker machinery: transient faults are retried
// invisibly with exponential backoff and full jitter (a retried access
// is still ONE metered access — resilience changes wall-clock, never the
// Section 5 tallies), a wedged call is abandoned after PerAccessTimeout,
// and a tripped breaker fails fast with *BreakerOpenError until its
// cooldown half-opens it.
func ResilientSource(src Source, pol ResiliencePolicy) Source {
	return subsys.Resilient(src, pol)
}

// WithSubsystemResilience wraps a subsystem so every source it produces
// is resilient per the policy (each source gets its own breaker and
// backoff state; see ResilientSource).
func WithSubsystemResilience(sub Subsystem, pol ResiliencePolicy) Subsystem {
	return subsys.WithResilience(sub, pol)
}

// Algorithms (Section 4) and evaluation.
type (
	// Algorithm finds top-k answers through sorted and random access.
	Algorithm = core.Algorithm
	// Result is one answer: object and overall grade.
	Result = core.Result
	// Cost is the middleware access cost (Section 5).
	Cost = cost.Cost
	// CostModel prices sorted and random accesses (c₁, c₂).
	CostModel = cost.Model
	// Paginator delivers "the next k best" incrementally.
	Paginator = core.Paginator
	// Executor decides how the physical source operations of an
	// evaluation are issued (serial or overlapped across subsystems);
	// access tallies are executor-independent.
	Executor = core.Executor
	// ExecContext carries one evaluation's context, executor, cost
	// model, and budget; library users driving algorithms directly build
	// one via core semantics (see Evaluate for the packaged form).
	ExecContext = core.ExecContext
	// EvalOption configures Evaluate (executor, cost model, budget).
	EvalOption = core.EvalOption
	// BudgetError reports an evaluation halted by its access budget,
	// with the limit and spend (errors.Is(err, ErrBudgetExceeded)).
	BudgetError = core.BudgetError
)

// ErrBudgetExceeded classifies evaluations halted by WithAccessBudget.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// SerialExecutor returns the inline executor: every subsystem access on
// the calling goroutine, exactly as the paper's cost analysis narrates.
func SerialExecutor() Executor { return core.Serial{} }

// ConcurrentExecutor returns the overlapping executor: up to p source
// operations in flight at once, one worker per subsystem, with sorted
// readahead buffered so the Section 5 tallies stay bit-identical to the
// serial execution. p ≤ 0 means GOMAXPROCS.
func ConcurrentExecutor(p int) Executor { return core.Concurrent{P: p} }

// PipelinedExecutor returns the latency-hiding executor for slow or
// remote subsystems: a background prefetcher per list issues batched
// sorted accesses with adaptive depth (depth 0: start at 1, double on
// stall, shrink when the algorithm falls behind; depth > 0 pins it), and
// the random-access phase overlaps across subsystems and objects with up
// to width probes in flight (width ≤ 0 selects a wider-than-CPU
// default). Payment stays strictly on delivery, so Section 5 tallies are
// bit-identical to the serial execution. Sources must tolerate
// concurrent reads (all built-in ones do).
func PipelinedExecutor(width, depth int) Executor { return core.Pipelined{P: width, Depth: depth} }

// WithEvalExecutor selects the executor for one Evaluate call.
func WithEvalExecutor(x Executor) EvalOption { return core.WithExecutor(x) }

// WithEvalCostModel prices accesses for Evaluate's budget accounting.
func WithEvalCostModel(m CostModel) EvalOption { return core.WithCostModel(m) }

// WithEvalBudget caps the weighted access cost of one Evaluate call.
func WithEvalBudget(limit float64) EvalOption { return core.WithAccessBudget(limit) }

// The algorithm family.
var (
	// FaginsAlgorithm is A₀: correct for every monotone query, optimal
	// for monotone strict ones.
	FaginsAlgorithm Algorithm = core.A0{}
	// FaginsAlgorithmPrime is A₀′: the min-conjunction refinement.
	FaginsAlgorithmPrime Algorithm = core.A0Prime{}
	// DisjunctionAlgorithm is B₀ for max queries: cost mk.
	DisjunctionAlgorithm Algorithm = core.B0{}
	// MedianAlgorithm evaluates the median by subset decomposition.
	MedianAlgorithm Algorithm = core.OrderStat{}
	// UllmanAlgorithm is the Section 9 sequential-probe algorithm (m=2).
	UllmanAlgorithm Algorithm = core.Ullman{}
	// AdaptiveAlgorithm is A₀ with per-list depths chosen by frontier
	// grade (the Section 4 "Tᵢ ≤ T" refinement direction).
	AdaptiveAlgorithm Algorithm = core.A0Adaptive{}
	// FilterFirstAlgorithm evaluates a selective binary conjunct first
	// (Section 4's opening strategy); list 0 must be 0/1-graded.
	FilterFirstAlgorithm Algorithm = core.FilterFirst{}
	// ThresholdAlgorithm is TA, the successor of A₀ (extension).
	ThresholdAlgorithm Algorithm = core.TA{}
	// NoRandomAccessAlgorithm is NRA (extension; grades are lower bounds).
	NoRandomAccessAlgorithm Algorithm = core.NRA{}
	// NaiveAlgorithm is the linear baseline.
	NaiveAlgorithm Algorithm = core.NaiveSorted{}
)

// Evaluate finds the top k answers of F_t(sources...) with the given
// algorithm under the caller's context, and reports the exact middleware
// cost — the full tallies on success, the partial spend when the
// evaluation stops early on cancellation or budget exhaustion.
func Evaluate(ctx context.Context, alg Algorithm, sources []Source, t AggFunc, k int, opts ...EvalOption) ([]Result, Cost, error) {
	return core.Evaluate(ctx, alg, sources, t, k, opts...)
}

// Sharded evaluation (partitioned universes).
type (
	// ShardConfig configures EvaluateSharded: shard count, worker cap,
	// and the shared access budget.
	ShardConfig = core.ShardConfig
	// ShardReport is a sharded evaluation's outcome: global top-k
	// results plus total, per-list, and per-shard Section 5 tallies.
	ShardReport = core.ShardReport
)

// EvaluateSharded finds the top k answers of F_t(sources...) by
// partitioned evaluation: the universe is split into contiguous shards,
// the algorithm runs once per shard over re-ranked views, and the
// per-shard answers are combined by a threshold-aware top-k merge that
// fences shards whose remaining objects provably cannot reach the
// global top k. Results match the unsharded evaluation (identical
// grades; identical objects above the k-th grade; ties at the k-th
// grade resolve to a correct maximal choice); see core.EvaluateSharded
// for the full contract.
func EvaluateSharded(ctx context.Context, alg Algorithm, sources []Source, t AggFunc, k int, cfg ShardConfig) (*ShardReport, error) {
	return core.EvaluateSharded(ctx, alg, sources, t, k, cfg)
}

// TopK finds the top k answers of F_t(sources...) with Fagin's Algorithm
// and reports the exact middleware cost.
//
// Deprecated: use Evaluate with a context.
func TopK(sources []Source, t AggFunc, k int) ([]Result, Cost, error) {
	return core.Evaluate(context.Background(), core.A0{}, sources, t, k)
}

// TopKWith runs a specific algorithm from the family.
//
// Deprecated: use Evaluate with a context.
func TopKWith(alg Algorithm, sources []Source, t AggFunc, k int) ([]Result, Cost, error) {
	return core.Evaluate(context.Background(), alg, sources, t, k)
}

// Engine: the Garlic-style middleware.
type (
	// Engine routes queries to subsystems, plans, and evaluates. Its
	// request API is Query / QueryString / Results (context plus
	// QueryOptions); the context-free TopK forms are deprecated
	// wrappers.
	Engine = middleware.Middleware
	// Report is a query outcome: results, exact cost, and the plan. On
	// cancellation or budget exhaustion it carries the partial cost with
	// nil results.
	Report = middleware.Report
	// Plan describes the chosen algorithm and its justification.
	Plan = middleware.Plan
	// EngineOption configures NewEngine.
	EngineOption = middleware.Option
	// QueryOption configures one engine request (TopN, WithAlgorithm,
	// WithParallelism, WithAccessBudget, WithCostModel).
	QueryOption = middleware.QueryOption
	// UnknownAttributeError carries the attribute no subsystem owns
	// (errors.As; errors.Is ErrUnknownAttribute also matches).
	UnknownAttributeError = middleware.UnknownAttributeError
	// SizeMismatchError carries the attribute and sizes of a universe
	// disagreement.
	SizeMismatchError = middleware.SizeMismatchError
	// PipelineStats reports what a request's background prefetch
	// pipelines did (deepest batch, stalls, physical batched calls); see
	// Report.Prefetch.
	PipelineStats = subsys.PipelineStats
)

// Sentinels classifying engine errors (see the typed forms above).
var (
	// ErrUnknownAttribute reports an atom whose attribute no registered
	// subsystem owns.
	ErrUnknownAttribute = middleware.ErrUnknownAttribute
	// ErrSizeMismatch reports subsystems or results over different
	// object universes.
	ErrSizeMismatch = middleware.ErrSizeMismatch
)

// NewEngine builds an engine over subsystems sharing one object universe.
func NewEngine(subsystems []Subsystem, opts ...EngineOption) (*Engine, error) {
	return middleware.New(subsystems, opts...)
}

// WithSemantics replaces the standard connective rules.
func WithSemantics(sem Semantics) EngineOption { return middleware.WithSemantics(sem) }

// WithObjectNames attaches display names to objects.
func WithObjectNames(names []string) EngineOption { return middleware.WithNames(names) }

// Result caching (see the package notes on caching).
type (
	// CacheInfo records how the result cache handled one request; see
	// Report.Cache.
	CacheInfo = middleware.CacheInfo
	// CacheStats are the result cache's cumulative counters
	// (eng.CacheStats).
	CacheStats = middleware.CacheStats
)

// WithCache equips the engine with a bounded result cache of the given
// capacity in entries (non-positive selects a default). Repeat
// cacheable queries are served in O(k) with zero source accesses and
// reports bit-identical to recomputation; grade updates on mutable
// subsystems evict only the entries they could disturb. Invalidate,
// CacheStats, and CacheLen on the engine manage and observe it.
func WithCache(capacity int) EngineOption { return middleware.WithCache(capacity) }

// Admission control (see the package notes on admission control).
type (
	// Scheduler is the admission-control layer WithScheduler installs:
	// per-tenant token buckets in access-cost units, weighted-fair
	// admission, a concurrency/width governor, and deadline-aware load
	// shedding. Build one with NewScheduler; one Scheduler may front
	// several engines to give them a shared admission domain.
	Scheduler = sched.Scheduler
	// SchedulerConfig configures NewScheduler: default Rate/Burst,
	// MaxConcurrent, MaxQueue, MaxWidth, and per-tenant overrides.
	SchedulerConfig = sched.Config
	// SchedulerTenantConfig is one tenant's weight and token-bucket
	// override inside SchedulerConfig.Tenants.
	SchedulerTenantConfig = sched.TenantConfig
	// OverloadError is the typed rejection of a shed request: the
	// tenant, its queue depth, and a RetryAfter advice (errors.As).
	OverloadError = sched.OverloadError
	// TenantStats is one tenant's admission counters (Scheduler.Stats).
	TenantStats = sched.TenantStats
)

// NewScheduler builds an admission scheduler for WithScheduler.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return sched.New(cfg) }

// WithScheduler places an admission scheduler in front of the engine:
// every Query and Results call is first admitted against its tenant's
// token bucket and the weighted-fair queue, and settled with the
// request's exact access cost afterwards. Overload rejects with a
// typed *OverloadError. A nil scheduler leaves admission off.
func WithScheduler(s *Scheduler) EngineOption { return middleware.WithScheduler(s) }

// WithTenant names the admission tenant one request bills to under an
// engine built WithScheduler; without a scheduler it is inert. The
// empty name (the default) is the anonymous tenant.
func WithTenant(name string) QueryOption { return middleware.WithTenant(name) }

// Per-request options for Engine.Query, Engine.QueryString,
// Engine.Results, and Engine.Paginate.

// DefaultTopN is the answer count a request gets without TopN.
const DefaultTopN = middleware.DefaultTopN

// TopN asks a request for the k best answers (default DefaultTopN; a k
// beyond the universe size means "all").
func TopN(k int) QueryOption { return middleware.TopN(k) }

// WithAlgorithm overrides the planner's algorithm choice for one
// request; the caller takes on the planner's job of matching algorithm
// to query shape.
func WithAlgorithm(alg Algorithm) QueryOption { return middleware.WithAlgorithm(alg) }

// WithParallelism evaluates one request with up to p subsystem accesses
// in flight at once (one worker per subsystem); tallies stay
// bit-identical to serial evaluation. Combined with WithShards it caps
// the number of shard workers instead.
func WithParallelism(p int) QueryOption { return middleware.WithParallelism(p) }

// WithShards evaluates one request over p disjoint contiguous slices of
// the object universe: the chosen algorithm runs once per shard over
// re-ranked shard views, and the per-shard answers are combined by a
// threshold-aware top-k merge that stops shards early once they
// provably cannot contribute. Answers match the unsharded evaluation —
// identical grade sequence, identical objects above the k-th grade;
// ties AT the k-th grade resolve to a correct maximal choice that
// coincides byte-for-byte whenever that grade is untied (see the
// package notes on sharded evaluation). The report adds a per-shard
// cost breakdown. Composes with WithParallelism (shard worker cap; 1 =
// deterministic sequential shards), WithAccessBudget (one reservation
// pool shared by all shards), and WithPrefetch (per-shard latency-hiding
// pipelines; see WithPrefetch).
func WithShards(p int) QueryOption { return middleware.WithShards(p) }

// ShardPlanPolicy selects how WithShards cuts the universe into shard
// ranges; see WithShardPlan.
type ShardPlanPolicy = core.ShardPlanPolicy

// Shard boundary policies for WithShardPlan.
const (
	// ShardPlanEven splits the universe into near-equal object counts
	// (the default).
	ShardPlanEven = core.ShardPlanEven
	// ShardPlanWeighted cuts at quantiles of the predicted access work
	// derived from per-list grade-distribution sketches, so shard
	// boundaries equalize expected cost instead of object count on
	// skewed data.
	ShardPlanWeighted = core.ShardPlanWeighted
)

// WithShardPlan selects the shard-boundary policy for WithShards.
// Under ShardPlanWeighted the engine consults per-list
// grade-distribution sketches — exact cached ones from subsystems that
// can serve them, bounded unmetered sampling otherwise — and cuts the
// universe where predicted access work balances, so one hot region no
// longer bounds the whole sharded query. Sketching and planning never
// touch the Section 5 tallies; with no usable sketch the plan
// degenerates to the even split byte for byte. The report's
// ShardDetails carries each shard's planned and actual cost. No-op
// without WithShards.
func WithShardPlan(p ShardPlanPolicy) QueryOption { return middleware.WithShardPlan(p) }

// WithWorkStealing lets shard workers that finish early split the
// remaining range of the most-behind running shard and evaluate the
// ceded tail themselves, under the same shared budget pool and
// threshold scoreboard. Answers are unchanged (the sharded-vs-unsharded
// equivalence contract holds); per-shard tallies become timing-
// dependent, so leave it off when reproducible cost breakdowns matter.
// Engages only under WithShards with more than one shard worker and a
// fence-safe algorithm; Report.Stolen and ShardDetails count the
// splits. No-op otherwise.
func WithWorkStealing(on bool) QueryOption { return middleware.WithWorkStealing(on) }

// WithPrefetch evaluates one request with the pipelined latency-hiding
// executor: background per-subsystem prefetchers keep sorted streams
// ahead of the algorithm with adaptively batched accesses (depth 0 =
// adaptive, >0 pins the batch depth), and random accesses overlap across
// subsystems and objects. Tallies stay bit-identical to serial
// evaluation; the report's Prefetch field carries the pipeline stats.
// Combined with WithShards(p) every shard pipelines internally against
// its re-ranked views, with the gather width and readahead depth
// budgeted globally across the shard workers; the stats aggregate
// across shards.
func WithPrefetch(depth int) QueryOption { return middleware.WithPrefetch(depth) }

// WithAccessBudget caps one request's weighted middleware cost; the
// evaluation stops with ErrBudgetExceeded and a partial-cost report
// rather than overshooting.
func WithAccessBudget(limit float64) QueryOption { return middleware.WithAccessBudget(limit) }

// WithCostModel prices sorted and random accesses for the request's
// budget accounting.
func WithCostModel(model CostModel) QueryOption { return middleware.WithCostModel(model) }

// WithDegradedLists opts one request in to graceful degradation: when a
// subsystem list fails permanently mid-query, the engine drops the
// failed atom and re-evaluates the pruned query over the surviving
// lists — the answer equals a fresh query over the survivors — up to
// maxDrop times, recording what was lost in Report.Degraded. Without
// this option (and always for Results, Paginate, and Filter) a source
// failure fails fast with a typed *SourceError and a valid partial-cost
// report.
func WithDegradedLists(maxDrop int) QueryOption { return middleware.WithDegradedLists(maxDrop) }

// Synthetic workloads (Section 5's probabilistic model).
type (
	// Database is a scoring database: m graded lists over N objects.
	Database = scoredb.Database
	// DatabaseGenerator draws databases under the paper's workload model.
	DatabaseGenerator = scoredb.Generator
	// GradeLaw is a marginal grade distribution.
	GradeLaw = scoredb.GradeLaw
)

// Grade laws for the generator.
type (
	// UniformLaw is iid Uniform[0,1].
	UniformLaw = scoredb.Uniform
	// BinaryLaw is 0/1 with selectivity P.
	BinaryLaw = scoredb.Binary
	// BoundedLaw is Uniform[0,Max] (Section 9's regime).
	BoundedLaw = scoredb.BoundedAbove
)

// DatabaseSources adapts a scoring database's lists to Sources.
func DatabaseSources(db *Database) []Source {
	out := make([]Source, db.M())
	for i := range out {
		out[i] = subsys.FromList(db.List(i))
	}
	return out
}
