// Command benchjson runs the experiment benchmarks and emits a JSON
// snapshot of the performance trajectory: ns/op and middleware-cost/op
// for each benchmark, plus environment metadata. Successive PRs commit
// the snapshot (BENCH_PR<n>.json) so regressions in either wall-clock or
// Section 5 access counts are visible in review diffs.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regexp] [-benchtime 2s] [-o BENCH.json]
//
// It shells out to `go test -bench` on the repository root package and
// parses the standard benchmark output, so the numbers are exactly what
// a developer sees locally.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Measurement is one benchmark's numbers.
type Measurement struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every custom b.ReportMetric value, keyed by unit
	// (middleware-cost/op, weighted-cost/op, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Bench       string        `json:"bench_regexp"`
	BenchTime   string        `json:"benchtime"`
	Results     []Measurement `json:"results"`
}

// benchLine matches e.g.
// BenchmarkE1_A0_SqrtN/N=4096-8   1024   1167 ns/op   853 middleware-cost/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	// The default matches the exact benchmarks tracked in BENCH_PR<n>.json
	// (anchored full names: a bare "BenchmarkE1" would also match E10-E16).
	bench := flag.String("bench", "BenchmarkE1_A0_SqrtN|BenchmarkE2_A0_GeneralM", "benchmarks to run (go test -bench regexp)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}

	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Bench:       *bench,
		BenchTime:   *benchtime,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		meas := Measurement{Name: trimCPUSuffix(m[1])}
		meas.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				meas.NsPerOp = v
				continue
			}
			if meas.Metrics == nil {
				meas.Metrics = make(map[string]float64)
			}
			meas.Metrics[unit] = v
		}
		snap.Results = append(snap.Results, meas)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Results))
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix go test appends.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
