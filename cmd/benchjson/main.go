// Command benchjson runs the experiment benchmarks and emits a JSON
// snapshot of the performance trajectory: ns/op and middleware-cost/op
// for each benchmark, plus environment metadata. Successive PRs commit
// the snapshot (BENCH_PR<n>.json) so regressions in either wall-clock or
// Section 5 access counts are visible in review diffs.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regexp] [-benchtime 2s] [-o BENCH.json]
//	go run ./cmd/benchjson -compare BENCH_PR1.json [-drift 0.0005]
//
// It shells out to `go test -bench` on the repository root package and
// parses the standard benchmark output, so the numbers are exactly what
// a developer sees locally.
//
// # Regression gating (-compare)
//
// With -compare, the run is checked against an earlier snapshot: every
// custom metric (middleware-cost/op and friends — ns/op is reported but
// never gated) of every benchmark present in both snapshots must agree
// within -drift relative tolerance, or the command exits nonzero. The
// cost metrics are
// deterministic (exact means over each benchmark's fixed database set,
// independent of iteration count), so identical code compares exactly;
// the small default tolerance only absorbs the iteration-weighted
// sampling of snapshots taken before the metrics were made
// deterministic. A variant-suffixed benchmark ("..._Parallel/m=5",
// "..._Sharded/N=65536", "..._Latency/m=5", "..._LatencyConcurrent/…",
// "..._ShardedLatency/m=5", "..._ShardedLatencyNoPrefetch/…",
// "..._Faulty/m=5", "..._Wire/m=5", "..._WireNoPrefetch/…",
// "..._CachedRepeat/m=5", "..._CachedWriteMix/…", "..._Saturated")
// with no
// counterpart in the old snapshot is compared against its base name
// ("…/m=5"), which is how the serial executor, the concurrent executor,
// the sharded evaluator, the latency-wrapped pipelined executor, the
// composed sharded-pipelined mode, the zero-rate fault-tolerance
// stack, the HTTP wire transport, and the result cache are all pinned
// to the same historical cost trajectory: a transport (or a resilience
// wrapper on the healthy path, or a cache serving the original tallies)
// may change wall-clock, never the Section 5 tallies. The
// sharded benchmarks additionally track the partitioned tallies under
// sharded-cost/op, a unit the old baselines do not carry and therefore
// gate only once it has its own snapshot entry.
//
// The default -bench regexp covers the tracked non-latency benchmarks;
// the _Latency variants sleep real per-access latencies, so CI runs
// them in a separate invocation at -benchtime 1x (see ci.yml).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Measurement is one benchmark's numbers.
type Measurement struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every custom b.ReportMetric value, keyed by unit
	// (middleware-cost/op, weighted-cost/op, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Bench       string        `json:"bench_regexp"`
	BenchTime   string        `json:"benchtime"`
	Results     []Measurement `json:"results"`
}

// benchLine matches e.g.
// BenchmarkE1_A0_SqrtN/N=4096-8   1024   1167 ns/op   853 middleware-cost/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	// The default matches the exact benchmarks tracked in BENCH_PR<n>.json
	// (anchored: a bare "BenchmarkE1_A0_SqrtN" would also match the
	// _Latency variants, whose real sleeps need their own -benchtime 1x
	// invocation).
	bench := flag.String("bench", "^(BenchmarkE1_A0_SqrtN|BenchmarkE2_A0_GeneralM)(_Parallel|_Sharded|_Faulty|_CachedRepeat|_CachedWriteMix|_WeightedShard|_Stealing)?$|^BenchmarkE17_ShardedSkew(_WeightedShard)?$", "benchmarks to run (go test -bench regexp)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline snapshot to gate cost metrics against")
	drift := flag.Float64("drift", 0.0005, "relative drift tolerated per cost metric in -compare mode")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}

	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Bench:       *bench,
		BenchTime:   *benchtime,
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		meas := Measurement{Name: trimCPUSuffix(m[1])}
		meas.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				meas.NsPerOp = v
				continue
			}
			if meas.Metrics == nil {
				meas.Metrics = make(map[string]float64)
			}
			meas.Metrics[unit] = v
		}
		snap.Results = append(snap.Results, meas)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Results))
	} else if *compare == "" {
		os.Stdout.Write(doc)
	}

	if *compare != "" {
		if !compareSnapshots(snap, *compare, *drift) {
			os.Exit(1)
		}
	}
}

// compareSnapshots gates the run's custom metrics against the baseline
// file, reporting every comparison; it returns false on any drift beyond
// tol. Wall-clock deltas are printed for context but never gate.
func compareSnapshots(snap Snapshot, baselinePath string, tol float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return false
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return false
	}
	baseline := make(map[string]Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[m.Name] = m
	}

	ok := true
	compared := 0
	for _, m := range snap.Results {
		ref, found := baseline[m.Name]
		refName := m.Name
		if !found {
			// A variant-suffixed benchmark (_Parallel executor, _Sharded
			// evaluator, _Latency/_LatencyConcurrent transports, the
			// composed _ShardedLatency/_ShardedLatencyNoPrefetch modes,
			// the _CachedRepeat/_CachedWriteMix result-cache mixes, and
			// the _WeightedShard/_Stealing planner modes, the _Saturated
			// admission-control drive) pins itself to
			// the base benchmark's historical cost trajectory. Longest
			// suffixes first: _ShardedLatency must be stripped whole, not
			// matched by _Sharded, and _WeightedShard before _Sharded.
			for _, suffix := range []string{"_ShardedLatencyNoPrefetch", "_ShardedLatency", "_CachedWriteMix", "_CachedRepeat", "_WeightedShard", "_Saturated", "_Stealing", "_Parallel", "_Sharded", "_LatencyConcurrent", "_Latency", "_Faulty", "_WireNoPrefetch", "_Wire"} {
				refName = strings.Replace(m.Name, suffix, "", 1)
				if ref, found = baseline[refName]; found {
					break
				}
			}
		}
		if !found {
			fmt.Printf("  new   %-45s (no baseline)\n", m.Name)
			continue
		}
		for unit, got := range m.Metrics {
			want, has := ref.Metrics[unit]
			if !has {
				continue
			}
			compared++
			rel := 0.0
			if want != 0 {
				rel = (got - want) / want
			} else if got != 0 {
				rel = 1
			}
			status := "ok"
			if rel < -tol || rel > tol {
				status = "DRIFT"
				ok = false
			}
			fmt.Printf("  %-5s %-45s %-22s %12g -> %-12g (%+.4f%%)\n",
				status, m.Name, unit+" vs "+refName, want, got, 100*rel)
		}
		if ref.NsPerOp > 0 && m.NsPerOp > 0 {
			fmt.Printf("  info  %-45s %-22s %12.0f -> %-12.0f (%+.1f%% wall-clock, not gated)\n",
				m.Name, "ns/op vs "+refName, ref.NsPerOp, m.NsPerOp, 100*(m.NsPerOp-ref.NsPerOp)/ref.NsPerOp)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no metrics in common with %s\n", baselinePath)
		return false
	}
	if ok {
		fmt.Printf("benchjson: %d metrics within %.4g of %s\n", compared, tol, baselinePath)
	} else {
		fmt.Fprintf(os.Stderr, "benchjson: cost metrics drifted from %s\n", baselinePath)
	}
	return ok
}

// trimCPUSuffix drops the -<GOMAXPROCS> suffix go test appends.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
