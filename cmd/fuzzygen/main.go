// Command fuzzygen generates synthetic scoring databases under the
// paper's Section 5 workload model and writes them as JSON for use with
// fuzzyquery or external tooling.
//
// Usage:
//
//	fuzzygen -n 10000 -m 3 -law uniform -o db.json
//	fuzzygen -n 4096 -m 2 -law binary -p 0.1 -corr 0.5 -o db.json
//	fuzzygen -n 4096 -hard -o hard.json   # the Section 7 Q AND NOT Q pair
package main

import (
	"flag"
	"fmt"
	"os"

	"fuzzydb/internal/scoredb"
)

func main() {
	var (
		n    = flag.Int("n", 10000, "number of objects")
		m    = flag.Int("m", 2, "number of lists (atomic queries)")
		law  = flag.String("law", "uniform", "grade law: uniform | binary | bounded | discrete | linear")
		p    = flag.Float64("p", 0.1, "selectivity for -law binary")
		max  = flag.Float64("max", 0.9, "upper bound for -law bounded")
		lvls = flag.Int("levels", 5, "levels for -law discrete")
		corr = flag.Float64("corr", 0, "rank correlation between lists in [-1, 1]")
		seed = flag.Uint64("seed", 1, "generator seed")
		hard = flag.Bool("hard", false, "generate the Section 7 hard-query pair (overrides -m/-law)")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		db  *scoredb.Database
		err error
	)
	if *hard {
		db, err = scoredb.HardQueryPair(*n, *seed)
	} else {
		var gl scoredb.GradeLaw
		switch *law {
		case "uniform":
			gl = scoredb.Uniform{}
		case "binary":
			gl = scoredb.Binary{P: *p}
		case "bounded":
			gl = scoredb.BoundedAbove{Max: *max}
		case "discrete":
			gl = scoredb.Discrete{Levels: *lvls}
		case "linear":
			gl = scoredb.LinearRank{}
		default:
			fmt.Fprintf(os.Stderr, "fuzzygen: unknown law %q\n", *law)
			os.Exit(1)
		}
		db, err = scoredb.Generator{N: *n, M: *m, Law: gl, Seed: *seed, Correlation: *corr}.Generate()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzygen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzygen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := db.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "fuzzygen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fuzzygen: wrote %d lists x %d objects\n", db.M(), db.N())
}
