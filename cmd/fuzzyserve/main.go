// Command fuzzyserve deploys the engine as a network service: it serves
// a scoring database's sorted lists as the wire protocol's paged source
// RPCs, and the full query engine over them.
//
// Serve a generated database (lists exposed as A1…Am, target "*"):
//
//	fuzzygen -n 100000 -m 3 -o db.json
//	fuzzyserve -db db.json -addr :8080
//
// or generate one in memory for quick experiments:
//
//	fuzzyserve -n 100000 -m 3 -seed 7 -addr :8080
//
// Admission control (off by default): -rate/-burst meter every tenant's
// spend in Section 5 access-cost units, -max-concurrent bounds the
// evaluations in flight, and -tenants grants named tenants weights and
// their own buckets, e.g.
//
//	fuzzyserve -rate 5000 -burst 20000 -max-concurrent 8 \
//	    -tenants "gold=3,bronze=1"
//
// Requests name their tenant in the query body ("tenant") or the
// X-Fuzzydb-Tenant header; shed requests get HTTP 429 with Retry-After.
//
// Endpoints (see the internal/wire package documentation for the full
// protocol spec):
//
//	GET  /v1/meta     server self-description
//	POST /v1/entries  sorted access (paged)
//	POST /v1/grade    random access
//	POST /v1/query    one engine evaluation, full cost report
//	GET  /v1/results  streaming NDJSON answer cursor
//
// Remote engines dial the source endpoints (wire.Dial) and evaluate
// Fagin's algorithms locally with bit-identical Section 5 costs; thin
// clients (fuzzyquery -connect) post whole queries instead and let this
// process evaluate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fuzzydb"

	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dbFile    = flag.String("db", "", "scoring database JSON (from fuzzygen); default: generate with -n/-m/-seed")
		n         = flag.Int("n", 10000, "objects to generate when no -db is given")
		m         = flag.Int("m", 2, "lists to generate when no -db is given")
		seed      = flag.Uint64("seed", 1, "generation seed when no -db is given")
		page      = flag.Int("page", wire.DefaultPage, "entries per /v1/entries response")
		cache     = flag.Int("cache", 0, "equip the query engine with a result cache of this many entries (0 = off); /v1/query responses then report cache handling")
		shardPlan = flag.String("shard-plan", "even", "default shard-boundary policy for sharded requests: even or weighted (requests may override via shard_plan)")
		steal     = flag.Bool("steal", false, "enable work stealing between shard workers by default for sharded requests")

		readTimeout = flag.Duration("read-timeout", 10*time.Second, "full-request read deadline (slowloris guard); header deadline is min(5s, this)")

		rate    = flag.Float64("rate", 0, "per-tenant token refill in access-cost units per second (0 = no token metering)")
		burst   = flag.Float64("burst", 0, "per-tenant token-bucket capacity in access-cost units (0 with -rate set = a sane default)")
		maxConc = flag.Int("max-concurrent", 0, "evaluations in flight at once across all tenants (0 = unbounded)")
		tenants = flag.String("tenants", "", `named tenants with fair-share weights, e.g. "gold=3,bronze=1" (unlisted tenants get weight 1)`)
	)
	flag.Parse()
	if *shardPlan != "even" && *shardPlan != "weighted" {
		fmt.Fprintf(os.Stderr, "fuzzyserve: -shard-plan must be even or weighted, got %q\n", *shardPlan)
		os.Exit(2)
	}

	sched, err := buildScheduler(*rate, *burst, *maxConc, *tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzyserve: %v\n", err)
		os.Exit(2)
	}

	db, err := loadDB(*dbFile, *n, *m, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzyserve: %v\n", err)
		os.Exit(1)
	}

	mux, err := buildMux(db, *page, *cache, *shardPlan, *steal, sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fuzzyserve: %v\n", err)
		os.Exit(1)
	}

	headerTimeout := 5 * time.Second
	if *readTimeout > 0 && *readTimeout < headerTimeout {
		headerTimeout = *readTimeout
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Slowloris guard: a client must finish its headers and body
		// within these deadlines or the connection is dropped. No
		// WriteTimeout, deliberately — /v1/results is an unbounded
		// NDJSON streaming cursor paced by the consumer, and a write
		// deadline would sever every slow-but-live stream; cancellation
		// of abandoned streams comes from the request context instead.
		ReadHeaderTimeout: headerTimeout,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       120 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	log.Printf("fuzzyserve: serving %d lists over %d objects on %s", db.M(), db.N(), *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatalf("fuzzyserve: %v", err)
	case sig := <-stop:
		log.Printf("fuzzyserve: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("fuzzyserve: shutdown: %v", err)
		}
	}
}

// buildScheduler assembles the admission scheduler from the -rate,
// -burst, -max-concurrent, and -tenants flags; all unset means no
// admission layer (nil scheduler).
func buildScheduler(rate, burst float64, maxConc int, tenants string) (*fuzzydb.Scheduler, error) {
	if rate <= 0 && burst <= 0 && maxConc <= 0 && tenants == "" {
		return nil, nil
	}
	cfg := fuzzydb.SchedulerConfig{Rate: rate, Burst: burst, MaxConcurrent: maxConc}
	if tenants != "" {
		cfg.Tenants = make(map[string]fuzzydb.SchedulerTenantConfig)
		for _, spec := range strings.Split(tenants, ",") {
			name, weightStr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" {
				return nil, fmt.Errorf(`-tenants: want "name=weight[,name=weight...]", got %q`, spec)
			}
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("-tenants: bad weight for %q: %q", name, weightStr)
			}
			cfg.Tenants[name] = fuzzydb.SchedulerTenantConfig{Weight: w}
		}
	}
	return fuzzydb.NewScheduler(cfg), nil
}

// loadDB reads the scoring database, or generates one.
func loadDB(dbFile string, n, m int, seed uint64) (*scoredb.Database, error) {
	if dbFile == "" {
		return scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: seed}.Generate()
	}
	f, err := os.Open(dbFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return scoredb.ReadJSON(f)
}

// buildMux mounts the source server (lists A1…Am) and the query server
// (an engine over the same lists, target "*") on one mux; cache > 0
// gives the engine a result cache of that many entries. shardPlan and
// steal become the query server's default execution policy for sharded
// requests (requests may override the plan via shard_plan); a non-nil
// sched puts the engine behind admission control.
func buildMux(db *scoredb.Database, page, cache int, shardPlan string, steal bool, sched *fuzzydb.Scheduler) (*http.ServeMux, error) {
	lists := make(map[string]subsys.Source, db.M())
	subs := make([]fuzzydb.Subsystem, db.M())
	for i := 0; i < db.M(); i++ {
		name := fmt.Sprintf("A%d", i+1)
		lists[name] = subsys.FromList(db.List(i))
		s := fuzzydb.NewStaticSubsystem(name, db.N())
		s.Set("*", db.List(i))
		subs[i] = s
	}
	ss, err := wire.NewSourceServer(lists, wire.WithPage(page), wire.WithEngine())
	if err != nil {
		return nil, err
	}
	var engOpts []fuzzydb.EngineOption
	if cache > 0 {
		engOpts = append(engOpts, fuzzydb.WithCache(cache))
	}
	if sched != nil {
		engOpts = append(engOpts, fuzzydb.WithScheduler(sched))
	}
	eng, err := fuzzydb.NewEngine(subs, engOpts...)
	if err != nil {
		return nil, err
	}
	var defaults []fuzzydb.QueryOption
	if shardPlan == "weighted" {
		defaults = append(defaults, fuzzydb.WithShardPlan(fuzzydb.ShardPlanWeighted))
	}
	if steal {
		defaults = append(defaults, fuzzydb.WithWorkStealing(true))
	}
	qs := wire.NewQueryServer(eng, defaults...)

	mux := http.NewServeMux()
	ss.Register(mux)
	qs.Register(mux)
	return mux, nil
}
