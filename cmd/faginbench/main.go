// Command faginbench regenerates the experiment tables of EXPERIMENTS.md:
// one table per claim in the paper's analysis (Theorems 5.3–7.1 and the
// numbered remarks), measured over synthetic workloads drawn from the
// Section 5 probabilistic model.
//
// Usage:
//
//	faginbench              # run all experiments at full size
//	faginbench -quick       # scaled-down sizes/trials (seconds, not minutes)
//	faginbench -run E9      # one experiment
//	faginbench -list        # list the experiment index
//	faginbench -seed 42     # change the master seed
package main

import (
	"flag"
	"fmt"
	"os"

	"fuzzydb/internal/sim"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run scaled-down sizes and trial counts")
		runID = flag.String("run", "", "run a single experiment by id (e.g. E3)")
		list  = flag.Bool("list", false, "list the experiment index and exit")
		seed  = flag.Uint64("seed", 1, "master seed for all workloads")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := sim.DefaultConfig()
	if *quick {
		cfg = sim.QuickConfig()
	}
	cfg.Seed = *seed

	experiments := sim.All()
	if *runID != "" {
		e, ok := sim.ByID(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "faginbench: unknown experiment %q (try -list)\n", *runID)
			os.Exit(1)
		}
		experiments = []sim.Experiment{e}
	}

	for i, e := range experiments {
		if i > 0 {
			fmt.Println()
		}
		tab := e.Run(cfg)
		tab.ID, tab.Title, tab.Claim = e.ID, e.Title, e.Claim
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "faginbench: %v\n", err)
			os.Exit(1)
		}
	}
}
