package middleware

import (
	"context"
	"errors"
	"math"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// cdStore builds the paper's running example: a store of compact disks
// with a relational Artist subsystem and a QBIC-like AlbumColor
// subsystem.
func cdStore(t *testing.T) (*Middleware, []string) {
	t.Helper()
	names := []string{
		"Abbey Road",        // Beatles, mostly red-ish cover in this fiction
		"Let It Be",         // Beatles, dark cover
		"Sticky Fingers",    // Stones, red cover
		"Beggars Banquet",   // Stones, beige cover
		"Nashville Skyline", // Dylan, blue cover
		"Revolver",          // Beatles, red-leaning cover
	}
	artists := []string{"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles"}
	// RGB-ish feature vectors.
	covers := [][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.1, 0.1},
		{0.9, 0.05, 0.05},
		{0.6, 0.5, 0.3},
		{0.1, 0.2, 0.8},
		{0.7, 0.2, 0.1},
	}
	colors := subsys.NewVector("AlbumColor", covers, map[string][]float64{
		"red":  {1, 0, 0},
		"blue": {0, 0, 1},
	})
	mw, err := New(
		[]subsys.Subsystem{subsys.NewRelational("Artist", artists), colors},
		WithNames(names),
	)
	if err != nil {
		t.Fatal(err)
	}
	return mw, names
}

func TestRunningExampleBeatlesRed(t *testing.T) {
	mw, names := cdStore(t)
	rep, err := mw.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %v", rep.Results)
	}
	// Property (a) of Section 4: nonzero grades only for Beatles albums.
	beatles := map[string]bool{"Abbey Road": true, "Let It Be": true, "Revolver": true}
	for _, r := range rep.Results {
		if r.Grade > 0 && !beatles[names[r.Object]] {
			t.Errorf("non-Beatles album %q got grade %v", names[r.Object], r.Grade)
		}
	}
	// Property (b): among Beatles albums, redder covers rank higher. The
	// reddest Beatles cover here is Abbey Road (0.8 red), then Revolver.
	if names[rep.Results[0].Object] != "Abbey Road" {
		t.Errorf("top = %q, want Abbey Road", names[rep.Results[0].Object])
	}
	if names[rep.Results[1].Object] != "Revolver" {
		t.Errorf("second = %q, want Revolver", names[rep.Results[1].Object])
	}
	// The planner must have chosen A0' for a min-conjunction.
	if rep.Plan.Algorithm.Name() != "A0'" {
		t.Errorf("plan = %s, want A0'", rep.Plan.Algorithm.Name())
	}
	if rep.Cost.Sum() <= 0 {
		t.Error("no cost recorded")
	}
	if len(rep.PerList) != len(rep.Plan.Atoms) {
		t.Fatalf("PerList has %d entries for %d atoms", len(rep.PerList), len(rep.Plan.Atoms))
	}
	var sum int
	for _, c := range rep.PerList {
		sum += c.Sum()
	}
	if sum != rep.Cost.Sum() {
		t.Errorf("per-list costs sum to %d, total is %d", sum, rep.Cost.Sum())
	}
}

func TestPlannerChoices(t *testing.T) {
	mw, _ := cdStore(t)
	cases := []struct {
		q    string
		want string
	}{
		{`Artist = "Beatles" AND AlbumColor ~ "red"`, "A0'"},
		{`Artist = "Beatles" OR AlbumColor ~ "red"`, "B0"},
		{`Artist = "Beatles"`, "B0"}, // single list
		{`Artist = "Beatles" AND NOT AlbumColor ~ "red"`, "naive-sorted"},
		{`(Artist = "Beatles" AND AlbumColor ~ "red") OR AlbumColor ~ "blue"`, "A0"},
	}
	for _, c := range cases {
		plan, err := mw.PlanQuery(query.MustParse(c.q))
		if err != nil {
			t.Errorf("%q: %v", c.q, err)
			continue
		}
		if plan.Algorithm.Name() != c.want {
			t.Errorf("%q planned %s, want %s", c.q, plan.Algorithm.Name(), c.want)
		}
		if plan.Reason == "" {
			t.Errorf("%q: empty reason", c.q)
		}
	}
}

func TestPlannerNormalizationUpgradesPlan(t *testing.T) {
	mw, _ := cdStore(t)
	// As written this is non-monotone (double negation); normalization
	// recovers the conjunction and the A0' plan (Theorem 3.1 rewrites).
	plan, err := mw.PlanQuery(query.MustParse(`NOT NOT (Artist = "Beatles" AND AlbumColor ~ "red")`))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm.Name() != "A0'" {
		t.Errorf("normalized plan = %s, want A0'", plan.Algorithm.Name())
	}
	// Nested conjunctions flatten into one shape too.
	plan2, err := mw.PlanQuery(query.MustParse(`Artist = "Beatles" AND (AlbumColor ~ "red" AND AlbumColor ~ "blue")`))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Algorithm.Name() != "A0'" {
		t.Errorf("flattened plan = %s, want A0'", plan2.Algorithm.Name())
	}
	// And the answers still match a naive evaluation of the original.
	rep, err := mw.TopKString(`NOT NOT (Artist = "Beatles" AND AlbumColor ~ "red")`, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mw.TopKString(`Artist = "Beatles" AND AlbumColor ~ "red"`, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrades(rep.Results, plain.Results) {
		t.Errorf("normalized results %v differ from plain %v", rep.Results, plain.Results)
	}
}

func TestPlannerWithProductSemanticsAvoidsA0Prime(t *testing.T) {
	mw, _ := cdStore(t)
	mwProd, err := New(
		[]subsys.Subsystem{
			subsys.NewRelational("Artist", []string{"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles"}),
			mustVector(t),
		},
		WithSemantics(query.WithTNorm(agg.AlgebraicProduct)),
	)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse(`Artist = "Beatles" AND AlbumColor ~ "red"`)
	planMin, err := mw.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	planProd, err := mwProd.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if planMin.Algorithm.Name() != "A0'" || planProd.Algorithm.Name() != "A0" {
		t.Errorf("min plans %s, product plans %s; want A0' and A0",
			planMin.Algorithm.Name(), planProd.Algorithm.Name())
	}
}

func mustVector(t *testing.T) *subsys.Vector {
	t.Helper()
	covers := [][]float64{
		{0.8, 0.1, 0.1}, {0.1, 0.1, 0.1}, {0.9, 0.05, 0.05},
		{0.6, 0.5, 0.3}, {0.1, 0.2, 0.8}, {0.7, 0.2, 0.1},
	}
	return subsys.NewVector("AlbumColor", covers, map[string][]float64{
		"red": {1, 0, 0}, "blue": {0, 0, 1},
	})
}

// Every plan the middleware produces must give the same answers as a
// naive evaluation of the compiled query.
func TestPlansMatchNaive(t *testing.T) {
	mw, _ := cdStore(t)
	queries := []string{
		`Artist = "Beatles" AND AlbumColor ~ "red"`,
		`Artist = "Beatles" OR AlbumColor ~ "blue"`,
		`AlbumColor ~ "red"`,
		`Artist = "Stones" AND NOT AlbumColor ~ "blue"`,
		`(Artist = "Dylan" OR Artist = "Stones") AND AlbumColor ~ "red"`,
		`NOT Artist = "Beatles" AND NOT AlbumColor ~ "blue"`,
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		rep, err := mw.TopK(q, 4)
		if err != nil {
			t.Errorf("%q: %v", qs, err)
			continue
		}
		c, err := query.Compile(q, query.Standard())
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference over the same sources.
		srcs := make([]subsys.Source, len(c.Atoms))
		for i, a := range c.Atoms {
			src, err := subsystemFor(mw, a)
			if err != nil {
				t.Fatal(err)
			}
			srcs[i] = src
		}
		want, _, err := core.Evaluate(context.Background(), core.NaiveSorted{}, srcs, c.Func, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGrades(rep.Results, want) {
			t.Errorf("%q: got %v want %v (plan %s)", qs, rep.Results, want, rep.Plan.Algorithm.Name())
		}
	}
}

func subsystemFor(m *Middleware, a query.Atomic) (subsys.Source, error) {
	ss, err := m.sources([]query.Atomic{a})
	if err != nil {
		return nil, err
	}
	return ss[0], nil
}

func sameGrades(a, b []core.Result) bool {
	ea := make([]gradedset.Entry, len(a))
	for i, r := range a {
		ea[i] = gradedset.Entry{Object: r.Object, Grade: r.Grade}
	}
	eb := make([]gradedset.Entry, len(b))
	for i, r := range b {
		eb[i] = gradedset.Entry{Object: r.Object, Grade: r.Grade}
	}
	return gradedset.SameGradeMultiset(ea, eb, 1e-12)
}

func TestUnknownAttribute(t *testing.T) {
	mw, _ := cdStore(t)
	if _, err := mw.TopKString(`Genre = "rock"`, 2); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("unknown attribute error = %v", err)
	}
	if _, err := mw.PlanQuery(query.Atomic{Attr: "Genre", Target: "rock"}); !errors.Is(err, ErrUnknownAttribute) {
		t.Errorf("plan with unknown attribute error = %v", err)
	}
}

func TestUnknownTargetPropagates(t *testing.T) {
	mw, _ := cdStore(t)
	if _, err := mw.TopKString(`AlbumColor ~ "plaid"`, 2); !errors.Is(err, subsys.ErrUnknownTarget) {
		t.Errorf("unknown target error = %v", err)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("no subsystems accepted")
	}
	a := subsys.NewRelational("A", []string{"x", "y"})
	b := subsys.NewRelational("B", []string{"x"})
	if _, err := New([]subsys.Subsystem{a, b}); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("size mismatch error = %v", err)
	}
	dup := subsys.NewRelational("A", []string{"x", "y"})
	if _, err := New([]subsys.Subsystem{a, dup}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := New([]subsys.Subsystem{a}, WithNames([]string{"only-one"})); err == nil {
		t.Error("wrong name count accepted")
	}
}

func TestNames(t *testing.T) {
	mw, names := cdStore(t)
	if mw.Name(0) != names[0] {
		t.Errorf("Name(0) = %q", mw.Name(0))
	}
	if mw.Name(-1) != "#-1" {
		t.Errorf("Name(-1) = %q", mw.Name(-1))
	}
	bare, err := New([]subsys.Subsystem{subsys.NewRelational("A", []string{"x"})})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Name(0) != "#0" {
		t.Errorf("unnamed Name(0) = %q", bare.Name(0))
	}
	if mw.N() != 6 {
		t.Errorf("N = %d", mw.N())
	}
}

func TestFilterThroughMiddleware(t *testing.T) {
	mw, _ := cdStore(t)
	rep, err := mw.Filter(context.Background(), query.MustParse(`Artist = "Beatles" AND AlbumColor ~ "red"`), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Grade < 0.5 {
			t.Errorf("filter returned %v below threshold", r)
		}
	}
	// Negated queries cannot be filtered.
	if _, err := mw.Filter(context.Background(), query.MustParse(`NOT Artist = "Beatles"`), 0.5); err == nil {
		t.Error("filter accepted a non-monotone query")
	}
}

func TestMedianThroughMiddleware(t *testing.T) {
	mw, _ := cdStore(t)
	atoms := []query.Atomic{
		{Attr: "Artist", Target: "Beatles"},
		{Attr: "AlbumColor", Target: "red"},
		{Attr: "AlbumColor", Target: "blue"},
	}
	rep, err := mw.TopKMedian(context.Background(), atoms, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: naive median over the same three sources.
	srcs, err := mw.sources(atoms)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Evaluate(context.Background(), core.NaiveSorted{}, srcs, agg.Median, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrades(rep.Results, want) {
		t.Errorf("median: got %v want %v", rep.Results, want)
	}
}

func TestPaginateThroughMiddleware(t *testing.T) {
	mw, _ := cdStore(t)
	p, err := mw.Paginate(context.Background(), query.MustParse(`Artist = "Beatles" AND AlbumColor ~ "red"`))
	if err != nil {
		t.Fatal(err)
	}
	page1, err := p.NextPage(2)
	if err != nil {
		t.Fatal(err)
	}
	page2, err := p.NextPage(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 2 || len(page2) != 2 {
		t.Fatalf("pages: %v / %v", page1, page2)
	}
	if page2[0].Grade > page1[1].Grade {
		t.Errorf("page 2 starts above page 1's tail: %v vs %v", page2[0], page1[1])
	}
	seen := map[int]bool{}
	for _, r := range append(page1, page2...) {
		if seen[r.Object] {
			t.Errorf("object %d delivered twice", r.Object)
		}
		seen[r.Object] = true
	}
}

func TestInternalVsExternalConjunction(t *testing.T) {
	mw, _ := cdStore(t)
	atoms := []query.Atomic{
		{Attr: "AlbumColor", Target: "red"},
		{Attr: "AlbumColor", Target: "blue"},
	}
	internal, err := mw.TopKInternal(context.Background(), atoms, 3)
	if err != nil {
		t.Fatal(err)
	}
	external, err := mw.TopK(query.Conj(atoms...), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The Vector subsystem's native conjunction is a product; the
	// middleware's is min. Grades must differ somewhere (Section 8).
	differ := false
	for i := range internal.Results {
		gi := internal.Results[i].Grade
		ge := external.Results[i].Grade
		if math.Abs(gi-ge) > 1e-9 {
			differ = true
		}
		if gi > ge+1e-9 {
			// product ≤ min always
			t.Errorf("internal grade %v above external %v", gi, ge)
		}
	}
	if !differ {
		t.Error("internal and external conjunction agreed everywhere; semantics mismatch not modeled")
	}
	// Internal conjunction across different attributes must be refused.
	if _, err := mw.TopKInternal(context.Background(), []query.Atomic{
		{Attr: "Artist", Target: "Beatles"},
		{Attr: "AlbumColor", Target: "red"},
	}, 2); err == nil {
		t.Error("cross-attribute internal conjunction accepted")
	}
	// A subsystem without the capability must be refused.
	if _, err := mw.TopKInternal(context.Background(), []query.Atomic{
		{Attr: "Artist", Target: "Beatles"},
		{Attr: "Artist", Target: "Dylan"},
	}, 2); err == nil {
		t.Error("relational internal conjunction accepted")
	}
	if _, err := mw.TopKInternal(context.Background(), nil, 2); err == nil {
		t.Error("empty internal conjunction accepted")
	}
}

func TestPlannerSelectiveFilterFirst(t *testing.T) {
	// A large store where very few albums are by the Beatles: the
	// planner should pick the Section 4 filter-first plan, and the
	// answers must match A0' exactly.
	const n = 5000
	artists := make([]string, n)
	covers := make([][]float64, n)
	for i := range artists {
		if i%500 == 0 { // selectivity 0.002
			artists[i] = "Beatles"
		} else {
			artists[i] = "Other"
		}
		covers[i] = []float64{float64(i%17) / 16, float64(i%11) / 10, float64(i%7) / 6}
	}
	mw, err := New([]subsys.Subsystem{
		subsys.NewRelational("Artist", artists),
		subsys.NewVector("AlbumColor", covers, map[string][]float64{"red": {1, 0, 0}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse(`Artist = "Beatles" AND AlbumColor ~ "red"`)
	plan, err := mw.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm.Name() != "filter-first" {
		t.Fatalf("plan = %s, want filter-first", plan.Algorithm.Name())
	}
	rep, err := mw.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the same query evaluated by A0' on fresh sources.
	srcs, err := mw.sources(plan.Atoms)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Evaluate(context.Background(), core.A0Prime{}, srcs, plan.Agg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrades(rep.Results, want) {
		t.Errorf("filter-first results %v differ from A0' %v", rep.Results, want)
	}
	// The selective plan must beat the general one on this workload.
	fresh, err := mw.sources(plan.Atoms)
	if err != nil {
		t.Fatal(err)
	}
	_, cA0, err := core.Evaluate(context.Background(), core.A0Prime{}, fresh, plan.Agg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cost.Sum() >= cA0.Sum() {
		t.Errorf("filter-first cost %v not below A0' cost %v", rep.Cost, cA0)
	}
	// A common predicate must NOT trigger filter-first.
	planCommon, err := mw.PlanQuery(query.MustParse(`Artist = "Other" AND AlbumColor ~ "red"`))
	if err != nil {
		t.Fatal(err)
	}
	if planCommon.Algorithm.Name() != "A0'" {
		t.Errorf("common predicate planned %s, want A0'", planCommon.Algorithm.Name())
	}
}

func TestWeightedQueryThroughEngine(t *testing.T) {
	mw, _ := cdStore(t)
	// Color twice as important as artist (FW97 via query syntax).
	rep, err := mw.TopKString(`Artist = "Beatles" ^ 1 AND AlbumColor ~ "red" ^ 2`, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted conjunction is monotone but not min: plan must be A0.
	if rep.Plan.Algorithm.Name() != "A0" {
		t.Errorf("plan = %s, want A0", rep.Plan.Algorithm.Name())
	}
	// Reference: naive evaluation of the same compiled function.
	q := query.MustParse(`Artist = "Beatles" ^ 1 AND AlbumColor ~ "red" ^ 2`)
	c, err := query.Compile(q, query.Standard())
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := mw.sources(c.Atoms)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Evaluate(context.Background(), core.NaiveSorted{}, srcs, c.Func, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrades(rep.Results, want) {
		t.Errorf("weighted query: got %v want %v", rep.Results, want)
	}
	// Weights must actually matter: an extreme color weight promotes the
	// reddest album regardless of artist.
	repColor, err := mw.TopKString(`Artist = "Beatles" ^ 0 AND AlbumColor ~ "red" ^ 1`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mw.Name(repColor.Results[0].Object) != "Sticky Fingers" {
		t.Errorf("all-color query top = %q, want Sticky Fingers (reddest, Stones)",
			mw.Name(repColor.Results[0].Object))
	}
}

func TestRelationalSelectivity(t *testing.T) {
	r := subsys.NewRelational("Artist", []string{"a", "b", "a", "a"})
	if got := r.Selectivity("a"); got != 0.75 {
		t.Errorf("Selectivity(a) = %v", got)
	}
	if got := r.Selectivity("zzz"); got != 0 {
		t.Errorf("Selectivity(absent) = %v", got)
	}
	empty := subsys.NewRelational("X", nil)
	if got := empty.Selectivity("a"); got != 0 {
		t.Errorf("empty Selectivity = %v", got)
	}
}

func TestHardQueryThroughMiddleware(t *testing.T) {
	// Q ∧ ¬Q: planned as naive, graded max 1/2, cost linear (= mN here).
	mw, _ := cdStore(t)
	rep, err := mw.TopKString(`AlbumColor ~ "red" AND NOT AlbumColor ~ "red"`, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Algorithm.Name() != "naive-sorted" {
		t.Errorf("plan = %s, want naive-sorted", rep.Plan.Algorithm.Name())
	}
	if rep.Results[0].Grade > 0.5 {
		t.Errorf("Q ∧ ¬Q grade %v exceeds 1/2", rep.Results[0].Grade)
	}
	if rep.Cost.Sorted != mw.N() {
		// One deduplicated atom: naive drains a single list of N objects.
		t.Errorf("hard query cost %v, want S=%d", rep.Cost, mw.N())
	}
}
