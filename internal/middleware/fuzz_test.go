package middleware

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"fuzzydb/internal/query"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// FuzzCacheEquivalence interleaves random grade updates, queries across
// executor shapes, explicit invalidations, and wholesale list
// replacements (journal poison) on a cached engine, checking every
// answer against an uncached oracle engine over the SAME mutable
// subsystems. Grades are continuous (generator and updates), so ties —
// the one case where the cache conservatively recomputes rather than
// serving a still-bit-identical answer — have probability zero, and
// hit or miss the results must match the recompute exactly. On a miss
// both engines pay the same tallies, so costs are compared too.
func FuzzCacheEquivalence(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1996, 0xfa61} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewPCG(seed, 0xcafe))
		n := 60 + rng.IntN(140)
		m := 2 + rng.IntN(3)
		depths := []int{4, 32, subsys.DefaultJournalDepth}
		depth := depths[rng.IntN(len(depths))]
		db := scoredb.Generator{N: n, M: m, Seed: seed}.MustGenerate()

		muts := make([]*subsys.Mutable, m)
		subsystems := make([]subsys.Subsystem, m)
		for i := 0; i < m; i++ {
			mu := subsys.NewMutable(attrName(i), n, depth)
			mu.Set("*", db.List(i))
			muts[i] = mu
			subsystems[i] = mu
		}
		eng, err := New(subsystems, WithCache(1+rng.IntN(8)))
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := New(subsystems)
		if err != nil {
			t.Fatal(err)
		}

		shapes := [][]QueryOption{
			nil,
			{WithParallelism(3)},
			{WithShards(3)},
			{WithPrefetch(4)},
		}
		ctx := context.Background()
		queries, hits := 0, 0
		for step := 0; step < 60; step++ {
			switch rng.IntN(10) {
			case 0:
				eng.Invalidate()
			case 1:
				l := rng.IntN(m)
				muts[l].Set("*", db.List(l))
			case 2, 3, 4:
				l := rng.IntN(m)
				if err := muts[l].UpdateGrade("*", rng.IntN(n), rng.Float64()); err != nil {
					t.Fatalf("step %d: update: %v", step, err)
				}
			default:
				j := 1 + rng.IntN(m)
				atoms := make([]query.Atomic, j)
				for i := range atoms {
					atoms[i] = query.Atomic{Attr: attrName(i), Target: "*"}
				}
				q := query.Conj(atoms...)
				k := 1 + rng.IntN(16)
				opts := append([]QueryOption{TopN(k)}, shapes[rng.IntN(len(shapes))]...)

				got, err := eng.Query(ctx, q, opts...)
				if err != nil {
					t.Fatalf("step %d: cached query: %v", step, err)
				}
				want, err := oracle.Query(ctx, q, opts...)
				if err != nil {
					t.Fatalf("step %d: oracle query: %v", step, err)
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Fatalf("step %d (k=%d, hit=%v): results diverged from recompute:\n got %v\nwant %v",
						step, k, got.Cache != nil && got.Cache.Hit, got.Results, want.Results)
				}
				if got.Cache == nil {
					t.Fatalf("step %d: cacheable query carried no Cache info", step)
				}
				queries++
				if got.Cache.Hit {
					hits++
				} else if got.Cost != want.Cost {
					t.Fatalf("step %d: miss cost %+v != recompute cost %+v", step, got.Cost, want.Cost)
				}
			}
		}
		st, ok := eng.CacheStats()
		if !ok || st.Hits+st.Misses != uint64(queries) {
			t.Fatalf("stats %+v incoherent with %d lookups", st, queries)
		}
		if st.Hits != uint64(hits) {
			t.Fatalf("stats count %d hits, reports said %d", st.Hits, hits)
		}
	})
}
