package middleware

import (
	"errors"

	"fuzzydb/internal/cost"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// DegradedList records one subsystem list a degraded evaluation dropped:
// which atom failed, how hard the resilience layer tried before giving
// up, the terminal error, and the access cost sunk into the failed
// attempt (already folded into the report's total Cost).
type DegradedList struct {
	// Attr and Target identify the dropped atom.
	Attr   string
	Target string
	// Attempts is how many times the failing access was tried before the
	// evaluation gave the list up (1 when no resilience wrapper retried).
	Attempts int
	// Err is the terminal typed error (*subsys.SourceError wrapping the
	// underlying cause) that condemned the list.
	Err error
	// Cost is the Section 5 access cost the failed attempt spent before
	// the list died. It is included in the report's total Cost.
	Cost cost.Cost
}

// WithDegradedLists opts the request in to graceful degradation: when a
// subsystem list fails permanently mid-query (the typed
// *subsys.SourceError survives any resilience retries), the middleware
// drops the failed atom and re-evaluates the pruned query over the
// surviving m−1 lists — by construction the answer equals a fresh query
// over the survivors — up to maxDrop times. Each dropped list is
// recorded in Report.Degraded, and the cost sunk into failed attempts is
// folded into the report's total Cost.
//
// A query cannot degrade below one atom, and a single-atom query never
// degrades; in those cases (and always without this option) the
// evaluation fails fast with the typed error and a valid partial-cost
// report. Results, Paginate, and Filter do not degrade: a pruned query
// would silently change the meaning of an already-streaming answer
// sequence or of a threshold condition, so they fail fast too.
func WithDegradedLists(maxDrop int) QueryOption {
	return func(c *queryConfig) {
		if maxDrop < 0 {
			maxDrop = 0
		}
		c.maxDrop = maxDrop
	}
}

// pruneAtom removes every occurrence of the given atom from the query
// tree (query.Compile dedupes atoms, so one failed list may back several
// tree positions), collapsing connectives as children vanish: an And/Or
// left with one child becomes that child, and a node left with none — or
// a Not/Weighted whose child vanished — is removed. It returns nil when
// nothing survives.
func pruneAtom(n query.Node, victim query.Atomic) query.Node {
	switch q := n.(type) {
	case query.Atomic:
		if q == victim {
			return nil
		}
		return q
	case query.And:
		kept := pruneChildren(q.Children, victim)
		switch len(kept) {
		case 0:
			return nil
		case 1:
			return kept[0]
		}
		return query.And{Children: kept}
	case query.Or:
		kept := pruneChildren(q.Children, victim)
		switch len(kept) {
		case 0:
			return nil
		case 1:
			return kept[0]
		}
		return query.Or{Children: kept}
	case query.Not:
		child := pruneAtom(q.Child, victim)
		if child == nil {
			return nil
		}
		return query.Not{Child: child}
	case query.Weighted:
		child := pruneAtom(q.Child, victim)
		if child == nil {
			return nil
		}
		return query.Weighted{Child: child, Weight: q.Weight}
	}
	return n
}

func pruneChildren(children []query.Node, victim query.Atomic) []query.Node {
	var kept []query.Node
	for _, c := range children {
		if p := pruneAtom(c, victim); p != nil {
			kept = append(kept, p)
		}
	}
	return kept
}

// degradeTarget decides whether a failed evaluation may degrade: the
// request must have drop headroom left, the error must be a terminal
// typed source failure identifying a known atom, and at least one atom
// must survive. It returns the condemned atom and its record.
func degradeTarget(plan *Plan, rep *Report, err error, headroom int) (query.Atomic, DegradedList, bool) {
	if headroom <= 0 || len(plan.Atoms) <= 1 {
		return query.Atomic{}, DegradedList{}, false
	}
	var se *subsys.SourceError
	if !errors.As(err, &se) || se.List < 0 || se.List >= len(plan.Atoms) {
		return query.Atomic{}, DegradedList{}, false
	}
	atom := plan.Atoms[se.List]
	dl := DegradedList{Attr: atom.Attr, Target: atom.Target, Attempts: se.Attempts, Err: err}
	if rep != nil {
		dl.Cost = rep.Cost
	}
	return atom, dl, true
}

// attachDegraded folds the degradation history into the final report:
// the dropped-list records and the cost sunk into the failed attempts
// (so the total Cost accounts for everything the whole request spent).
func attachDegraded(rep *Report, degraded []DegradedList, sunk cost.Cost) *Report {
	if rep == nil || len(degraded) == 0 {
		return rep
	}
	rep.Degraded = degraded
	rep.Cost = rep.Cost.Add(sunk)
	return rep
}
