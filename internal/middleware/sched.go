// The engine half of admission control: WithScheduler wires an
// internal/sched.Scheduler in front of Query and Results, WithTenant
// names the tenant a request bills to, and the admit/settle pair below
// is the reserve-then-settle protocol — a grant is reserved before any
// planning work and settled with the exact Section 5 cost the report
// tallied once the evaluation finishes.
//
// Without WithScheduler the engine has no admission layer at all: admit
// returns a nil grant, every Settle on it no-ops, and no path gains a
// lock, a counter, or a reordering — the gated cost metrics of an
// unscheduled engine are bit-identical to an engine built before this
// layer existed.
package middleware

import (
	"context"

	"fuzzydb/internal/sched"
)

// WithScheduler places an admission-control scheduler in front of the
// engine: every Query and Results call first acquires a grant from it
// (blocking under weighted-fair queueing, shedding with a typed
// *sched.OverloadError when overloaded) and settles the grant with the
// request's exact access cost afterwards. Requests name their tenant
// with WithTenant; unnamed requests bill to the empty-string tenant.
// A nil scheduler leaves the engine without admission control.
func WithScheduler(s *sched.Scheduler) Option {
	return func(m *Middleware) { m.sched = s }
}

// WithTenant names the tenant this request bills to under an engine
// built WithScheduler: its token bucket funds the reserve, its fair
// queue orders the admission, its stats record the settle. Without a
// scheduler the option is inert.
func WithTenant(name string) QueryOption {
	return func(c *queryConfig) { c.tenant = name }
}

// admit asks the scheduler (if any) to admit the request, recording the
// granted prefetch/gather width cap on the config. A nil scheduler
// admits everything with a nil grant, so the unscheduled path stays a
// strict no-op.
func (m *Middleware) admit(ctx context.Context, cfg *queryConfig) (*sched.Grant, error) {
	g, err := m.sched.Acquire(ctx, cfg.tenant)
	if err != nil {
		return nil, err
	}
	if w := g.Width(); w > 0 {
		cfg.widthCap = w
	}
	return g, nil
}

// settledCost is the spend a finished request settles against its
// reservation: the config's cost model applied to the report's Section
// 5 tallies. A cache hit settles at zero — it consumed no source
// accesses (the report's cost records what the cached computation once
// spent, not what this request spent). A nil report (planning failed
// before any access) also settles at zero.
func settledCost(cfg queryConfig, rep *Report) float64 {
	if rep == nil || (rep.Cache != nil && rep.Cache.Hit) {
		return 0
	}
	return cfg.model.Of(rep.Cost)
}
