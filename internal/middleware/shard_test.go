package middleware

import (
	"context"
	"errors"
	"testing"

	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
)

// TestQueryWithShardsMatchesUnsharded: a sharded engine request returns
// the same answers as the unsharded one and reports a consistent cost
// breakdown — total = Σ per-shard = Σ per-atom.
func TestQueryWithShardsMatchesUnsharded(t *testing.T) {
	mw := genStore(t, 1200, 3, 71)
	q := genConj(3)
	want, err := mw.Query(context.Background(), q, TopN(15))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1, 4} {
		rep, err := mw.Query(context.Background(), q, TopN(15), WithShards(4), WithParallelism(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if rep.Shards != 4 {
			t.Errorf("par=%d: Shards = %d, want 4", par, rep.Shards)
		}
		if len(rep.PerShard) != 4 {
			t.Fatalf("par=%d: PerShard has %d entries, want 4", par, len(rep.PerShard))
		}
		if len(rep.Results) != len(want.Results) {
			t.Fatalf("par=%d: %d results, want %d", par, len(rep.Results), len(want.Results))
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("par=%d: result %d = %v, want %v", par, i, rep.Results[i], want.Results[i])
			}
		}
		var perShard, perList cost.Cost
		for _, c := range rep.PerShard {
			perShard = perShard.Add(c)
		}
		for _, c := range rep.PerList {
			perList = perList.Add(c)
		}
		if rep.Cost != perShard || rep.Cost != perList {
			t.Errorf("par=%d: cost %v, per-shard sum %v, per-atom sum %v", par, rep.Cost, perShard, perList)
		}
	}
}

// TestQueryWithShardsOneIsUnsharded: WithShards(1) and WithShards(0) are
// the plain evaluation, byte for byte, cost included.
func TestQueryWithShardsOneIsUnsharded(t *testing.T) {
	mw := genStore(t, 800, 2, 72)
	q := genConj(2)
	want, err := mw.Query(context.Background(), q, TopN(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1} {
		rep, err := mw.Query(context.Background(), q, TopN(10), WithShards(p))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cost != want.Cost {
			t.Errorf("WithShards(%d): cost %v, want %v", p, rep.Cost, want.Cost)
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("WithShards(%d): result %d differs", p, i)
			}
		}
	}
}

// TestQueryWithShardsBudget: the access budget of a sharded request is a
// single pool across shards — a starved request stops with the usual
// typed error and a partial-cost report that never overshoots.
func TestQueryWithShardsBudget(t *testing.T) {
	mw := genStore(t, 2048, 2, 73)
	q := genConj(2)
	free, err := mw.Query(context.Background(), q, TopN(10), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(free.Cost.Sum()) / 8
	rep, err := mw.Query(context.Background(), q, TopN(10), WithShards(4), WithAccessBudget(budget))
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if rep == nil {
		t.Fatal("no partial report on budget stop")
	}
	if rep.Results != nil {
		t.Error("results on budget-stopped request")
	}
	if got := float64(rep.Cost.Sum()); got > budget {
		t.Errorf("partial cost %v overshoots shared budget %v", got, budget)
	}
	if rep.Cost.Sum() == 0 {
		t.Error("zero partial cost")
	}
}

// TestQueryWithShardsPinnedNRA: pinning the non-exact NRA alongside
// WithShards degenerates to the unsharded path rather than merging
// incomparable bound grades.
func TestQueryWithShardsPinnedNRA(t *testing.T) {
	mw := genStore(t, 600, 2, 74)
	q := genConj(2)
	want, err := mw.Query(context.Background(), q, TopN(8), WithAlgorithm(core.NRA{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mw.Query(context.Background(), q, TopN(8), WithAlgorithm(core.NRA{}), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 1 {
		t.Errorf("Shards = %d, want 1 (degenerate)", rep.Shards)
	}
	if rep.Cost != want.Cost {
		t.Errorf("cost %v, want unsharded %v", rep.Cost, want.Cost)
	}
	for i := range want.Results {
		if rep.Results[i] != want.Results[i] {
			t.Errorf("result %d differs from unsharded NRA", i)
		}
	}
}

// TestResultsIgnoresShards: the streaming iterator evaluates unsharded
// regardless of WithShards, and still delivers the full ordered answer
// stream.
func TestResultsIgnoresShards(t *testing.T) {
	mw := genStore(t, 300, 2, 75)
	q := genConj(2)
	var plain []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(7)) {
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, r)
		if len(plain) == 21 {
			break
		}
	}
	var sharded []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(7), WithShards(4)) {
		if err != nil {
			t.Fatal(err)
		}
		sharded = append(sharded, r)
		if len(sharded) == 21 {
			break
		}
	}
	if len(sharded) != len(plain) {
		t.Fatalf("sharded stream yielded %d, plain %d", len(sharded), len(plain))
	}
	for i := range plain {
		if sharded[i] != plain[i] {
			t.Errorf("stream result %d = %v, want %v", i, sharded[i], plain[i])
		}
	}
}
