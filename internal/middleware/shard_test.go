package middleware

import (
	"context"
	"errors"
	"testing"

	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
)

// TestQueryWithShardsMatchesUnsharded: a sharded engine request returns
// the same answers as the unsharded one and reports a consistent cost
// breakdown — total = Σ per-shard = Σ per-atom.
func TestQueryWithShardsMatchesUnsharded(t *testing.T) {
	mw := genStore(t, 1200, 3, 71)
	q := genConj(3)
	want, err := mw.Query(context.Background(), q, TopN(15))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1, 4} {
		rep, err := mw.Query(context.Background(), q, TopN(15), WithShards(4), WithParallelism(par))
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if rep.Shards != 4 {
			t.Errorf("par=%d: Shards = %d, want 4", par, rep.Shards)
		}
		if len(rep.PerShard) != 4 {
			t.Fatalf("par=%d: PerShard has %d entries, want 4", par, len(rep.PerShard))
		}
		if len(rep.Results) != len(want.Results) {
			t.Fatalf("par=%d: %d results, want %d", par, len(rep.Results), len(want.Results))
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("par=%d: result %d = %v, want %v", par, i, rep.Results[i], want.Results[i])
			}
		}
		var perShard, perList cost.Cost
		for _, c := range rep.PerShard {
			perShard = perShard.Add(c)
		}
		for _, c := range rep.PerList {
			perList = perList.Add(c)
		}
		if rep.Cost != perShard || rep.Cost != perList {
			t.Errorf("par=%d: cost %v, per-shard sum %v, per-atom sum %v", par, rep.Cost, perShard, perList)
		}
	}
}

// TestQueryWithShardsOneIsUnsharded: WithShards(1) and WithShards(0) are
// the plain evaluation, byte for byte, cost included.
func TestQueryWithShardsOneIsUnsharded(t *testing.T) {
	mw := genStore(t, 800, 2, 72)
	q := genConj(2)
	want, err := mw.Query(context.Background(), q, TopN(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1} {
		rep, err := mw.Query(context.Background(), q, TopN(10), WithShards(p))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cost != want.Cost {
			t.Errorf("WithShards(%d): cost %v, want %v", p, rep.Cost, want.Cost)
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("WithShards(%d): result %d differs", p, i)
			}
		}
	}
}

// TestQueryWithShardsBudget: the access budget of a sharded request is a
// single pool across shards — a starved request stops with the usual
// typed error and a partial-cost report that never overshoots.
func TestQueryWithShardsBudget(t *testing.T) {
	mw := genStore(t, 2048, 2, 73)
	q := genConj(2)
	free, err := mw.Query(context.Background(), q, TopN(10), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(free.Cost.Sum()) / 8
	rep, err := mw.Query(context.Background(), q, TopN(10), WithShards(4), WithAccessBudget(budget))
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if rep == nil {
		t.Fatal("no partial report on budget stop")
	}
	if rep.Results != nil {
		t.Error("results on budget-stopped request")
	}
	if got := float64(rep.Cost.Sum()); got > budget {
		t.Errorf("partial cost %v overshoots shared budget %v", got, budget)
	}
	if rep.Cost.Sum() == 0 {
		t.Error("zero partial cost")
	}
}

// TestQueryWithShardsPinnedNRA: pinning the non-exact NRA alongside
// WithShards degenerates to the unsharded path rather than merging
// incomparable bound grades.
func TestQueryWithShardsPinnedNRA(t *testing.T) {
	mw := genStore(t, 600, 2, 74)
	q := genConj(2)
	want, err := mw.Query(context.Background(), q, TopN(8), WithAlgorithm(core.NRA{}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mw.Query(context.Background(), q, TopN(8), WithAlgorithm(core.NRA{}), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 1 {
		t.Errorf("Shards = %d, want 1 (degenerate)", rep.Shards)
	}
	if rep.Cost != want.Cost {
		t.Errorf("cost %v, want unsharded %v", rep.Cost, want.Cost)
	}
	for i := range want.Results {
		if rep.Results[i] != want.Results[i] {
			t.Errorf("result %d differs from unsharded NRA", i)
		}
	}
}

// TestResultsHonorsShards: the streaming iterator routes through the
// sharded paginator under WithShards — per-shard widening with a global
// merge per page — and the answer stream is identical to the unsharded
// one.
func TestResultsHonorsShards(t *testing.T) {
	mw := genStore(t, 300, 2, 75)
	q := genConj(2)
	var plain []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(7)) {
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, r)
		if len(plain) == 21 {
			break
		}
	}
	var sharded []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(7), WithShards(4)) {
		if err != nil {
			t.Fatal(err)
		}
		sharded = append(sharded, r)
		if len(sharded) == 21 {
			break
		}
	}
	if len(sharded) != len(plain) {
		t.Fatalf("sharded stream yielded %d, plain %d", len(sharded), len(plain))
	}
	for i := range plain {
		if sharded[i] != plain[i] {
			t.Errorf("stream result %d = %v, want %v", i, sharded[i], plain[i])
		}
	}
}

// TestPaginateHonorsShards: the explicit paginator under WithShards
// delivers the same pages as the unsharded one, end to end, and drains
// the whole universe.
func TestPaginateHonorsShards(t *testing.T) {
	mw := genStore(t, 260, 2, 76)
	q := genConj(2)
	plain, err := mw.Paginate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := mw.Paginate(context.Background(), q, WithShards(5), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sharded.Sharded() {
		t.Fatal("WithShards(5) paginator is not sharded")
	}
	total := 0
	for {
		want, err := plain.NextPage(9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.NextPage(9)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("page sized %d sharded, %d unsharded", len(got), len(want))
		}
		if len(want) == 0 {
			break
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("page entry %d = %v, want %v", i, got[i], want[i])
			}
		}
		total += len(want)
	}
	if total != 260 {
		t.Errorf("pagination delivered %d results, want the whole universe (260)", total)
	}
	plain.Release()
	sharded.Release()
}

// TestQueryWithShardsAndPrefetch: the composed mode — WithShards(P)
// plus WithPrefetch(d) — pipelines inside every shard while staying a
// pure transport change: at WithParallelism(1) the answers and the full
// cost breakdown match the plain sharded request bit for bit, and the
// report now aggregates the per-shard pipeline stats (the PR 5 fix:
// Report.Prefetch used to come back nil under WithShards).
func TestQueryWithShardsAndPrefetch(t *testing.T) {
	mw := genStore(t, 1600, 3, 82)
	q := genConj(3)
	want, err := mw.Query(context.Background(), q, TopN(12), WithShards(4), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if want.Prefetch != nil {
		t.Errorf("plain sharded request reports pipeline stats: %+v", *want.Prefetch)
	}
	for _, depth := range []int{0, 4} {
		rep, err := mw.Query(context.Background(), q, TopN(12),
			WithShards(4), WithParallelism(1), WithPrefetch(depth))
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if rep.Shards != 4 {
			t.Errorf("depth=%d: Shards = %d, want 4", depth, rep.Shards)
		}
		if rep.Cost != want.Cost {
			t.Errorf("depth=%d: cost %v, want %v", depth, rep.Cost, want.Cost)
		}
		for s := range want.PerShard {
			if rep.PerShard[s] != want.PerShard[s] {
				t.Errorf("depth=%d: shard %d cost %v, want %v", depth, s, rep.PerShard[s], want.PerShard[s])
			}
		}
		if len(rep.Results) != len(want.Results) {
			t.Fatalf("depth=%d: %d results, want %d", depth, len(rep.Results), len(want.Results))
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("depth=%d: result %d = %v, want %v", depth, i, rep.Results[i], want.Results[i])
			}
		}
		if rep.Prefetch == nil {
			t.Fatalf("depth=%d: no aggregated pipeline stats on the sharded report", depth)
		}
		if rep.Prefetch.Batches == 0 {
			t.Errorf("depth=%d: aggregated stats report zero batches", depth)
		}
		if depth > 0 && rep.Prefetch.MaxDepth > depth {
			t.Errorf("fixed depth %d exceeded across shards: max %d", depth, rep.Prefetch.MaxDepth)
		}
	}
	// The streaming form composes too: per-shard pipelines across pages.
	var got []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(5), WithShards(4), WithPrefetch(0)) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		if len(got) == 15 {
			break
		}
	}
	for i := range got {
		if i < len(want.Results) && got[i] != want.Results[i] {
			t.Errorf("stream result %d = %v, want %v", i, got[i], want.Results[i])
		}
	}
}

// TestQueryWithPrefetchIsCostNeutral: the pipelined executor changes
// wall-clock only — answers and Section 5 tallies match the serial
// request bit for bit — and the report carries pipeline stats.
func TestQueryWithPrefetchIsCostNeutral(t *testing.T) {
	mw := genStore(t, 1500, 3, 81)
	q := genConj(3)
	want, err := mw.Query(context.Background(), q, TopN(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 4} {
		rep, err := mw.Query(context.Background(), q, TopN(12), WithPrefetch(depth), WithParallelism(4))
		if err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
		if rep.Cost != want.Cost {
			t.Errorf("depth=%d: cost %v, want %v", depth, rep.Cost, want.Cost)
		}
		if len(rep.Results) != len(want.Results) {
			t.Fatalf("depth=%d: %d results, want %d", depth, len(rep.Results), len(want.Results))
		}
		for i := range want.Results {
			if rep.Results[i] != want.Results[i] {
				t.Errorf("depth=%d: result %d = %v, want %v", depth, i, rep.Results[i], want.Results[i])
			}
		}
		if rep.Prefetch == nil {
			t.Fatalf("depth=%d: no pipeline stats on the report", depth)
		}
		if rep.Prefetch.Batches == 0 {
			t.Errorf("depth=%d: pipeline stats report zero batches", depth)
		}
		if depth > 0 && rep.Prefetch.MaxDepth > depth {
			t.Errorf("fixed depth %d exceeded: max %d", depth, rep.Prefetch.MaxDepth)
		}
	}
}
