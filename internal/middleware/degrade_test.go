package middleware

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/query"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// errDown is the terminal cause the degraded-store fixtures fail with.
var errDown = errors.New("subsystem down")

// brokenSource injects one deterministic permanent failure into a
// source: sorted access fails when the span covers failRank, random
// access fails for failObj (either disabled at -1).
type brokenSource struct {
	subsys.Source
	failRank int
	failObj  int
}

func (b *brokenSource) TryEntry(rank int) (gradedset.Entry, error) {
	if rank == b.failRank {
		return gradedset.Entry{}, errDown
	}
	return b.Source.Entry(rank), nil
}

func (b *brokenSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if b.failRank >= 0 && lo <= b.failRank && b.failRank < hi {
		return b.Source.Entries(lo, b.failRank), errDown
	}
	return b.Source.Entries(lo, hi), nil
}

func (b *brokenSource) TryGrade(obj int) (float64, error) {
	if obj == b.failObj {
		return 0, errDown
	}
	return b.Source.Grade(obj), nil
}

// brokenSub wraps a subsystem so every list it serves carries the
// deterministic failure.
type brokenSub struct {
	subsys.Subsystem
	failRank int
	failObj  int
}

func (b *brokenSub) Query(target string) (subsys.Source, error) {
	src, err := b.Subsystem.Query(target)
	if err != nil {
		return nil, err
	}
	return &brokenSource{Source: src, failRank: b.failRank, failObj: b.failObj}, nil
}

// degradeAttrs is the attribute palette of the degradation fixtures.
var degradeAttrs = [3]string{"A", "B", "C"}

// degradeStore builds three static single-target ("x") subsystems over
// one generated scoring database, breaking the listed attributes with a
// permanent sorted-access failure at rank 0.
func degradeStore(t *testing.T, seed uint64, broken ...string) *Middleware {
	t.Helper()
	db := scoredb.Generator{N: 48, M: 3, Law: scoredb.Uniform{}, Seed: seed}.MustGenerate()
	subs := make([]subsys.Subsystem, len(degradeAttrs))
	for i, a := range degradeAttrs {
		st := subsys.NewStatic(a, db.N())
		st.Set("x", db.List(i))
		subs[i] = st
		for _, bad := range broken {
			if bad == a {
				subs[i] = &brokenSub{Subsystem: st, failRank: 0, failObj: -1}
			}
		}
	}
	mw, err := New(subs)
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

func degradeAtom(attr string) query.Atomic { return query.Atomic{Attr: attr, Target: "x"} }

func TestDegradedQueryEqualsFreshQueryOverSurvivors(t *testing.T) {
	// The degradation soundness property: dropping a failed list and
	// re-evaluating must return exactly what a fresh query over the
	// surviving atoms returns — across query shapes, victims, and data.
	shapes := []struct {
		name string
		tree func() query.Node
	}{
		{"and3", func() query.Node {
			return query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("B"), degradeAtom("C")}}
		}},
		{"or3", func() query.Node {
			return query.Or{Children: []query.Node{degradeAtom("A"), degradeAtom("B"), degradeAtom("C")}}
		}},
		{"and-of-or", func() query.Node {
			return query.And{Children: []query.Node{
				degradeAtom("A"),
				query.Or{Children: []query.Node{degradeAtom("B"), degradeAtom("C")}},
			}}
		}},
	}
	for _, shape := range shapes {
		for _, victim := range degradeAttrs {
			for _, seed := range []uint64{1, 7, 99} {
				label := shape.name + "/victim=" + victim
				faulty := degradeStore(t, seed, victim)
				clean := degradeStore(t, seed)

				rep, err := faulty.Query(context.Background(), shape.tree(), TopN(5), WithDegradedLists(2))
				if err != nil {
					t.Fatalf("%s: degraded query failed: %v", label, err)
				}
				if len(rep.Degraded) != 1 || rep.Degraded[0].Attr != victim {
					t.Fatalf("%s: Degraded = %+v, want one drop of %s", label, rep.Degraded, victim)
				}
				pruned := pruneAtom(shape.tree(), degradeAtom(victim))
				if pruned == nil {
					t.Fatalf("%s: nothing survived pruning", label)
				}
				want, err := clean.Query(context.Background(), pruned, TopN(5))
				if err != nil {
					t.Fatalf("%s: fresh query over survivors failed: %v", label, err)
				}
				if len(rep.Results) != len(want.Results) {
					t.Fatalf("%s: %d results, survivors give %d", label, len(rep.Results), len(want.Results))
				}
				for i := range want.Results {
					if rep.Results[i] != want.Results[i] {
						t.Errorf("%s: result %d: %v, survivors give %v", label, i, rep.Results[i], want.Results[i])
					}
				}
			}
		}
	}
}

func TestPruneAtomShapes(t *testing.T) {
	a, b := degradeAtom("A"), degradeAtom("B")
	cases := []struct {
		name   string
		in     query.Node
		victim query.Atomic
		want   query.Node
	}{
		{"atom-itself", a, a, nil},
		{"other-atom", a, b, a},
		{"dup-occurrences", query.And{Children: []query.Node{a, query.Or{Children: []query.Node{a, b}}}}, a, b},
		{"not-collapses", query.Not{Child: a}, a, nil},
		{"not-survives", query.Not{Child: a}, b, query.Not{Child: a}},
		{"weighted-collapses", query.Weighted{Child: a, Weight: 0.5}, a, nil},
		{"and-to-child", query.And{Children: []query.Node{a, b}}, a, b},
	}
	for _, tc := range cases {
		got := pruneAtom(tc.in, tc.victim)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: pruned to %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDegradedReportRecordsDropAndCost(t *testing.T) {
	faulty := degradeStore(t, 3, "B")
	clean := degradeStore(t, 3)
	tree := query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("B"), degradeAtom("C")}}

	rep, err := faulty.Query(context.Background(), tree, TopN(4), WithDegradedLists(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 1 {
		t.Fatalf("Degraded = %+v, want one entry", rep.Degraded)
	}
	dl := rep.Degraded[0]
	if dl.Attr != "B" || dl.Target != "x" || dl.Attempts != 1 {
		t.Errorf("DegradedList = %+v, want B=x after 1 attempt", dl)
	}
	var se *subsys.SourceError
	if !errors.As(dl.Err, &se) || !errors.Is(dl.Err, errDown) {
		t.Errorf("Err = %v, want *subsys.SourceError wrapping the backend cause", dl.Err)
	}
	// The sunk spend of the failed attempt is folded into the total:
	// Cost = fresh cost over survivors + the recorded sunk cost.
	pruned := query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("C")}}
	want, err := clean.Query(context.Background(), pruned, TopN(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := want.Cost.Add(dl.Cost); rep.Cost != got {
		t.Errorf("Cost = %v, want survivors' %v + sunk %v = %v", rep.Cost, want.Cost, dl.Cost, got)
	}
}

func TestDegradeStopsAtHeadroom(t *testing.T) {
	// Two broken lists but permission to lose only one: the second
	// failure surfaces as the typed error, with the first drop still on
	// the partial report.
	faulty := degradeStore(t, 5, "A", "B")
	tree := query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("B"), degradeAtom("C")}}

	rep, err := faulty.Query(context.Background(), tree, TopN(4), WithDegradedLists(1))
	var se *subsys.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *subsys.SourceError after headroom ran out", err)
	}
	if rep == nil || len(rep.Degraded) != 1 {
		t.Fatalf("report = %+v, want the first drop recorded", rep)
	}

	// With headroom for both, the query completes over the last list.
	rep, err = faulty.Query(context.Background(), tree, TopN(4), WithDegradedLists(2))
	if err != nil {
		t.Fatalf("maxDrop=2: %v", err)
	}
	if len(rep.Degraded) != 2 {
		t.Fatalf("maxDrop=2: %d drops, want 2", len(rep.Degraded))
	}
}

func TestSingleAtomNeverDegrades(t *testing.T) {
	faulty := degradeStore(t, 2, "A")
	_, err := faulty.Query(context.Background(), degradeAtom("A"), TopN(3), WithDegradedLists(3))
	var se *subsys.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want the typed error: a query cannot degrade below one atom", err)
	}
}

func TestFailFastWithoutDegradeOption(t *testing.T) {
	faulty := degradeStore(t, 2, "B")
	tree := query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("B")}}
	rep, err := faulty.Query(context.Background(), tree, TopN(3))
	var se *subsys.SourceError
	if !errors.As(err, &se) || !errors.Is(err, errDown) {
		t.Fatalf("err = %v, want *subsys.SourceError wrapping the backend cause", err)
	}
	if se.List != 1 || se.Random {
		t.Errorf("SourceError = %+v, want the sorted failure on list 1", se)
	}
	if rep == nil {
		t.Fatal("no partial-cost report alongside the error")
	}
	if len(rep.Degraded) != 0 {
		t.Errorf("Degraded = %+v without WithDegradedLists", rep.Degraded)
	}
}

func TestTopKMedianDegrades(t *testing.T) {
	faulty := degradeStore(t, 11, "B")
	clean := degradeStore(t, 11)
	atoms := []query.Atomic{degradeAtom("A"), degradeAtom("B"), degradeAtom("C")}

	rep, err := faulty.TopKMedian(context.Background(), atoms, 4, WithDegradedLists(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) != 1 || rep.Degraded[0].Attr != "B" {
		t.Fatalf("Degraded = %+v, want one drop of B", rep.Degraded)
	}
	want, err := clean.TopKMedian(context.Background(), []query.Atomic{degradeAtom("A"), degradeAtom("C")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if rep.Results[i] != want.Results[i] {
			t.Errorf("result %d: %v, survivors give %v", i, rep.Results[i], want.Results[i])
		}
	}
}

func TestStreamingEntryPointsFailFastDespiteDegradeOption(t *testing.T) {
	// Results, Paginate, and Filter never degrade — a pruned query would
	// change the meaning of an in-flight answer stream or threshold — so
	// the typed error surfaces even with WithDegradedLists.
	faulty := degradeStore(t, 13, "B")
	tree := query.And{Children: []query.Node{degradeAtom("A"), degradeAtom("B")}}

	var se *subsys.SourceError
	sawErr := false
	for _, err := range faulty.Results(context.Background(), tree, TopN(3), WithDegradedLists(2)) {
		if err != nil {
			sawErr = true
			if !errors.As(err, &se) {
				t.Fatalf("Results err = %v, want *subsys.SourceError", err)
			}
			break
		}
	}
	if !sawErr {
		t.Fatal("Results streamed to completion over a broken list")
	}

	p, err := faulty.Paginate(context.Background(), tree, WithDegradedLists(2))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if _, err := p.NextPage(3); !errors.As(err, &se) {
		t.Fatalf("NextPage err = %v, want *subsys.SourceError", err)
	}

	if _, err := faulty.Filter(context.Background(), tree, 0.25, WithDegradedLists(2)); !errors.As(err, &se) {
		t.Fatalf("Filter err = %v, want *subsys.SourceError", err)
	}
}
