package middleware

import (
	"context"
	"errors"
	"testing"

	"fuzzydb/internal/sched"
	"fuzzydb/internal/subsys"
)

// schedStore builds the running-example engine behind an admission
// scheduler, with any extra engine options appended.
func schedStore(t *testing.T, s *sched.Scheduler, extra ...Option) *Middleware {
	t.Helper()
	artists := []string{"Beatles", "Beatles", "Stones", "Stones", "Dylan", "Beatles"}
	mw, err := New(
		[]subsys.Subsystem{subsys.NewRelational("Artist", artists)},
		append([]Option{WithScheduler(s)}, extra...)...,
	)
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

// TestSchedulerSettlesTenantExactCost pins the reserve-then-settle
// protocol end to end: an admitted query's reservation is settled with
// exactly the model-weighted Section 5 cost its report tallied, under
// the tenant the request named.
func TestSchedulerSettlesTenantExactCost(t *testing.T) {
	s := sched.New(sched.Config{Rate: 1e6, Burst: 1e6})
	mw := schedStore(t, s)
	rep, err := mw.QueryString(context.Background(), `Artist = "Beatles"`, TopN(2), WithTenant("gold"))
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Cost.Sorted + rep.Cost.Random // Unweighted model
	st := s.Stats()
	if len(st) != 1 || st[0].Tenant != "gold" {
		t.Fatalf("stats = %+v, want exactly tenant gold", st)
	}
	if st[0].Admitted != 1 || st[0].SettledCost != float64(want) {
		t.Fatalf("tenant gold settled %v over %d admissions, want cost %d over 1",
			st[0].SettledCost, st[0].Admitted, want)
	}
	if n := s.Inflight(); n != 0 {
		t.Fatalf("inflight after query = %d, want 0", n)
	}
}

// TestSchedulerShedsTypedOverload pins the shed path through the
// engine: a tenant whose fixed token pool is spent gets a typed
// *sched.OverloadError from Query, before any planning work.
func TestSchedulerShedsTypedOverload(t *testing.T) {
	s := sched.New(sched.Config{Tenants: map[string]sched.TenantConfig{
		"broke": {Burst: 1}, // zero rate: one full-bucket admission, then dry
	}})
	mw := schedStore(t, s)
	ctx := context.Background()
	if _, err := mw.QueryString(ctx, `Artist = "Beatles"`, WithTenant("broke")); err != nil {
		t.Fatalf("first query should ride the full-bucket allowance: %v", err)
	}
	rep, err := mw.QueryString(ctx, `Artist = "Beatles"`, WithTenant("broke"))
	var oe *sched.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("second query: got (%v, %v), want *sched.OverloadError", rep, err)
	}
	if oe.Tenant != "broke" || oe.RetryAfter <= 0 {
		t.Fatalf("overload = %+v, want tenant broke with positive RetryAfter", oe)
	}
	st := s.Stats()
	if len(st) != 1 || st[0].Shed != 1 {
		t.Fatalf("stats = %+v, want one shed for broke", st)
	}
}

// TestSchedulerResultsSettlesStreamCost pins admission on the
// streaming path: a drained Results iterator settles the paginator's
// cumulative spend against the tenant's reservation.
func TestSchedulerResultsSettlesStreamCost(t *testing.T) {
	s := sched.New(sched.Config{Rate: 1e6, Burst: 1e6})
	mw := schedStore(t, s)
	n := 0
	for _, err := range mw.ResultsString(context.Background(), `Artist = "Beatles"`, TopN(2), WithTenant("gold")) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("stream yielded nothing")
	}
	st := s.Stats()
	if len(st) != 1 || st[0].Admitted != 1 || st[0].SettledCost <= 0 {
		t.Fatalf("stats = %+v, want one admission with positive settled cost", st)
	}
	if n := s.Inflight(); n != 0 {
		t.Fatalf("inflight after stream = %d, want 0", n)
	}
}

// TestSchedulerCacheHitSettlesZero pins the cache interaction: a hit
// consumed no source accesses, so it spends no tokens — the tenant's
// settled total is unchanged by the repeat.
func TestSchedulerCacheHitSettlesZero(t *testing.T) {
	s := sched.New(sched.Config{Rate: 1e6, Burst: 1e6})
	mw := schedStore(t, s, WithCache(8))
	ctx := context.Background()
	const q = `Artist = "Beatles"`
	if _, err := mw.QueryString(ctx, q, TopN(2), WithTenant("gold")); err != nil {
		t.Fatal(err)
	}
	afterMiss := s.Stats()[0].SettledCost
	rep, err := mw.QueryString(ctx, q, TopN(2), WithTenant("gold"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil || !rep.Cache.Hit {
		t.Fatalf("second query cache = %+v, want hit", rep.Cache)
	}
	st := s.Stats()[0]
	if st.SettledCost != afterMiss {
		t.Fatalf("hit changed the settled total: %v -> %v, want unchanged", afterMiss, st.SettledCost)
	}
	if st.Admitted != 2 {
		t.Fatalf("admitted = %d, want 2 (hits are admitted, they just settle free)", st.Admitted)
	}
}

// TestSchedulerWidthGrantCapsParallelism pins the governor wiring: a
// scheduler with a small MaxWidth clamps the request's executor width
// without changing its answers.
func TestSchedulerWidthGrantCapsParallelism(t *testing.T) {
	s := sched.New(sched.Config{Rate: 1e6, Burst: 1e6, MaxWidth: 2})
	mw := schedStore(t, s)
	bare := schedStore(t, nil)
	ctx := context.Background()
	const q = `Artist = "Beatles"`
	got, err := mw.QueryString(ctx, q, TopN(2), WithTenant("gold"), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.QueryString(ctx, q, TopN(2), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("clamped run answers %v, unclamped %v", got.Results, want.Results)
	}
	for i := range got.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("clamped run answers %v, unclamped %v", got.Results, want.Results)
		}
	}
}
