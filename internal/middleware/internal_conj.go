package middleware

import (
	"context"
	"fmt"

	"fuzzydb/internal/core"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// ConjunctionEvaluator is the optional subsystem capability behind
// Section 8's internal conjunction: a subsystem that can evaluate a
// multi-target conjunction natively, under its own semantics — which may
// differ from the middleware's (the paper's example: QBIC's conjunction
// is not Garlic's min).
type ConjunctionEvaluator interface {
	subsys.Subsystem
	// QueryConjunction evaluates the conjunction of Attribute = target
	// for every target, under the subsystem's own rules.
	QueryConjunction(targets []string) (subsys.Source, error)
}

// TopKInternal evaluates a conjunction of atoms that all name the same
// attribute by pushing the whole conjunction into the owning subsystem —
// the "internal conjunction" flavor a user may request for efficiency.
// One sorted stream comes back: the middleware's work is a single-list
// top-k, but the grades follow the subsystem's semantics, so the answer
// may legitimately differ from the external conjunction (Query), which
// evaluates the atoms separately and combines them under the middleware's
// rules. That divergence is precisely the Section 8 phenomenon.
func (m *Middleware) TopKInternal(ctx context.Context, atoms []query.Atomic, k int, opts ...QueryOption) (*Report, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("middleware: internal conjunction of nothing")
	}
	attr := atoms[0].Attr
	targets := make([]string, len(atoms))
	for i, a := range atoms {
		if a.Attr != attr {
			return nil, fmt.Errorf("middleware: internal conjunction spans attributes %q and %q; use the external conjunction", attr, a.Attr)
		}
		targets[i] = a.Target
	}
	s, ok := m.subsystems[attr]
	if !ok {
		return nil, &UnknownAttributeError{Attr: attr}
	}
	ce, ok := s.(ConjunctionEvaluator)
	if !ok {
		return nil, fmt.Errorf("middleware: subsystem %q cannot evaluate internal conjunctions", attr)
	}
	src, err := ce.QueryConjunction(targets)
	if err != nil {
		return nil, err
	}
	cfg := newQueryConfig(opts)
	counted := subsys.CountAll([]subsys.Source{src})
	ec := core.NewExecContext(ctx, counted, cfg.evalOptions()...)
	alg := core.B0{} // single list: the prefix is the answer
	plan := &Plan{
		Algorithm: alg,
		Atoms:     atoms,
		Agg:       m.sem.And,
		Reason:    fmt.Sprintf("internal conjunction pushed down to subsystem %q (Section 8)", attr),
	}
	// k is passed through unclamped: like the other explicit-k entry
	// points, out-of-range values surface core.ErrBadK.
	res, err := alg.TopK(ec, counted, m.sem.And, k)
	return finishReport(ec, counted, plan, res, err)
}
