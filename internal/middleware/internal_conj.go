package middleware

import (
	"fmt"

	"fuzzydb/internal/core"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// ConjunctionEvaluator is the optional subsystem capability behind
// Section 8's internal conjunction: a subsystem that can evaluate a
// multi-target conjunction natively, under its own semantics — which may
// differ from the middleware's (the paper's example: QBIC's conjunction
// is not Garlic's min).
type ConjunctionEvaluator interface {
	subsys.Subsystem
	// QueryConjunction evaluates the conjunction of Attribute = target
	// for every target, under the subsystem's own rules.
	QueryConjunction(targets []string) (subsys.Source, error)
}

// TopKInternal evaluates a conjunction of atoms that all name the same
// attribute by pushing the whole conjunction into the owning subsystem —
// the "internal conjunction" flavor a user may request for efficiency.
// One sorted stream comes back: the middleware's work is a single-list
// top-k, but the grades follow the subsystem's semantics, so the answer
// may legitimately differ from the external conjunction (TopK), which
// evaluates the atoms separately and combines them under the middleware's
// rules. That divergence is precisely the Section 8 phenomenon.
func (m *Middleware) TopKInternal(atoms []query.Atomic, k int) (*Report, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("middleware: internal conjunction of nothing")
	}
	attr := atoms[0].Attr
	targets := make([]string, len(atoms))
	for i, a := range atoms {
		if a.Attr != attr {
			return nil, fmt.Errorf("middleware: internal conjunction spans attributes %q and %q; use the external conjunction", attr, a.Attr)
		}
		targets[i] = a.Target
	}
	s, ok := m.subsystems[attr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAttribute, attr)
	}
	ce, ok := s.(ConjunctionEvaluator)
	if !ok {
		return nil, fmt.Errorf("middleware: subsystem %q cannot evaluate internal conjunctions", attr)
	}
	src, err := ce.QueryConjunction(targets)
	if err != nil {
		return nil, err
	}
	counted := subsys.CountAll([]subsys.Source{src})
	alg := core.B0{} // single list: the prefix is the answer
	res, err := alg.TopK(counted, m.sem.And, k)
	if err != nil {
		return nil, err
	}
	return &Report{
		Results: res,
		Cost:    subsys.TotalCost(counted),
		Plan: &Plan{
			Algorithm: alg,
			Atoms:     atoms,
			Agg:       m.sem.And,
			Reason:    fmt.Sprintf("internal conjunction pushed down to subsystem %q (Section 8)", attr),
		},
	}, nil
}
