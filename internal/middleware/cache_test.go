package middleware

import (
	"context"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"fuzzydb/internal/core"
	"fuzzydb/internal/query"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// genMutableStore builds a cached engine and an uncached oracle engine
// over the SAME mutable subsystems, so every grade update is visible to
// both and the oracle always recomputes from live data.
func genMutableStore(t testing.TB, n, m int, seed uint64, capacity int) (*Middleware, *Middleware, []*subsys.Mutable, *scoredb.Database) {
	t.Helper()
	db := scoredb.Generator{N: n, M: m, Seed: seed}.MustGenerate()
	muts := make([]*subsys.Mutable, m)
	subsystems := make([]subsys.Subsystem, m)
	for i := 0; i < m; i++ {
		mu := subsys.NewMutable(attrName(i), n, subsys.DefaultJournalDepth)
		mu.Set("*", db.List(i))
		muts[i] = mu
		subsystems[i] = mu
	}
	cached, err := New(subsystems, WithCache(capacity))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := New(subsystems)
	if err != nil {
		t.Fatal(err)
	}
	return cached, oracle, muts, db
}

// sameReport compares every section a hit promises to reproduce
// bit-identically: results, Section 5 tallies and their per-list,
// per-shard, and pipeline breakdowns.
func sameReport(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("%s: results differ:\n got %v\nwant %v", label, got.Results, want.Results)
	}
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost = %+v, want %+v", label, got.Cost, want.Cost)
	}
	if !reflect.DeepEqual(got.PerList, want.PerList) {
		t.Fatalf("%s: per-list tallies differ", label)
	}
	if !reflect.DeepEqual(got.PerShard, want.PerShard) {
		t.Fatalf("%s: per-shard tallies differ", label)
	}
	if got.Shards != want.Shards {
		t.Fatalf("%s: shards = %d, want %d", label, got.Shards, want.Shards)
	}
}

// samePrefetch additionally compares the pipeline stats — meaningful
// only between a hit and the very computation it cached: against a
// fresh recompute the adaptive depths and stalls are timing-dependent.
func samePrefetch(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if !reflect.DeepEqual(got.Prefetch, want.Prefetch) {
		t.Fatalf("%s: pipeline stats differ", label)
	}
}

func sameResults(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("%s: results differ:\n got %v\nwant %v", label, got.Results, want.Results)
	}
}

// TestCacheHitBitIdentity pins the equivalence contract across every
// executor and sharding shape: the second identical request is a hit
// and its report is bit-identical to both the first computation and a
// fresh evaluation by an uncached engine.
func TestCacheHitBitIdentity(t *testing.T) {
	shapes := []struct {
		name string
		opts []QueryOption
	}{
		{"serial", nil},
		{"concurrent", []QueryOption{WithParallelism(4)}},
		{"pipelined", []QueryOption{WithPrefetch(8)}},
		{"sharded", []QueryOption{WithShards(4)}},
		{"sharded-pipelined", []QueryOption{WithShards(4), WithPrefetch(8)}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			eng, oracle, _, _ := genMutableStore(t, 900, 3, 41, 0)
			q := genConj(3)
			opts := append([]QueryOption{TopN(12)}, sh.opts...)

			first, err := eng.Query(context.Background(), q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if first.Cache == nil || first.Cache.Hit {
				t.Fatalf("first query Cache = %+v, want recorded miss", first.Cache)
			}
			second, err := eng.Query(context.Background(), q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if second.Cache == nil || !second.Cache.Hit {
				t.Fatalf("second query Cache = %+v, want hit", second.Cache)
			}
			if second.Cache.SavedCost != first.Cost {
				t.Fatalf("SavedCost = %+v, want the original spend %+v", second.Cache.SavedCost, first.Cost)
			}
			sameReport(t, "hit vs original", second, first)
			samePrefetch(t, "hit vs original", second, first)

			fresh, err := oracle.Query(context.Background(), q, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sameReport(t, "hit vs uncached recompute", second, fresh)
			if (second.Prefetch == nil) != (fresh.Prefetch == nil) {
				t.Fatalf("pipeline stats presence differs: hit %v, fresh %v", second.Prefetch != nil, fresh.Prefetch != nil)
			}

			st, ok := eng.CacheStats()
			if !ok || st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
				t.Fatalf("stats = %+v (ok=%v)", st, ok)
			}
		})
	}
}

// TestCacheUpdateSurvival drives the threshold invalidation rules
// end-to-end through mutable subsystems: updates that provably cannot
// disturb the cached top k leave it serving hits, updates that could
// evict it, and in every case the served answer equals a fresh
// recompute over the live data.
func TestCacheUpdateSurvival(t *testing.T) {
	eng, oracle, muts, db := genMutableStore(t, 600, 2, 47, 0)
	q := genConj(2)
	ctx := context.Background()

	warm := func() *Report {
		t.Helper()
		rep, err := eng.Query(ctx, q, TopN(10))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	requery := func(wantHit bool, label string) *Report {
		t.Helper()
		rep, err := eng.Query(ctx, q, TopN(10))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cache == nil || rep.Cache.Hit != wantHit {
			t.Fatalf("%s: Cache = %+v, want hit=%v", label, rep.Cache, wantHit)
		}
		fresh, err := oracle.Query(ctx, q, TopN(10))
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, label+" vs recompute", rep, fresh)
		return rep
	}

	base := warm()
	members := make(map[int]bool, len(base.Results))
	for _, r := range base.Results {
		members[r.Object] = true
	}
	kth := base.Results[len(base.Results)-1].Grade
	nonMember := -1
	for obj := 0; obj < db.N(); obj++ {
		if !members[obj] {
			nonMember = obj
			break
		}
	}
	if nonMember < 0 {
		t.Fatal("no non-member object")
	}

	// Lowering a non-member cannot disturb the top k: still a hit.
	old, err := db.List(0).Grade(nonMember)
	if err != nil {
		t.Fatal(err)
	}
	if err := muts[0].UpdateGrade("*", nonMember, old/2); err != nil {
		t.Fatal(err)
	}
	requery(true, "non-member lower")

	// Raising it while the aggregate bound stays strictly below the
	// k-th grade (min law: the raised grade itself): still a hit.
	if err := muts[0].UpdateGrade("*", nonMember, kth*0.9); err != nil {
		t.Fatal(err)
	}
	requery(true, "non-member raise below kth")

	// Raising it past the k-th grade could displace a member: miss.
	if err := muts[0].UpdateGrade("*", nonMember, (kth+1)/2); err != nil {
		t.Fatal(err)
	}
	requery(false, "non-member raise above kth")

	// A member's grade moving always evicts.
	warm()
	member := base.Results[0].Object
	mold, err := db.List(1).Grade(member)
	if err != nil {
		t.Fatal(err)
	}
	if err := muts[1].UpdateGrade("*", member, mold*0.99); err != nil {
		t.Fatal(err)
	}
	requery(false, "member update")

	// Set replaces the list wholesale and poisons the journal: the next
	// lookup cannot replay and must recompute.
	warm()
	muts[0].Set("*", db.List(0))
	requery(false, "journal poisoned by Set")

	st, _ := eng.CacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("stats = %+v, want recorded invalidations", st)
	}
}

// TestCacheSkipsUncacheableRequests: budgeted, degradable, non-exact,
// and non-monotone evaluations bypass the cache entirely — no stores,
// no Report.Cache.
func TestCacheSkipsUncacheableRequests(t *testing.T) {
	eng, _, _, _ := genMutableStore(t, 400, 2, 53, 0)
	ctx := context.Background()
	cases := []struct {
		name string
		q    query.Node
		opts []QueryOption
	}{
		{"budgeted", genConj(2), []QueryOption{TopN(5), WithAccessBudget(1e6)}},
		{"degradable", genConj(2), []QueryOption{TopN(5), WithDegradedLists(1)}},
		{"non-exact algorithm", genConj(2), []QueryOption{TopN(5), WithAlgorithm(core.NRA{})}},
		{"non-monotone query", query.Not{Child: query.Atomic{Attr: attrName(0), Target: "*"}}, []QueryOption{TopN(5)}},
	}
	for _, tc := range cases {
		rep, err := eng.Query(ctx, tc.q, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Cache != nil {
			t.Errorf("%s: Report.Cache = %+v, want nil", tc.name, rep.Cache)
		}
	}
	if n := eng.CacheLen(); n != 0 {
		t.Fatalf("cache holds %d entries after uncacheable requests", n)
	}
	if st, _ := eng.CacheStats(); st.Stores != 0 {
		t.Fatalf("stats = %+v, want zero stores", st)
	}
}

// TestCacheEngineLRUBound: the engine-level cache honors its entry
// bound, and Invalidate empties it.
func TestCacheEngineLRUBound(t *testing.T) {
	eng, _, _, _ := genMutableStore(t, 300, 2, 59, 2)
	ctx := context.Background()
	q := genConj(2)
	for _, k := range []int{3, 5, 7} {
		if _, err := eng.Query(ctx, q, TopN(k)); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
	// The oldest key (k=3) was evicted; k=7 is still cached.
	rep, err := eng.Query(ctx, q, TopN(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil || !rep.Cache.Hit {
		t.Fatalf("recent key not cached: %+v", rep.Cache)
	}
	rep, err = eng.Query(ctx, q, TopN(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil || rep.Cache.Hit {
		t.Fatalf("evicted key served a hit: %+v", rep.Cache)
	}

	eng.Invalidate()
	if n := eng.CacheLen(); n != 0 {
		t.Fatalf("cache holds %d entries after Invalidate", n)
	}
	rep, err = eng.Query(ctx, q, TopN(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil || rep.Cache.Hit {
		t.Fatalf("hit after Invalidate: %+v", rep.Cache)
	}
}

// TestCacheStreamSnapshotIsolation: a streaming cursor opened before an
// epoch bump keeps paging over the snapshot its sources were
// materialized from — the update neither corrupts the stream nor
// sneaks cached pages in.
func TestCacheStreamSnapshotIsolation(t *testing.T) {
	eng, oracle, muts, db := genMutableStore(t, 500, 2, 61, 0)
	ctx := context.Background()
	q := genConj(2)

	const total = 40
	want, err := oracle.Query(ctx, q, TopN(total))
	if err != nil {
		t.Fatal(err)
	}

	var got []core.Result
	bumped := false
	for r, err := range eng.Results(ctx, q, TopN(8)) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		if !bumped {
			// Mid-stream: move a grade on every list.
			for i, mu := range muts {
				g, gerr := db.List(i).Grade(got[0].Object)
				if gerr != nil {
					t.Fatal(gerr)
				}
				if uerr := mu.UpdateGrade("*", got[0].Object, g/2); uerr != nil {
					t.Fatal(uerr)
				}
			}
			bumped = true
		}
		if len(got) == total {
			break
		}
	}
	if !reflect.DeepEqual(got, want.Results) {
		t.Fatalf("stream diverged from its snapshot:\n got %v\nwant %v", got, want.Results)
	}
}

// TestCacheConcurrentQueryUpdate hammers a cached engine with
// concurrent queries, grade updates, and invalidations; run under
// -race it pins the locking, and every served answer must be
// well-formed (sorted descending, within k).
func TestCacheConcurrentQueryUpdate(t *testing.T) {
	eng, _, muts, db := genMutableStore(t, 400, 3, 67, 8)
	ctx := context.Background()
	q := genConj(3)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 1))
			for i := 0; i < 60; i++ {
				k := 1 + rng.IntN(12)
				rep, err := eng.Query(ctx, q, TopN(k))
				if err != nil {
					t.Error(err)
					return
				}
				if len(rep.Results) > k {
					t.Errorf("%d results for k=%d", len(rep.Results), k)
					return
				}
				for j := 1; j < len(rep.Results); j++ {
					if rep.Results[j].Grade > rep.Results[j-1].Grade {
						t.Error("results out of order")
						return
					}
				}
			}
		}(uint64(w))
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 2))
			for i := 0; i < 60; i++ {
				l := rng.IntN(len(muts))
				obj := rng.IntN(db.N())
				if err := muts[l].UpdateGrade("*", obj, rng.Float64()); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 19 {
					eng.Invalidate()
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	st, _ := eng.CacheStats()
	if st.Hits+st.Misses != 4*60 {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, 4*60)
	}
}
