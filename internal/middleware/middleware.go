// Package middleware is the Garlic stand-in: it registers subsystems by
// attribute, parses and plans queries, evaluates them with the optimal
// algorithm from the core package, and reports exact middleware costs.
//
// # The request API
//
// Evaluation is request-scoped: Query takes a context and per-request
// functional options, so a caller can bound, cancel, and parallelize
// each evaluation independently of how the engine was built —
//
//	rep, err := mw.Query(ctx, q, TopN(10), WithParallelism(4),
//		WithAccessBudget(5000))
//
// WithShards(P) additionally partitions the object universe into P
// contiguous slices evaluated independently (the threshold-aware merge
// of core.EvaluateSharded combines the per-shard answers); the report
// then carries a per-shard cost breakdown alongside the per-atom one.
// WithPrefetch(d) evaluates through the pipelined latency-hiding
// executor — background per-subsystem prefetchers with adaptive batched
// readahead, random accesses overlapped across subsystems and objects —
// for requests whose subsystems are genuinely remote; the report then
// carries the pipeline stats. The two compose: WithShards(P) plus
// WithPrefetch(d) pipelines inside every shard (prefetchers stream the
// shard's re-ranked views; the gather width and pipeline depth are
// budgeted globally across the shard workers), which is the mode for
// sharded queries against slow multi-backend subsystems.
//
// Results is the streaming form: it yields answers one at a time in
// descending grade order (an iter.Seq2), widening the underlying top-r
// computation page by page over shared counted lists, so "the next k
// best" resumes from the prefixes already paid for. On cancellation or
// budget exhaustion Query returns the partial-cost report together with
// the error (errors.Is context.Canceled / core.ErrBudgetExceeded).
//
// TopK and TopKString remain as deprecated context-free wrappers over
// Query; the specialist entry points (Filter, TopKMedian, TopKInternal,
// Paginate) changed signature to take the request context directly.
//
// # Failure: typed errors and graceful degradation
//
// A subsystem whose sources implement subsys.FallibleSource can fail
// mid-query. By default every entry point fails fast: the terminal
// failure surfaces as a typed *subsys.SourceError (which list, at which
// rank or object, after how many attempts; errors.As-selectable)
// together with a valid partial-cost report of everything spent up to
// the failure. WithDegradedLists(maxDrop) opts a request in to graceful
// degradation instead: a permanently failed list is dropped, the query
// is re-planned and re-evaluated over the surviving subsystems — the
// semantics are pinned: the degraded answer equals a fresh query over
// the survivors — up to maxDrop times, with Report.Degraded recording
// each dropped list (atom, attempts, cause, spend sunk into the failed
// evaluation, included in the report's total cost). Only Query and
// TopKMedian degrade; the streaming and paginating entry points always
// fail fast, since their already-yielded answers cannot be revised.
// Resilience (retries, timeouts, breakers) lives below this layer: wrap
// subsystems with subsys.WithResilience so transient faults never reach
// the middleware at all.
//
// # Planning
//
// Planning follows the paper's results directly:
//
//   - conjunction of atoms under min            → A₀′ (Theorem 4.4)
//   - other monotone queries                    → A₀ (Theorem 4.2)
//   - disjunction of atoms under max            → B₀ (Theorem 4.5)
//   - median / order-statistic combinations     → subset decomposition
//     (Remark 6.1), selected explicitly via TopKMedian
//   - non-monotone queries (any negation)       → naive, the only safe
//     choice; by Theorem 7.1 queries like Q ∧ ¬Q genuinely require
//     linear cost, so this is not pessimism
//
// Section 8's two flavors of conjunction are both available: an external
// conjunction always evaluates atoms in separate subsystem calls and
// combines them under the middleware's semantics; an internal conjunction
// pushes a multi-atom conjunction down to a subsystem that owns all of
// its attributes and is willing to evaluate it under its own — possibly
// different — semantics.
package middleware

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cache"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/query"
	"fuzzydb/internal/sched"
	"fuzzydb/internal/subsys"
)

// Middleware routes queries to subsystems and evaluates Boolean
// combinations over the combined graded results.
type Middleware struct {
	subsystems  map[string]subsys.Subsystem
	sem         query.Semantics
	n           int
	names       []string
	resultCache *cache.Cache     // nil without WithCache; see cache.go
	sched       *sched.Scheduler // nil without WithScheduler; see sched.go
}

// Errors returned by the middleware. The sentinels classify; the typed
// forms below carry the offending attribute and sizes for errors.As.
var (
	// ErrUnknownAttribute reports an atom whose attribute no registered
	// subsystem owns.
	ErrUnknownAttribute = errors.New("middleware: unknown attribute")
	// ErrSizeMismatch reports subsystems over different object universes.
	ErrSizeMismatch = errors.New("middleware: subsystems disagree on universe size")
)

// UnknownAttributeError is the typed form of ErrUnknownAttribute:
//
//	var uae *middleware.UnknownAttributeError
//	if errors.As(err, &uae) { suggestClosest(uae.Attr) }
type UnknownAttributeError struct {
	// Attr is the attribute no registered subsystem owns.
	Attr string
}

// Error implements error.
func (e *UnknownAttributeError) Error() string {
	return fmt.Sprintf("%v: %q", ErrUnknownAttribute, e.Attr)
}

// Unwrap ties the typed error to the ErrUnknownAttribute sentinel, so
// existing errors.Is checks keep working.
func (e *UnknownAttributeError) Unwrap() error { return ErrUnknownAttribute }

// SizeMismatchError is the typed form of ErrSizeMismatch: the named
// attribute's subsystem (or query result) covers Got objects where the
// engine's universe has Want.
type SizeMismatchError struct {
	// Attr is the attribute whose subsystem or result disagreed.
	Attr string
	// Got is the size the subsystem or result reported.
	Got int
	// Want is the engine's universe size.
	Want int
}

// Error implements error.
func (e *SizeMismatchError) Error() string {
	return fmt.Sprintf("%v: %q has %d objects, want %d", ErrSizeMismatch, e.Attr, e.Got, e.Want)
}

// Unwrap ties the typed error to the ErrSizeMismatch sentinel.
func (e *SizeMismatchError) Unwrap() error { return ErrSizeMismatch }

// Option configures the middleware.
type Option func(*Middleware)

// WithSemantics replaces the standard (min/max/1−x) rules.
func WithSemantics(sem query.Semantics) Option {
	return func(m *Middleware) { m.sem = sem }
}

// WithNames attaches display names to objects (names[obj]).
func WithNames(names []string) Option {
	return func(m *Middleware) { m.names = names }
}

// New builds a middleware over the given subsystems. All subsystems must
// grade the same universe 0,…,N−1.
func New(subsystems []subsys.Subsystem, opts ...Option) (*Middleware, error) {
	if len(subsystems) == 0 {
		return nil, errors.New("middleware: no subsystems")
	}
	m := &Middleware{
		subsystems: make(map[string]subsys.Subsystem, len(subsystems)),
		sem:        query.Standard(),
		n:          subsystems[0].Size(),
	}
	for _, s := range subsystems {
		if s.Size() != m.n {
			return nil, &SizeMismatchError{Attr: s.Attribute(), Got: s.Size(), Want: m.n}
		}
		if _, dup := m.subsystems[s.Attribute()]; dup {
			return nil, fmt.Errorf("middleware: duplicate subsystem for attribute %q", s.Attribute())
		}
		m.subsystems[s.Attribute()] = s
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.names != nil && len(m.names) != m.n {
		return nil, fmt.Errorf("middleware: %d names for %d objects", len(m.names), m.n)
	}
	return m, nil
}

// N returns the universe size.
func (m *Middleware) N() int { return m.n }

// Name returns the display name of obj, or its numeric form.
func (m *Middleware) Name(obj int) string {
	if m.names != nil && obj >= 0 && obj < len(m.names) {
		return m.names[obj]
	}
	return fmt.Sprintf("#%d", obj)
}

// Plan describes how a query will be evaluated.
type Plan struct {
	// Algorithm chosen by the planner.
	Algorithm core.Algorithm
	// Atoms in evaluation order, one subsystem call each.
	Atoms []query.Atomic
	// Agg is the derived aggregation function over the atoms' grades.
	Agg agg.Func
	// Reason is a one-line justification referencing the paper.
	Reason string
}

// PlanQuery normalizes and compiles q, then chooses the algorithm per
// the paper's results. Normalization applies only the equivalence
// rewrites that are sound for the configured semantics (Theorem 3.1
// licenses the full set for the standard rules); it can upgrade plans —
// NOT NOT (A AND B) normalizes to a conjunction evaluable by A₀′ instead
// of forcing the naive algorithm.
func (m *Middleware) PlanQuery(q query.Node) (*Plan, error) {
	q = query.Rewrite(q, query.RulesFor(m.sem))
	c, err := query.Compile(q, m.sem)
	if err != nil {
		return nil, err
	}
	for _, a := range c.Atoms {
		if _, ok := m.subsystems[a.Attr]; !ok {
			return nil, &UnknownAttributeError{Attr: a.Attr}
		}
	}
	p := &Plan{Atoms: c.Atoms, Agg: c.Func}
	switch {
	case !c.Func.Monotone():
		p.Algorithm = core.NaiveSorted{}
		p.Reason = "non-monotone (negation present): naive evaluation; hard queries are Θ(N) (Thm 7.1)"
	case len(c.Atoms) == 1:
		p.Algorithm = core.B0{}
		p.Reason = "single list: top-k is the sorted prefix (B0 degenerate case)"
	case c.Shape == query.ShapeDisjunction && m.sem.Or.Name() == agg.Max.Name():
		p.Algorithm = core.B0{}
		p.Reason = "disjunction under max: B0, cost mk independent of N (Thm 4.5, Rem 6.1)"
	case c.Shape == query.ShapeConjunction && m.sem.And.Name() == agg.Min.Name():
		if drive, sel, ok := m.selectiveConjunct(c.Atoms); ok {
			p.Algorithm = core.FilterFirst{Drive: drive}
			p.Reason = fmt.Sprintf("selective crisp conjunct %q (selectivity %.4f): evaluate it first, probe the rest (Sec 4)",
				c.Atoms[drive].Attr, sel)
			break
		}
		p.Algorithm = core.A0Prime{}
		p.Reason = "conjunction under min: A0' candidates refinement (Thm 4.4)"
	default:
		p.Algorithm = core.A0{}
		p.Reason = "monotone query: A0, cost O(N^((m-1)/m) k^(1/m)) w.h.p. (Thms 4.2, 5.3)"
	}
	return p, nil
}

// SelectivityEstimator is the optional statistics interface a subsystem
// can provide (relational engines keep these). The planner uses it to
// pick the Section 4 "evaluate the selective crisp conjunct first" plan.
type SelectivityEstimator interface {
	Selectivity(target string) float64
}

// planK is the k the crossover rule assumes; the plan stays correct for
// any k, only the constant-factor tradeoff shifts.
const planK = 10

// selectiveConjunct looks for the most selective atom whose subsystem
// reports statistics, and accepts it when filter-first is expected to
// beat A₀: cost ≈ s·N·m against ≈ 2m·√(Nk), i.e. s ≤ 2√(k/N).
func (m *Middleware) selectiveConjunct(atoms []query.Atomic) (drive int, sel float64, ok bool) {
	best := -1
	bestSel := 2.0
	for i, a := range atoms {
		est, isEst := m.subsystems[a.Attr].(SelectivityEstimator)
		if !isEst {
			continue
		}
		if s := est.Selectivity(a.Target); s < bestSel {
			bestSel = s
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	// Cap the crossover at 10%: at small N the √(k/N) rule degenerates
	// (everything looks selective), and A0' is the safer general plan.
	threshold := 2 * math.Sqrt(float64(planK)/float64(m.n))
	if threshold > 0.1 {
		threshold = 0.1
	}
	if bestSel > threshold {
		return 0, 0, false
	}
	return best, bestSel, true
}

// Report is the outcome of a query evaluation.
type Report struct {
	// Results in descending grade order. Nil when the evaluation stopped
	// early (cancellation, budget): the report then carries the partial
	// cost only.
	Results []core.Result
	// Cost is the exact middleware access cost of the evaluation — the
	// full tallies on success, the partial spend on an early stop.
	Cost cost.Cost
	// PerList breaks the cost down by atom, aligned with Plan.Atoms: how
	// much sorted and random access each subsystem served. Nil when the
	// evaluation was abandoned with accesses in flight.
	PerList []cost.Cost
	// PerShard breaks the cost down by universe shard when the request
	// asked for sharded evaluation (WithShards): PerShard[s] is the total
	// access cost shard s incurred across all atoms. Nil for unsharded
	// evaluations.
	PerShard []cost.Cost
	// Shards is the number of universe shards the evaluation ran over
	// (0 for the unsharded path, 1 when WithShards degenerated to it).
	Shards int
	// ShardDetails is the planning/measurement breakdown per planned
	// shard under WithShards: the planned range, its predicted work
	// (weighted plan only), the model-weighted cost actually spent in
	// it, and how many times it was robbed by work stealing. Nil for
	// unsharded evaluations.
	ShardDetails []core.ShardDetail
	// Stolen is the total number of honored work-stealing splits
	// (WithWorkStealing); 0 otherwise.
	Stolen int
	// Degraded lists the subsystem lists a degraded evaluation dropped
	// (WithDegradedLists), in drop order: which atom, how many attempts,
	// the terminal error, and the cost sunk into the failed attempt. Nil
	// when the evaluation never degraded. The Results and Cost fields
	// then describe the pruned query over the survivors, with the failed
	// attempts' spend folded into Cost.
	Degraded []DegradedList
	// Prefetch reports what the pipelined executor's background
	// prefetchers did (deepest adaptive batch, stalls, physical batched
	// calls), summed over the subsystem lists — and, under WithShards,
	// aggregated across shards (MaxDepth is the deepest any shard grew;
	// Stalls and Batches sum). Nil unless the request asked for
	// WithPrefetch and the pipelines engaged.
	Prefetch *subsys.PipelineStats
	// Cache records how the result cache handled this request — hit or
	// miss, the source-epoch fingerprint the answer reflects, and (on a
	// hit) the access cost the cache saved. Nil when the engine has no
	// cache or the request was not cacheable (budgeted, degraded,
	// non-exact or non-monotone evaluation). A hit carries the original
	// computation's Results, Cost, PerList, PerShard, and Prefetch
	// sections verbatim: bit-identical to what recomputing would return
	// (results provably so even after surviving grade updates; tallies
	// describe the original computation — see package cache).
	Cache *CacheInfo
	// Plan that produced the results.
	Plan *Plan
}

// DefaultTopN is the number of answers Query returns when TopN is not
// given.
const DefaultTopN = 10

// queryConfig is the per-request configuration assembled from
// QueryOptions.
type queryConfig struct {
	k           int
	alg         core.Algorithm
	parallelism int
	shards      int
	shardPlan   core.ShardPlanPolicy // boundary policy under WithShards
	steal       bool                 // WithWorkStealing under WithShards
	budget      float64
	model       cost.Model
	prefetch    int    // pipelined readahead depth; meaningful when prefetchOn
	prefetchOn  bool   // WithPrefetch given: use the pipelined executor
	maxDrop     int    // WithDegradedLists: lists the request may lose
	tenant      string // WithTenant: who the request bills to (sched.go)
	widthCap    int    // scheduler width grant; 0 = no cap (sched.go)
}

// QueryOption configures one evaluation (see Query and Results).
type QueryOption func(*queryConfig)

// TopN asks for the k best answers (default DefaultTopN). A k beyond the
// universe size is clamped to it — "the best ten of seven" means all
// seven — while k < 1 is still an error. For Results it is also the page
// size of the underlying incremental widening.
func TopN(k int) QueryOption {
	return func(c *queryConfig) { c.k = k }
}

// WithAlgorithm overrides the planner's choice. The caller takes on the
// planner's job of matching algorithm to query shape (e.g. B₀ is only
// correct under max, A₀′ under min); correctness guarantees are the
// algorithm's own.
func WithAlgorithm(alg core.Algorithm) QueryOption {
	return func(c *queryConfig) { c.alg = alg }
}

// WithParallelism evaluates the request with the concurrent executor: up
// to p source operations in flight at once, one worker per subsystem
// (see core.Concurrent). p ≤ 1 means serial. Access tallies are
// bit-identical to the serial executor's; only wall-clock changes.
func WithParallelism(p int) QueryOption {
	return func(c *queryConfig) { c.parallelism = p }
}

// WithShards evaluates the request over p disjoint contiguous slices of
// the object universe: the planner's algorithm runs once per shard over
// re-ranked shard views of the subsystem results, and the per-shard
// answers are merged into the global top k by a threshold-aware merge —
// a shard whose frontier aggregate falls strictly below the current
// global k-th grade stops early (see core.EvaluateSharded). Answers
// match the unsharded evaluation — identical grade sequence, identical
// objects above the k-th grade, and a correct maximal choice within a
// tie class at the k-th grade (byte-identical whenever that grade is
// untied); the report additionally carries the per-shard cost
// breakdown.
//
// WithShards composes with the other request options: WithParallelism
// caps the number of shard workers running at once (1 = sequential
// shards, the deterministic-cost mode; default GOMAXPROCS), and
// WithAccessBudget becomes a single reservation pool shared by all
// shards, so the global spend still never overshoots. p ≤ 1 means
// unsharded. The paginating entry points (Results, Paginate) honor
// WithShards too: each page widens every shard's top-r computation over
// shard state kept alive across pages and merges the per-shard answers
// (no fencing — later pages may need any shard), so the page sequence
// matches the unsharded pagination. Non-exact algorithms (NRA) evaluate
// unsharded regardless of this option.
func WithShards(p int) QueryOption {
	return func(c *queryConfig) { c.shards = p }
}

// WithShardPlan selects how WithShards cuts the universe into shard
// ranges. core.ShardPlanEven (the default) splits by object count;
// core.ShardPlanWeighted cuts at quantiles of the predicted access work
// derived from the subsystems' grade-distribution sketches — subsystems
// exposing subsys.GradeSketcher (Static, Mutable) serve exact cached
// sketches, any other source is sketched once by bounded unmetered
// sampling — so a skewed workload's hot region is spread across shards
// instead of concentrating in one. Sketching and planning are invisible
// to the Section 5 tallies. No-op without WithShards.
func WithShardPlan(p core.ShardPlanPolicy) QueryOption {
	return func(c *queryConfig) { c.shardPlan = p }
}

// WithWorkStealing lets a shard worker that finishes early split the
// remaining range of the most-behind running shard and evaluate the
// ceded tail itself (see core.ShardConfig.Steal). Engages only under
// WithShards with more than one shard worker and a fence-safe
// algorithm; answers are unchanged, per-shard tallies are not
// deterministic. No-op otherwise.
func WithWorkStealing(on bool) QueryOption {
	return func(c *queryConfig) { c.steal = on }
}

// WithPrefetch evaluates the request with the pipelined executor, the
// latency-hiding transport for slow or remote subsystems: a background
// prefetcher per subsystem list keeps sorted streams ahead of the
// algorithm by issuing batched sorted accesses — depth 0 selects the
// adaptive policy (start at 1, double on stall, shrink when the
// algorithm falls behind), depth > 0 pins the batch depth — and the
// random-access phase overlaps across subsystems and objects
// (WithParallelism(p>1) caps the probes in flight; otherwise a
// wider-than-CPU default applies, since a pipelined request is
// concurrent by nature).
// Access tallies are bit-identical to the serial executor's; only
// wall-clock changes. Combined with WithShards every shard runs under
// its own pipelined executor — background pipelines stream the shard's
// re-ranked views, still pay-on-delivery — with the gather width and
// pipeline depth budgeted globally across the shard workers, so P
// shards never multiply the goroutine or buffer footprint;
// WithParallelism keeps its shard-worker-cap meaning there, and the
// report's Prefetch stats aggregate across shards.
func WithPrefetch(depth int) QueryOption {
	return func(c *queryConfig) {
		if depth < 0 {
			depth = 0
		}
		c.prefetch = depth
		c.prefetchOn = true
	}
}

// WithAccessBudget bounds the weighted middleware cost of the request:
// the evaluation stops with core.ErrBudgetExceeded — and a partial-cost
// report — before it would cross the limit (see core.WithAccessBudget).
// Non-positive means unlimited.
func WithAccessBudget(limit float64) QueryOption {
	return func(c *queryConfig) { c.budget = limit }
}

// WithCostModel prices sorted and random accesses for budget accounting
// (default cost.Unweighted).
func WithCostModel(model cost.Model) QueryOption {
	return func(c *queryConfig) { c.model = model }
}

func newQueryConfig(opts []QueryOption) queryConfig {
	cfg := queryConfig{k: DefaultTopN, model: cost.Unweighted}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// shardConfig lowers the request configuration onto the partitioned
// evaluator. WithPrefetch gives every shard its own pipelined executor
// (the gather/depth budget is divided across shard workers by core);
// WithParallelism keeps its shard-worker-cap meaning, so the width
// budget stays at the executor default under sharding.
// A scheduler width grant (sched.go) caps both the shard-worker count
// and the total gather budget, so admitted queries divide the global
// envelope instead of each claiming the executor default.
func (c queryConfig) shardConfig() core.ShardConfig {
	return core.ShardConfig{
		Shards:        c.shards,
		Parallel:      c.clampParallel(c.parallelism),
		Budget:        c.budget,
		Model:         c.model,
		Prefetch:      c.prefetchOn,
		PrefetchDepth: c.prefetch,
		PrefetchWidth: c.widthCap,
		Plan:          c.shardPlan,
		Steal:         c.steal,
	}
}

// clampParallel bounds a worker count by the scheduler's width grant
// (no-op without one).
func (c queryConfig) clampParallel(p int) int {
	if c.widthCap > 0 && (p == 0 || p > c.widthCap) {
		return c.widthCap
	}
	return p
}

// gradeSketches assembles the per-atom grade-distribution sketches the
// weighted shard planner consumes: the subsystem's own cached sketch
// when it implements subsys.GradeSketcher, a one-time bounded sampling
// of the materialized list otherwise. Both routes read raw sources
// outside any Counted, so the request's tallies are untouched.
func (m *Middleware) gradeSketches(atoms []query.Atomic, lists []subsys.Source) []*subsys.Sketch {
	out := make([]*subsys.Sketch, len(atoms))
	for i, a := range atoms {
		if gs, ok := m.subsystems[a.Attr].(subsys.GradeSketcher); ok {
			if sk := gs.GradeSketch(a.Target); sk != nil {
				out[i] = sk
				continue
			}
		}
		if i < len(lists) && lists[i] != nil {
			out[i] = subsys.SampleSketch(lists[i], subsys.DefaultSketchProbes)
		}
	}
	return out
}

// evalOptions lowers the request configuration onto the core evaluation
// options. WithPrefetch selects the pipelined executor (WithParallelism
// then caps its in-flight probes); plain WithParallelism selects the
// concurrent one.
func (c queryConfig) evalOptions() []core.EvalOption {
	opts := []core.EvalOption{core.WithCostModel(c.model)}
	if c.prefetchOn {
		// WithParallelism(p>1) caps the in-flight probes; p ≤ 1 (the
		// "serial" default) keeps the executor's wider default — a
		// pipelined request is concurrent by nature. A scheduler width
		// grant overrides both: the grant is the request's share of
		// the global goroutine/buffer envelope.
		width := 0
		if c.parallelism > 1 {
			width = c.parallelism
		}
		if c.widthCap > 0 && (width == 0 || width > c.widthCap) {
			width = c.widthCap
		}
		opts = append(opts, core.WithExecutor(core.Pipelined{P: width, Depth: c.prefetch}))
	} else if c.parallelism > 1 {
		if p := c.clampParallel(c.parallelism); p > 1 {
			opts = append(opts, core.WithExecutor(core.Concurrent{P: p}))
		}
	}
	if c.budget > 0 {
		opts = append(opts, core.WithAccessBudget(c.budget))
	}
	return opts
}

// clampK caps k at the universe size ("the best ten of seven" means all
// seven); k < 1 is left for checkArgs to reject.
func (m *Middleware) clampK(k int) int {
	if k > m.n {
		return m.n
	}
	return k
}

// Query plans and evaluates q under the caller's context: the single
// entry point of the request API. Options bound the answer count (TopN),
// pin an algorithm (WithAlgorithm), run the subsystem accesses
// concurrently (WithParallelism), and cap the spend (WithAccessBudget,
// WithCostModel).
//
// On success the report carries the answers, the exact Section 5 access
// cost, its per-subsystem breakdown, and the plan. On cancellation or
// budget exhaustion Query returns the error together with a partial-cost
// report, so callers can account for what an interrupted evaluation
// spent.
// With WithDegradedLists(d), a permanent subsystem failure mid-query
// (typed *subsys.SourceError) does not end the request: up to d failed
// lists are dropped, the pruned query is re-planned and re-evaluated
// over the survivors, and the report records what was lost
// (Report.Degraded) along with the full spend including the failed
// attempts. Without the option a source failure fails fast: the typed
// error plus a valid partial-cost report.
// Under an engine built WithScheduler, the request is first admitted
// against its tenant's token bucket and the weighted-fair queue (see
// WithTenant); an overloaded scheduler rejects with a typed
// *sched.OverloadError before any planning work, and the admitted
// request's exact cost settles its reservation afterwards.
func (m *Middleware) Query(ctx context.Context, q query.Node, opts ...QueryOption) (*Report, error) {
	cfg := newQueryConfig(opts)
	grant, err := m.admit(ctx, &cfg)
	if err != nil {
		return nil, err
	}
	rep, err := m.queryDispatch(ctx, q, cfg)
	grant.Settle(settledCost(cfg, rep))
	return rep, err
}

// queryDispatch routes an admitted request to the cache path or the
// compute-from-scratch path.
func (m *Middleware) queryDispatch(ctx context.Context, q query.Node, cfg queryConfig) (*Report, error) {
	if m.resultCache != nil && cfg.cacheable() {
		return m.queryCached(ctx, q, cfg)
	}
	return m.queryUncached(ctx, q, cfg)
}

// queryUncached is the compute-from-scratch path: the planning,
// degradation, and execution loop every request ultimately runs
// through (the cache path calls it on a miss).
func (m *Middleware) queryUncached(ctx context.Context, q query.Node, cfg queryConfig) (*Report, error) {
	var degraded []DegradedList
	var sunk cost.Cost
	for {
		plan, err := m.PlanQuery(q)
		if err != nil {
			return attachDegraded(nil, degraded, sunk), err
		}
		if cfg.alg != nil {
			plan.Algorithm = cfg.alg
			plan.Reason = fmt.Sprintf("algorithm pinned to %s by WithAlgorithm", cfg.alg.Name())
		}
		rep, err := m.execute(ctx, plan, cfg)
		if err != nil {
			atom, dl, ok := degradeTarget(plan, rep, err, cfg.maxDrop-len(degraded))
			if ok {
				if pruned := pruneAtom(q, atom); pruned != nil {
					degraded = append(degraded, dl)
					sunk = sunk.Add(dl.Cost)
					q = pruned
					continue
				}
			}
		}
		return attachDegraded(rep, degraded, sunk), err
	}
}

// QueryString parses q from concrete syntax and evaluates it via Query.
func (m *Middleware) QueryString(ctx context.Context, q string, opts ...QueryOption) (*Report, error) {
	n, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return m.Query(ctx, n, opts...)
}

// Results evaluates q incrementally: a push iterator over answers in
// descending grade order, delivering "the next k best" on demand — the
// continuation feature noted after Theorem 4.2 — until the universe is
// exhausted or the consumer stops. Pages of TopN answers are computed at
// a time over shared counted lists, so deeper pages resume from the
// prefixes already paid for rather than starting over.
//
// The options of Query apply per request; a budget bounds the cumulative
// cost across all pages. With WithShards the widening runs per universe
// shard over shard state kept alive across pages, each page merged
// globally (see core.NewShardedPaginator) — the page sequence matches
// the unsharded one. On an error (cancellation, budget, a planning
// failure, or a non-paginable algorithm pinned via WithAlgorithm) the
// iterator yields one (zero Result, err) pair and stops.
func (m *Middleware) Results(ctx context.Context, q query.Node, opts ...QueryOption) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		cfg := newQueryConfig(opts)
		grant, err := m.admit(ctx, &cfg)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		pag, err := m.preparePagination(ctx, q, cfg)
		if err != nil {
			grant.Settle(0)
			yield(core.Result{}, err)
			return
		}
		// LIFO deferral order: the settle closure runs before Release,
		// while the paginator's cumulative tallies are still readable.
		defer pag.p.Release()
		defer func() { grant.Settle(cfg.model.Of(pag.p.Cost())) }()
		pageSize := m.clampK(pag.pageSize)
		for {
			page, err := pag.p.NextPage(pageSize)
			if err != nil {
				yield(core.Result{}, err)
				return
			}
			if len(page) == 0 {
				return
			}
			for _, r := range page {
				if !yield(r, nil) {
					return
				}
			}
		}
	}
}

// ResultsString parses q from concrete syntax and streams answers via
// Results. A parse failure yields one (zero Result, err) pair.
func (m *Middleware) ResultsString(ctx context.Context, q string, opts ...QueryOption) iter.Seq2[core.Result, error] {
	n, err := query.Parse(q)
	if err != nil {
		return func(yield func(core.Result, error) bool) {
			yield(core.Result{}, err)
		}
	}
	return m.Results(ctx, n, opts...)
}

// pagination bundles a prepared paginator with the page size the request
// asked for.
type pagination struct {
	p        *core.Paginator
	pageSize int
}

// preparePagination is the shared front half of Paginate and Results:
// plan, apply a WithAlgorithm pin, validate paginability, evaluate the
// atoms, and bind the execution state — sharded (per-shard counted views
// kept alive across pages, see core.NewShardedPaginator) when the
// request asked for WithShards, the single shared-list evaluation
// otherwise.
func (m *Middleware) preparePagination(ctx context.Context, q query.Node, cfg queryConfig) (pagination, error) {
	plan, err := m.PlanQuery(q)
	if err != nil {
		return pagination{}, err
	}
	pinned := cfg.alg != nil
	if pinned {
		plan.Algorithm = cfg.alg
		plan.Reason = fmt.Sprintf("algorithm pinned to %s by WithAlgorithm", cfg.alg.Name())
	}
	alg, err := paginableAlgorithm(plan, pinned)
	if err != nil {
		return pagination{}, err
	}
	lists, err := m.sources(plan.Atoms)
	if err != nil {
		return pagination{}, err
	}
	if cfg.shards > 1 {
		scfg := cfg.shardConfig()
		if scfg.Plan == core.ShardPlanWeighted {
			scfg.Sketches = m.gradeSketches(plan.Atoms, lists)
		}
		sp, err := core.NewShardedPaginator(ctx, alg, lists, plan.Agg, scfg)
		if err != nil {
			return pagination{}, err
		}
		return pagination{p: sp, pageSize: cfg.k}, nil
	}
	counted := subsys.CountAll(lists)
	ec := core.NewExecContext(ctx, counted, cfg.evalOptions()...)
	return pagination{p: core.NewPaginator(ec, alg, counted, plan.Agg), pageSize: cfg.k}, nil
}

// paginableAlgorithm adapts a plan's algorithm for incremental widening.
// B₀ paginates correctly only for single lists: a planner-chosen B₀
// over a multi-list disjunction silently falls back to A₀ (same
// answers, graded-prefix semantics), while an explicit pin is refused
// loudly — the caller asked for a specific access pattern the paginator
// cannot honor. Inexact algorithms (NRA) are refused either way, since
// their bound-grades make pages unstable.
func paginableAlgorithm(plan *Plan, pinned bool) (core.Algorithm, error) {
	if _, isB0 := plan.Algorithm.(core.B0); isB0 && len(plan.Atoms) > 1 {
		if pinned {
			return nil, fmt.Errorf("middleware: cannot paginate with B0 over %d lists; it is exact only for the first page", len(plan.Atoms))
		}
		return core.A0{}, nil
	}
	if !plan.Algorithm.Exact() {
		return nil, fmt.Errorf("middleware: cannot paginate with %s: its grades are bounds, so pages are not stable", plan.Algorithm.Name())
	}
	return plan.Algorithm, nil
}

// TopK evaluates q and returns the top k answers with cost accounting.
// Unlike Query (which clamps), it preserves the historical contract of
// rejecting k outside [1, N].
//
// Deprecated: use Query with a context and TopN.
func (m *Middleware) TopK(q query.Node, k int) (*Report, error) {
	if k > m.n {
		return nil, fmt.Errorf("%w: k=%d, N=%d", core.ErrBadK, k, m.n)
	}
	return m.Query(context.Background(), q, TopN(k))
}

// TopKString parses and evaluates a query in concrete syntax.
//
// Deprecated: use QueryString with a context and TopN.
func (m *Middleware) TopKString(q string, k int) (*Report, error) {
	n, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return m.TopK(n, k)
}

// TopKMedian evaluates the median of the given atoms with the subset
// decomposition of Remark 6.1 — the O(√(Nk)) route that beats the strict
// lower bound.
func (m *Middleware) TopKMedian(ctx context.Context, atoms []query.Atomic, k int, opts ...QueryOption) (*Report, error) {
	// Like the other explicit-k entry points, out-of-range k surfaces
	// core.ErrBadK rather than being clamped.
	if k > m.n {
		return nil, fmt.Errorf("%w: k=%d, N=%d", core.ErrBadK, k, m.n)
	}
	cfg := newQueryConfig(opts)
	cfg.k = k
	var degraded []DegradedList
	var sunk cost.Cost
	for {
		plan := &Plan{
			Algorithm: core.OrderStat{},
			Atoms:     atoms,
			Agg:       agg.Median,
			Reason:    "median via max-of-subset-mins (Rem 6.1): O(√(Nk)), beats the strict bound",
		}
		rep, err := m.execute(ctx, plan, cfg)
		if err != nil {
			// Degradation drops the failed atom from the flat list: the
			// result is the median of the survivors, as a fresh
			// TopKMedian call over them would compute.
			if _, dl, ok := degradeTarget(plan, rep, err, cfg.maxDrop-len(degraded)); ok {
				var se *subsys.SourceError
				errors.As(err, &se)
				degraded = append(degraded, dl)
				sunk = sunk.Add(dl.Cost)
				atoms = append(append([]query.Atomic{}, atoms[:se.List]...), atoms[se.List+1:]...)
				continue
			}
		}
		return attachDegraded(rep, degraded, sunk), err
	}
}

// Filter evaluates the threshold query "overall grade ≥ theta" for a
// monotone q, in the Chaudhuri–Gravano style.
func (m *Middleware) Filter(ctx context.Context, q query.Node, theta float64, opts ...QueryOption) (*Report, error) {
	cfg := newQueryConfig(opts)
	q = query.Rewrite(q, query.RulesFor(m.sem))
	c, err := query.Compile(q, m.sem)
	if err != nil {
		return nil, err
	}
	if !c.Func.Monotone() {
		return nil, fmt.Errorf("middleware: filter requires a monotone query")
	}
	lists, err := m.sources(c.Atoms)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Atoms:  c.Atoms,
		Agg:    c.Func,
		Reason: fmt.Sprintf("filter condition: all objects with grade >= %g [CG96]", theta),
	}
	counted := subsys.CountAll(lists)
	ec := core.NewExecContext(ctx, counted, cfg.evalOptions()...)
	res, err := core.Filter(ec, counted, c.Func, theta)
	return finishReport(ec, counted, plan, res, err)
}

// Paginate prepares paginated evaluation of q ("give me the next k"),
// per the continuation feature noted after Theorem 4.2. The context and
// options govern every subsequent NextPage call — including WithShards,
// which keeps per-shard state alive across pages and merges each page
// globally. Results is the iterator-shaped form of the same machinery
// (and releases the underlying state itself when the stream ends);
// callers driving the paginator directly should call its Release method
// when done to recycle pooled state — mandatory under WithPrefetch,
// whose background prefetcher goroutines otherwise outlive the
// pagination.
func (m *Middleware) Paginate(ctx context.Context, q query.Node, opts ...QueryOption) (*core.Paginator, error) {
	pag, err := m.preparePagination(ctx, q, newQueryConfig(opts))
	if err != nil {
		return nil, err
	}
	return pag.p, nil
}

// execute runs a plan under the request configuration. Errors mid-
// evaluation (cancellation, budget) come back with a partial-cost
// report.
func (m *Middleware) execute(ctx context.Context, plan *Plan, cfg queryConfig) (*Report, error) {
	lists, err := m.sources(plan.Atoms)
	if err != nil {
		return nil, err
	}
	if cfg.shards > 1 {
		return m.executeSharded(ctx, plan, cfg, lists)
	}
	counted := subsys.CountAll(lists)
	ec := core.NewExecContext(ctx, counted, cfg.evalOptions()...)
	res, err := plan.Algorithm.TopK(ec, counted, plan.Agg, m.clampK(cfg.k))
	return finishReport(ec, counted, plan, res, err)
}

// executeSharded runs a plan through the partitioned evaluator: the
// algorithm per universe shard (pipelined inside when the request asked
// for WithPrefetch), a threshold-aware merge, and the usual Section 5
// tallies summed across shards (total, per atom, and — new with
// sharding — per shard), plus the aggregated prefetch-pipeline stats.
func (m *Middleware) executeSharded(ctx context.Context, plan *Plan, cfg queryConfig, lists []subsys.Source) (*Report, error) {
	scfg := cfg.shardConfig()
	if scfg.Plan == core.ShardPlanWeighted {
		scfg.Sketches = m.gradeSketches(plan.Atoms, lists)
	}
	sr, err := core.EvaluateSharded(ctx, plan.Algorithm, lists, plan.Agg, m.clampK(cfg.k), scfg)
	rep := &Report{Cost: sr.Cost, PerShard: sr.PerShard, Shards: sr.Shards, Prefetch: sr.Prefetch,
		ShardDetails: sr.Details, Stolen: sr.Stolen, Plan: plan}
	if len(sr.PerList) == len(plan.Atoms) {
		rep.PerList = sr.PerList
	}
	if err != nil {
		return rep, err
	}
	rep.Results = sr.Results
	return rep, nil
}

// finishReport is the shared evaluation epilogue: it assembles the
// report (full tallies plus the per-atom breakdown when the lists align
// with the plan's atoms), releases the pooled lists, and attaches the
// results only on success. An abandoned evaluation — workers possibly
// still touching the lists — gets the last quiescent cost instead, and
// its state is left for the GC.
func finishReport(ec *core.ExecContext, counted []*subsys.Counted, plan *Plan, res []core.Result, err error) (*Report, error) {
	if err == nil {
		// Final net for fallible sources, as in core.Evaluate: no report
		// may carry results computed over a truncated list.
		if serr := ec.SourceFailure(); serr != nil {
			res, err = nil, serr
		}
	}
	if ec.Abandoned() {
		return &Report{Cost: ec.SafeCost(), Plan: plan}, err
	}
	rep := &Report{Cost: subsys.TotalCost(counted), Plan: plan}
	if len(counted) == len(plan.Atoms) {
		rep.PerList = make([]cost.Cost, len(counted))
		for i, c := range counted {
			rep.PerList[i] = c.Cost()
		}
	}
	for _, c := range counted {
		if s, ok := c.PrefetchStats(); ok {
			if rep.Prefetch == nil {
				rep.Prefetch = &subsys.PipelineStats{}
			}
			*rep.Prefetch = rep.Prefetch.Add(s)
		}
	}
	subsys.ReleaseAll(counted)
	if err != nil {
		return rep, err
	}
	rep.Results = res
	return rep, nil
}

// sources evaluates each atom against its subsystem.
func (m *Middleware) sources(atoms []query.Atomic) ([]subsys.Source, error) {
	out := make([]subsys.Source, len(atoms))
	for i, a := range atoms {
		s, ok := m.subsystems[a.Attr]
		if !ok {
			return nil, &UnknownAttributeError{Attr: a.Attr}
		}
		src, err := s.Query(a.Target)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", a.Attr, err)
		}
		if src.Len() != m.n {
			return nil, &SizeMismatchError{Attr: a.Attr, Got: src.Len(), Want: m.n}
		}
		out[i] = src
	}
	return out, nil
}
