// Package middleware is the Garlic stand-in: it registers subsystems by
// attribute, parses and plans queries, evaluates them with the optimal
// algorithm from the core package, and reports exact middleware costs.
//
// Planning follows the paper's results directly:
//
//   - conjunction of atoms under min            → A₀′ (Theorem 4.4)
//   - other monotone queries                    → A₀ (Theorem 4.2)
//   - disjunction of atoms under max            → B₀ (Theorem 4.5)
//   - median / order-statistic combinations     → subset decomposition
//     (Remark 6.1), selected explicitly via TopKMedian
//   - non-monotone queries (any negation)       → naive, the only safe
//     choice; by Theorem 7.1 queries like Q ∧ ¬Q genuinely require
//     linear cost, so this is not pessimism
//
// Section 8's two flavors of conjunction are both available: an external
// conjunction always evaluates atoms in separate subsystem calls and
// combines them under the middleware's semantics; an internal conjunction
// pushes a multi-atom conjunction down to a subsystem that owns all of
// its attributes and is willing to evaluate it under its own — possibly
// different — semantics.
package middleware

import (
	"errors"
	"fmt"
	"math"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// Middleware routes queries to subsystems and evaluates Boolean
// combinations over the combined graded results.
type Middleware struct {
	subsystems map[string]subsys.Subsystem
	sem        query.Semantics
	n          int
	names      []string
}

// Errors returned by the middleware.
var (
	// ErrUnknownAttribute reports an atom whose attribute no registered
	// subsystem owns.
	ErrUnknownAttribute = errors.New("middleware: unknown attribute")
	// ErrSizeMismatch reports subsystems over different object universes.
	ErrSizeMismatch = errors.New("middleware: subsystems disagree on universe size")
)

// Option configures the middleware.
type Option func(*Middleware)

// WithSemantics replaces the standard (min/max/1−x) rules.
func WithSemantics(sem query.Semantics) Option {
	return func(m *Middleware) { m.sem = sem }
}

// WithNames attaches display names to objects (names[obj]).
func WithNames(names []string) Option {
	return func(m *Middleware) { m.names = names }
}

// New builds a middleware over the given subsystems. All subsystems must
// grade the same universe 0,…,N−1.
func New(subsystems []subsys.Subsystem, opts ...Option) (*Middleware, error) {
	if len(subsystems) == 0 {
		return nil, errors.New("middleware: no subsystems")
	}
	m := &Middleware{
		subsystems: make(map[string]subsys.Subsystem, len(subsystems)),
		sem:        query.Standard(),
		n:          subsystems[0].Size(),
	}
	for _, s := range subsystems {
		if s.Size() != m.n {
			return nil, fmt.Errorf("%w: %q has %d objects, want %d", ErrSizeMismatch, s.Attribute(), s.Size(), m.n)
		}
		if _, dup := m.subsystems[s.Attribute()]; dup {
			return nil, fmt.Errorf("middleware: duplicate subsystem for attribute %q", s.Attribute())
		}
		m.subsystems[s.Attribute()] = s
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.names != nil && len(m.names) != m.n {
		return nil, fmt.Errorf("middleware: %d names for %d objects", len(m.names), m.n)
	}
	return m, nil
}

// N returns the universe size.
func (m *Middleware) N() int { return m.n }

// Name returns the display name of obj, or its numeric form.
func (m *Middleware) Name(obj int) string {
	if m.names != nil && obj >= 0 && obj < len(m.names) {
		return m.names[obj]
	}
	return fmt.Sprintf("#%d", obj)
}

// Plan describes how a query will be evaluated.
type Plan struct {
	// Algorithm chosen by the planner.
	Algorithm core.Algorithm
	// Atoms in evaluation order, one subsystem call each.
	Atoms []query.Atomic
	// Agg is the derived aggregation function over the atoms' grades.
	Agg agg.Func
	// Reason is a one-line justification referencing the paper.
	Reason string
}

// PlanQuery normalizes and compiles q, then chooses the algorithm per
// the paper's results. Normalization applies only the equivalence
// rewrites that are sound for the configured semantics (Theorem 3.1
// licenses the full set for the standard rules); it can upgrade plans —
// NOT NOT (A AND B) normalizes to a conjunction evaluable by A₀′ instead
// of forcing the naive algorithm.
func (m *Middleware) PlanQuery(q query.Node) (*Plan, error) {
	q = query.Rewrite(q, query.RulesFor(m.sem))
	c, err := query.Compile(q, m.sem)
	if err != nil {
		return nil, err
	}
	for _, a := range c.Atoms {
		if _, ok := m.subsystems[a.Attr]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttribute, a.Attr)
		}
	}
	p := &Plan{Atoms: c.Atoms, Agg: c.Func}
	switch {
	case !c.Func.Monotone():
		p.Algorithm = core.NaiveSorted{}
		p.Reason = "non-monotone (negation present): naive evaluation; hard queries are Θ(N) (Thm 7.1)"
	case len(c.Atoms) == 1:
		p.Algorithm = core.B0{}
		p.Reason = "single list: top-k is the sorted prefix (B0 degenerate case)"
	case c.Shape == query.ShapeDisjunction && m.sem.Or.Name() == agg.Max.Name():
		p.Algorithm = core.B0{}
		p.Reason = "disjunction under max: B0, cost mk independent of N (Thm 4.5, Rem 6.1)"
	case c.Shape == query.ShapeConjunction && m.sem.And.Name() == agg.Min.Name():
		if drive, sel, ok := m.selectiveConjunct(c.Atoms); ok {
			p.Algorithm = core.FilterFirst{Drive: drive}
			p.Reason = fmt.Sprintf("selective crisp conjunct %q (selectivity %.4f): evaluate it first, probe the rest (Sec 4)",
				c.Atoms[drive].Attr, sel)
			break
		}
		p.Algorithm = core.A0Prime{}
		p.Reason = "conjunction under min: A0' candidates refinement (Thm 4.4)"
	default:
		p.Algorithm = core.A0{}
		p.Reason = "monotone query: A0, cost O(N^((m-1)/m) k^(1/m)) w.h.p. (Thms 4.2, 5.3)"
	}
	return p, nil
}

// SelectivityEstimator is the optional statistics interface a subsystem
// can provide (relational engines keep these). The planner uses it to
// pick the Section 4 "evaluate the selective crisp conjunct first" plan.
type SelectivityEstimator interface {
	Selectivity(target string) float64
}

// planK is the k the crossover rule assumes; the plan stays correct for
// any k, only the constant-factor tradeoff shifts.
const planK = 10

// selectiveConjunct looks for the most selective atom whose subsystem
// reports statistics, and accepts it when filter-first is expected to
// beat A₀: cost ≈ s·N·m against ≈ 2m·√(Nk), i.e. s ≤ 2√(k/N).
func (m *Middleware) selectiveConjunct(atoms []query.Atomic) (drive int, sel float64, ok bool) {
	best := -1
	bestSel := 2.0
	for i, a := range atoms {
		est, isEst := m.subsystems[a.Attr].(SelectivityEstimator)
		if !isEst {
			continue
		}
		if s := est.Selectivity(a.Target); s < bestSel {
			bestSel = s
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	// Cap the crossover at 10%: at small N the √(k/N) rule degenerates
	// (everything looks selective), and A0' is the safer general plan.
	threshold := 2 * math.Sqrt(float64(planK)/float64(m.n))
	if threshold > 0.1 {
		threshold = 0.1
	}
	if bestSel > threshold {
		return 0, 0, false
	}
	return best, bestSel, true
}

// Report is the outcome of a query evaluation.
type Report struct {
	// Results in descending grade order.
	Results []core.Result
	// Cost is the exact middleware access cost of the evaluation.
	Cost cost.Cost
	// PerList breaks the cost down by atom, aligned with Plan.Atoms: how
	// much sorted and random access each subsystem served.
	PerList []cost.Cost
	// Plan that produced the results.
	Plan *Plan
}

// TopK evaluates q and returns the top k answers with cost accounting.
func (m *Middleware) TopK(q query.Node, k int) (*Report, error) {
	plan, err := m.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return m.execute(plan, k)
}

// TopKString parses and evaluates a query in concrete syntax.
func (m *Middleware) TopKString(q string, k int) (*Report, error) {
	n, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return m.TopK(n, k)
}

// TopKMedian evaluates the median of the given atoms with the subset
// decomposition of Remark 6.1 — the O(√(Nk)) route that beats the strict
// lower bound.
func (m *Middleware) TopKMedian(atoms []query.Atomic, k int) (*Report, error) {
	lists, err := m.sources(atoms)
	if err != nil {
		return nil, err
	}
	counted := subsys.CountAll(lists)
	defer subsys.ReleaseAll(counted)
	alg := core.OrderStat{}
	res, err := alg.TopK(counted, agg.Median, k)
	if err != nil {
		return nil, err
	}
	return &Report{
		Results: res,
		Cost:    subsys.TotalCost(counted),
		Plan: &Plan{
			Algorithm: alg,
			Atoms:     atoms,
			Agg:       agg.Median,
			Reason:    "median via max-of-subset-mins (Rem 6.1): O(√(Nk)), beats the strict bound",
		},
	}, nil
}

// Filter evaluates the threshold query "overall grade ≥ theta" for a
// monotone q, in the Chaudhuri–Gravano style.
func (m *Middleware) Filter(q query.Node, theta float64) (*Report, error) {
	q = query.Rewrite(q, query.RulesFor(m.sem))
	c, err := query.Compile(q, m.sem)
	if err != nil {
		return nil, err
	}
	if !c.Func.Monotone() {
		return nil, fmt.Errorf("middleware: filter requires a monotone query")
	}
	lists, err := m.sources(c.Atoms)
	if err != nil {
		return nil, err
	}
	counted := subsys.CountAll(lists)
	defer subsys.ReleaseAll(counted)
	res, err := core.Filter(counted, c.Func, theta)
	if err != nil {
		return nil, err
	}
	return &Report{
		Results: res,
		Cost:    subsys.TotalCost(counted),
		Plan: &Plan{
			Algorithm: nil,
			Atoms:     c.Atoms,
			Agg:       c.Func,
			Reason:    fmt.Sprintf("filter condition: all objects with grade >= %g [CG96]", theta),
		},
	}, nil
}

// Paginate prepares paginated evaluation of q ("give me the next k"),
// per the continuation feature noted after Theorem 4.2.
func (m *Middleware) Paginate(q query.Node) (*core.Paginator, error) {
	plan, err := m.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	if !plan.Algorithm.Exact() {
		return nil, fmt.Errorf("middleware: cannot paginate with %s", plan.Algorithm.Name())
	}
	lists, err := m.sources(plan.Atoms)
	if err != nil {
		return nil, err
	}
	// B0 only paginates correctly for single lists; use A0 otherwise.
	alg := plan.Algorithm
	if _, isB0 := alg.(core.B0); isB0 && len(plan.Atoms) > 1 {
		alg = core.A0{}
	}
	return core.NewPaginator(alg, subsys.CountAll(lists), plan.Agg), nil
}

// execute runs a plan.
func (m *Middleware) execute(plan *Plan, k int) (*Report, error) {
	lists, err := m.sources(plan.Atoms)
	if err != nil {
		return nil, err
	}
	counted := subsys.CountAll(lists)
	defer subsys.ReleaseAll(counted)
	res, err := plan.Algorithm.TopK(counted, plan.Agg, k)
	if err != nil {
		return nil, err
	}
	perList := make([]cost.Cost, len(counted))
	for i, c := range counted {
		perList[i] = c.Cost()
	}
	return &Report{Results: res, Cost: subsys.TotalCost(counted), PerList: perList, Plan: plan}, nil
}

// sources evaluates each atom against its subsystem.
func (m *Middleware) sources(atoms []query.Atomic) ([]subsys.Source, error) {
	out := make([]subsys.Source, len(atoms))
	for i, a := range atoms {
		s, ok := m.subsystems[a.Attr]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttribute, a.Attr)
		}
		src, err := s.Query(a.Target)
		if err != nil {
			return nil, fmt.Errorf("attribute %q: %w", a.Attr, err)
		}
		if src.Len() != m.n {
			return nil, fmt.Errorf("%w: result for %q has %d objects", ErrSizeMismatch, a.Attr, src.Len())
		}
		out[i] = src
	}
	return out, nil
}
