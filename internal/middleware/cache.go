package middleware

// The engine half of the result cache: WithCache wires an
// internal/cache LRU into Query, serving repeat requests in O(k) with
// zero source accesses. The cache package owns the bound, the stats,
// and the threshold survival test; this file owns the key (normalized
// query AST + request shape), the epoch plumbing to the registered
// subsystems, and the rule for what is cacheable at all.
//
// Cacheable means: the report is a pure function of the query and the
// data. Budgeted requests (their reports depend on where the budget
// struck), degraded requests (on which lists failed), and non-exact
// algorithms (NRA's grades are bounds that depend on when it stopped)
// are computed fresh every time. Non-monotone queries are exact but
// their aggregates move unpredictably under updates, so the threshold
// survival argument does not apply; they are not cached either. The
// streaming entry points (Results, Paginate) never consult the cache:
// a cursor's pages are computed over live source snapshots.

import (
	"context"
	"fmt"

	"fuzzydb/internal/cache"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/query"
	"fuzzydb/internal/subsys"
)

// CacheInfo records how the result cache handled a request; see
// Report.Cache.
type CacheInfo struct {
	// Hit reports whether the request was served from the cache.
	Hit bool
	// Epoch is the data version the answer reflects: the sum of the
	// per-atom source epochs the entry is valid at (0 when every source
	// is immutable).
	Epoch uint64
	// SavedCost is, on a hit, the Section 5 spend of the original
	// computation — the access cost this request did not pay. Zero on a
	// miss.
	SavedCost cost.Cost
}

// CacheStats re-exports the cache's cumulative counters (see
// cache.Stats).
type CacheStats = cache.Stats

// WithCache equips the engine with a bounded result cache of the given
// capacity (entries; non-positive selects cache.DefaultSize). Repeat
// queries with identical normalized form and request shape are then
// served from the cache in O(k), with zero source accesses, the
// original computation's results and Section 5 tallies, and
// Report.Cache filled in. Grade updates on Versioned subsystems
// invalidate only the entries they could disturb (see package cache).
func WithCache(capacity int) Option {
	return func(m *Middleware) { m.resultCache = cache.New(capacity) }
}

// Invalidate drops every cached result. It is the big hammer for data
// changes the epoch journals cannot describe (bulk reload of a
// non-Versioned subsystem); Versioned updates invalidate selectively
// on their own.
func (m *Middleware) Invalidate() {
	if m.resultCache != nil {
		m.resultCache.Invalidate()
	}
}

// CacheStats returns the result cache's counters; ok is false when the
// engine was built without WithCache.
func (m *Middleware) CacheStats() (CacheStats, bool) {
	if m.resultCache == nil {
		return CacheStats{}, false
	}
	return m.resultCache.Stats(), true
}

// CacheLen returns the number of live cached entries (0 without
// WithCache).
func (m *Middleware) CacheLen() int {
	if m.resultCache == nil {
		return 0
	}
	return m.resultCache.Len()
}

// cacheable reports whether the request shape may touch the cache at
// all; the algorithm-dependent half of the decision lives in
// queryCached.
func (c queryConfig) cacheable() bool {
	return c.k >= 1 && c.budget <= 0 && c.maxDrop == 0
}

// cacheKey builds the lookup key: the canonical string of the
// normalized AST (rewrite is idempotent and String is deterministic,
// so equivalent spellings of a query share an entry), the clamped k,
// the algorithm (name plus configuration — FilterFirst's drive list is
// not in its name), the aggregation law, and the execution shape.
func (m *Middleware) cacheKey(q query.Node, alg core.Algorithm, cfg queryConfig) cache.Key {
	qn := query.Rewrite(q, query.RulesFor(m.sem))
	prefetch := -1
	if cfg.prefetchOn {
		prefetch = cfg.prefetch
	}
	shards := cfg.shards
	if shards <= 1 {
		shards = 0
	}
	par := cfg.parallelism
	if par <= 1 {
		par = 0
	}
	plan, steal := 0, false
	if shards > 0 {
		plan = int(cfg.shardPlan)
		steal = cfg.steal
	}
	return cache.Key{
		Query:       qn.String(),
		K:           m.clampK(cfg.k),
		Algorithm:   algID(alg),
		Law:         m.sem.And.Name() + "/" + m.sem.Or.Name(),
		Shards:      shards,
		Parallelism: par,
		Prefetch:    prefetch,
		Plan:        plan,
		Steal:       steal,
	}
}

// algID identifies an algorithm including its configuration fields
// (Name alone is too coarse: FilterFirst{Drive: 0} and {Drive: 1} pay
// different tallies under the same name).
func algID(alg core.Algorithm) string {
	return fmt.Sprintf("%s%+v", alg.Name(), alg)
}

// subsystemEpoch reads the current epoch of the subsystem owning attr:
// 0 for immutable (non-Versioned) subsystems.
func (m *Middleware) subsystemEpoch(attr string) uint64 {
	if v, ok := m.subsystems[attr].(subsys.Versioned); ok {
		return v.Epoch()
	}
	return 0
}

// atomEpochs snapshots the per-atom source epochs. Callers read them
// BEFORE materializing sources: an update racing the computation then
// leaves the entry stamped strictly behind the data it may contain,
// so the next lookup revalidates (at worst spuriously) instead of
// serving a stale answer.
func (m *Middleware) atomEpochs(atoms []query.Atomic) []uint64 {
	out := make([]uint64, len(atoms))
	for i, a := range atoms {
		out[i] = m.subsystemEpoch(a.Attr)
	}
	return out
}

// cacheValidator builds the revalidation callbacks for an entry whose
// atoms align with plan.Atoms (same normalized query, so same compiled
// atom order).
func (m *Middleware) cacheValidator(plan *Plan) func(*cache.Entry) bool {
	return func(e *cache.Entry) bool {
		if len(e.Atoms) != len(plan.Atoms) {
			return false
		}
		return e.Revalidate(
			func(i int) uint64 { return m.subsystemEpoch(plan.Atoms[i].Attr) },
			func(i int, since uint64) ([]subsys.Update, bool) {
				v, ok := m.subsystems[plan.Atoms[i].Attr].(subsys.Versioned)
				if !ok {
					// Immutable subsystem: its epoch is constant 0, so a
					// stamp mismatch is impossible and this is unreached;
					// answer conservatively anyway.
					return nil, since == 0
				}
				return v.UpdatesSince(since)
			},
			func(i int, u subsys.Update) bool { return u.Target == plan.Atoms[i].Target },
		)
	}
}

// queryCached is Query's path when the engine has a cache and the
// request shape is cacheable: plan (to learn the algorithm and atoms),
// decide final cacheability, look up, revalidate, and either serve the
// cloned original report or compute-and-store.
func (m *Middleware) queryCached(ctx context.Context, q query.Node, cfg queryConfig) (*Report, error) {
	plan, err := m.PlanQuery(q)
	if err != nil {
		return m.queryUncached(ctx, q, cfg)
	}
	alg := plan.Algorithm
	if cfg.alg != nil {
		alg = cfg.alg
	}
	if !alg.Exact() || !plan.Agg.Monotone() {
		return m.queryUncached(ctx, q, cfg)
	}
	key := m.cacheKey(q, alg, cfg)
	if e, ok := m.resultCache.Get(key, m.cacheValidator(plan)); ok {
		rep := cloneReport(e.Payload.(*Report))
		rep.Cache = &CacheInfo{Hit: true, Epoch: e.EpochSum(), SavedCost: e.SavedCost}
		return rep, nil
	}
	// Miss: snapshot the source epochs before anything is materialized,
	// then compute as usual.
	epochs := m.atomEpochs(plan.Atoms)
	rep, err := m.queryUncached(ctx, q, cfg)
	if err != nil || rep == nil || rep.Degraded != nil || len(rep.Results) == 0 {
		return rep, err
	}
	members := make([]int, len(rep.Results))
	for i, r := range rep.Results {
		members[i] = r.Object
	}
	atoms := make([]cache.AtomRef, len(plan.Atoms))
	for i, a := range plan.Atoms {
		atoms[i] = cache.AtomRef{Attr: a.Attr, Target: a.Target}
	}
	kth := rep.Results[len(rep.Results)-1].Grade
	m.resultCache.Put(key, cache.NewEntry(
		cloneReport(rep), rep.Cost, atoms, plan.Agg, members, kth, epochs))
	var esum uint64
	for _, e := range epochs {
		esum += e
	}
	rep.Cache = &CacheInfo{Hit: false, Epoch: esum}
	return rep, nil
}

// cloneReport deep-copies the report sections a caller could mutate,
// so the cached original stays pristine no matter what happens to
// served copies. Degraded reports are never cached, and Cache is
// per-serve.
func cloneReport(r *Report) *Report {
	cp := *r
	if r.Results != nil {
		cp.Results = append([]core.Result(nil), r.Results...)
	}
	if r.PerList != nil {
		cp.PerList = append([]cost.Cost(nil), r.PerList...)
	}
	if r.PerShard != nil {
		cp.PerShard = append([]cost.Cost(nil), r.PerShard...)
	}
	if r.ShardDetails != nil {
		cp.ShardDetails = append([]core.ShardDetail(nil), r.ShardDetails...)
	}
	if r.Prefetch != nil {
		p := *r.Prefetch
		cp.Prefetch = &p
	}
	if r.Plan != nil {
		pl := *r.Plan
		cp.Plan = &pl
	}
	cp.Degraded = nil
	cp.Cache = nil
	return &cp
}
