package middleware

import (
	"context"
	"errors"
	"testing"
	"time"

	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/query"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// genStore builds an engine over a generated scoring database (m static
// attributes A1…Am answering the wildcard target "*").
func genStore(t *testing.T, n, m int, seed uint64) *Middleware {
	t.Helper()
	db := scoredb.Generator{N: n, M: m, Seed: seed}.MustGenerate()
	subsystems := make([]subsys.Subsystem, m)
	for i := 0; i < m; i++ {
		s := subsys.NewStatic(attrName(i), n)
		s.Set("*", db.List(i))
		subsystems[i] = s
	}
	mw, err := New(subsystems)
	if err != nil {
		t.Fatal(err)
	}
	return mw
}

func attrName(i int) string { return string(rune('A'+i)) + "x" }

func genConj(m int) query.Node {
	atoms := make([]query.Atomic, m)
	for i := range atoms {
		atoms[i] = query.Atomic{Attr: attrName(i), Target: "*"}
	}
	return query.Conj(atoms...)
}

// slowSubsystem wraps a subsystem so every source operation of its query
// results sleeps, modeling a slow remote backend.
type slowSubsystem struct {
	subsys.Subsystem
	delay time.Duration
}

type slowTestSource struct {
	src   subsys.Source
	delay time.Duration
}

func (s slowTestSource) Len() int { return s.src.Len() }
func (s slowTestSource) Entry(rank int) gradedset.Entry {
	time.Sleep(s.delay)
	return s.src.Entry(rank)
}
func (s slowTestSource) Entries(lo, hi int) []gradedset.Entry {
	time.Sleep(s.delay)
	return s.src.Entries(lo, hi)
}
func (s slowTestSource) Grade(obj int) float64 {
	time.Sleep(s.delay)
	return s.src.Grade(obj)
}

func (s slowSubsystem) Query(target string) (subsys.Source, error) {
	src, err := s.Subsystem.Query(target)
	if err != nil {
		return nil, err
	}
	return slowTestSource{src: src, delay: s.delay}, nil
}

// TestQueryMatchesDeprecatedTopK: the request API and the deprecated
// wrappers are the same evaluation.
func TestQueryMatchesDeprecatedTopK(t *testing.T) {
	mw, _ := cdStore(t)
	q := query.MustParse(`Artist = "Beatles" AND AlbumColor ~ "red"`)
	want, err := mw.TopK(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mw.Query(context.Background(), q, TopN(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) || got.Cost != want.Cost {
		t.Fatalf("Query = %v %v, TopK = %v %v", got.Results, got.Cost, want.Results, want.Cost)
	}
	for i := range got.Results {
		if got.Results[i] != want.Results[i] {
			t.Errorf("result %d: %v != %v", i, got.Results[i], want.Results[i])
		}
	}
}

// TestQueryDefaultTopN: with no TopN option the engine returns
// DefaultTopN answers (clamped to the universe).
func TestQueryDefaultTopN(t *testing.T) {
	mw := genStore(t, 500, 2, 21)
	rep, err := mw.Query(context.Background(), genConj(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != DefaultTopN {
		t.Fatalf("got %d results, want DefaultTopN=%d", len(rep.Results), DefaultTopN)
	}
	small, _ := cdStore(t)
	rep, err = small.Query(context.Background(), query.MustParse(`Artist = "Beatles"`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != small.N() {
		t.Fatalf("TopN beyond universe: got %d results, want all %d", len(rep.Results), small.N())
	}
}

// TestQueryParallelismIsCostNeutral: WithParallelism changes wall-clock
// machinery only — answers, total cost, and the per-list breakdown are
// bit-identical to the serial request.
func TestQueryParallelismIsCostNeutral(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		mw := genStore(t, 600, m, uint64(30+m))
		q := genConj(m)
		serial, err := mw.Query(context.Background(), q, TopN(7))
		if err != nil {
			t.Fatal(err)
		}
		par, err := mw.Query(context.Background(), q, TopN(7), WithParallelism(m))
		if err != nil {
			t.Fatal(err)
		}
		if par.Cost != serial.Cost {
			t.Errorf("m=%d: parallel cost %v != serial %v", m, par.Cost, serial.Cost)
		}
		if len(par.PerList) != len(serial.PerList) {
			t.Fatalf("m=%d: per-list breakdown lengths differ", m)
		}
		for i := range par.PerList {
			if par.PerList[i] != serial.PerList[i] {
				t.Errorf("m=%d: list %d cost %v != %v", m, i, par.PerList[i], serial.PerList[i])
			}
		}
		for i := range par.Results {
			if par.Results[i] != serial.Results[i] {
				t.Errorf("m=%d: result %d differs", m, i)
			}
		}
	}
}

// TestQueryCancellationReturnsCtxErr: a canceled request over a slow
// subsystem returns the context error promptly, with a partial-cost
// report.
func TestQueryCancellationReturnsCtxErr(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 23}.MustGenerate()
	subsystems := make([]subsys.Subsystem, 2)
	for i := 0; i < 2; i++ {
		s := subsys.NewStatic(attrName(i), 2048)
		s.Set("*", db.List(i))
		subsystems[i] = slowSubsystem{Subsystem: s, delay: time.Millisecond}
	}
	mw, err := New(subsystems)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := mw.Query(ctx, genConj(2), TopN(10))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if rep == nil {
		t.Fatal("no partial report on cancellation")
	}
	if rep.Results != nil {
		t.Errorf("canceled report has results: %v", rep.Results)
	}
	if rep.Cost.Sum() == 0 {
		t.Error("partial report shows zero cost; evaluation never started")
	}
}

// TestQueryBudgetPartialReport: WithAccessBudget stops the evaluation
// with ErrBudgetExceeded and a partial-cost report that never overshoots
// the budget.
func TestQueryBudgetPartialReport(t *testing.T) {
	mw := genStore(t, 2048, 3, 29)
	q := genConj(3)
	full, err := mw.Query(context.Background(), q, TopN(10))
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(full.Cost.Sum()) / 8
	rep, err := mw.Query(context.Background(), q, TopN(10), WithAccessBudget(budget))
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want core.ErrBudgetExceeded", err)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not expose *core.BudgetError", err)
	}
	if rep == nil {
		t.Fatal("no partial report on budget stop")
	}
	if got := float64(rep.Cost.Sum()); got > budget || got == 0 {
		t.Errorf("partial cost %v not in (0, budget %v]", got, budget)
	}
	if rep.Results != nil {
		t.Errorf("budget-stopped report has results: %v", rep.Results)
	}
	// The weighted form: random accesses priced 5x shift where the stop
	// lands, but never past the budget.
	rep, err = mw.Query(context.Background(), q, TopN(10),
		WithAccessBudget(budget), WithCostModel(cost.Model{C1: 1, C2: 5}))
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("weighted: err = %v, want core.ErrBudgetExceeded", err)
	}
	if got := (cost.Model{C1: 1, C2: 5}).Of(rep.Cost); got > budget {
		t.Errorf("weighted spend %v overshoots budget %v", got, budget)
	}
}

// TestResultsStreaming: the iterator yields the same answers, in the
// same order, as one big Query, and resumes across page boundaries.
func TestResultsStreaming(t *testing.T) {
	mw := genStore(t, 400, 2, 31)
	q := genConj(2)
	want, err := mw.Query(context.Background(), q, TopN(25))
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Result
	for r, err := range mw.Results(context.Background(), q, TopN(7)) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
		if len(got) == 25 {
			break
		}
	}
	if len(got) != 25 {
		t.Fatalf("streamed %d results, want 25", len(got))
	}
	for i := range got {
		if got[i] != want.Results[i] {
			t.Errorf("stream result %d = %v, want %v", i, got[i], want.Results[i])
		}
	}
}

// TestResultsStreamsWholeUniverse: left alone, the stream drains all N
// objects exactly once.
func TestResultsStreamsWholeUniverse(t *testing.T) {
	mw := genStore(t, 64, 2, 37)
	seen := make(map[int]bool)
	count := 0
	for r, err := range mw.Results(context.Background(), genConj(2), TopN(10)) {
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.Object] {
			t.Fatalf("object %d streamed twice", r.Object)
		}
		seen[r.Object] = true
		count++
	}
	if count != 64 {
		t.Fatalf("streamed %d results, want the whole universe of 64", count)
	}
}

// TestResultsErrorYield: planning errors surface as a single yielded
// error.
func TestResultsErrorYield(t *testing.T) {
	mw, _ := cdStore(t)
	yields := 0
	for _, err := range mw.Results(context.Background(), query.MustParse(`Genre = "rock"`)) {
		yields++
		if !errors.Is(err, ErrUnknownAttribute) {
			t.Fatalf("err = %v, want ErrUnknownAttribute", err)
		}
	}
	if yields != 1 {
		t.Fatalf("got %d yields, want exactly one error yield", yields)
	}
}

// TestResultsCancellationStopsStream: canceling the context mid-stream
// ends the iteration with a context error.
func TestResultsCancellationStopsStream(t *testing.T) {
	mw := genStore(t, 512, 2, 41)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var lastErr error
	streamed := 0
	for _, err := range mw.Results(ctx, genConj(2), TopN(5)) {
		if err != nil {
			lastErr = err
			break
		}
		streamed++
		if streamed == 5 {
			cancel()
		}
	}
	if !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", lastErr)
	}
}

// TestWithAlgorithmPinsThePlan: WithAlgorithm overrides the planner and
// the report says so.
func TestWithAlgorithmPinsThePlan(t *testing.T) {
	mw := genStore(t, 300, 2, 43)
	q := genConj(2)
	rep, err := mw.Query(context.Background(), q, TopN(5), WithAlgorithm(core.TA{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plan.Algorithm.Name() != "TA" {
		t.Fatalf("plan algorithm = %s, want TA", rep.Plan.Algorithm.Name())
	}
	// Pinned algorithm answers must agree with the planner's (same query,
	// exact algorithms).
	planned, err := mw.Query(context.Background(), q, TopN(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		if rep.Results[i] != planned.Results[i] {
			t.Errorf("result %d: pinned %v != planned %v", i, rep.Results[i], planned.Results[i])
		}
	}
}

// TestTypedErrors: the middleware's errors carry their context for
// errors.As while remaining errors.Is-compatible with the sentinels.
func TestTypedErrors(t *testing.T) {
	mw, _ := cdStore(t)
	_, err := mw.Query(context.Background(), query.MustParse(`Genre = "rock"`))
	if !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("err = %v, want errors.Is ErrUnknownAttribute", err)
	}
	var uae *UnknownAttributeError
	if !errors.As(err, &uae) {
		t.Fatalf("err %v does not expose *UnknownAttributeError", err)
	}
	if uae.Attr != "Genre" {
		t.Errorf("UnknownAttributeError.Attr = %q, want %q", uae.Attr, "Genre")
	}

	_, err = New([]subsys.Subsystem{
		subsys.NewRelational("Artist", []string{"a", "b", "c"}),
		subsys.NewRelational("Genre", []string{"x", "y"}),
	})
	if !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("err = %v, want errors.Is ErrSizeMismatch", err)
	}
	var sme *SizeMismatchError
	if !errors.As(err, &sme) {
		t.Fatalf("err %v does not expose *SizeMismatchError", err)
	}
	if sme.Attr != "Genre" || sme.Got != 2 || sme.Want != 3 {
		t.Errorf("SizeMismatchError = %+v, want Genre/2/3", sme)
	}
}

// TestDeprecatedTopKKeepsErrBadK: the compatibility wrappers preserve
// the historical rejection of k > N (Query clamps; TopK must not).
func TestDeprecatedTopKKeepsErrBadK(t *testing.T) {
	mw, _ := cdStore(t)
	if _, err := mw.TopK(query.MustParse(`Artist = "Beatles"`), mw.N()+1); !errors.Is(err, core.ErrBadK) {
		t.Fatalf("TopK(k>N) err = %v, want core.ErrBadK", err)
	}
	if _, err := mw.TopKString(`Artist = "Beatles"`, mw.N()+1); !errors.Is(err, core.ErrBadK) {
		t.Fatalf("TopKString(k>N) err = %v, want core.ErrBadK", err)
	}
}

// TestPinnedB0RefusedForMultiListPagination: a planner-chosen B0 falls
// back to A0 silently, but an explicit WithAlgorithm(B0) pin on a
// multi-atom stream is refused loudly, matching how other unusable pins
// (NRA) surface.
func TestPinnedB0RefusedForMultiListPagination(t *testing.T) {
	mw, _ := cdStore(t)
	q := query.MustParse(`Artist = "Beatles" OR AlbumColor ~ "red"`)
	// Planner-chosen B0: streams fine via the A0 fallback.
	if _, err := mw.Paginate(context.Background(), q); err != nil {
		t.Fatalf("planner-chosen B0 should fall back: %v", err)
	}
	// Explicit pin: refused.
	if _, err := mw.Paginate(context.Background(), q, WithAlgorithm(core.B0{})); err == nil {
		t.Fatal("pinned B0 over 2 lists paginated silently; want a loud refusal")
	}
	yields := 0
	for _, err := range mw.Results(context.Background(), q, WithAlgorithm(core.NRA{})) {
		yields++
		if err == nil {
			t.Fatal("NRA stream yielded a result; want a single error yield")
		}
	}
	if yields != 1 {
		t.Fatalf("NRA stream: %d yields, want 1", yields)
	}
}
