package sim

import (
	"math"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
)

// E4 — Wimmers' refined tail bound [Wi98b]: for m = 2 the probability
// that more than c·√(Nk) objects are accessed by sorted access in each
// list is below 2·10⁻⁸ for c = 2 and below 4·10⁻²⁷ for c = 3. At any
// feasible trial count the expected number of exceedances is therefore
// zero; the experiment measures the empirical tail at several c.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Tail of the per-list sorted depth vs c*sqrt(Nk) (m=2)",
		Claim: "[Wi98b]: Pr[depth > c sqrt(Nk)] < 2e-8 (c=2), < 4e-27 (c=3); empirically zero exceedances",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"c", "trials", "exceedances", "empirical Pr", "paper bound"}}
			const m, k = 2, 10
			n := cfg.scaleN(4096)
			trials := cfg.scaleTrials(600)
			// Depth per list = sorted cost / m for the uniform-depth A0.
			cs := measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed)
			depths := make([]float64, len(cs))
			for i, c := range cs {
				depths[i] = float64(c.Sorted) / m
			}
			bounds := map[float64]string{1.5: "(not stated)", 2: "2e-8", 3: "4e-27"}
			for _, c := range []float64{1.5, 2, 3} {
				thresh := c * math.Sqrt(float64(n*k))
				exceed := 0
				for _, d := range depths {
					if d > thresh {
						exceed++
					}
				}
				t.AddRow(c, trials, exceed, float64(exceed)/float64(trials), bounds[c])
			}
			s, _ := stats.Summarize(depths)
			t.Note("depth summary at N=%d: mean %.0f, p99 %.0f, max %.0f; sqrt(Nk) = %.0f",
				n, s.Mean, s.P99, s.Max, math.Sqrt(float64(n*k)))
			return t
		},
	}
}

// E5 — Theorem 6.4 lower bound: for strict t,
// Pr[sumcost ≤ θ·N^((m−1)/m)k^(1/m)] ≤ θ^m. The empirical CDF of the
// normalized cost must stay below the θ^m envelope.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Lower-bound envelope: empirical CDF vs theta^m",
		Claim: "Thm 6.4: Pr[cost <= theta * N^((m-1)/m) k^(1/m)] <= theta^m for every correct algorithm",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"m", "theta", "empirical CDF (A0)", "empirical CDF (TA)", "envelope theta^m"}}
			const k = 5
			violations := 0
			for _, m := range []int{2, 3} {
				n := cfg.scaleN(4096)
				trials := cfg.scaleTrials(300)
				norm := theoryCost(n, m, k)
				a0 := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed+uint64(m)))
				ta := sums(measure(core.TA{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed+uint64(m)))
				for _, theta := range []float64{0.25, 0.5, 0.75, 1.0} {
					cdfA0 := stats.ECDF(a0, theta*norm)
					cdfTA := stats.ECDF(ta, theta*norm)
					env := math.Pow(theta, float64(m))
					if cdfA0 > env || cdfTA > env {
						violations++
					}
					t.AddRow(m, theta, cdfA0, cdfTA, env)
				}
			}
			t.Note("envelope violations: %d (sampling noise aside, expected 0)", violations)
			return t
		},
	}
}
