package sim

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
)

// E9 — Theorem 7.1: the query Q ∧ ¬Q over a fully fuzzy Q is provably
// hard: every correct algorithm has middleware cost Θ(N). The workload is
// the reversed-permutation pair of Section 7.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Hard query Q AND NOT Q: cost vs N (k=1)",
		Claim: "Thm 7.1: middleware cost is Theta(N); sublinearity is impossible, the naive algorithm is essentially optimal",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"N", "A0 cost", "TA cost", "naive cost", "A0 cost / N"}}
			hard := func(n int) genFunc {
				return func(seed uint64) *scoredb.Database {
					db, err := scoredb.HardQueryPair(n, seed)
					if err != nil {
						panic(err)
					}
					return db
				}
			}
			var ns []int
			var a0Means []float64
			for _, n0 := range []int{2048, 8192, 32768, 131072} {
				n := cfg.scaleN(n0)
				trials := cfg.scaleTrials(5)
				a0 := sums(measure(core.A0{}, hard(n), agg.Min, 1, trials, cfg.Seed))
				ta := sums(measure(core.TA{}, hard(n), agg.Min, 1, trials, cfg.Seed))
				nv := sums(measure(core.NaiveSorted{}, hard(n), agg.Min, 1, trials, cfg.Seed))
				sa, _ := stats.Summarize(a0)
				st, _ := stats.Summarize(ta)
				sn, _ := stats.Summarize(nv)
				ns = append(ns, n)
				a0Means = append(a0Means, sa.Mean)
				t.AddRow(n, sa.Mean, st.Mean, sn.Mean, sa.Mean/float64(n))
			}
			t.Note("fitted exponent %.3f (theory: 1.0 — linear, unlike the sqrt(N) of independent lists)", fitExponent(ns, a0Means))
			return t
		},
	}
}

// E11 — Section 4: A₀′ probes only the candidates, saving a constant
// factor of random accesses over A₀ at identical sorted cost.
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "A0' candidate pruning vs A0 (min conjunction, k=10)",
		Claim: "Sec 4 (Thm 4.4): A0' does the same sorted work but fewer random accesses, a constant-factor saving",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"m", "N", "A0 S", "A0 R", "A0' S", "A0' R", "R saving"}}
			const k = 10
			for _, m := range []int{2, 3} {
				for _, n0 := range []int{16384, 131072} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(8)
					gen := independent(n, m, scoredb.Uniform{})
					a0 := measure(core.A0{}, gen, agg.Min, k, trials, cfg.Seed)
					ap := measure(core.A0Prime{}, gen, agg.Min, k, trials, cfg.Seed)
					sS, _ := stats.Summarize(sorteds(a0))
					sR, _ := stats.Summarize(randoms(a0))
					pS, _ := stats.Summarize(sorteds(ap))
					pR, _ := stats.Summarize(randoms(ap))
					saving := 0.0
					if sR.Mean > 0 {
						saving = 1 - pR.Mean/sR.Mean
					}
					t.AddRow(m, n, sS.Mean, sR.Mean, pS.Mean, pR.Mean, saving)
				}
			}
			t.Note("sorted costs identical by construction; the saving column is the pruned fraction of random accesses")
			return t
		},
	}
}

// E12 — Sections 3 and 5: the bounds are robust across aggregation
// functions. A₀'s cost is t-independent by design (its stopping rule
// never looks at t); TA's cost does depend on t, and stays sublinear with
// the same √N shape for every monotone strict choice, while collapsing to
// O(k) for the non-strict max.
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Robustness across aggregation functions (m=2, k=10, TA)",
		Claim: "Secs 3/5/6: upper and lower bounds hold for every monotone strict t (t-norms and means alike); strictness is what matters",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"aggregation", "strict", "fitted exponent", "mean cost @ largest N"}}
			const m, k = 2, 10
			funcs := []agg.Func{
				agg.Min, agg.AlgebraicProduct, agg.EinsteinProduct,
				agg.HamacherProduct, agg.BoundedDifference,
				agg.ArithmeticMean, agg.GeometricMean,
				agg.Max, // non-strict contrast
			}
			for _, f := range funcs {
				var ns []int
				var means []float64
				for _, n0 := range []int{8192, 32768, 131072} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(6)
					cs := sums(measure(core.TA{}, independent(n, m, scoredb.Uniform{}), f, k, trials, cfg.Seed))
					s, _ := stats.Summarize(cs)
					ns = append(ns, n)
					means = append(means, s.Mean)
				}
				t.AddRow(f.Name(), f.Strict(), fitExponent(ns, means), means[len(means)-1])
			}
			t.Note("strict functions share the ~0.5 exponent; max (non-strict) is flat — exactly the strictness dichotomy of Thm 6.4/Rem 6.1")
			return t
		},
	}
}

// E13 — Section 7's motivation: correlation between the atomic queries
// moves the cost between the extremes. Positive correlation helps (the
// same objects lead every list); negative correlation hurts, degenerating
// to the linear hard-query regime at ρ = −1.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "A0 cost vs rank correlation of the two lists (m=2, k=10)",
		Claim: "Sec 7: positive correlation can only help; the extreme negative case forces linear cost",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"correlation", "mean cost", "cost / sqrt(Nk)", "cost / N"}}
			const m, k = 2, 10
			n := cfg.scaleN(16384)
			for _, rho := range []float64{-1, -0.5, 0, 0.5, 1} {
				trials := cfg.scaleTrials(8)
				gen := func(seed uint64) *scoredb.Database {
					return scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: seed, Correlation: rho}.MustGenerate()
				}
				cs := sums(measure(core.A0{}, gen, agg.Min, k, trials, cfg.Seed))
				s, _ := stats.Summarize(cs)
				t.AddRow(rho, s.Mean, s.Mean/theoryCost(n, m, k), s.Mean/float64(n))
			}
			t.Note("cost decreases monotonically in correlation at N=%d", n)
			return t
		},
	}
}

// E14 — the legacy ablation: FA (A₀) against its successors TA and NRA,
// and against Ullman's sequential probing, on the independent workload.
func e14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Algorithm family ablation (min conjunction, k=10)",
		Claim: "Extension: TA never scans deeper than A0; NRA trades random accesses for deeper sorted scans; Ullman is competitive at m=2",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"m", "N", "A0", "A0'", "TA", "NRA", "Ullman"}}
			const k = 10
			for _, m := range []int{2, 3} {
				for _, n0 := range []int{8192, 65536} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(6)
					gen := independent(n, m, scoredb.Uniform{})
					row := []interface{}{m, n}
					algs := []core.Algorithm{core.A0{}, core.A0Prime{}, core.TA{}, core.NRA{}}
					for _, alg := range algs {
						s, _ := stats.Summarize(sums(measure(alg, gen, agg.Min, k, trials, cfg.Seed)))
						row = append(row, s.Mean)
					}
					if m == 2 {
						s, _ := stats.Summarize(sums(measure(core.Ullman{}, gen, agg.Min, k, trials, cfg.Seed)))
						row = append(row, s.Mean)
					} else {
						row = append(row, "n/a")
					}
					t.AddRow(row...)
				}
			}
			t.Note("all costs are unweighted middleware costs S+R, averaged over trials")
			return t
		},
	}
}
