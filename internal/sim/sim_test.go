package sim

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
)

// The sim tests run every experiment at quick scale and assert the
// qualitative shape the paper predicts. They double as integration tests
// of the whole stack (generators → subsystems → algorithms → statistics).

func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tab := e.Run(QuickConfig())
	tab.ID = e.ID
	tab.Title = e.Title
	tab.Claim = e.Claim
	return tab
}

// noteFloat extracts the i-th float embedded in the first note matching
// substr.
func noteFloat(t *testing.T, tab *Table, substr string, idx int) float64 {
	t.Helper()
	for _, n := range tab.Notes {
		if !strings.Contains(n, substr) {
			continue
		}
		var vals []float64
		for _, f := range strings.FieldsFunc(n, func(r rune) bool {
			return !(r == '.' || r == '-' || ('0' <= r && r <= '9'))
		}) {
			if v, err := strconv.ParseFloat(f, 64); err == nil && strings.Contains(f, ".") {
				vals = append(vals, v)
			}
		}
		if idx < len(vals) {
			return vals[idx]
		}
	}
	t.Fatalf("no note matching %q with %d floats in %v", substr, idx+1, tab.Notes)
	return 0
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E1"); !ok {
		t.Error("ByID(E1) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) succeeded")
	}
}

func TestE1SqrtScaling(t *testing.T) {
	tab := runExperiment(t, "E1")
	exp := noteFloat(t, tab, "fitted exponent", 0)
	if exp < 0.3 || exp > 0.7 {
		t.Errorf("E1 exponent %v outside [0.3, 0.7] (theory 0.5)", exp)
	}
}

func TestE2ExponentRisesWithM(t *testing.T) {
	tab := runExperiment(t, "E2")
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var exps []float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, v)
	}
	// m=2 near 0.5, m=5 clearly larger; allow generous noise at quick scale.
	if exps[0] < 0.3 || exps[0] > 0.75 {
		t.Errorf("m=2 exponent %v", exps[0])
	}
	if exps[3] < exps[0] {
		t.Errorf("exponent did not rise with m: %v", exps)
	}
}

func TestE3KScaling(t *testing.T) {
	tab := runExperiment(t, "E3")
	exp := noteFloat(t, tab, "fitted k-exponent", 0)
	if exp < 0.25 || exp > 0.75 {
		t.Errorf("E3 k-exponent %v outside [0.25, 0.75] (theory 0.5)", exp)
	}
}

func TestE4NoExceedancesAtC3(t *testing.T) {
	tab := runExperiment(t, "E4")
	// Rows: c, trials, exceedances, empirical Pr, bound. c=3 is the last.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "0" {
		t.Errorf("exceedances at c=3: %s (paper bound 4e-27)", last[2])
	}
}

func TestE5EnvelopeHolds(t *testing.T) {
	tab := runExperiment(t, "E5")
	violations := 0
	for _, row := range tab.Rows {
		cdfA0, _ := strconv.ParseFloat(row[2], 64)
		cdfTA, _ := strconv.ParseFloat(row[3], 64)
		env, _ := strconv.ParseFloat(row[4], 64)
		// Allow small sampling slack above the envelope.
		if cdfA0 > env+0.05 || cdfTA > env+0.05 {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("lower-bound envelope violated in %d rows: %v", violations, tab.Rows)
	}
}

func TestE6RatiosBounded(t *testing.T) {
	tab := runExperiment(t, "E6")
	for _, row := range tab.Rows {
		mean, _ := strconv.ParseFloat(row[3], 64)
		if mean < 0.1 || mean > 30 {
			t.Errorf("normalized mean ratio %v drifted out of constant band: %v", mean, row)
		}
	}
}

func TestE7B0Flat(t *testing.T) {
	tab := runExperiment(t, "E7")
	for _, row := range tab.Rows {
		if row[1] != "30" || row[2] != "30" {
			t.Errorf("B0 cost row %v, want exactly mk=30", row)
		}
	}
}

func TestE8MedianBeatsA0(t *testing.T) {
	tab := runExperiment(t, "E8")
	// At the largest N, the subset algorithm must be cheaper than A0.
	last := tab.Rows[len(tab.Rows)-1]
	med, _ := strconv.ParseFloat(last[1], 64)
	a0, _ := strconv.ParseFloat(last[2], 64)
	if med >= a0 {
		t.Errorf("median algorithm (%v) not cheaper than A0 (%v) at largest N", med, a0)
	}
	medExp := noteFloat(t, tab, "fitted exponents", 0)
	a0Exp := noteFloat(t, tab, "fitted exponents", 1)
	if medExp >= a0Exp {
		t.Errorf("median exponent %v not below A0 exponent %v", medExp, a0Exp)
	}
}

func TestE9HardQueryLinear(t *testing.T) {
	tab := runExperiment(t, "E9")
	exp := noteFloat(t, tab, "fitted exponent", 0)
	if exp < 0.85 || exp > 1.15 {
		t.Errorf("hard-query exponent %v, want ~1", exp)
	}
	// A0 cost per N stays in a constant band.
	for _, row := range tab.Rows {
		ratio, _ := strconv.ParseFloat(row[4], 64)
		if ratio < 0.4 || ratio > 3.5 {
			t.Errorf("A0 cost/N = %v out of linear band: %v", ratio, row)
		}
	}
}

func TestE10UllmanRegimes(t *testing.T) {
	tab := runExperiment(t, "E10")
	// Bounded-law cost must not grow with N: compare first and last rows.
	first, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
	if last > 5*first+20 {
		t.Errorf("bounded-law Ullman cost grew from %v to %v", first, last)
	}
	exp := noteFloat(t, tab, "uniform-case fitted exponent", 0)
	if exp < 0.3 || exp > 0.7 {
		t.Errorf("uniform-case exponent %v, want ~0.5", exp)
	}
}

func TestE11A0PrimeSavings(t *testing.T) {
	tab := runExperiment(t, "E11")
	for _, row := range tab.Rows {
		a0S, _ := strconv.ParseFloat(row[2], 64)
		apS, _ := strconv.ParseFloat(row[4], 64)
		if math.Abs(a0S-apS) > 1e-9 {
			t.Errorf("sorted costs differ: %v", row)
		}
		a0R, _ := strconv.ParseFloat(row[3], 64)
		apR, _ := strconv.ParseFloat(row[5], 64)
		if apR > a0R {
			t.Errorf("A0' random cost above A0: %v", row)
		}
	}
}

func TestE12StrictnessDichotomy(t *testing.T) {
	tab := runExperiment(t, "E12")
	for _, row := range tab.Rows {
		name := row[0]
		strict := row[1] == "true"
		exp, _ := strconv.ParseFloat(row[2], 64)
		if strict && (exp < 0.25 || exp > 0.75) {
			t.Errorf("%s (strict): exponent %v, want ~0.5", name, exp)
		}
		if name == "max" && exp > 0.25 {
			t.Errorf("max: exponent %v, want ~0 (flat)", exp)
		}
	}
}

func TestE13CorrelationMonotone(t *testing.T) {
	tab := runExperiment(t, "E13")
	var costs []float64
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[1], 64)
		costs = append(costs, v)
	}
	// rho = -1 must be the most expensive and rho = +1 the cheapest.
	if costs[0] <= costs[len(costs)-1] {
		t.Errorf("anti-correlated cost %v not above correlated cost %v", costs[0], costs[len(costs)-1])
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] > costs[i-1]*1.25 {
			t.Errorf("cost not (weakly) decreasing in correlation: %v", costs)
			break
		}
	}
}

func TestE14TABeatsOrMatchesA0(t *testing.T) {
	tab := runExperiment(t, "E14")
	for _, row := range tab.Rows {
		a0, _ := strconv.ParseFloat(row[2], 64)
		ta, _ := strconv.ParseFloat(row[4], 64)
		if ta > a0*1.05 {
			t.Errorf("TA (%v) costs more than A0 (%v): %v", ta, a0, row)
		}
	}
}

func TestE15WeightedCostInvariance(t *testing.T) {
	tab := runExperiment(t, "E15")
	for _, row := range tab.Rows {
		exp, _ := strconv.ParseFloat(row[2], 64)
		if exp < 0.3 || exp > 0.7 {
			t.Errorf("price model (%s,%s): exponent %v, want ~0.5", row[0], row[1], exp)
		}
	}
}

func TestE16FilterFirstCrossover(t *testing.T) {
	tab := runExperiment(t, "E16")
	// The most selective row must favor filter-first, the least selective
	// must favor A0'.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	if first[3] != "filter-first" {
		t.Errorf("selectivity %s won by %s, want filter-first", first[0], first[3])
	}
	if last[3] != "A0'" {
		t.Errorf("selectivity %s won by %s, want A0'", last[0], last[3])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Claim:  "demo claim",
		Header: []string{"a", "long-header"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 12345.678)
	tab.Note("note %d", 7)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EX — demo", "claim: demo claim", "long-header", "note: note 7", "12346"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	q := QuickConfig()
	if q.scaleN(1024) < 256 {
		t.Error("scaleN floor broken")
	}
	if q.scaleTrials(4) < 3 {
		t.Error("scaleTrials floor broken")
	}
	d := DefaultConfig()
	if d.scaleN(4096) != 4096 || d.scaleTrials(10) != 10 {
		t.Error("default config rescaled")
	}
}

func TestTheoryCost(t *testing.T) {
	if got := theoryCost(100, 2, 4); math.Abs(got-20) > 1e-9 {
		t.Errorf("theoryCost(100,2,4) = %v, want sqrt(100)*sqrt(4) = 20", got)
	}
	if got := theoryCost(1000, 1, 5); math.Abs(got-5) > 1e-9 {
		t.Errorf("theoryCost m=1 = %v, want k", got)
	}
}
