package sim

import (
	"context"
	"math"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
	"fuzzydb/internal/subsys"
)

// Config scales the experiments. Quick configurations are used by the
// test suite; Default by the faginbench binary and EXPERIMENTS.md.
type Config struct {
	// SizeFactor scales every N used by the experiments (1 = full size).
	SizeFactor float64
	// TrialFactor scales every trial count (1 = full count).
	TrialFactor float64
	// Seed derives all per-trial seeds.
	Seed uint64
}

// DefaultConfig is the full-size configuration.
func DefaultConfig() Config { return Config{SizeFactor: 1, TrialFactor: 1, Seed: 1} }

// QuickConfig shrinks sizes and trials for fast test runs while keeping
// every qualitative shape measurable.
func QuickConfig() Config { return Config{SizeFactor: 0.125, TrialFactor: 0.25, Seed: 1} }

// scaleN scales a nominal database size, keeping at least 256 objects.
func (c Config) scaleN(n int) int {
	v := int(float64(n) * c.SizeFactor)
	if v < 256 {
		return 256
	}
	return v
}

// scaleTrials scales a nominal trial count, keeping at least 3.
func (c Config) scaleTrials(t int) int {
	v := int(float64(t) * c.TrialFactor)
	if v < 3 {
		return 3
	}
	return v
}

// Experiment couples an index entry with its runner.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) *Table
}

// All returns the experiment registry in index order.
func All() []Experiment {
	return []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(),
		e8(), e9(), e10(), e11(), e12(), e13(), e14(),
		e15(), e16(),
	}
}

// ByID returns the experiment with the given ID, or ok = false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// genFunc builds one trial database from a seed.
type genFunc func(seed uint64) *scoredb.Database

// independent returns a generator of independent uniformly-permuted
// databases under the given law.
func independent(n, m int, law scoredb.GradeLaw) genFunc {
	return func(seed uint64) *scoredb.Database {
		return scoredb.Generator{N: n, M: m, Law: law, Seed: seed}.MustGenerate()
	}
}

// measure runs trials of alg over databases from gen and returns the
// observed unweighted middleware costs (and components).
func measure(alg core.Algorithm, gen genFunc, f agg.Func, k, trials int, seedBase uint64) []cost.Cost {
	out := make([]cost.Cost, trials)
	for i := 0; i < trials; i++ {
		db := gen(seedBase + uint64(i)*7919)
		srcs := make([]subsys.Source, db.M())
		for j := range srcs {
			srcs[j] = subsys.FromList(db.List(j))
		}
		_, c, err := core.Evaluate(context.Background(), alg, srcs, f, k)
		if err != nil {
			panic(err) // experiment misconfiguration is a programming error
		}
		out[i] = c
	}
	return out
}

// sums extracts unweighted middleware costs.
func sums(cs []cost.Cost) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = float64(c.Sum())
	}
	return out
}

// sorteds extracts sorted access costs.
func sorteds(cs []cost.Cost) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = float64(c.Sorted)
	}
	return out
}

// randoms extracts random access costs.
func randoms(cs []cost.Cost) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = float64(c.Random)
	}
	return out
}

// theoryCost is the paper's Θ quantity N^((m−1)/m) · k^(1/m).
func theoryCost(n, m, k int) float64 {
	fm := float64(m)
	return math.Pow(float64(n), (fm-1)/fm) * math.Pow(float64(k), 1/fm)
}

// fitExponent fits mean cost against N and returns the exponent.
func fitExponent(ns []int, means []float64) float64 {
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	fit, err := stats.FitPower(xs, means)
	if err != nil {
		return math.NaN()
	}
	return fit.Exponent
}
