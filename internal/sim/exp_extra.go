package sim

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
)

// E15 — inequalities (1)/(2) of Section 5: the weighted middleware cost
// c₁S + c₂R is within constant multiples of the unweighted S + R, so the
// Θ bound is insensitive to the access prices. The experiment fits the
// N-exponent of the weighted cost under skewed price models.
func e15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Weighted cost model invariance (A0, m=2, k=10)",
		Claim: "Sec 5 ineq (1)/(2): for any positive (c1, c2) the weighted cost has the same Theta shape as S+R",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"c1", "c2", "fitted exponent", "weighted/unweighted @ largest N"}}
			const m, k = 2, 10
			models := []cost.Model{{C1: 1, C2: 1}, {C1: 10, C2: 1}, {C1: 1, C2: 10}, {C1: 0.1, C2: 3}}
			for _, model := range models {
				var ns []int
				var means []float64
				ratio := 0.0
				for _, n0 := range []int{8192, 32768, 131072} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(8)
					cs := measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed)
					var sum, sumUnweighted float64
					for _, c := range cs {
						sum += model.Of(c)
						sumUnweighted += float64(c.Sum())
					}
					ns = append(ns, n)
					means = append(means, sum/float64(len(cs)))
					ratio = sum / sumUnweighted
				}
				t.AddRow(model.C1, model.C2, fitExponent(ns, means), ratio)
			}
			lo, hi := models[1].Bounds()
			t.Note("every price model fits the same ~0.5 exponent; ratios stay within [min(c1,c2), max(c1,c2)] = e.g. [%g, %g]", lo, hi)
			return t
		},
	}
}

// E16 — the Section 4 opening strategy: with a selective crisp conjunct
// ("not many albums by the Beatles"), evaluating it first and probing the
// rest beats A₀; as the selectivity grows past ~√(k/N), A₀ wins. The
// crossover is the planner's decision boundary.
func e16() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Filter-first vs A0' across predicate selectivity (m=2, k=5)",
		Claim: "Sec 4: 'first determine all objects that satisfy the first conjunct' wins for selective predicates; the crossover sits near sqrt(k/N)",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"selectivity", "filter-first cost", "A0' cost", "winner"}}
			const m, k = 2, 5
			n := cfg.scaleN(32768)
			gen := func(p float64) genFunc {
				return func(seed uint64) *scoredb.Database {
					lists := []*gradedset.List{
						scoredb.Generator{N: n, M: 1, Law: scoredb.Binary{P: p}, Seed: seed}.MustGenerate().List(0),
						scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: seed + 4099}.MustGenerate().List(0),
					}
					db, err := scoredb.New(lists)
					if err != nil {
						panic(err)
					}
					return db
				}
			}
			for _, p := range []float64{0.001, 0.004, 0.016, 0.064, 0.256} {
				trials := cfg.scaleTrials(8)
				ff := sums(measure(core.FilterFirst{}, gen(p), agg.Min, k, trials, cfg.Seed))
				ap := sums(measure(core.A0Prime{}, gen(p), agg.Min, k, trials, cfg.Seed))
				sFF, _ := stats.Summarize(ff)
				sAP, _ := stats.Summarize(ap)
				winner := "filter-first"
				if sAP.Mean < sFF.Mean {
					winner = "A0'"
				}
				t.AddRow(p, sFF.Mean, sAP.Mean, winner)
			}
			t.Note(fmt.Sprintf("theoretical crossover ~ 2*sqrt(k/N) = %.4f at N=%d", 2*sqrtF(k)/sqrtF(n), n))
			return t
		},
	}
}
