// Package sim is the evaluation harness: it regenerates, as measured
// tables, every quantitative claim of the paper's analysis sections. The
// paper is theoretical — its "evaluation" is Theorems 4.2–7.1 plus
// explicit numeric remarks — so each experiment realizes the workload
// model of Section 5 (independent uniformly-permuted lists, or the
// correlated/bounded variants of Sections 7 and 9), measures exact
// middleware costs through the metered access layer, and reports the
// quantity the theorem bounds.
//
// The experiment index (IDs E1–E16) is documented in DESIGN.md and
// EXPERIMENTS.md; each experiment also has a corresponding benchmark in
// the repository root's bench_test.go.
//
// All experiments are deterministic given Config.Seed.
package sim
