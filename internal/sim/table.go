package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a titled grid with a caption
// tying it back to the paper's claim, plus free-form notes (fitted
// exponents, verdicts).
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == float64(int64(v)) && abs < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case abs >= 1000:
		return fmt.Sprintf("%.0f", v)
	case abs >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
