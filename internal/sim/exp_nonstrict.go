package sim

import (
	"math"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
)

// E7 — Remark 6.1: B₀ answers the standard fuzzy disjunction with
// middleware cost exactly mk, independent of N. Max is monotone but not
// strict, so the strict lower bound does not apply — and indeed fails.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "B0 disjunction cost vs N (m=3, k=10)",
		Claim: "Rem 6.1/Thm 4.5: max is not strict; B0 costs exactly mk regardless of N",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"N", "mean cost", "max cost", "mk", "strict-bound cost would be"}}
			const m, k = 3, 10
			for _, n0 := range []int{4096, 32768, 262144} {
				n := cfg.scaleN(n0)
				trials := cfg.scaleTrials(6)
				cs := sums(measure(core.B0{}, independent(n, m, scoredb.Uniform{}), agg.Max, k, trials, cfg.Seed))
				s, _ := stats.Summarize(cs)
				t.AddRow(n, s.Mean, s.Max, m*k, theoryCost(n, m, k))
			}
			t.Note("flat at mk=%d while the strict-query bound grows as N^(2/3)", 3*10)
			return t
		},
	}
}

// E8 — Remark 6.1: the median (m = 3) is monotone but not strict, and the
// subset-decomposition algorithm evaluates it in O(√(Nk)) — beating the
// Θ(N^(2/3)k^(1/3)) cost that strict queries require. Generic A₀ is also
// correct for the median but pays its usual N^(2/3) cost: the gap is the
// point.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Median via subset decomposition vs generic A0 (m=3, k=5)",
		Claim: "Rem 6.1: median evaluable in O(sqrt(Nk)); the strict bound N^(2/3) does not apply",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"N", "median-alg mean cost", "A0 mean cost", "sqrt(Nk)", "N^(2/3)k^(1/3)"}}
			const m, k = 3, 5
			var ns []int
			var medMeans, a0Means []float64
			for _, n0 := range []int{4096, 16384, 65536, 262144} {
				n := cfg.scaleN(n0)
				trials := cfg.scaleTrials(8)
				med := sums(measure(core.OrderStat{}, independent(n, m, scoredb.Uniform{}), agg.Median, k, trials, cfg.Seed))
				a0 := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Median, k, trials, cfg.Seed))
				sMed, _ := stats.Summarize(med)
				sA0, _ := stats.Summarize(a0)
				ns = append(ns, n)
				medMeans = append(medMeans, sMed.Mean)
				a0Means = append(a0Means, sA0.Mean)
				t.AddRow(n, sMed.Mean, sA0.Mean, theoryCost(n, 2, k), theoryCost(n, 3, k))
			}
			t.Note("fitted exponents: median-alg %.3f, A0 %.3f (theory: 0.5 vs 0.667)",
				fitExponent(ns, medMeans), fitExponent(ns, a0Means))
			return t
		},
	}
}

// E10 — Section 9, Ullman's algorithm: with the probed list's grades
// bounded above by 0.9 and the other uniform, the expected cost is
// constant in N (about 10 iterations); with both uniform it is Θ(√N)
// (Landau), no better than A₀.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Ullman's algorithm: bounded-above vs uniform grades (m=2, k=1)",
		Claim: "Sec 9: expected constant cost when one list's grades are <= 0.9; Theta(sqrt(N)) when both uniform",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"N", "bounded: mean cost", "uniform: mean cost", "uniform/sqrt(N)", "A0 mean cost"}}
			const k = 1
			bounded := func(n int) genFunc {
				return func(seed uint64) *scoredb.Database {
					l1 := scoredb.Generator{N: n, M: 1, Law: scoredb.BoundedAbove{Max: 0.9}, Seed: seed}.MustGenerate().List(0)
					l2 := scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: seed + 99991}.MustGenerate().List(0)
					db, err := scoredb.New([]*gradedset.List{l1, l2})
					if err != nil {
						panic(err)
					}
					return db
				}
			}
			var ns []int
			var uniMeans []float64
			for _, n0 := range []int{4096, 16384, 65536, 262144} {
				n := cfg.scaleN(n0)
				trials := cfg.scaleTrials(12)
				b := sums(measure(core.Ullman{}, bounded(n), agg.Min, k, trials, cfg.Seed))
				u := sums(measure(core.Ullman{}, independent(n, 2, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed))
				a := sums(measure(core.A0{}, independent(n, 2, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed))
				sb, _ := stats.Summarize(b)
				su, _ := stats.Summarize(u)
				sa, _ := stats.Summarize(a)
				ns = append(ns, n)
				uniMeans = append(uniMeans, su.Mean)
				t.AddRow(n, sb.Mean, su.Mean, su.Mean/sqrtF(n), sa.Mean)
			}
			t.Note("uniform-case fitted exponent %.3f (Landau: 0.5); bounded case flat in N", fitExponent(ns, uniMeans))
			return t
		},
	}
}

// sqrtF is √n for integer n.
func sqrtF(n int) float64 { return math.Sqrt(float64(n)) }
