package sim

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/core"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/stats"
)

// E1 — Theorem 5.3, m = 2: the middleware cost of A₀ grows as √N.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "A0 cost scaling with N (m=2, k=10)",
		Claim: "Thm 5.3: with two independent atomic queries, cost = O(sqrt(N)) w.h.p.; fitted exponent ~ 0.5",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"N", "trials", "mean cost", "p99 cost", "cost/sqrt(Nk)"}}
			const m, k = 2, 10
			var ns []int
			var means []float64
			for _, n0 := range []int{4096, 16384, 65536, 262144} {
				n := cfg.scaleN(n0)
				trials := cfg.scaleTrials(12)
				cs := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed))
				s, _ := stats.Summarize(cs)
				ns = append(ns, n)
				means = append(means, s.Mean)
				t.AddRow(n, trials, s.Mean, s.P99, s.Mean/theoryCost(n, m, k))
			}
			exp := fitExponent(ns, means)
			t.Note("fitted exponent %.3f (paper: (m-1)/m = 0.5)", exp)
			return t
		},
	}
}

// E2 — Theorem 5.3, general m: cost = O(N^((m−1)/m) k^(1/m)).
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "A0 cost scaling with N across m (k=10)",
		Claim: "Thm 5.3: fitted exponent ~ (m-1)/m for m = 2..5",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"m", "fitted exponent", "(m-1)/m", "mean cost @ largest N"}}
			const k = 10
			for m := 2; m <= 5; m++ {
				var ns []int
				var means []float64
				for _, n0 := range []int{8192, 32768, 131072} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(8)
					cs := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed+uint64(m)))
					s, _ := stats.Summarize(cs)
					ns = append(ns, n)
					means = append(means, s.Mean)
				}
				t.AddRow(m, fitExponent(ns, means), float64(m-1)/float64(m), means[len(means)-1])
			}
			t.Note("exponents rise toward 1 with m exactly as N^((m-1)/m) predicts")
			return t
		},
	}
}

// E3 — Theorem 5.3, k-dependence: cost ∝ k^(1/m).
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "A0 cost scaling with k (m=2)",
		Claim: "Thm 5.3: at fixed N, cost grows as k^(1/m) = k^0.5",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"k", "trials", "mean cost", "cost/sqrt(Nk)"}}
			const m = 2
			n := cfg.scaleN(65536)
			var ks []int
			var means []float64
			for _, k := range []int{1, 4, 16, 64, 256} {
				trials := cfg.scaleTrials(10)
				cs := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed+uint64(k)))
				s, _ := stats.Summarize(cs)
				ks = append(ks, k)
				means = append(means, s.Mean)
				t.AddRow(k, trials, s.Mean, s.Mean/theoryCost(n, m, k))
			}
			xs := make([]float64, len(ks))
			for i, k := range ks {
				xs[i] = float64(k)
			}
			fit, err := stats.FitPower(xs, means)
			if err == nil {
				t.Note("fitted k-exponent %.3f at N=%d (paper: 1/m = 0.5)", fit.Exponent, n)
			}
			return t
		},
	}
}

// E6 — Theorem 6.5: the cost normalized by N^((m−1)/m) k^(1/m) stays
// within constant factors across N (matching upper and lower bounds).
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Theta-bound constants: cost / (N^((m-1)/m) k^(1/m))",
		Claim: "Thm 6.5: the normalized cost is bounded above and below by constants independent of N",
		Run: func(cfg Config) *Table {
			t := &Table{Header: []string{"m", "N", "min ratio", "mean ratio", "max ratio"}}
			const k = 10
			globalMin, globalMax := 1e18, 0.0
			for _, m := range []int{2, 3} {
				for _, n0 := range []int{8192, 32768, 131072} {
					n := cfg.scaleN(n0)
					trials := cfg.scaleTrials(10)
					cs := sums(measure(core.A0{}, independent(n, m, scoredb.Uniform{}), agg.Min, k, trials, cfg.Seed+uint64(m*n0)))
					norm := theoryCost(n, m, k)
					lo, hi, sum := 1e18, 0.0, 0.0
					for _, c := range cs {
						r := c / norm
						if r < lo {
							lo = r
						}
						if r > hi {
							hi = r
						}
						sum += r
					}
					if lo < globalMin {
						globalMin = lo
					}
					if hi > globalMax {
						globalMax = hi
					}
					t.AddRow(m, n, lo, sum/float64(len(cs)), hi)
				}
			}
			t.Note("ratios span [%.2f, %.2f] across all N: constant-factor band, no drift with N", globalMin, globalMax)
			return t
		},
	}
}
