package gradedset

import (
	"errors"
	"math/rand"
	"testing"
)

func TestUpdatedCanonicalOrder(t *testing.T) {
	l, err := NewList([]Entry{
		{Object: 0, Grade: 0.9},
		{Object: 1, Grade: 0.7},
		{Object: 2, Grade: 0.7},
		{Object: 3, Grade: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		obj int
		g   float64
	}{
		{3, 0.95}, // climb to the top
		{0, 0.0},  // fall to the bottom
		{1, 0.7},  // no-op value, same rank region
		{2, 0.7},  // tie: ascending-object order must hold
		{3, 0.7},  // join the tie class
		{0, 0.7},  // join the tie class from above
	}
	for _, tc := range cases {
		nl, err := l.Updated(tc.obj, tc.g)
		if err != nil {
			t.Fatalf("Updated(%d, %g): %v", tc.obj, tc.g, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("Updated(%d, %g): invalid list: %v", tc.obj, tc.g, err)
		}
		if g, _ := nl.Grade(tc.obj); g != tc.g {
			t.Fatalf("Updated(%d, %g): grade = %g", tc.obj, tc.g, g)
		}
		// Rebuild from scratch: Updated must equal NewList on the updated
		// entries, entry for entry (canonical order is unique).
		want := make([]Entry, 0, l.Len())
		for _, e := range l.Entries() {
			if e.Object == tc.obj {
				e.Grade = tc.g
			}
			want = append(want, e)
		}
		ref, err := NewList(want)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Entries() {
			if nl.Entry(i) != ref.Entry(i) {
				t.Fatalf("Updated(%d, %g): entry %d = %v, want %v", tc.obj, tc.g, i, nl.Entry(i), ref.Entry(i))
			}
		}
	}
}

func TestUpdatedCopyOnWrite(t *testing.T) {
	l, err := NewList([]Entry{{Object: 0, Grade: 0.5}, {Object: 1, Grade: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := l.Updated(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := l.Grade(1); g != 0.4 {
		t.Fatalf("receiver mutated: grade(1) = %g, want 0.4", g)
	}
	if nl.Entry(0) != (Entry{Object: 1, Grade: 0.9}) {
		t.Fatalf("updated list top = %v", nl.Entry(0))
	}
	if l.Entry(0) != (Entry{Object: 0, Grade: 0.5}) {
		t.Fatalf("receiver reordered: top = %v", l.Entry(0))
	}
}

func TestUpdatedErrors(t *testing.T) {
	l, err := NewList([]Entry{{Object: 0, Grade: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Updated(7, 0.5); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("unknown object: err = %v", err)
	}
	if _, err := l.Updated(0, 1.5); err == nil {
		t.Fatal("invalid grade accepted")
	}
}

func TestUpdatedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 64
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Object: i, Grade: rng.Float64()}
	}
	l, err := NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		obj := rng.Intn(n)
		g := float64(rng.Intn(5)) / 4 // heavy ties
		nl, err := l.Updated(obj, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got, _ := nl.Grade(obj); got != g {
			t.Fatalf("step %d: grade = %g, want %g", step, got, g)
		}
		l = nl
	}
	if _, dense := l.DenseUniverse(); !dense {
		t.Fatal("dense universe lost through updates")
	}
}
