package gradedset

import (
	"errors"
	"fmt"
	"sort"
)

// List is a graded set materialized as a descending-grade sequence: the
// form in which a subsystem delivers results under sorted access. A List
// also supports random access (grade lookup by object), so it can model a
// complete subsystem result.
//
// Invariants: entries are sorted by non-increasing grade; each object
// appears at most once; all grades are valid.
//
// Random access is served by one of two indexes. When the object set is
// exactly the dense universe {0,…,N−1} — the shape every scoring database
// and subsystem in this repository produces — ranks live in a flat
// []int32 indexed by object, so Grade/Rank/Contains are array reads.
// Arbitrary (sparse) object ids fall back to a map index.
type List struct {
	entries   []Entry
	rank      map[int]int // object -> position; nil when the dense index is in use
	denseRank []int32     // object -> position over the dense universe; nil when sparse
}

// ErrUnknownObject reports a random access for an object not in the list.
var ErrUnknownObject = errors.New("gradedset: unknown object")

// buildIndex constructs the rank index for es, preferring the dense form.
// It reports the first duplicate object, or -1 if none.
func buildIndex(es []Entry) (denseRank []int32, rank map[int]int, dupAt int) {
	n := len(es)
	dense := true
	for _, e := range es {
		if e.Object < 0 || e.Object >= n {
			dense = false
			break
		}
	}
	if dense {
		denseRank = make([]int32, n)
		for i := range denseRank {
			denseRank[i] = -1
		}
		for i, e := range es {
			if denseRank[e.Object] >= 0 {
				return nil, nil, i
			}
			denseRank[e.Object] = int32(i)
		}
		return denseRank, nil, -1
	}
	rank = make(map[int]int, n)
	for i, e := range es {
		if _, dup := rank[e.Object]; dup {
			return nil, nil, i
		}
		rank[e.Object] = i
	}
	return nil, rank, -1
}

// NewList builds a List from entries, sorting them into canonical order
// (descending grade, ascending object on ties). It rejects invalid grades
// and duplicate objects.
func NewList(entries []Entry) (*List, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	SortEntries(es)
	for i, e := range es {
		if err := CheckGrade(e.Grade); err != nil {
			return nil, fmt.Errorf("entry %d (object %d): %w", i, e.Object, err)
		}
	}
	denseRank, rank, dupAt := buildIndex(es)
	if dupAt >= 0 {
		return nil, fmt.Errorf("gradedset: duplicate object %d", es[dupAt].Object)
	}
	return &List{entries: es, rank: rank, denseRank: denseRank}, nil
}

// NewListPresorted builds a List from entries that are already in
// descending-grade order, preserving the given tie order (the "skeleton"
// order of Section 5). It rejects out-of-order input, invalid grades, and
// duplicates.
func NewListPresorted(entries []Entry) (*List, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	for i, e := range es {
		if err := CheckGrade(e.Grade); err != nil {
			return nil, fmt.Errorf("entry %d (object %d): %w", i, e.Object, err)
		}
		if i > 0 && es[i].Grade > es[i-1].Grade {
			return nil, fmt.Errorf("gradedset: entries not sorted at position %d", i)
		}
	}
	denseRank, rank, dupAt := buildIndex(es)
	if dupAt >= 0 {
		return nil, fmt.Errorf("gradedset: duplicate object %d", es[dupAt].Object)
	}
	return &List{entries: es, rank: rank, denseRank: denseRank}, nil
}

// FromGradedSet materializes a graded set as a List in canonical order.
func FromGradedSet(s *GradedSet) *List {
	entries := s.Entries()
	denseRank, rank, _ := buildIndex(entries) // no duplicates possible
	return &List{entries: entries, rank: rank, denseRank: denseRank}
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entry returns the entry at sorted position i (0 is the best match).
// This is one unit of sorted access.
func (l *List) Entry(i int) Entry { return l.entries[i] }

// DenseUniverse reports whether the list's object set is exactly
// {0,…,N−1}, and if so returns N. Middleware layers use the hint to back
// per-object state with flat arrays instead of maps.
func (l *List) DenseUniverse() (int, bool) {
	if l.denseRank != nil {
		return len(l.entries), true
	}
	return 0, false
}

// Grade returns the grade of obj. This is one unit of random access.
func (l *List) Grade(obj int) (float64, error) {
	if l.denseRank != nil {
		if obj < 0 || obj >= len(l.denseRank) {
			return 0, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
		}
		return l.entries[l.denseRank[obj]].Grade, nil
	}
	i, ok := l.rank[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
	}
	return l.entries[i].Grade, nil
}

// Rank returns the sorted position of obj, or -1 if absent.
func (l *List) Rank(obj int) int {
	if l.denseRank != nil {
		if obj < 0 || obj >= len(l.denseRank) {
			return -1
		}
		return int(l.denseRank[obj])
	}
	if i, ok := l.rank[obj]; ok {
		return i
	}
	return -1
}

// Contains reports whether obj appears in the list.
func (l *List) Contains(obj int) bool { return l.Rank(obj) >= 0 }

// Prefix returns the first n entries (the top n objects). n is clamped to
// the list length. The returned slice shares storage and must not be
// mutated.
func (l *List) Prefix(n int) []Entry {
	if n > len(l.entries) {
		n = len(l.entries)
	}
	if n < 0 {
		n = 0
	}
	return l.entries[:n]
}

// Entries returns all entries in sorted order. The returned slice shares
// storage and must not be mutated.
func (l *List) Entries() []Entry { return l.entries }

// Range returns the entries at sorted positions [lo, hi). The returned
// slice shares storage and must not be mutated.
func (l *List) Range(lo, hi int) []Entry { return l.entries[lo:hi] }

// GradedSet converts the list back to an unordered graded set.
func (l *List) GradedSet() *GradedSet {
	s := NewWithCapacity(len(l.entries))
	for _, e := range l.entries {
		s.grades[e.Object] = e.Grade
	}
	return s
}

// Reversed returns a new List with the reverse ordering and complemented
// grades (1 − g): the sorted list a subsystem would return for the negated
// query ¬Q under the standard negation rule. The returned tie order is the
// exact reverse of l's, matching Section 7's reversed-permutation skeleton.
func (l *List) Reversed() *List {
	n := len(l.entries)
	entries := make([]Entry, n)
	for i := n - 1; i >= 0; i-- {
		e := l.entries[i]
		entries[n-1-i] = Entry{Object: e.Object, Grade: 1 - e.Grade}
	}
	denseRank, rank, _ := buildIndex(entries) // duplicates impossible: same objects as l
	return &List{entries: entries, rank: rank, denseRank: denseRank}
}

// Updated returns a new List equal to l except that obj's grade is g:
// the copy-on-write form of a single grade update. The receiver is left
// untouched — snapshots handed out before the update (sources in flight,
// streaming cursors) keep reading the old data — and the new list is in
// canonical order (descending grade, ascending object on ties), exactly
// as NewList would have built it from the updated entries. The object
// must already be graded: the universe of a list is fixed; an update
// changes a grade, never the object set.
func (l *List) Updated(obj int, g float64) (*List, error) {
	if err := CheckGrade(g); err != nil {
		return nil, fmt.Errorf("object %d: %w", obj, err)
	}
	old := l.Rank(obj)
	if old < 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
	}
	es := make([]Entry, len(l.entries))
	copy(es, l.entries)
	// Remove the old entry, find where the regraded one belongs among the
	// rest, and slide the gap there.
	copy(es[old:], es[old+1:])
	rest := es[:len(es)-1]
	pos := sort.Search(len(rest), func(i int) bool {
		return g > rest[i].Grade || (g == rest[i].Grade && obj < rest[i].Object)
	})
	copy(es[pos+1:], es[pos:len(es)-1])
	es[pos] = Entry{Object: obj, Grade: g}
	denseRank, rank, _ := buildIndex(es) // duplicates impossible: same objects as l
	return &List{entries: es, rank: rank, denseRank: denseRank}, nil
}

// Validate re-checks all invariants; it is used by tests and by loaders of
// externally supplied data.
func (l *List) Validate() error {
	if l.denseRank != nil {
		if len(l.denseRank) != len(l.entries) {
			return errors.New("gradedset: rank index size mismatch")
		}
	} else if len(l.rank) != len(l.entries) {
		return errors.New("gradedset: rank index size mismatch")
	}
	for i, e := range l.entries {
		if err := CheckGrade(e.Grade); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		if i > 0 && e.Grade > l.entries[i-1].Grade {
			return fmt.Errorf("gradedset: entries not sorted at position %d", i)
		}
		if l.Rank(e.Object) != i {
			return fmt.Errorf("gradedset: rank index wrong for object %d", e.Object)
		}
	}
	return nil
}
