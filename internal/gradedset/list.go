package gradedset

import (
	"errors"
	"fmt"
)

// List is a graded set materialized as a descending-grade sequence: the
// form in which a subsystem delivers results under sorted access. A List
// also supports random access (grade lookup by object), so it can model a
// complete subsystem result.
//
// Invariants: entries are sorted by non-increasing grade; each object
// appears at most once; all grades are valid.
type List struct {
	entries []Entry
	rank    map[int]int // object -> position in entries
}

// ErrUnknownObject reports a random access for an object not in the list.
var ErrUnknownObject = errors.New("gradedset: unknown object")

// NewList builds a List from entries, sorting them into canonical order
// (descending grade, ascending object on ties). It rejects invalid grades
// and duplicate objects.
func NewList(entries []Entry) (*List, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	SortEntries(es)
	rank := make(map[int]int, len(es))
	for i, e := range es {
		if err := CheckGrade(e.Grade); err != nil {
			return nil, fmt.Errorf("entry %d (object %d): %w", i, e.Object, err)
		}
		if _, dup := rank[e.Object]; dup {
			return nil, fmt.Errorf("gradedset: duplicate object %d", e.Object)
		}
		rank[e.Object] = i
	}
	return &List{entries: es, rank: rank}, nil
}

// NewListPresorted builds a List from entries that are already in
// descending-grade order, preserving the given tie order (the "skeleton"
// order of Section 5). It rejects out-of-order input, invalid grades, and
// duplicates.
func NewListPresorted(entries []Entry) (*List, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	rank := make(map[int]int, len(es))
	for i, e := range es {
		if err := CheckGrade(e.Grade); err != nil {
			return nil, fmt.Errorf("entry %d (object %d): %w", i, e.Object, err)
		}
		if i > 0 && es[i].Grade > es[i-1].Grade {
			return nil, fmt.Errorf("gradedset: entries not sorted at position %d", i)
		}
		if _, dup := rank[e.Object]; dup {
			return nil, fmt.Errorf("gradedset: duplicate object %d", e.Object)
		}
		rank[e.Object] = i
	}
	return &List{entries: es, rank: rank}, nil
}

// FromGradedSet materializes a graded set as a List in canonical order.
func FromGradedSet(s *GradedSet) *List {
	entries := s.Entries()
	rank := make(map[int]int, len(entries))
	for i, e := range entries {
		rank[e.Object] = i
	}
	return &List{entries: entries, rank: rank}
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entry returns the entry at sorted position i (0 is the best match).
// This is one unit of sorted access.
func (l *List) Entry(i int) Entry { return l.entries[i] }

// Grade returns the grade of obj. This is one unit of random access.
func (l *List) Grade(obj int) (float64, error) {
	i, ok := l.rank[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownObject, obj)
	}
	return l.entries[i].Grade, nil
}

// Rank returns the sorted position of obj, or -1 if absent.
func (l *List) Rank(obj int) int {
	if i, ok := l.rank[obj]; ok {
		return i
	}
	return -1
}

// Contains reports whether obj appears in the list.
func (l *List) Contains(obj int) bool {
	_, ok := l.rank[obj]
	return ok
}

// Prefix returns the first n entries (the top n objects). n is clamped to
// the list length. The returned slice shares storage and must not be
// mutated.
func (l *List) Prefix(n int) []Entry {
	if n > len(l.entries) {
		n = len(l.entries)
	}
	if n < 0 {
		n = 0
	}
	return l.entries[:n]
}

// Entries returns all entries in sorted order. The returned slice shares
// storage and must not be mutated.
func (l *List) Entries() []Entry { return l.entries }

// GradedSet converts the list back to an unordered graded set.
func (l *List) GradedSet() *GradedSet {
	s := NewWithCapacity(len(l.entries))
	for _, e := range l.entries {
		s.grades[e.Object] = e.Grade
	}
	return s
}

// Reversed returns a new List with the reverse ordering and complemented
// grades (1 − g): the sorted list a subsystem would return for the negated
// query ¬Q under the standard negation rule. The returned tie order is the
// exact reverse of l's, matching Section 7's reversed-permutation skeleton.
func (l *List) Reversed() *List {
	n := len(l.entries)
	entries := make([]Entry, n)
	rank := make(map[int]int, n)
	for i := n - 1; i >= 0; i-- {
		e := l.entries[i]
		j := n - 1 - i
		entries[j] = Entry{Object: e.Object, Grade: 1 - e.Grade}
		rank[e.Object] = j
	}
	return &List{entries: entries, rank: rank}
}

// Validate re-checks all invariants; it is used by tests and by loaders of
// externally supplied data.
func (l *List) Validate() error {
	if len(l.rank) != len(l.entries) {
		return errors.New("gradedset: rank index size mismatch")
	}
	for i, e := range l.entries {
		if err := CheckGrade(e.Grade); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		if i > 0 && e.Grade > l.entries[i-1].Grade {
			return fmt.Errorf("gradedset: entries not sorted at position %d", i)
		}
		if l.rank[e.Object] != i {
			return fmt.Errorf("gradedset: rank index wrong for object %d", e.Object)
		}
	}
	return nil
}
