// Package gradedset implements graded ("fuzzy") sets, the semantic
// foundation of the paper (Section 2).
//
// A graded set is a set of pairs (x, g) where x is an object and g, the
// grade, is a real number in [0, 1]. A grade of 1 is a perfect match and a
// grade of 0 means the object does not satisfy the query at all. A graded
// set generalizes both a classical set (grades restricted to {0, 1}) and a
// sorted list (objects ordered by descending grade).
//
// The package provides two representations:
//
//   - GradedSet: an unordered object → grade mapping, convenient for
//     random-access style manipulation and set algebra.
//   - List: a materialized descending-grade ordering of entries, the shape
//     in which subsystems such as QBIC deliver results under sorted access.
//
// It also provides top-k selection (the paper's "top k answers"), which
// must tolerate ties: when several objects share the k-th grade, any
// maximal selection is correct, so comparisons in tests are made on grade
// multisets rather than on object identity.
//
// Objects are dense integers in [0, N). Higher layers (the middleware)
// map application-level identifiers such as album names onto this space.
package gradedset
