package gradedset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	entries := []Entry{{1, 0.2}, {2, 0.9}, {3, 0.5}, {4, 0.7}}
	got := TopK(entries, 2)
	want := []Entry{{2, 0.9}, {4, 0.7}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("TopK = %v, want %v", got, want)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	entries := []Entry{{1, 0.2}, {2, 0.9}}
	if got := TopK(entries, 0); got != nil {
		t.Errorf("TopK(k=0) = %v, want nil", got)
	}
	if got := TopK(entries, -3); got != nil {
		t.Errorf("TopK(k<0) = %v, want nil", got)
	}
	if got := TopK(nil, 5); len(got) != 0 {
		t.Errorf("TopK(nil) = %v, want empty", got)
	}
	got := TopK(entries, 10)
	if len(got) != 2 || got[0].Object != 2 {
		t.Errorf("TopK(k>n) = %v", got)
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	entries := []Entry{{1, 0.2}, {2, 0.9}, {3, 0.5}}
	orig := make([]Entry, len(entries))
	copy(orig, entries)
	TopK(entries, 2)
	for i := range entries {
		if entries[i] != orig[i] {
			t.Fatalf("TopK mutated input at %d: %v != %v", i, entries[i], orig[i])
		}
	}
}

func TestTopKTies(t *testing.T) {
	entries := []Entry{{5, 0.5}, {1, 0.5}, {3, 0.5}, {2, 0.9}}
	got := TopK(entries, 2)
	if got[0] != (Entry{2, 0.9}) {
		t.Errorf("TopK[0] = %v, want (2, 0.9)", got[0])
	}
	// Tie at 0.5: deterministic pick is the smallest object id.
	if got[1] != (Entry{1, 0.5}) {
		t.Errorf("TopK[1] = %v, want (1, 0.5)", got[1])
	}
}

func TestKthGrade(t *testing.T) {
	entries := []Entry{{1, 0.2}, {2, 0.9}, {3, 0.5}}
	if g := KthGrade(entries, 1); g != 0.9 {
		t.Errorf("KthGrade(1) = %v, want 0.9", g)
	}
	if g := KthGrade(entries, 3); g != 0.2 {
		t.Errorf("KthGrade(3) = %v, want 0.2", g)
	}
	if g := KthGrade(entries, 0); g != 0 {
		t.Errorf("KthGrade(0) = %v, want 0", g)
	}
	if g := KthGrade(entries, 4); g != 0 {
		t.Errorf("KthGrade(4) = %v, want 0", g)
	}
}

// Property: TopK agrees with full sort + prefix on random inputs, as a
// grade multiset (ties may be resolved differently in principle, but our
// tie-break is deterministic, so we also check exact equality).
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := rng.IntN(200)
		k := rng.IntN(20) + 1
		entries := make([]Entry, n)
		for i := range entries {
			// Coarse grades force plenty of ties.
			entries[i] = Entry{Object: i, Grade: float64(rng.IntN(10)) / 10}
		}
		want := make([]Entry, n)
		copy(want, entries)
		SortEntries(want)
		if k > n {
			k = n
		}
		want = want[:k]
		got := TopK(entries, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSameGradeMultiset(t *testing.T) {
	a := []Entry{{1, 0.5}, {2, 0.9}}
	b := []Entry{{7, 0.9}, {8, 0.5}} // different objects, same grades
	if !SameGradeMultiset(a, b, 0) {
		t.Error("SameGradeMultiset = false for identical grade multisets")
	}
	c := []Entry{{7, 0.9}, {8, 0.4}}
	if SameGradeMultiset(a, c, 0) {
		t.Error("SameGradeMultiset = true for different grades")
	}
	if SameGradeMultiset(a, c, 0.2) != true {
		t.Error("SameGradeMultiset should accept within tolerance")
	}
	if SameGradeMultiset(a, []Entry{{1, 0.5}}, 1) {
		t.Error("SameGradeMultiset should reject different lengths")
	}
}

func TestGradesOf(t *testing.T) {
	gs := GradesOf([]Entry{{1, 0.1}, {2, 0.2}})
	if len(gs) != 2 || gs[0] != 0.1 || gs[1] != 0.2 {
		t.Errorf("GradesOf = %v", gs)
	}
}

func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	entries := make([]Entry, 100000)
	for i := range entries {
		entries[i] = Entry{Object: i, Grade: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(entries, 10)
	}
}
