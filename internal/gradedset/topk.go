package gradedset

import (
	"container/heap"
	"sort"
)

// TopK returns the k entries with the highest grades, in descending-grade
// order (ties broken by ascending object id for determinism). When several
// objects tie at the k-th grade any maximal choice is a correct "top k
// answers" per Section 4; this implementation picks the tied objects with
// the smallest ids. k larger than len(entries) returns everything; k <= 0
// returns nil.
//
// The selection runs in O(n log k) using a min-heap of size k, which is
// the shape middleware needs: n can be the whole database while k is
// typically a small constant like 10.
func TopK(entries []Entry, k int) []Entry {
	if k <= 0 {
		return nil
	}
	if k >= len(entries) {
		out := make([]Entry, len(entries))
		copy(out, entries)
		SortEntries(out)
		return out
	}
	h := make(minHeap, 0, k)
	heap.Init(&h)
	for _, e := range entries {
		if len(h) < k {
			heap.Push(&h, e)
			continue
		}
		if better(e, h[0]) {
			h[0] = e
			heap.Fix(&h, 0)
		}
	}
	out := []Entry(h)
	SortEntries(out)
	return out
}

// KthGrade returns the grade of the k-th best entry (1-based), i.e. the
// smallest grade that still belongs to the top k. It returns 0 when k <= 0
// or k exceeds the number of entries.
func KthGrade(entries []Entry, k int) float64 {
	if k <= 0 || k > len(entries) {
		return 0
	}
	top := TopK(entries, k)
	return top[len(top)-1].Grade
}

// better reports whether a should outrank b: higher grade first, then
// smaller object id.
func better(a, b Entry) bool {
	if a.Grade != b.Grade {
		return a.Grade > b.Grade
	}
	return a.Object < b.Object
}

// minHeap keeps the current top-k candidates with the worst at the root.
type minHeap []Entry

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// GradesOf extracts the grades of entries in order.
func GradesOf(entries []Entry) []float64 {
	gs := make([]float64, len(entries))
	for i, e := range entries {
		gs[i] = e.Grade
	}
	return gs
}

// SameGradeMultiset reports whether two entry slices carry exactly the same
// multiset of grades within tolerance eps. This is the correct notion of
// top-k equality in the presence of ties: two correct algorithms may pick
// different tied objects but must report the same grades.
func SameGradeMultiset(a, b []Entry, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	ga := GradesOf(a)
	gb := GradesOf(b)
	sort.Float64s(ga)
	sort.Float64s(gb)
	for i := range ga {
		d := ga[i] - gb[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}
