package gradedset

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestValidGrade(t *testing.T) {
	valid := []float64{0, 1, 0.5, 1e-9, 1 - 1e-9}
	for _, g := range valid {
		if !ValidGrade(g) {
			t.Errorf("ValidGrade(%v) = false, want true", g)
		}
	}
	invalid := []float64{-0.0001, 1.0001, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, g := range invalid {
		if ValidGrade(g) {
			t.Errorf("ValidGrade(%v) = true, want false", g)
		}
	}
}

func TestClampGrade(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.3, 0.3}, {1, 1}, {2, 1}, {math.NaN(), 0},
		{math.Inf(1), 1}, {math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := ClampGrade(c.in); got != c.want {
			t.Errorf("ClampGrade(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInsertAndGrade(t *testing.T) {
	s := New()
	if err := s.Insert(3, 0.7); err != nil {
		t.Fatal(err)
	}
	if g, ok := s.Grade(3); !ok || g != 0.7 {
		t.Errorf("Grade(3) = %v, %v; want 0.7, true", g, ok)
	}
	if g, ok := s.Grade(4); ok || g != 0 {
		t.Errorf("Grade(4) = %v, %v; want 0, false", g, ok)
	}
	if s.GradeOrZero(4) != 0 {
		t.Error("GradeOrZero(absent) != 0")
	}
	if err := s.Insert(5, 1.5); err == nil {
		t.Error("Insert with grade 1.5 should fail")
	}
	if err := s.Insert(5, math.NaN()); err == nil {
		t.Error("Insert with NaN grade should fail")
	}
}

func TestInsertOverwrites(t *testing.T) {
	s := New()
	s.MustInsert(1, 0.2)
	s.MustInsert(1, 0.9)
	if g := s.GradeOrZero(1); g != 0.9 {
		t.Errorf("grade after overwrite = %v, want 0.9", g)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.MustInsert(1, 0.5)
	s.Delete(1)
	if s.Contains(1) {
		t.Error("Contains(1) after Delete")
	}
	s.Delete(42) // deleting absent objects is a no-op
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestSupportExcludesZeroGrades(t *testing.T) {
	s := New()
	s.MustInsert(1, 0)
	s.MustInsert(2, 0.5)
	s.MustInsert(3, 1)
	sup := s.Support()
	if len(sup) != 2 || sup[0] != 2 || sup[1] != 3 {
		t.Errorf("Support = %v, want [2 3]", sup)
	}
	objs := s.Objects()
	if len(objs) != 3 {
		t.Errorf("Objects = %v, want 3 objects", objs)
	}
}

func TestEntriesSortedOrder(t *testing.T) {
	s := New()
	s.MustInsert(5, 0.5)
	s.MustInsert(1, 0.9)
	s.MustInsert(9, 0.5)
	s.MustInsert(2, 0.1)
	es := s.Entries()
	want := []Entry{{1, 0.9}, {5, 0.5}, {9, 0.5}, {2, 0.1}}
	if len(es) != len(want) {
		t.Fatalf("Entries len = %d, want %d", len(es), len(want))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("Entries[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := New()
	s.MustInsert(1, 0.4)
	s.MustInsert(2, 0.8)
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not Equal to original")
	}
	c.MustInsert(3, 0.1)
	if s.Equal(c) {
		t.Error("Equal after divergence")
	}
	c.Delete(3)
	c.MustInsert(1, 0.5)
	if s.Equal(c) {
		t.Error("Equal with different grade")
	}
}

func TestIntersectIsPointwiseMin(t *testing.T) {
	a := New()
	a.MustInsert(1, 0.9)
	a.MustInsert(2, 0.4)
	b := New()
	b.MustInsert(1, 0.3)
	b.MustInsert(3, 0.7)
	got := Intersect(a, b)
	// Object 1: min(0.9, 0.3); object 2: min(0.4, 0); object 3: min(0, 0.7).
	if g := got.GradeOrZero(1); g != 0.3 {
		t.Errorf("Intersect grade(1) = %v, want 0.3", g)
	}
	if g := got.GradeOrZero(2); g != 0 {
		t.Errorf("Intersect grade(2) = %v, want 0", g)
	}
	if g := got.GradeOrZero(3); g != 0 {
		t.Errorf("Intersect grade(3) = %v, want 0", g)
	}
}

func TestUnionIsPointwiseMax(t *testing.T) {
	a := New()
	a.MustInsert(1, 0.9)
	a.MustInsert(2, 0.4)
	b := New()
	b.MustInsert(1, 0.3)
	b.MustInsert(3, 0.7)
	got := Union(a, b)
	if g := got.GradeOrZero(1); g != 0.9 {
		t.Errorf("Union grade(1) = %v, want 0.9", g)
	}
	if g := got.GradeOrZero(2); g != 0.4 {
		t.Errorf("Union grade(2) = %v, want 0.4", g)
	}
	if g := got.GradeOrZero(3); g != 0.7 {
		t.Errorf("Union grade(3) = %v, want 0.7", g)
	}
}

func TestComplement(t *testing.T) {
	s := New()
	s.MustInsert(0, 0.25)
	s.MustInsert(2, 1)
	c := Complement(s, 3)
	want := map[int]float64{0: 0.75, 1: 1, 2: 0}
	for obj, g := range want {
		if got := c.GradeOrZero(obj); got != g {
			t.Errorf("Complement grade(%d) = %v, want %v", obj, got, g)
		}
	}
	// Double complement restores the original over the universe.
	cc := Complement(c, 3)
	if cc.GradeOrZero(0) != 0.25 || cc.GradeOrZero(1) != 0 || cc.GradeOrZero(2) != 1 {
		t.Errorf("double complement mismatch: %v", cc.Entries())
	}
}

// Property: De Morgan for the standard rules. ¬(A ∪ B) = ¬A ∩ ¬B over a
// shared universe.
func TestDeMorganProperty(t *testing.T) {
	const n = 16
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		a, b := New(), New()
		for obj := 0; obj < n; obj++ {
			a.MustInsert(obj, rng.Float64())
			b.MustInsert(obj, rng.Float64())
		}
		lhs := Complement(Union(a, b), n)
		rhs := Intersect(Complement(a, n), Complement(b, n))
		for obj := 0; obj < n; obj++ {
			if math.Abs(lhs.GradeOrZero(obj)-rhs.GradeOrZero(obj)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: idempotency of min/max rules: A ∩ A = A and A ∪ A = A. This is
// the logical-equivalence preservation that Theorem 3.1 singles min/max
// out for.
func TestIdempotencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		a := New()
		for obj := 0; obj < 8; obj++ {
			a.MustInsert(obj, rng.Float64())
		}
		return Intersect(a, a).Equal(a) && Union(a, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: distributivity A ∩ (B ∪ C) = (A ∩ B) ∪ (A ∩ C) for min/max.
func TestDistributivityProperty(t *testing.T) {
	const n = 8
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		a, b, c := New(), New(), New()
		for obj := 0; obj < n; obj++ {
			a.MustInsert(obj, rng.Float64())
			b.MustInsert(obj, rng.Float64())
			c.MustInsert(obj, rng.Float64())
		}
		lhs := Intersect(a, Union(b, c))
		rhs := Union(Intersect(a, b), Intersect(a, c))
		for obj := 0; obj < n; obj++ {
			if math.Abs(lhs.GradeOrZero(obj)-rhs.GradeOrZero(obj)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromEntriesRejectsBadGrade(t *testing.T) {
	if _, err := FromEntries([]Entry{{1, 0.5}, {2, -0.1}}); err == nil {
		t.Error("FromEntries accepted a negative grade")
	}
}

func TestMinMaxGrade(t *testing.T) {
	s := New()
	if s.MaxGrade() != 0 || s.MinGrade() != 0 {
		t.Error("empty set min/max should be 0")
	}
	s.MustInsert(1, 0.3)
	s.MustInsert(2, 0.8)
	if s.MaxGrade() != 0.8 {
		t.Errorf("MaxGrade = %v, want 0.8", s.MaxGrade())
	}
	if s.MinGrade() != 0.3 {
		t.Errorf("MinGrade = %v, want 0.3", s.MinGrade())
	}
}
