package gradedset

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mustList(t *testing.T, entries []Entry) *List {
	t.Helper()
	l, err := NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewListSortsCanonically(t *testing.T) {
	l := mustList(t, []Entry{{2, 0.1}, {7, 0.9}, {4, 0.5}, {1, 0.5}})
	want := []Entry{{7, 0.9}, {1, 0.5}, {4, 0.5}, {2, 0.1}}
	if l.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(want))
	}
	for i, w := range want {
		if got := l.Entry(i); got != w {
			t.Errorf("Entry(%d) = %v, want %v", i, got, w)
		}
	}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewListRejectsDuplicates(t *testing.T) {
	if _, err := NewList([]Entry{{1, 0.5}, {1, 0.7}}); err == nil {
		t.Error("NewList accepted a duplicate object")
	}
}

func TestNewListRejectsBadGrades(t *testing.T) {
	if _, err := NewList([]Entry{{1, 1.5}}); err == nil {
		t.Error("NewList accepted grade > 1")
	}
}

func TestNewListPresortedPreservesTieOrder(t *testing.T) {
	// Object 9 before object 1 at the same grade: a skeleton choice that
	// canonical sorting would reverse.
	in := []Entry{{9, 0.5}, {1, 0.5}, {3, 0.2}}
	l, err := NewListPresorted(in)
	if err != nil {
		t.Fatal(err)
	}
	if l.Entry(0).Object != 9 || l.Entry(1).Object != 1 {
		t.Errorf("tie order not preserved: %v, %v", l.Entry(0), l.Entry(1))
	}
}

func TestNewListPresortedRejectsUnsorted(t *testing.T) {
	if _, err := NewListPresorted([]Entry{{1, 0.2}, {2, 0.5}}); err == nil {
		t.Error("NewListPresorted accepted ascending grades")
	}
}

func TestRandomAccess(t *testing.T) {
	l := mustList(t, []Entry{{10, 0.3}, {20, 0.6}})
	g, err := l.Grade(20)
	if err != nil || g != 0.6 {
		t.Errorf("Grade(20) = %v, %v; want 0.6, nil", g, err)
	}
	if _, err := l.Grade(99); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Grade(99) error = %v, want ErrUnknownObject", err)
	}
}

func TestRank(t *testing.T) {
	l := mustList(t, []Entry{{10, 0.3}, {20, 0.6}})
	if l.Rank(20) != 0 || l.Rank(10) != 1 {
		t.Errorf("Rank(20)=%d Rank(10)=%d, want 0, 1", l.Rank(20), l.Rank(10))
	}
	if l.Rank(99) != -1 {
		t.Errorf("Rank(absent) = %d, want -1", l.Rank(99))
	}
}

func TestPrefixClamping(t *testing.T) {
	l := mustList(t, []Entry{{1, 0.9}, {2, 0.5}, {3, 0.1}})
	if got := l.Prefix(2); len(got) != 2 || got[0].Object != 1 {
		t.Errorf("Prefix(2) = %v", got)
	}
	if got := l.Prefix(10); len(got) != 3 {
		t.Errorf("Prefix(10) len = %d, want 3", len(got))
	}
	if got := l.Prefix(-1); len(got) != 0 {
		t.Errorf("Prefix(-1) len = %d, want 0", len(got))
	}
}

func TestReversedComplementsAndReverses(t *testing.T) {
	l := mustList(t, []Entry{{1, 0.9}, {2, 0.5}, {3, 0.1}})
	r := l.Reversed()
	if err := r.Validate(); err != nil {
		t.Fatalf("Reversed().Validate: %v", err)
	}
	// Best of r must be worst of l with complemented grade.
	if got := r.Entry(0); got.Object != 3 || got.Grade != 0.9 {
		t.Errorf("Reversed Entry(0) = %v, want (3, 0.9)", got)
	}
	if got := r.Entry(2); got.Object != 1 {
		t.Errorf("Reversed Entry(2).Object = %d, want 1", got.Object)
	}
	g, err := r.Grade(2)
	if err != nil || g != 0.5 {
		t.Errorf("Reversed Grade(2) = %v, %v", g, err)
	}
}

// Property: for random lists, Reversed twice is the identity (entries and
// order), since grades complement twice and order reverses twice.
func TestReversedInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 1 + rng.IntN(40)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Object: i, Grade: rng.Float64()}
		}
		l, err := NewList(entries)
		if err != nil {
			return false
		}
		rr := l.Reversed().Reversed()
		if rr.Len() != l.Len() {
			return false
		}
		for i := 0; i < l.Len(); i++ {
			a, b := l.Entry(i), rr.Entry(i)
			if a.Object != b.Object {
				return false
			}
			d := a.Grade - b.Grade
			if d < -1e-12 || d > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromGradedSetRoundTrip(t *testing.T) {
	s := New()
	s.MustInsert(1, 0.4)
	s.MustInsert(2, 0.6)
	l := FromGradedSet(s)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if !l.GradedSet().Equal(s) {
		t.Error("GradedSet -> List -> GradedSet is not the identity")
	}
}

func TestEntriesSorted(t *testing.T) {
	if !EntriesSorted([]Entry{{1, 0.9}, {2, 0.9}, {3, 0.2}}) {
		t.Error("EntriesSorted rejected sorted entries")
	}
	if EntriesSorted([]Entry{{1, 0.1}, {2, 0.9}}) {
		t.Error("EntriesSorted accepted unsorted entries")
	}
	if !EntriesSorted(nil) {
		t.Error("EntriesSorted(nil) should be true")
	}
}
