package gradedset

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Entry is one element of a graded set: an object together with its grade.
type Entry struct {
	Object int
	Grade  float64
}

// String renders the entry as "(object, grade)".
func (e Entry) String() string {
	return fmt.Sprintf("(%d, %.4f)", e.Object, e.Grade)
}

// ErrBadGrade reports a grade outside the closed interval [0, 1].
var ErrBadGrade = errors.New("gradedset: grade outside [0, 1]")

// ValidGrade reports whether g is a legal grade: a real number in [0, 1].
// NaN and infinities are rejected.
func ValidGrade(g float64) bool {
	return !math.IsNaN(g) && g >= 0 && g <= 1
}

// ClampGrade forces g into [0, 1]. NaN clamps to 0.
func ClampGrade(g float64) float64 {
	if math.IsNaN(g) || g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// CheckGrade returns ErrBadGrade (wrapped with the offending value) if g is
// not a legal grade.
func CheckGrade(g float64) error {
	if !ValidGrade(g) {
		return fmt.Errorf("%w: %v", ErrBadGrade, g)
	}
	return nil
}

// GradedSet is a fuzzy set: a mapping from objects to grades in [0, 1].
// Objects absent from the map implicitly have grade 0, matching the
// convention of Section 2 (a false traditional predicate grades 0).
//
// The zero value is not usable; call New or NewWithCapacity.
type GradedSet struct {
	grades map[int]float64
}

// New returns an empty graded set.
func New() *GradedSet {
	return &GradedSet{grades: make(map[int]float64)}
}

// NewWithCapacity returns an empty graded set with capacity hint n.
func NewWithCapacity(n int) *GradedSet {
	return &GradedSet{grades: make(map[int]float64, n)}
}

// FromEntries builds a graded set from entries. Later duplicates of an
// object overwrite earlier ones. It returns an error if any grade is
// invalid.
func FromEntries(entries []Entry) (*GradedSet, error) {
	s := NewWithCapacity(len(entries))
	for _, e := range entries {
		if err := s.Insert(e.Object, e.Grade); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Insert sets the grade of obj, replacing any previous grade. It rejects
// invalid grades.
func (s *GradedSet) Insert(obj int, grade float64) error {
	if err := CheckGrade(grade); err != nil {
		return fmt.Errorf("object %d: %w", obj, err)
	}
	s.grades[obj] = grade
	return nil
}

// MustInsert is Insert for grades known to be valid; it panics otherwise.
func (s *GradedSet) MustInsert(obj int, grade float64) {
	if err := s.Insert(obj, grade); err != nil {
		panic(err)
	}
}

// Delete removes obj from the explicit support (its grade reverts to 0).
func (s *GradedSet) Delete(obj int) {
	delete(s.grades, obj)
}

// Grade returns the grade of obj and whether it is explicitly present.
// Absent objects have grade 0.
func (s *GradedSet) Grade(obj int) (float64, bool) {
	g, ok := s.grades[obj]
	return g, ok
}

// GradeOrZero returns the grade of obj, defaulting to 0 when absent.
func (s *GradedSet) GradeOrZero(obj int) float64 {
	return s.grades[obj]
}

// Contains reports whether obj is explicitly present.
func (s *GradedSet) Contains(obj int) bool {
	_, ok := s.grades[obj]
	return ok
}

// Len returns the number of explicitly graded objects.
func (s *GradedSet) Len() int { return len(s.grades) }

// Objects returns the explicitly graded objects in ascending object order.
func (s *GradedSet) Objects() []int {
	objs := make([]int, 0, len(s.grades))
	for obj := range s.grades {
		objs = append(objs, obj)
	}
	sort.Ints(objs)
	return objs
}

// Support returns the objects whose grade is strictly positive, in
// ascending object order. This is the "crisp" reading of the fuzzy set.
func (s *GradedSet) Support() []int {
	objs := make([]int, 0, len(s.grades))
	for obj, g := range s.grades {
		if g > 0 {
			objs = append(objs, obj)
		}
	}
	sort.Ints(objs)
	return objs
}

// Entries returns all entries sorted by descending grade, breaking ties by
// ascending object id so the result is deterministic.
func (s *GradedSet) Entries() []Entry {
	entries := make([]Entry, 0, len(s.grades))
	for obj, g := range s.grades {
		entries = append(entries, Entry{Object: obj, Grade: g})
	}
	SortEntries(entries)
	return entries
}

// Clone returns a deep copy.
func (s *GradedSet) Clone() *GradedSet {
	c := NewWithCapacity(len(s.grades))
	for obj, g := range s.grades {
		c.grades[obj] = g
	}
	return c
}

// Equal reports whether two graded sets have identical explicit contents.
func (s *GradedSet) Equal(t *GradedSet) bool {
	if len(s.grades) != len(t.grades) {
		return false
	}
	for obj, g := range s.grades {
		h, ok := t.grades[obj]
		if !ok || g != h {
			return false
		}
	}
	return true
}

// MaxGrade returns the largest grade in the set, or 0 for an empty set.
func (s *GradedSet) MaxGrade() float64 {
	max := 0.0
	for _, g := range s.grades {
		if g > max {
			max = g
		}
	}
	return max
}

// MinGrade returns the smallest explicit grade in the set, or 0 for an
// empty set.
func (s *GradedSet) MinGrade() float64 {
	first := true
	min := 0.0
	for _, g := range s.grades {
		if first || g < min {
			min = g
			first = false
		}
	}
	return min
}

// Combine builds a new graded set over the union of explicit supports of
// the inputs, grading each object by f applied to the per-input grades
// (absent objects contribute grade 0). It is the generic engine behind
// fuzzy union, intersection, and any other pointwise aggregation.
func Combine(f func(grades []float64) float64, sets ...*GradedSet) *GradedSet {
	out := New()
	seen := make(map[int]bool)
	buf := make([]float64, len(sets))
	for _, s := range sets {
		for obj := range s.grades {
			if seen[obj] {
				continue
			}
			seen[obj] = true
			for i, t := range sets {
				buf[i] = t.GradeOrZero(obj)
			}
			out.grades[obj] = ClampGrade(f(buf))
		}
	}
	return out
}

// Intersect returns the standard fuzzy intersection (pointwise min) of the
// inputs, per Zadeh's conjunction rule.
func Intersect(sets ...*GradedSet) *GradedSet {
	return Combine(func(gs []float64) float64 {
		min := 1.0
		for _, g := range gs {
			if g < min {
				min = g
			}
		}
		return min
	}, sets...)
}

// Union returns the standard fuzzy union (pointwise max) of the inputs,
// per Zadeh's disjunction rule.
func Union(sets ...*GradedSet) *GradedSet {
	return Combine(func(gs []float64) float64 {
		max := 0.0
		for _, g := range gs {
			if g > max {
				max = g
			}
		}
		return max
	}, sets...)
}

// Complement returns the standard fuzzy negation (1 − g) of s over the
// universe [0, n). Every object of the universe appears in the result.
func Complement(s *GradedSet, n int) *GradedSet {
	out := NewWithCapacity(n)
	for obj := 0; obj < n; obj++ {
		out.grades[obj] = 1 - s.GradeOrZero(obj)
	}
	return out
}

// SortEntries sorts entries in place by descending grade, then ascending
// object id. This is the canonical "sorted list" order of the paper with a
// deterministic tie-break.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Grade != entries[j].Grade {
			return entries[i].Grade > entries[j].Grade
		}
		return entries[i].Object < entries[j].Object
	})
}

// EntriesSorted reports whether entries are in descending-grade order
// (ties in any order).
func EntriesSorted(entries []Entry) bool {
	for i := 1; i < len(entries); i++ {
		if entries[i].Grade > entries[i-1].Grade {
			return false
		}
	}
	return true
}
