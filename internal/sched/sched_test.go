package sched

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced (and rewindable) clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTokenBucketZeroRate pins the zero-rate edge: the bucket is a
// fixed pool — the initial burst admits, then nothing refills and
// reserve fails forever; only settlement credits revive it.
func TestTokenBucketZeroRate(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(0, 100, clk.now)
	if !b.reserve(80) {
		t.Fatal("initial burst should cover the first reserve")
	}
	clk.advance(time.Hour)
	if b.reserve(80) {
		t.Fatal("zero rate must never refill: second reserve should fail")
	}
	if eta := b.eta(80); eta >= 0 {
		t.Fatalf("eta under zero rate should be -1 (never), got %v", eta)
	}
	// A settlement credit (the query spent less than reserved) revives it.
	b.settle(80, 10)
	if !b.reserve(80) {
		t.Fatal("settlement credit should make the reserve pass again")
	}
}

// TestTokenBucketBurstBelowQueryCost pins the full-bucket allowance:
// a tenant whose burst is smaller than one query's estimate still
// admits exactly one query from a full bucket (overdraft), and the
// overdraft must repay from refill before the next admission.
func TestTokenBucketBurstBelowQueryCost(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(50, 100, clk.now) // burst 100 < one query's 300
	if !b.reserve(300) {
		t.Fatal("a FULL bucket must admit one query even when est > burst")
	}
	if lvl := b.level(); lvl != -200 {
		t.Fatalf("overdraft level = %v, want -200", lvl)
	}
	if b.reserve(300) {
		t.Fatal("a second oversized reserve must wait for the overdraft to repay")
	}
	// -200 → full 100 takes 300 units at 50/s = 6s; eta targets the
	// capacity (the full-bucket allowance), not the estimate.
	if eta := b.eta(300); math.Abs(eta.Seconds()-6) > 1e-9 {
		t.Fatalf("eta = %v, want 6s", eta)
	}
	clk.advance(6 * time.Second)
	if !b.reserve(300) {
		t.Fatal("after refill to capacity the oversized reserve should pass again")
	}
}

// TestTokenBucketClockRewind pins refill across clock rewinds: a
// backwards step never destroys tokens, and refill resumes from the
// rewound instant instead of stalling until the clock catches up.
func TestTokenBucketClockRewind(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(100, 1000, clk.now)
	if !b.reserve(600) {
		t.Fatal("initial reserve failed")
	}
	before := b.level() // 400
	clk.advance(-time.Hour)
	if got := b.level(); got != before {
		t.Fatalf("rewind changed the level: %v -> %v", before, got)
	}
	// Refill must resume from the REWOUND time: 2s at 100/s = +200.
	clk.advance(2 * time.Second)
	if got := b.level(); got != before+200 {
		t.Fatalf("refill after rewind = %v, want %v", got, before+200)
	}
}

// TestTokenBucketSettleGreaterThanReserve pins the overrun direction of
// reserve-then-settle: a query that spent more than its estimate drives
// the bucket negative by exactly the difference, and refill repays it.
func TestTokenBucketSettleGreaterThanReserve(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(100, 500, clk.now)
	if !b.reserve(100) {
		t.Fatal("reserve failed")
	}
	b.settle(100, 900) // spent 9x the estimate
	if lvl := b.level(); lvl != -400 {
		t.Fatalf("level after overrun settle = %v, want -400", lvl)
	}
	if b.reserve(100) {
		t.Fatal("reserve must fail while the overdraft is unpaid")
	}
	clk.advance(5 * time.Second) // +500 → level 100
	if !b.reserve(100) {
		t.Fatal("refill should repay the overdraft and admit again")
	}
}

// TestTokenBucketSettleCreditClamp pins the upper clamp: a settlement
// credit never pushes the level above capacity.
func TestTokenBucketSettleCreditClamp(t *testing.T) {
	clk := newFakeClock()
	b := newBucket(1000, 100, clk.now)
	if !b.reserve(50) {
		t.Fatal("reserve failed")
	}
	clk.advance(time.Second) // refill back to capacity
	b.settle(50, 0)          // credit the whole reserve back
	if lvl := b.level(); lvl != 100 {
		t.Fatalf("level = %v, want clamped capacity 100", lvl)
	}
}

// TestBucketConcurrentDrain is the -race test of concurrent tenants
// draining one bucket: many goroutines hammer reserve/settle on a
// shared bucket; every settled reserve nets a debit of exactly its
// actual spend, so the final level must match the ledger precisely.
func TestBucketConcurrentDrain(t *testing.T) {
	clk := newFakeClock() // frozen clock: no refill noise in the balance
	b := newBucket(0, 1<<20, clk.now)
	start := b.level()
	var wg sync.WaitGroup
	var spent atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.reserve(3) {
					b.settle(3, 3)
					spent.Add(3)
				}
				b.eta(3)
				b.level()
			}
		}()
	}
	wg.Wait()
	if got, want := b.level(), start-float64(spent.Load()); got != want {
		t.Fatalf("level after drain = %v, want %v (start %v minus %d spent)", got, want, start, spent.Load())
	}
}

// TestSchedulerConcurrentTenantsOneBucket races many goroutines of the
// SAME tenant through the full Acquire/Settle path (one shared bucket
// behind the scheduler), under -race in CI. Every admission must be
// settled and the inflight gauge must return to zero.
func TestSchedulerConcurrentTenantsOneBucket(t *testing.T) {
	s := New(Config{Rate: 1e9, Burst: 1e9, MaxConcurrent: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	var admitted int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				grant, err := s.Acquire(ctx, "shared")
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if w := grant.Width(); w < 1 {
					t.Errorf("grant width = %d, want >= 1", w)
				}
				mu.Lock()
				admitted++
				mu.Unlock()
				grant.Settle(10)
				grant.Settle(10) // idempotent
			}
		}()
	}
	wg.Wait()
	if admitted != 1600 {
		t.Fatalf("admitted %d, want 1600", admitted)
	}
	if n := s.Inflight(); n != 0 {
		t.Fatalf("inflight after drain = %d, want 0", n)
	}
	st := s.Stats()
	if len(st) != 1 || st[0].Admitted != 1600 || st[0].SettledCost != 16000 {
		t.Fatalf("stats = %+v, want one tenant with 1600 admissions, 16000 settled", st)
	}
}

// TestSchedulerShedsOnFullQueue pins queue-depth shedding: with the
// single concurrency slot held and MaxQueue=2, the third waiter sheds
// with a typed *OverloadError carrying the tenant, depth, and a
// positive RetryAfter.
func TestSchedulerShedsOnFullQueue(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 2})
	ctx := context.Background()
	hold, err := s.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Two waiters park (within MaxQueue).
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := s.Acquire(ctx, "t")
			if err != nil {
				t.Errorf("parked waiter: %v", err)
				return
			}
			<-release
			g.Settle(0)
		}()
	}
	// Wait until both are queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if len(st) == 1 && st[0].Queued == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	_, err = s.Acquire(ctx, "t")
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("third waiter: got %v, want *OverloadError", err)
	}
	if oe.Tenant != "t" || oe.QueueDepth != 2 || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v, want tenant t, depth 2, positive RetryAfter", oe)
	}
	if !oe.Transient() {
		t.Fatal("OverloadError must be transient")
	}
	close(release)
	hold.Settle(0)
	wg.Wait()
}

// TestSchedulerShedsHopelessDeadline pins deadline-aware shedding: a
// request whose token-refill ETA provably overruns its context
// deadline is rejected up front with *OverloadError (RetryAfter ≈ the
// ETA), not parked until the deadline fires.
func TestSchedulerShedsHopelessDeadline(t *testing.T) {
	s := New(Config{Rate: 10, Burst: 100, DefaultEstimate: 100})
	ctx := context.Background()
	g, err := s.Acquire(ctx, "t") // drains the burst
	if err != nil {
		t.Fatal(err)
	}
	g.Settle(100)
	// Refilling 100 units at 10/s takes 10s; a 50ms deadline is hopeless.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.Acquire(dctx, "t")
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want *OverloadError", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shed took %v: should reject up front, not park out the deadline", elapsed)
	}
	if oe.RetryAfter < 5*time.Second {
		t.Fatalf("RetryAfter = %v, want ≈10s refill ETA", oe.RetryAfter)
	}
}

// TestSchedulerZeroRateShedsNotParks pins the hopeless-bucket case: a
// zero-rate tenant whose pool is drained, with nothing in flight to
// settle credits back, sheds immediately instead of parking forever —
// even without a deadline.
func TestSchedulerZeroRateShedsNotParks(t *testing.T) {
	s := New(Config{Tenants: map[string]TenantConfig{
		"broke": {Burst: 10}, // zero rate: a fixed pool of 10
	}, DefaultEstimate: 50})
	ctx := context.Background()
	// The full-bucket allowance admits one oversized query; settle at
	// its estimate so no credit flows back.
	g, err := s.Acquire(ctx, "broke")
	if err != nil {
		t.Fatal(err)
	}
	g.Settle(50)
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "broke")
		done <- err
	}()
	select {
	case err := <-done:
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("got %v, want *OverloadError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("zero-rate drained tenant parked forever instead of shedding")
	}
}

// TestSchedulerWeightedFairness pins the stride-scheduling contract:
// two backlogged tenants at weights 2:1 over one concurrency slot are
// admitted in a 2:1 ratio.
func TestSchedulerWeightedFairness(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Tenants: map[string]TenantConfig{
		"heavy": {Weight: 2},
		"light": {Weight: 1},
	}})
	ctx := context.Background()
	const perTenant = 60
	var wg sync.WaitGroup
	for _, name := range []string{"heavy", "light"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				g, err := s.Acquire(ctx, name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				g.Settle(100) // equal per-query cost
			}
		}(name)
	}
	wg.Wait()
	var heavy, light float64
	for _, st := range s.Stats() {
		switch st.Tenant {
		case "heavy":
			heavy = st.SettledCost
		case "light":
			light = st.SettledCost
		}
	}
	if heavy != 100*perTenant || light != 100*perTenant {
		t.Fatalf("both tenants should finish their full load: heavy=%v light=%v", heavy, light)
	}
}

// TestSchedulerTokenStarvedTenantDoesNotBlockOthers pins the
// eligibility gate in the stride queue: a tenant with no tokens parked
// at the head must not starve a tenant that has them.
func TestSchedulerTokenStarvedTenantDoesNotBlockOthers(t *testing.T) {
	s := New(Config{
		DefaultEstimate: 10,
		Tenants: map[string]TenantConfig{
			"broke": {Burst: 10}, // zero rate, one admission then dry
			"rich":  {Rate: 1e9, Burst: 1e9},
		},
	})
	ctx := context.Background()
	g, err := s.Acquire(ctx, "broke")
	if err != nil {
		t.Fatal(err)
	}
	// Keep the broke tenant's query in flight so its next Acquire
	// parks (credits might still come back) and holds the queue head.
	brokeWaiting := make(chan struct{})
	go func() {
		close(brokeWaiting)
		g2, err := s.Acquire(ctx, "broke")
		if err == nil {
			g2.Settle(0)
		}
	}()
	<-brokeWaiting
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			gr, err := s.Acquire(ctx, "rich")
			if err != nil {
				t.Errorf("rich: %v", err)
				break
			}
			gr.Settle(10)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("token-starved tenant at the queue head starved an eligible tenant")
	}
	g.Settle(0) // credit back; lets the parked broke waiter finish
}

// TestSchedulerNilIsNoOp pins the idle contract: a nil scheduler
// admits with a nil grant and every method no-ops.
func TestSchedulerNilIsNoOp(t *testing.T) {
	var s *Scheduler
	g, err := s.Acquire(context.Background(), "any")
	if err != nil || g != nil {
		t.Fatalf("nil scheduler Acquire = (%v, %v), want (nil, nil)", g, err)
	}
	g.Settle(100) // nil grant: must not panic
	if g.Width() != 0 {
		t.Fatal("nil grant width should be 0")
	}
	if s.Stats() != nil || s.Inflight() != 0 {
		t.Fatal("nil scheduler stats should be empty")
	}
}

// TestSchedulerCancelledContext pins cancellation: a parked acquirer
// returns ctx.Err(), never a grant, and leaves no queued residue.
func TestSchedulerCancelledContext(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	hold, err := s.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "t")
		done <- err
	}()
	// Let it park, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); len(st) == 1 && st[0].Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := s.Stats(); st[0].Queued != 0 {
		t.Fatalf("queued residue after cancellation: %+v", st)
	}
	hold.Settle(0)
}

// TestGrantWidthDividesEnvelope pins the width governor: grants divide
// MaxWidth by the in-flight count, floored at 1.
func TestGrantWidthDividesEnvelope(t *testing.T) {
	s := New(Config{MaxWidth: 8})
	ctx := context.Background()
	g1, _ := s.Acquire(ctx, "t")
	if g1.Width() != 8 {
		t.Fatalf("first grant width = %d, want 8", g1.Width())
	}
	g2, _ := s.Acquire(ctx, "t")
	if g2.Width() != 4 {
		t.Fatalf("second grant width = %d, want 4", g2.Width())
	}
	var grants []*Grant
	for i := 0; i < 20; i++ {
		g, err := s.Acquire(ctx, "t")
		if err != nil {
			t.Fatal(err)
		}
		if g.Width() < 1 {
			t.Fatalf("width fell below 1: %d", g.Width())
		}
		grants = append(grants, g)
	}
	g1.Settle(0)
	g2.Settle(0)
	for _, g := range grants {
		g.Settle(0)
	}
}
