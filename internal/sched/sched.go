package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config fields left at their zero value.
const (
	// DefaultMaxQueue is the per-tenant waiting-request bound.
	DefaultMaxQueue = 256
	// DefaultEstimate is the cost-unit reserve for a tenant with no
	// settled history (roughly one small top-k evaluation).
	DefaultEstimate = 256
	// DefaultMaxWidth is the global prefetch/gather width envelope,
	// matching the pipelined executor's default gather width.
	DefaultMaxWidth = 64
	// minRetryAfter floors the RetryAfter advice carried by an
	// OverloadError, so shed callers never busy-spin on a zero.
	minRetryAfter = time.Millisecond
	// defaultRetryAfter is the advice when no refill ETA exists (zero
	// rate: only settlement credits can revive the tenant).
	defaultRetryAfter = time.Second
	// maxParkInterval bounds one uninterrupted wait, so a parked
	// acquirer re-evaluates shedding conditions periodically even when
	// nothing settles.
	maxParkInterval = 250 * time.Millisecond
)

// TenantConfig overrides the scheduler-wide defaults for one tenant.
type TenantConfig struct {
	// Weight is the tenant's fair-share weight (≤ 0 means 1): over any
	// saturated interval, backlogged tenants receive access-cost
	// service proportional to their weights.
	Weight float64
	// Rate overrides Config.Rate for this tenant (> 0).
	Rate float64
	// Burst overrides Config.Burst for this tenant (> 0).
	Burst float64
}

// Config configures a Scheduler. The zero value of each field selects
// the documented default; a wholly zero Config admits everything
// unmetered (no buckets, no concurrency bound) but still single-files
// admissions through the fair queue.
type Config struct {
	// Rate is the default per-tenant token refill in cost units per
	// second. Rate ≤ 0 with Burst ≤ 0 disables token metering for
	// tenants without their own TenantConfig rates.
	Rate float64
	// Burst is the default bucket capacity (and initial fill) in cost
	// units; ≤ 0 with a positive Rate defaults to one second of refill
	// or DefaultEstimate, whichever is larger.
	Burst float64
	// MaxConcurrent bounds the queries evaluating at once across all
	// tenants; ≤ 0 means unbounded.
	MaxConcurrent int
	// MaxQueue bounds one tenant's waiting requests; a waiter beyond
	// it sheds with *OverloadError. ≤ 0 means DefaultMaxQueue.
	MaxQueue int
	// MaxWidth is the global prefetch/gather width envelope divided
	// among in-flight queries (each grant's Width is MaxWidth/inflight,
	// floored at 1). ≤ 0 means DefaultMaxWidth.
	MaxWidth int
	// DefaultEstimate is the reserve for a query whose tenant has no
	// settled cost history; ≤ 0 means the DefaultEstimate constant.
	DefaultEstimate float64
	// Tenants pre-registers per-tenant weights and bucket overrides.
	// Tenants not listed are admitted with weight 1 and the default
	// rate/burst on first arrival.
	Tenants map[string]TenantConfig
}

// OverloadError reports a request the scheduler shed: the tenant's
// queue was full, the request's deadline provably could not be met, or
// its bucket could never cover the reserve. It is transient over the
// wire (a retry AFTER the advised interval may succeed), and the wire
// layer maps it to HTTP 429 with a Retry-After header.
type OverloadError struct {
	// Tenant is the tenant whose request was shed.
	Tenant string
	// QueueDepth is how many requests the tenant had waiting.
	QueueDepth int
	// RetryAfter advises how long to wait before retrying.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("sched: tenant %q overloaded (queue depth %d): retry after %v",
		e.Tenant, e.QueueDepth, e.RetryAfter)
}

// Transient implements the retry-decision capability consulted by
// subsys.Resilient: shedding is momentary by construction.
func (e *OverloadError) Transient() bool { return true }

// tenant is one tenant's scheduling state.
type tenant struct {
	name   string
	weight float64
	bucket *bucket // nil: unmetered (no rate, no burst configured)
	pass   float64 // stride-scheduling virtual pass
	queued int     // acquirers currently waiting
	est    float64 // EWMA of settled costs; 0 = no history yet

	admitted int64
	shed     int64
	settled  float64 // total settled cost (fairness observation)
}

// TenantStats is one tenant's cumulative admission counters.
type TenantStats struct {
	// Tenant names the tenant.
	Tenant string
	// Admitted counts admitted queries.
	Admitted int64
	// Shed counts requests rejected with *OverloadError.
	Shed int64
	// SettledCost is the total access-cost spend settled against the
	// tenant's bucket — the fairness measure.
	SettledCost float64
	// Queued is the current waiting-request depth.
	Queued int
}

// Scheduler is the admission-control layer: Acquire before evaluating,
// Settle the returned Grant with the exact Report cost after. See the
// package documentation for the currency, fairness, and shedding
// contracts. Safe for concurrent use; a nil *Scheduler admits
// everything (every method no-ops).
type Scheduler struct {
	cfg Config
	now func() time.Time // test hook

	mu       sync.Mutex
	gen      chan struct{} // closed and replaced on every state change
	tenants  map[string]*tenant
	inflight int
	vtime    float64 // virtual time: pass of the last admission
	avgLat   float64 // EWMA seconds per admitted query (queue-wait estimate)
}

// New builds a scheduler; see Config for the knobs and their defaults.
func New(cfg Config) *Scheduler {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.MaxWidth <= 0 {
		cfg.MaxWidth = DefaultMaxWidth
	}
	if cfg.DefaultEstimate <= 0 {
		cfg.DefaultEstimate = DefaultEstimate
	}
	s := &Scheduler{
		cfg:     cfg,
		now:     time.Now,
		gen:     make(chan struct{}),
		tenants: make(map[string]*tenant),
	}
	for name := range cfg.Tenants {
		s.tenantLocked(name)
	}
	return s
}

// tenantLocked finds or creates the named tenant's state under s.mu.
func (s *Scheduler) tenantLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	tc := s.cfg.Tenants[name]
	t := &tenant{name: name, weight: tc.Weight, pass: s.vtime}
	if t.weight <= 0 {
		t.weight = 1
	}
	rate, burst := s.cfg.Rate, s.cfg.Burst
	if tc.Rate > 0 {
		rate = tc.Rate
	}
	if tc.Burst > 0 {
		burst = tc.Burst
	}
	if rate > 0 || burst > 0 {
		if burst <= 0 {
			burst = rate
			if burst < s.cfg.DefaultEstimate {
				burst = s.cfg.DefaultEstimate
			}
		}
		t.bucket = newBucket(rate, burst, s.now)
	}
	s.tenants[name] = t
	return t
}

// wake releases every parked acquirer to re-evaluate admission.
func (s *Scheduler) wake() {
	s.mu.Lock()
	close(s.gen)
	s.gen = make(chan struct{})
	s.mu.Unlock()
}

// estimateLocked is the reserve for one of t's queries: the tenant's
// settled-cost EWMA, the configured default before any history.
func (s *Scheduler) estimateLocked(t *tenant) float64 {
	if t.est > 0 {
		if t.est < 1 {
			return 1
		}
		return t.est
	}
	return s.cfg.DefaultEstimate
}

// eligibleLocked reports whether tenant o's own bucket could admit a
// query right now — the gate that keeps a token-starved tenant from
// holding the stride queue's head against tenants that have tokens.
func (s *Scheduler) eligibleLocked(o *tenant) bool {
	if o.queued == 0 {
		return false
	}
	return o.bucket == nil || o.bucket.eta(s.estimateLocked(o)) == 0
}

// turnLocked reports whether t holds the smallest pass among tenants
// with ELIGIBLE waiters (ties broken by name, for determinism); t's
// own eligibility is the caller's reserve call.
func (s *Scheduler) turnLocked(t *tenant) bool {
	for _, o := range s.tenants {
		if o == t || !s.eligibleLocked(o) {
			continue
		}
		if o.pass < t.pass || (o.pass == t.pass && o.name < t.name) {
			return false
		}
	}
	return true
}

// waitEstimateLocked predicts how long a query of tenant t must wait
// before admission: the bucket's refill ETA plus the concurrency
// queue-wait (waiters ahead over MaxConcurrent slots at the recent
// average service time). A negative return means refill alone can
// never cover the reserve (zero rate).
func (s *Scheduler) waitEstimateLocked(t *tenant, est float64) time.Duration {
	var wait time.Duration
	if t.bucket != nil {
		eta := t.bucket.eta(est)
		if eta < 0 {
			return -1
		}
		wait = eta
	}
	if s.cfg.MaxConcurrent > 0 && s.inflight >= s.cfg.MaxConcurrent && s.avgLat > 0 {
		waiting := 0
		for _, o := range s.tenants {
			waiting += o.queued
		}
		waves := 1 + waiting/s.cfg.MaxConcurrent
		qwait := time.Duration(float64(waves) * s.avgLat * float64(time.Second))
		if qwait > wait {
			wait = qwait
		}
	}
	return wait
}

// shedLocked records the rejection and builds the typed error.
// Callers drop s.mu and wake after.
func (s *Scheduler) shedLocked(t *tenant, retry time.Duration) *OverloadError {
	if retry < 0 {
		retry = defaultRetryAfter
	}
	if retry < minRetryAfter {
		retry = minRetryAfter
	}
	t.queued--
	t.shed++
	return &OverloadError{Tenant: t.name, QueueDepth: t.queued, RetryAfter: retry}
}

// Grant is one admitted query's reservation: the engine evaluates
// under the granted Width and must Settle exactly once with the
// query's actual weighted access cost (0 for a cache hit or a query
// that never ran). Settle is idempotent and nil-safe, so a nil
// *Scheduler path settles a nil grant harmlessly.
type Grant struct {
	s       *Scheduler
	t       *tenant
	est     float64
	width   int
	start   time.Time
	settled atomic.Bool
}

// Width is the prefetch/gather width envelope granted to this query
// (the global MaxWidth divided by the queries in flight at admission,
// floored at 1). The engine clamps its executor fan-out to it.
func (g *Grant) Width() int {
	if g == nil {
		return 0
	}
	return g.width
}

// Settle replaces the admission reserve with the actual weighted
// access cost, releases the concurrency slot, and feeds the tenant's
// cost estimate. Idempotent; a nil grant no-ops.
func (g *Grant) Settle(actual float64) {
	if g == nil || !g.settled.CompareAndSwap(false, true) {
		return
	}
	s := g.s
	s.mu.Lock()
	if g.t.bucket != nil {
		g.t.bucket.settle(g.est, actual)
	}
	const alpha = 0.25 // EWMA weight of the newest settled cost
	if g.t.est == 0 {
		g.t.est = actual
	} else {
		g.t.est = (1-alpha)*g.t.est + alpha*actual
	}
	g.t.settled += actual
	elapsed := s.now().Sub(g.start).Seconds()
	if s.avgLat == 0 {
		s.avgLat = elapsed
	} else {
		s.avgLat = 0.8*s.avgLat + 0.2*elapsed
	}
	s.inflight--
	s.mu.Unlock()
	s.wake()
}

// Acquire admits one query for the named tenant, blocking until the
// weighted-fair queue, the tenant's token bucket, and the global
// concurrency governor all clear it — or shedding it with a typed
// *OverloadError when its deadline provably cannot be met, the
// tenant's queue is full, or its bucket can never cover the reserve.
// Context cancellation returns ctx.Err(). A nil *Scheduler admits
// immediately with a nil Grant.
func (s *Scheduler) Acquire(ctx context.Context, tenantName string) (*Grant, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	t := s.tenantLocked(tenantName)
	est := s.estimateLocked(t)
	if t.queued == 0 && t.pass < s.vtime {
		// Re-entering after idling: resume at the virtual time, so
		// idleness banks no priority over backlogged tenants.
		t.pass = s.vtime
	}
	t.queued++
	for {
		if err := ctx.Err(); err != nil {
			t.queued--
			s.mu.Unlock()
			s.wake()
			return nil, err
		}
		admit := s.turnLocked(t) &&
			(s.cfg.MaxConcurrent <= 0 || s.inflight < s.cfg.MaxConcurrent) &&
			(t.bucket == nil || t.bucket.reserve(est))
		if admit {
			s.inflight++
			s.vtime = t.pass
			t.pass += est / t.weight
			t.queued--
			t.admitted++
			width := s.cfg.MaxWidth / s.inflight
			if width < 1 {
				width = 1
			}
			g := &Grant{s: s, t: t, est: est, width: width, start: s.now()}
			s.mu.Unlock()
			s.wake() // the min-pass frontier moved; let others re-check
			return g, nil
		}
		wait := s.waitEstimateLocked(t, est)
		if t.queued > s.cfg.MaxQueue {
			oe := s.shedLocked(t, wait)
			s.mu.Unlock()
			s.wake()
			return nil, oe
		}
		if dl, ok := ctx.Deadline(); ok && (wait < 0 || s.now().Add(wait).After(dl)) {
			oe := s.shedLocked(t, wait)
			s.mu.Unlock()
			s.wake()
			return nil, oe
		}
		if wait < 0 && s.inflight == 0 {
			// Zero refill, insufficient tokens, and nothing in flight
			// whose settlement could credit them back: this request can
			// never be admitted — shed now rather than park forever.
			oe := s.shedLocked(t, -1)
			s.mu.Unlock()
			s.wake()
			return nil, oe
		}
		park := maxParkInterval
		if wait > 0 && wait < park {
			park = wait
		}
		gen := s.gen
		s.mu.Unlock()
		timer := time.NewTimer(park)
		select {
		case <-gen:
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
		s.mu.Lock()
	}
}

// Stats reports every tenant's cumulative counters, sorted by name.
// Nil-safe.
func (s *Scheduler) Stats() []TenantStats {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantStats{
			Tenant: t.name, Admitted: t.admitted, Shed: t.shed,
			SettledCost: t.settled, Queued: t.queued,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Inflight reports the queries currently admitted and unsettled.
// Nil-safe.
func (s *Scheduler) Inflight() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}
