// Package sched is the admission-control layer between the engine and
// its callers: per-tenant token buckets denominated in Section 5
// access-cost units, weighted-fair admission across tenants, a global
// concurrency and prefetch-width governor, and deadline-aware load
// shedding with a typed overload error.
//
// # The currency: access-cost units
//
// The paper's Section 5 cost model — sorted accesses priced c₁, random
// accesses c₂, a query's middleware cost their weighted sum — is the
// resource the engine actually spends, so it is the currency the
// scheduler meters. A tenant's token bucket refills at Config.Rate
// cost units per second up to a Burst capacity; admission is
// reserve-then-settle: a query reserves its tenant's recent-cost
// estimate up front (so a tenant cannot launch an unbounded flight of
// queries against tokens it is about to lose), and when the evaluation
// finishes the reservation is settled against the exact cost the
// Report tallied — the difference is credited back, or debited further
// when the query overran its estimate (the bucket then runs a
// temporary overdraft that subsequent refill repays). A cache hit
// settles at zero: it consumed no source accesses, so it spends no
// tokens. One deliberate weakening keeps small tenants live: a FULL
// bucket always admits one query even when the estimate exceeds the
// burst capacity — otherwise a tenant whose burst is below a single
// query's cost could never run at all; the overdraft repays from
// refill as usual.
//
// # The fairness contract
//
// Admission across tenants with queued work is stride-scheduled: each
// tenant carries a virtual pass advanced by estimate/weight on every
// admission, and the waiter belonging to the smallest-pass tenant is
// admitted next (a tenant re-entering after idling resumes at the
// global virtual time, so idleness banks no priority). Over any
// saturated interval in which a set of tenants stays backlogged, each
// receives access-cost service proportional to its Weight — the
// property BenchmarkEngineThroughput_Saturated measures as a fairness
// index under 4× oversubscription.
//
// # The governor and load shedding
//
// Config.MaxConcurrent bounds the queries evaluating at once, and each
// admitted query is granted a prefetch/gather width of
// MaxWidth/inflight (floored at one): the engine clamps its pipelined
// gather fan-out, concurrent-executor width, and shard-worker count to
// the grant, so P shards × m lists × N callers never exceed one
// configured goroutine/buffer envelope no matter how many tenants are
// admitted.
//
// Work that cannot be served in time is rejected, not queued forever:
// a waiter sheds with a typed *OverloadError — carrying the tenant,
// its queue depth, and a RetryAfter advice — when its tenant's queue
// exceeds Config.MaxQueue, when its context deadline provably cannot
// be met (the token-refill ETA plus the concurrency queue-wait
// estimate overrun it), or when its bucket can never cover the
// reserve (zero refill) and nothing in flight could settle credits
// back. OverloadError implements the Transient capability, and the
// wire layer maps it to 429 with a Retry-After header, so resilient
// remote callers back off for exactly the advised interval instead of
// re-stampeding a shedding server.
//
// An engine without a scheduler (the default) has no admission layer
// at all: no metering, no reordering, no added synchronization — the
// Section 5 tallies and the result order of every existing path are
// untouched.
package sched
