package sched

import (
	"sync"
	"time"
)

// bucket is one tenant's token bucket, denominated in Section 5
// access-cost units. Tokens refill continuously at rate units/second
// up to capacity; reservations debit immediately and settlement
// adjusts the debit to the exact spend (possibly driving the level
// negative — an overdraft subsequent refill repays). A rate of zero
// never refills: the bucket is then a fixed pool replenished only by
// settlement credits. Safe for concurrent use.
type bucket struct {
	rate     float64 // units per second; 0 = no refill
	capacity float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

func newBucket(rate, capacity float64, now func() time.Time) *bucket {
	b := &bucket{rate: rate, capacity: capacity, now: now}
	b.tokens = capacity // initial burst: start full
	b.last = now()
	return b
}

// refillLocked advances the token level to the current time. A clock
// that runs backwards (an injected test clock; wall rewinds) never
// destroys tokens: the negative interval is discarded and refill
// resumes from the rewound instant.
func (b *bucket) refillLocked() {
	t := b.now()
	dt := t.Sub(b.last)
	b.last = t
	if dt <= 0 || b.rate <= 0 {
		return
	}
	b.tokens += dt.Seconds() * b.rate
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}

// need is the token level reserve(est) requires: the estimate, bounded
// by the capacity — a full bucket always admits one query, even when
// one query's estimate exceeds the whole burst (otherwise such a
// tenant could never run; the overdraft repays from refill).
func (b *bucket) need(est float64) float64 {
	if est > b.capacity {
		return b.capacity
	}
	return est
}

// reserve debits est tokens if the bucket covers need(est), reporting
// whether it did.
func (b *bucket) reserve(est float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < b.need(est) {
		return false
	}
	b.tokens -= est
	return true
}

// settle replaces a reservation's estimate with the actual spend:
// the difference est−actual is credited back (or debited further when
// the query overran), clamped above by capacity. The level may go
// negative; refill repays the overdraft before new reservations pass.
func (b *bucket) settle(est, actual float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens += est - actual
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}

// eta reports how long until reserve(est) could succeed: zero when it
// would succeed now, the refill time to cover the shortfall otherwise,
// and -1 when refill alone can never cover it (zero rate) — only
// settlement credits could.
func (b *bucket) eta(est float64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	short := b.need(est) - b.tokens
	if short <= 0 {
		return 0
	}
	if b.rate <= 0 {
		return -1
	}
	return time.Duration(short / b.rate * float64(time.Second))
}

// level reports the current token level (tests and stats).
func (b *bucket) level() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}
