package wire

import (
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
)

// Meta is the server's self-description, served at GET /v1/meta. Every
// list shares one object universe of N objects; Dense reports whether
// that universe is exactly {0,…,N−1} for every list, so clients can
// forward the flat-array fast path (subsys.UniverseHinter).
type Meta struct {
	// N is the universe size shared by every list.
	N int `json:"n"`
	// Dense reports a dense {0,…,N−1} universe on every list.
	Dense bool `json:"dense"`
	// Lists names the sorted lists the server exposes, in sorted order.
	Lists []string `json:"lists"`
	// Page is the server's per-response cap on Entries spans: a request
	// for more ranks than Page returns the first Page of them, and the
	// client continues from where the span ended.
	Page int `json:"page"`
	// Engine reports whether the server also mounts the query endpoints
	// (POST /v1/query, GET /v1/results).
	Engine bool `json:"engine,omitempty"`
}

// Fault is the error envelope used everywhere on the wire: inside a 200
// entries/grade response when the backing source itself failed
// (application-level fault alongside a possibly partial span), and as
// the whole body of a non-2xx response (protocol-level failure).
type Fault struct {
	// Message describes the failure.
	Message string `json:"error"`
	// Transient reports whether retrying the same request may succeed;
	// clients feed it to the resilience layer's retry decision.
	Transient bool `json:"transient"`
	// Cost, when present on a query error, is the partial Section 5
	// spend of the evaluation that failed (budget stops, cancellation).
	Cost *Cost `json:"cost,omitempty"`
	// RetryAfterMS, when present on an overload rejection (HTTP 429),
	// is the server's pacing advice in milliseconds: how long the
	// scheduler expects the tenant's token bucket or queue to need
	// before this request could be admitted. Clients honor it over
	// their own backoff schedule.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// EntriesRequest asks for sorted access: the entries at ranks [Lo, Hi)
// of the named list. POST /v1/entries.
type EntriesRequest struct {
	List string `json:"list"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// EntriesResponse carries the delivered span as parallel arrays
// (Objects[i] graded Grades[i] at rank Lo+i). The span may be shorter
// than requested — because the server pages long spans (continue from
// Lo+len) or because the backing source failed mid-span (Err is then
// set and the span is the longest prefix obtained, honoring the
// subsys.FallibleSource partial-span contract).
type EntriesResponse struct {
	Objects []int     `json:"objects"`
	Grades  []float64 `json:"grades"`
	Err     *Fault    `json:"err,omitempty"`
}

// entries converts the parallel arrays to graded entries.
func (r *EntriesResponse) entries() []gradedset.Entry {
	n := len(r.Objects)
	if len(r.Grades) < n {
		n = len(r.Grades)
	}
	out := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		out[i] = gradedset.Entry{Object: r.Objects[i], Grade: r.Grades[i]}
	}
	return out
}

// GradeRequest asks for random access: the grade of Object in the named
// list. POST /v1/grade.
type GradeRequest struct {
	List   string `json:"list"`
	Object int    `json:"object"`
}

// GradeResponse carries the grade, or the backing source's failure.
type GradeResponse struct {
	Grade float64 `json:"grade"`
	Err   *Fault  `json:"err,omitempty"`
}

// QueryRequest is one engine evaluation: POST /v1/query, and (flattened
// into URL parameters) GET /v1/results. Zero values mean the engine
// defaults; Prefetch is a pointer because depth 0 (adaptive) is
// meaningful and distinct from "no prefetch".
type QueryRequest struct {
	// Query in the engine's concrete syntax, e.g. `A1 = "*" AND A2 = "*"`.
	Query string `json:"query"`
	// K is the number of answers (TopN); 0 means the engine default.
	K int `json:"k,omitempty"`
	// Parallelism overlaps subsystem accesses (WithParallelism).
	Parallelism int `json:"parallelism,omitempty"`
	// Shards partitions the universe (WithShards); 0/1 means unsharded.
	Shards int `json:"shards,omitempty"`
	// ShardPlan selects the shard-boundary policy for sharded requests:
	// "even" (or empty) for equal-width ranges, "weighted" for
	// sketch-driven skew-aware cuts (WithShardPlan).
	ShardPlan string `json:"shard_plan,omitempty"`
	// Steal enables work stealing between shard workers
	// (WithWorkStealing).
	Steal bool `json:"steal,omitempty"`
	// Budget caps the weighted access cost (WithAccessBudget); 0 = none.
	Budget float64 `json:"budget,omitempty"`
	// Prefetch selects the pipelined executor with this readahead depth
	// (0 = adaptive); nil = off.
	Prefetch *int `json:"prefetch,omitempty"`
	// Degrade allows dropping up to this many permanently failed lists
	// (WithDegradedLists); 0 = fail fast.
	Degrade int `json:"degrade,omitempty"`
	// Tenant names the admission-control tenant this request bills to
	// on a scheduled server (WithTenant); the X-Fuzzydb-Tenant header
	// is an equivalent out-of-band form (the body field wins). Empty
	// selects the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// Result is one answer row: the JSON form of core.Result, and the
// NDJSON row format of the GET /v1/results stream.
type Result struct {
	Object int     `json:"object"`
	Grade  float64 `json:"grade"`
}

// Cost is the JSON form of the Section 5 tallies.
type Cost struct {
	Sorted int `json:"sorted"`
	Random int `json:"random"`
}

func costOf(c cost.Cost) Cost { return Cost{Sorted: c.Sorted, Random: c.Random} }
func costsOf(cs []cost.Cost) []Cost {
	if cs == nil {
		return nil
	}
	out := make([]Cost, len(cs))
	for i, c := range cs {
		out[i] = costOf(c)
	}
	return out
}

// PrefetchStats is the JSON form of subsys.PipelineStats.
type PrefetchStats struct {
	MaxDepth int `json:"max_depth"`
	Stalls   int `json:"stalls"`
	Batches  int `json:"batches"`
}

// CacheInfo is the JSON form of middleware.CacheInfo: how the engine's
// result cache handled the request. Absent when the server's engine has
// no cache or the request was not cacheable.
type CacheInfo struct {
	// Hit reports whether the answer was served from the cache.
	Hit bool `json:"hit"`
	// Epoch is the source-data version fingerprint the answer reflects.
	Epoch uint64 `json:"epoch"`
	// SavedCost is, on a hit, the Section 5 spend the cache saved.
	SavedCost *Cost `json:"saved_cost,omitempty"`
}

// ShardDetail is the JSON form of core.ShardDetail: one planned
// shard's range [Lo, Hi), the planner's expected work, the weighted
// cost actually paid by accesses attributed to it, and how many times
// work was stolen from it.
type ShardDetail struct {
	Lo      int     `json:"lo"`
	Hi      int     `json:"hi"`
	Planned float64 `json:"planned"`
	Actual  float64 `json:"actual"`
	Steals  int     `json:"steals,omitempty"`
}

// DegradedList records one list a degraded evaluation dropped.
type DegradedList struct {
	Attr     string `json:"attr"`
	Target   string `json:"target"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Cost     Cost   `json:"cost"`
}

// QueryResponse is the outcome of POST /v1/query: the middleware Report
// in wire form.
type QueryResponse struct {
	Results []Result `json:"results"`
	Cost    Cost     `json:"cost"`
	// PerList breaks the cost down by atom, in plan order.
	PerList []Cost `json:"per_list,omitempty"`
	// PerShard breaks the cost down by universe shard (sharded requests).
	PerShard []Cost `json:"per_shard,omitempty"`
	Shards   int    `json:"shards,omitempty"`
	// ShardDetails carries the planner's view of each shard (planned
	// range and expected work, actual cost, steal count); present only
	// on sharded requests.
	ShardDetails []ShardDetail `json:"shard_details,omitempty"`
	// Stolen is the total number of work-stealing splits the evaluation
	// performed (0 unless the request enabled stealing).
	Stolen int `json:"stolen,omitempty"`
	// Algorithm and Reason describe the plan that produced the results.
	Algorithm string `json:"algorithm"`
	Reason    string `json:"reason"`
	// Prefetch reports the pipeline stats when the request pipelined.
	Prefetch *PrefetchStats `json:"prefetch,omitempty"`
	// Degraded lists what a degraded evaluation dropped, in drop order.
	Degraded []DegradedList `json:"degraded,omitempty"`
	// Cache reports how the engine's result cache handled the request
	// (absent without a cache or for uncacheable requests).
	Cache *CacheInfo `json:"cache,omitempty"`
	// ElapsedNS is the server-side evaluation wall-clock in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
}
