package wire_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/middleware"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

// testDB draws one deterministic scoring database.
func testDB(t testing.TB, n, m int, seed uint64) *scoredb.Database {
	t.Helper()
	db, err := scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: seed}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// listName is the attribute naming shared by all wire tests: A1…Am.
func listName(i int) string { return fmt.Sprintf("A%d", i+1) }

// dbSources exposes db's lists under the A1…Am names.
func dbSources(db *scoredb.Database) map[string]subsys.Source {
	lists := make(map[string]subsys.Source, db.M())
	for i := 0; i < db.M(); i++ {
		lists[listName(i)] = subsys.FromList(db.List(i))
	}
	return lists
}

// localEngine builds the in-process reference engine over db.
func localEngine(t testing.TB, db *scoredb.Database) *middleware.Middleware {
	t.Helper()
	subs := make([]subsys.Subsystem, db.M())
	for i := 0; i < db.M(); i++ {
		s := subsys.NewStatic(listName(i), db.N())
		s.Set("*", db.List(i))
		subs[i] = s
	}
	eng, err := middleware.New(subs)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// serveSources starts a loopback source server over db and dials it.
func serveSources(t testing.TB, db *scoredb.Database, opts ...wire.ServerOption) *wire.Client {
	t.Helper()
	ss, err := wire.NewSourceServer(dbSources(db), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	t.Cleanup(ts.Close)
	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return client
}

// wireEngine builds an engine whose sources live across the wire.
func wireEngine(t testing.TB, client *wire.Client) *middleware.Middleware {
	t.Helper()
	eng, err := middleware.New(client.Subsystems())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// queryOf builds the m-way conjunction A1 = "*" AND … AND Am = "*".
func queryOf(m int) string {
	q := `A1 = "*"`
	for i := 1; i < m; i++ {
		q += fmt.Sprintf(` AND A%d = "*"`, i+1)
	}
	return q
}

// mustQuery evaluates and fails the test on error.
func mustQuery(t *testing.T, eng *middleware.Middleware, q string, opts ...middleware.QueryOption) *middleware.Report {
	t.Helper()
	rep, err := eng.QueryString(context.Background(), q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// assertReportsEqual pins the transparency contract: results and ALL
// Section 5 tallies bit-identical between two evaluations.
func assertReportsEqual(t *testing.T, want, got *middleware.Report) {
	t.Helper()
	if !reflect.DeepEqual(want.Results, got.Results) {
		t.Errorf("results diverge:\nlocal: %v\nwire:  %v", want.Results, got.Results)
	}
	if want.Cost != got.Cost {
		t.Errorf("cost diverges: local %v, wire %v", want.Cost, got.Cost)
	}
	if !reflect.DeepEqual(want.PerList, got.PerList) {
		t.Errorf("per-list cost diverges: local %v, wire %v", want.PerList, got.PerList)
	}
	if !reflect.DeepEqual(want.PerShard, got.PerShard) {
		t.Errorf("per-shard cost diverges: local %v, wire %v", want.PerShard, got.PerShard)
	}
}

// TestLoopbackEquivalence is the tentpole's transparency contract: a
// query evaluated over wire-backed sources returns bit-identical results
// and bit-identical Section 5 tallies (total, per list, per shard) to
// the same query over in-process sources — across the serial executor,
// the pipelined executor, sharded evaluation, and their composition.
// The server's page cap is set below the spans the algorithms fetch, so
// the client's paged-coalescing loop is on the tested path.
func TestLoopbackEquivalence(t *testing.T) {
	db := testDB(t, 2000, 3, 11)
	local := localEngine(t, db)
	remote := wireEngine(t, serveSources(t, db, wire.WithPage(64)))
	q := queryOf(db.M())

	cases := []struct {
		name string
		opts []middleware.QueryOption
	}{
		{"Serial", nil},
		{"Parallel", []middleware.QueryOption{middleware.WithParallelism(3)}},
		{"Pipelined", []middleware.QueryOption{middleware.WithPrefetch(0)}},
		{"Sharded", []middleware.QueryOption{middleware.WithShards(4)}},
		{"ShardedPipelined", []middleware.QueryOption{middleware.WithShards(4), middleware.WithPrefetch(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]middleware.QueryOption{middleware.TopN(10)}, tc.opts...)
			want := mustQuery(t, local, q, opts...)
			got := mustQuery(t, remote, q, opts...)
			assertReportsEqual(t, want, got)
		})
	}
}

// TestRemoteQueryEquivalence pins the thin-client path: a query POSTed
// to a full fuzzyserve-style server (sources + engine on one mux)
// returns the same answers and tallies the local engine computes.
func TestRemoteQueryEquivalence(t *testing.T) {
	db := testDB(t, 2000, 2, 12)
	local := localEngine(t, db)

	ss, err := wire.NewSourceServer(dbSources(db), wire.WithEngine())
	if err != nil {
		t.Fatal(err)
	}
	qs := wire.NewQueryServer(local)
	mux := http.NewServeMux()
	ss.Register(mux)
	qs.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if !client.Meta().Engine {
		t.Fatal("meta does not advertise the engine")
	}

	want := mustQuery(t, local, queryOf(db.M()), middleware.TopN(7))
	resp, err := client.Query(context.Background(), wire.QueryRequest{Query: queryOf(db.M()), K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want.Results))
	}
	for i, r := range resp.Results {
		if r.Object != want.Results[i].Object || r.Grade != want.Results[i].Grade {
			t.Errorf("result %d diverges: got %+v, want %+v", i, r, want.Results[i])
		}
	}
	if resp.Cost.Sorted != want.Cost.Sorted || resp.Cost.Random != want.Cost.Random {
		t.Errorf("cost diverges: got %+v, want %v", resp.Cost, want.Cost)
	}
	if resp.Algorithm != want.Plan.Algorithm.Name() {
		t.Errorf("algorithm diverges: got %q, want %q", resp.Algorithm, want.Plan.Algorithm.Name())
	}

	// The streaming cursor yields the same prefix in the same order.
	var streamed []wire.Result
	for r, err := range client.Results(context.Background(), wire.QueryRequest{Query: queryOf(db.M()), K: 7}) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
		if len(streamed) == 7 {
			break
		}
	}
	if !reflect.DeepEqual(streamed, resp.Results) {
		t.Errorf("stream prefix diverges from one-shot results:\nstream: %v\nquery:  %v", streamed, resp.Results)
	}
}

// testFault is a deliberate transient source failure.
type testFault struct{}

func (testFault) Error() string   { return "injected test fault" }
func (testFault) Transient() bool { return true }

// failAtSource delivers its list faithfully except that sorted spans
// covering one chosen rank fail their first two attempts with the
// partial prefix, like a flaky backend that recovers under retry.
type failAtSource struct {
	subsys.ListSource
	rank int

	mu       sync.Mutex
	attempts int
}

func (f *failAtSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if lo <= f.rank && f.rank < hi {
		f.mu.Lock()
		f.attempts++
		n := f.attempts
		f.mu.Unlock()
		if n <= 2 {
			return f.Entries(lo, f.rank), testFault{}
		}
	}
	return f.Entries(lo, hi), nil
}

func (f *failAtSource) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := f.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

func (f *failAtSource) TryGrade(obj int) (float64, error) { return f.Grade(obj), nil }

// TestPagedPartialSpan pins the partial-span contract across the wire:
// when the backing source fails mid-span, the client receives the
// longest delivered prefix alongside a typed transient error, exactly as
// a local FallibleSource would deliver it.
func TestPagedPartialSpan(t *testing.T) {
	db := testDB(t, 256, 1, 13)
	// Fault site at sorted rank 40 (transient: clears after 2 attempts).
	faulty := &failAtSource{ListSource: subsys.FromList(db.List(0)), rank: 40}
	ss, err := wire.NewSourceServer(map[string]subsys.Source{"A1": faulty}, wire.WithPage(16))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	defer ts.Close()
	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	src, err := client.Source("A1")
	if err != nil {
		t.Fatal(err)
	}

	span, err := src.TryEntries(0, 100)
	if err == nil {
		t.Fatal("expected a mid-span fault")
	}
	if len(span) != 40 {
		t.Fatalf("partial span has %d entries, want 40 (up to the fault site)", len(span))
	}
	var te *wire.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *wire.TransportError", err)
	}
	if !te.Transient() {
		t.Errorf("fault lost its transience across the wire: %v", te)
	}
	if want := db.List(0).Range(0, 40); !reflect.DeepEqual(span, want) {
		t.Errorf("partial span diverges from the list prefix")
	}

	// A resilient wrapper retries from the first undelivered rank and
	// completes the span once the transient clears.
	res := subsys.Resilient(src, subsys.Policy{MaxRetries: 3, BaseBackoff: time.Microsecond})
	full, err := res.TryEntries(0, 100)
	if err != nil {
		t.Fatalf("resilient retry did not absorb the transient: %v", err)
	}
	if !reflect.DeepEqual(full, db.List(0).Range(0, 100)) {
		t.Errorf("retried span diverges from the list prefix")
	}
}

// flakyTransport injects faults at the HTTP layer: every per-path Nth
// request to a source endpoint is killed before the handler runs —
// either answered 500 or the connection hijacked and dropped — so the
// client sees real protocol and transport failures, not simulated ones.
type flakyTransport struct {
	h     http.Handler
	every int
	reset bool // hijack and drop instead of answering 500

	mu sync.Mutex
	n  int
}

func (f *flakyTransport) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/entries" || r.URL.Path == "/v1/grade" {
		f.mu.Lock()
		f.n++
		kill := f.n%f.every == 0
		f.mu.Unlock()
		if kill {
			if f.reset {
				if hj, ok := w.(http.Hijacker); ok {
					conn, _, err := hj.Hijack()
					if err == nil {
						conn.Close()
						return
					}
				}
			}
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
	}
	f.h.ServeHTTP(w, r)
}

// TestFaultSemantics pins the wire's fault story end to end: injected
// HTTP 500s and connection resets surface as transient typed errors
// that subsys.Resilient retries to bit-identical fault-free results and
// tallies — the PR 6 FaultSource determinism contract, now against a
// real network stack.
func TestFaultSemantics(t *testing.T) {
	db := testDB(t, 1000, 2, 14)
	local := localEngine(t, db)
	q := queryOf(db.M())
	want := mustQuery(t, local, q, middleware.TopN(10))

	for _, mode := range []struct {
		name  string
		reset bool
	}{{"HTTP500", false}, {"ConnReset", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ss, err := wire.NewSourceServer(dbSources(db))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(&flakyTransport{h: ss, every: 7, reset: mode.reset})
			defer ts.Close()
			client, err := wire.Dial(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			// The typed error carries its transience classification.
			src, err := client.Source("A1")
			if err != nil {
				t.Fatal(err)
			}
			var sawTransient bool
			for i := 0; i < 7; i++ {
				if _, err := src.TryGrade(i); err != nil {
					var te *wire.TransportError
					if !errors.As(err, &te) {
						t.Fatalf("fault surfaced as %T, want *wire.TransportError", err)
					}
					if !te.Transient() {
						t.Fatalf("injected fault classified permanent: %v", te)
					}
					sawTransient = true
				}
			}
			if !sawTransient {
				t.Fatal("injection never fired")
			}

			// Under the resilience layer the engine sees none of it.
			subs := make([]subsys.Subsystem, 0, db.M())
			for _, rs := range client.Subsystems() {
				subs = append(subs, subsys.WithResilience(rs, subsys.Policy{
					MaxRetries: 5, BaseBackoff: time.Microsecond, Seed: 9,
				}))
			}
			eng, err := middleware.New(subs)
			if err != nil {
				t.Fatal(err)
			}
			got := mustQuery(t, eng, q, middleware.TopN(10))
			assertReportsEqual(t, want, got)
		})
	}
}

// TestPermanentFaultFailsFast pins the other half of the contract:
// without a resilience wrapper, a wire failure reaches the engine as
// one typed *subsys.SourceError naming the failing access — a clean
// fail-fast, never a panic.
func TestPermanentFaultFailsFast(t *testing.T) {
	db := testDB(t, 500, 2, 15)
	ss, err := wire.NewSourceServer(dbSources(db))
	if err != nil {
		t.Fatal(err)
	}
	// Kill every source request: the first access fails.
	ts := httptest.NewServer(&flakyTransport{h: ss, every: 1})
	defer ts.Close()
	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	eng := wireEngine(t, client)
	_, err = eng.QueryString(context.Background(), queryOf(db.M()), middleware.TopN(5))
	if err == nil {
		t.Fatal("expected the evaluation to fail")
	}
	var se *subsys.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("failure surfaced as %T (%v), want *subsys.SourceError", err, err)
	}
	var te *wire.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("source error does not wrap the transport error: %v", err)
	}
}

// TestWedgedServerTimeout pins abandonment: a server that stalls forever
// cannot wedge a resilient client — the per-access timeout abandons the
// in-flight request and surfaces a typed *subsys.TimeoutError.
func TestWedgedServerTimeout(t *testing.T) {
	db := testDB(t, 200, 1, 16)
	ss, err := wire.NewSourceServer(dbSources(db))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var once sync.Once
	defer func() { once.Do(func() { close(release) }) }()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/entries", func(w http.ResponseWriter, r *http.Request) {
		// Wedge until the test releases or the client goes away.
		select {
		case <-release:
		case <-r.Context().Done():
		}
		http.Error(w, `{"error":"wedged"}`, http.StatusInternalServerError)
	})
	mux.Handle("/", ss)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	src, err := client.Source("A1")
	if err != nil {
		t.Fatal(err)
	}

	res := subsys.Resilient(src, subsys.Policy{PerAccessTimeout: 20 * time.Millisecond})
	start := time.Now()
	_, err = res.TryEntries(0, 4)
	if err == nil {
		t.Fatal("expected a timeout")
	}
	var toe *subsys.TimeoutError
	if !errors.As(err, &toe) {
		t.Fatalf("wedge surfaced as %T (%v), want *subsys.TimeoutError", err, err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("abandonment took %v; the client wedged with the server", waited)
	}
	// Release the stalled handler so Close does not wait on it.
	once.Do(func() { close(release) })
}

// TestStreamDisconnectCancels pins server-side cancellation: a client
// that abandons the /v1/results cursor mid-stream promptly cancels the
// server-side evaluation — active evaluations drain to zero instead of
// leaking goroutines and pagination state.
func TestStreamDisconnectCancels(t *testing.T) {
	db := testDB(t, 5000, 2, 17)
	local := localEngine(t, db)
	qs := wire.NewQueryServer(local)
	ss, err := wire.NewSourceServer(dbSources(db), wire.WithEngine())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	ss.Register(mux)
	qs.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	for _, err := range client.Results(ctx, wire.QueryRequest{Query: queryOf(db.M()), K: 5}) {
		if err != nil {
			break // cancellation surfacing through the stream is fine
		}
		rows++
		if rows == 3 {
			cancel()
		}
	}
	cancel()
	if rows < 3 {
		t.Fatalf("stream delivered %d rows before cancellation, want ≥3", rows)
	}

	deadline := time.Now().Add(5 * time.Second)
	for qs.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server still reports %d active evaluations after disconnect", qs.Active())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBudgetErrorCrossesWire pins the error envelope of a remote
// evaluation: a budget stop comes back as a 422 with the partial spend
// attached, classified permanent.
func TestBudgetErrorCrossesWire(t *testing.T) {
	db := testDB(t, 2000, 2, 18)
	local := localEngine(t, db)
	qs := wire.NewQueryServer(local)
	ts := httptest.NewServer(qs)
	defer ts.Close()

	hc := ts.Client()
	// Dial needs /v1/meta, which a bare QueryServer does not serve; post
	// directly instead.
	body := `{"query":"A1 = \"*\" AND A2 = \"*\"","k":10,"budget":5}`
	resp, err := hc.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("budget stop answered %d, want 422", resp.StatusCode)
	}
	var f wire.Fault
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.Transient {
		t.Error("budget stop classified transient; retrying cannot help")
	}
	if f.Cost == nil || f.Cost.Sorted+f.Cost.Random == 0 {
		t.Errorf("budget stop lost its partial spend: %+v", f)
	}
}
