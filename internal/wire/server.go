package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"fuzzydb/internal/subsys"
)

// DefaultPage is the server-side cap on the entries delivered per
// /v1/entries response. Long spans are paged: the client continues from
// where the previous span ended, so one logical Entries(lo, hi) still
// costs O(span/Page) round trips rather than unbounded payloads.
const DefaultPage = 4096

// SourceServer exposes a set of named subsys.Sources as the wire
// protocol's paged RPCs (see the package documentation for the
// endpoint spec). All lists must share one universe size. Handlers call
// the sources concurrently as requests arrive, so the sources must
// tolerate concurrent reads — true of every built-in source.
//
// Sources exposing the fallible face (subsys.FallibleSource) are served
// through it: a mid-span failure is reported in-band as a Fault
// envelope alongside the partial span, so the client can reconstruct
// the exact partial-span semantics locally.
type SourceServer struct {
	lists  map[string]serverList
	meta   Meta
	page   int
	engine bool
	mux    *http.ServeMux
}

// serverList is one served list with its capability probes resolved.
type serverList struct {
	src subsys.Source
	fs  subsys.FallibleSource // non-nil when src exposes the fallible face
}

// ServerOption configures a SourceServer.
type ServerOption func(*SourceServer)

// WithPage caps the entries per /v1/entries response (default
// DefaultPage). Non-positive values are ignored.
func WithPage(n int) ServerOption {
	return func(s *SourceServer) {
		if n > 0 {
			s.page = n
		}
	}
}

// WithEngine advertises in /v1/meta that the mux this server registers
// on also mounts the query endpoints (cmd/fuzzyserve combines a
// SourceServer with a QueryServer on one mux).
func WithEngine() ServerOption {
	return func(s *SourceServer) { s.engine = true }
}

// NewSourceServer builds a server over the named lists. All lists must
// be non-empty as a set and share one universe size.
func NewSourceServer(lists map[string]subsys.Source, opts ...ServerOption) (*SourceServer, error) {
	if len(lists) == 0 {
		return nil, errors.New("wire: no lists to serve")
	}
	s := &SourceServer{lists: make(map[string]serverList, len(lists)), page: DefaultPage}
	for _, opt := range opts {
		opt(s)
	}
	names := make([]string, 0, len(lists))
	n, dense := -1, true
	for name, src := range lists {
		names = append(names, name)
		if n < 0 {
			n = src.Len()
		} else if src.Len() != n {
			return nil, fmt.Errorf("wire: list %q has %d objects, want %d", name, src.Len(), n)
		}
		if h, ok := src.(subsys.UniverseHinter); ok {
			if un, d := h.Universe(); !d || un != src.Len() {
				dense = false
			}
		} else {
			dense = false
		}
		sl := serverList{src: src}
		if fs, ok := src.(subsys.FallibleSource); ok {
			sl.fs = fs
		}
		s.lists[name] = sl
	}
	sort.Strings(names)
	s.meta = Meta{N: n, Dense: dense, Lists: names, Page: s.page, Engine: s.engine}
	s.mux = http.NewServeMux()
	s.Register(s.mux)
	return s, nil
}

// Meta returns the served self-description.
func (s *SourceServer) Meta() Meta { return s.meta }

// Register mounts the source endpoints on mux, so callers can combine
// them with a QueryServer (cmd/fuzzyserve does) or their own routes.
func (s *SourceServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("POST /v1/entries", s.handleEntries)
	mux.HandleFunc("POST /v1/grade", s.handleGrade)
}

// ServeHTTP implements http.Handler over the server's own mux.
func (s *SourceServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *SourceServer) handleMeta(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.meta)
}

func (s *SourceServer) handleEntries(w http.ResponseWriter, r *http.Request) {
	var req EntriesRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	sl, ok := s.lists[req.List]
	if !ok {
		writeFault(w, http.StatusNotFound, &Fault{Message: fmt.Sprintf("unknown list %q", req.List)})
		return
	}
	n := sl.src.Len()
	if req.Lo < 0 || req.Lo > req.Hi || req.Hi > n {
		writeFault(w, http.StatusBadRequest, &Fault{Message: fmt.Sprintf("bad span [%d, %d) over %d ranks", req.Lo, req.Hi, n)})
		return
	}
	hi := req.Hi
	if hi > req.Lo+s.page {
		hi = req.Lo + s.page
	}
	resp, ok := serveBound(r, sl.src, func() EntriesResponse {
		resp := EntriesResponse{Objects: []int{}, Grades: []float64{}}
		if sl.fs != nil {
			span, err := sl.fs.TryEntries(req.Lo, hi)
			for _, e := range span {
				resp.Objects = append(resp.Objects, e.Object)
				resp.Grades = append(resp.Grades, e.Grade)
			}
			if err != nil {
				resp.Err = faultOf(err)
			}
		} else {
			for _, e := range sl.src.Entries(req.Lo, hi) {
				resp.Objects = append(resp.Objects, e.Object)
				resp.Grades = append(resp.Grades, e.Grade)
			}
		}
		return resp
	})
	if !ok {
		return // client gone; nothing to write
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *SourceServer) handleGrade(w http.ResponseWriter, r *http.Request) {
	var req GradeRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	sl, ok := s.lists[req.List]
	if !ok {
		writeFault(w, http.StatusNotFound, &Fault{Message: fmt.Sprintf("unknown list %q", req.List)})
		return
	}
	resp, ok := serveBound(r, sl.src, func() GradeResponse {
		var resp GradeResponse
		if sl.fs != nil {
			g, err := sl.fs.TryGrade(req.Object)
			resp.Grade = g
			if err != nil {
				resp.Grade = 0
				resp.Err = faultOf(err)
			}
		} else {
			resp.Grade = sl.src.Grade(req.Object)
		}
		return resp
	})
	if !ok {
		return // client gone; nothing to write
	}
	writeJSON(w, http.StatusOK, resp)
}

// serveBound runs one source access under the client's request context,
// the way /v1/query evaluations already do: the context is forwarded
// into the source when it has the per-request capability
// (subsys.ContextSource), so a wedged transport call underneath is
// abandoned, and — capability or not — the handler stops waiting the
// moment the client disconnects instead of holding the connection until
// the source returns. The abandoned access finishes on its own
// goroutine and its result is discarded.
func serveBound[T any](r *http.Request, src subsys.Source, access func() T) (T, bool) {
	ctx := r.Context()
	if cs, ok := src.(subsys.ContextSource); ok {
		cs.BindContext(ctx)
	}
	done := make(chan T, 1)
	go func() { done <- access() }()
	select {
	case v := <-done:
		return v, true
	case <-ctx.Done():
		var zero T
		return zero, false
	}
}

// faultOf flattens a source error into the wire envelope, preserving
// the transience classification (the subsys.Resilient retry decision on
// the far side of the wire depends on it). Errors without the
// capability are transient by convention, matching subsys.retryable.
func faultOf(err error) *Fault {
	f := &Fault{Message: err.Error(), Transient: true}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		f.Transient = tr.Transient()
	}
	return f
}

// decodeRequest parses the JSON request body, answering 400 (permanent)
// on malformed input. It reports whether the handler should proceed.
func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(into); err != nil {
		writeFault(w, http.StatusBadRequest, &Fault{Message: fmt.Sprintf("bad request: %v", err)})
		return false
	}
	return true
}

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeFault writes the non-2xx protocol error envelope. An overload
// rejection's pacing advice additionally travels as a standard
// Retry-After header (whole seconds, rounded up so a sub-second advice
// never truncates to "retry immediately"), alongside the exact
// millisecond form in the envelope.
func writeFault(w http.ResponseWriter, status int, f *Fault) {
	if f.RetryAfterMS > 0 {
		secs := (f.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, f)
}
