package wire_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/middleware"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

// postJSON posts body to url and decodes the response into out.
func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestQueryCacheOverWire: a server whose engine carries a result cache
// reports cache handling in the /v1/query response — a miss on the
// first request, then a hit with identical results and the saved cost.
func TestQueryCacheOverWire(t *testing.T) {
	db := testDB(t, 600, 3, 91)
	subs := make([]subsys.Subsystem, db.M())
	for i := 0; i < db.M(); i++ {
		s := subsys.NewStatic(listName(i), db.N())
		s.Set("*", db.List(i))
		subs[i] = s
	}
	eng, err := middleware.New(subs, middleware.WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wire.NewQueryServer(eng))
	t.Cleanup(ts.Close)

	req := wire.QueryRequest{Query: queryOf(3), K: 10}
	var first, second wire.QueryResponse
	postJSON(t, ts.URL+"/v1/query", req, &first)
	postJSON(t, ts.URL+"/v1/query", req, &second)

	if first.Cache == nil || first.Cache.Hit {
		t.Fatalf("first response cache = %+v, want recorded miss", first.Cache)
	}
	if second.Cache == nil || !second.Cache.Hit {
		t.Fatalf("second response cache = %+v, want hit", second.Cache)
	}
	if second.Cache.SavedCost == nil || *second.Cache.SavedCost != first.Cost {
		t.Fatalf("saved cost = %v, want the original spend %v", second.Cache.SavedCost, first.Cost)
	}
	if !reflect.DeepEqual(second.Results, first.Results) {
		t.Fatalf("hit results diverge:\nfirst:  %v\nsecond: %v", first.Results, second.Results)
	}
	if second.Cost != first.Cost {
		t.Fatalf("hit tallies %v != original %v", second.Cost, first.Cost)
	}
}

// wedgedSource wedges sorted and random access until the bound request
// context is canceled — a stand-in for a hung backend that only the
// per-request context can unstick.
type wedgedSource struct {
	src      subsys.Source
	mu       sync.Mutex
	ctx      context.Context
	released chan struct{}
}

func newWedgedSource(src subsys.Source) *wedgedSource {
	return &wedgedSource{src: src, ctx: context.Background(), released: make(chan struct{}, 4)}
}

func (ws *wedgedSource) BindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	ws.mu.Lock()
	ws.ctx = ctx
	ws.mu.Unlock()
}

func (ws *wedgedSource) wedge() {
	ws.mu.Lock()
	ctx := ws.ctx
	ws.mu.Unlock()
	<-ctx.Done()
	ws.released <- struct{}{}
}

func (ws *wedgedSource) Len() int                       { return ws.src.Len() }
func (ws *wedgedSource) Entry(rank int) gradedset.Entry { return ws.src.Entry(rank) }
func (ws *wedgedSource) Entries(lo, hi int) []gradedset.Entry {
	ws.wedge()
	return ws.src.Entries(lo, hi)
}
func (ws *wedgedSource) Grade(obj int) float64 {
	ws.wedge()
	return ws.src.Grade(obj)
}

// TestSourceRPCDisconnectCancels: the raw source RPCs run under the
// client's request context the way /v1/query does — when the client
// disconnects mid-call, the handler stops waiting AND the wedged
// backend access underneath is released through the bound context.
func TestSourceRPCDisconnectCancels(t *testing.T) {
	db := testDB(t, 50, 1, 97)
	ws := newWedgedSource(subsys.FromList(db.List(0)))
	ss, err := wire.NewSourceServer(map[string]subsys.Source{"A1": ws})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ss)
	t.Cleanup(ts.Close)

	calls := []struct {
		name string
		path string
		body any
	}{
		{"grade", "/v1/grade", wire.GradeRequest{List: "A1", Object: 3}},
		{"entries", "/v1/entries", wire.EntriesRequest{List: "A1", Lo: 0, Hi: 10}},
	}
	for _, tc := range calls {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+tc.path, bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			start := time.Now()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
				t.Fatal("wedged call completed")
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("handler held the connection %v after disconnect", elapsed)
			}
			select {
			case <-ws.released:
				// The backend access observed the cancellation.
			case <-time.After(2 * time.Second):
				t.Fatal("backend access never released: request context not bound")
			}
		})
	}
}
