// Package wire makes the engine deployable: it exposes subsys.Sources
// and the middleware query engine over a JSON/HTTP protocol, and
// implements the client half as a subsys.Source so a local engine can
// evaluate Fagin's algorithms against remote subsystems without any
// change to the executors or the Section 5 cost accounting.
//
// The design target is transparency: a query evaluated over wire-backed
// sources must return bit-identical results AND bit-identical Section 5
// tallies (sorted/random access counts) to the same query over the
// in-process sources, because metering happens in subsys.Counted on the
// client side of the wire — the transport moves bytes, never costs.
// What the wire adds is latency, which is exactly what the pipelined
// executor and prefetch pipelines exist to hide; the Wire benchmarks
// pin that hiding against a real network stack (loopback).
//
// # Endpoints
//
// A SourceServer serves raw sorted lists; a QueryServer serves a full
// engine. cmd/fuzzyserve mounts both on one mux.
//
//	GET  /v1/meta     → Meta{n, dense, lists, page, engine}
//	POST /v1/entries  EntriesRequest{list, lo, hi} → EntriesResponse{objects, grades, err?}
//	POST /v1/grade    GradeRequest{list, object}   → GradeResponse{grade, err?}
//	POST /v1/query    QueryRequest                 → QueryResponse
//	GET  /v1/results  ?q=…&k=…&…                  → NDJSON stream of Result rows
//
// /v1/entries is sorted access: the entries at ranks [lo, hi) of one
// list, paged — the server delivers at most Meta.Page entries per
// response and the client continues from rank lo+len(objects). /v1/grade
// is random access. /v1/query evaluates one request end to end and
// returns the full report (results, Section 5 tallies, per-list and
// per-shard breakdowns, plan, prefetch stats, degraded lists).
//
// # Error envelope
//
// All failures use one JSON shape, Fault:
//
//	{"error": "message", "transient": true, "cost": {"sorted": s, "random": r}}
//
// It appears in two positions with two meanings. In-band (the err field
// of a 200 entries/grade response): the backing source itself failed;
// the delivered span is the longest prefix obtained before the failure,
// preserving the subsys.FallibleSource partial-span contract across the
// wire. As the body of a non-2xx response: the protocol call failed —
// 400 malformed request or plan error, 404 unknown list, 422 budget
// exhausted (cost carries the partial spend), 429 admission shed by a
// scheduled server, 502 source failure during a query, 504 evaluation
// cancelled or timed out. The transient flag feeds the client-side
// retry decision (subsys.Resilient): 5xx and 429 default transient,
// other 4xx permanent.
//
// # Overload: 429 and Retry-After
//
// A server whose engine runs behind an admission scheduler
// (fuzzydb.WithScheduler; cmd/fuzzyserve -rate/-tenants) sheds work it
// cannot serve in time. The shed's typed *sched.OverloadError maps to
// 429 with the scheduler's pacing advice in two forms: a standard
// Retry-After header (whole seconds, rounded up) and the envelope's
// retry_after_ms field (exact milliseconds; it wins when both are
// present). Requests name their admission tenant in the query body
// ("tenant"), the X-Fuzzydb-Tenant header, or the results cursor's
// tenant URL parameter. The client lifts the advice into
// TransportError.RetryAfterHint, exposed through the optional
// RetryAfter() capability that subsys.Resilient consults: a retry
// after a 429 sleeps the server's advised interval instead of the
// client's own exponential backoff, so a fleet of resilient clients
// drains at the pace the shedding server asked for rather than
// re-stampeding it.
//
// # Streaming cursor
//
// GET /v1/results streams answers as NDJSON (Content-Type
// application/x-ndjson): one {"object": o, "grade": g} row per line, in
// descending grade order, flushed per row. It is a cursor over the
// engine's continuation iterator (middleware.Results): k sets the page
// size — the "next k best" computed at a time — not a stop bound; the
// stream continues until the universe (or the budget) is exhausted or
// the client disconnects, which is how a consumer says "enough". A mid-stream engine failure
// terminates the stream with one Fault row (distinguished by its error
// field). The evaluation runs under the HTTP request context, so a
// client disconnect cancels the server-side evaluation at its next
// poll: pagination state releases, budget reservations settle, and no
// goroutines leak — the wedged-server and disconnect tests pin this
// under the race detector.
//
// # Client
//
// Dial fetches /v1/meta and returns a Client over one pooled
// http.Transport with MaxIdleConnsPerHost sized for the pipelined
// executor's wide gather fan-out (default 128), so steady-state
// accesses ride warm keep-alive connections. Client.Source yields a
// RemoteSource implementing:
//
//   - subsys.Source — plain access (panics on transport failure; the
//     engine never uses this face when a fallible one exists);
//   - subsys.FallibleSource — transport errors, server faults, and
//     in-band source faults surface as typed *TransportError values
//     carrying a Transient() classification, so subsys.Resilient can
//     retry, break, and degrade exactly as it does for local faults;
//   - subsys.UniverseHinter — forwards the server's dense-universe
//     claim so downstream set algebra keeps the flat-array fast path;
//   - subsys.ContextSource — the engine binds each evaluation's context
//     (core.NewExecContext), and every HTTP access runs under it, so
//     cancelling a query cancels its in-flight network reads.
//
// TryEntries(lo, hi) coalesces one logical span into sequential paged
// fetches and, on failure, returns the partial span alongside the
// error. Client.Query and Client.Results evaluate remotely instead,
// for deployments where the data and the engine live together and only
// answers cross the wire (cmd/fuzzyquery -connect).
package wire
