package wire

import (
	"fuzzydb/internal/subsys"
)

// The remote source must present every capability face the engine
// probes for, so it composes with metering, sharding, resilience, and
// prefetch exactly like a local source.
var (
	_ subsys.Source         = (*RemoteSource)(nil)
	_ subsys.FallibleSource = (*RemoteSource)(nil)
	_ subsys.UniverseHinter = (*RemoteSource)(nil)
	_ subsys.ContextSource  = (*RemoteSource)(nil)
	_ subsys.Subsystem      = (*Subsystem)(nil)
)

// Subsystem adapts one remote list to the subsys.Subsystem interface,
// so an engine can be planned and evaluated locally over sources that
// live across the wire. The attribute name is the remote list name; a
// remote list is already one evaluated sorted list, so Query ignores
// its target and returns the list itself (conventionally queried with
// target "*", matching the Static subsystem).
type Subsystem struct {
	c    *Client
	list string
}

// Subsystem returns the named remote list as a subsystem.
func (c *Client) Subsystem(list string) (*Subsystem, error) {
	if _, err := c.Source(list); err != nil {
		return nil, err
	}
	return &Subsystem{c: c, list: list}, nil
}

// Subsystems returns every remote list as a subsystem, in the server's
// sorted list order — ready to hand to middleware.New.
func (c *Client) Subsystems() []subsys.Subsystem {
	out := make([]subsys.Subsystem, 0, len(c.meta.Lists))
	for _, name := range c.meta.Lists {
		out = append(out, &Subsystem{c: c, list: name})
	}
	return out
}

// Attribute implements subsys.Subsystem: the remote list name.
func (s *Subsystem) Attribute() string { return s.list }

// Size implements subsys.Subsystem: the remote universe size.
func (s *Subsystem) Size() int { return s.c.meta.N }

// Query implements subsys.Subsystem. Every evaluation returns a fresh
// RemoteSource so each one carries its own bound request context.
func (s *Subsystem) Query(string) (subsys.Source, error) {
	return s.c.Source(s.list)
}
