package wire_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fuzzydb/internal/middleware"
	"fuzzydb/internal/sched"
	"fuzzydb/internal/subsys"
	"fuzzydb/internal/wire"
)

// schedServer builds a fuzzyserve-shaped server whose engine runs
// behind the given scheduler, over a small generated database.
func schedServer(t *testing.T, s *sched.Scheduler) *httptest.Server {
	t.Helper()
	db := testDB(t, 400, 2, 17)
	subs := make([]subsys.Subsystem, db.M())
	for i := 0; i < db.M(); i++ {
		st := subsys.NewStatic(listName(i), db.N())
		st.Set("*", db.List(i))
		subs[i] = st
	}
	eng, err := middleware.New(subs, middleware.WithScheduler(s))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := wire.NewSourceServer(dbSources(db), wire.WithEngine())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	ss.Register(mux)
	wire.NewQueryServer(eng).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// drainTenant spends the named tenant's fixed token pool with one
// admitted query (the full-bucket allowance), so the next one sheds.
func drainTenant(t *testing.T, c *wire.Client, tenant string) {
	t.Helper()
	if _, err := c.Query(t.Context(), wire.QueryRequest{Query: queryOf(2), K: 5, Tenant: tenant}); err != nil {
		t.Fatalf("draining query should be admitted: %v", err)
	}
}

// TestOverloadShedMapsTo429 pins the wire mapping of an admission
// shed: HTTP 429, a transient envelope carrying retry_after_ms, a
// Retry-After header, and a client-side *TransportError exposing the
// advice through the RetryAfter capability.
func TestOverloadShedMapsTo429(t *testing.T) {
	s := sched.New(sched.Config{Tenants: map[string]sched.TenantConfig{
		"broke": {Burst: 1}, // zero rate: one admission, then dry
	}})
	ts := schedServer(t, s)
	c, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	drainTenant(t, c, "broke")

	_, err = c.Query(t.Context(), wire.QueryRequest{Query: queryOf(2), K: 5, Tenant: "broke"})
	var te *wire.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want *TransportError", err)
	}
	if te.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", te.Status)
	}
	if !te.Transient() {
		t.Fatal("a shed must be transient: a refilled bucket can admit the retry")
	}
	if te.RetryAfter() <= 0 {
		t.Fatalf("RetryAfter() = %v, want the server's positive advice", te.RetryAfter())
	}
}

// TestOverloadShedHeaderAndEnvelope pins the raw HTTP shape of a shed:
// the Retry-After header (whole seconds, rounded up) and the
// envelope's exact retry_after_ms travel together, and the header is
// also honored via the X-Fuzzydb-Tenant header route.
func TestOverloadShedHeaderAndEnvelope(t *testing.T) {
	s := sched.New(sched.Config{Tenants: map[string]sched.TenantConfig{
		"broke": {Burst: 1},
	}})
	ts := schedServer(t, s)
	c, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	drainTenant(t, c, "broke")

	body, _ := json.Marshal(wire.QueryRequest{Query: queryOf(2), K: 5})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(wire.TenantHeader, "broke") // tenant via header, not body
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want a positive whole-second advice", ra)
	}
	var f struct {
		Message      string `json:"error"`
		Transient    bool   `json:"transient"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if !f.Transient || f.RetryAfterMS <= 0 {
		t.Fatalf("envelope = %+v, want transient with positive retry_after_ms", f)
	}
}

// TestOverloadShedOnResultsCursor pins the streaming route: a shed on
// GET /v1/results (tenant via URL parameter) happens before the status
// line, so the client sees a real 429 with the pacing advice, not a
// 200 with a fault row.
func TestOverloadShedOnResultsCursor(t *testing.T) {
	s := sched.New(sched.Config{Tenants: map[string]sched.TenantConfig{
		"broke": {Burst: 1},
	}})
	ts := schedServer(t, s)
	c, err := wire.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	drainTenant(t, c, "broke")

	var got error
	for _, err := range c.Results(t.Context(), wire.QueryRequest{Query: queryOf(2), K: 5, Tenant: "broke"}) {
		if err != nil {
			got = err
			break
		}
		t.Fatal("shed stream yielded a result")
	}
	var te *wire.TransportError
	if !errors.As(got, &te) {
		t.Fatalf("got %v, want *TransportError", got)
	}
	if te.Status != http.StatusTooManyRequests || te.RetryAfter() <= 0 {
		t.Fatalf("shed cursor error = %+v, want status 429 with positive RetryAfter", te)
	}
}

// TestRetryAfterHeaderFallback pins the client's header parse: a 429
// whose body is not a wire envelope (a proxy's error page) still
// yields the Retry-After header as the pacing hint.
func TestRetryAfterHeaderFallback(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/meta" {
			_ = json.NewEncoder(w).Encode(wire.Meta{N: 1, Lists: []string{"A1"}, Engine: true})
			return
		}
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte("<html>rate limited by proxy</html>"))
	}))
	t.Cleanup(backend.Close)
	c, err := wire.Dial(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(t.Context(), wire.QueryRequest{Query: queryOf(2)})
	var te *wire.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want *TransportError", err)
	}
	if te.RetryAfter() != 7*time.Second {
		t.Fatalf("RetryAfter() = %v, want 7s from the header", te.RetryAfter())
	}
	if !te.Transient() {
		t.Fatal("429 without an envelope should stay transient")
	}
}
