package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"fuzzydb/internal/core"
	"fuzzydb/internal/middleware"
	"fuzzydb/internal/sched"
	"fuzzydb/internal/subsys"
)

// QueryServer exposes a middleware engine over the wire: one-shot
// evaluation at POST /v1/query and the streaming Results iterator at
// GET /v1/results as an NDJSON cursor. Both evaluate under the request
// context, so a client disconnect (or request cancellation) propagates
// into the engine — in-flight evaluation stops at its next cancellation
// poll, budget reservations settle, and pooled state is released.
type QueryServer struct {
	eng      *middleware.Middleware
	defaults []middleware.QueryOption
	active   atomic.Int64
	mux      *http.ServeMux
}

// NewQueryServer builds a query server over the engine. defaults are
// request options applied to every evaluation before the request's own
// (so a request field that maps to the same option overrides the
// server default) — the hook for server-side execution policy like
// a default shard plan or work stealing.
func NewQueryServer(eng *middleware.Middleware, defaults ...middleware.QueryOption) *QueryServer {
	s := &QueryServer{eng: eng, defaults: defaults}
	s.mux = http.NewServeMux()
	s.Register(s.mux)
	return s
}

// options combines the server defaults with the request's own options,
// request last so it wins where both speak.
func (s *QueryServer) options(req QueryRequest) []middleware.QueryOption {
	return append(append([]middleware.QueryOption(nil), s.defaults...), req.options()...)
}

// Register mounts the query endpoints on mux, so callers can combine
// them with a SourceServer's (cmd/fuzzyserve does).
func (s *QueryServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/results", s.handleResults)
}

// ServeHTTP implements http.Handler over the server's own mux.
func (s *QueryServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Active reports how many query evaluations (one-shot or streaming) are
// in flight right now. Exposed so tests can pin that client disconnects
// drain the server promptly.
func (s *QueryServer) Active() int64 { return s.active.Load() }

// options lowers the wire request onto the engine's request options.
func (q QueryRequest) options() []middleware.QueryOption {
	var opts []middleware.QueryOption
	if q.K > 0 {
		opts = append(opts, middleware.TopN(q.K))
	}
	if q.Parallelism > 1 {
		opts = append(opts, middleware.WithParallelism(q.Parallelism))
	}
	if q.Shards > 1 {
		opts = append(opts, middleware.WithShards(q.Shards))
	}
	switch q.ShardPlan {
	case "weighted":
		opts = append(opts, middleware.WithShardPlan(core.ShardPlanWeighted))
	case "even":
		// Explicit, so a request can override a weighted server default.
		opts = append(opts, middleware.WithShardPlan(core.ShardPlanEven))
	}
	if q.Steal {
		opts = append(opts, middleware.WithWorkStealing(true))
	}
	if q.Budget > 0 {
		opts = append(opts, middleware.WithAccessBudget(q.Budget))
	}
	if q.Prefetch != nil {
		opts = append(opts, middleware.WithPrefetch(*q.Prefetch))
	}
	if q.Degrade > 0 {
		opts = append(opts, middleware.WithDegradedLists(q.Degrade))
	}
	if q.Tenant != "" {
		opts = append(opts, middleware.WithTenant(q.Tenant))
	}
	return opts
}

// TenantHeader is the out-of-band form of QueryRequest.Tenant: requests
// that cannot carry the body field (or proxies injecting identity) name
// the admission tenant here. The body field wins when both are set.
const TenantHeader = "X-Fuzzydb-Tenant"

func (s *QueryServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeFault(w, http.StatusBadRequest, &Fault{Message: "empty query"})
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get(TenantHeader)
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	start := time.Now()
	rep, err := s.eng.QueryString(r.Context(), req.Query, s.options(req)...)
	if err != nil {
		status, f := queryFault(err)
		if rep != nil {
			c := costOf(rep.Cost)
			f.Cost = &c
		}
		writeFault(w, status, f)
		return
	}
	writeJSON(w, http.StatusOK, responseOf(rep, time.Since(start)))
}

// responseOf lowers a middleware report onto the wire form.
func responseOf(rep *middleware.Report, elapsed time.Duration) QueryResponse {
	resp := QueryResponse{
		Results:   make([]Result, 0, len(rep.Results)),
		Cost:      costOf(rep.Cost),
		PerList:   costsOf(rep.PerList),
		PerShard:  costsOf(rep.PerShard),
		Shards:    rep.Shards,
		Stolen:    rep.Stolen,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	for _, d := range rep.ShardDetails {
		resp.ShardDetails = append(resp.ShardDetails, ShardDetail{
			Lo: d.Range.Lo, Hi: d.Range.Hi,
			Planned: d.Planned, Actual: d.Actual, Steals: d.Steals,
		})
	}
	for _, r := range rep.Results {
		resp.Results = append(resp.Results, Result{Object: r.Object, Grade: r.Grade})
	}
	if rep.Plan != nil {
		if rep.Plan.Algorithm != nil {
			resp.Algorithm = rep.Plan.Algorithm.Name()
		}
		resp.Reason = rep.Plan.Reason
	}
	if rep.Prefetch != nil {
		resp.Prefetch = &PrefetchStats{
			MaxDepth: rep.Prefetch.MaxDepth,
			Stalls:   rep.Prefetch.Stalls,
			Batches:  rep.Prefetch.Batches,
		}
	}
	if rep.Cache != nil {
		ci := &CacheInfo{Hit: rep.Cache.Hit, Epoch: rep.Cache.Epoch}
		if rep.Cache.Hit {
			c := costOf(rep.Cache.SavedCost)
			ci.SavedCost = &c
		}
		resp.Cache = ci
	}
	for _, d := range rep.Degraded {
		dl := DegradedList{Attr: d.Attr, Target: d.Target, Attempts: d.Attempts, Cost: costOf(d.Cost)}
		if d.Err != nil {
			dl.Error = d.Err.Error()
		}
		resp.Degraded = append(resp.Degraded, dl)
	}
	return resp
}

// queryFault classifies an engine error onto a status code and wire
// envelope. Source failures, timeouts, and admission sheds are
// transient (a retry may hit a recovered backend or a refilled
// bucket); planning and budget errors are not. An admission shed
// (typed *sched.OverloadError) maps to 429 and carries the scheduler's
// RetryAfter advice so resilient clients pace themselves instead of
// re-stampeding a shedding server.
func queryFault(err error) (int, *Fault) {
	f := &Fault{Message: err.Error()}
	var se *subsys.SourceError
	var oe *sched.OverloadError
	switch {
	case errors.As(err, &oe):
		f.Transient = true
		f.RetryAfterMS = int64(oe.RetryAfter / time.Millisecond)
		if f.RetryAfterMS < 1 {
			f.RetryAfterMS = 1
		}
		return http.StatusTooManyRequests, f
	case errors.Is(err, core.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity, f
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		f.Transient = true
		return http.StatusGatewayTimeout, f
	case errors.As(err, &se):
		f.Transient = true
		var tr interface{ Transient() bool }
		if errors.As(err, &tr) {
			f.Transient = tr.Transient()
		}
		return http.StatusBadGateway, f
	default:
		return http.StatusBadRequest, f
	}
}

// resultsRequest parses the GET /v1/results URL parameters (the
// QueryRequest fields flattened: q, k, parallelism, shards, budget,
// prefetch, degrade, shard_plan, steal, tenant).
func resultsRequest(r *http.Request) (QueryRequest, error) {
	q := r.URL.Query()
	req := QueryRequest{Query: q.Get("q")}
	if req.Query == "" {
		return req, errors.New("missing q parameter")
	}
	intParam := func(name string, into *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s: %v", name, err)
			}
			*into = n
		}
		return nil
	}
	for name, into := range map[string]*int{
		"k": &req.K, "parallelism": &req.Parallelism,
		"shards": &req.Shards, "degrade": &req.Degrade,
	} {
		if err := intParam(name, into); err != nil {
			return req, err
		}
	}
	if v := q.Get("budget"); v != "" {
		b, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("bad budget: %v", err)
		}
		req.Budget = b
	}
	if v := q.Get("prefetch"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("bad prefetch: %v", err)
		}
		req.Prefetch = &d
	}
	req.ShardPlan = q.Get("shard_plan")
	req.Tenant = q.Get("tenant")
	if v := q.Get("steal"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("bad steal: %v", err)
		}
		req.Steal = b
	}
	return req, nil
}

// handleResults streams the engine's Results iterator as NDJSON: one
// Result row per line, in descending grade order, flushed per row so a
// slow consumer sees answers as they are computed. A mid-stream engine
// error terminates the stream with one Fault row. The evaluation runs
// under the request context: when the client disconnects, the iterator
// is cancelled at its next poll and the underlying paginator releases.
func (s *QueryServer) handleResults(w http.ResponseWriter, r *http.Request) {
	req, err := resultsRequest(r)
	if err != nil {
		writeFault(w, http.StatusBadRequest, &Fault{Message: err.Error()})
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get(TenantHeader)
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	// The status line is deferred until the first row: an error before
	// anything streamed (a parse failure, an admission shed) gets its
	// real status code — 429 with a Retry-After header for a shed —
	// where an error after rows have flowed can only terminate the
	// stream with one Fault row.
	w.Header().Set("Content-Type", "application/x-ndjson")
	streaming := false
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res, err := range s.eng.ResultsString(r.Context(), req.Query, s.options(req)...) {
		if err != nil {
			status, f := queryFault(err)
			if !streaming {
				writeFault(w, status, f)
				return
			}
			_ = enc.Encode(f)
			return
		}
		if !streaming {
			w.WriteHeader(http.StatusOK)
			streaming = true
		}
		if encErr := enc.Encode(Result{Object: res.Object, Grade: res.Grade}); encErr != nil {
			// The client went away; the deferred iterator teardown
			// releases the paginator.
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !streaming {
		// An empty result set is still a well-formed empty stream.
		w.WriteHeader(http.StatusOK)
	}
}
