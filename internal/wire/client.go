package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"fuzzydb/internal/gradedset"
)

// TransportError is the typed failure of a wire access: either the
// transport itself failed (connection refused/reset, malformed
// response — Status 0 when no HTTP status was obtained) or the server
// answered with an error envelope (Status carries the HTTP status).
// It implements the Transient capability the resilience layer's retry
// decision consults (subsys.Resilient): network failures and 5xx/429
// responses are transient, other 4xx are permanent, and a cancellation
// of the bound request context is permanent — retrying a dead request
// is futile. The underlying cause (including context.Canceled /
// context.DeadlineExceeded) is reachable through errors.Is/As.
type TransportError struct {
	// Op names the failing endpoint ("entries", "grade", "query", …).
	Op string
	// Status is the HTTP status of an error response; 0 when the failure
	// happened below HTTP (dial, reset, decode).
	Status int
	// Msg is the server's envelope message, when one was decoded.
	Msg string
	// Temporary is the transience classification (see Transient).
	Temporary bool
	// RetryAfterHint is the server's pacing advice on an overload
	// rejection (a 429's Retry-After header or envelope
	// retry_after_ms), zero when the server gave none. See RetryAfter.
	RetryAfterHint time.Duration
	// Err is the underlying cause, when there is one.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	switch {
	case e.Status != 0 && e.Msg != "":
		return fmt.Sprintf("wire: %s: server status %d: %s", e.Op, e.Status, e.Msg)
	case e.Status != 0:
		return fmt.Sprintf("wire: %s: server status %d", e.Op, e.Status)
	default:
		return fmt.Sprintf("wire: %s: %v", e.Op, e.Err)
	}
}

// Transient implements the retry-decision capability.
func (e *TransportError) Transient() bool { return e.Temporary }

// RetryAfter implements the optional pacing capability the resilience
// layer consults (subsys.Resilient): when a shedding server advised a
// retry interval, honoring it replaces the client's own exponential
// backoff for that attempt, so a fleet of resilient clients drains at
// the server's pace instead of re-stampeding it. Zero means no advice.
func (e *TransportError) RetryAfter() time.Duration { return e.RetryAfterHint }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Client speaks the wire protocol to one server. It is safe for
// concurrent use: the pipelined executor's wide random-access gather
// and the per-list background prefetchers all issue requests through
// the one pooled transport.
type Client struct {
	base string
	hc   *http.Client
	meta Meta
}

// ClientOption configures a Client.
type ClientOption func(*clientConfig)

type clientConfig struct {
	hc       *http.Client
	maxConns int
}

// WithHTTPClient substitutes the underlying HTTP client (tests,
// custom transports). The caller owns its pooling configuration.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *clientConfig) { c.hc = hc }
}

// WithMaxConns tunes the connection pool (MaxIdleConnsPerHost) of the
// default transport; ignored with WithHTTPClient. The default, 128,
// covers the pipelined executor's widest default gather fan-out plus
// the per-list prefetchers without handshaking per request.
func WithMaxConns(n int) ClientOption {
	return func(c *clientConfig) {
		if n > 0 {
			c.maxConns = n
		}
	}
}

// Dial connects to the server at baseURL (e.g. "http://127.0.0.1:8080"),
// fetches its /v1/meta self-description, and returns a client over it.
func Dial(baseURL string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{maxConns: 128}
	for _, opt := range opts {
		opt(&cfg)
	}
	hc := cfg.hc
	if hc == nil {
		// One pooled transport per client: keep-alive connections sized
		// for the wide concurrent fan-out of the pipelined executor, so
		// steady-state accesses reuse warm connections instead of paying
		// a TCP handshake per probe.
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.maxConns * 2,
			MaxIdleConnsPerHost: cfg.maxConns,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: hc}
	if err := c.get(context.Background(), "meta", "/v1/meta", &c.meta); err != nil {
		return nil, err
	}
	if c.meta.N < 0 || len(c.meta.Lists) == 0 {
		return nil, &TransportError{Op: "meta", Msg: "server reports no lists"}
	}
	return c, nil
}

// Meta returns the server's self-description fetched at Dial time.
func (c *Client) Meta() Meta { return c.meta }

// Close releases idle pooled connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// Source returns the named remote list as a subsys.Source. The source
// implements subsys.FallibleSource (transport and server faults flow
// through the typed-error machinery instead of panicking),
// subsys.UniverseHinter (when the server reports a dense universe), and
// subsys.ContextSource (per-request contexts bound by the engine reach
// the HTTP requests).
func (c *Client) Source(list string) (*RemoteSource, error) {
	for _, name := range c.meta.Lists {
		if name == list {
			return &RemoteSource{c: c, list: list}, nil
		}
	}
	return nil, fmt.Errorf("wire: server has no list %q (has %v)", list, c.meta.Lists)
}

// Query evaluates one remote engine request (POST /v1/query). The
// server must mount the query endpoints (cmd/fuzzyserve does).
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.post(ctx, "query", "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Results streams a remote evaluation's answers (GET /v1/results): the
// client-side face of the server's NDJSON cursor, yielded in arrival
// (descending grade) order. Canceling ctx mid-stream closes the
// connection, which cancels the server-side evaluation. A mid-stream
// server fault or transport failure yields one (zero Result, err) pair.
func (c *Client) Results(ctx context.Context, req QueryRequest) func(yield func(Result, error) bool) {
	return func(yield func(Result, error) bool) {
		u := c.base + "/v1/results?" + resultsParams(req)
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			yield(Result{}, &TransportError{Op: "results", Err: err})
			return
		}
		hresp, err := c.hc.Do(hreq)
		if err != nil {
			yield(Result{}, c.transportFailure(ctx, "results", err))
			return
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			yield(Result{}, envelopeError("results", hresp))
			return
		}
		dec := json.NewDecoder(hresp.Body)
		for {
			// A row is either a Result or a terminating Fault envelope;
			// decode the superset and dispatch on which fields are set.
			var row struct {
				Result
				Message      *string `json:"error"`
				Transient    bool    `json:"transient"`
				RetryAfterMS int64   `json:"retry_after_ms"`
			}
			if err := dec.Decode(&row); err != nil {
				if err == io.EOF {
					return
				}
				yield(Result{}, c.transportFailure(ctx, "results", err))
				return
			}
			if row.Message != nil {
				yield(Result{}, &TransportError{
					Op: "results", Msg: *row.Message, Temporary: row.Transient,
					RetryAfterHint: time.Duration(row.RetryAfterMS) * time.Millisecond,
				})
				return
			}
			if !yield(row.Result, nil) {
				return
			}
		}
	}
}

// resultsParams flattens a QueryRequest onto the /v1/results URL
// parameter form.
func resultsParams(req QueryRequest) string {
	var b bytes.Buffer
	b.WriteString("q=")
	b.WriteString(url.QueryEscape(req.Query))
	add := func(name string, v int) {
		if v > 0 {
			fmt.Fprintf(&b, "&%s=%d", name, v)
		}
	}
	add("k", req.K)
	add("parallelism", req.Parallelism)
	add("shards", req.Shards)
	add("degrade", req.Degrade)
	if req.Budget > 0 {
		fmt.Fprintf(&b, "&budget=%s", strconv.FormatFloat(req.Budget, 'g', -1, 64))
	}
	if req.Prefetch != nil {
		fmt.Fprintf(&b, "&prefetch=%d", *req.Prefetch)
	}
	if req.Tenant != "" {
		fmt.Fprintf(&b, "&tenant=%s", url.QueryEscape(req.Tenant))
	}
	return b.String()
}

// get performs one GET round trip and decodes the 200 body into out.
func (c *Client) get(ctx context.Context, op, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return &TransportError{Op: op, Err: err}
	}
	return c.round(ctx, op, req, out)
}

// post performs one POST round trip with a JSON body and decodes the
// 200 response into out.
func (c *Client) post(ctx context.Context, op, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return &TransportError{Op: op, Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return &TransportError{Op: op, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	return c.round(ctx, op, req, out)
}

// round issues the request and decodes the response, classifying every
// failure mode into a typed *TransportError.
func (c *Client) round(ctx context.Context, op string, req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.transportFailure(ctx, op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return envelopeError(op, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.transportFailure(ctx, op, err)
	}
	return nil
}

// transportFailure classifies a sub-HTTP failure: cancellations of the
// bound context are permanent (the request is dead; retrying under the
// same context cannot succeed), everything else — dial failures,
// resets, truncated bodies — is transient.
func (c *Client) transportFailure(ctx context.Context, op string, err error) *TransportError {
	te := &TransportError{Op: op, Err: err, Temporary: true}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		te.Temporary = false
		if ctx.Err() != nil {
			// Surface the context error itself to errors.Is, not just the
			// transport's wrapping of it.
			te.Err = fmt.Errorf("%w (%v)", context.Cause(ctx), err)
		}
	}
	return te
}

// envelopeError turns a non-2xx response into a typed error, honoring
// the server's own transience claim when the body carries a Fault
// envelope and falling back to the status class (5xx and 429 transient,
// other 4xx permanent).
func envelopeError(op string, resp *http.Response) *TransportError {
	te := &TransportError{Op: op, Status: resp.StatusCode}
	te.Temporary = resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
	// Transient is a *bool here so a body that merely resembles an
	// envelope (a proxy's error page with an "error" key) cannot demote
	// a 5xx to permanent by omitting the field.
	var f struct {
		Message      string `json:"error"`
		Transient    *bool  `json:"transient"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&f); err == nil && f.Message != "" {
		te.Msg = f.Message
		if f.Transient != nil {
			te.Temporary = *f.Transient
		}
		if f.RetryAfterMS > 0 {
			te.RetryAfterHint = time.Duration(f.RetryAfterMS) * time.Millisecond
		}
	}
	// The standard header is the fallback (whole seconds, so the
	// envelope's millisecond form wins when both are present).
	if te.RetryAfterHint == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			te.RetryAfterHint = time.Duration(secs) * time.Second
		}
	}
	return te
}

// RemoteSource is one remote list as a subsys.Source: sorted access
// maps to paged /v1/entries fetches, random access to /v1/grade. Obtain
// one from Client.Source.
//
// The Try* methods are safe for concurrent use (the pipelined
// executor's prefetchers and gather workers all hit the shared pooled
// transport). The plain Source methods panic on a transport failure —
// they exist to satisfy the interface for consumers that never look at
// the fallible face; the middleware's Counted always prefers Try*, so
// inside the engine a wire failure is always a typed error, never a
// panic.
type RemoteSource struct {
	c    *Client
	list string
	// ctx is the per-request context bound by the engine
	// (subsys.ContextSource); atomic because leftover background
	// prefetch workers from a previous evaluation may still read it
	// while the next evaluation binds.
	ctx atomic.Pointer[context.Context]
}

// BindContext implements subsys.ContextSource: subsequent accesses run
// their HTTP requests under ctx.
func (s *RemoteSource) BindContext(ctx context.Context) {
	if ctx == nil {
		s.ctx.Store(nil)
		return
	}
	s.ctx.Store(&ctx)
}

// boundCtx returns the bound per-request context, or Background.
func (s *RemoteSource) boundCtx() context.Context {
	if p := s.ctx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// Len implements Source: the universe size from the server's meta.
func (s *RemoteSource) Len() int { return s.c.meta.N }

// Universe implements subsys.UniverseHinter from the server's meta.
func (s *RemoteSource) Universe() (int, bool) { return s.c.meta.N, s.c.meta.Dense }

// TryEntries implements subsys.FallibleSource: one logical batched
// sorted access, coalesced into as few paged fetches as the server's
// page cap allows. On failure the entries obtained before it are
// returned alongside the error, honoring the partial-span contract.
func (s *RemoteSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if n := s.c.meta.N; hi > n {
		hi = n
	}
	if lo >= hi {
		return nil, nil
	}
	ctx := s.boundCtx()
	var out []gradedset.Entry
	pos := lo
	for pos < hi {
		var resp EntriesResponse
		if err := s.c.post(ctx, "entries", "/v1/entries", EntriesRequest{List: s.list, Lo: pos, Hi: hi}, &resp); err != nil {
			return out, err
		}
		span := resp.entries()
		out = append(out, span...)
		pos += len(span)
		if resp.Err != nil {
			return out, &TransportError{Op: "entries", Msg: resp.Err.Message, Temporary: resp.Err.Transient}
		}
		if len(span) == 0 {
			// Defensive: a short span without an error would otherwise
			// spin; treat it as end of data (mirrors subsys.Resilient).
			break
		}
	}
	return out, nil
}

// TryEntry implements subsys.FallibleSource.
func (s *RemoteSource) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := s.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

// TryGrade implements subsys.FallibleSource: one random access.
func (s *RemoteSource) TryGrade(obj int) (float64, error) {
	var resp GradeResponse
	if err := s.c.post(s.boundCtx(), "grade", "/v1/grade", GradeRequest{List: s.list, Object: obj}, &resp); err != nil {
		return 0, err
	}
	if resp.Err != nil {
		return 0, &TransportError{Op: "grade", Msg: resp.Err.Message, Temporary: resp.Err.Transient}
	}
	return resp.Grade, nil
}

// Entry implements Source; it panics on a transport failure (see the
// type comment).
func (s *RemoteSource) Entry(rank int) gradedset.Entry {
	e, err := s.TryEntry(rank)
	if err != nil {
		panic(fmt.Sprintf("wire: infallible Entry on remote list %q: %v", s.list, err))
	}
	return e
}

// Entries implements Source; it panics on a transport failure.
func (s *RemoteSource) Entries(lo, hi int) []gradedset.Entry {
	span, err := s.TryEntries(lo, hi)
	if err != nil {
		panic(fmt.Sprintf("wire: infallible Entries on remote list %q: %v", s.list, err))
	}
	return span
}

// Grade implements Source; it panics on a transport failure.
func (s *RemoteSource) Grade(obj int) float64 {
	g, err := s.TryGrade(obj)
	if err != nil {
		panic(fmt.Sprintf("wire: infallible Grade on remote list %q: %v", s.list, err))
	}
	return g
}
