package query

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
)

func TestParseAtomForms(t *testing.T) {
	cases := []struct {
		in   string
		want Atomic
	}{
		{`Artist = "Beatles"`, Atomic{"Artist", "Beatles"}},
		{`Artist="Beatles"`, Atomic{"Artist", "Beatles"}},
		{`Color ~ red`, Atomic{"Color", "red"}},
		{`Color~"a red album"`, Atomic{"Color", "a red album"}},
		{`X_1 = "t"`, Atomic{"X_1", "t"}},
	}
	for _, c := range cases {
		n, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		got, ok := n.(Atomic)
		if !ok || got != c.want {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, n, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR: a OR b AND c == a OR (b AND c).
	n, err := Parse(`A = x OR B = y AND C = z`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := n.(Or)
	if !ok || len(or.Children) != 2 {
		t.Fatalf("root = %#v, want Or with 2 children", n)
	}
	if _, ok := or.Children[0].(Atomic); !ok {
		t.Errorf("first child = %#v, want Atomic", or.Children[0])
	}
	and, ok := or.Children[1].(And)
	if !ok || len(and.Children) != 2 {
		t.Errorf("second child = %#v, want And with 2 children", or.Children[1])
	}
}

func TestParseParensAndNot(t *testing.T) {
	n, err := Parse(`NOT (A = x OR B = y) AND C = z`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := n.(And)
	if !ok {
		t.Fatalf("root = %#v, want And", n)
	}
	not, ok := and.Children[0].(Not)
	if !ok {
		t.Fatalf("first child = %#v, want Not", and.Children[0])
	}
	if _, ok := not.Child.(Or); !ok {
		t.Errorf("negated child = %#v, want Or", not.Child)
	}
	// Double negation parses.
	if _, err := Parse(`NOT NOT A = x`); err != nil {
		t.Errorf("double NOT: %v", err)
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	n, err := Parse(`a = x and b = y or not c = z`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(Or); !ok {
		t.Errorf("root = %#v, want Or", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`AND`,
		`A =`,
		`A "x"`,
		`(A = x`,
		`A = x)`,
		`A = x OR`,
		`A = x y`,
		`A = "unterminated`,
		`% = x`,
		`NOT`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		`Artist = "Beatles"`,
		`(Artist = "Beatles") AND (AlbumColor = "red")`,
		`(A = "x") OR ((B = "y") AND (NOT C = "z"))`,
	}
	for _, in := range inputs {
		n, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", n.String(), err)
		}
		if again.String() != n.String() {
			t.Errorf("round trip changed: %q -> %q", n.String(), again.String())
		}
	}
}

func TestCompileConjunctionShape(t *testing.T) {
	c, err := Compile(MustParse(`A = x AND B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape != ShapeConjunction {
		t.Errorf("Shape = %v, want conjunction", c.Shape)
	}
	if len(c.Atoms) != 2 {
		t.Fatalf("Atoms = %v", c.Atoms)
	}
	if !c.Func.Monotone() || !c.Func.Strict() {
		t.Error("conjunction of atoms under min must be monotone and strict")
	}
	if got := c.Func.Apply([]float64{0.3, 0.8}); got != 0.3 {
		t.Errorf("Apply = %v, want 0.3", got)
	}
}

func TestCompileDisjunctionShape(t *testing.T) {
	c, err := Compile(MustParse(`A = x OR B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape != ShapeDisjunction {
		t.Errorf("Shape = %v, want disjunction", c.Shape)
	}
	if !c.Func.Monotone() {
		t.Error("disjunction must be monotone")
	}
	if c.Func.Strict() {
		t.Error("disjunction must not be strict")
	}
	if got := c.Func.Apply([]float64{0.3, 0.8}); got != 0.8 {
		t.Errorf("Apply = %v, want 0.8", got)
	}
}

func TestCompileNegationKillsMonotonicity(t *testing.T) {
	c, err := Compile(MustParse(`A = x AND NOT B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape != ShapeOther {
		t.Errorf("Shape = %v, want other", c.Shape)
	}
	if c.Func.Monotone() {
		t.Error("negated query must not be monotone")
	}
	if got := c.Func.Apply([]float64{0.9, 0.3}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Apply = %v, want min(0.9, 1-0.3)=0.7", got)
	}
}

func TestCompileAtomShape(t *testing.T) {
	c, err := Compile(MustParse(`A = x`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape != ShapeAtom || len(c.Atoms) != 1 {
		t.Errorf("Shape=%v Atoms=%v", c.Shape, c.Atoms)
	}
	if got := c.Func.Apply([]float64{0.4}); got != 0.4 {
		t.Errorf("identity apply = %v", got)
	}
	if !c.Func.Strict() || !c.Func.Monotone() {
		t.Error("atom must be monotone and strict")
	}
}

func TestCompileDeduplicatesAtoms(t *testing.T) {
	// A ∧ A and the hard query A ∧ ¬A collapse to one atom.
	c, err := Compile(MustParse(`A = x AND A = x`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Atoms) != 1 {
		t.Fatalf("Atoms = %v, want 1 (deduplicated)", c.Atoms)
	}
	if got := c.Func.Apply([]float64{0.6}); got != 0.6 {
		t.Errorf("idempotency broken: %v", got)
	}
	hard, err := Compile(MustParse(`Q = v AND NOT Q = v`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if len(hard.Atoms) != 1 {
		t.Fatalf("hard query atoms = %v", hard.Atoms)
	}
	if got := hard.Func.Apply([]float64{0.5}); got != 0.5 {
		t.Errorf("Q ∧ ¬Q at 0.5 = %v, want 0.5 (the maximum)", got)
	}
	if got := hard.Func.Apply([]float64{0.9}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Q ∧ ¬Q at 0.9 = %v, want 0.1", got)
	}
}

func TestCompileNestedEvaluation(t *testing.T) {
	// (A AND B) OR (NOT C): max(min(a,b), 1-c).
	c, err := Compile(MustParse(`(A = x AND B = y) OR NOT C = z`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	got := c.Func.Apply([]float64{0.7, 0.4, 0.8})
	want := math.Max(math.Min(0.7, 0.4), 1-0.8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Apply = %v, want %v", got, want)
	}
}

func TestCompileWithNonStandardTNorm(t *testing.T) {
	sem := WithTNorm(agg.AlgebraicProduct)
	c, err := Compile(MustParse(`A = x AND B = y`), sem)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Func.Apply([]float64{0.5, 0.4}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("product semantics apply = %v, want 0.2", got)
	}
	if !c.Func.Monotone() || !c.Func.Strict() {
		t.Error("product conjunction should stay monotone and strict")
	}
	// Dual co-norm drives OR: algebraic sum.
	d, err := Compile(MustParse(`A = x OR B = y`), sem)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Func.Apply([]float64{0.5, 0.4}); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("algebraic sum apply = %v, want 0.7", got)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Standard()); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := Compile(And{}, Standard()); err == nil {
		t.Error("empty conjunction accepted")
	}
	if _, err := Compile(Or{}, Standard()); err == nil {
		t.Error("empty disjunction accepted")
	}
	if _, err := Compile(Not{}, Standard()); err == nil {
		t.Error("empty negation accepted")
	}
	if _, err := Compile(Atomic{"A", "x"}, Semantics{}); err == nil {
		t.Error("incomplete semantics accepted")
	}
}

func TestCompiledFuncArityPanics(t *testing.T) {
	c, err := Compile(MustParse(`A = x AND B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity should panic")
		}
	}()
	c.Func.Apply([]float64{0.5})
}

// Property: Theorem 3.1's logical-equivalence preservation under the
// standard rules — compiled idempotent/distributed variants evaluate
// identically.
func TestStandardSemanticsPreserveEquivalenceProperty(t *testing.T) {
	sem := Standard()
	pairs := [][2]string{
		{`A = x AND (B = y OR C = z)`, `(A = x AND B = y) OR (A = x AND C = z)`},
		{`A = x AND A = x`, `A = x`},
		{`A = x OR (A = x AND B = y)`, `A = x`},
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		grades := map[Atomic]float64{
			{"A", "x"}: rng.Float64(),
			{"B", "y"}: rng.Float64(),
			{"C", "z"}: rng.Float64(),
		}
		for _, pair := range pairs {
			va, err := evalWith(pair[0], sem, grades)
			if err != nil {
				return false
			}
			vb, err := evalWith(pair[1], sem, grades)
			if err != nil {
				return false
			}
			if math.Abs(va-vb) > 1e-12 {
				t.Logf("equivalence broken: %q=%v vs %q=%v", pair[0], va, pair[1], vb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Counter-check: the algebraic product does NOT preserve idempotency
// (A ∧ A ≠ A), which is why Theorem 3.1 singles out min.
func TestProductBreaksIdempotency(t *testing.T) {
	sem := WithTNorm(agg.AlgebraicProduct)
	grades := map[Atomic]float64{{"A", "x"}: 0.5}
	va, err := evalWith(`A = x AND A = x`, sem, grades)
	if err != nil {
		t.Fatal(err)
	}
	// Deduplication maps both conjuncts to one coordinate, but the
	// conjunction still multiplies the coordinate with itself.
	if math.Abs(va-0.25) > 1e-12 {
		t.Errorf("A AND A under product = %v, want 0.25", va)
	}
}

func evalWith(q string, sem Semantics, grades map[Atomic]float64) (float64, error) {
	c, err := Compile(MustParse(q), sem)
	if err != nil {
		return 0, err
	}
	gs := make([]float64, len(c.Atoms))
	for i, a := range c.Atoms {
		gs[i] = grades[a]
	}
	return c.Func.Apply(gs), nil
}

func TestConjHelper(t *testing.T) {
	single := Conj(Atomic{"A", "x"})
	if _, ok := single.(Atomic); !ok {
		t.Errorf("Conj(one) = %#v, want Atomic", single)
	}
	double := Conj(Atomic{"A", "x"}, Atomic{"B", "y"})
	and, ok := double.(And)
	if !ok || len(and.Children) != 2 {
		t.Errorf("Conj(two) = %#v", double)
	}
}

func TestErrSyntaxWrapped(t *testing.T) {
	_, err := Parse(`(A = x`)
	if !errors.Is(err, ErrSyntax) {
		t.Errorf("error %v does not wrap ErrSyntax", err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse(`((`)
}
