// Package query implements the query model of Section 2: atomic queries
// of the form X = t (attribute, target) combined by Boolean connectives,
// graded under configurable fuzzy semantics.
//
// A query is an AST of Atomic, And, Or, and Not nodes. Semantics assigns
// the aggregation functions: by default Zadeh's standard rules — min for
// conjunction, max for disjunction, 1−x for negation — which by Theorem
// 3.1 are the unique monotone rules preserving logical equivalence; any
// t-norm/co-norm pair from the agg package can be substituted.
//
// Compile flattens a query into (deduplicated atomic subqueries, one
// derived aggregation function over their grade vector). The derived
// function carries the monotone/strict metadata the planner needs:
// negation destroys monotonicity (forcing the naive algorithm, cf. the
// provably hard query of Section 7), disjunction destroys strictness
// (making B₀ applicable), and a pure conjunction under a strict t-norm
// retains both (making A₀/A₀′ applicable and optimal).
//
// The package also ships a small concrete syntax:
//
//	(Artist = "Beatles") AND (AlbumColor ~ "red")
//	Color ~ "red" AND (Shape ~ "round" OR NOT Format = "mono")
//
// parsed by a recursive-descent parser. AND binds tighter than OR; NOT
// binds tightest; '=' and '~' are synonymous (a traditional subsystem
// grades crisply, a multimedia one fuzzily — the syntax does not care).
package query
