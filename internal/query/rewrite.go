package query

// Query normalization. Theorem 3.1 is exactly the license an optimizer
// needs: under the standard rules (min, max, 1−x), logically equivalent
// queries built from ∧ and ∨ receive identical grades, so equivalence
// rewrites are safe. Under other semantics only a subset of the rules
// remains sound — the algebraic product, for instance, is associative
// (flattening is fine) but not idempotent (A ∧ A ≠ A) — so each rule is
// gated individually.
//
// Normalization matters to the planner: `NOT NOT (A AND B)` is
// non-monotone as written (forcing naive evaluation) but normalizes to a
// plain conjunction that A₀′ evaluates in O(√(Nk)).

// RewriteRules selects which equivalence rewrites may fire.
type RewriteRules struct {
	// Flatten merges nested conjunctions into one n-ary conjunction (and
	// likewise disjunctions). Sound when the connective is associative:
	// every t-norm/co-norm, but not the means.
	Flatten bool
	// DoubleNegation eliminates ¬¬φ → φ. Sound when negation is an
	// involution, as the standard 1−x is.
	DoubleNegation bool
	// Idempotent deduplicates identical children of a connective
	// (A ∧ A → A). Sound only for min/max (Theorem 3.1).
	Idempotent bool
	// Absorption applies A ∨ (A ∧ B) → A and A ∧ (A ∨ B) → A. Sound only
	// for min/max.
	Absorption bool
}

// StandardRules returns the full rule set, sound under Standard()
// semantics by Theorem 3.1.
func StandardRules() RewriteRules {
	return RewriteRules{Flatten: true, DoubleNegation: true, Idempotent: true, Absorption: true}
}

// RulesFor derives the sound rule set for a semantics: associativity is
// assumed for t-norm/co-norm connectives (and min/max); idempotency and
// absorption require min and max; double negation requires the standard
// negation. Unknown aggregation functions get no rules, which is always
// safe.
func RulesFor(sem Semantics) RewriteRules {
	var r RewriteRules
	isMin := sem.And != nil && sem.And.Name() == "min"
	isMax := sem.Or != nil && sem.Or.Name() == "max"
	r.Flatten = associative(sem.And) && associative(sem.Or)
	r.DoubleNegation = standardNegation(sem)
	r.Idempotent = isMin && isMax
	r.Absorption = isMin && isMax
	return r
}

// associative recognizes connectives known to be associative: the TNorm
// and CoNorm families (associativity is one of their axioms) and the
// native min/max.
func associative(f interface{ Name() string }) bool {
	switch f.(type) {
	case interface{ Combine(x, y float64) float64 }:
		// TNorm and CoNorm expose their 2-ary core; they are associative
		// by definition.
		return true
	}
	if f == nil {
		return false
	}
	switch f.Name() {
	case "min", "max":
		return true
	}
	return false
}

// standardNegation detects the involutive 1−x rule by evaluation.
func standardNegation(sem Semantics) bool {
	if sem.Not == nil {
		return false
	}
	for _, x := range []float64{0, 0.25, 0.5, 0.8, 1} {
		if sem.Not(x) != 1-x {
			return false
		}
	}
	return true
}

// Rewrite normalizes q under the given rules, applying them bottom-up to
// a fixpoint. The result grades identically to q whenever the rules are
// sound for the semantics in use (see RulesFor).
func Rewrite(q Node, r RewriteRules) Node {
	if q == nil {
		return nil
	}
	for {
		next, changed := rewriteOnce(q, r)
		if !changed {
			return next
		}
		q = next
	}
}

func rewriteOnce(q Node, r RewriteRules) (Node, bool) {
	switch n := q.(type) {
	case Atomic:
		return n, false
	case Weighted:
		child, changed := rewriteOnce(n.Child, r)
		// A weight of exactly 1 on every sibling would be removable, but
		// that is the enclosing connective's call; here only normalize
		// the child.
		return Weighted{Child: child, Weight: n.Weight}, changed
	case Not:
		child, changed := rewriteOnce(n.Child, r)
		if r.DoubleNegation {
			if inner, ok := child.(Not); ok {
				return inner.Child, true
			}
		}
		return Not{Child: child}, changed
	case And:
		kids, changed := rewriteChildren(n.Children, r)
		kids, c2 := normalizeNary(kids, r, true)
		out := collapse(kids, true)
		return out, changed || c2 || !isAnd(out)
	case Or:
		kids, changed := rewriteChildren(n.Children, r)
		kids, c2 := normalizeNary(kids, r, false)
		out := collapse(kids, false)
		return out, changed || c2 || !isOr(out)
	default:
		return q, false
	}
}

func isAnd(n Node) bool { _, ok := n.(And); return ok }
func isOr(n Node) bool  { _, ok := n.(Or); return ok }

func rewriteChildren(children []Node, r RewriteRules) ([]Node, bool) {
	out := make([]Node, len(children))
	changed := false
	for i, c := range children {
		nc, ch := rewriteOnce(c, r)
		out[i] = nc
		changed = changed || ch
	}
	return out, changed
}

// normalizeNary applies flattening, idempotent deduplication, and
// absorption to the children of a conjunction (isAnd) or disjunction.
func normalizeNary(children []Node, r RewriteRules, isAndOp bool) ([]Node, bool) {
	changed := false

	if r.Flatten {
		var flat []Node
		for _, c := range children {
			switch cc := c.(type) {
			case And:
				if isAndOp {
					flat = append(flat, cc.Children...)
					changed = true
					continue
				}
			case Or:
				if !isAndOp {
					flat = append(flat, cc.Children...)
					changed = true
					continue
				}
			}
			flat = append(flat, c)
		}
		children = flat
	}

	if r.Idempotent {
		var dedup []Node
		for _, c := range children {
			dup := false
			for _, d := range dedup {
				if equalNodes(c, d) {
					dup = true
					break
				}
			}
			if dup {
				changed = true
				continue
			}
			dedup = append(dedup, c)
		}
		children = dedup
	}

	if r.Absorption {
		// Inside a conjunction, a child A absorbs a sibling (A ∨ …);
		// inside a disjunction, A absorbs (A ∧ …).
		var kept []Node
		for _, c := range children {
			absorbed := false
			inner := innerChildren(c, isAndOp)
			if inner != nil {
				for _, other := range children {
					if equalNodes(other, c) {
						continue
					}
					for _, ic := range inner {
						if equalNodes(other, ic) {
							absorbed = true
							break
						}
					}
					if absorbed {
						break
					}
				}
			}
			if absorbed {
				changed = true
				continue
			}
			kept = append(kept, c)
		}
		children = kept
	}

	return children, changed
}

// innerChildren returns the children of c if it is the opposite
// connective (Or when wantOr, And otherwise).
func innerChildren(c Node, wantOr bool) []Node {
	if wantOr {
		if o, ok := c.(Or); ok {
			return o.Children
		}
		return nil
	}
	if a, ok := c.(And); ok {
		return a.Children
	}
	return nil
}

// collapse removes degenerate connectives with a single child.
func collapse(children []Node, isAndOp bool) Node {
	if len(children) == 1 {
		return children[0]
	}
	if isAndOp {
		return And{Children: children}
	}
	return Or{Children: children}
}

// equalNodes reports structural equality.
func equalNodes(a, b Node) bool {
	switch x := a.(type) {
	case Atomic:
		y, ok := b.(Atomic)
		return ok && x == y
	case Weighted:
		y, ok := b.(Weighted)
		return ok && x.Weight == y.Weight && equalNodes(x.Child, y.Child)
	case Not:
		y, ok := b.(Not)
		return ok && equalNodes(x.Child, y.Child)
	case And:
		y, ok := b.(And)
		return ok && equalChildren(x.Children, y.Children)
	case Or:
		y, ok := b.(Or)
		return ok && equalChildren(x.Children, y.Children)
	}
	return false
}

func equalChildren(a, b []Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalNodes(a[i], b[i]) {
			return false
		}
	}
	return true
}
