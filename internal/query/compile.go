package query

import (
	"fmt"

	"fuzzydb/internal/agg"
)

// Shape classifies a query for the planner.
type Shape int

const (
	// ShapeAtom is a single atomic query.
	ShapeAtom Shape = iota
	// ShapeConjunction is a conjunction whose children are all atoms.
	ShapeConjunction
	// ShapeDisjunction is a disjunction whose children are all atoms.
	ShapeDisjunction
	// ShapeOther is any other Boolean combination.
	ShapeOther
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeAtom:
		return "atom"
	case ShapeConjunction:
		return "conjunction"
	case ShapeDisjunction:
		return "disjunction"
	default:
		return "other"
	}
}

// Compiled is a query flattened for execution: the distinct atomic
// subqueries (each to be answered by one subsystem) plus one derived
// aggregation function over their grade vector. The derived function's
// Monotone/Strict metadata is computed structurally and drives algorithm
// selection exactly as in the paper: monotone ⇒ A₀-family applies
// (Theorem 4.2); monotone and strict ⇒ the Θ bound applies (Theorem 6.5);
// non-monotone (negation) ⇒ only the naive algorithm is safe (Section 7).
type Compiled struct {
	Atoms []Atomic
	Func  agg.Func
	Shape Shape
}

// Compile flattens q under the given semantics. Duplicate atoms (same
// attribute and target) share one coordinate, so A ∧ A queries one
// subsystem once.
func Compile(q Node, sem Semantics) (*Compiled, error) {
	if err := sem.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("query: nil query")
	}
	c := &compiler{sem: sem, index: make(map[Atomic]int)}
	root, err := c.walk(q)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Atoms: c.atoms,
		Func: compiledFunc{
			name:     "compiled(" + q.String() + ")",
			root:     root,
			arity:    len(c.atoms),
			sem:      sem,
			monotone: root.monotone(sem),
			strict:   root.strict(sem),
		},
		Shape: shapeOf(q),
	}, nil
}

func shapeOf(q Node) Shape {
	switch n := q.(type) {
	case Atomic:
		return ShapeAtom
	case And:
		// Weighted children change the aggregation away from the bare
		// connective, so the min-specific plans must not fire: classify
		// as Other.
		for _, ch := range n.Children {
			if _, ok := ch.(Atomic); !ok {
				return ShapeOther
			}
		}
		return ShapeConjunction
	case Or:
		for _, ch := range n.Children {
			if _, ok := ch.(Atomic); !ok {
				return ShapeOther
			}
		}
		return ShapeDisjunction
	default:
		return ShapeOther
	}
}

// compiler assigns coordinates to distinct atoms and builds an evaluation
// tree mirroring the AST.
type compiler struct {
	sem   Semantics
	atoms []Atomic
	index map[Atomic]int
}

func (c *compiler) walk(q Node) (evalNode, error) {
	switch n := q.(type) {
	case Atomic:
		i, ok := c.index[n]
		if !ok {
			i = len(c.atoms)
			c.index[n] = i
			c.atoms = append(c.atoms, n)
		}
		return leafNode(i), nil
	case And:
		if len(n.Children) == 0 {
			return nil, fmt.Errorf("query: empty conjunction")
		}
		kids, weights, err := c.walkAll(n.Children)
		if err != nil {
			return nil, err
		}
		return c.connective(opAnd, kids, weights)
	case Or:
		if len(n.Children) == 0 {
			return nil, fmt.Errorf("query: empty disjunction")
		}
		kids, weights, err := c.walkAll(n.Children)
		if err != nil {
			return nil, err
		}
		return c.connective(opOr, kids, weights)
	case Not:
		if n.Child == nil {
			return nil, fmt.Errorf("query: NOT of nothing")
		}
		kid, err := c.walk(n.Child)
		if err != nil {
			return nil, err
		}
		return opNode{op: opNot, kids: []evalNode{kid}}, nil
	case Weighted:
		return nil, fmt.Errorf("query: weight outside a conjunction or disjunction")
	default:
		return nil, fmt.Errorf("query: unknown node type %T", q)
	}
}

// walkAll compiles children, peeling Weighted wrappers. weights is nil
// when no child is weighted; otherwise it has one entry per child
// (unweighted children default to 1).
func (c *compiler) walkAll(children []Node) ([]evalNode, []float64, error) {
	kids := make([]evalNode, len(children))
	weights := make([]float64, len(children))
	any := false
	for i, ch := range children {
		weights[i] = 1
		if w, ok := ch.(Weighted); ok {
			if w.Weight < 0 {
				return nil, nil, fmt.Errorf("query: negative weight %v", w.Weight)
			}
			if w.Child == nil {
				return nil, nil, fmt.Errorf("query: weight on nothing")
			}
			any = true
			weights[i] = w.Weight
			ch = w.Child
		}
		k, err := c.walk(ch)
		if err != nil {
			return nil, nil, err
		}
		kids[i] = k
	}
	if !any {
		return kids, nil, nil
	}
	return kids, weights, nil
}

// connective builds the evaluation node for And/Or, attaching the
// Fagin–Wimmers weighted form of the connective when weights are present.
func (c *compiler) connective(op opKind, kids []evalNode, weights []float64) (evalNode, error) {
	node := opNode{op: op, kids: kids}
	if weights == nil {
		return node, nil
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("query: weights sum to %v", sum)
	}
	normalized := make([]float64, len(weights))
	for i, w := range weights {
		normalized[i] = w / sum
	}
	base := c.sem.And
	if op == opOr {
		base = c.sem.Or
	}
	wf, err := agg.NewWeighted(base, normalized)
	if err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	node.weighted = wf
	return node, nil
}

// evalNode evaluates one AST node over the atom grade vector.
type evalNode interface {
	eval(sem Semantics, gs []float64) float64
	monotone(sem Semantics) bool
	strict(sem Semantics) bool
}

// leafNode reads coordinate i: the grade of the i-th distinct atom.
type leafNode int

func (l leafNode) eval(_ Semantics, gs []float64) float64 { return gs[l] }
func (l leafNode) monotone(Semantics) bool                { return true }
func (l leafNode) strict(Semantics) bool                  { return true }

type opKind int

const (
	opAnd opKind = iota
	opOr
	opNot
)

type opNode struct {
	op   opKind
	kids []evalNode
	// weighted, when set, replaces the bare connective with its
	// Fagin–Wimmers weighted form over the children's values.
	weighted *agg.Weighted
}

func (o opNode) eval(sem Semantics, gs []float64) float64 {
	switch o.op {
	case opNot:
		return sem.Not(o.kids[0].eval(sem, gs))
	default:
		vals := make([]float64, len(o.kids))
		for i, k := range o.kids {
			vals[i] = k.eval(sem, gs)
		}
		if o.weighted != nil {
			return o.weighted.Apply(vals)
		}
		if o.op == opAnd {
			return sem.And.Apply(vals)
		}
		return sem.Or.Apply(vals)
	}
}

func (o opNode) monotone(sem Semantics) bool {
	if o.op == opNot {
		// The standard negation (and any decreasing rule) destroys
		// monotonicity — except over a constant subtree, a case not worth
		// special-casing; the planner simply falls back to naive.
		return false
	}
	var conn agg.Func = sem.And
	if o.op == opOr {
		conn = sem.Or
	}
	if o.weighted != nil {
		conn = o.weighted
	}
	if !conn.Monotone() {
		return false
	}
	for _, k := range o.kids {
		if !k.monotone(sem) {
			return false
		}
	}
	return true
}

func (o opNode) strict(sem Semantics) bool {
	switch o.op {
	case opNot:
		return false
	case opOr:
		// A disjunction is 1 as soon as one disjunct is 1 under any
		// co-norm, so strictness is lost unless there is a single child.
		if len(o.kids) > 1 {
			return false
		}
		return o.kids[0].strict(sem)
	default:
		conn := sem.And
		if o.weighted != nil {
			conn = o.weighted
		}
		if !conn.Strict() {
			return false
		}
		for _, k := range o.kids {
			if !k.strict(sem) {
				return false
			}
		}
		return true
	}
}

// compiledFunc adapts an evaluation tree to the agg.Func interface.
type compiledFunc struct {
	name     string
	root     evalNode
	arity    int
	sem      Semantics
	monotone bool
	strict   bool
}

func (f compiledFunc) Name() string { return f.name }

func (f compiledFunc) Apply(gs []float64) float64 {
	if len(gs) != f.arity {
		panic(fmt.Sprintf("query: compiled function got %d grades, want %d", len(gs), f.arity))
	}
	return f.root.eval(f.sem, gs)
}

func (f compiledFunc) Monotone() bool { return f.monotone }
func (f compiledFunc) Strict() bool   { return f.strict }
