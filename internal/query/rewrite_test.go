package query

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
)

func TestRewriteDoubleNegation(t *testing.T) {
	q := MustParse(`NOT NOT (A = x AND B = y)`)
	got := Rewrite(q, StandardRules())
	if _, ok := got.(And); !ok {
		t.Fatalf("rewrite = %s, want a conjunction", got)
	}
	// Triple negation keeps one NOT.
	q3 := Not{Child: Not{Child: Not{Child: Atomic{"A", "x"}}}}
	got3 := Rewrite(q3, StandardRules())
	n, ok := got3.(Not)
	if !ok {
		t.Fatalf("triple negation = %s", got3)
	}
	if _, ok := n.Child.(Atomic); !ok {
		t.Fatalf("triple negation = %s", got3)
	}
}

func TestRewriteFlatten(t *testing.T) {
	q := And{Children: []Node{
		And{Children: []Node{Atomic{"A", "x"}, Atomic{"B", "y"}}},
		Atomic{"C", "z"},
	}}
	got := Rewrite(q, StandardRules())
	and, ok := got.(And)
	if !ok || len(and.Children) != 3 {
		t.Fatalf("flatten = %s", got)
	}
	if shapeOf(got) != ShapeConjunction {
		t.Errorf("flattened shape = %v, want conjunction", shapeOf(got))
	}
}

func TestRewriteIdempotentAndCollapse(t *testing.T) {
	q := And{Children: []Node{Atomic{"A", "x"}, Atomic{"A", "x"}}}
	got := Rewrite(q, StandardRules())
	if _, ok := got.(Atomic); !ok {
		t.Fatalf("A AND A = %s, want A", got)
	}
}

func TestRewriteAbsorption(t *testing.T) {
	// A OR (A AND B) -> A
	q := Or{Children: []Node{
		Atomic{"A", "x"},
		And{Children: []Node{Atomic{"A", "x"}, Atomic{"B", "y"}}},
	}}
	got := Rewrite(q, StandardRules())
	if a, ok := got.(Atomic); !ok || a != (Atomic{"A", "x"}) {
		t.Fatalf("absorption = %s, want A", got)
	}
	// A AND (A OR B) -> A
	q2 := And{Children: []Node{
		Atomic{"A", "x"},
		Or{Children: []Node{Atomic{"A", "x"}, Atomic{"B", "y"}}},
	}}
	got2 := Rewrite(q2, StandardRules())
	if a, ok := got2.(Atomic); !ok || a != (Atomic{"A", "x"}) {
		t.Fatalf("absorption (and) = %s, want A", got2)
	}
}

func TestRewriteNilAndNoRules(t *testing.T) {
	if Rewrite(nil, StandardRules()) != nil {
		t.Error("Rewrite(nil) != nil")
	}
	q := And{Children: []Node{Atomic{"A", "x"}, Atomic{"A", "x"}}}
	got := Rewrite(q, RewriteRules{})
	and, ok := got.(And)
	if !ok || len(and.Children) != 2 {
		t.Errorf("no-rule rewrite changed the query: %s", got)
	}
}

func TestRulesFor(t *testing.T) {
	std := RulesFor(Standard())
	if !std.Flatten || !std.DoubleNegation || !std.Idempotent || !std.Absorption {
		t.Errorf("standard rules = %+v, want all enabled", std)
	}
	prod := RulesFor(WithTNorm(agg.AlgebraicProduct))
	if !prod.Flatten {
		t.Error("product t-norm is associative; Flatten should be sound")
	}
	if prod.Idempotent || prod.Absorption {
		t.Error("product is not idempotent; dedup rules must be off")
	}
	if !prod.DoubleNegation {
		t.Error("standard negation is involutive under WithTNorm")
	}
	mean := RulesFor(Semantics{And: agg.ArithmeticMean, Or: agg.Max, Not: agg.Negate})
	if mean.Flatten {
		t.Error("the mean is not associative; Flatten must be off")
	}
	none := RulesFor(Semantics{And: agg.Min, Or: agg.Max, Not: func(x float64) float64 { return 1 - x*x }})
	if none.DoubleNegation {
		t.Error("non-involutive negation must disable DoubleNegation")
	}
}

// randomTree draws a random query over a small atom vocabulary.
func randomTree(rng *rand.Rand, depth int) Node {
	atoms := []Atomic{{"A", "x"}, {"B", "y"}, {"C", "z"}}
	if depth == 0 || rng.IntN(3) == 0 {
		return atoms[rng.IntN(len(atoms))]
	}
	switch rng.IntN(3) {
	case 0:
		k := 2 + rng.IntN(2)
		kids := make([]Node, k)
		for i := range kids {
			kids[i] = randomTree(rng, depth-1)
		}
		return And{Children: kids}
	case 1:
		k := 2 + rng.IntN(2)
		kids := make([]Node, k)
		for i := range kids {
			kids[i] = randomTree(rng, depth-1)
		}
		return Or{Children: kids}
	default:
		return Not{Child: randomTree(rng, depth-1)}
	}
}

// The key soundness property: under the standard semantics, rewriting
// never changes the grade of any object (Theorem 3.1 plus involution).
func TestRewritePreservesGradesProperty(t *testing.T) {
	sem := Standard()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		q := randomTree(rng, 3)
		rq := Rewrite(q, StandardRules())
		grades := map[Atomic]float64{
			{"A", "x"}: rng.Float64(),
			{"B", "y"}: rng.Float64(),
			{"C", "z"}: rng.Float64(),
		}
		evalNode := func(n Node) (float64, bool) {
			c, err := Compile(n, sem)
			if err != nil {
				return 0, false
			}
			gs := make([]float64, len(c.Atoms))
			for i, a := range c.Atoms {
				gs[i] = grades[a]
			}
			return c.Func.Apply(gs), true
		}
		v1, ok1 := evalNode(q)
		v2, ok2 := evalNode(rq)
		if !ok1 || !ok2 {
			return false
		}
		if math.Abs(v1-v2) > 1e-12 {
			t.Logf("seed=%d: %s = %v but %s = %v", seed, q, v1, rq, v2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Under product semantics only the sound subset fires, and grades are
// still preserved.
func TestRewritePreservesGradesUnderProductProperty(t *testing.T) {
	sem := WithTNorm(agg.AlgebraicProduct)
	rules := RulesFor(sem)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 72))
		q := randomTree(rng, 3)
		rq := Rewrite(q, rules)
		grades := map[Atomic]float64{
			{"A", "x"}: rng.Float64(),
			{"B", "y"}: rng.Float64(),
			{"C", "z"}: rng.Float64(),
		}
		evalNode := func(n Node) (float64, bool) {
			c, err := Compile(n, sem)
			if err != nil {
				return 0, false
			}
			gs := make([]float64, len(c.Atoms))
			for i, a := range c.Atoms {
				gs[i] = grades[a]
			}
			return c.Func.Apply(gs), true
		}
		v1, ok1 := evalNode(q)
		v2, ok2 := evalNode(rq)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(v1-v2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Rewriting is idempotent: a second pass changes nothing.
func TestRewriteIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 73))
		q := randomTree(rng, 3)
		r1 := Rewrite(q, StandardRules())
		r2 := Rewrite(r1, StandardRules())
		return equalNodes(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualNodes(t *testing.T) {
	a := MustParse(`A = x AND (B = y OR NOT C = z)`)
	b := MustParse(`A = x AND (B = y OR NOT C = z)`)
	if !equalNodes(a, b) {
		t.Error("identical parses not equal")
	}
	c := MustParse(`A = x AND (B = y OR NOT C = w)`)
	if equalNodes(a, c) {
		t.Error("different targets compare equal")
	}
	if equalNodes(a, MustParse(`A = x`)) {
		t.Error("different shapes compare equal")
	}
}
