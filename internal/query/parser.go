package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a query in concrete syntax. Grammar (case-insensitive
// keywords):
//
//	query   := orExpr
//	orExpr  := andExpr ( OR andExpr )*
//	andExpr := unary ( AND unary )*
//	unary   := (NOT unary | '(' query ')' | atom) ('^' NUMBER)?
//	atom    := IDENT ('=' | '~') STRING | IDENT ('=' | '~') IDENT
//
// AND binds tighter than OR; NOT binds tightest. Targets may be quoted
// ("red album") or bare words (red). A trailing '^ w' assigns a relative
// Fagin–Wimmers importance weight to a conjunct or disjunct, as in
//
//	Color ~ "red" ^ 2 AND Shape ~ "round" ^ 1
func Parse(input string) (Node, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("query: unexpected %q at position %d", p.peek().text, p.peek().pos)
	}
	return n, nil
}

// MustParse is Parse for queries known to be valid; it panics otherwise.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("query: syntax error")

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokLParen
	tokRParen
	tokEq
	tokCaret
	tokAnd
	tokOr
	tokNot
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == '=' || r == '~':
			toks = append(toks, token{tokEq, string(r), i})
			i++
		case r == '^':
			toks = append(toks, token{tokCaret, "^", i})
			i++
		case r == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(runes) && runes[j] != '"' {
				if runes[j] == '\\' && j+1 < len(runes) {
					j++
				}
				sb.WriteRune(runes[j])
				j++
			}
			if j >= len(runes) {
				return nil, fmt.Errorf("%w: unterminated string at position %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j]) || runes[j] == '_' || runes[j] == '.') {
				j++
			}
			word := string(runes[i:j])
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{tokAnd, word, i})
			case "OR":
				toks = append(toks, token{tokOr, word, i})
			case "NOT":
				toks = append(toks, token{tokNot, word, i})
			default:
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at position %d", ErrSyntax, r, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.atEnd() {
		return token{kind: -1, text: "end of input", pos: p.pos}
	}
	return p.toks[p.pos]
}

func (p *parser) take(kind tokKind) (token, bool) {
	if !p.atEnd() && p.toks[p.pos].kind == kind {
		t := p.toks[p.pos]
		p.pos++
		return t, true
	}
	return token{}, false
}

func (p *parser) parseOr() (Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Node{first}
	for {
		if _, ok := p.take(tokOr); !ok {
			break
		}
		next, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return Or{Children: children}, nil
}

func (p *parser) parseAnd() (Node, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Node{first}
	for {
		if _, ok := p.take(tokAnd); !ok {
			break
		}
		next, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, next)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return And{Children: children}, nil
}

func (p *parser) parseUnary() (Node, error) {
	var (
		node Node
		err  error
	)
	switch {
	case p.takeOK(tokNot):
		child, cerr := p.parseUnary()
		if cerr != nil {
			return nil, cerr
		}
		node = Not{Child: child}
	case p.takeOK(tokLParen):
		node, err = p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, ok := p.take(tokRParen); !ok {
			return nil, fmt.Errorf("%w: missing ')' before %q at position %d", ErrSyntax, p.peek().text, p.peek().pos)
		}
	default:
		node, err = p.parseAtom()
		if err != nil {
			return nil, err
		}
	}
	if _, ok := p.take(tokCaret); ok {
		w, ok := p.take(tokIdent)
		if !ok {
			return nil, fmt.Errorf("%w: expected a weight after '^' at position %d", ErrSyntax, p.peek().pos)
		}
		weight, err := strconv.ParseFloat(w.text, 64)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("%w: bad weight %q at position %d", ErrSyntax, w.text, w.pos)
		}
		node = Weighted{Child: node, Weight: weight}
	}
	return node, nil
}

func (p *parser) takeOK(kind tokKind) bool {
	_, ok := p.take(kind)
	return ok
}

func (p *parser) parseAtom() (Node, error) {
	attr, ok := p.take(tokIdent)
	if !ok {
		return nil, fmt.Errorf("%w: expected attribute name, got %q at position %d", ErrSyntax, p.peek().text, p.peek().pos)
	}
	if _, ok := p.take(tokEq); !ok {
		return nil, fmt.Errorf("%w: expected '=' or '~' after %q at position %d", ErrSyntax, attr.text, p.peek().pos)
	}
	if target, ok := p.take(tokString); ok {
		return Atomic{Attr: attr.text, Target: target.text}, nil
	}
	if target, ok := p.take(tokIdent); ok {
		return Atomic{Attr: attr.text, Target: target.text}, nil
	}
	return nil, fmt.Errorf("%w: expected target after %q =, got %q at position %d", ErrSyntax, attr.text, p.peek().text, p.peek().pos)
}
