package query

import (
	"fmt"
	"strings"

	"fuzzydb/internal/agg"
)

// Node is a query AST node.
type Node interface {
	fmt.Stringer
	// node is a marker restricting implementations to this package's
	// four forms, which lets Compile and the planner switch exhaustively.
	node()
}

// Atomic is an atomic query X = t: attribute X matched against target t.
type Atomic struct {
	Attr   string
	Target string
}

func (Atomic) node() {}

// String renders the atom in concrete syntax.
func (a Atomic) String() string { return fmt.Sprintf("%s = %q", a.Attr, a.Target) }

// And is a fuzzy conjunction of subqueries.
type And struct {
	Children []Node
}

func (And) node() {}

// String renders the conjunction in concrete syntax.
func (a And) String() string { return joinChildren(a.Children, "AND") }

// Or is a fuzzy disjunction of subqueries.
type Or struct {
	Children []Node
}

func (Or) node() {}

// String renders the disjunction in concrete syntax.
func (o Or) String() string { return joinChildren(o.Children, "OR") }

// Not is a fuzzy negation of a subquery.
type Not struct {
	Child Node
}

func (Not) node() {}

// String renders the negation in concrete syntax.
func (n Not) String() string { return "NOT " + parenthesize(n.Child) }

// Weighted assigns a relative importance to a conjunct or disjunct
// ("color matters twice as much as shape"). Weights are interpreted by
// the enclosing And/Or through the Fagin–Wimmers formula [FW97] after
// normalization, so only ratios matter. Weighted nodes are legal only as
// direct children of And or Or.
type Weighted struct {
	Child  Node
	Weight float64
}

func (Weighted) node() {}

// String renders "child ^ weight".
func (w Weighted) String() string {
	return fmt.Sprintf("%s ^ %g", parenthesize(w.Child), w.Weight)
}

func joinChildren(children []Node, op string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = parenthesize(c)
	}
	return strings.Join(parts, " "+op+" ")
}

func parenthesize(n Node) string {
	switch n.(type) {
	case Atomic:
		return n.String()
	default:
		return "(" + n.String() + ")"
	}
}

// Conj builds a conjunction of atoms: the paper's "probably most
// important" query class.
func Conj(atoms ...Atomic) Node {
	children := make([]Node, len(atoms))
	for i, a := range atoms {
		children[i] = a
	}
	if len(children) == 1 {
		return children[0]
	}
	return And{Children: children}
}

// Semantics selects the aggregation rules for the connectives. The zero
// value is not usable; use Standard or fill all three fields.
type Semantics struct {
	// And grades conjunctions; it should be a t-norm or another monotone
	// conjunction rule (e.g. a mean).
	And agg.Func
	// Or grades disjunctions; it should be a co-norm.
	Or agg.Func
	// Not grades negations from the child's grade.
	Not func(float64) float64
}

// Standard is Zadeh's rule set: min, max, and 1−x.
func Standard() Semantics {
	return Semantics{And: agg.Min, Or: agg.Max, Not: agg.Negate}
}

// WithTNorm is the standard rule set with the conjunction evaluated by
// the given t-norm (and the disjunction by its dual co-norm), as in the
// robustness discussions of Section 3.
func WithTNorm(t agg.TNorm) Semantics {
	return Semantics{And: t, Or: agg.DualCoNorm(t), Not: agg.Negate}
}

// Validate reports whether all three rules are present.
func (s Semantics) Validate() error {
	if s.And == nil || s.Or == nil || s.Not == nil {
		return fmt.Errorf("query: incomplete semantics (and=%v or=%v not set=%v)",
			s.And != nil, s.Or != nil, s.Not != nil)
	}
	return nil
}
