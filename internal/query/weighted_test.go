package query

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
)

func TestParseWeights(t *testing.T) {
	n, err := Parse(`Color ~ "red" ^ 2 AND Shape ~ "round" ^ 1`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := n.(And)
	if !ok || len(and.Children) != 2 {
		t.Fatalf("root = %#v", n)
	}
	w0, ok := and.Children[0].(Weighted)
	if !ok || w0.Weight != 2 {
		t.Errorf("first conjunct = %#v", and.Children[0])
	}
	w1, ok := and.Children[1].(Weighted)
	if !ok || w1.Weight != 1 {
		t.Errorf("second conjunct = %#v", and.Children[1])
	}
	// Fractional weights.
	if _, err := Parse(`A = x ^ 0.25 AND B = y`); err != nil {
		t.Errorf("fractional weight: %v", err)
	}
	// Weight on a parenthesized subquery.
	if _, err := Parse(`(A = x OR B = y) ^ 3 AND C = z`); err != nil {
		t.Errorf("weighted subquery: %v", err)
	}
}

func TestParseWeightErrors(t *testing.T) {
	bad := []string{
		`A = x ^`,
		`A = x ^ AND B = y`,
		`A = x ^ abc`,
		`A = x ^ "2"`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestWeightedStringRoundTrip(t *testing.T) {
	in := `(Color = "red") ^ 2 AND (Shape = "round") ^ 0.5`
	n, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(n.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", n.String(), err)
	}
	if !equalNodes(n, again) {
		t.Errorf("round trip changed: %s vs %s", n, again)
	}
}

// Compiled weighted conjunctions agree with agg.NewWeighted directly.
func TestCompileWeightedConjunction(t *testing.T) {
	c, err := Compile(MustParse(`A = x ^ 2 AND B = y ^ 1`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shape != ShapeOther {
		t.Errorf("weighted conjunction shape = %v, want other (min plans must not fire)", c.Shape)
	}
	if !c.Func.Monotone() {
		t.Error("weighted min conjunction must be monotone")
	}
	if !c.Func.Strict() {
		t.Error("all-positive weighted min conjunction must be strict")
	}
	ref, err := agg.NewWeighted(agg.Min, []float64{2.0 / 3, 1.0 / 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 101))
		a, b := rng.Float64(), rng.Float64()
		got := c.Func.Apply([]float64{a, b})
		want := ref.Apply([]float64{a, b})
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompileWeightedEdgeCases(t *testing.T) {
	// Zero weight on one conjunct loses strictness but stays monotone.
	c, err := Compile(MustParse(`A = x ^ 0 AND B = y ^ 1`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Func.Monotone() || c.Func.Strict() {
		t.Errorf("zero-weight conjunction: monotone=%v strict=%v", c.Func.Monotone(), c.Func.Strict())
	}
	// All-zero weights are rejected.
	if _, err := Compile(And{Children: []Node{
		Weighted{Child: Atomic{"A", "x"}, Weight: 0},
		Weighted{Child: Atomic{"B", "y"}, Weight: 0},
	}}, Standard()); err == nil {
		t.Error("all-zero weights accepted")
	}
	// Negative weight rejected.
	if _, err := Compile(And{Children: []Node{
		Weighted{Child: Atomic{"A", "x"}, Weight: -1},
		Atomic{"B", "y"},
	}}, Standard()); err == nil {
		t.Error("negative weight accepted")
	}
	// Weight outside a connective rejected.
	if _, err := Compile(Weighted{Child: Atomic{"A", "x"}, Weight: 1}, Standard()); err == nil {
		t.Error("bare weighted node accepted")
	}
	// Weight on nothing rejected.
	if _, err := Compile(And{Children: []Node{Weighted{Weight: 1}, Atomic{"B", "y"}}}, Standard()); err == nil {
		t.Error("weight on nil child accepted")
	}
}

// Equal weights reduce to the unweighted connective (FW97 requirement),
// through the full compile pipeline.
func TestCompileEqualWeightsReduceProperty(t *testing.T) {
	weighted, err := Compile(MustParse(`A = x ^ 3 AND B = y ^ 3`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(MustParse(`A = x AND B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 102))
		gs := []float64{rng.Float64(), rng.Float64()}
		return math.Abs(weighted.Func.Apply(gs)-plain.Func.Apply(gs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Weighted disjunctions compile and are monotone but not strict.
func TestCompileWeightedDisjunction(t *testing.T) {
	c, err := Compile(MustParse(`A = x ^ 2 OR B = y`), Standard())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Func.Monotone() || c.Func.Strict() {
		t.Errorf("weighted disjunction: monotone=%v strict=%v", c.Func.Monotone(), c.Func.Strict())
	}
	// FW97 with base max, weights (2/3, 1/3), grades (x1, x2) = (0, 0.9):
	// arguments are taken in decreasing-weight order, so
	// f = (θ1−θ2)·x1 + 2·θ2·max(x1,x2) = (1/3)·0 + (2/3)·0.9 = 0.6 —
	// the heavily weighted disjunct failing pulls the grade down even
	// though the light one matches well.
	if got := c.Func.Apply([]float64{0, 0.9}); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("weighted max = %v, want 0.6", got)
	}
}

// Rewriting keeps weighted grades intact.
func TestRewritePreservesWeightedGrades(t *testing.T) {
	q := MustParse(`NOT NOT (A = x ^ 2 AND B = y)`)
	rq := Rewrite(q, StandardRules())
	cq, err := Compile(q, Standard())
	if err != nil {
		t.Fatal(err)
	}
	crq, err := Compile(rq, Standard())
	if err != nil {
		t.Fatal(err)
	}
	if !crq.Func.Monotone() {
		t.Error("normalized weighted conjunction should be monotone")
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 103))
		gs := []float64{rng.Float64(), rng.Float64()}
		return math.Abs(cq.Func.Apply(gs)-crq.Func.Apply(gs)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
