package cost

import "testing"

func TestCostArithmetic(t *testing.T) {
	c := Cost{Sorted: 3, Random: 2}
	if c.Sum() != 5 {
		t.Errorf("Sum = %d, want 5", c.Sum())
	}
	d := c.Add(Cost{Sorted: 1, Random: 4})
	if d != (Cost{Sorted: 4, Random: 6}) {
		t.Errorf("Add = %+v", d)
	}
	if got := c.String(); got != "S=3 R=2 total=5" {
		t.Errorf("String = %q", got)
	}
}

func TestModel(t *testing.T) {
	m := Model{C1: 2, C2: 0.5}
	c := Cost{Sorted: 10, Random: 4}
	if got := m.Of(c); got != 22 {
		t.Errorf("Of = %v, want 22", got)
	}
	if Unweighted.Of(c) != float64(c.Sum()) {
		t.Error("Unweighted.Of != Sum")
	}
	if !m.Valid() {
		t.Error("positive model reported invalid")
	}
	if (Model{C1: 0, C2: 1}).Valid() {
		t.Error("zero price reported valid")
	}
	lo, hi := m.Bounds()
	if lo != 0.5 || hi != 2 {
		t.Errorf("Bounds = %v, %v", lo, hi)
	}
	// Inequality (1): min(c1,c2)(S+R) <= cost <= max(c1,c2)(S+R).
	if !(lo*float64(c.Sum()) <= m.Of(c) && m.Of(c) <= hi*float64(c.Sum())) {
		t.Error("inequality (1) violated")
	}
}
