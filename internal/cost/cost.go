// Package cost implements the middleware cost model of Section 5.
//
// The sorted access cost S is the total number of objects obtained from
// the database under sorted access; the random access cost R is the total
// obtained under random access. The middleware cost is c₁·S + c₂·R for
// positive constants c₁, c₂ reflecting that the two access modes may be
// priced differently; the unweighted middleware cost S + R (c₁ = c₂ = 1)
// is within a constant factor of it, which is why the paper's Θ bounds
// are insensitive to the choice of constants.
package cost

import "fmt"

// Cost records the two access tallies of a query evaluation.
type Cost struct {
	// Sorted is S: objects obtained by sorted access, summed across lists.
	Sorted int
	// Random is R: objects obtained by random access, summed across lists.
	Random int
}

// Sum returns the unweighted middleware cost S + R.
func (c Cost) Sum() int { return c.Sorted + c.Random }

// Add returns the componentwise sum of two costs.
func (c Cost) Add(d Cost) Cost {
	return Cost{Sorted: c.Sorted + d.Sorted, Random: c.Random + d.Random}
}

// String renders "S=… R=… total=…".
func (c Cost) String() string {
	return fmt.Sprintf("S=%d R=%d total=%d", c.Sorted, c.Random, c.Sum())
}

// Model carries the per-access prices of the weighted middleware cost.
type Model struct {
	// C1 prices one sorted access; C2 one random access. Both must be
	// positive for the paper's equivalence (inequality (1)) to hold.
	C1, C2 float64
}

// Unweighted is the model with C1 = C2 = 1.
var Unweighted = Model{C1: 1, C2: 1}

// Of returns the weighted middleware cost c₁·S + c₂·R.
func (m Model) Of(c Cost) float64 {
	return m.C1*float64(c.Sorted) + m.C2*float64(c.Random)
}

// Valid reports whether both prices are positive.
func (m Model) Valid() bool { return m.C1 > 0 && m.C2 > 0 }

// Bounds returns the constants of inequality (1):
// max(c₁,c₂)·(S+R) ≥ cost ≥ min(c₁,c₂)·(S+R).
func (m Model) Bounds() (lo, hi float64) {
	if m.C1 < m.C2 {
		return m.C1, m.C2
	}
	return m.C2, m.C1
}
