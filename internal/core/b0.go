package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// B0 is algorithm B₀ of Section 4: the evaluator for the standard fuzzy
// disjunction A₁ ∨ … ∨ Aₘ (t = max). It performs exactly k sorted
// accesses per list and no random accesses, then returns the k seen
// objects with the highest single-list grade h(x) = max over the lists
// where x was seen (Theorem 4.5).
//
// Its middleware cost is mk, independent of N — the demonstration that
// the Θ(N^((m−1)/m)k^(1/m)) lower bound genuinely needs strictness, which
// max lacks (Remark 6.1).
type B0 struct{}

// Name implements Algorithm.
func (B0) Name() string { return "B0" }

// Exact implements Algorithm. For every object B₀ outputs, h(x) equals
// the true max grade: if the list attaining x's max had ranked x below
// its top k, the k objects above x there would all beat x's h-value, and
// x would not have been output.
func (B0) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function must behave as max;
// the middleware's planner selects B0 only in that case.
func (B0) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	cursors := subsys.Cursors(lists)
	// Every list's top-k prefix is wanted unconditionally: stage them all
	// (in parallel under a concurrent executor) before consuming.
	if err := ec.Stage(cursors, k); err != nil {
		return nil, err
	}
	for _, cu := range cursors {
		// k ≤ N, so each list delivers exactly k entries.
		if err := ec.Reserve(k, 0); err != nil {
			return nil, err
		}
		// One batched sorted access per list (still exactly k units of
		// cost).
		for _, e := range cu.NextBatch(k) {
			sc.offerMax(e.Object, e.Grade)
		}
	}
	entries := sc.entriesBuf()
	for _, obj := range sc.objects() {
		entries = append(entries, gradedset.Entry{Object: obj, Grade: sc.valOf(obj)})
	}
	sc.keepEntries(entries)
	return topKResults(entries, k), nil
}
