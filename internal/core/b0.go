package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// B0 is algorithm B₀ of Section 4: the evaluator for the standard fuzzy
// disjunction A₁ ∨ … ∨ Aₘ (t = max). It performs exactly k sorted
// accesses per list and no random accesses, then returns the k seen
// objects with the highest single-list grade h(x) = max over the lists
// where x was seen (Theorem 4.5).
//
// Its middleware cost is mk, independent of N — the demonstration that
// the Θ(N^((m−1)/m)k^(1/m)) lower bound genuinely needs strictness, which
// max lacks (Remark 6.1).
type B0 struct{}

// Name implements Algorithm.
func (B0) Name() string { return "B0" }

// Exact implements Algorithm. For every object B₀ outputs, h(x) equals
// the true max grade: if the list attaining x's max had ranked x below
// its top k, the k objects above x there would all beat x's h-value, and
// x would not have been output.
func (B0) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function must behave as max;
// the middleware's planner selects B0 only in that case.
func (B0) TopK(lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	h := make(map[int]float64)
	for _, l := range lists {
		cu := subsys.NewCursor(l)
		for j := 0; j < k; j++ {
			e, ok := cu.Next()
			if !ok {
				break
			}
			if g, seen := h[e.Object]; !seen || e.Grade > g {
				h[e.Object] = e.Grade
			}
		}
	}
	entries := make([]gradedset.Entry, 0, len(h))
	for obj, g := range h {
		entries = append(entries, gradedset.Entry{Object: obj, Grade: g})
	}
	return topKResults(entries, k), nil
}
