package core

import (
	"context"
	"fmt"
	"runtime"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// Paginator implements the "nice feature" noted after Theorem 4.2: after
// finding the top k answers, the next k best can be found by continuing
// where the evaluation left off. Each page widens the underlying top-r
// computation (r = answers delivered so far plus the page size) over the
// same counted lists — sorted access resumes from the deepest prefix
// already paid for, and previously fetched grades are served from the
// cache — then returns only the new answers.
//
// A paginator comes in two execution shapes. The unsharded one
// (NewPaginator) widens a single evaluation. The sharded one
// (NewShardedPaginator) keeps one set of counted shard views per
// universe slice alive across pages: each page widens every shard's
// top-r computation over its own lists — resuming from that shard's
// paid prefixes — and merges the per-shard answers into the global top r
// under the canonical tie order. The sharded pages match the unsharded
// ones exactly on tie-free data (and up to a correct maximal choice
// within a tie class at page boundaries otherwise), because per-shard
// top-r sets are prefixes of each shard's total order, so their merge is
// the global prefix. Unlike EvaluateSharded, pagination never fences a
// shard: a shard that looks hopeless for page one may own all of page
// three, so every shard stays resumable.
type Paginator struct {
	alg      Algorithm
	t        agg.Func
	n        int
	returned map[int]bool
	count    int

	// Unsharded shape.
	ec    *ExecContext
	lists []*subsys.Counted

	// Sharded shape (nil when unsharded).
	shards  []pageShard
	workers int
	pool    *budgetPool
}

// pageShard is one universe slice of a sharded paginator: its range, its
// counted re-ranked views (kept alive across pages, so deeper pages
// resume from paid prefixes), and its own serial ExecContext.
type pageShard struct {
	r     subsys.ShardRange
	ec    *ExecContext
	lists []*subsys.Counted
}

// NewPaginator prepares paginated evaluation of F_t(A₁,…,Aₘ) with the
// given algorithm (A0, A0Prime, or TA — any exact monotone-query
// algorithm works) under the given execution state. The ExecContext's
// cancellation, budget, and executor apply across all pages: a budget
// bounds the cumulative cost of the whole pagination.
func NewPaginator(ec *ExecContext, alg Algorithm, lists []*subsys.Counted, t agg.Func) *Paginator {
	if ec == nil {
		ec = Background()
	}
	return &Paginator{
		ec: ec, alg: alg, lists: lists, t: t,
		n:        lists[0].Len(),
		returned: make(map[int]bool),
	}
}

// NewShardedPaginator prepares paginated evaluation over cfg.Shards
// contiguous slices of the dense universe, in the manner of
// EvaluateSharded: re-ranked shard views, one serial ExecContext per
// shard, shards fanned out on up to cfg.Parallel workers per page
// (1 = sequential shards, the deterministic-cost mode), and cfg.Budget
// as one reservation pool shared by every shard across every page.
// cfg.Prefetch gives every shard its own pipelined executor (gather
// width and pipeline depth budgeted across the shard workers, as in
// EvaluateSharded); the per-shard pipelines live as long as the shard
// lists — across pages — so a prefetching paginator must be Released.
// cfg.Shards ≤ 1 (after clamping to N) degenerates to the unsharded
// paginator. Non-exact algorithms are the caller's responsibility to
// exclude, as with NewPaginator.
func NewShardedPaginator(ctx context.Context, alg Algorithm, srcs []subsys.Source, t agg.Func, cfg ShardConfig) (*Paginator, error) {
	model := cost.Unweighted
	if cfg.Model.Valid() {
		model = cfg.Model
	}
	if len(srcs) == 0 {
		return nil, ErrNoLists
	}
	n := srcs[0].Len()
	for i, s := range srcs {
		if s.Len() != n {
			return nil, fmt.Errorf("%w: list %d has %d objects, want %d", ErrArity, i, s.Len(), n)
		}
	}
	p := cfg.Shards
	if p > n {
		p = n
	}
	if p <= 1 {
		opts := []EvalOption{WithCostModel(model)}
		if cfg.Prefetch {
			opts = append(opts, WithExecutor(cfg.pipelineExecutor(1, 1)))
		} else if cfg.Parallel > 1 {
			opts = append(opts, WithExecutor(Concurrent{P: cfg.Parallel}))
		}
		if cfg.Budget > 0 {
			opts = append(opts, WithAccessBudget(cfg.Budget))
		}
		counted := subsys.CountAll(srcs)
		return NewPaginator(NewExecContext(ctx, counted, opts...), alg, counted, t), nil
	}

	var pool *budgetPool
	if cfg.Budget > 0 {
		pool = &budgetPool{limit: cfg.Budget}
	}
	plan := subsys.PlanShards(n, p)
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	var opt []EvalOption
	if cfg.Prefetch {
		// The per-shard pipelines stay alive across pages (the lists do),
		// on EVERY shard at once — unlike one-shot sharded evaluation,
		// which releases each shard as its worker finishes it. The gather
		// width still splits by the worker cap (only that many shards
		// probe at once), but the readahead depth budget splits by the
		// full shard count, so a parked pagination never buffers more
		// speculative ranks than one unsharded pipelined paginator.
		// Release stops every pipeline.
		opt = append(opt, WithExecutor(cfg.pipelineExecutor(workers, len(plan))))
	}
	shards := make([]pageShard, 0, len(plan))
	for _, r := range plan {
		if r.Len() == 0 {
			continue
		}
		counted := subsys.CountAll(subsys.ShardSources(srcs, r))
		ec := NewExecContext(ctx, counted, append([]EvalOption{WithCostModel(model)}, opt...)...)
		if pool != nil {
			ec.budget = pool.limit
			ec.pool = pool
		}
		shards = append(shards, pageShard{r: r, ec: ec, lists: counted})
	}
	return &Paginator{
		alg: alg, t: t, n: n,
		returned: make(map[int]bool),
		shards:   shards,
		workers:  workers,
		pool:     pool,
	}, nil
}

// Delivered returns how many answers have been produced so far.
func (p *Paginator) Delivered() int { return p.count }

// Sharded reports whether the paginator evaluates over partitioned
// universe slices.
func (p *Paginator) Sharded() bool { return p.shards != nil }

// Cost returns the exact Section 5 access cost the pagination has
// incurred so far, across all pages (and, when sharded, all shards).
func (p *Paginator) Cost() cost.Cost {
	if p.shards == nil {
		return subsys.TotalCost(p.lists)
	}
	var total cost.Cost
	for i := range p.shards {
		total = total.Add(subsys.TotalCost(p.shards[i].lists))
	}
	return total
}

// Release returns the paginator's pooled list state (grade memos, dense
// caches) to the pools and stops any background prefetch pipelines the
// executor attached. Call it once pagination is over; it is skipped
// automatically when the evaluation was abandoned with accesses in
// flight (the state is poisoned and left to the GC). A paginator
// without prefetch pipelines may skip Release (the cost is memory held
// until the GC runs, as before); one evaluated under a pipelined
// executor must be Released — its per-list worker goroutines otherwise
// park forever.
func (p *Paginator) Release() {
	if p.shards == nil {
		if !p.ec.Abandoned() {
			subsys.ReleaseAll(p.lists)
		}
		return
	}
	for i := range p.shards {
		// A pipelined shard can abandon mid-gather on cancellation; its
		// lists are then left to the GC like the unsharded case (its
		// pipeline workers exit on their own once their in-flight source
		// call returns).
		if p.shards[i].ec.Abandoned() {
			continue
		}
		subsys.ReleaseAll(p.shards[i].lists)
	}
}

// NextPage returns the next pageSize best answers, in descending grade
// order, excluding everything already delivered. Fewer than pageSize
// results are returned when the database runs out of objects.
func (p *Paginator) NextPage(pageSize int) ([]Result, error) {
	if pageSize < 1 {
		return nil, fmt.Errorf("%w: page size %d", ErrBadK, pageSize)
	}
	if p.count >= p.n {
		return nil, nil
	}
	r := p.count + pageSize
	if r > p.n {
		r = p.n
	}
	all, err := p.topR(r)
	if err != nil {
		return nil, err
	}
	var page []Result
	for _, res := range all {
		if p.returned[res.Object] {
			continue
		}
		p.returned[res.Object] = true
		page = append(page, res)
	}
	p.count += len(page)
	return page, nil
}

// topR widens the underlying evaluation to the top r answers.
func (p *Paginator) topR(r int) ([]Result, error) {
	if p.shards == nil {
		res, err := p.alg.TopK(p.ec, p.lists, p.t, r)
		if err == nil {
			// Final net for fallible sources, as in Evaluate: no page may
			// be built over a truncated list.
			if serr := p.ec.SourceFailure(); serr != nil {
				return nil, serr
			}
		}
		return res, err
	}

	outs := make([][]Result, len(p.shards))
	errs := make([]error, len(p.shards))
	runShard := func(i int) {
		s := &p.shards[i]
		ks := r
		if ks > s.r.Len() {
			ks = s.r.Len()
		}
		res, err := p.alg.TopK(s.ec, s.lists, p.t, ks)
		if err == nil {
			// Final net for fallible sources, as in evalShard.
			if serr := s.ec.SourceFailure(); serr != nil {
				res, err = nil, serr
			}
		}
		if p.pool != nil {
			p.pool.finish(s.ec)
		}
		if err != nil {
			errs[i] = err
			return
		}
		outs[i] = res
	}
	if p.workers <= 1 || len(p.shards) == 1 {
		for i := range p.shards {
			runShard(i)
		}
	} else {
		runIndexed(p.workers, len(p.shards), runShard)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Merge: per-shard top-r sets are prefixes of each shard's total
	// order, so the canonical top-r of their union is the global top-r.
	var entries []gradedset.Entry
	for i := range p.shards {
		lo := p.shards[i].r.Lo
		for _, res := range outs[i] {
			entries = append(entries, gradedset.Entry{Object: res.Object + lo, Grade: res.Grade})
		}
	}
	top := gradedset.TopK(entries, r)
	results := make([]Result, len(top))
	for i, e := range top {
		results[i] = Result{Object: e.Object, Grade: e.Grade}
	}
	return results, nil
}
