package core

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/subsys"
)

// Paginator implements the "nice feature" noted after Theorem 4.2: after
// finding the top k answers, the next k best can be found by continuing
// where the evaluation left off. Each page widens the underlying top-r
// computation (r = answers delivered so far plus the page size) over the
// same counted lists — sorted access resumes from the deepest prefix
// already paid for, and previously fetched grades are served from the
// cache — then returns only the new answers.
type Paginator struct {
	ec       *ExecContext
	alg      Algorithm
	lists    []*subsys.Counted
	t        agg.Func
	returned map[int]bool
	count    int
}

// NewPaginator prepares paginated evaluation of F_t(A₁,…,Aₘ) with the
// given algorithm (A0, A0Prime, or TA — any exact monotone-query
// algorithm works) under the given execution state. The ExecContext's
// cancellation, budget, and executor apply across all pages: a budget
// bounds the cumulative cost of the whole pagination.
func NewPaginator(ec *ExecContext, alg Algorithm, lists []*subsys.Counted, t agg.Func) *Paginator {
	if ec == nil {
		ec = Background()
	}
	return &Paginator{ec: ec, alg: alg, lists: lists, t: t, returned: make(map[int]bool)}
}

// Delivered returns how many answers have been produced so far.
func (p *Paginator) Delivered() int { return p.count }

// NextPage returns the next pageSize best answers, in descending grade
// order, excluding everything already delivered. Fewer than pageSize
// results are returned when the database runs out of objects.
func (p *Paginator) NextPage(pageSize int) ([]Result, error) {
	if pageSize < 1 {
		return nil, fmt.Errorf("%w: page size %d", ErrBadK, pageSize)
	}
	n := p.lists[0].Len()
	if p.count >= n {
		return nil, nil
	}
	r := p.count + pageSize
	if r > n {
		r = n
	}
	all, err := p.alg.TopK(p.ec, p.lists, p.t, r)
	if err != nil {
		return nil, err
	}
	var page []Result
	for _, res := range all {
		if p.returned[res.Object] {
			continue
		}
		p.returned[res.Object] = true
		page = append(page, res)
	}
	p.count += len(page)
	return page, nil
}
