package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// sourcesOf adapts a scoring database's lists to subsystem sources.
func sourcesOf(db *scoredb.Database) []subsys.Source {
	srcs := make([]subsys.Source, db.M())
	for i := range srcs {
		srcs[i] = subsys.FromList(db.List(i))
	}
	return srcs
}

// run evaluates alg on db with fresh counters.
func run(t *testing.T, alg Algorithm, db *scoredb.Database, f agg.Func, k int) ([]Result, cost.Cost) {
	t.Helper()
	res, c, err := Evaluate(context.Background(), alg, sourcesOf(db), f, k)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return res, c
}

// entriesOf converts results for multiset comparison.
func entriesOf(rs []Result) []gradedset.Entry {
	es := make([]gradedset.Entry, len(rs))
	for i, r := range rs {
		es[i] = gradedset.Entry{Object: r.Object, Grade: r.Grade}
	}
	return es
}

// trueGrades recomputes the exact overall grades of the returned objects
// straight from the database (used for NRA, whose reported grades are
// bounds).
func trueGrades(t *testing.T, db *scoredb.Database, f agg.Func, rs []Result) []gradedset.Entry {
	t.Helper()
	es := make([]gradedset.Entry, len(rs))
	for i, r := range rs {
		gs, err := db.Grades(r.Object)
		if err != nil {
			t.Fatal(err)
		}
		es[i] = gradedset.Entry{Object: r.Object, Grade: f.Apply(gs)}
	}
	return es
}

func TestA0HandExample(t *testing.T) {
	// Colors: obj2 best; Shapes: obj1 best. Under min, obj0 wins.
	db, err := scoredb.FromMatrix([][]float64{
		{0.7, 0.2, 0.9, 0.3}, // A1
		{0.6, 0.8, 0.1, 0.4}, // A2
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := run(t, A0{}, db, agg.Min, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Object != 0 || math.Abs(res[0].Grade-0.6) > 1e-12 {
		t.Errorf("top = %v, want (0, 0.6)", res[0])
	}
	if res[1].Object != 3 || math.Abs(res[1].Grade-0.3) > 1e-12 {
		t.Errorf("second = %v, want (3, 0.3)", res[1])
	}
}

func TestArgumentValidation(t *testing.T) {
	db, err := scoredb.FromMatrix([][]float64{{0.5, 0.2}, {0.4, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	algs := []Algorithm{NaiveSorted{}, NaiveRandom{}, A0{}, A0Prime{}, B0{}, TA{}, NRA{}, Ullman{}, OrderStat{J: 1}}
	for _, alg := range algs {
		lists := subsys.CountAll(sourcesOf(db))
		if _, err := alg.TopK(Background(), lists, agg.Min, 0); !errors.Is(err, ErrBadK) {
			t.Errorf("%s: k=0 error = %v", alg.Name(), err)
		}
		if _, err := alg.TopK(Background(), lists, agg.Min, 3); !errors.Is(err, ErrBadK) {
			t.Errorf("%s: k>N error = %v", alg.Name(), err)
		}
		if _, err := alg.TopK(Background(), nil, agg.Min, 1); err == nil {
			t.Errorf("%s: empty lists accepted", alg.Name())
		}
	}
	// Arity errors.
	db3, err := scoredb.FromMatrix([][]float64{{0.5}, {0.4}, {0.3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Ullman{}).TopK(Background(), subsys.CountAll(sourcesOf(db3)), agg.Min, 1); !errors.Is(err, ErrArity) {
		t.Errorf("ullman m=3 error = %v", err)
	}
	if _, err := (Ullman{Probe: 2}).TopK(Background(), subsys.CountAll(sourcesOf(db)), agg.Min, 1); !errors.Is(err, ErrArity) {
		t.Errorf("ullman probe=2 error = %v", err)
	}
	if _, err := (OrderStat{J: 5}).TopK(Background(), subsys.CountAll(sourcesOf(db)), agg.Median, 1); !errors.Is(err, ErrArity) {
		t.Errorf("orderstat j>m error = %v", err)
	}
}

func TestMonotoneCheck(t *testing.T) {
	db, err := scoredb.FromMatrix([][]float64{{0.5, 0.2}, {0.4, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	notMonotone := nonMonotone{}
	for _, alg := range []Algorithm{A0{StrictMonotoneCheck: true}, TA{StrictMonotoneCheck: true}, NRA{StrictMonotoneCheck: true}} {
		if _, err := alg.TopK(Background(), subsys.CountAll(sourcesOf(db)), notMonotone, 1); !errors.Is(err, ErrNotMonotone) {
			t.Errorf("%s: non-monotone accepted: %v", alg.Name(), err)
		}
	}
}

// nonMonotone is a deliberately non-monotone aggregation for testing the
// guard rails: 1 − min.
type nonMonotone struct{}

func (nonMonotone) Name() string { return "one-minus-min" }
func (nonMonotone) Apply(gs []float64) float64 {
	return 1 - agg.Min.Apply(gs)
}
func (nonMonotone) Monotone() bool { return false }
func (nonMonotone) Strict() bool   { return false }

// The central cross-validation: every exact algorithm agrees with the
// naive baseline (as a grade multiset) on randomized databases, across
// laws, shapes, and tie regimes.
func TestAlgorithmsAgreeWithNaiveMinProperty(t *testing.T) {
	f := func(seed uint64) bool {
		laws := []scoredb.GradeLaw{
			scoredb.Uniform{},
			scoredb.Discrete{Levels: 4}, // heavy ties
			scoredb.Binary{P: 0.4},      // degenerate ties
			scoredb.BoundedAbove{Max: 0.8},
		}
		law := laws[seed%uint64(len(laws))]
		n := 5 + int(seed%60)
		m := 2 + int(seed%3)
		k := 1 + int(seed%uint64(n))
		corr := float64(int(seed%5)-2) / 2 // -1, -0.5, 0, 0.5, 1
		db, err := (scoredb.Generator{N: n, M: m, Law: law, Seed: seed, Correlation: corr}).Generate()
		if err != nil {
			t.Log(err)
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, agg.Min, k)
		algs := []Algorithm{
			NaiveRandom{},
			A0{},
			A0{MidRoundStop: true},
			A0Prime{},
			A0Prime{MidRoundStop: true},
			TA{},
			OrderStat{J: m}, // j = m is min via subsets (single subset)
		}
		if m == 2 {
			algs = append(algs, Ullman{}, Ullman{Probe: 1})
		}
		for _, alg := range algs {
			got, _ := run(t, alg, db, agg.Min, k)
			if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
				t.Logf("seed=%d n=%d m=%d k=%d law=%s corr=%v alg=%s\n got=%v\nwant=%v",
					seed, n, m, k, law.Name(), corr, alg.Name(), got, want)
				return false
			}
		}
		// NRA: set-correctness, judged on true grades.
		nraRes, _ := run(t, NRA{}, db, agg.Min, k)
		if !gradedset.SameGradeMultiset(trueGrades(t, db, agg.Min, nraRes), entriesOf(want), 1e-12) {
			t.Logf("seed=%d NRA mismatch: got=%v want=%v", seed, nraRes, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// A0 and TA are correct for every monotone aggregation, not just min.
func TestA0AndTAWithGeneralMonotoneFunctions(t *testing.T) {
	funcs := []agg.Func{
		agg.AlgebraicProduct, agg.EinsteinProduct, agg.HamacherProduct,
		agg.BoundedDifference, agg.DrasticProduct,
		agg.ArithmeticMean, agg.GeometricMean,
		agg.Median, agg.Gymnastics, agg.Max,
	}
	f := func(seed uint64) bool {
		n := 5 + int(seed%40)
		m := 3 + int(seed%2) // gymnastics needs >= 3
		k := 1 + int(seed%5)
		if k > n {
			k = n
		}
		db, err := (scoredb.Generator{N: n, M: m, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		fn := funcs[seed%uint64(len(funcs))]
		want, _ := run(t, NaiveSorted{}, db, fn, k)
		for _, alg := range []Algorithm{A0{}, A0{MidRoundStop: true}, TA{}} {
			got, _ := run(t, alg, db, fn, k)
			if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
				t.Logf("seed=%d fn=%s alg=%s: got=%v want=%v", seed, fn.Name(), alg.Name(), got, want)
				return false
			}
		}
		// NRA set-correctness for general monotone t.
		nraRes, _ := run(t, NRA{}, db, fn, k)
		if !gradedset.SameGradeMultiset(trueGrades(t, db, fn, nraRes), entriesOf(want), 1e-12) {
			t.Logf("seed=%d fn=%s NRA: got=%v want=%v", seed, fn.Name(), nraRes, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The parameterized t-norm families stay correct under the same
// algorithms: members are monotone (A₀/TA correct) and strict.
func TestA0WithTNormFamiliesProperty(t *testing.T) {
	families := []agg.Func{
		agg.YagerTNorm(0.5), agg.YagerTNorm(2),
		agg.HamacherFamily(0.5), agg.HamacherFamily(3),
		agg.FrankTNorm(0.5), agg.FrankTNorm(5),
		agg.DombiTNorm(1), agg.SchweizerSklarTNorm(2),
	}
	f := func(seed uint64) bool {
		n := 5 + int(seed%40)
		m := 2 + int(seed%3)
		k := 1 + int(seed%4)
		if k > n {
			k = n
		}
		db, err := (scoredb.Generator{N: n, M: m, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		fn := families[seed%uint64(len(families))]
		want, _ := run(t, NaiveSorted{}, db, fn, k)
		for _, alg := range []Algorithm{A0{}, TA{}} {
			got, _ := run(t, alg, db, fn, k)
			if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
				t.Logf("seed=%d fn=%s alg=%s: got=%v want=%v", seed, fn.Name(), alg.Name(), got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Weighted conjunctions (FW97) are monotone, so A₀ evaluates them too.
func TestA0WithWeightedConjunction(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%30)
		k := 1 + int(seed%4)
		if k > n {
			k = n
		}
		db, err := (scoredb.Generator{N: n, M: 3, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		w, err := agg.NewWeighted(agg.Min, []float64{0.5, 0.3, 0.2})
		if err != nil {
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, w, k)
		got, _ := run(t, A0{}, db, w, k)
		return gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestB0AgreesWithNaiveOnMaxProperty(t *testing.T) {
	f := func(seed uint64) bool {
		laws := []scoredb.GradeLaw{scoredb.Uniform{}, scoredb.Discrete{Levels: 3}}
		law := laws[seed%2]
		n := 3 + int(seed%50)
		m := 1 + int(seed%4)
		k := 1 + int(seed%uint64(n))
		db, err := (scoredb.Generator{N: n, M: m, Law: law, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, agg.Max, k)
		got, _ := run(t, B0{}, db, agg.Max, k)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Logf("seed=%d n=%d m=%d k=%d: got=%v want=%v", seed, n, m, k, got, want)
			return false
		}
		// OrderStat{J:1} is max via subsets.
		got2, _ := run(t, OrderStat{J: 1}, db, agg.Max, k)
		return gradedset.SameGradeMultiset(entriesOf(got2), entriesOf(want), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMedianAlgorithmAgreesWithNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 4 + int(seed%40)
		m := 3 + int(seed%3) // 3..5
		k := 1 + int(seed%4)
		if k > n {
			k = n
		}
		db, err := (scoredb.Generator{N: n, M: m, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, agg.Median, k)
		got, _ := run(t, OrderStat{}, db, agg.Median, k)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Logf("seed=%d n=%d m=%d k=%d: got=%v want=%v", seed, n, m, k, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestOrderStatAllJ(t *testing.T) {
	db := scoredb.Generator{N: 25, M: 4, Seed: 17}.MustGenerate()
	for j := 1; j <= 4; j++ {
		fn := agg.OrderStatistic(j)
		want, _ := run(t, NaiveSorted{}, db, fn, 5)
		got, _ := run(t, OrderStat{J: j}, db, fn, 5)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Errorf("j=%d: got=%v want=%v", j, got, want)
		}
	}
}

func TestHardQueryAllAlgorithms(t *testing.T) {
	// Section 7: Q ∧ ¬Q. All exact algorithms must still be correct; the
	// cost theorem says they are all slow, not wrong.
	db, err := scoredb.HardQueryPair(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 1)
	if want[0].Grade > 0.5 {
		t.Fatalf("top grade of Q∧¬Q is %v, cannot exceed 1/2", want[0].Grade)
	}
	for _, alg := range []Algorithm{A0{}, A0Prime{}, TA{}, Ullman{}} {
		got, _ := run(t, alg, db, agg.Min, 1)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Errorf("%s: got=%v want=%v", alg.Name(), got, want)
		}
	}
}

func TestKEqualsN(t *testing.T) {
	// Remark 5.2: k = N must return every object with its exact grade.
	db := scoredb.Generator{N: 12, M: 2, Seed: 21}.MustGenerate()
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 12)
	for _, alg := range []Algorithm{A0{}, A0Prime{}, TA{}, Ullman{}, NaiveRandom{}} {
		got, _ := run(t, alg, db, agg.Min, 12)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Errorf("%s at k=N: got=%v want=%v", alg.Name(), got, want)
		}
	}
}

func TestSingleListDegenerates(t *testing.T) {
	// m = 1: top-k is just the list prefix, for any sensible algorithm.
	db := scoredb.Generator{N: 20, M: 1, Seed: 22}.MustGenerate()
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 5)
	for _, alg := range []Algorithm{A0{}, A0Prime{}, TA{}, B0{}, NRA{}} {
		got, _ := run(t, alg, db, agg.Min, 5)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Errorf("%s at m=1: got=%v want=%v", alg.Name(), got, want)
		}
	}
}

func TestResultsSortedDescending(t *testing.T) {
	db := scoredb.Generator{N: 50, M: 2, Seed: 23}.MustGenerate()
	for _, alg := range []Algorithm{NaiveSorted{}, A0{}, A0Prime{}, TA{}, B0{}, Ullman{}} {
		f := agg.Min
		if alg.Name() == "B0" {
			f = agg.Max
		}
		res, _ := run(t, alg, db, f, 10)
		if len(res) != 10 {
			t.Fatalf("%s returned %d results", alg.Name(), len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Grade > res[i-1].Grade {
				t.Errorf("%s results not sorted at %d", alg.Name(), i)
			}
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{Object: 3, Grade: 0.25}
	if r.String() != "(3, 0.2500)" {
		t.Errorf("String = %q", r.String())
	}
}
