package core

import (
	"errors"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// binaryPlusFuzzy builds the Beatles-query workload: list 0 binary with
// the given selectivity, the rest uniform.
func binaryPlusFuzzy(n, m int, p float64, seed uint64) *scoredb.Database {
	lists := make([]*gradedset.List, m)
	lists[0] = scoredb.Generator{N: n, M: 1, Law: scoredb.Binary{P: p}, Seed: seed}.MustGenerate().List(0)
	for i := 1; i < m; i++ {
		lists[i] = scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: seed + uint64(i)*131}.MustGenerate().List(0)
	}
	db, err := scoredb.New(lists)
	if err != nil {
		panic(err)
	}
	return db
}

func TestFilterFirstAgreesWithNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%80)
		m := 2 + int(seed%3)
		k := 1 + int(seed%uint64(n))
		p := float64(seed%10) / 10 // includes 0: no matches at all
		db := binaryPlusFuzzy(n, m, p, seed)
		want, _ := run(t, NaiveSorted{}, db, agg.Min, k)
		got, _ := run(t, FilterFirst{}, db, agg.Min, k)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Logf("seed=%d n=%d m=%d k=%d p=%v: got=%v want=%v", seed, n, m, k, p, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFilterFirstCostTracksSelectivity(t *testing.T) {
	// With selectivity s the cost is about s·N sorted + (m−1)·s·N random:
	// far below A0's cost for rare predicates, worse for common ones.
	const n = 20000
	rare := binaryPlusFuzzy(n, 2, 0.002, 7)
	_, cRare := run(t, FilterFirst{}, rare, agg.Min, 5)
	_, cA0 := run(t, A0{}, rare, agg.Min, 5)
	if cRare.Sum() >= cA0.Sum() {
		t.Errorf("rare predicate: filter-first %v not below A0 %v", cRare, cA0)
	}
	common := binaryPlusFuzzy(n, 2, 0.5, 8)
	_, cCommon := run(t, FilterFirst{}, common, agg.Min, 5)
	if cCommon.Sum() < n/2 {
		t.Errorf("common predicate: filter-first %v suspiciously cheap", cCommon)
	}
}

func TestFilterFirstRejectsFuzzyDrivingList(t *testing.T) {
	db := scoredb.Generator{N: 50, M: 2, Law: scoredb.Uniform{}, Seed: 9}.MustGenerate()
	lists := subsys.CountAll(sourcesOf(db))
	if _, err := (FilterFirst{}).TopK(Background(), lists, agg.Min, 3); !errors.Is(err, ErrNotBinary) {
		t.Errorf("fuzzy driving list error = %v", err)
	}
}

func TestFilterFirstDriveSelection(t *testing.T) {
	// Binary list in position 1: Drive selects it.
	n := 40
	uniform := scoredb.Generator{N: n, M: 1, Law: scoredb.Uniform{}, Seed: 10}.MustGenerate().List(0)
	binary := scoredb.Generator{N: n, M: 1, Law: scoredb.Binary{P: 0.2}, Seed: 11}.MustGenerate().List(0)
	db, err := scoredb.New([]*gradedset.List{uniform, binary})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 5)
	got, _ := run(t, FilterFirst{Drive: 1}, db, agg.Min, 5)
	if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
		t.Errorf("drive=1: got=%v want=%v", got, want)
	}
	lists := subsys.CountAll(sourcesOf(db))
	if _, err := (FilterFirst{Drive: 5}).TopK(Background(), lists, agg.Min, 3); !errors.Is(err, ErrArity) {
		t.Errorf("bad drive error = %v", err)
	}
}

func TestFilterFirstAllMatchesAndNoMatches(t *testing.T) {
	n := 20
	// All objects match the predicate.
	all := binaryPlusFuzzy(n, 2, 1, 12)
	want, _ := run(t, NaiveSorted{}, all, agg.Min, 4)
	got, _ := run(t, FilterFirst{}, all, agg.Min, 4)
	if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
		t.Errorf("p=1: got=%v want=%v", got, want)
	}
	// No object matches: all grades 0, any k objects are correct.
	none := binaryPlusFuzzy(n, 2, 0, 13)
	got, _ = run(t, FilterFirst{}, none, agg.Min, 4)
	if len(got) != 4 {
		t.Fatalf("p=0 returned %d results", len(got))
	}
	for _, r := range got {
		if r.Grade != 0 {
			t.Errorf("p=0 grade %v, want 0", r.Grade)
		}
	}
}
