package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/subsys"
)

// ShardPlanPolicy selects how EvaluateSharded cuts the universe into
// shard ranges.
type ShardPlanPolicy int

const (
	// ShardPlanEven is the classic plan: P contiguous ranges of
	// near-equal object count (subsys.PlanShards). The zero value, so
	// existing ShardConfig literals keep their meaning byte for byte.
	ShardPlanEven ShardPlanPolicy = iota
	// ShardPlanWeighted cuts the universe at quantiles of a per-object
	// expected-work proxy built from the sources' grade-distribution
	// sketches, so shard boundaries equalize predicted access work
	// instead of object count. Degenerates to ShardPlanEven when no
	// usable sketch is available.
	ShardPlanWeighted
)

// PlanShardsWeighted splits the dense universe {0,…,n−1} into p
// contiguous ranges that equalize predicted access work rather than
// object count. The work proxy for an id segment is the aggregate under
// t of the per-list mean grade masses over the segment (plus a small
// floor, so empty regions still cost their scan): on Fagin's skewed
// workloads a region whose grades are high in every list is exactly the
// region whose objects survive sorted rounds longest and draw the
// random-access completions, so mass under the query's own law is the
// cheapest honest predictor of where the accesses will land.
//
// The cuts are placed on the merged boundary grid of the sketches (the
// finest grid on which every sketch is piecewise-uniform, refined with
// an even grid so a single coarse bucket cannot force lumpy cuts),
// at the p-quantiles of cumulative predicted work, then clamped so
// every shard keeps at least one object. The second return value is the
// planned work per shard, in the proxy's (unitless) scale — the
// "planned" half of a ShardReport's planned-vs-actual comparison.
//
// Degenerate cases return subsys.PlanShards(n, p) byte for byte, with
// nil planned work: p ≤ 1, n ≤ p (nothing to balance), every sketch nil
// or over the wrong universe, or t not monotone (the proxy aggregates
// mean grades, which is only meaningful for the monotone laws the
// sharded merge supports anyway).
func PlanShardsWeighted(n, p int, sketches []*subsys.Sketch, t agg.Func) ([]subsys.ShardRange, []float64) {
	even := func() ([]subsys.ShardRange, []float64) {
		return subsys.PlanShards(n, p), nil
	}
	if p <= 1 || n <= p || t == nil || !t.Monotone() {
		return even()
	}
	usable := false
	for _, s := range sketches {
		if s != nil && s.N == n {
			usable = true
			break
		}
	}
	if !usable {
		return even()
	}

	// The evaluation grid: every sketch boundary, refined with an even
	// grid of ~4p points so work accumulates smoothly even where a
	// sketch is coarse.
	grid := subsys.MergedCuts(n, sketches)
	grid = refineGrid(grid, n, 4*p)

	// Per-segment work: aggregate of per-list mean grades over the
	// segment under t, plus a floor making work strictly positive — a
	// zero-mass tail still costs its sorted scan, and strictly
	// increasing cumulative work keeps the quantile cuts monotone.
	const workFloor = 1e-9
	buf := make([]float64, len(sketches))
	segWork := make([]float64, len(grid)-1)
	var total float64
	for i := 0; i+1 < len(grid); i++ {
		lo, hi := grid[i], grid[i+1]
		w := float64(hi - lo)
		for j, s := range sketches {
			if s != nil && s.N == n && w > 0 {
				buf[j] = s.MassBetween(lo, hi) / w
			} else {
				// No sketch for this list: assume the indifferent mean.
				buf[j] = 0.5
			}
			if buf[j] < 0 {
				buf[j] = 0
			} else if buf[j] > 1 {
				buf[j] = 1
			}
		}
		segWork[i] = (t.Apply(buf) + workFloor) * w
		total += segWork[i]
	}

	// Cumulative work at each grid point: cum[j] is the predicted work of
	// the ids [0, grid[j]). Strictly increasing thanks to the floor.
	cum := make([]float64, len(grid))
	for i, w := range segWork {
		cum[i+1] = cum[i] + w
	}

	// Cut at the p-quantiles of cumulative work, interpolating inside
	// the segment each quantile lands in (work is uniform within a
	// segment). Clamps keep the plan valid: each cut strictly advances
	// (non-empty shards) and leaves room for the shards still owed.
	ranges := make([]subsys.ShardRange, p)
	planned := make([]float64, p)
	share := total / float64(p)
	prev := 0
	seg := 0
	for i := 0; i < p-1; i++ {
		target := share * float64(i+1)
		for seg+1 < len(segWork) && cum[seg+1] < target {
			seg++
		}
		lo, hi := grid[seg], grid[seg+1]
		frac := (target - cum[seg]) / segWork[seg]
		cut := lo + int(frac*float64(hi-lo))
		if min := prev + 1; cut < min {
			cut = min
		}
		if max := n - (p - 1 - i); cut > max {
			cut = max
		}
		ranges[i] = subsys.ShardRange{Lo: prev, Hi: cut}
		planned[i] = workBetween(grid, segWork, prev, cut)
		prev = cut
	}
	ranges[p-1] = subsys.ShardRange{Lo: prev, Hi: n}
	planned[p-1] = workBetween(grid, segWork, prev, n)
	return ranges, planned
}

// workBetween integrates the piecewise-uniform segment work over the id
// interval [lo, hi).
func workBetween(grid []int, segWork []float64, lo, hi int) float64 {
	var w float64
	for i := range segWork {
		slo, shi := grid[i], grid[i+1]
		if shi <= lo || slo >= hi {
			continue
		}
		olo, ohi := slo, shi
		if olo < lo {
			olo = lo
		}
		if ohi > hi {
			ohi = hi
		}
		if width := shi - slo; width > 0 {
			w += segWork[i] * float64(ohi-olo) / float64(width)
		}
	}
	return w
}

// refineGrid merges an even grid of `extra` points into the sorted cut
// grid (both spanning [0, n]), deduplicated and ascending.
func refineGrid(grid []int, n, extra int) []int {
	if extra < 1 {
		return grid
	}
	seen := make(map[int]bool, len(grid)+extra)
	for _, c := range grid {
		seen[c] = true
	}
	out := append([]int(nil), grid...)
	for i := 1; i < extra; i++ {
		c := i * n / extra
		if c > 0 && c < n && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sortInts(out)
	return out
}

// sortInts is a small insertion sort: the grids here are a few hundred
// entries at most, and keeping plan.go free of sort's interface noise
// keeps the hot path allocation-free.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
