package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// FuzzExecutorEquivalence is the randomized cross-executor equivalence
// harness — the property, fuzzed: every execution strategy the engine
// offers is a transport change only. One fuzz input seeds a PRNG that
// draws a whole scenario — universe size and grade law (dense fast path
// or the map/sparse fallback), arity m, k, the aggregation law, the
// algorithm, executor parameters, a shard count, and optionally an
// access budget — and the harness then cross-checks, in the spirit of
// fusion-rule cross-validation, that
//
//   - Serial, Concurrent, and Pipelined (adaptive and fixed depth)
//     unsharded evaluations return byte-identical results and identical
//     Section 5 tallies;
//   - the sharded evaluation at Parallel=1, serial or pipelined inside,
//     is itself byte-identical across the two per-shard executors —
//     results, total, per-shard, and per-list tallies — and satisfies
//     the shard-equivalence contract (identical grade sequence, same
//     objects above the k-th grade, exact no-duplicate ground truth in
//     the k-th tie class) against the unsharded reference; parallel
//     shard workers must satisfy the same contract;
//   - under a budget, every executor (and the sharded reservation pool
//     at Parallel=1) stops at the same typed *BudgetError with the same
//     spend, never overshooting;
//   - transient faults behind a deep-enough Resilient wrapper are
//     invisible — results and tallies bit-identical to fault-free
//     everywhere — and a single permanent fault site yields the same
//     outcome under every executor: clean when serial never demands the
//     site (readahead past it must swallow), the identical typed
//     *subsys.SourceError when it does.
//
// Run with `go test -fuzz FuzzExecutorEquivalence ./internal/core`; the
// committed corpus under testdata/fuzz covers the interesting regimes
// (heavy Binary/Discrete ties straddling shard boundaries, P clamped by
// tiny universes, k = N, budget stops, fixed tiny depths).
func FuzzExecutorEquivalence(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1996, 0x5eed, 0xfa61, 0xdeadbeef, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(fuzzExecutorEquivalence)
}

// fuzzLaws is the grade-law palette the fuzzer draws from: continuous
// (almost surely tie-free), bounded, and the two heavy-tie regimes.
var fuzzLaws = []scoredb.GradeLaw{
	scoredb.Uniform{},
	scoredb.BoundedAbove{Max: 0.8},
	scoredb.Binary{P: 0.12},
	scoredb.Discrete{Levels: 4},
}

// fuzzCases is the algorithm × aggregation-law palette. Non-exact NRA
// rides along to pin its sharded degeneration.
var fuzzCases = []struct {
	alg Algorithm
	f   agg.Func
}{
	{A0{}, agg.Min},
	{A0{MidRoundStop: true}, agg.Min},
	{A0{}, agg.ArithmeticMean},
	{A0Adaptive{}, agg.Min},
	{TA{}, agg.Min},
	{TA{}, agg.AlgebraicProduct},
	{TA{}, agg.BoundedDifference},
	{A0Prime{}, agg.Min},
	{NRA{}, agg.Min},
	{B0{}, agg.Max},
	{NaiveSorted{}, agg.Min},
	{OrderStat{}, agg.Median},
}

func fuzzExecutorEquivalence(t *testing.T, seed uint64) {
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 2 + rng.Intn(280)
	m := 2 + rng.Intn(3)
	law := fuzzLaws[rng.Intn(len(fuzzLaws))]
	tc := fuzzCases[rng.Intn(len(fuzzCases))]
	k := 1 + rng.Intn(n)
	shards := 2 + rng.Intn(6) // may exceed n: exercises the clamp
	depth := rng.Intn(7)      // 0 = adaptive, else fixed
	width := 1 + rng.Intn(8)
	batch := 1 + rng.Intn(24)
	p := 1 + rng.Intn(m+2)
	sparse := rng.Intn(2) == 1 // map fallback instead of the dense path

	db := scoredb.Generator{N: n, M: m, Law: law, Seed: seed ^ 0x9e3779b97f4a7c15}.MustGenerate()
	srcs := func() []subsys.Source {
		if sparse {
			return opaqueSourcesOf(db)
		}
		return sourcesOf(db)
	}
	label := fmt.Sprintf("seed=%d/N=%d/m=%d/%s/%s-%s/k=%d/P=%d/depth=%d/sparse=%v",
		seed, n, m, law.Name(), tc.alg.Name(), tc.f.Name(), k, shards, depth, sparse)

	// Unsharded reference, then every executor against it.
	want, wantCost, err := Evaluate(context.Background(), tc.alg, srcs(), tc.f, k)
	if err != nil {
		t.Fatalf("%s: serial: %v", label, err)
	}
	execs := []Executor{
		Concurrent{P: p, Batch: batch},
		Pipelined{P: width, MaxDepth: 1 + rng.Intn(16)},
		Pipelined{P: width, Depth: 1 + depth},
	}
	for _, x := range execs {
		got, gotCost, err := Evaluate(context.Background(), tc.alg, srcs(), tc.f, k, WithExecutor(x))
		if err != nil {
			t.Fatalf("%s: %s: %v", label, x.Name(), err)
		}
		requireIdentical(t, label+"/"+x.Name(), got, want, gotCost, wantCost)
	}

	// Sharded, serial inside vs pipelined inside, at the deterministic
	// worker cap: byte-identical to each other; both against unsharded
	// under the shard-equivalence contract.
	serialCfg := ShardConfig{Shards: shards, Parallel: 1}
	pipedCfg := ShardConfig{Shards: shards, Parallel: 1, Prefetch: true, PrefetchDepth: depth, PrefetchWidth: width}
	sSerial, err := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k, serialCfg)
	if err != nil {
		t.Fatalf("%s: sharded serial: %v", label, err)
	}
	sPiped, err := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k, pipedCfg)
	if err != nil {
		t.Fatalf("%s: sharded pipelined: %v", label, err)
	}
	if sPiped.Cost != sSerial.Cost {
		t.Errorf("%s: sharded pipelined cost %v != serial %v", label, sPiped.Cost, sSerial.Cost)
	}
	if len(sPiped.Results) != len(sSerial.Results) {
		t.Fatalf("%s: %d sharded pipelined results, %d serial", label, len(sPiped.Results), len(sSerial.Results))
	}
	for i := range sSerial.Results {
		if sPiped.Results[i] != sSerial.Results[i] {
			t.Errorf("%s: sharded result %d: pipelined %v, serial %v", label, i, sPiped.Results[i], sSerial.Results[i])
		}
	}
	for s := range sSerial.PerShard {
		if sPiped.PerShard[s] != sSerial.PerShard[s] {
			t.Errorf("%s: shard %d cost: pipelined %v, serial %v", label, s, sPiped.PerShard[s], sSerial.PerShard[s])
		}
	}
	for j := range sSerial.PerList {
		if sPiped.PerList[j] != sSerial.PerList[j] {
			t.Errorf("%s: list %d cost: pipelined %v, serial %v", label, j, sPiped.PerList[j], sSerial.PerList[j])
		}
	}
	truth := trueScorer(db, tc.f)
	if tc.alg.Exact() {
		requireShardEquiv(t, label+"/sharded", want, sPiped.Results, truth)
	} else {
		// NRA degenerates to the unsharded path byte for byte.
		for i := range want {
			if sPiped.Results[i] != want[i] {
				t.Errorf("%s: degenerate result %d: %v, want %v", label, i, sPiped.Results[i], want[i])
			}
		}
	}
	// Parallel shard workers: same contract, fencing timing free.
	sPar, err := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k,
		ShardConfig{Shards: shards, Parallel: 1 + rng.Intn(4), Prefetch: rng.Intn(2) == 1, PrefetchDepth: depth})
	if err != nil {
		t.Fatalf("%s: sharded parallel: %v", label, err)
	}
	if tc.alg.Exact() {
		requireShardEquiv(t, label+"/sharded-par", want, sPar.Results, truth)
	}

	// Weighted planning and work stealing are transport changes too: the
	// weighted plan moves shard boundaries to sketch quantiles, stealing
	// splits shards mid-flight, and neither may disturb the answers —
	// the shard-equivalence contract for exact algorithms, the
	// byte-identical unsharded degeneration for the rest.
	sketches := make([]*subsys.Sketch, m)
	for j := 0; j < m; j++ {
		sketches[j] = subsys.SketchList(db.List(j))
	}
	sWeighted, err := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k,
		ShardConfig{Shards: shards, Parallel: 1, Plan: ShardPlanWeighted, Sketches: sketches})
	if err != nil {
		t.Fatalf("%s: sharded weighted: %v", label, err)
	}
	stealPlan := ShardPlanEven
	if rng.Intn(2) == 0 {
		stealPlan = ShardPlanWeighted
	}
	sSteal, err := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k,
		ShardConfig{Shards: shards, Parallel: 2 + rng.Intn(3), Steal: true,
			Plan: stealPlan, Sketches: sketches})
	if err != nil {
		t.Fatalf("%s: sharded stealing: %v", label, err)
	}
	if tc.alg.Exact() {
		requireShardEquiv(t, label+"/sharded-weighted", want, sWeighted.Results, truth)
		requireShardEquiv(t, label+"/sharded-steal", want, sSteal.Results, truth)
	} else {
		for i := range want {
			if sWeighted.Results[i] != want[i] || sSteal.Results[i] != want[i] {
				t.Errorf("%s: weighted/steal degenerate result %d diverged from unsharded", label, i)
			}
		}
	}
	var stealSum int
	for _, d := range sSteal.Details {
		stealSum += d.Steals
	}
	if stealSum != sSteal.Stolen {
		t.Errorf("%s: per-shard steals sum %d, total %d", label, stealSum, sSteal.Stolen)
	}
	if !fenceSafe(tc.alg) && sSteal.Stolen != 0 {
		t.Errorf("%s: non-fence-safe algorithm stole %d times", label, sSteal.Stolen)
	}

	// Budgets: every executor must stop at the same typed *BudgetError
	// with the same spend — or all complete identically.
	if full := wantCost.Sum(); full > 4 && rng.Intn(2) == 0 {
		budget := 1 + float64(rng.Intn(full))
		wantRes, wantPartial, wantErr := Evaluate(context.Background(), tc.alg, srcs(), tc.f, k,
			WithAccessBudget(budget))
		if wantPartial.Sum() > int(budget) {
			t.Errorf("%s: serial budget overshoot: %v > %v", label, wantPartial.Sum(), budget)
		}
		for _, x := range execs {
			got, gotCost, err := Evaluate(context.Background(), tc.alg, srcs(), tc.f, k,
				WithAccessBudget(budget), WithExecutor(x))
			if !sameBudgetOutcome(err, wantErr) {
				t.Fatalf("%s: %s budget err = %v, serial %v", label, x.Name(), err, wantErr)
			}
			if wantErr == nil {
				requireIdentical(t, label+"/budget/"+x.Name(), got, wantRes, gotCost, wantPartial)
			} else if gotCost != wantPartial {
				t.Errorf("%s: %s budget partial cost %v, serial %v", label, x.Name(), gotCost, wantPartial)
			}
		}
		// Sharded reservation pool at Parallel=1: serial-inside and
		// pipelined-inside trip identically.
		bSerial := serialCfg
		bSerial.Budget = budget
		bPiped := pipedCfg
		bPiped.Budget = budget
		rSerial, errSerial := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k, bSerial)
		rPiped, errPiped := EvaluateSharded(context.Background(), tc.alg, srcs(), tc.f, k, bPiped)
		if !sameBudgetOutcome(errSerial, errPiped) {
			t.Fatalf("%s: sharded budget err: serial %v, pipelined %v", label, errSerial, errPiped)
		}
		if rSerial.Cost != rPiped.Cost {
			t.Errorf("%s: sharded budget cost: serial %v, pipelined %v", label, rSerial.Cost, rPiped.Cost)
		}
		if rPiped.Cost.Sum() > int(budget) {
			t.Errorf("%s: sharded pool overshoot: %v > %v", label, rPiped.Cost.Sum(), budget)
		}
	}

	// Fault dimension 1 — transient faults behind a Resilient wrapper
	// deep enough to absorb them are invisible: results and tallies
	// bit-identical to the fault-free reference under every executor and
	// under sharding. A retried access is still one metered access.
	// Fresh wrappers per evaluation: FaultSource clears transient sites
	// statefully.
	if rng.Intn(2) == 0 {
		transient := 1 + rng.Intn(2)
		pol := subsys.Policy{MaxRetries: transient + rng.Intn(2)}
		rate := 0.05 + 0.3*rng.Float64()
		fseed := seed ^ 0xfa610f
		faulty := func() []subsys.Source {
			raw := srcs()
			out := make([]subsys.Source, len(raw))
			for i, s := range raw {
				out[i] = subsys.Resilient(subsys.NewFaultSource(s, subsys.FaultPlan{
					Seed:      fseed + uint64(i)*0x9e3779b97f4a7c15,
					Rate:      rate,
					Transient: transient,
				}), pol)
			}
			return out
		}
		for _, x := range append([]Executor{Serial{}}, execs...) {
			got, gotCost, err := Evaluate(context.Background(), tc.alg, faulty(), tc.f, k, WithExecutor(x))
			if err != nil {
				t.Fatalf("%s: transient faults leaked through %s: %v", label, x.Name(), err)
			}
			requireIdentical(t, label+"/faulty/"+x.Name(), got, want, gotCost, wantCost)
		}
		fPiped, err := EvaluateSharded(context.Background(), tc.alg, faulty(), tc.f, k, pipedCfg)
		if err != nil {
			t.Fatalf("%s: transient faults leaked through sharded: %v", label, err)
		}
		if fPiped.Cost != sSerial.Cost {
			t.Errorf("%s: sharded faulty cost %v, fault-free %v", label, fPiped.Cost, sSerial.Cost)
		}
		for i := range sSerial.Results {
			if fPiped.Results[i] != sSerial.Results[i] {
				t.Errorf("%s: sharded faulty result %d: %v, fault-free %v", label, i, fPiped.Results[i], sSerial.Results[i])
			}
		}
	}

	// Fault dimension 2 — one permanent single-site failure (a random
	// rank or object on a random list): every unsharded executor must
	// reach the same outcome as serial. Clean if serial never demanded
	// the site — readahead past it must stay invisible — and otherwise
	// the identical typed *subsys.SourceError, with the same partial
	// tallies when the failure struck the sorted stream (mid-gather
	// random failures legitimately cut probe-batch payment differently).
	// Sharded runs demand different parent ranks, so only the two shard
	// configurations are compared with each other.
	if rng.Intn(2) == 0 {
		victim := rng.Intn(m)
		failRank, failObj := -1, -1
		if rng.Intn(2) == 0 {
			failRank = rng.Intn(n)
		} else {
			failObj = rng.Intn(n)
		}
		fsrcs := func() []subsys.Source {
			raw := srcs()
			raw[victim] = &permFail{Source: raw[victim], failRank: failRank, failObj: failObj}
			return raw
		}
		flabel := fmt.Sprintf("%s/perm[list=%d,rank=%d,obj=%d]", label, victim, failRank, failObj)
		wRes, wCost, wErr := Evaluate(context.Background(), tc.alg, fsrcs(), tc.f, k)
		var wSE *subsys.SourceError
		if wErr != nil && !errors.As(wErr, &wSE) {
			t.Fatalf("%s: serial err = %v, want *subsys.SourceError", flabel, wErr)
		}
		for _, x := range execs {
			gRes, gCost, gErr := Evaluate(context.Background(), tc.alg, fsrcs(), tc.f, k, WithExecutor(x))
			if (gErr == nil) != (wErr == nil) {
				t.Fatalf("%s: %s err = %v, serial %v", flabel, x.Name(), gErr, wErr)
			}
			if wErr == nil {
				requireIdentical(t, flabel+"/"+x.Name(), gRes, wRes, gCost, wCost)
				continue
			}
			var gSE *subsys.SourceError
			if !errors.As(gErr, &gSE) {
				t.Fatalf("%s: %s err = %v, want *subsys.SourceError", flabel, x.Name(), gErr)
			}
			if gSE.List != wSE.List || gSE.Rank != wSE.Rank || gSE.Random != wSE.Random || gSE.Attempts != wSE.Attempts {
				t.Errorf("%s: %s SourceError %+v, serial %+v", flabel, x.Name(), gSE, wSE)
			}
			if gRes != nil {
				t.Errorf("%s: %s results alongside the error", flabel, x.Name())
			}
			if !wSE.Random && gCost != wCost {
				t.Errorf("%s: %s partial cost %v, serial %v", flabel, x.Name(), gCost, wCost)
			}
		}
		pSerial, errS := EvaluateSharded(context.Background(), tc.alg, fsrcs(), tc.f, k, serialCfg)
		pPiped, errP := EvaluateSharded(context.Background(), tc.alg, fsrcs(), tc.f, k, pipedCfg)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("%s: sharded outcomes diverged: serial-inside %v, piped-inside %v", flabel, errS, errP)
		}
		if errS == nil {
			// The fault site was never demanded by any shard: both runs
			// must match the fault-free sharded reference bit for bit.
			if pPiped.Cost != sSerial.Cost || pSerial.Cost != sSerial.Cost {
				t.Errorf("%s: sharded clean-path cost %v/%v, fault-free %v", flabel, pSerial.Cost, pPiped.Cost, sSerial.Cost)
			}
			for i := range sSerial.Results {
				if pPiped.Results[i] != sSerial.Results[i] || pSerial.Results[i] != sSerial.Results[i] {
					t.Errorf("%s: sharded clean-path result %d diverged", flabel, i)
				}
			}
		} else {
			var sSE, pSE *subsys.SourceError
			if !errors.As(errS, &sSE) || !errors.As(errP, &pSE) {
				t.Fatalf("%s: sharded errs %v / %v, want *subsys.SourceError", flabel, errS, errP)
			}
			if sSE.List != victim || *sSE != *pSE {
				t.Errorf("%s: sharded SourceError serial-inside %+v, piped-inside %+v (victim %d)", flabel, sSE, pSE, victim)
			}
		}
	}
}

// sameBudgetOutcome reports whether two evaluations ended the same way:
// both clean, or both stopped by the budget with identical limits and
// spends.
func sameBudgetOutcome(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	var ba, bb *BudgetError
	if !errors.As(a, &ba) || !errors.As(b, &bb) {
		return false
	}
	return ba.Limit == bb.Limit && ba.Spent == bb.Spent && ba.Need == bb.Need
}
