package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// opaqueSource forwards a Source while hiding its UniverseHinter, forcing
// the middleware onto the map-backed fallback for both the Counted memo
// and the algorithms' scratch state. Access behavior is untouched, so a
// dense-path evaluation and an opaque-path evaluation of the same
// database must agree bit for bit — in results and in Section 5 costs.
type opaqueSource struct{ src subsys.Source }

func (o opaqueSource) Len() int                             { return o.src.Len() }
func (o opaqueSource) Entry(rank int) gradedset.Entry       { return o.src.Entry(rank) }
func (o opaqueSource) Entries(lo, hi int) []gradedset.Entry { return o.src.Entries(lo, hi) }
func (o opaqueSource) Grade(obj int) float64                { return o.src.Grade(obj) }

func opaqueSourcesOf(db *scoredb.Database) []subsys.Source {
	srcs := sourcesOf(db)
	for i := range srcs {
		srcs[i] = opaqueSource{src: srcs[i]}
	}
	return srcs
}

// requireIdentical asserts two evaluations agree exactly: same objects,
// same grades (==, not within epsilon), same access tallies.
func requireIdentical(t *testing.T, label string, rDense, rMap []Result, cDense, cMap cost.Cost) {
	t.Helper()
	if cDense != cMap {
		t.Errorf("%s: dense cost %v != map cost %v", label, cDense, cMap)
	}
	if len(rDense) != len(rMap) {
		t.Fatalf("%s: dense returned %d results, map %d", label, len(rDense), len(rMap))
	}
	for i := range rDense {
		if rDense[i] != rMap[i] {
			t.Errorf("%s: result %d differs: dense %v, map %v", label, i, rDense[i], rMap[i])
		}
	}
}

// TestDenseFastPathMatchesMapFallback is the tentpole invariant: the
// dense-universe fast path is a pure mechanical speedup. Across the
// algorithm family, grade laws, arities, and randomized k, it must return
// byte-identical results and identical cost.Cost tallies to the
// map-backed path.
func TestDenseFastPathMatchesMapFallback(t *testing.T) {
	laws := map[string]scoredb.GradeLaw{
		"Uniform":      scoredb.Uniform{},
		"Binary":       scoredb.Binary{P: 0.08},
		"BoundedAbove": scoredb.BoundedAbove{Max: 0.8},
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0{MidRoundStop: true}, agg.Min},
		{A0{}, agg.ArithmeticMean},
		{A0Prime{}, agg.Min},
		{A0Prime{MidRoundStop: true}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
		{TA{}, agg.AlgebraicProduct},
		{NRA{}, agg.Min},
		{B0{}, agg.Max},
		{NaiveSorted{}, agg.Min},
		{NaiveRandom{}, agg.Min},
		{OrderStat{}, agg.Median},
	}
	rng := rand.New(rand.NewSource(7))
	for lawName, law := range laws {
		for m := 2; m <= 5; m++ {
			n := 200 + rng.Intn(400)
			db := scoredb.Generator{N: n, M: m, Law: law, Seed: uint64(100*m) + 7}.MustGenerate()
			for _, tc := range algs {
				k := 1 + rng.Intn(n)
				label := fmt.Sprintf("%s/m=%d/%s-%s/k=%d", lawName, m, tc.alg.Name(), tc.f.Name(), k)
				rDense, cDense, err := Evaluate(context.Background(), tc.alg, sourcesOf(db), tc.f, k)
				if err != nil {
					t.Fatalf("%s: dense: %v", label, err)
				}
				rMap, cMap, err := Evaluate(context.Background(), tc.alg, opaqueSourcesOf(db), tc.f, k)
				if err != nil {
					t.Fatalf("%s: map: %v", label, err)
				}
				requireIdentical(t, label, rDense, rMap, cDense, cMap)
			}
		}
	}
}

// TestDenseFastPathUllman covers the two-list-only member of the family.
func TestDenseFastPathUllman(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, law := range []scoredb.GradeLaw{scoredb.Uniform{}, scoredb.BoundedAbove{Max: 0.9}} {
		db := scoredb.Generator{N: 500, M: 2, Law: law, Seed: 19}.MustGenerate()
		for probe := 0; probe < 2; probe++ {
			k := 1 + rng.Intn(20)
			alg := Ullman{Probe: probe}
			rDense, cDense, err := Evaluate(context.Background(), alg, sourcesOf(db), agg.Min, k)
			if err != nil {
				t.Fatal(err)
			}
			rMap, cMap, err := Evaluate(context.Background(), alg, opaqueSourcesOf(db), agg.Min, k)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("ullman/probe=%d/k=%d", probe, k), rDense, rMap, cDense, cMap)
		}
	}
}

// TestDenseFastPathFilterFirst drives the selective-conjunct plan over a
// binary list, on both paths.
func TestDenseFastPathFilterFirst(t *testing.T) {
	l0 := (scoredb.Generator{N: 600, M: 1, Law: scoredb.Binary{P: 0.01}, Seed: 23}).MustGenerate().List(0)
	l1 := (scoredb.Generator{N: 600, M: 1, Law: scoredb.Uniform{}, Seed: 24}).MustGenerate().List(0)
	db, err := scoredb.New([]*gradedset.List{l0, l1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 40} {
		alg := FilterFirst{}
		rDense, cDense, err := Evaluate(context.Background(), alg, sourcesOf(db), agg.Min, k)
		if err != nil {
			t.Fatal(err)
		}
		rMap, cMap, err := Evaluate(context.Background(), alg, opaqueSourcesOf(db), agg.Min, k)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("filter-first/k=%d", k), rDense, rMap, cDense, cMap)
	}
}

// TestDenseFastPathFilter covers the threshold query evaluator.
func TestDenseFastPathFilter(t *testing.T) {
	db := scoredb.Generator{N: 400, M: 3, Law: scoredb.Uniform{}, Seed: 29}.MustGenerate()
	for _, theta := range []float64{0, 0.3, 0.8, 1} {
		dense := subsys.CountAll(sourcesOf(db))
		rDense, err := Filter(Background(), dense, agg.Min, theta)
		if err != nil {
			t.Fatal(err)
		}
		cDense := subsys.TotalCost(dense)
		opaque := subsys.CountAll(opaqueSourcesOf(db))
		rMap, err := Filter(Background(), opaque, agg.Min, theta)
		if err != nil {
			t.Fatal(err)
		}
		cMap := subsys.TotalCost(opaque)
		requireIdentical(t, fmt.Sprintf("filter/theta=%v", theta), rDense, rMap, cDense, cMap)
	}
}

// TestSerialVsConcurrentExecutors is the executor-equivalence invariant:
// the concurrent and pipelined executors are transport changes only.
// Across the algorithm family, grade laws, arities, parallelism degrees,
// and randomized k — and on both the dense fast path and the map
// fallback — each must return byte-identical results and identical
// cost.Cost tallies to the serial executor. The pipelined executor runs
// in both its adaptive-depth and fixed-depth configurations, with small
// caps so the background pipelines churn through many refills even at
// these sizes. (The CI suite runs this under -race, which also exercises
// the staging, pipeline, and gather fan-outs for data races.)
func TestSerialVsConcurrentExecutors(t *testing.T) {
	laws := map[string]scoredb.GradeLaw{
		"Uniform":      scoredb.Uniform{},
		"Binary":       scoredb.Binary{P: 0.08},
		"BoundedAbove": scoredb.BoundedAbove{Max: 0.8},
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0{MidRoundStop: true}, agg.Min},
		{A0{}, agg.ArithmeticMean},
		{A0Prime{}, agg.Min},
		{A0Prime{MidRoundStop: true}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
		{NRA{}, agg.Min},
		{B0{}, agg.Max},
		{NaiveSorted{}, agg.Min},
		{NaiveRandom{}, agg.Min},
		{OrderStat{}, agg.Median},
	}
	rng := rand.New(rand.NewSource(13))
	for lawName, law := range laws {
		for m := 2; m <= 5; m++ {
			n := 200 + rng.Intn(400)
			db := scoredb.Generator{N: n, M: m, Law: law, Seed: uint64(300*m) + 11}.MustGenerate()
			for _, tc := range algs {
				k := 1 + rng.Intn(n)
				// Small staging batches force many refill fan-outs even at
				// these sizes; p sweeps below, at, and above one worker per
				// list.
				p := 1 + rng.Intn(m+2)
				execs := []Executor{
					Concurrent{P: p, Batch: 16},
					Pipelined{P: 4, MaxDepth: 16},           // adaptive depth
					Pipelined{P: p, Depth: 1 + rng.Intn(8)}, // fixed depth
				}
				label := fmt.Sprintf("%s/m=%d/%s-%s/k=%d/p=%d", lawName, m, tc.alg.Name(), tc.f.Name(), k, p)
				for _, mode := range []struct {
					name string
					srcs func(*scoredb.Database) []subsys.Source
				}{
					{"dense", sourcesOf},
					{"map", opaqueSourcesOf},
				} {
					rSerial, cSerial, err := Evaluate(context.Background(), tc.alg, mode.srcs(db), tc.f, k)
					if err != nil {
						t.Fatalf("%s/%s: serial: %v", label, mode.name, err)
					}
					for _, x := range execs {
						rConc, cConc, err := Evaluate(context.Background(), tc.alg, mode.srcs(db), tc.f, k,
							WithExecutor(x))
						if err != nil {
							t.Fatalf("%s/%s: %s: %v", label, mode.name, x.Name(), err)
						}
						requireIdentical(t, label+"/"+mode.name+"/"+x.Name(), rConc, rSerial, cConc, cSerial)
					}
				}
			}
		}
	}
}

// TestConcurrentExecutorUnderConcurrentQueries layers the two axes of
// concurrency: many goroutines each running parallel-executor
// evaluations over shared pools (run with -race in CI). Answers and
// costs must match the serial single-threaded reference.
func TestConcurrentExecutorUnderConcurrentQueries(t *testing.T) {
	db := scoredb.Generator{N: 400, M: 3, Seed: 44}.MustGenerate()
	want, wantCost, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, c, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 9,
					WithExecutor(Concurrent{P: 3, Batch: 32}))
				if err != nil {
					errs <- err.Error()
					return
				}
				if c != wantCost || len(res) != len(want) {
					errs <- fmt.Sprintf("goroutine %d: diverged", g)
					return
				}
				for j := range res {
					if res[j] != want[j] {
						errs <- fmt.Sprintf("goroutine %d: result %d diverged", g, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// trueScorer computes ground-truth overall grades directly from a
// scoring database, outside the metered access path.
func trueScorer(db *scoredb.Database, f agg.Func) func(obj int) float64 {
	buf := make([]float64, db.M())
	return func(obj int) float64 {
		for i := 0; i < db.M(); i++ {
			g, err := db.List(i).Grade(obj)
			if err != nil {
				panic(err)
			}
			buf[i] = g
		}
		return f.Apply(buf)
	}
}

// requireShardEquiv asserts a sharded evaluation agrees with the
// unsharded one up to the paper's notion of top-k correctness with the
// package tie policy: the grade sequence is identical position by
// position, every entry strictly above the k-th grade is identical
// (object and grade — above the boundary the two evaluations must pick
// the very same objects in the very same order), and within the k-th
// grade's tie class — where Section 4 admits any maximal choice, and
// the two strategies legitimately see different candidate sets — every
// returned object is distinct and carries its exact ground-truth grade.
// For tie-free data (the continuous laws, almost surely) this reduces
// to full byte identity.
func requireShardEquiv(t *testing.T, label string, want, got []Result, truth func(int) float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: sharded returned %d results, unsharded %d", label, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	kth := want[len(want)-1].Grade
	seen := make(map[int]bool, len(got))
	for i := range want {
		if got[i].Grade != want[i].Grade {
			t.Errorf("%s: grade %d differs: sharded %v, unsharded %v", label, i, got[i], want[i])
			continue
		}
		if want[i].Grade > kth && got[i] != want[i] {
			t.Errorf("%s: result %d above the k-th grade differs: sharded %v, unsharded %v", label, i, got[i], want[i])
		}
		if seen[got[i].Object] {
			t.Errorf("%s: sharded result repeats object %d", label, got[i].Object)
		}
		seen[got[i].Object] = true
		if tg := truth(got[i].Object); got[i].Grade != tg {
			t.Errorf("%s: sharded result %d reports grade %v for object %d, true grade %v",
				label, i, got[i].Grade, got[i].Object, tg)
		}
	}
}

// TestShardedVsUnsharded is the shard-equivalence invariant: partitioned
// evaluation with the threshold-aware merge is a pure execution-strategy
// change. Across the algorithm family, grade laws, arities, shard
// counts, worker caps, and randomized k — on both the dense fast path
// and the map fallback — the merged global top-k must match the
// unsharded evaluation: identical grade sequence, identical objects and
// order everywhere above the k-th grade, and exact ground-truth grades
// with no duplicates inside the k-th grade's tie class (see
// requireShardEquiv; for the continuous laws this is full byte
// identity, asserted as such). The sharded result itself must be
// byte-identical across shard worker caps — fencing timing must never
// change answers. (Costs differ from unsharded by design: shards scan
// their own slices. The CI suite runs this under -race, which also
// exercises the shard fan-out and the scoreboard for data races.)
func TestShardedVsUnsharded(t *testing.T) {
	laws := map[string]scoredb.GradeLaw{
		"Uniform":      scoredb.Uniform{},
		"Binary":       scoredb.Binary{P: 0.08},
		"BoundedAbove": scoredb.BoundedAbove{Max: 0.8},
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0{MidRoundStop: true}, agg.Min},
		{A0{}, agg.ArithmeticMean},
		{A0Prime{}, agg.Min},
		{A0Prime{MidRoundStop: true}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
		{TA{}, agg.AlgebraicProduct},
		{NRA{}, agg.Min}, // non-exact: must degenerate to the unsharded path
		{B0{}, agg.Max},
		{NaiveSorted{}, agg.Min},
		{NaiveRandom{}, agg.Min},
		{OrderStat{}, agg.Median},
	}
	rng := rand.New(rand.NewSource(17))
	for lawName, law := range laws {
		continuous := lawName != "Binary"
		for m := 2; m <= 5; m++ {
			n := 200 + rng.Intn(400)
			db := scoredb.Generator{N: n, M: m, Law: law, Seed: uint64(500*m) + 3}.MustGenerate()
			for _, tc := range algs {
				k := 1 + rng.Intn(n)
				shards := 2 + rng.Intn(7)
				truth := trueScorer(db, tc.f)
				for _, mode := range []struct {
					name string
					srcs func(*scoredb.Database) []subsys.Source
				}{
					{"dense", sourcesOf},
					{"map", opaqueSourcesOf},
				} {
					want, _, err := Evaluate(context.Background(), tc.alg, mode.srcs(db), tc.f, k)
					if err != nil {
						t.Fatalf("unsharded: %v", err)
					}
					var seq []Result // par=1 reference for cross-par determinism
					for _, par := range []int{1, 4} {
						label := fmt.Sprintf("%s/m=%d/%s-%s/k=%d/P=%d/par=%d/%s",
							lawName, m, tc.alg.Name(), tc.f.Name(), k, shards, par, mode.name)
						sr, err := EvaluateSharded(context.Background(), tc.alg, mode.srcs(db), tc.f, k,
							ShardConfig{Shards: shards, Parallel: par})
						if err != nil {
							t.Fatalf("%s: sharded: %v", label, err)
						}
						if tc.alg.Exact() {
							requireShardEquiv(t, label, want, sr.Results, truth)
						}
						if continuous || !tc.alg.Exact() {
							// Tie-free data (and the NRA degenerate path):
							// full byte identity, including tie order.
							if len(sr.Results) != len(want) {
								t.Fatalf("%s: sharded returned %d results, unsharded %d", label, len(sr.Results), len(want))
							}
							for i := range want {
								if sr.Results[i] != want[i] {
									t.Errorf("%s: result %d differs: sharded %v, unsharded %v", label, i, sr.Results[i], want[i])
								}
							}
						}
						if got := sr.Cost; got != sumCosts(sr.PerShard) {
							t.Errorf("%s: total cost %v != per-shard sum %v", label, got, sumCosts(sr.PerShard))
						}
						if sr.PerList != nil && sr.Cost != sumCosts(sr.PerList) {
							t.Errorf("%s: total cost %v != per-list sum %v", label, sr.Cost, sumCosts(sr.PerList))
						}
						if seq == nil {
							seq = sr.Results
							continue
						}
						if len(sr.Results) != len(seq) {
							t.Fatalf("%s: %d results at par=4, %d at par=1", label, len(sr.Results), len(seq))
						}
						for i := range seq {
							if sr.Results[i] != seq[i] {
								t.Errorf("%s: result %d depends on worker cap: %v (par=4) vs %v (par=1)",
									label, i, sr.Results[i], seq[i])
							}
						}
					}
				}
			}
		}
	}
}

// sumCosts folds a cost breakdown back into a total.
func sumCosts(cs []cost.Cost) cost.Cost {
	var total cost.Cost
	for _, c := range cs {
		total = total.Add(c)
	}
	return total
}

// TestScratchReuseIsDeterministic re-runs one query through the same
// pooled scratch repeatedly: epoch-stamped reuse must not leak state
// between evaluations.
func TestScratchReuseIsDeterministic(t *testing.T) {
	db := scoredb.Generator{N: 300, M: 3, Seed: 37}.MustGenerate()
	first, cFirst, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, c, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 12)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("rerun %d", i), res, first, c, cFirst)
	}
}

// TestPooledScratchUnderConcurrentQueries hammers the shared scratch and
// dense-cache pools from many goroutines (run with -race: the CI suite
// does). Every evaluation must still match the single-threaded answer.
func TestPooledScratchUnderConcurrentQueries(t *testing.T) {
	dbs := []*scoredb.Database{
		scoredb.Generator{N: 400, M: 2, Seed: 41}.MustGenerate(),
		scoredb.Generator{N: 300, M: 3, Seed: 42}.MustGenerate(),
		scoredb.Generator{N: 200, M: 4, Seed: 43}.MustGenerate(),
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0Prime{}, agg.Min},
		{TA{}, agg.Min},
		{NRA{}, agg.Min},
		{B0{}, agg.Max},
		{A0Adaptive{}, agg.Min},
		{OrderStat{}, agg.Median},
	}
	type key struct{ db, alg int }
	want := make(map[key][]Result)
	wantCost := make(map[key]cost.Cost)
	for di, db := range dbs {
		for ai, tc := range algs {
			res, c, err := Evaluate(context.Background(), tc.alg, sourcesOf(db), tc.f, 9)
			if err != nil {
				t.Fatal(err)
			}
			want[key{di, ai}] = res
			wantCost[key{di, ai}] = c
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				di := (g + i) % len(dbs)
				ai := (g * 7) % len(algs)
				tc := algs[ai]
				res, c, err := Evaluate(context.Background(), tc.alg, sourcesOf(dbs[di]), tc.f, 9)
				if err != nil {
					errs <- err.Error()
					return
				}
				k := key{di, ai}
				if c != wantCost[k] || len(res) != len(want[k]) {
					errs <- fmt.Sprintf("goroutine %d: %s on db %d diverged", g, tc.alg.Name(), di)
					return
				}
				for j := range res {
					if res[j] != want[k][j] {
						errs <- fmt.Sprintf("goroutine %d: %s result %d diverged", g, tc.alg.Name(), j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
