package core

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// Filter evaluates a threshold ("filter condition") query in the style of
// Chaudhuri–Gravano [CG96]: return every object whose overall grade under
// the monotone query F_t(A₁,…,Aₘ) is at least theta, in descending grade
// order.
//
// The prefix argument: for monotone t, an object x with overall grade
// ≥ θ satisfies t(1,…,μᵢ(x),…,1) ≥ t(μ₁(x),…,μₘ(x)) ≥ θ in every
// coordinate i. Each list is therefore drained exactly while
// t(1,…,g,…,1) ≥ θ holds for the grade g at its reading frontier; x must
// appear in every list's drained prefix, so the candidates are the
// intersection of the prefixes. Random access then completes the
// candidates' grade vectors and the exact test is applied.
//
// For t = min the per-coordinate bound is just g ≥ θ: drain each list
// down to grade θ, exactly the "color score at least 0.2" filter of the
// related-work discussion.
func Filter(ec *ExecContext, lists []*subsys.Counted, t agg.Func, theta float64) ([]Result, error) {
	if len(lists) == 0 {
		return nil, ErrNoLists
	}
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("core: threshold %v outside [0,1]", theta)
	}
	m := len(lists)

	// coordBound(i, g) = t with g in coordinate i and 1 elsewhere.
	buf := make([]float64, m)
	coordBound := func(i int, g float64) float64 {
		for j := range buf {
			buf[j] = 1
		}
		buf[i] = g
		return t.Apply(buf)
	}

	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	for i := range lists {
		cu := subsys.NewCursor(lists[i])
		only := []*subsys.Cursor{cu}
		for !cu.Exhausted() {
			if err := ec.Stage(only, 1); err != nil {
				return nil, err
			}
			if err := ec.Reserve(1, 0); err != nil {
				return nil, err
			}
			e, ok := cu.Next()
			if !ok {
				break
			}
			if coordBound(i, e.Grade) < theta {
				break
			}
			sc.visit(e.Object)
		}
	}

	// Candidates: objects seen in every drained prefix; complete their
	// grade vectors through the executor and apply the exact test.
	cand := make([]int, 0, len(sc.objects()))
	for _, obj := range sc.objects() {
		if int(sc.countOf(obj)) == m {
			cand = append(cand, obj)
		}
	}
	scored, err := ec.appendScores(sc, lists, cand, t, sc.entriesBuf())
	sc.keepEntries(scored)
	if err != nil {
		return nil, err
	}
	var out []gradedset.Entry
	for _, e := range scored {
		if e.Grade >= theta {
			out = append(out, e)
		}
	}
	gradedset.SortEntries(out)
	results := make([]Result, len(out))
	for i, e := range out {
		results[i] = Result{Object: e.Object, Grade: e.Grade}
	}
	return results, nil
}
