package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// shardedPrefetchConfig is the composed-mode ShardConfig the tests in
// this file use: P shards, each pipelined inside.
func shardedPrefetchConfig(shards, par, depth int) ShardConfig {
	return ShardConfig{Shards: shards, Parallel: par, Prefetch: true, PrefetchDepth: depth}
}

// TestShardedPrefetchMatchesSerialSharded is the composition invariant:
// running every shard under its own pipelined executor is a transport
// change only. At Parallel=1 (deterministic fencing) the composed mode
// must match the serial-inside sharded evaluation byte for byte —
// results, total cost, per-shard and per-list tallies — and at
// Parallel=4 the results must still satisfy the shard-equivalence
// contract against the unsharded reference. Runs across algorithms,
// laws, adaptive and fixed depths (the CI suite repeats it under -race,
// which also exercises the per-shard pipelines against the shared
// re-ranking views and the scoreboard).
func TestShardedPrefetchMatchesSerialSharded(t *testing.T) {
	laws := map[string]scoredb.GradeLaw{
		"Uniform": scoredb.Uniform{},
		"Binary":  scoredb.Binary{P: 0.08},
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0{}, agg.ArithmeticMean},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.AlgebraicProduct},
		{A0Prime{}, agg.Min},
		{NRA{}, agg.Min}, // degenerates: unsharded pipelined
		{B0{}, agg.Max},
		{OrderStat{}, agg.Median},
	}
	rng := rand.New(rand.NewSource(71))
	for lawName, law := range laws {
		for m := 2; m <= 4; m++ {
			n := 200 + rng.Intn(300)
			db := scoredb.Generator{N: n, M: m, Law: law, Seed: uint64(700*m) + 5}.MustGenerate()
			for _, tc := range algs {
				k := 1 + rng.Intn(n)
				shards := 2 + rng.Intn(5)
				depth := rng.Intn(5) // 0 = adaptive
				label := fmt.Sprintf("%s/m=%d/%s-%s/k=%d/P=%d/depth=%d",
					lawName, m, tc.alg.Name(), tc.f.Name(), k, shards, depth)

				want, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(db), tc.f, k,
					ShardConfig{Shards: shards, Parallel: 1})
				if err != nil {
					t.Fatalf("%s: serial sharded: %v", label, err)
				}
				got, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(db), tc.f, k,
					shardedPrefetchConfig(shards, 1, depth))
				if err != nil {
					t.Fatalf("%s: pipelined sharded: %v", label, err)
				}
				if got.Cost != want.Cost {
					t.Errorf("%s: pipelined cost %v != serial %v", label, got.Cost, want.Cost)
				}
				if len(got.Results) != len(want.Results) {
					t.Fatalf("%s: %d results pipelined, %d serial", label, len(got.Results), len(want.Results))
				}
				for i := range want.Results {
					if got.Results[i] != want.Results[i] {
						t.Errorf("%s: result %d differs: pipelined %v, serial %v",
							label, i, got.Results[i], want.Results[i])
					}
				}
				for s := range want.PerShard {
					if got.PerShard[s] != want.PerShard[s] {
						t.Errorf("%s: shard %d cost %v != serial %v", label, s, got.PerShard[s], want.PerShard[s])
					}
				}
				for j := range want.PerList {
					if got.PerList[j] != want.PerList[j] {
						t.Errorf("%s: list %d cost %v != serial %v", label, j, got.PerList[j], want.PerList[j])
					}
				}

				// Parallel shard workers: fencing timing varies, so only
				// the equivalence contract against unsharded holds.
				unsharded, _, err := Evaluate(context.Background(), tc.alg, sourcesOf(db), tc.f, k)
				if err != nil {
					t.Fatalf("%s: unsharded: %v", label, err)
				}
				par, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(db), tc.f, k,
					shardedPrefetchConfig(shards, 4, depth))
				if err != nil {
					t.Fatalf("%s: pipelined sharded par=4: %v", label, err)
				}
				if tc.alg.Exact() {
					requireShardEquiv(t, label+"/par=4", unsharded, par.Results, trueScorer(db, tc.f))
				}
			}
		}
	}
}

// TestShardedPrefetchReportsStats pins the stats satellite at the core
// level: a composed run must surface aggregated pipeline stats — the
// pipelines genuinely engaged per shard — while a serial sharded run
// reports none.
func TestShardedPrefetchReportsStats(t *testing.T) {
	db := scoredb.Generator{N: 2000, M: 3, Seed: 72}.MustGenerate()
	serial, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 10,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Prefetch != nil {
		t.Errorf("serial sharded run reports prefetch stats: %+v", *serial.Prefetch)
	}
	piped, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 10,
		shardedPrefetchConfig(4, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if piped.Prefetch == nil {
		t.Fatal("pipelined sharded run reports no prefetch stats")
	}
	if piped.Prefetch.Batches == 0 {
		t.Error("aggregated stats show zero batches; pipelines never engaged")
	}
	if piped.Prefetch.MaxDepth < 1 {
		t.Errorf("aggregated MaxDepth = %d, want >= 1", piped.Prefetch.MaxDepth)
	}
}

// skewedShardSources builds the fencing workload: shard 0 (objects
// below n/shards) owns every top answer with correlated high grades,
// while the rest of the universe is uniformly mediocre, so every cold
// shard's frontier collapses below the published global k-th grade
// after a handful of rounds.
func skewedShardSources(t *testing.T, n, shards int) []subsys.Source {
	t.Helper()
	lists := make([]subsys.Source, 2)
	for j := 0; j < 2; j++ {
		entries := make([]gradedset.Entry, n)
		for i := 0; i < n; i++ {
			g := 0.4 * float64((i*7919+j)%n) / float64(n)
			if i < n/shards {
				g = 0.999 - 0.3*float64(i)/float64(n/shards)
			}
			entries[i] = gradedset.Entry{Object: i, Grade: g}
		}
		l, err := gradedset.NewList(entries)
		if err != nil {
			t.Fatal(err)
		}
		lists[j] = subsys.FromList(l)
	}
	return lists
}

// pollutedSkewSources is the harder fencing workload (the shape of
// BenchmarkE17_ShardedSkew): every global top answer lives in the first
// 1/shards of the universe with correlated high grades in both lists,
// while the remaining ids carry near-top grades in list 0 — pollution
// the unsharded round-robin must wade through — and grades ≈ 0 in
// list 1, so every cold shard's frontier aggregate collapses after one
// round and the threshold merge fences it.
func pollutedSkewSources(t *testing.T, n, shards int) []subsys.Source {
	t.Helper()
	hot := n / shards
	e1 := make([]gradedset.Entry, n)
	e2 := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		var g1, g2 float64
		if i < hot {
			g1 = 0.999 - float64(i)/float64(hot)*0.95
			g2 = g1
		} else {
			g1 = 0.9 + (float64((i*7919)%n)+float64(i)/float64(n))/float64(n)*0.099
			g2 = (float64((i*104729)%n) + float64(i)/float64(n)) / float64(n) * 0.001
		}
		e1[i] = gradedset.Entry{Object: i, Grade: g1}
		e2[i] = gradedset.Entry{Object: i, Grade: g2}
	}
	l1, err := gradedset.NewList(e1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := gradedset.NewList(e2)
	if err != nil {
		t.Fatal(err)
	}
	return []subsys.Source{subsys.FromList(l1), subsys.FromList(l2)}
}

// TestShardedPrefetchFenceDrainsStreamingPipelines fences shards whose
// background pipelines are genuinely streaming (slow sources, batches
// in flight when the threshold stop lands): the fence must drain each
// fenced shard's pipelines — the physical call counters settle after
// the evaluation returns — while answers and tallies stay bit-identical
// to the serial-inside sharded run, and the fencing saving survives
// (total sharded cost below the unsharded tally on this skew).
func TestShardedPrefetchFenceDrainsStreamingPipelines(t *testing.T) {
	const n, shards = 4096, 4
	want, err := EvaluateSharded(context.Background(), A0{}, pollutedSkewSources(t, n, shards), agg.Min, 10,
		ShardConfig{Shards: shards, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	srcs := pollutedSkewSources(t, n, shards)
	lat := make([]*subsys.LatencySource, len(srcs))
	for i := range srcs {
		lat[i] = subsys.NewLatencySource(srcs[i], 100*time.Microsecond, 0)
		srcs[i] = lat[i]
	}
	got, err := EvaluateSharded(context.Background(), A0{}, srcs, agg.Min, 10,
		shardedPrefetchConfig(shards, 1, 0))
	if err != nil {
		t.Fatalf("composed evaluation failed: %v", err)
	}
	if got.Cost != want.Cost {
		t.Errorf("composed cost %v != serial sharded %v", got.Cost, want.Cost)
	}
	for s := range want.PerShard {
		if got.PerShard[s] != want.PerShard[s] {
			t.Errorf("shard %d cost %v != serial %v", s, got.PerShard[s], want.PerShard[s])
		}
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Errorf("result %d = %v, want %v", i, got.Results[i], want.Results[i])
		}
	}
	// The threshold fencing engaged: cold shards stopped early, so the
	// partitioned total undercuts the unsharded round-robin on this skew.
	wantUnshardedCost := 0
	{
		_, c, err := Evaluate(context.Background(), A0{}, pollutedSkewSources(t, n, shards), agg.Min, 10)
		if err != nil {
			t.Fatal(err)
		}
		wantUnshardedCost = c.Sum()
	}
	if got.Cost.Sum() >= wantUnshardedCost {
		t.Errorf("fencing did not engage: sharded cost %d, unsharded %d", got.Cost.Sum(), wantUnshardedCost)
	}
	// Drained: once in-flight batches land, no further physical calls.
	time.Sleep(30 * time.Millisecond)
	before := totalCalls(lat)
	time.Sleep(30 * time.Millisecond)
	if after := totalCalls(lat); after != before {
		t.Errorf("pipelines still fetching after fenced evaluation returned: %d -> %d calls", before, after)
	}
}

// deepBlockSource parks every batched sorted access that reaches past
// minLo until released: the wedged-subsystem case scoped to the deep
// scans only — a cold shard's re-ranking scan (which must wade past the
// hot prefix to find its objects) wedges, while the hot shard's shallow
// scans proceed.
type deepBlockSource struct {
	src     subsys.Source
	release chan struct{}
	minLo   int
}

func (s deepBlockSource) Len() int                       { return s.src.Len() }
func (s deepBlockSource) Entry(rank int) gradedset.Entry { return s.src.Entry(rank) }
func (s deepBlockSource) Entries(lo, hi int) []gradedset.Entry {
	if lo >= s.minLo {
		<-s.release
	}
	return s.src.Entries(lo, hi)
}
func (s deepBlockSource) Grade(obj int) float64 { return s.src.Grade(obj) }

// atomicBlockSource parks every batched sorted access after the first
// until released. Unlike blockSource it is safe to share between the
// several pipeline workers a sharded pipelined evaluation runs against
// one parent source.
type atomicBlockSource struct {
	src     subsys.Source
	release chan struct{}
	calls   *atomic.Int64
}

func (s atomicBlockSource) Len() int                       { return s.src.Len() }
func (s atomicBlockSource) Entry(rank int) gradedset.Entry { return s.src.Entry(rank) }
func (s atomicBlockSource) Entries(lo, hi int) []gradedset.Entry {
	if s.calls.Add(1) > 1 {
		<-s.release
	}
	return s.src.Entries(lo, hi)
}
func (s atomicBlockSource) Grade(obj int) float64 { return s.src.Grade(obj) }

// TestShardedPrefetchCancellationWedgedFencedShard is the composed
// worst case: on the skewed workload the cold shard — the one the
// threshold merge would fence — wedges mid-pipeline during its deep
// re-ranking scan, with its consumer parked on the wedged batch, while
// the hot shard finishes and publishes its answers. Cancellation must
// abandon the wedged shard promptly (*AbandonedError wrapping
// context.Canceled) and report consistent partial tallies; the wedged
// worker is released only after the evaluation has returned.
func TestShardedPrefetchCancellationWedgedFencedShard(t *testing.T) {
	const n, shards = 2048, 2
	srcs := skewedShardSources(t, n, shards)
	release := make(chan struct{})
	for i := range srcs {
		// Block any scan past the hot shard's half of the parent order:
		// only the cold shard's view reaches that deep.
		srcs[i] = deepBlockSource{src: srcs[i], release: release, minLo: n / 2}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var rep *ShardReport
	var evalErr error
	start := time.Now()
	go func() {
		rep, evalErr = EvaluateSharded(ctx, A0{}, srcs, agg.Min, 10,
			shardedPrefetchConfig(shards, 2, 0))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		close(release)
		t.Fatal("sharded evaluation did not return after cancellation; wedged fenced shard was not abandoned")
	}
	close(release) // only now may the wedged worker land its batch
	if !errors.Is(evalErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", evalErr)
	}
	var ab *AbandonedError
	if !errors.As(evalErr, &ab) {
		t.Fatalf("err %v does not expose *AbandonedError", evalErr)
	}
	if rep.Results != nil {
		t.Errorf("results on canceled evaluation: %v", rep.Results)
	}
	if got := sumCosts(rep.PerShard); got != rep.Cost {
		t.Errorf("total cost %v != per-shard sum %v", rep.Cost, got)
	}
	t.Logf("abandoned after %v", time.Since(start))
}

// TestShardedPrefetchCancellationWedgedBatch cancels a composed
// evaluation while a shard's pipeline has a wedged batch in flight and
// the shard's consumer is blocked waiting on it: the evaluation must
// abandon promptly (*AbandonedError wrapping context.Canceled) instead
// of waiting the subsystem out, and the report must still carry
// consistent partial tallies.
func TestShardedPrefetchCancellationWedgedBatch(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 73}.MustGenerate()
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	srcs := sourcesOf(db)
	srcs[1] = atomicBlockSource{src: srcs[1], release: release, calls: &calls}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var rep *ShardReport
	var evalErr error
	start := time.Now()
	go func() {
		rep, evalErr = EvaluateSharded(ctx, A0{}, srcs, agg.Min, 10,
			shardedPrefetchConfig(2, 2, 32))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sharded evaluation did not return after cancellation; wedged batch was not abandoned")
	}
	if !errors.Is(evalErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", evalErr)
	}
	if rep.Results != nil {
		t.Errorf("results on canceled evaluation: %v", rep.Results)
	}
	if got := sumCosts(rep.PerShard); got != rep.Cost {
		t.Errorf("total cost %v != per-shard sum %v", rep.Cost, got)
	}
	t.Logf("abandoned after %v", time.Since(start))
}

// TestShardedPrefetchBudgetExhaustion races budget exhaustion against
// shard fencing in the composed mode, repeatedly and with parallel
// shard workers (the CI suite runs it under -race): the stop must
// surface the typed *BudgetError, the shared reservation pool must
// never overshoot, and every shard's pipelines must be closed — no
// physical source calls after the evaluation returns beyond the
// in-flight batches.
func TestShardedPrefetchBudgetExhaustion(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 3, Seed: 74}.MustGenerate()
	full, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 10,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(full.Cost.Sum()) / 8
	for round := 0; round < 8; round++ {
		srcs, lat := latencySourcesOf(db, 50*time.Microsecond)
		cfg := shardedPrefetchConfig(4, 4, 0)
		cfg.Budget = budget
		rep, err := EvaluateSharded(context.Background(), A0{}, srcs, agg.Min, 10, cfg)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("round %d: err = %v, want ErrBudgetExceeded", round, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("round %d: err %v does not expose *BudgetError", round, err)
		}
		if be.Spent > budget {
			t.Errorf("round %d: BudgetError.Spent = %v overshoots budget %v", round, be.Spent, budget)
		}
		if got := float64(rep.Cost.Sum()); got > budget {
			t.Errorf("round %d: global spend %v overshoots budget %v", round, got, budget)
		}
		if rep.Results != nil {
			t.Errorf("round %d: results on budget-stopped evaluation", round)
		}
		// All pipelines closed: once in-flight batches land, the call
		// count must stop moving.
		time.Sleep(30 * time.Millisecond)
		before := totalCalls(lat)
		time.Sleep(30 * time.Millisecond)
		if after := totalCalls(lat); after != before {
			t.Errorf("round %d: pipelines still fetching after budget stop: %d -> %d calls",
				round, before, after)
		}
	}
}

// TestShardedPaginatorPrefetchMatchesUnsharded drives the composed
// paginator — per-shard pipelines kept alive across pages — and pins
// its page sequence to the plain unsharded paginator's.
func TestShardedPaginatorPrefetchMatchesUnsharded(t *testing.T) {
	db := scoredb.Generator{N: 1200, M: 2, Seed: 75}.MustGenerate()
	counted := subsys.CountAll(sourcesOf(db))
	ref := NewPaginator(NewExecContext(context.Background(), counted), A0{}, counted, agg.Min)
	sp, err := NewShardedPaginator(context.Background(), A0{}, sourcesOf(db), agg.Min,
		shardedPrefetchConfig(3, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Release()
	if !sp.Sharded() {
		t.Fatal("paginator did not shard")
	}
	for page := 0; page < 5; page++ {
		want, err := ref.NextPage(7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.NextPage(7)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("page %d: %d results sharded+prefetch, %d unsharded", page, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("page %d result %d: %v, want %v", page, i, got[i], want[i])
			}
		}
	}
	subsys.ReleaseAll(counted)
}

// TestShardedPaginatorReleaseWithLivePipelines releases a composed
// paginator while every shard's pipelines are live (mid-pagination,
// slow sources still streaming): Release must stop all of them — the
// physical call counters settle — without hanging on in-flight batches.
func TestShardedPaginatorReleaseWithLivePipelines(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 2, Seed: 76}.MustGenerate()
	srcs, lat := latencySourcesOf(db, 100*time.Microsecond)
	sp, err := NewShardedPaginator(context.Background(), A0{}, srcs, agg.Min,
		shardedPrefetchConfig(4, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.NextPage(5); err != nil {
		t.Fatal(err)
	}
	if totalCalls(lat) == 0 {
		t.Fatal("no physical calls after a page; pipelines never engaged")
	}
	done := make(chan struct{})
	go func() {
		sp.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Release hung on live per-shard pipelines")
	}
	time.Sleep(30 * time.Millisecond)
	before := totalCalls(lat)
	time.Sleep(30 * time.Millisecond)
	if after := totalCalls(lat); after != before {
		t.Errorf("pipelines still fetching after Release: %d -> %d calls", before, after)
	}
}
