package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// NRA ("no random access") is the other member of the successor family,
// implemented as a documented extension: it uses sorted access only,
// maintaining for every seen object a worst-case grade W(x) (unknown
// grades taken as 0) and a best-case grade B(x) (unknown grades taken as
// the last grade its list has shown). It stops when the k-th best
// worst-case grade is at least both the best case of every other seen
// object and the threshold t(g̲₁,…,g̲ₘ) bounding all unseen objects.
//
// The returned objects are a correct top-k set for any monotone t, but
// the reported grades are the lower bounds W(x), not necessarily the
// exact grades — hence Exact() is false. (A grade is exact whenever the
// object was seen in every list before the stop.)
type NRA struct {
	// StrictMonotoneCheck as in A0.
	StrictMonotoneCheck bool
}

// Name implements Algorithm.
func (NRA) Name() string { return "NRA" }

// Exact implements Algorithm: grades are lower bounds.
func (NRA) Exact() bool { return false }

// TopK implements Algorithm. Per-object partial grade vectors live in a
// flat slot arena indexed through the scratch (slot s owns grades
// [s·m, (s+1)·m)), so the sorted phase allocates nothing per object.
func (nra NRA) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if nra.StrictMonotoneCheck && !t.Monotone() {
		return nil, ErrNotMonotone
	}
	m := len(lists)
	cursors := subsys.Cursors(lists)
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	grades := sc.f64Arena() // slot*m + j: grade of slot's object in list j
	known := sc.boolArena() // slot*m + j: whether that grade has been seen
	defer func() {
		sc.keepF64Arena(grades)
		sc.keepBoolArena(known)
	}()
	lasts := make([]float64, m)
	for i := range lasts {
		lasts[i] = 1
	}
	buf := sc.gradesBuf(m)

	// worst substitutes 0 for unknown grades; best substitutes the last
	// grade the list has shown, an upper bound since grades arrive in
	// descending order. Both are monotone substitutions, so W(x) ≤
	// grade(x) ≤ B(x) for monotone t.
	worst := func(slot int) float64 {
		for j := 0; j < m; j++ {
			if known[slot*m+j] {
				buf[j] = grades[slot*m+j]
			} else {
				buf[j] = 0
			}
		}
		return t.Apply(buf)
	}
	best := func(slot int) float64 {
		for j := 0; j < m; j++ {
			if known[slot*m+j] {
				buf[j] = grades[slot*m+j]
			} else {
				buf[j] = lasts[j]
			}
		}
		return t.Apply(buf)
	}

	for {
		if err := ec.Stage(cursors, 1); err != nil {
			return nil, err
		}
		if err := ec.ReserveRound(cursors); err != nil {
			return nil, err
		}
		exhausted := true
		for i, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			lasts[i] = e.Grade
			slot := sc.indexOf(e.Object)
			if slot < 0 {
				slot = sc.addIndex(e.Object)
				for j := 0; j < m; j++ {
					grades = append(grades, 0)
					known = append(known, false)
				}
			}
			if !known[slot*m+i] {
				known[slot*m+i] = true
				grades[slot*m+i] = e.Grade
			}
		}
		if exhausted {
			break
		}

		// Cheap gate first: unseen objects are bounded by t(lasts). Only
		// when that bar falls to the current k-th worst-case grade is the
		// full stop test worth running.
		objs := sc.objects()
		entries := sc.entriesBuf()
		for slot, obj := range objs {
			entries = append(entries, gradedset.Entry{Object: obj, Grade: worst(slot)})
		}
		sc.keepEntries(entries)
		top := gradedset.TopK(entries, k)
		if len(top) < k {
			continue
		}
		kth := top[len(top)-1].Grade
		if t.Apply(lasts) > kth {
			continue
		}
		inTop := make(map[int]bool, k)
		for _, e := range top {
			inTop[e.Object] = true
		}
		stop := true
		for slot, obj := range objs {
			if inTop[obj] {
				continue
			}
			if best(slot) > kth {
				stop = false
				break
			}
		}
		if stop {
			break
		}
	}

	entries := sc.entriesBuf()
	for slot, obj := range sc.objects() {
		entries = append(entries, gradedset.Entry{Object: obj, Grade: worst(slot)})
	}
	sc.keepEntries(entries)
	return topKResults(entries, k), nil
}
