package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// NRA ("no random access") is the other member of the successor family,
// implemented as a documented extension: it uses sorted access only,
// maintaining for every seen object a worst-case grade W(x) (unknown
// grades taken as 0) and a best-case grade B(x) (unknown grades taken as
// the last grade its list has shown). It stops when the k-th best
// worst-case grade is at least both the best case of every other seen
// object and the threshold t(g̲₁,…,g̲ₘ) bounding all unseen objects.
//
// The returned objects are a correct top-k set for any monotone t, but
// the reported grades are the lower bounds W(x), not necessarily the
// exact grades — hence Exact() is false. (A grade is exact whenever the
// object was seen in every list before the stop.)
type NRA struct {
	// StrictMonotoneCheck as in A0.
	StrictMonotoneCheck bool
}

// Name implements Algorithm.
func (NRA) Name() string { return "NRA" }

// Exact implements Algorithm: grades are lower bounds.
func (NRA) Exact() bool { return false }

// nraState tracks one seen object's partial grade vector.
type nraState struct {
	grades []float64
	known  []bool
}

// TopK implements Algorithm.
func (nra NRA) TopK(lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if nra.StrictMonotoneCheck && !t.Monotone() {
		return nil, ErrNotMonotone
	}
	m := len(lists)
	cursors := subsys.Cursors(lists)
	states := make(map[int]*nraState)
	lasts := make([]float64, m)
	for i := range lasts {
		lasts[i] = 1
	}
	buf := make([]float64, m)

	// worst substitutes 0 for unknown grades; best substitutes the last
	// grade the list has shown, an upper bound since grades arrive in
	// descending order. Both are monotone substitutions, so W(x) ≤
	// grade(x) ≤ B(x) for monotone t.
	worst := func(s *nraState) float64 {
		for j := 0; j < m; j++ {
			if s.known[j] {
				buf[j] = s.grades[j]
			} else {
				buf[j] = 0
			}
		}
		return t.Apply(buf)
	}
	best := func(s *nraState) float64 {
		for j := 0; j < m; j++ {
			if s.known[j] {
				buf[j] = s.grades[j]
			} else {
				buf[j] = lasts[j]
			}
		}
		return t.Apply(buf)
	}

	for {
		exhausted := true
		for i, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			lasts[i] = e.Grade
			s := states[e.Object]
			if s == nil {
				s = &nraState{grades: make([]float64, m), known: make([]bool, m)}
				states[e.Object] = s
			}
			if !s.known[i] {
				s.known[i] = true
				s.grades[i] = e.Grade
			}
		}
		if exhausted {
			break
		}

		// Cheap gate first: unseen objects are bounded by t(lasts). Only
		// when that bar falls to the current k-th worst-case grade is the
		// full stop test worth running.
		entries := make([]gradedset.Entry, 0, len(states))
		for obj, s := range states {
			entries = append(entries, gradedset.Entry{Object: obj, Grade: worst(s)})
		}
		top := gradedset.TopK(entries, k)
		if len(top) < k {
			continue
		}
		kth := top[len(top)-1].Grade
		if t.Apply(lasts) > kth {
			continue
		}
		inTop := make(map[int]bool, k)
		for _, e := range top {
			inTop[e.Object] = true
		}
		stop := true
		for obj, s := range states {
			if inTop[obj] {
				continue
			}
			if best(s) > kth {
				stop = false
				break
			}
		}
		if stop {
			break
		}
	}

	entries := make([]gradedset.Entry, 0, len(states))
	for obj, s := range states {
		entries = append(entries, gradedset.Entry{Object: obj, Grade: worst(s)})
	}
	return topKResults(entries, k), nil
}
