package core

import (
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
)

func TestA0AdaptiveAgreesWithNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		laws := []scoredb.GradeLaw{
			scoredb.Uniform{}, scoredb.Discrete{Levels: 4},
			scoredb.Binary{P: 0.3}, scoredb.BoundedAbove{Max: 0.7},
		}
		law := laws[seed%uint64(len(laws))]
		n := 5 + int(seed%60)
		m := 2 + int(seed%3)
		k := 1 + int(seed%uint64(n))
		fns := []agg.Func{agg.Min, agg.AlgebraicProduct, agg.ArithmeticMean, agg.Median}
		fn := fns[seed%4]
		db, err := (scoredb.Generator{N: n, M: m, Law: law, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, fn, k)
		got, _ := run(t, A0Adaptive{}, db, fn, k)
		if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
			t.Logf("seed=%d n=%d m=%d k=%d law=%s fn=%s: got=%v want=%v",
				seed, n, m, k, law.Name(), fn.Name(), got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestA0AdaptiveOnHardQuery(t *testing.T) {
	db, err := scoredb.HardQueryPair(80, 21)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 3)
	got, _ := run(t, A0Adaptive{}, db, agg.Min, 3)
	if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
		t.Errorf("hard query: got=%v want=%v", got, want)
	}
}

// Scheduling independence on an asymmetric workload: the adaptive policy
// takes a completely different access path (it drains the binary list's
// matches before touching the fuzzy list) yet returns the same answers.
func TestA0AdaptiveCorrectOnAsymmetricLists(t *testing.T) {
	const n = 20000
	db := binaryPlusFuzzy(n, 2, 0.002, 22)
	want, _ := run(t, NaiveSorted{}, db, agg.Min, 5)
	got, cAdaptive := run(t, A0Adaptive{}, db, agg.Min, 5)
	if !gradedset.SameGradeMultiset(entriesOf(got), entriesOf(want), 1e-12) {
		t.Errorf("asymmetric: got=%v want=%v", got, want)
	}
	// Still sublinear on this workload, even if not optimal.
	if cAdaptive.Sum() >= n {
		t.Errorf("adaptive cost %v reached linear", cAdaptive)
	}
}

// On symmetric uniform lists the adaptive policy stays within a small
// factor of uniform-depth A0 (it is the same algorithm up to scheduling).
func TestA0AdaptiveComparableOnSymmetricLists(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		db := scoredb.Generator{N: 10000, M: 2, Seed: seed}.MustGenerate()
		_, cAdaptive := run(t, A0Adaptive{}, db, agg.Min, 10)
		_, cUniform := run(t, A0{}, db, agg.Min, 10)
		if cAdaptive.Sum() > 3*cUniform.Sum() {
			t.Errorf("seed %d: adaptive %v far above uniform %v", seed, cAdaptive, cUniform)
		}
	}
}
