package core

import (
	"context"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// sketchesFor builds m exact sketches over an n-object universe whose
// grades follow shape(i): the ground truth a weighted planner would see
// at load time.
func sketchesFor(t *testing.T, n, m int, shape func(i int) float64) []*subsys.Sketch {
	t.Helper()
	out := make([]*subsys.Sketch, m)
	for j := 0; j < m; j++ {
		entries := make([]gradedset.Entry, n)
		for i := 0; i < n; i++ {
			entries[i] = gradedset.Entry{Object: i, Grade: shape(i)}
		}
		l, err := gradedset.NewList(entries)
		if err != nil {
			t.Fatal(err)
		}
		out[j] = subsys.SketchList(l)
	}
	return out
}

// hotPrefix concentrates grade mass in the first `hot` ids — the
// canonical skew the weighted planner exists for.
func hotPrefix(n, hot int) func(int) float64 {
	return func(i int) float64 {
		if i < hot {
			return 0.95 - 0.5*float64(i)/float64(hot)
		}
		return 0.01 * float64(n-i) / float64(n)
	}
}

// TestPlanShardsWeightedProperties pins the structural invariants of
// every weighted plan: exactly p contiguous ranges in ascending order
// covering {0,…,n−1} with no gap, overlap, or empty shard, and a
// planned-work vector of the same length whose entries are positive.
func TestPlanShardsWeightedProperties(t *testing.T) {
	shapes := map[string]func(int) float64{
		"hot-prefix": hotPrefix(4096, 256),
		"hot-suffix": func(i int) float64 { return float64(i) / 4096 },
		"flat":       func(int) float64 { return 0.5 },
		"zero":       func(int) float64 { return 0 },
	}
	for name, shape := range shapes {
		for _, n := range []int{8, 63, 500, 4096} {
			for _, p := range []int{2, 3, 4, 7} {
				if p >= n {
					continue
				}
				sketches := sketchesFor(t, n, 2, shape)
				ranges, planned := PlanShardsWeighted(n, p, sketches, agg.Min)
				if len(ranges) != p || len(planned) != p {
					t.Fatalf("%s n=%d p=%d: %d ranges, %d planned, want %d of each",
						name, n, p, len(ranges), len(planned), p)
				}
				prev := 0
				for s, r := range ranges {
					if r.Lo != prev {
						t.Errorf("%s n=%d p=%d: shard %d starts at %d, want %d (gap/overlap)",
							name, n, p, s, r.Lo, prev)
					}
					if r.Len() < 1 {
						t.Errorf("%s n=%d p=%d: shard %d is empty: %+v", name, n, p, s, r)
					}
					if planned[s] <= 0 {
						t.Errorf("%s n=%d p=%d: shard %d planned work %v, want > 0",
							name, n, p, s, planned[s])
					}
					prev = r.Hi
				}
				if prev != n {
					t.Errorf("%s n=%d p=%d: plan ends at %d, want %d", name, n, p, prev, n)
				}
			}
		}
	}
}

// TestPlanShardsWeightedDegenerate: every degenerate input — p ≤ 1, a
// universe no bigger than p, no sketches, all-nil sketches, sketches
// over the wrong universe, a nil aggregation law — must return the even
// split byte for byte, with nil planned work. Weighted planning must
// never change behavior unless it has real information to act on.
func TestPlanShardsWeightedDegenerate(t *testing.T) {
	good := sketchesFor(t, 100, 2, hotPrefix(100, 10))
	wrong := sketchesFor(t, 64, 2, hotPrefix(64, 8))
	cases := []struct {
		name     string
		n, p     int
		sketches []*subsys.Sketch
		f        agg.Func
	}{
		{"p=1", 100, 1, good, agg.Min},
		{"p=0", 100, 0, good, agg.Min},
		{"n<=p", 4, 4, sketchesFor(t, 4, 2, hotPrefix(4, 1)), agg.Min},
		{"no-sketches", 100, 4, nil, agg.Min},
		{"all-nil", 100, 4, []*subsys.Sketch{nil, nil}, agg.Min},
		{"wrong-universe", 100, 4, wrong, agg.Min},
		{"nil-agg", 100, 4, good, nil},
	}
	for _, tc := range cases {
		ranges, planned := PlanShardsWeighted(tc.n, tc.p, tc.sketches, tc.f)
		even := subsys.PlanShards(tc.n, tc.p)
		if planned != nil {
			t.Errorf("%s: planned work %v, want nil on the degenerate path", tc.name, planned)
		}
		if len(ranges) != len(even) {
			t.Fatalf("%s: %d ranges, even split has %d", tc.name, len(ranges), len(even))
		}
		for s := range even {
			if ranges[s] != even[s] {
				t.Errorf("%s: shard %d = %+v, even split %+v", tc.name, s, ranges[s], even[s])
			}
		}
	}
}

// TestPlanShardsWeightedBalancesSkew is the planner's reason to exist:
// with grade mass concentrated in a hot prefix, the weighted cuts must
// give the hot region strictly narrower shards than the even split
// would — the hot shard carries more predicted work per object, so it
// gets fewer objects.
func TestPlanShardsWeightedBalancesSkew(t *testing.T) {
	const n, p, hot = 4096, 4, 512
	sketches := sketchesFor(t, n, 2, hotPrefix(n, hot))
	ranges, planned := PlanShardsWeighted(n, p, sketches, agg.Min)
	evenWidth := n / p
	if w := ranges[0].Len(); w >= evenWidth {
		t.Errorf("hot shard width %d not below even width %d: %+v", w, evenWidth, ranges)
	}
	// The planned work must be near-balanced: no shard more than twice
	// the smallest (the quantile cuts only miss by integer rounding on
	// the grid).
	lo, hi := planned[0], planned[0]
	for _, w := range planned[1:] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if hi > 2*lo {
		t.Errorf("planned work imbalance %v..%v exceeds 2x: %v (ranges %+v)", lo, hi, planned, ranges)
	}
}

// TestPlanShardsWeightedEndToEnd runs the full sharded evaluation under
// the weighted plan on skewed data and pins the contract: answers
// satisfy shard equivalence against the unsharded reference, the report
// carries len(plan) details whose ranges reproduce the plan, and actual
// cost lands where planned cost predicts (the hot shard pays the most).
func TestPlanShardsWeightedEndToEnd(t *testing.T) {
	const n, k, shards = 4096, 10, 4
	db := skewedDB(t, n, n/shards)
	sketches := []*subsys.Sketch{subsys.SketchList(db.List(0)), subsys.SketchList(db.List(1))}
	want, _, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, k)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, k,
		ShardConfig{Shards: shards, Parallel: 1, Plan: ShardPlanWeighted, Sketches: sketches})
	if err != nil {
		t.Fatal(err)
	}
	truth := trueScorer(db, agg.Min)
	requireShardEquiv(t, "weighted", want, sr.Results, truth)
	if len(sr.Details) != shards {
		t.Fatalf("%d shard details, want %d", len(sr.Details), shards)
	}
	prev := 0
	for s, d := range sr.Details {
		if d.Range.Lo != prev {
			t.Errorf("detail %d range %+v does not continue from %d", s, d.Range, prev)
		}
		prev = d.Range.Hi
		if d.Planned <= 0 {
			t.Errorf("detail %d planned %v, want > 0", s, d.Planned)
		}
		if d.Steals != 0 {
			t.Errorf("detail %d reports %d steals without stealing enabled", s, d.Steals)
		}
	}
	if prev != n {
		t.Errorf("details end at %d, want %d", prev, n)
	}
	if sr.Stolen != 0 {
		t.Errorf("Stolen = %d without stealing enabled", sr.Stolen)
	}
}
