package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// TestStealEquivalence is the work-stealing correctness contract: with
// stealing enabled, parallel shard workers splitting each other's
// remaining ranges mid-flight must still satisfy the shard-equivalence
// contract against the unsharded reference — identical grade sequence,
// identical objects above the k-th grade, exact no-duplicate ground
// truth in the k-th tie class. Repeated trials vary the racy split
// timing; the answers must never.
func TestStealEquivalence(t *testing.T) {
	type scen struct {
		name string
		db   *scoredb.Database
	}
	scens := []scen{
		{"uniform", scoredb.Generator{N: 3000, M: 3, Seed: 91}.MustGenerate()},
		{"skewed", skewedDB(t, 3000, 400)},
		{"ties", tieDB(t, 600, 2, 100, 400, 0.4)},
	}
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
	}
	for _, sc := range scens {
		truthMin := trueScorer(sc.db, agg.Min)
		for _, tc := range algs {
			for _, k := range []int{1, 10, 120} {
				if k > sc.db.N() {
					continue
				}
				want, _, err := Evaluate(context.Background(), tc.alg, sourcesOf(sc.db), tc.f, k)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 5; trial++ {
					label := fmt.Sprintf("%s/%s/k=%d/trial=%d", sc.name, tc.alg.Name(), k, trial)
					sr, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(sc.db), tc.f, k,
						ShardConfig{Shards: 4, Parallel: 4, Steal: true})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					requireShardEquiv(t, label, want, sr.Results, truthMin)
					if sr.Stolen < 0 {
						t.Errorf("%s: negative steal count %d", label, sr.Stolen)
					}
					var details int
					for _, d := range sr.Details {
						details += d.Steals
					}
					if details != sr.Stolen {
						t.Errorf("%s: per-shard steals sum %d, total %d", label, details, sr.Stolen)
					}
				}
			}
		}
	}
}

// lopsidedDB builds the workload stealing exists for, split at n/2 into
// a quick half and a slow half. The quick half holds `gold` objects
// whose list-1 grades sit at the very top of the list (their shard's
// lazy re-rank reaches them almost for free) but whose list-2 grades
// sit just below the slow shard's eventual stopping threshold — so the
// quick shard resolves its local top-k after a modest scan and the
// k-th grade it publishes is too low to fence anybody. The slow half's
// grades are high but decorrelated between the lists, so its shard
// needs hundreds of sorted rounds to intersect and never fences. By
// the time the quick worker goes idle, the slow shard still has most
// of its rounds ahead, and splitting it is the only way to help.
func lopsidedDB(t testing.TB, n, gold int) *scoredb.Database {
	t.Helper()
	half := n / 2
	e1 := make([]gradedset.Entry, n)
	e2 := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		var g1, g2 float64
		switch {
		case i < gold:
			g1 = 0.998 + 0.002*float64(gold-i)/float64(gold+1)
			g2 = 0.880 + 0.020*float64(gold-i)/float64(gold+1)
		case i < half:
			g1 = 0.25 * float64(half-i) / float64(half)
			g2 = g1
		default:
			j := i - half
			g1 = 0.3 + 0.7*(float64((j*7919)%half)+float64(j)/float64(half))/float64(half)
			g2 = 0.3 + 0.7*(float64((j*104729)%half)+float64(j)/float64(half))/float64(half)
		}
		e1[i] = gradedset.Entry{Object: i, Grade: g1}
		e2[i] = gradedset.Entry{Object: i, Grade: g2}
	}
	l1, err := gradedset.NewList(e1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := gradedset.NewList(e2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := scoredb.New([]*gradedset.List{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestStealActuallySteals guards against the mechanism rotting into a
// vacuous no-op: on the lopsided workload the early-finishing worker
// must successfully split the busy shard at least once across the
// trials, and the answers must stay exact every time. The sources carry
// a tiny per-access latency so the test holds on a single-core host
// too: an all-CPU evaluation this short can finish before the Go
// scheduler ever runs the second worker, and a thief that never runs
// never steals — the sleep yields the processor at every access,
// making the idle worker's request and the victim's honor actually
// interleave.
func TestStealActuallySteals(t *testing.T) {
	const n, k = 8192, 64
	db := lopsidedDB(t, n, k)
	want, _, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, k)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueScorer(db, agg.Min)
	stolen := 0
	for trial := 0; trial < 3; trial++ {
		sr, err := EvaluateSharded(context.Background(), A0{}, slowSourcesOf(db, 20*time.Microsecond), agg.Min, k,
			ShardConfig{Shards: 2, Parallel: 2, Steal: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		requireShardEquiv(t, fmt.Sprintf("trial=%d", trial), want, sr.Results, truth)
		stolen += sr.Stolen
	}
	if stolen == 0 {
		t.Error("no steal occurred in 3 lopsided trials; the mechanism is inert")
	}
	t.Logf("%d steals over 3 trials", stolen)
}

// TestStealWithWeightedPlan composes the tentpole's two halves: weighted
// boundaries and stealing together must still merge the exact top-k.
func TestStealWithWeightedPlan(t *testing.T) {
	const n, k = 4096, 12
	db := skewedDB(t, n, 512)
	sketches := []*subsys.Sketch{subsys.SketchList(db.List(0)), subsys.SketchList(db.List(1))}
	want, _, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, k)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueScorer(db, agg.Min)
	for trial := 0; trial < 8; trial++ {
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, k,
			ShardConfig{Shards: 4, Parallel: 4, Steal: true, Plan: ShardPlanWeighted, Sketches: sketches})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		requireShardEquiv(t, fmt.Sprintf("trial=%d", trial), want, sr.Results, truth)
	}
}

// TestStealSingleWorkerIsOff: stealing needs a second worker to give
// work to — with Parallel=1 the flag must be inert, the evaluation byte
// for byte the sequential one, and the steal counters zero.
func TestStealSingleWorkerIsOff(t *testing.T) {
	db := skewedDB(t, 2048, 256)
	plain, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 8,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	stealing, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 8,
		ShardConfig{Shards: 4, Parallel: 1, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	if stealing.Cost != plain.Cost {
		t.Errorf("Parallel=1 steal cost %v, plain %v", stealing.Cost, plain.Cost)
	}
	if stealing.Stolen != 0 {
		t.Errorf("Parallel=1 stole %d times", stealing.Stolen)
	}
	for i := range plain.Results {
		if stealing.Results[i] != plain.Results[i] {
			t.Errorf("result %d = %v, want %v", i, stealing.Results[i], plain.Results[i])
		}
	}
	for s := range plain.PerShard {
		if stealing.PerShard[s] != plain.PerShard[s] {
			t.Errorf("shard %d cost %v, want %v", s, stealing.PerShard[s], plain.PerShard[s])
		}
	}
}

// TestStealNonFenceSafeIsOff: stealing rides the fencing scoreboard
// (a thief's sub-range relies on the same threshold argument), so an
// algorithm outside the fence-safe family must never steal — and must
// still answer correctly.
func TestStealNonFenceSafeIsOff(t *testing.T) {
	db := scoredb.Generator{N: 900, M: 2, Seed: 93}.MustGenerate()
	want, _, err := Evaluate(context.Background(), NaiveSorted{}, sourcesOf(db), agg.Min, 9)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := EvaluateSharded(context.Background(), NaiveSorted{}, sourcesOf(db), agg.Min, 9,
		ShardConfig{Shards: 4, Parallel: 4, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stolen != 0 {
		t.Errorf("non-fence-safe algorithm stole %d times", sr.Stolen)
	}
	requireShardEquiv(t, "naive-steal", want, sr.Results, trueScorer(db, agg.Min))
}

// TestStealBudgetExhaustion is the three-way race the -race CI job
// pins: thieves requesting splits, victims fencing via the scoreboard,
// and the shared budget pool running dry, all at once. Whatever
// interleaving occurs, the evaluation must terminate (no thief parked
// forever on the controller), report the typed *BudgetError, and never
// overshoot the shared pool; a generous budget must stay equivalent to
// the unsharded answers.
func TestStealBudgetExhaustion(t *testing.T) {
	db := skewedDB(t, 4096, 512)
	free, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 16,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		budget := float64(free.Cost.Sum()) / 8
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 16,
			ShardConfig{Shards: 4, Parallel: 4, Steal: true, Budget: budget})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("trial %d: err = %v, want ErrBudgetExceeded", trial, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("trial %d: err %v does not expose *BudgetError", trial, err)
		}
		if be.Spent > budget {
			t.Errorf("trial %d: spent %v overshoots %v", trial, be.Spent, budget)
		}
		if got := float64(sr.Cost.Sum()); got > budget {
			t.Errorf("trial %d: global spend %v overshoots shared budget %v", trial, got, budget)
		}
	}
	// Generous budget: the shard-equivalence contract holds with the
	// stealing races live.
	want, _, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 16)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueScorer(db, agg.Min)
	for trial := 0; trial < 4; trial++ {
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 16,
			ShardConfig{Shards: 4, Parallel: 4, Steal: true, Budget: float64(free.Cost.Sum()) * 4})
		if err != nil {
			t.Fatalf("generous trial %d: %v", trial, err)
		}
		requireShardEquiv(t, fmt.Sprintf("generous/%d", trial), want, sr.Results, truth)
	}
}
