package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

func latencySourcesOf(db *scoredb.Database, perCall time.Duration) ([]subsys.Source, []*subsys.LatencySource) {
	srcs := sourcesOf(db)
	lat := make([]*subsys.LatencySource, len(srcs))
	for i := range srcs {
		lat[i] = subsys.NewLatencySource(srcs[i], perCall, 0)
		srcs[i] = lat[i]
	}
	return srcs, lat
}

// totalCalls sums the physical source calls across wrappers.
func totalCalls(lat []*subsys.LatencySource) int64 {
	var n int64
	for _, l := range lat {
		n += l.Calls()
	}
	return n
}

// TestPipelinedBudgetMidBatch runs the pipelined executor under a budget
// far below the evaluation's natural cost, over slow sources so batches
// are genuinely in flight when the budget trips. The stop must surface
// the typed *BudgetError, never overshoot (prefetched-but-undelivered
// ranks cost nothing), and close the pipelines: no further physical
// source calls may be issued after the evaluation returns.
func TestPipelinedBudgetMidBatch(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 3, Seed: 61}.MustGenerate()
	_, full, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 20)
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(full.Sum()) / 10
	srcs, lat := latencySourcesOf(db, 100*time.Microsecond)
	res, partial, err := Evaluate(context.Background(), A0{}, srcs, agg.Min, 20,
		WithAccessBudget(budget), WithExecutor(Pipelined{P: 4, MaxDepth: 32}))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not expose *BudgetError", err)
	}
	if be.Spent > budget {
		t.Errorf("BudgetError.Spent = %v overshoots budget %v", be.Spent, budget)
	}
	if res != nil {
		t.Errorf("results on budget-stopped evaluation: %v", res)
	}
	if got := float64(partial.Sum()); got > budget {
		t.Errorf("partial cost %v overshoots budget %v", got, budget)
	}
	if partial.Sum() == 0 {
		t.Error("partial cost is zero; budget stopped before any access")
	}
	// Never prefetch past a reservation failure: once in-flight batches
	// land, the call count must stop moving.
	time.Sleep(50 * time.Millisecond)
	before := totalCalls(lat)
	time.Sleep(50 * time.Millisecond)
	if after := totalCalls(lat); after != before {
		t.Errorf("pipelines still fetching after budget stop: %d -> %d calls", before, after)
	}
}

// TestPipelinedFenceWhileStreaming fences every list mid-evaluation —
// the threshold-stop move of a sharded driver — while background
// pipelines are streaming. The fence must drain the pipelines (no
// further source calls once in-flight batches land), and the algorithm
// must complete cleanly over the objects seen before the fence.
func TestPipelinedFenceWhileStreaming(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 2, Seed: 62}.MustGenerate()
	srcs, lat := latencySourcesOf(db, 50*time.Microsecond)
	counted := subsys.CountAll(srcs)
	ec := NewExecContext(context.Background(), counted, WithExecutor(Pipelined{P: 4, MaxDepth: 16}))
	rounds := 0
	ec.stop = func(cursors []*subsys.Cursor) bool {
		rounds++
		return rounds > 5
	}
	res, err := (A0{}).TopK(ec, counted, agg.Min, 10)
	if err != nil {
		t.Fatalf("fenced evaluation failed: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("fenced evaluation returned nothing; completion phase did not run")
	}
	for i, l := range counted {
		if !l.Fenced() {
			t.Errorf("list %d not fenced", i)
		}
	}
	time.Sleep(30 * time.Millisecond)
	before := totalCalls(lat)
	time.Sleep(30 * time.Millisecond)
	if after := totalCalls(lat); after != before {
		t.Errorf("pipelines still fetching after fence: %d -> %d calls", before, after)
	}
	subsys.ReleaseAll(counted)
}

// TestPipelinedCancellationAbandonsWedgedBatch wedges one source's
// sorted access (every batch after the first parks on a channel) under
// the pipelined executor: cancellation must abandon the in-flight batch
// and return promptly rather than waiting the subsystem out.
func TestPipelinedCancellationAbandonsWedgedBatch(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 63}.MustGenerate()
	release := make(chan struct{})
	defer close(release) // let the abandoned worker finish
	calls := 0
	srcs := sourcesOf(db)
	srcs[1] = blockSource{src: srcs[1], release: release, first: true, calls: &calls}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var evalErr error
	start := time.Now()
	go func() {
		_, _, evalErr = Evaluate(ctx, A0{}, srcs, agg.Min, 10,
			WithExecutor(Pipelined{P: 2, Depth: 64}))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation did not return after cancellation; wedged batch was not abandoned")
	}
	if !errors.Is(evalErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", evalErr)
	}
	var ab *AbandonedError
	if !errors.As(evalErr, &ab) {
		t.Fatalf("err %v does not expose *AbandonedError", evalErr)
	}
	t.Logf("abandoned after %v", time.Since(start))
}

// TestPipelinedDepthCapHonored pins the adaptive policy's bounds: on a
// slow source the depth must grow past its starting value (stalls drive
// doubling) yet never exceed the configured cap, and the stats must
// witness both the stalls and the batching.
func TestPipelinedDepthCapHonored(t *testing.T) {
	db := scoredb.Generator{N: 8192, M: 2, Seed: 64}.MustGenerate()
	srcs, _ := latencySourcesOf(db, 200*time.Microsecond)
	counted := subsys.CountAll(srcs)
	const depthCap = 8
	ec := NewExecContext(context.Background(), counted, WithExecutor(Pipelined{P: 4, MaxDepth: depthCap}))
	if _, err := (A0{}).TopK(ec, counted, agg.Min, 10); err != nil {
		t.Fatal(err)
	}
	for i, l := range counted {
		s, ok := l.PrefetchStats()
		if !ok {
			t.Fatalf("list %d: no pipeline stats", i)
		}
		if s.MaxDepth > depthCap {
			t.Errorf("list %d: depth %d exceeds cap %d", i, s.MaxDepth, depthCap)
		}
		if s.MaxDepth < 2 {
			t.Errorf("list %d: depth never grew past 1 on a stalling source (max %d)", i, s.MaxDepth)
		}
		if s.Stalls == 0 {
			t.Errorf("list %d: no stalls recorded on a 200µs source", i)
		}
		if s.Batches == 0 {
			t.Errorf("list %d: no batches recorded", i)
		}
	}
	subsys.ReleaseAll(counted)
}

// TestPipelinedHidesLatency is the wall-clock smoke check of the
// executor's purpose: over sources with per-call latency, the pipelined
// executor must beat the concurrent one by a comfortable factor (the
// benchmarks record the full-size ≥5x figure; here the margin is kept
// loose so the test is robust under -race and on loaded machines).
func TestPipelinedHidesLatency(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 3, Seed: 65}.MustGenerate()
	const perCall = 200 * time.Microsecond

	srcs, _ := latencySourcesOf(db, perCall)
	start := time.Now()
	want, wantCost, err := Evaluate(context.Background(), A0{}, srcs, agg.Min, 10,
		WithExecutor(Concurrent{P: 3}))
	concWall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	srcs, _ = latencySourcesOf(db, perCall)
	start = time.Now()
	got, gotCost, err := Evaluate(context.Background(), A0{}, srcs, agg.Min, 10,
		WithExecutor(Pipelined{P: 64}))
	pipeWall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	requireIdentical(t, "latency", got, want, gotCost, wantCost)
	t.Logf("concurrent %v, pipelined %v (%.1fx)", concWall, pipeWall, float64(concWall)/float64(pipeWall))
	if pipeWall*2 > concWall {
		t.Errorf("pipelined executor did not hide latency: %v vs concurrent %v", pipeWall, concWall)
	}
}
