package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// Executor is the transport between the algorithms and the subsystems:
// it decides how the physical source operations behind a query are
// issued. Two implementations ship — Serial, which performs every access
// inline, and Concurrent, which overlaps accesses across lists (one
// worker per subsystem), modeling a middleware whose subsystems are
// remote and independently slow.
//
// Executors change wall-clock only, never semantics: the Section 5
// access tallies meter what the algorithm consumes, and consumption is
// identical under every executor (the equivalence tests pin this bit for
// bit). Concurrent achieves that by staging — prefetching sorted ranks
// into the lists' uncounted buffers — rather than by consuming on the
// algorithm's behalf.
type Executor interface {
	// Name identifies the executor in reports and experiment tables.
	Name() string
	// Parallel reports whether the executor overlaps source operations;
	// false lets hot paths skip staging bookkeeping entirely.
	Parallel() bool
	// Stage ensures each non-exhausted cursor can deliver its next
	// `ahead` entries without touching its source, prefetching in
	// parallel where the implementation allows. On cancellation it
	// returns an *AbandonedError if source operations may still be in
	// flight.
	Stage(ctx context.Context, cursors []*subsys.Cursor, ahead int) error
	// Gather performs the random-access phase: cols[j][i] =
	// lists[j].Grade(objs[i]) for every list j and object i. Each list is
	// probed by at most one worker, in ascending object-index order, so
	// per-list tallies and memo state match the serial order exactly.
	Gather(ctx context.Context, lists []*subsys.Counted, objs []int, cols [][]float64) error
}

// AbandonedError reports that an evaluation stopped (on cancellation)
// while concurrent source operations were still in flight. The lists and
// scratch state of such an evaluation are poisoned — workers may still
// be writing to them — so the engine reports the cost as of the last
// quiescent checkpoint and lets the abandoned state be garbage collected
// instead of returning it to the pools.
type AbandonedError struct {
	// Cause is the context error that triggered the abandonment.
	Cause error
}

// Error implements error.
func (e *AbandonedError) Error() string {
	return fmt.Sprintf("core: evaluation abandoned with accesses in flight: %v", e.Cause)
}

// Unwrap exposes the context error to errors.Is (context.Canceled,
// context.DeadlineExceeded).
func (e *AbandonedError) Unwrap() error { return e.Cause }

// ErrBudgetExceeded reports an evaluation halted by its access budget.
// Inspect the concrete *BudgetError via errors.As for the tallies.
var ErrBudgetExceeded = errors.New("core: access budget exceeded")

// BudgetError is the typed form of ErrBudgetExceeded: the evaluation
// stopped because the next step would have cost more than the remaining
// budget. Spent is the weighted cost already incurred (it never exceeds
// Limit: reservations are made before accesses are issued, so a budgeted
// evaluation cannot overshoot).
type BudgetError struct {
	// Limit is the configured budget (weighted by the cost model).
	Limit float64
	// Spent is the weighted cost incurred before the stop.
	Spent float64
	// Need is the (worst-case) weighted cost of the step that would have
	// crossed the limit.
	Need float64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: access budget exceeded: spent %.6g of %.6g, next step needs %.6g", e.Spent, e.Limit, e.Need)
}

// Unwrap ties the typed error to the ErrBudgetExceeded sentinel.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// ExecContext carries the per-request execution state of one evaluation:
// the caller's context, the access executor, the cost model, and the
// optional access budget. Every algorithm takes one; Background() is the
// zero-configuration form the deprecated context-free entry points use.
//
// An ExecContext is bound to at most one evaluation at a time (it tracks
// that evaluation's lists for budget accounting and abandonment
// snapshots); build a fresh one per request, as Evaluate does.
type ExecContext struct {
	ctx       context.Context
	done      <-chan struct{}
	exec      Executor
	par       bool // exec.Parallel(), cached off the hot path
	model     cost.Model
	budget    float64 // <= 0 means unlimited
	lists     []*subsys.Counted
	safe      cost.Cost // tallies at the last quiescent checkpoint
	abandoned bool
	fallible  bool // any list exposes the fallible face; gates Err checks

	// stop is the optional threshold stop-check a sharded evaluation
	// installs: polled once per Stage (i.e. once per sorted round) with
	// the algorithm's cursors; returning true fences every list, so the
	// sorted loops run dry and the algorithm falls through to its
	// completion phase over the objects seen so far.
	stop func([]*subsys.Cursor) bool

	// onStage is an optional per-round hook a work-stealing sharded
	// evaluation installs: called once per Stage on the evaluation's own
	// goroutine, it is where a victim shard honors a pending split
	// request (truncating its views at a safe rank boundary). Runs after
	// the stop check and before any staging, so a fenced shard never
	// cedes a range a thief would then re-evaluate for nothing.
	onStage func()

	// pool is the shared budget reservation pool of a sharded
	// evaluation; nil for the single-evaluation budget path. synced and
	// outstanding are this ExecContext's bookkeeping inside the pool.
	pool        *budgetPool
	synced      float64 // weighted spend already committed to the pool
	outstanding float64 // worst-case price of the in-flight step
}

// EvalOption configures an evaluation (see Evaluate and NewExecContext).
type EvalOption func(*ExecContext)

// WithExecutor selects the access executor (default Serial{}).
func WithExecutor(x Executor) EvalOption {
	return func(ec *ExecContext) {
		if x != nil {
			ec.exec = x
		}
	}
}

// WithCostModel prices the two access modes for budget accounting
// (default cost.Unweighted). Invalid models (non-positive prices) are
// ignored.
func WithCostModel(m cost.Model) EvalOption {
	return func(ec *ExecContext) {
		if m.Valid() {
			ec.model = m
		}
	}
}

// WithAccessBudget bounds the weighted middleware cost of the
// evaluation: before each step the algorithm reserves the step's
// worst-case cost, and if the reservation would cross the limit the
// evaluation stops with a *BudgetError and the partial cost spent so
// far. Reservations are pessimistic (a probe that turns out to be cached
// is reserved at full price), so a budgeted evaluation never overshoots
// but may stop slightly before the budget is genuinely exhausted.
// A non-positive limit means unlimited.
func WithAccessBudget(limit float64) EvalOption {
	return func(ec *ExecContext) { ec.budget = limit }
}

// NewExecContext builds the execution state for one evaluation over the
// given counted lists. The lists are used for budget accounting and for
// cost snapshots on abandonment; callers that run algorithms directly
// (tests, the paginator) pass the same lists they hand to TopK.
func NewExecContext(ctx context.Context, lists []*subsys.Counted, opts ...EvalOption) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	ec := &ExecContext{
		ctx:   ctx,
		done:  ctx.Done(),
		exec:  Serial{},
		model: cost.Unweighted,
		lists: lists,
	}
	for _, opt := range opts {
		opt(ec)
	}
	ec.par = ec.exec.Parallel()
	for _, l := range lists {
		if l.Fallible() {
			ec.fallible = true
			break
		}
	}
	// Context-aware sources (remote transports) run their physical
	// accesses under the request context; shard views and resilience
	// wrappers forward the binding to what they wrap.
	for _, l := range lists {
		l.BindContext(ctx)
	}
	return ec
}

// Background returns an ExecContext with the defaults — background
// context, serial executor, unweighted model, no budget — for callers
// that predate the request API.
func Background() *ExecContext { return NewExecContext(context.Background(), nil) }

// Ctx returns the caller's context.
func (ec *ExecContext) Ctx() context.Context { return ec.ctx }

// Executor returns the access executor in use.
func (ec *ExecContext) Executor() Executor { return ec.exec }

// CostModel returns the access prices used for budget accounting.
func (ec *ExecContext) CostModel() cost.Model { return ec.model }

// Abandoned reports whether the evaluation stopped with source
// operations still in flight (see AbandonedError). The lists of an
// abandoned evaluation must not be read or released.
func (ec *ExecContext) Abandoned() bool { return ec.abandoned }

// SafeCost returns the access tallies recorded at the last quiescent
// checkpoint — the exact spend of an abandoned evaluation as of the last
// moment no worker was in flight.
func (ec *ExecContext) SafeCost() cost.Cost { return ec.safe }

// SourceFailure returns the first list failure of the evaluation as a
// typed *subsys.SourceError, or nil. "First" is by list order — the
// deterministic choice when several lists failed — which is also the
// order a serial evaluation surfaces failures in for a single fault
// site. Once a list fails its streams read as exhausted, so an
// algorithm's own loops terminate promptly; the executors check this
// after every stage (and Evaluate as a final net) so the run returns
// the typed error instead of results computed over a truncated list.
func (ec *ExecContext) SourceFailure() error {
	if !ec.fallible {
		return nil
	}
	for _, l := range ec.lists {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// err is the per-round cancellation check: a non-blocking poll of the
// context's done channel (a few nanoseconds when the context cannot be
// canceled), plus — on evaluations over fallible sources — a sweep of
// the lists' sticky failures, so every loop that polls for cancellation
// also notices a failed source.
func (ec *ExecContext) err() error {
	if ec.fallible {
		if serr := ec.SourceFailure(); serr != nil {
			return serr
		}
	}
	if ec.done == nil {
		return nil
	}
	select {
	case <-ec.done:
		return fmt.Errorf("core: evaluation canceled: %w", context.Cause(ec.ctx))
	default:
		return nil
	}
}

// snapshot records the current tallies as the quiescent checkpoint. Only
// called when no worker is in flight.
func (ec *ExecContext) snapshot() {
	if ec.lists != nil {
		ec.safe = subsys.TotalCost(ec.lists)
	}
}

// spent returns the weighted cost incurred so far.
func (ec *ExecContext) spent() float64 {
	ec.snapshot()
	return ec.model.Of(ec.safe)
}

// Stage is the per-round staging point of the sorted-access loops: it
// checks cancellation, and under a parallel executor prefetches the next
// `ahead` ranks of every live cursor concurrently. The algorithm then
// consumes (and pays for) entries exactly as it would serially.
func (ec *ExecContext) Stage(cursors []*subsys.Cursor, ahead int) error {
	if err := ec.err(); err != nil {
		return err
	}
	if ec.stop != nil && ec.stop(cursors) {
		// Threshold stop: close every sorted stream so the algorithm's
		// round loop terminates and completes over what it has seen. The
		// check is one-shot — fenced lists stay fenced.
		for _, l := range ec.lists {
			l.Fence()
		}
		ec.stop = nil
	}
	if ec.onStage != nil {
		ec.onStage()
	}
	if !ec.par {
		return nil
	}
	ec.snapshot()
	err := ec.exec.Stage(ec.ctx, cursors, ahead)
	if err != nil {
		var ab *AbandonedError
		if errors.As(err, &ab) {
			ec.abandoned = true
		}
		return err
	}
	if ec.fallible {
		// Staging itself is readahead and never records a failure (see
		// subsys.Counted.bufferAhead), but a failure recorded by earlier
		// consumption can land between the err() check above and here.
		// Surface it now, and stop all remaining readahead first: a
		// failing evaluation must not keep touching the sources.
		if serr := ec.SourceFailure(); serr != nil {
			ec.stopPrefetch()
			return serr
		}
	}
	return nil
}

// ReserveRound gates one round-robin step — at most one sorted access
// per live cursor — against the budget. Free (a single compare) with no
// budget configured.
func (ec *ExecContext) ReserveRound(cursors []*subsys.Cursor) error {
	if ec.budget <= 0 {
		return nil
	}
	return ec.Reserve(liveCursors(cursors), 0)
}

// Reserve gates a step that will perform at most nSorted sorted and
// nRandom random accesses against the budget. With no budget configured
// it is free. It does not consume anything: the actual spend is whatever
// the step's accesses tally. A failed reservation additionally closes
// any background prefetch pipelines on the evaluation's lists — once the
// budget is exhausted, nothing may keep touching the sources, not even
// uncounted readahead.
func (ec *ExecContext) Reserve(nSorted, nRandom int) error {
	if ec.budget <= 0 {
		return nil
	}
	need := ec.model.C1*float64(nSorted) + ec.model.C2*float64(nRandom)
	if ec.pool != nil {
		if err := ec.pool.reserve(ec, need); err != nil {
			ec.stopPrefetch()
			return err
		}
		return nil
	}
	if spent := ec.spent(); spent+need > ec.budget {
		ec.stopPrefetch()
		return &BudgetError{Limit: ec.budget, Spent: spent, Need: need}
	}
	return nil
}

// stopPrefetch closes the background prefetch pipelines of every list of
// the evaluation (without waiting out in-flight batches). Called when
// the evaluation must not issue further source accesses: a budget
// reservation failure.
func (ec *ExecContext) stopPrefetch() {
	for _, l := range ec.lists {
		l.AbortPrefetch()
	}
}

// Gather runs the random-access phase — cols[j][i] = lists[j].Grade of
// objs[i] — through the executor. Under a budget it degrades to a serial
// object-major sweep with an exact per-object reservation, so the budget
// is never overshot.
func (ec *ExecContext) Gather(lists []*subsys.Counted, objs []int, cols [][]float64) error {
	if err := ec.err(); err != nil {
		return err
	}
	var err error
	switch {
	case ec.budget > 0:
		err = ec.gatherBudgeted(lists, objs, cols)
	case ec.par:
		ec.snapshot()
		err = ec.exec.Gather(ec.ctx, lists, objs, cols)
		if err != nil {
			var ab *AbandonedError
			if errors.As(err, &ab) {
				ec.abandoned = true
			}
		}
	default:
		err = Serial{}.Gather(ec.ctx, lists, objs, cols)
	}
	if err == nil && ec.fallible {
		// A probe may have hit a terminal source failure (recorded as the
		// list's sticky error; Grade then returned 0). Surface it before
		// the zeros can flow into an aggregation.
		if serr := ec.SourceFailure(); serr != nil {
			ec.stopPrefetch()
			return serr
		}
	}
	return err
}

// appendScores runs the random-access-plus-computation phase shared by
// the A₀ family: for every object, complete its grade vector across
// lists and append (object, t(vector)) to entries, preserving object
// order. Serially it is a single object-major sweep (the best cache
// behavior for the memoized probes); under a parallel executor the
// probes fan out one worker per list through Gather and the aggregation
// runs over the gathered columns. Tallies are identical either way: each
// (list, object) grade is paid for at most once, whatever the order.
func (ec *ExecContext) appendScores(sc *scratch, lists []*subsys.Counted, objs []int, t agg.Func, entries []gradedset.Entry) ([]gradedset.Entry, error) {
	buf := sc.gradesBuf(len(lists))
	if ec.par && ec.budget <= 0 && ec.gatherFans(len(lists), len(objs)) {
		cols := sc.colsBuf(len(lists), len(objs))
		if err := ec.Gather(lists, objs, cols); err != nil {
			return entries, err
		}
		for i, obj := range objs {
			for j := range cols {
				buf[j] = cols[j][i]
			}
			entries = append(entries, gradedset.Entry{Object: obj, Grade: t.Apply(buf)})
		}
		return entries, nil
	}
	for i, obj := range objs {
		if i%ctxCheckEvery == 0 {
			if err := ec.err(); err != nil {
				return entries, err
			}
		}
		if err := ec.ReserveProbes(lists, obj); err != nil {
			return entries, err
		}
		gradesInto(buf, lists, obj)
		entries = append(entries, gradedset.Entry{Object: obj, Grade: t.Apply(buf)})
	}
	return entries, nil
}

// ReserveProbes reserves the random accesses needed to complete obj's
// grade vector across lists: exactly the grades not already paid for.
// Free with no budget configured.
func (ec *ExecContext) ReserveProbes(lists []*subsys.Counted, obj int) error {
	if ec.budget <= 0 {
		return nil
	}
	missing := 0
	for _, l := range lists {
		if _, ok := l.Known(obj); !ok {
			missing++
		}
	}
	return ec.Reserve(0, missing)
}

// gatherBudgeted is the budget-respecting gather: object-major, with an
// exact reservation (only genuinely unknown grades are priced) before
// each object's probes.
func (ec *ExecContext) gatherBudgeted(lists []*subsys.Counted, objs []int, cols [][]float64) error {
	for i, obj := range objs {
		if i%budgetCheckEvery == 0 {
			if err := ec.err(); err != nil {
				return err
			}
		}
		if err := ec.ReserveProbes(lists, obj); err != nil {
			return err
		}
		for j, l := range lists {
			cols[j][i] = l.Grade(obj)
		}
	}
	return nil
}

// releaseScratch pools the scratch unless the evaluation was abandoned
// (in which case in-flight workers may still write to it; let the GC
// collect it instead).
func (ec *ExecContext) releaseScratch(s *scratch) {
	if !ec.abandoned {
		s.release()
	}
}

const (
	// defaultStageBatch is the readahead span the concurrent executor
	// prefetches per list when a round-robin consumer (ahead == 1) runs a
	// buffer dry: large enough to amortize the fan-out synchronization
	// over hundreds of rounds, small enough to keep readahead waste
	// bounded on early-stopping queries.
	defaultStageBatch = 512
	// gatherSerialCutoff is the probe count below which Concurrent.Gather
	// runs inline: the work is too small to pay a goroutine fan-out for.
	gatherSerialCutoff = 4096
	// ctxCheckEvery paces cancellation polls inside long serial probe
	// loops: frequent enough that even a shard-sized sweep (a few hundred
	// objects) notices cancellation mid-phase, cheap enough (one channel
	// poll per 256 probes) to vanish in the noise of the probes
	// themselves. Polls never touch the tallies.
	ctxCheckEvery = 256
	// budgetCheckEvery paces cancellation polls in the budgeted gather
	// (which already pays a reservation per object).
	budgetCheckEvery = 64
)

// Serial is the inline executor: every access happens on the calling
// goroutine, exactly as the paper's cost analysis narrates it.
// Cancellation is honored between accesses.
type Serial struct{}

// Name implements Executor.
func (Serial) Name() string { return "serial" }

// Parallel implements Executor.
func (Serial) Parallel() bool { return false }

// Stage implements Executor: nothing to do — consumption fetches on
// demand. (ExecContext short-circuits before calling this; it exists to
// satisfy the interface for callers driving an executor directly.)
func (Serial) Stage(ctx context.Context, cursors []*subsys.Cursor, ahead int) error { return nil }

// Gather implements Executor: list-major inline probing with periodic
// cancellation checks.
func (Serial) Gather(ctx context.Context, lists []*subsys.Counted, objs []int, cols [][]float64) error {
	done := ctx.Done()
	for j, l := range lists {
		col := cols[j]
		for i, obj := range objs {
			if done != nil && i%ctxCheckEvery == 0 {
				select {
				case <-done:
					return fmt.Errorf("core: evaluation canceled: %w", context.Cause(ctx))
				default:
				}
			}
			col[i] = l.Grade(obj)
		}
	}
	return nil
}

// Concurrent is the overlapping executor: it issues the physical source
// operations of an evaluation on up to P goroutines, one list per
// worker, so the m per-round sorted accesses (and the whole
// random-access phase) proceed in parallel across subsystems. Staged
// sorted ranks land in the lists' uncounted readahead buffers in spans
// of Batch, which both hides subsystem latency and amortizes the fan-out
// synchronization; the algorithm pays per rank as it consumes, so
// Section 5 tallies are bit-identical to Serial's.
//
// On cancellation mid-fan-out the executor abandons its workers (each
// finishes its in-flight source call and exits) and returns an
// *AbandonedError promptly instead of waiting out a slow or wedged
// subsystem.
type Concurrent struct {
	// P caps the number of concurrently executing source operations;
	// 0 means GOMAXPROCS. Useful values are 2…m — one worker per list.
	P int
	// Batch is the readahead span per staging refill; 0 means the
	// defaultStageBatch (512-rank) default.
	Batch int
}

// Name implements Executor.
func (c Concurrent) Name() string { return fmt.Sprintf("concurrent(p=%d)", c.p()) }

// Parallel implements Executor.
func (Concurrent) Parallel() bool { return true }

func (c Concurrent) p() int {
	if c.P > 0 {
		return c.P
	}
	return runtime.GOMAXPROCS(0)
}

func (c Concurrent) batch() int {
	if c.Batch > 0 {
		return c.Batch
	}
	return defaultStageBatch
}

// Stage implements Executor: refill every cursor whose readahead buffer
// is shy of `ahead` entries, in parallel. Round-robin consumers
// (ahead == 1) get a Batch-deep refill so the fan-out happens once per
// Batch rounds; bulk consumers (B₀'s top-k prefixes, the naive drain)
// state their exact need and get exactly that.
func (c Concurrent) Stage(ctx context.Context, cursors []*subsys.Cursor, ahead int) error {
	if ahead < 1 {
		ahead = 1
	}
	target := ahead
	if ahead == 1 {
		target = c.batch()
	}
	var needy []*subsys.Cursor
	for _, cu := range cursors {
		// Buffer check first: it is a plain compare, while Exhausted costs
		// a length lookup, and a warm buffer is the common case.
		if cu.Buffered() < ahead && !cu.Exhausted() {
			needy = append(needy, cu)
		}
	}
	if len(needy) == 0 {
		return nil
	}
	return fanOut(ctx, c.p(), len(needy), func(ctx context.Context, i int) bool {
		needy[i].Prefetch(target)
		return true
	})
}

// gatherFansOut reports whether a random-access phase of the given
// shape is worth a goroutine fan-out: enough probes to amortize the
// synchronization, and more than one CPU to overlap compute-bound
// probes on. (Sorted staging still fans out on one CPU — its workers
// overlap waiting, not compute.)
func gatherFansOut(m, nObjs int) bool {
	return nObjs*m >= gatherSerialCutoff && runtime.GOMAXPROCS(0) > 1
}

// gatherPlanner is the optional executor capability of deciding when a
// random-access phase should be routed through Gather rather than probed
// inline. A latency-hiding executor wants the fan-out almost always
// (overlapping waits pays even on one CPU); a compute-overlap executor
// only past the compute cutoff.
type gatherPlanner interface {
	gatherFanOut(m, nObjs int) bool
}

// gatherFans applies the executor's own fan-out rule when it has one,
// else the compute-bound default. Both routes produce bit-identical
// tallies; only wall-clock differs.
func (ec *ExecContext) gatherFans(m, nObjs int) bool {
	if gp, ok := ec.exec.(gatherPlanner); ok {
		return gp.gatherFanOut(m, nObjs)
	}
	return gatherFansOut(m, nObjs)
}

// Gather implements Executor: one worker per list, each probing every
// object in ascending index order (the same per-list order Serial uses,
// so memo state and tallies agree exactly).
func (c Concurrent) Gather(ctx context.Context, lists []*subsys.Counted, objs []int, cols [][]float64) error {
	if !gatherFansOut(len(lists), len(objs)) {
		// Inline keeps the same per-list probe order; cancellation is
		// honored between probes rather than by abandonment.
		return Serial{}.Gather(ctx, lists, objs, cols)
	}
	return fanOut(ctx, c.p(), len(lists), func(ctx context.Context, j int) bool {
		l, col := lists[j], cols[j]
		done := ctx.Done()
		for i, obj := range objs {
			if done != nil && i%ctxCheckEvery == 0 {
				select {
				case <-done:
					return false // abandoned; stop burning the subsystem
				default:
				}
			}
			col[i] = l.Grade(obj)
		}
		return true
	})
}

// fanOut runs f(ctx, 0..n-1) on up to the given number of workers and
// waits for all of them — unless ctx is canceled first, in which case it
// returns an *AbandonedError immediately and the workers finish (or
// notice the cancellation) on their own. f reports whether it completed
// its item; a worker whose f bails early (on cancellation) poisons the
// fan-out, so a run can only return nil when every item was fully
// processed.
func fanOut(ctx context.Context, workers, n int, f func(ctx context.Context, i int) bool) error {
	if workers > n {
		workers = n
	}
	if workers == 1 && ctx.Done() == nil {
		// No overlap possible and no cancellation to honor: run inline.
		// f cannot bail without a cancelable context.
		for i := 0; i < n; i++ {
			f(ctx, i)
		}
		return nil
	}
	var next atomic.Int64
	var aborted atomic.Bool
	// Buffered to workers: a worker's final send never blocks, so an
	// abandoned worker still exits on its own.
	tokens := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { tokens <- struct{}{} }()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !f(ctx, i) {
					aborted.Store(true)
					return
				}
			}
		}()
	}
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		select {
		case <-tokens:
		case <-done:
			// Drain without blocking: if every worker finished AND none
			// bailed, nothing is in flight and the work is complete.
			for ; w < workers; w++ {
				select {
				case <-tokens:
				default:
					return &AbandonedError{Cause: context.Cause(ctx)}
				}
			}
			if aborted.Load() {
				return &AbandonedError{Cause: context.Cause(ctx)}
			}
			return nil
		}
	}
	if aborted.Load() {
		// Every worker exited, but at least one bailed mid-item: the
		// results are incomplete and must be discarded by the caller.
		return &AbandonedError{Cause: context.Cause(ctx)}
	}
	return nil
}
