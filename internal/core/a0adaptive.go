package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/subsys"
)

// A0Adaptive is the per-list-depth refinement of A₀ sketched in Section 4
// ("instead of using a uniform value of T, we might find Tᵢ ≤ T for each
// i", the direction of the Ait-Bouziad–Kassel improvement): rather than
// advancing every list in lock-step, each sorted access goes to the list
// whose reading frontier still shows the highest grade — the list most
// likely to reveal objects that matter. The stopping rule is unchanged
// (at least k objects seen in every scanned prefix), and correctness
// follows from the same Proposition 4.1 argument: per-list prefixes are
// upward closed whatever their individual depths, so every object beating
// a match has been seen and is probed in the random-access phase.
//
// The variant demonstrates that A₀'s correctness is independent of the
// scheduling policy: any sequence of sorted accesses whose per-list
// prefixes jointly contain k matches supports the same random-access and
// computation phases. Cost-wise it is a heuristic, not a dominance — on
// symmetric workloads it tracks round-robin, while on mismatched grade
// scales chasing the higher frontier can scan deeper than the uniform
// rule (whose stop condition is satisfied by any k co-occurring objects,
// high grades or not). A₀ therefore remains the planner's default.
type A0Adaptive struct{}

// Name implements Algorithm.
func (A0Adaptive) Name() string { return "A0-adaptive" }

// Exact implements Algorithm.
func (A0Adaptive) Exact() bool { return true }

// TopK implements Algorithm.
func (a A0Adaptive) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	m := int32(len(lists))
	cursors := subsys.Cursors(lists)
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	matches := 0
	for matches < k {
		// Staging readies every frontier, since which list the next
		// access goes to is decided only now (readahead on the losers is
		// free; only consumption is metered).
		if err := ec.Stage(cursors, 1); err != nil {
			return nil, err
		}
		if err := ec.Reserve(1, 0); err != nil {
			return nil, err
		}
		// Pick the live cursor with the highest frontier grade; ties go
		// to the lowest index, which reduces to round-robin order on
		// fully tied frontiers only by virtue of LastGrade decreasing as
		// a list is consumed.
		best := -1
		bestGrade := -1.0
		for i, cu := range cursors {
			if cu.Exhausted() {
				continue
			}
			if g := cu.LastGrade(); g > bestGrade {
				bestGrade = g
				best = i
			}
		}
		if best < 0 {
			break // all lists exhausted; k <= N guarantees matches >= k
		}
		e, ok := cursors[best].Next()
		if !ok {
			continue
		}
		if sc.visit(e.Object) == m {
			matches++
		}
	}

	entries, err := ec.appendScores(sc, lists, sc.objects(), t, sc.entriesBuf())
	sc.keepEntries(entries)
	if err != nil {
		return nil, err
	}
	return topKResults(entries, k), nil
}
