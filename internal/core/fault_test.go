package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// errBackend is the terminal cause the test backends fail with.
var errBackend = errors.New("backend connection lost")

// permFail wraps a source with one deterministic permanent failure:
// sorted access fails whenever the requested span covers failRank
// (returning the partial prefix before it, per the FallibleSource
// contract), and random access fails for failObj. Either is disabled
// at -1. Unlike FaultSource it is stateless, so every executor —
// whatever its batching, readahead, or retry history — sees the
// identical failure surface.
type permFail struct {
	subsys.Source
	failRank int
	failObj  int
}

func (p *permFail) TryEntry(rank int) (gradedset.Entry, error) {
	if rank == p.failRank {
		return gradedset.Entry{}, errBackend
	}
	return p.Source.Entry(rank), nil
}

func (p *permFail) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if p.failRank >= 0 && lo <= p.failRank && p.failRank < hi {
		return p.Source.Entries(lo, p.failRank), errBackend
	}
	return p.Source.Entries(lo, hi), nil
}

func (p *permFail) TryGrade(obj int) (float64, error) {
	if obj == p.failObj {
		return 0, errBackend
	}
	return p.Source.Grade(obj), nil
}

// failSourcesOf wraps one list of the database in a permFail.
func failSourcesOf(db *scoredb.Database, victim, failRank, failObj int) []subsys.Source {
	srcs := sourcesOf(db)
	srcs[victim] = &permFail{Source: srcs[victim], failRank: failRank, failObj: failObj}
	return srcs
}

// faultExecs is the parallel-executor palette the fault tests sweep.
func faultExecs() []Executor {
	return []Executor{
		Concurrent{P: 2, Batch: 4},
		Concurrent{P: 3},
		Pipelined{P: 2, MaxDepth: 8},
		Pipelined{P: 3, Depth: 2},
	}
}

// requireSourceError asserts err carries a *subsys.SourceError with the
// given fields and that the cause chain reaches errBackend.
func requireSourceError(t *testing.T, label string, err error, list, rank int, random bool) *subsys.SourceError {
	t.Helper()
	var se *subsys.SourceError
	if !errors.As(err, &se) {
		t.Fatalf("%s: err = %v, want *subsys.SourceError", label, err)
	}
	if se.List != list || se.Rank != rank || se.Random != random || se.Attempts != 1 {
		t.Fatalf("%s: got SourceError{List:%d Rank:%d Random:%v Attempts:%d}, want {List:%d Rank:%d Random:%v Attempts:1}",
			label, se.List, se.Rank, se.Random, se.Attempts, list, rank, random)
	}
	if !errors.Is(err, errBackend) {
		t.Fatalf("%s: cause chain does not reach the backend error: %v", label, err)
	}
	return se
}

func TestPermanentSortedFaultIdenticalAcrossExecutors(t *testing.T) {
	// A permanent sorted-access failure at a demanded rank must surface
	// as the same typed error — same list, same rank, same access mode —
	// under every executor, with the same partial Section 5 tallies:
	// failure surfacing is demand-driven, and demand is
	// executor-invariant.
	db := scoredb.Generator{N: 60, M: 3, Law: scoredb.Uniform{}, Seed: 1}.MustGenerate()
	const victim, rank = 1, 2
	srcs := func() []subsys.Source { return failSourcesOf(db, victim, rank, -1) }

	res, wantCost, err := Evaluate(context.Background(), A0{}, srcs(), agg.Min, 40)
	requireSourceError(t, "serial", err, victim, rank, false)
	if res != nil {
		t.Fatalf("serial: results %v alongside the error", res)
	}
	if wantCost.Sum() == 0 {
		t.Fatal("serial: empty partial-cost report")
	}
	for _, x := range faultExecs() {
		got, c, err := Evaluate(context.Background(), A0{}, srcs(), agg.Min, 40, WithExecutor(x))
		requireSourceError(t, x.Name(), err, victim, rank, false)
		if got != nil {
			t.Errorf("%s: results %v alongside the error", x.Name(), got)
		}
		if c != wantCost {
			t.Errorf("%s: partial cost %v, serial %v", x.Name(), c, wantCost)
		}
	}
}

func TestPermanentRandomFaultIdenticalAcrossExecutors(t *testing.T) {
	// Anti-correlated lists: object 0 tops list 0 but sits last in
	// list 1, so A0's phase 2 random-probes it on list 1 under every
	// executor. Partial tallies are not compared: executors legitimately
	// differ in how much of a probe batch they pay for once the failure
	// is discovered mid-gather.
	const n = 40
	rows := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		rows[0][i] = 1 - float64(i)/float64(n+1)
		rows[1][i] = float64(i+1) / float64(n+1)
	}
	db, err := scoredb.FromMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	const victim, obj = 1, 0
	srcs := func() []subsys.Source { return failSourcesOf(db, victim, -1, obj) }

	_, _, serr := Evaluate(context.Background(), A0{}, srcs(), agg.Min, 3)
	requireSourceError(t, "serial", serr, victim, obj, true)
	for _, x := range faultExecs() {
		got, _, err := Evaluate(context.Background(), A0{}, srcs(), agg.Min, 3, WithExecutor(x))
		requireSourceError(t, x.Name(), err, victim, obj, true)
		if got != nil {
			t.Errorf("%s: results %v alongside the error", x.Name(), got)
		}
	}
}

func TestPermanentFaultBeyondDemandIsInvisible(t *testing.T) {
	// A fault site no executor ever demands must not surface — even
	// though Concurrent's 512-rank staging refill and Pipelined's
	// readahead physically reach it. Readahead swallows the failure the
	// way it skips the meter: only delivery pays, only demand fails.
	db := scoredb.Generator{N: 200, M: 3, Law: scoredb.Uniform{}, Seed: 9}.MustGenerate()
	const victim = 0
	rank := db.N() - 1
	srcs := func() []subsys.Source { return failSourcesOf(db, victim, rank, -1) }

	want, wantCost, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 2)
	if err != nil {
		t.Fatalf("fault-free serial: %v", err)
	}
	for _, x := range append([]Executor{Serial{}}, faultExecs()...) {
		got, c, err := Evaluate(context.Background(), A0{}, srcs(), agg.Min, 2, WithExecutor(x))
		if err != nil {
			t.Fatalf("%s: undemanded fault surfaced: %v", x.Name(), err)
		}
		requireIdentical(t, x.Name(), got, want, c, wantCost)
	}
}

func TestShardedPermanentFaultSurfacesAndSettles(t *testing.T) {
	// A permanent failure inside a sharded evaluation must surface as
	// the same typed error whether the shards run serial or pipelined
	// inside, settle the budget pool, and release cleanly (the -race
	// run and goroutine exit at test end pin the absence of leaks).
	db := scoredb.Generator{N: 120, M: 3, Law: scoredb.Uniform{}, Seed: 3}.MustGenerate()
	const victim, rank = 1, 1
	srcs := func() []subsys.Source { return failSourcesOf(db, victim, rank, -1) }

	serialCfg := ShardConfig{Shards: 4, Parallel: 1}
	pipedCfg := ShardConfig{Shards: 4, Parallel: 1, Prefetch: true, PrefetchDepth: 2, PrefetchWidth: 2}
	_, errS := EvaluateSharded(context.Background(), A0{}, srcs(), agg.Min, 30, serialCfg)
	_, errP := EvaluateSharded(context.Background(), A0{}, srcs(), agg.Min, 30, pipedCfg)
	var seS, seP *subsys.SourceError
	if !errors.As(errS, &seS) || !errors.As(errP, &seP) {
		t.Fatalf("sharded errors: serial-inside %v, piped-inside %v; want *subsys.SourceError from both", errS, errP)
	}
	if seS.List != victim || seP.List != victim {
		t.Errorf("failed list: serial-inside %d, piped-inside %d, want %d", seS.List, seP.List, victim)
	}
	if *seS != *seP {
		t.Errorf("sharded SourceError diverged: serial-inside %+v, piped-inside %+v", seS, seP)
	}

	// With a budget on top, the reservation pool must still settle: the
	// run terminates with one of the two typed errors and never
	// overshoots the limit.
	for _, budget := range []float64{5, 40} {
		cfg := pipedCfg
		cfg.Budget = budget
		rep, err := EvaluateSharded(context.Background(), A0{}, srcs(), agg.Min, 30, cfg)
		var se *subsys.SourceError
		var be *BudgetError
		if !errors.As(err, &se) && !errors.As(err, &be) {
			t.Fatalf("budget %v: err = %v, want SourceError or BudgetError", budget, err)
		}
		if rep != nil && float64(rep.Cost.Sum()) > budget {
			t.Errorf("budget %v: pool overshoot: spent %v", budget, rep.Cost.Sum())
		}
	}
}

// resilientFaultySources wraps every list of the database in a seeded
// transient FaultSource behind a Resilient retry layer deep enough to
// absorb every fault. Fresh wrappers per call: FaultSource is stateful.
func resilientFaultySources(db *scoredb.Database, seed uint64, rate float64, transient int, pol subsys.Policy) func() []subsys.Source {
	return func() []subsys.Source {
		raw := sourcesOf(db)
		out := make([]subsys.Source, len(raw))
		for i, s := range raw {
			f := subsys.NewFaultSource(s, subsys.FaultPlan{
				Seed:      seed + uint64(i)*0x9e3779b97f4a7c15,
				Rate:      rate,
				Transient: transient,
			})
			out[i] = subsys.Resilient(f, pol)
		}
		return out
	}
}

func TestResilientTransientFaultsInvisibleAcrossExecutors(t *testing.T) {
	// Transient faults behind a Resilient wrapper with MaxRetries ≥
	// Transient are completely absorbed: results AND Section 5 tallies
	// are bit-identical to the fault-free run under every executor and
	// under sharding — a retried access is still one metered access.
	db := scoredb.Generator{N: 90, M: 3, Law: scoredb.Discrete{Levels: 4}, Seed: 17}.MustGenerate()
	faulty := resilientFaultySources(db, 0xfa61, 0.2, 2, subsys.Policy{MaxRetries: 2})

	want, wantCost, err := Evaluate(context.Background(), TA{}, sourcesOf(db), agg.Min, 25)
	if err != nil {
		t.Fatalf("fault-free serial: %v", err)
	}
	for _, x := range append([]Executor{Serial{}}, faultExecs()...) {
		got, c, err := Evaluate(context.Background(), TA{}, faulty(), agg.Min, 25, WithExecutor(x))
		if err != nil {
			t.Fatalf("%s: %v", x.Name(), err)
		}
		requireIdentical(t, x.Name(), got, want, c, wantCost)
	}

	cfg := ShardConfig{Shards: 3, Parallel: 1, Prefetch: true, PrefetchDepth: 2}
	clean, err := EvaluateSharded(context.Background(), TA{}, sourcesOf(db), agg.Min, 25, cfg)
	if err != nil {
		t.Fatalf("fault-free sharded: %v", err)
	}
	rep, err := EvaluateSharded(context.Background(), TA{}, faulty(), agg.Min, 25, cfg)
	if err != nil {
		t.Fatalf("faulty sharded: %v", err)
	}
	if rep.Cost != clean.Cost {
		t.Errorf("sharded cost %v, fault-free %v", rep.Cost, clean.Cost)
	}
	for i := range clean.Results {
		if rep.Results[i] != clean.Results[i] {
			t.Errorf("sharded result %d: %v, fault-free %v", i, rep.Results[i], clean.Results[i])
		}
	}
}

func TestFaultRacingShardFence(t *testing.T) {
	// Parallel sharded evaluation with prefetch pipelines: the
	// threshold-aware merge fences shard lists while fault-retry cycles
	// are in flight on the pipeline workers. Transient faults are
	// absorbed, so every iteration must satisfy the shard-equivalence
	// contract against the fault-free unsharded reference. Run with
	// -race; iterations vary goroutine interleaving.
	db := scoredb.Generator{N: 150, M: 3, Law: scoredb.Uniform{}, Seed: 21}.MustGenerate()
	want, _, err := Evaluate(context.Background(), TA{}, sourcesOf(db), agg.Min, 12)
	if err != nil {
		t.Fatal(err)
	}
	truth := trueScorer(db, agg.Min)
	for it := 0; it < 10; it++ {
		faulty := resilientFaultySources(db, 0xbeef+uint64(it), 0.15, 1, subsys.Policy{MaxRetries: 2})
		rep, err := EvaluateSharded(context.Background(), TA{}, faulty(), agg.Min, 12,
			ShardConfig{Shards: 4, Parallel: 3, Prefetch: true, PrefetchDepth: 2, PrefetchWidth: 2})
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		requireShardEquiv(t, "fence-race", want, rep.Results, truth)
	}
}

func TestWedgedBatchTimedOutAndRetried(t *testing.T) {
	// A wedged source call mid-batch under the pipelined executor: the
	// Resilient per-access timeout abandons the hung call, the retry
	// clears the (transient) fault, and the evaluation completes with
	// fault-free results — without waiting out the wedge.
	db := scoredb.Generator{N: 80, M: 3, Law: scoredb.Uniform{}, Seed: 5}.MustGenerate()
	want, wantCost, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 10)
	if err != nil {
		t.Fatal(err)
	}
	faulty := func() []subsys.Source {
		raw := sourcesOf(db)
		out := make([]subsys.Source, len(raw))
		for i, s := range raw {
			f := subsys.NewFaultSource(s, subsys.FaultPlan{
				Seed: 0xedce + uint64(i), Rate: 0.15, Transient: 1, Wedge: 200 * time.Millisecond,
			})
			// The timeout sits far below the wedge (so abandonment, not
			// patience, is what finishes the run) but far enough above zero
			// that a healthy access delayed by a busy scheduler — the race
			// detector on a loaded single core — is never misread as wedged.
			// The retry budget needs headroom over the rate: an abandoned
			// attempt delivers no partial span, so a run of c consecutive
			// wedged ranks inside one batch costs c no-progress attempts
			// before the batch advances.
			out[i] = subsys.Resilient(f, subsys.Policy{MaxRetries: 6, PerAccessTimeout: 20 * time.Millisecond})
		}
		return out
	}
	start := time.Now()
	got, c, err := Evaluate(context.Background(), A0{}, faulty(), agg.Min, 10,
		WithExecutor(Pipelined{P: 2, MaxDepth: 4}))
	if err != nil {
		t.Fatalf("wedged evaluation failed: %v", err)
	}
	requireIdentical(t, "wedged", got, want, c, wantCost)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("evaluation waited out the wedges: %v", elapsed)
	}
}

func TestBreakerTripRacingBudgetExhaustion(t *testing.T) {
	// Permanent faults behind a tripping breaker, a tight access budget,
	// and a parallel executor: whichever limit strikes first, the
	// evaluation must terminate promptly with one of the two typed
	// errors and never overshoot the budget. Iterations vary the fault
	// plan so the race lands on different sides; run with -race.
	db := scoredb.Generator{N: 100, M: 3, Law: scoredb.Uniform{}, Seed: 11}.MustGenerate()
	for it := 0; it < 20; it++ {
		srcs := make([]subsys.Source, db.M())
		for i := range srcs {
			f := subsys.NewFaultSource(subsys.FromList(db.List(i)), subsys.FaultPlan{
				Seed: uint64(it)*31 + uint64(i), Rate: 0.3,
			})
			srcs[i] = subsys.Resilient(f, subsys.Policy{
				Breaker: subsys.Breaker{FailureThreshold: 2, Cooldown: time.Hour},
			})
		}
		const budget = 25
		res, c, err := Evaluate(context.Background(), TA{}, srcs, agg.Min, 20,
			WithExecutor(Concurrent{P: 3, Batch: 4}), WithAccessBudget(budget))
		if err == nil {
			t.Fatalf("iteration %d: evaluation beat both the faults and the budget: %v", it, res)
		}
		var se *subsys.SourceError
		var be *BudgetError
		if !errors.As(err, &se) && !errors.As(err, &be) {
			t.Fatalf("iteration %d: err = %v, want SourceError or BudgetError", it, err)
		}
		if float64(c.Sum()) > budget {
			t.Errorf("iteration %d: budget overshoot: spent %v of %v", it, c.Sum(), budget)
		}
	}
}
