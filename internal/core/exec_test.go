package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// slowSource delays every physical source operation, modeling a remote
// subsystem with per-call latency.
type slowSource struct {
	src   subsys.Source
	delay time.Duration
}

func (s slowSource) Len() int { return s.src.Len() }
func (s slowSource) Entry(rank int) gradedset.Entry {
	time.Sleep(s.delay)
	return s.src.Entry(rank)
}
func (s slowSource) Entries(lo, hi int) []gradedset.Entry {
	time.Sleep(s.delay)
	return s.src.Entries(lo, hi)
}
func (s slowSource) Grade(obj int) float64 {
	time.Sleep(s.delay)
	return s.src.Grade(obj)
}

// blockSource parks every sorted access on a channel until released —
// the wedged-subsystem case.
type blockSource struct {
	src     subsys.Source
	release chan struct{}
	first   bool // block only from the second batch on, so staging engages
	calls   *int
}

func (s blockSource) Len() int                       { return s.src.Len() }
func (s blockSource) Entry(rank int) gradedset.Entry { return s.src.Entry(rank) }
func (s blockSource) Entries(lo, hi int) []gradedset.Entry {
	*s.calls++
	if !s.first || *s.calls > 1 {
		<-s.release
	}
	return s.src.Entries(lo, hi)
}
func (s blockSource) Grade(obj int) float64 { return s.src.Grade(obj) }

func slowSourcesOf(db *scoredb.Database, delay time.Duration) []subsys.Source {
	srcs := sourcesOf(db)
	for i := range srcs {
		srcs[i] = slowSource{src: srcs[i], delay: delay}
	}
	return srcs
}

// TestSerialCancellationIsPrompt cancels an evaluation over slow sources
// mid-flight: the serial executor must notice between accesses and
// return the context error long before the full evaluation (hundreds of
// rounds at 1ms each) would complete.
func TestSerialCancellationIsPrompt(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 2, Seed: 5}.MustGenerate()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, c, err := Evaluate(ctx, A0{}, slowSourcesOf(db, time.Millisecond), agg.Min, 10)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("results on canceled evaluation: %v", res)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if c.Sum() == 0 {
		t.Error("partial cost is zero; evaluation never started")
	}
	t.Logf("canceled after %v with partial cost %v", elapsed, c)
}

// TestConcurrentCancellationAbandonsWedgedSource wedges one source
// (sorted access blocks forever) under the concurrent executor: the
// evaluation must abandon the in-flight staging and return the context
// error promptly, rather than waiting the subsystem out.
func TestConcurrentCancellationAbandonsWedgedSource(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 6}.MustGenerate()
	release := make(chan struct{})
	defer close(release) // let the abandoned worker finish
	calls := 0
	srcs := sourcesOf(db)
	srcs[1] = blockSource{src: srcs[1], release: release, first: true, calls: &calls}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var evalErr error
	var partial cost.Cost
	start := time.Now()
	go func() {
		_, partial, evalErr = Evaluate(ctx, A0{}, srcs, agg.Min, 10,
			WithExecutor(Concurrent{P: 2, Batch: 64}))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("evaluation did not return after cancellation; wedged source was not abandoned")
	}
	if !errors.Is(evalErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", evalErr)
	}
	t.Logf("abandoned after %v with partial cost %v", time.Since(start), partial)
}

// TestAccessBudgetStopsWithoutOvershooting runs A₀ under a budget far
// below its natural cost: the evaluation must stop with a BudgetError
// and a partial cost within the budget — never overshooting.
func TestAccessBudgetStopsWithoutOvershooting(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 3, Seed: 7}.MustGenerate()
	_, full, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 20)
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(full.Sum()) / 10
	res, partial, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 20,
		WithAccessBudget(budget))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not expose *BudgetError", err)
	}
	if be.Limit != budget {
		t.Errorf("BudgetError.Limit = %v, want %v", be.Limit, budget)
	}
	if be.Spent > budget {
		t.Errorf("BudgetError.Spent = %v overshoots budget %v", be.Spent, budget)
	}
	if res != nil {
		t.Errorf("results on budget-stopped evaluation: %v", res)
	}
	if got := float64(partial.Sum()); got > budget {
		t.Errorf("partial cost %v overshoots budget %v", got, budget)
	}
	if partial.Sum() == 0 {
		t.Error("partial cost is zero; budget stopped before any access")
	}
}

// TestAccessBudgetRespectsCostModel prices random access 10x sorted
// access: the weighted spend must stay within the budget under that
// model.
func TestAccessBudgetRespectsCostModel(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 2, Seed: 8}.MustGenerate()
	model := cost.Model{C1: 1, C2: 10}
	budget := 500.0
	_, partial, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 10,
		WithAccessBudget(budget), WithCostModel(model))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if got := model.Of(partial); got > budget {
		t.Errorf("weighted spend %v overshoots budget %v", got, budget)
	}
}

// TestBudgetAcrossAlgorithms asserts the whole family honors a tiny
// budget: each either finishes within it or stops with ErrBudgetExceeded
// and a partial cost within it.
func TestBudgetAcrossAlgorithms(t *testing.T) {
	db := scoredb.Generator{N: 1024, M: 2, Seed: 9}.MustGenerate()
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0{MidRoundStop: true}, agg.Min},
		{A0Prime{}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
		{NRA{}, agg.Min},
		{B0{}, agg.Max},
		{Ullman{}, agg.Min},
		{OrderStat{J: 1}, agg.Max},
		{FilterFirst{}, agg.Min},
		{NaiveSorted{}, agg.Min},
		{NaiveRandom{}, agg.Min},
	}
	const budget = 40.0
	for _, tc := range algs {
		srcs := sourcesOf(db)
		if _, isFF := tc.alg.(FilterFirst); isFF {
			l := (scoredb.Generator{N: 1024, M: 1, Law: scoredb.Binary{P: 0.05}, Seed: 10}).MustGenerate().List(0)
			srcs[0] = subsys.FromList(l)
		}
		_, partial, err := Evaluate(context.Background(), tc.alg, srcs, tc.f, 5,
			WithAccessBudget(budget))
		if err != nil && !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: unexpected error %v", tc.alg.Name(), err)
			continue
		}
		if float64(partial.Sum()) > budget {
			t.Errorf("%s: spent %v over budget %v", tc.alg.Name(), partial.Sum(), budget)
		}
	}
}

// TestBudgetedPaginationIsCumulative: a paginator's budget spans pages.
func TestBudgetedPaginationIsCumulative(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 11}.MustGenerate()
	counted := subsys.CountAll(sourcesOf(db))
	defer subsys.ReleaseAll(counted)
	ec := NewExecContext(context.Background(), counted, WithAccessBudget(3000))
	p := NewPaginator(ec, A0{}, counted, agg.Min)
	pages := 0
	for {
		page, err := p.NextPage(16)
		if errors.Is(err, ErrBudgetExceeded) {
			if got := subsys.TotalCost(counted).Sum(); float64(got) > 3000 {
				t.Errorf("cumulative spend %d over budget", got)
			}
			if pages == 0 {
				t.Error("budget exhausted before any page")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			t.Fatal("pagination drained the database without hitting the budget; budget not cumulative?")
		}
		pages++
	}
}

// TestCancelledGatherNeverReturnsSilentlyWrongResults races cancellation
// against the concurrent gather fan-out: each trial must end either with
// a context error or with results identical to the serial reference —
// never a nil error over partially gathered (stale-arena) grades.
func TestCancelledGatherNeverReturnsSilentlyWrongResults(t *testing.T) {
	db := scoredb.Generator{N: 3000, M: 2, Seed: 51}.MustGenerate()
	want, wantCost, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 8)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // race the cancellation against the whole evaluation
		res, c, err := Evaluate(ctx, A0{}, sourcesOf(db), agg.Min, 8,
			WithExecutor(Concurrent{P: 2, Batch: 32}))
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}
		// A clean return must be the complete, correct evaluation.
		if c != wantCost || len(res) != len(want) {
			t.Fatalf("trial %d: nil error with wrong cost/results: %v %v", trial, c, res)
		}
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("trial %d: nil error with wrong result %d: %v != %v", trial, i, res[i], want[i])
			}
		}
	}
}

// TestExactBudgetCompletes: a budget equal to an evaluation's exact cost
// must let it finish — reservations stop firing once the cursors are
// exhausted, so the final access does not trip a spurious budget error.
func TestExactBudgetCompletes(t *testing.T) {
	db := scoredb.Generator{N: 50, M: 2, Seed: 53}.MustGenerate()
	counted := subsys.CountAll(sourcesOf(db))
	ref, err := Filter(Background(), counted, agg.Min, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(subsys.TotalCost(counted).Sum())
	subsys.ReleaseAll(counted)

	counted = subsys.CountAll(sourcesOf(db))
	defer subsys.ReleaseAll(counted)
	ec := NewExecContext(context.Background(), counted, WithAccessBudget(exact))
	got, err := Filter(ec, counted, agg.Min, 0)
	if err != nil {
		t.Fatalf("exact budget %v tripped: %v", exact, err)
	}
	if len(got) != len(ref) {
		t.Fatalf("budgeted run returned %d results, want %d", len(got), len(ref))
	}
	// Ullman at its exact cost likewise completes.
	db2 := scoredb.Generator{N: 200, M: 2, Seed: 54}.MustGenerate()
	_, c, err := Evaluate(context.Background(), Ullman{}, sourcesOf(db2), agg.Min, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Evaluate(context.Background(), Ullman{}, sourcesOf(db2), agg.Min, 200,
		WithAccessBudget(float64(c.Sum()))); err != nil {
		t.Fatalf("ullman exact budget tripped: %v", err)
	}
}
