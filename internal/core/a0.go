package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// A0 is Fagin's Algorithm (algorithm A₀ of Section 4) for an arbitrary
// monotone query F_t(A₁,…,Aₘ).
//
// Sorted access phase: every list is read in parallel (round-robin, one
// entry per list per round, so all lists reach a common depth T) until at
// least k objects have been seen in every list — the "matches".
//
// Random access phase: for every object seen in any list, the grades in
// the remaining lists are fetched by random access.
//
// Computation phase: the overall grade t(μ₁(x),…,μₘ(x)) is computed for
// every seen object, and the best k are returned.
//
// Correctness for monotone t is Theorem 4.2: the prefixes X^i_T are
// upward closed, so by Proposition 4.1 any object beating a member of the
// match set L must itself have been seen in every list.
type A0 struct {
	// MidRoundStop stops the sorted phase the moment the k-th match
	// appears, rather than at the end of the full round, giving the
	// per-list depths Tᵢ ≤ T refinement mentioned in Section 4 (after the
	// Ait-Bouziad–Kassel improvement). Correctness is unaffected: every
	// X^i_{Tᵢ} is still upward closed and the intersection still has k
	// members. The paper's plain A₀ uses a uniform depth; leave this
	// false to reproduce it exactly.
	MidRoundStop bool
	// StrictMonotoneCheck rejects aggregation functions whose Monotone()
	// metadata is false instead of running anyway (the run would risk
	// wrong answers; Theorem 4.2 needs monotonicity).
	StrictMonotoneCheck bool
}

// Name implements Algorithm.
func (a A0) Name() string {
	if a.MidRoundStop {
		return "A0-midround"
	}
	return "A0"
}

// Exact implements Algorithm.
func (A0) Exact() bool { return true }

// TopK implements Algorithm.
func (a A0) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if a.StrictMonotoneCheck && !t.Monotone() {
		return nil, ErrNotMonotone
	}

	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	if err := a.sortedPhase(ec, sc, lists, k); err != nil {
		return nil, err
	}

	// Random access and computation phases: complete every seen object's
	// grade vector (grades already delivered by sorted access are served
	// from the middleware's cache at no cost) and aggregate.
	entries, err := ec.appendScores(sc, lists, sc.objects(), t, sc.entriesBuf())
	sc.keepEntries(entries)
	if err != nil {
		return nil, err
	}
	return topKResults(entries, k), nil
}

// sortedPhase runs round-robin sorted access until the intersection of
// the per-list prefixes holds at least k objects (or the lists are
// exhausted, which by k ≤ N also yields k matches). Afterwards sc's
// touched set holds every object seen under sorted access in any list.
func (a A0) sortedPhase(ec *ExecContext, sc *scratch, lists []*subsys.Counted, k int) error {
	m := int32(len(lists))
	cursors := subsys.Cursors(lists)
	matches := 0
	for matches < k {
		if err := ec.Stage(cursors, 1); err != nil {
			return err
		}
		if err := ec.ReserveRound(cursors); err != nil {
			return err
		}
		exhausted := true
		for _, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			if sc.visit(e.Object) == m {
				matches++
				if a.MidRoundStop && matches >= k {
					return nil
				}
			}
		}
		if exhausted {
			break
		}
	}
	return nil
}

// liveCursors counts the cursors that will deliver on the next round —
// the exact sorted-access price of one round-robin step.
func liveCursors(cursors []*subsys.Cursor) int {
	live := 0
	for _, cu := range cursors {
		if !cu.Exhausted() {
			live++
		}
	}
	return live
}

// A0Prime is algorithm A₀′ of Section 4: the refinement for the standard
// fuzzy conjunction (t = min). The sorted phase is that of A₀. Then,
// instead of probing every seen object, it probes only the candidates:
// with x₀ a match of least overall grade g₀ and i₀ a list where x₀
// attains it, the candidates are the objects of X^{i₀}_T whose grade in
// list i₀ is at least g₀. By Proposition 4.3, any object beating a match
// must lie in X^{i₀}_T, so the candidates suffice (Theorem 4.4). The
// saving over A₀ is a constant factor of random accesses.
type A0Prime struct {
	// MidRoundStop as in A0.
	MidRoundStop bool
}

// Name implements Algorithm.
func (a A0Prime) Name() string { return "A0'" }

// Exact implements Algorithm.
func (A0Prime) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function must behave as min;
// it is applied to compute overall grades, but the candidate pruning is
// justified only for min (the middleware's planner enforces this).
func (a A0Prime) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}

	// Sorted access phase, tracking per-list prefix order so the i₀
	// prefix can be scanned afterwards. Matches are collected in
	// discovery order (which round-robin makes deterministic).
	m := len(lists)
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	cursors := subsys.Cursors(lists)
	prefixes := make([][]gradedset.Entry, m)
	var matches []int
	for len(matches) < k {
		if err := ec.Stage(cursors, 1); err != nil {
			return nil, err
		}
		if err := ec.ReserveRound(cursors); err != nil {
			return nil, err
		}
		exhausted := true
		stop := false
		for i, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			prefixes[i] = append(prefixes[i], e)
			if sc.visit(e.Object) == int32(m) {
				matches = append(matches, e.Object)
				if a.MidRoundStop && len(matches) >= k {
					stop = true
					break
				}
			}
		}
		if exhausted || stop {
			break
		}
	}

	// Locate x₀ (least overall grade among matches) and i₀ (a list where
	// x₀ attains it). Matches were seen in every list, so their grade
	// vectors are already known and free. Ties on g₀ resolve to the
	// earliest (match, list) pair in discovery order, deterministically.
	g0 := 2.0
	i0 := 0
	for _, obj := range matches {
		for j, l := range lists {
			g, _ := l.Known(obj)
			if g < g0 {
				g0 = g
				i0 = j
			}
		}
	}

	// Candidates: members of the i₀ prefix graded at least g₀ there.
	cand := make([]int, 0, len(prefixes[i0]))
	for _, e := range prefixes[i0] {
		if e.Grade >= g0 {
			cand = append(cand, e.Object)
		}
	}
	entries, err := ec.appendScores(sc, lists, cand, t, sc.entriesBuf())
	sc.keepEntries(entries)
	if err != nil {
		return nil, err
	}
	return topKResults(entries, k), nil
}
