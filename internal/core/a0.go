package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// A0 is Fagin's Algorithm (algorithm A₀ of Section 4) for an arbitrary
// monotone query F_t(A₁,…,Aₘ).
//
// Sorted access phase: every list is read in parallel (round-robin, one
// entry per list per round, so all lists reach a common depth T) until at
// least k objects have been seen in every list — the "matches".
//
// Random access phase: for every object seen in any list, the grades in
// the remaining lists are fetched by random access.
//
// Computation phase: the overall grade t(μ₁(x),…,μₘ(x)) is computed for
// every seen object, and the best k are returned.
//
// Correctness for monotone t is Theorem 4.2: the prefixes X^i_T are
// upward closed, so by Proposition 4.1 any object beating a member of the
// match set L must itself have been seen in every list.
type A0 struct {
	// MidRoundStop stops the sorted phase the moment the k-th match
	// appears, rather than at the end of the full round, giving the
	// per-list depths Tᵢ ≤ T refinement mentioned in Section 4 (after the
	// Ait-Bouziad–Kassel improvement). Correctness is unaffected: every
	// X^i_{Tᵢ} is still upward closed and the intersection still has k
	// members. The paper's plain A₀ uses a uniform depth; leave this
	// false to reproduce it exactly.
	MidRoundStop bool
	// StrictMonotoneCheck rejects aggregation functions whose Monotone()
	// metadata is false instead of running anyway (the run would risk
	// wrong answers; Theorem 4.2 needs monotonicity).
	StrictMonotoneCheck bool
}

// Name implements Algorithm.
func (a A0) Name() string {
	if a.MidRoundStop {
		return "A0-midround"
	}
	return "A0"
}

// Exact implements Algorithm.
func (A0) Exact() bool { return true }

// TopK implements Algorithm.
func (a A0) TopK(lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if a.StrictMonotoneCheck && !t.Monotone() {
		return nil, ErrNotMonotone
	}

	seen, _ := a.sortedPhase(lists, k)

	// Random access phase: complete every seen object's grade vector.
	// Grades already delivered by sorted access are served from the
	// middleware's cache at no cost.
	entries := make([]gradedset.Entry, 0, len(seen))
	for obj := range seen {
		entries = append(entries, gradedset.Entry{Object: obj, Grade: t.Apply(gradesFor(lists, obj))})
	}

	// Computation phase.
	return topKResults(entries, k), nil
}

// sortedPhase runs round-robin sorted access until the intersection of
// the per-list prefixes holds at least k objects (or the lists are
// exhausted, which by k ≤ N also yields k matches). It returns the set of
// objects seen under sorted access in any list, and the set of matches L.
func (a A0) sortedPhase(lists []*subsys.Counted, k int) (seen map[int]bool, matches map[int]bool) {
	m := len(lists)
	cursors := subsys.Cursors(lists)
	seen = make(map[int]bool)
	matches = make(map[int]bool)
	counts := make(map[int]int)
	for len(matches) < k {
		exhausted := true
		for _, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			seen[e.Object] = true
			counts[e.Object]++
			if counts[e.Object] == m {
				matches[e.Object] = true
				if a.MidRoundStop && len(matches) >= k {
					return seen, matches
				}
			}
		}
		if exhausted {
			break
		}
	}
	return seen, matches
}

// A0Prime is algorithm A₀′ of Section 4: the refinement for the standard
// fuzzy conjunction (t = min). The sorted phase is that of A₀. Then,
// instead of probing every seen object, it probes only the candidates:
// with x₀ a match of least overall grade g₀ and i₀ a list where x₀
// attains it, the candidates are the objects of X^{i₀}_T whose grade in
// list i₀ is at least g₀. By Proposition 4.3, any object beating a match
// must lie in X^{i₀}_T, so the candidates suffice (Theorem 4.4). The
// saving over A₀ is a constant factor of random accesses.
type A0Prime struct {
	// MidRoundStop as in A0.
	MidRoundStop bool
}

// Name implements Algorithm.
func (a A0Prime) Name() string { return "A0'" }

// Exact implements Algorithm.
func (A0Prime) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function must behave as min;
// it is applied to compute overall grades, but the candidate pruning is
// justified only for min (the middleware's planner enforces this).
func (a A0Prime) TopK(lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}

	// Sorted access phase, tracking per-list prefix order so the i₀
	// prefix can be scanned afterwards.
	m := len(lists)
	cursors := subsys.Cursors(lists)
	prefixes := make([][]gradedset.Entry, m)
	counts := make(map[int]int)
	matches := make(map[int]bool)
	for len(matches) < k {
		exhausted := true
		stop := false
		for i, cu := range cursors {
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			prefixes[i] = append(prefixes[i], e)
			counts[e.Object]++
			if counts[e.Object] == m {
				matches[e.Object] = true
				if a.MidRoundStop && len(matches) >= k {
					stop = true
					break
				}
			}
		}
		if exhausted || stop {
			break
		}
	}

	// Locate x₀ (least overall grade among matches) and i₀ (a list where
	// x₀ attains it). Matches were seen in every list, so their grade
	// vectors are already known and free.
	g0 := 2.0
	i0 := 0
	for obj := range matches {
		for j, l := range lists {
			g, _ := l.Known(obj)
			if g < g0 {
				g0 = g
				i0 = j
			}
		}
	}

	// Candidates: members of the i₀ prefix graded at least g₀ there.
	entries := make([]gradedset.Entry, 0, len(prefixes[i0]))
	for _, e := range prefixes[i0] {
		if e.Grade < g0 {
			continue
		}
		entries = append(entries, gradedset.Entry{Object: e.Object, Grade: t.Apply(gradesFor(lists, e.Object))})
	}

	return topKResults(entries, k), nil
}
