package core

import (
	"sync"

	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// scratch is the reusable per-query working state of the algorithm
// family: the seen-set, per-object counters, per-object running values,
// and the entries/grades buffers every algorithm fills. Over a dense
// universe (every list reports one via subsys.UniverseHinter) the
// per-object state is flat arrays with epoch stamping — a slot is live
// iff stamp[obj] == gen, so reuse across queries is O(1) with no
// clearing. Sparse or unhinted sources fall back to maps.
//
// Both modes record first-touch order in touched, and algorithms iterate
// objects exclusively through objects(). That makes the two modes
// bit-identical in results and in Section 5 access counts: the fallback
// is the same algorithm over a different dictionary, not a different
// algorithm (the equivalence tests pin this).
//
// Instances come from a sync.Pool so concurrent engine queries do not
// allocate Θ(N) state per evaluation; acquire with acquireScratch and
// return with release (after which the scratch must not be used).
//
// The per-object state families share storage (count doubles as the
// slot index, and one stamp guards count and val together), so they are
// MUTUALLY EXCLUSIVE per acquire: within one acquire/release window use
// exactly one of visit/countOf, offerMax/valOf, or indexOf/addIndex.
// Mixing them silently misreads — visit counts would be taken for slot
// indexes — with no panic to catch it.
type scratch struct {
	dense bool
	n     int // universe size when dense

	gen   uint32
	stamp []uint32
	count []int32
	val   []float64

	scount map[int]int32   // sparse fallback for count
	sval   map[int]float64 // sparse fallback for val

	touched []int // objects in first-touch order (both modes)

	entries []gradedset.Entry // shared output staging buffer
	grades  []float64         // shared grade-vector buffer
	f64s    []float64         // reusable flat arena (NRA's partial grade vectors)
	bools   []bool            // reusable flat arena (NRA's known flags)
	cols    []float64         // reusable flat arena (Gather's m×n grade columns)
	colv    [][]float64       // column views into cols
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// denseUniverse reports the common dense universe of the lists, if every
// list declares one.
func denseUniverse(lists []*subsys.Counted) (int, bool) {
	n := 0
	for i, l := range lists {
		u, ok := l.Universe()
		if !ok {
			return 0, false
		}
		if i == 0 {
			n = u
		} else if u != n {
			return 0, false
		}
	}
	return n, true
}

// acquireScratch draws a scratch from the pool, sized and keyed for the
// given lists. Pair with release.
func acquireScratch(lists []*subsys.Counted) *scratch {
	s := scratchPool.Get().(*scratch)
	n, dense := denseUniverse(lists)
	s.dense, s.n = dense, n
	s.touched = s.touched[:0]
	s.entries = s.entries[:0]
	if dense {
		if cap(s.stamp) < n {
			s.stamp = make([]uint32, n)
			s.count = make([]int32, n)
			s.val = make([]float64, n)
			s.gen = 0
		}
		s.stamp = s.stamp[:cap(s.stamp)]
		s.count = s.count[:cap(s.count)]
		s.val = s.val[:cap(s.val)]
		s.gen++
		if s.gen == 0 { // epoch wrap: stale stamps could alias; clear once
			clear(s.stamp)
			s.gen = 1
		}
		s.scount, s.sval = nil, nil
	} else {
		s.scount = make(map[int]int32)
		s.sval = nil
	}
	return s
}

// release returns the scratch to the pool. Buffers previously obtained
// from it (entriesBuf, gradesBuf, objects) must no longer be referenced.
func (s *scratch) release() { scratchPool.Put(s) }

// visit increments obj's counter and returns the new count; the first
// visit appends obj to the touch order. Algorithms that only need a seen
// set use count==1 as "newly seen".
func (s *scratch) visit(obj int) int32 {
	if s.dense {
		if s.stamp[obj] != s.gen {
			s.stamp[obj] = s.gen
			s.count[obj] = 1
			s.touched = append(s.touched, obj)
			return 1
		}
		s.count[obj]++
		return s.count[obj]
	}
	c := s.scount[obj] + 1
	s.scount[obj] = c
	if c == 1 {
		s.touched = append(s.touched, obj)
	}
	return c
}

// countOf returns obj's current counter (0 if never visited).
func (s *scratch) countOf(obj int) int32 {
	if s.dense {
		if s.stamp[obj] != s.gen {
			return 0
		}
		return s.count[obj]
	}
	return s.scount[obj]
}

// offerMax keeps the running maximum value per object (B₀'s h(x)); the
// first offer appends obj to the touch order.
func (s *scratch) offerMax(obj int, g float64) {
	if s.dense {
		if s.stamp[obj] != s.gen {
			s.stamp[obj] = s.gen
			s.val[obj] = g
			s.touched = append(s.touched, obj)
		} else if g > s.val[obj] {
			s.val[obj] = g
		}
		return
	}
	if s.sval == nil {
		s.sval = make(map[int]float64)
	}
	if v, seen := s.sval[obj]; !seen || g > v {
		if !seen {
			s.touched = append(s.touched, obj)
		}
		s.sval[obj] = g
	}
}

// valOf returns the running value recorded by offerMax.
func (s *scratch) valOf(obj int) float64 {
	if s.dense {
		return s.val[obj]
	}
	return s.sval[obj]
}

// indexOf returns the slot recorded by addIndex for obj, or -1.
func (s *scratch) indexOf(obj int) int {
	if s.dense {
		if s.stamp[obj] != s.gen {
			return -1
		}
		return int(s.count[obj])
	}
	if c, ok := s.scount[obj]; ok {
		return int(c)
	}
	return -1
}

// addIndex assigns obj the next slot (its position in the touch order)
// and returns it. Call only when indexOf reported -1.
func (s *scratch) addIndex(obj int) int {
	idx := len(s.touched)
	if s.dense {
		s.stamp[obj] = s.gen
		s.count[obj] = int32(idx)
	} else {
		s.scount[obj] = int32(idx)
	}
	s.touched = append(s.touched, obj)
	return idx
}

// objects returns every touched object in first-touch order. The slice
// aliases the scratch and is valid until release.
func (s *scratch) objects() []int { return s.touched }

// entriesBuf returns the shared entries staging buffer, emptied.
func (s *scratch) entriesBuf() []gradedset.Entry {
	s.entries = s.entries[:0]
	return s.entries
}

// keepEntries stores the (possibly re-allocated) buffer back so its
// capacity survives into the next query.
func (s *scratch) keepEntries(es []gradedset.Entry) { s.entries = es }

// gradesBuf returns the shared m-wide grade-vector buffer.
func (s *scratch) gradesBuf(m int) []float64 {
	if cap(s.grades) < m {
		s.grades = make([]float64, m)
	}
	return s.grades[:m]
}

// f64Arena returns the reusable float64 arena, emptied.
func (s *scratch) f64Arena() []float64 {
	return s.f64s[:0]
}

// keepF64Arena stores the grown arena back for reuse.
func (s *scratch) keepF64Arena(a []float64) { s.f64s = a }

// boolArena returns the reusable bool arena, emptied.
func (s *scratch) boolArena() []bool {
	return s.bools[:0]
}

// keepBoolArena stores the grown arena back for reuse.
func (s *scratch) keepBoolArena(a []bool) { s.bools = a }

// colsBuf returns m reusable grade columns of length n (one flat backing
// array, sliced), the staging area of the executor's Gather phase. The
// views alias the scratch and are valid until release.
func (s *scratch) colsBuf(m, n int) [][]float64 {
	if cap(s.cols) < m*n {
		s.cols = make([]float64, m*n)
	}
	s.cols = s.cols[:cap(s.cols)]
	if cap(s.colv) < m {
		s.colv = make([][]float64, m)
	}
	s.colv = s.colv[:m]
	for j := 0; j < m; j++ {
		s.colv[j] = s.cols[j*n : (j+1)*n]
	}
	return s.colv
}

// gradesInto fills dst with obj's grade in every list via metered random
// access (free where already known). It is gradesFor without the per-call
// allocation.
func gradesInto(dst []float64, lists []*subsys.Counted, obj int) {
	for j, l := range lists {
		dst[j] = l.Grade(obj)
	}
}
