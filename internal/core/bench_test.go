package core

import (
	"context"
	"fmt"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// Package-level micro-benchmarks: wall-clock of each algorithm on the
// standard independent workload. The repository root's bench_test.go
// holds the per-experiment benchmarks; these isolate per-algorithm
// overhead for profiling.

func benchAlgorithm(b *testing.B, alg Algorithm, n, m, k int) {
	b.Helper()
	dbs := make([]*scoredb.Database, 4)
	for i := range dbs {
		dbs[i] = scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: uint64(100 + i)}.MustGenerate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := make([]subsys.Source, db.M())
		for j := range srcs {
			srcs[j] = subsys.FromList(db.List(j))
		}
		if _, _, err := Evaluate(context.Background(), alg, srcs, agg.Min, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithms(b *testing.B) {
	algs := []Algorithm{A0{}, A0Adaptive{}, A0Prime{}, TA{}, NRA{}, Ullman{}, NaiveSorted{}}
	for _, alg := range algs {
		for _, n := range []int{1024, 16384} {
			if alg.Name() == "ullman" {
				b.Run(fmt.Sprintf("%s/N=%d", alg.Name(), n), func(b *testing.B) {
					benchAlgorithm(b, alg, n, 2, 10)
				})
				continue
			}
			b.Run(fmt.Sprintf("%s/N=%d", alg.Name(), n), func(b *testing.B) {
				benchAlgorithm(b, alg, n, 3, 10)
			})
		}
	}
}

func BenchmarkMedianSubsetDecomposition(b *testing.B) {
	dbs := make([]*scoredb.Database, 4)
	for i := range dbs {
		dbs[i] = scoredb.Generator{N: 16384, M: 3, Seed: uint64(200 + i)}.MustGenerate()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := dbs[i%len(dbs)]
		srcs := make([]subsys.Source, db.M())
		for j := range srcs {
			srcs[j] = subsys.FromList(db.List(j))
		}
		if _, _, err := Evaluate(context.Background(), OrderStat{}, srcs, agg.Median, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter(b *testing.B) {
	db := scoredb.Generator{N: 16384, M: 2, Seed: 300}.MustGenerate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs := []subsys.Source{subsys.FromList(db.List(0)), subsys.FromList(db.List(1))}
		lists := subsys.CountAll(srcs)
		if _, err := Filter(Background(), lists, agg.Min, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}
