package core

import (
	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// NaiveSorted is the baseline of Section 4: each subsystem outputs its
// entire graded set under sorted access, the middleware computes every
// object's overall grade, and keeps the best k. Sorted cost mN, random
// cost 0: linear in the database size regardless of k.
type NaiveSorted struct{}

// Name implements Algorithm.
func (NaiveSorted) Name() string { return "naive-sorted" }

// Exact implements Algorithm.
func (NaiveSorted) Exact() bool { return true }

// TopK implements Algorithm. It is correct for every aggregation
// function, monotone or not, since it sees every grade.
func (NaiveSorted) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	n, err := checkArgs(lists, k)
	if err != nil {
		return nil, err
	}
	cursors := subsys.Cursors(lists)
	// Every list is drained in full by definition: stage the complete
	// prefixes (in parallel under a concurrent executor) up front.
	if err := ec.Stage(cursors, n); err != nil {
		return nil, err
	}
	grades := make([][]float64, len(lists))
	for i, cu := range cursors {
		if err := ec.Reserve(n, 0); err != nil {
			return nil, err
		}
		grades[i] = make([]float64, n)
		// Drain in one batched sorted access (cost is still one unit per
		// rank).
		for _, e := range cu.NextBatch(n) {
			grades[i][e.Object] = e.Grade
		}
	}
	entries := make([]gradedset.Entry, n)
	buf := make([]float64, len(lists))
	for obj := 0; obj < n; obj++ {
		for i := range lists {
			buf[i] = grades[i][obj]
		}
		entries[obj] = gradedset.Entry{Object: obj, Grade: t.Apply(buf)}
	}
	return topKResults(entries, k), nil
}

// NaiveRandom is the all-random-access variant noted before Theorem 6.6:
// probe every object in every list by random access. Sorted cost 0,
// random cost mN — the reason the sorted-access lower bound must exclude
// algorithms with linear random cost.
type NaiveRandom struct{}

// Name implements Algorithm.
func (NaiveRandom) Name() string { return "naive-random" }

// Exact implements Algorithm.
func (NaiveRandom) Exact() bool { return true }

// TopK implements Algorithm. The probe sweep stays object-major and
// unbuffered even under a parallel executor: a didactic O(mN) baseline
// is not worth an m×N staging matrix.
func (NaiveRandom) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	n, err := checkArgs(lists, k)
	if err != nil {
		return nil, err
	}
	entries := make([]gradedset.Entry, n)
	buf := make([]float64, len(lists))
	for obj := 0; obj < n; obj++ {
		if obj%ctxCheckEvery == 0 {
			if err := ec.err(); err != nil {
				return nil, err
			}
		}
		if err := ec.ReserveProbes(lists, obj); err != nil {
			return nil, err
		}
		gradesInto(buf, lists, obj)
		entries[obj] = gradedset.Entry{Object: obj, Grade: t.Apply(buf)}
	}
	return topKResults(entries, k), nil
}
