package core

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// FilterFirst is the evaluation plan the paper sketches at the start of
// Section 4 for conjunctions with a selective traditional conjunct, as in
//
//	(Artist = "Beatles") ∧ (AlbumColor = "red"):
//
// first determine every object that satisfies the crisp conjunct (grade
// exactly 1), then use random access to fetch the remaining grades for
// just those objects. Under min, any object failing the crisp conjunct
// has overall grade 0, so the perfect matches plus an arbitrary
// zero-grade fill are a correct top-k.
//
// The driving list must be binary (grades 0 or 1), which is what the
// relational subsystems produce. The middleware cost is
// s·N + 1 + (m−1)·s·N where s is the conjunct's selectivity — excellent
// when s is small (the "not many Beatles albums" assumption), linear when
// it is not; A₀ is the general-purpose choice.
type FilterFirst struct {
	// Drive selects the binary list index to filter on.
	Drive int
}

// ErrNotBinary reports a driving list with grades other than 0 and 1.
var ErrNotBinary = fmt.Errorf("core: filter-first driving list is not binary")

// Name implements Algorithm.
func (f FilterFirst) Name() string { return "filter-first" }

// Exact implements Algorithm.
func (FilterFirst) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function must behave as min.
func (f FilterFirst) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	n, err := checkArgs(lists, k)
	if err != nil {
		return nil, err
	}
	if f.Drive < 0 || f.Drive >= len(lists) {
		return nil, fmt.Errorf("%w: drive list %d of %d", ErrArity, f.Drive, len(lists))
	}
	drive := subsys.NewCursor(lists[f.Drive])
	driveOnly := []*subsys.Cursor{drive}

	// Sorted access on the driving list: perfect matches arrive first.
	// One extra access (the first non-1 grade) proves completeness; it
	// must be 0 or the list is not binary.
	var matches []int
	for !drive.Exhausted() {
		if err := ec.Stage(driveOnly, 1); err != nil {
			return nil, err
		}
		if err := ec.Reserve(1, 0); err != nil {
			return nil, err
		}
		e, ok := drive.Next()
		if !ok {
			break
		}
		if e.Grade == 1 {
			matches = append(matches, e.Object)
			continue
		}
		if e.Grade != 0 {
			return nil, fmt.Errorf("%w: grade %v", ErrNotBinary, e.Grade)
		}
		break
	}

	// Random access for the matches only.
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	entries, err := ec.appendScores(sc, lists, matches, t, sc.entriesBuf())
	if err != nil {
		sc.keepEntries(entries)
		return nil, err
	}

	// If the crisp conjunct has fewer than k perfect matches, every
	// remaining object grades 0 under min; fill with the smallest ids.
	if len(entries) < k {
		for _, e := range entries {
			sc.visit(e.Object)
		}
		for obj := 0; obj < n && len(entries) < k; obj++ {
			if sc.countOf(obj) == 0 {
				entries = append(entries, gradedset.Entry{Object: obj, Grade: 0})
			}
		}
	}
	sc.keepEntries(entries)
	return topKResults(entries, k), nil
}
