// Package core implements the paper's primary contribution: algorithms
// for finding the top k answers to a query F_t(A₁,…,Aₘ) over m graded
// lists, touching the lists only through sorted and random access.
//
// The algorithms:
//
//   - A0 (Fagin's Algorithm): three phases — sorted access round-robin
//     until at least k objects have been seen in every list, random access
//     to complete the grades of every seen object, then computation.
//     Correct for every monotone aggregation function (Theorem 4.2), with
//     middleware cost O(N^((m−1)/m)·k^(1/m)) with arbitrarily high
//     probability when the lists are independent (Theorem 5.3), which is
//     optimal for monotone strict functions (Theorem 6.5).
//   - A0Prime: the min-specific refinement of Section 4 — after the
//     sorted phase, random accesses are restricted to the "candidates",
//     the members of one list's prefix (Theorem 4.4), saving a constant
//     factor of random accesses.
//   - B0: the disjunction algorithm for max — k sorted accesses per list,
//     no random accesses, cost mk independent of the database size
//     (Theorem 4.5, Remark 6.1).
//   - OrderStat: the Remark 6.1 construction generalized — the j-th
//     largest of m grades is the max over j-subsets of the min over the
//     subset, so a median query runs one A0Prime per subset and merges
//     B0-style. For m = 3 this is exactly the paper's median algorithm
//     with cost O(√(Nk)).
//   - Ullman: the Section 9 sequential probe algorithm for binary min
//     conjunctions — sorted access on one list, an immediate random probe
//     on the other, stopping when the k-th best candidate is at least the
//     last sorted grade. Expected constant cost when one list's grades
//     are bounded away from 1; Θ(√N) when both are uniform (Landau).
//   - NaiveSorted and NaiveRandom: the two linear baselines of Section 4.
//   - TA and NRA: the successor algorithms of the FA lineage (the
//     threshold algorithm with immediate random access, and the no-random-
//     access algorithm with lower/upper bound bookkeeping), implemented as
//     documented extensions for the ablation experiments.
//
// Package core also provides threshold (filter-condition) evaluation in
// the style of Chaudhuri–Gravano, and a Paginator implementing the "find
// the next k best answers by continuing where we left off" feature noted
// after Theorem 4.2.
//
// # Requests and executors
//
// Evaluation is request-scoped: Evaluate takes a context.Context and
// per-request options, and every algorithm takes an *ExecContext
// carrying that context, the cost model, an optional access budget, and
// an Executor. The executor is the transport between algorithms and
// subsystems: Serial issues every access inline; Concurrent overlaps
// them across lists (one worker per subsystem), staging sorted ranks
// into uncounted readahead buffers and fanning the random-access phase
// out per list. Executors never change semantics — the Section 5
// tallies meter what the algorithm consumes, which is identical under
// either executor, and the equivalence tests pin that bit for bit.
// Cancellation is honored between accesses (Serial) or by abandoning
// in-flight workers (Concurrent); budgets are enforced by reservation
// before each step, so a budgeted evaluation stops with ErrBudgetExceeded
// and a partial cost that never overshoots the limit.
//
// All algorithms interact with data exclusively through subsys.Counted,
// so reported costs are exactly the S and R of the Section 5 cost model.
package core
