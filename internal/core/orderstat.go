package core

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/subsys"
)

// OrderStat evaluates top-k for the j-th-largest aggregation function
// (hence the median, Remark 6.1) by the subset decomposition
//
//	j-th largest(a₁,…,aₘ) = max over all j-subsets S of min over S.
//
// For each j-subset of the lists it finds the top k answers of the
// min-conjunction with A₀′, then — B₀-style, since the outer combination
// is a max — unions the per-subset winners, completes their grade vectors
// by random access, and returns the k best by the true order statistic.
//
// For m = 3, j = 2 this is exactly the paper's median algorithm, with
// middleware cost O(√(Nk)) against the Θ(N^(2/3)k^(1/3)) strict-query
// bound: the demonstration that non-strict monotone functions can beat
// the lower bound.
//
// The per-subset runs share one set of counted lists, so a grade paid for
// by one subset's run is free to the others — exactly how a middleware
// with a cache would execute the plan.
type OrderStat struct {
	// J is the order statistic (1 = max, m = min). Zero means median:
	// ⌈(m+1)/2⌉ at runtime.
	J int
}

// Name implements Algorithm.
func (o OrderStat) Name() string {
	if o.J == 0 {
		return "median-via-subsets"
	}
	return fmt.Sprintf("orderstat-%d-via-subsets", o.J)
}

// Exact implements Algorithm.
func (OrderStat) Exact() bool { return true }

// TopK implements Algorithm. The aggregation function t must be the
// matching order statistic (or median); it is used to compute the final
// grades.
func (o OrderStat) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	m := len(lists)
	j := o.J
	if j == 0 {
		j = (m + 2) / 2 // ⌈(m+1)/2⌉
	}
	if j < 1 || j > m {
		return nil, fmt.Errorf("%w: order statistic %d of %d lists", ErrArity, j, m)
	}

	inner := A0Prime{}
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	for _, subset := range agg.Subsets(m, j) {
		sub := make([]*subsys.Counted, len(subset))
		for i, idx := range subset {
			sub[i] = lists[idx]
		}
		// The inner runs share this evaluation's ExecContext, so budget
		// accounting spans all subsets and the shared-cache discount
		// (a grade paid by one subset is free to the rest) is preserved.
		res, err := inner.TopK(ec, sub, agg.Min, k)
		if err != nil {
			return nil, fmt.Errorf("subset %v: %w", subset, err)
		}
		for _, r := range res {
			sc.visit(r.Object)
		}
	}

	entries, err := ec.appendScores(sc, lists, sc.objects(), t, sc.entriesBuf())
	sc.keepEntries(entries)
	if err != nil {
		return nil, err
	}
	return topKResults(entries, k), nil
}
