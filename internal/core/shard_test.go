package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// TestShardedP1ByteForByte: Shards ≤ 1 must degenerate to the plain
// unsharded pipeline byte for byte — identical results AND identical
// cost tallies — as must non-exact algorithms at any shard count.
func TestShardedP1ByteForByte(t *testing.T) {
	db := scoredb.Generator{N: 700, M: 3, Seed: 61}.MustGenerate()
	cases := []struct {
		alg    Algorithm
		f      agg.Func
		shards int
	}{
		{A0{}, agg.Min, 1},
		{A0{}, agg.Min, 0},
		{A0Prime{}, agg.Min, 1},
		{TA{}, agg.Min, -3},
		{NRA{}, agg.Min, 6}, // non-exact: degenerates at any shard count
	}
	for _, tc := range cases {
		want, wantCost, err := Evaluate(context.Background(), tc.alg, sourcesOf(db), tc.f, 12)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(db), tc.f, 12,
			ShardConfig{Shards: tc.shards})
		if err != nil {
			t.Fatalf("%s/P=%d: %v", tc.alg.Name(), tc.shards, err)
		}
		if sr.Shards != 1 {
			t.Errorf("%s/P=%d: reported %d shards, want 1", tc.alg.Name(), tc.shards, sr.Shards)
		}
		if sr.Cost != wantCost {
			t.Errorf("%s/P=%d: cost %v, unsharded %v", tc.alg.Name(), tc.shards, sr.Cost, wantCost)
		}
		if len(sr.Results) != len(want) {
			t.Fatalf("%s/P=%d: %d results, want %d", tc.alg.Name(), tc.shards, len(sr.Results), len(want))
		}
		for i := range want {
			if sr.Results[i] != want[i] {
				t.Errorf("%s/P=%d: result %d = %v, want %v", tc.alg.Name(), tc.shards, i, sr.Results[i], want[i])
			}
		}
	}
}

// TestShardedMoreShardsThanObjects: a shard count beyond the universe
// size clamps to one object per shard and still merges the exact global
// top k, for every k.
func TestShardedMoreShardsThanObjects(t *testing.T) {
	db := scoredb.Generator{N: 7, M: 2, Seed: 62}.MustGenerate()
	for k := 1; k <= 7; k++ {
		want, _, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, k)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, k,
			ShardConfig{Shards: 50})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if sr.Shards != 7 {
			t.Errorf("k=%d: planned %d shards, want 7 (clamped to N)", k, sr.Shards)
		}
		for i := range want {
			if sr.Results[i] != want[i] {
				t.Errorf("k=%d: result %d = %v, want %v", k, i, sr.Results[i], want[i])
			}
		}
	}
}

// TestShardedEmptyShardSlice: a shard over an empty universe slice
// evaluates to nothing at zero cost, and the surrounding merge skips it.
func TestShardedEmptyShardSlice(t *testing.T) {
	db := scoredb.Generator{N: 100, M: 2, Seed: 63}.MustGenerate()
	out := evalShard(context.Background(), A0{}, sourcesOf(db), agg.Min, 5,
		subsys.ShardRange{Lo: 40, Hi: 40}, cost.Unweighted, nil, nil, nil, nil, nil)
	if out.err != nil {
		t.Fatalf("empty shard errored: %v", out.err)
	}
	if len(out.res) != 0 {
		t.Errorf("empty shard returned results: %v", out.res)
	}
	if out.total.Sum() != 0 {
		t.Errorf("empty shard cost %v, want zero", out.total)
	}
}

// tieDB builds a database whose m lists grade every object identically
// (overall grade = per-list grade), strictly descending by id except for
// a block of objects tied at one grade. Both evaluation strategies see
// the same canonical order, so the top-k — including the tie class at
// the global k-th score — must come out byte-identical.
func tieDB(t *testing.T, n, m, tieLo, tieHi int, tieGrade float64) *scoredb.Database {
	t.Helper()
	entries := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		g := 1 - float64(i)/float64(2*n)
		if i >= tieLo && i < tieHi {
			g = tieGrade
		}
		entries[i] = gradedset.Entry{Object: i, Grade: g}
	}
	lists := make([]*gradedset.List, m)
	for j := range lists {
		l, err := gradedset.NewList(entries)
		if err != nil {
			t.Fatal(err)
		}
		lists[j] = l
	}
	db, err := scoredb.New(lists)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestShardedTiesAtGlobalKth pins the merge's tie policy: with the
// global k-th score shared by a block of objects straddling shard
// boundaries, the sharded evaluation must pick exactly the tied objects
// with the smallest ids, in the same order as the unsharded run —
// byte-identical results for every algorithm under test, every k inside
// the tie block, and every shard count.
func TestShardedTiesAtGlobalKth(t *testing.T) {
	const n, m = 120, 2
	// Objects 30..89 all tie at grade 0.4 (below the 30 better objects);
	// with P=4 the block spans shards [30,60) and [60,90).
	db := tieDB(t, n, m, 30, 90, 0.4)
	algs := []struct {
		alg Algorithm
		f   agg.Func
	}{
		{A0{}, agg.Min},
		{A0Prime{}, agg.Min},
		{A0Adaptive{}, agg.Min},
		{TA{}, agg.Min},
		{B0{}, agg.Max},
		{NaiveSorted{}, agg.Min},
	}
	for _, tc := range algs {
		for _, k := range []int{31, 45, 60, 89, 90, 120} {
			want, _, err := Evaluate(context.Background(), tc.alg, sourcesOf(db), tc.f, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4, 7} {
				label := fmt.Sprintf("%s/k=%d/P=%d", tc.alg.Name(), k, shards)
				sr, err := EvaluateSharded(context.Background(), tc.alg, sourcesOf(db), tc.f, k,
					ShardConfig{Shards: shards, Parallel: 1})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(sr.Results) != len(want) {
					t.Fatalf("%s: %d results, want %d", label, len(sr.Results), len(want))
				}
				for i := range want {
					if sr.Results[i] != want[i] {
						t.Errorf("%s: result %d = %v, want %v", label, i, sr.Results[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedCancellationMidShard cancels a sharded evaluation over slow
// sources mid-flight: every shard worker must notice between accesses,
// the workers must be joined, and the call must return the context error
// with the partial cost — promptly, under both sequential and parallel
// shard execution.
func TestShardedCancellationMidShard(t *testing.T) {
	db := scoredb.Generator{N: 16384, M: 2, Seed: 64}.MustGenerate()
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		sr, err := EvaluateSharded(ctx, A0{}, slowSourcesOf(db, time.Millisecond), agg.Min, 10,
			ShardConfig{Shards: 4, Parallel: par})
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		if sr.Results != nil {
			t.Errorf("par=%d: results on canceled evaluation: %v", par, sr.Results)
		}
		if elapsed > 2*time.Second {
			t.Errorf("par=%d: cancellation took %v, want prompt return", par, elapsed)
		}
		if sr.Cost.Sum() == 0 {
			t.Errorf("par=%d: partial cost is zero; evaluation never started", par)
		}
		t.Logf("par=%d: canceled after %v with partial cost %v", par, elapsed, sr.Cost)
	}
}

// TestShardedBudgetPool: the access budget of a sharded evaluation is
// one global reservation pool. A budget far below the sharded cost must
// stop the evaluation with a *BudgetError whose spend never overshoots;
// a generous budget must not change the answers; and the weighted
// partial spend must respect a skewed cost model.
func TestShardedBudgetPool(t *testing.T) {
	db := scoredb.Generator{N: 4096, M: 3, Seed: 65}.MustGenerate()
	free, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 20,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4} {
		budget := float64(free.Cost.Sum()) / 10
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 20,
			ShardConfig{Shards: 4, Parallel: par, Budget: budget})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("par=%d: err = %v, want ErrBudgetExceeded", par, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("par=%d: err %v does not expose *BudgetError", par, err)
		}
		if be.Limit != budget {
			t.Errorf("par=%d: BudgetError.Limit = %v, want %v", par, be.Limit, budget)
		}
		if be.Spent > budget {
			t.Errorf("par=%d: BudgetError.Spent = %v overshoots %v", par, be.Spent, budget)
		}
		if sr.Results != nil {
			t.Errorf("par=%d: results on budget-stopped evaluation", par)
		}
		if got := float64(sr.Cost.Sum()); got > budget {
			t.Errorf("par=%d: global spend %v overshoots shared budget %v", par, got, budget)
		}
		if sr.Cost.Sum() == 0 {
			t.Errorf("par=%d: zero partial cost", par)
		}
	}

	// Generous budget: identical answers to the unbudgeted sharded run.
	sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 20,
		ShardConfig{Shards: 4, Parallel: 1, Budget: float64(free.Cost.Sum()) * 2})
	if err != nil {
		t.Fatalf("generous budget tripped: %v", err)
	}
	for i := range free.Results {
		if sr.Results[i] != free.Results[i] {
			t.Errorf("budgeted result %d = %v, want %v", i, sr.Results[i], free.Results[i])
		}
	}

	// Skewed prices: the weighted spend is what must stay within budget.
	model := cost.Model{C1: 1, C2: 10}
	sr, err = EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 20,
		ShardConfig{Shards: 4, Parallel: 4, Budget: 800, Model: model})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("weighted: err = %v, want ErrBudgetExceeded", err)
	}
	if got := model.Of(sr.Cost); got > 800 {
		t.Errorf("weighted spend %v overshoots budget 800", got)
	}
}

// skewedDB builds the skewed workload of the threshold-merge claim: the
// global top answers all live in the first shard (ids < hot), whose
// grades are high and perfectly correlated across both lists, while the
// cold ids pollute list 1 with mid-range grades but grade near zero in
// list 2. Unsharded A₀ must scan past the polluters round after round
// to assemble k matches; the hot shard's re-ranked view never sees them,
// and every cold shard's threshold collapses after one round.
func skewedDB(t testing.TB, n, hot int) *scoredb.Database {
	t.Helper()
	e1 := make([]gradedset.Entry, n)
	e2 := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		var g1, g2 float64
		if i < hot {
			g1 = 0.999 - float64(i)/float64(hot)*0.95
			g2 = g1
		} else {
			// Deterministic pollution: cold ids grade 0.9–0.999 in list 1 —
			// ABOVE almost every hot id, so the unsharded round-robin must
			// wade through them — but ≈0 in list 2, so they never become
			// matches. Fractional offsets keep every grade distinct.
			g1 = 0.9 + (float64((i*7919)%n)+float64(i)/float64(n))/float64(n)*0.099
			g2 = (float64((i*104729)%n) + float64(i)/float64(n)) / float64(n) * 0.001
		}
		e1[i] = gradedset.Entry{Object: i, Grade: g1}
		e2[i] = gradedset.Entry{Object: i, Grade: g2}
	}
	l1, err := gradedset.NewList(e1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := gradedset.NewList(e2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := scoredb.New([]*gradedset.List{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestShardedSkewDoesLessWork is the threshold-merge payoff: on skewed
// data the sharded evaluation must spend strictly fewer total Section 5
// accesses than the unsharded one — the cold shards fence after a
// handful of rounds — while returning byte-identical answers. Sequential
// shard execution makes the tally deterministic.
func TestShardedSkewDoesLessWork(t *testing.T) {
	const n, k, shards = 4096, 10, 4
	db := skewedDB(t, n, n/shards)
	want, unsharded, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, k)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, k,
		ShardConfig{Shards: shards, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if sr.Results[i] != want[i] {
			t.Fatalf("result %d = %v, want %v", i, sr.Results[i], want[i])
		}
	}
	if sr.Cost.Sum() >= unsharded.Sum() {
		t.Errorf("sharded cost %v not below unsharded %v on skewed data", sr.Cost, unsharded)
	}
	// The cold shards must have been fenced early: each strictly cheaper
	// than the hot shard.
	for s := 1; s < shards; s++ {
		if sr.PerShard[s].Sum() >= sr.PerShard[0].Sum() {
			t.Errorf("cold shard %d cost %v not below hot shard %v", s, sr.PerShard[s], sr.PerShard[0])
		}
	}
	t.Logf("unsharded %v, sharded %v (hot %v, cold %v %v %v)",
		unsharded, sr.Cost, sr.PerShard[0], sr.PerShard[1], sr.PerShard[2], sr.PerShard[3])
}

// TestShardedDeterministicSequentialCost: with Parallel=1 the whole
// report — answers and every tally — must be reproducible bit for bit.
func TestShardedDeterministicSequentialCost(t *testing.T) {
	db := skewedDB(t, 2048, 512)
	first, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 8,
		ShardConfig{Shards: 4, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		sr, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 8,
			ShardConfig{Shards: 4, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Cost != first.Cost {
			t.Fatalf("trial %d: cost %v, want %v", trial, sr.Cost, first.Cost)
		}
		for s := range first.PerShard {
			if sr.PerShard[s] != first.PerShard[s] {
				t.Fatalf("trial %d: shard %d cost %v, want %v", trial, s, sr.PerShard[s], first.PerShard[s])
			}
		}
		for i := range first.Results {
			if sr.Results[i] != first.Results[i] {
				t.Fatalf("trial %d: result %d diverged", trial, i)
			}
		}
	}
}

// TestShardedBadArgs: argument errors surface exactly as the unsharded
// contract states them.
func TestShardedBadArgs(t *testing.T) {
	db := scoredb.Generator{N: 50, M: 2, Seed: 66}.MustGenerate()
	if _, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 0,
		ShardConfig{Shards: 4}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: err = %v, want ErrBadK", err)
	}
	if _, err := EvaluateSharded(context.Background(), A0{}, sourcesOf(db), agg.Min, 51,
		ShardConfig{Shards: 4}); !errors.Is(err, ErrBadK) {
		t.Errorf("k>N: err = %v, want ErrBadK", err)
	}
	if _, err := EvaluateSharded(context.Background(), A0{}, nil, agg.Min, 1,
		ShardConfig{Shards: 4}); !errors.Is(err, ErrNoLists) {
		t.Errorf("no lists: err = %v, want ErrNoLists", err)
	}
}
