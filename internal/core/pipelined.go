package core

import (
	"context"
	"fmt"

	"fuzzydb/internal/subsys"
)

const (
	// defaultGatherWidth is the number of random accesses Pipelined keeps
	// in flight at once when P is unset: wide enough that a
	// per-millisecond backend serves thousands of probes per second,
	// narrow enough not to stampede a real service.
	defaultGatherWidth = 64
	// pipelinedGatherCutoff is the probe count below which
	// Pipelined.Gather runs inline. It is deliberately tiny: the executor
	// exists for sources where a single access costs more than a
	// goroutine handoff.
	pipelinedGatherCutoff = 16
)

// Pipelined is the latency-hiding executor for slow or batched sources:
// middleware whose subsystems are remote services where the dominant
// cost of an access is the round trip, not the compute.
//
// Sorted access runs through a background prefetch pipeline per list
// (subsys.Counted.StartPrefetch): a worker goroutine issues batched
// Entries calls ahead of the algorithm's demand with adaptive depth —
// start at 1, double every time the algorithm stalls on the pipeline,
// shrink when the algorithm falls behind, capped at MaxDepth — so the
// per-call latency is amortized over ever-larger spans exactly when the
// source is slow enough to warrant it. Stage registers every needy
// cursor's demand before blocking on any of them, so the m refills of a
// round proceed concurrently across lists.
//
// The random-access gather phase overlaps across both lists AND objects:
// the executor resolves memoized grades first, fans the genuinely
// missing probes out on up to P workers against the raw sources, and
// then delivers the fetched grades in exactly the serial probe order.
// Payment stays strictly on delivery in both phases, so the Section 5
// tallies are bit-identical to the Serial executor's (the equivalence
// tests pin this), and budgets compose: reservations happen before
// delivery, and a failed reservation closes every pipeline — the
// evaluation never prefetches past a reservation failure.
//
// Sources must tolerate concurrent reads (pipeline refills overlap the
// gather probes): true of every built-in source and of
// subsys.LatencySource, not of subsys.Validated.
//
// On cancellation mid-wait the executor closes the pipelines (workers
// stop after their in-flight batch, which is never waited out) and
// returns an *AbandonedError promptly, even with a wedged batch in
// flight.
type Pipelined struct {
	// P caps the number of random accesses in flight during the gather
	// phase; 0 means defaultGatherWidth. Unlike Concurrent, useful
	// values exceed the CPU count: the workers overlap waiting.
	P int
	// Depth fixes the prefetch batch depth per list; 0 selects the
	// adaptive policy (start 1, double on stall, shrink when ahead).
	Depth int
	// MaxDepth caps the adaptive depth; 0 means
	// subsys.DefaultPrefetchCap.
	MaxDepth int
}

// Name implements Executor.
func (p Pipelined) Name() string {
	if p.Depth > 0 {
		return fmt.Sprintf("pipelined(p=%d,depth=%d)", p.width(), p.Depth)
	}
	return fmt.Sprintf("pipelined(p=%d)", p.width())
}

// Parallel implements Executor.
func (Pipelined) Parallel() bool { return true }

func (p Pipelined) width() int {
	if p.P > 0 {
		return p.P
	}
	return defaultGatherWidth
}

// gatherFanOut implements the executor's own fan-out rule: latency-bound
// probes overlap profitably even on one CPU, so the cutoff is tiny.
func (Pipelined) gatherFanOut(m, nObjs int) bool {
	return m*nObjs >= pipelinedGatherCutoff
}

// Stage implements Executor: start (lazily) a prefetch pipeline on every
// staged list, register each needy cursor's demand so all refills are in
// flight at once, then wait until each cursor can deliver its next
// `ahead` entries without touching its source. On cancellation it closes
// the pipelines and returns an *AbandonedError without waiting for
// wedged batches.
func (p Pipelined) Stage(ctx context.Context, cursors []*subsys.Cursor, ahead int) error {
	if ahead < 1 {
		ahead = 1
	}
	var needy []*subsys.Cursor
	for _, cu := range cursors {
		if cu.Buffered() >= ahead || cu.Exhausted() {
			continue
		}
		cu.StartPrefetch(p.Depth, p.MaxDepth)
		cu.DemandAhead(ahead)
		needy = append(needy, cu)
	}
	if len(needy) == 0 {
		return nil
	}
	done := ctx.Done()
	for _, cu := range needy {
		if cu.AwaitAhead(ahead, done) {
			continue
		}
		if ctx.Err() != nil {
			for _, cu2 := range cursors {
				cu2.AbortPrefetch()
			}
			return &AbandonedError{Cause: context.Cause(ctx)}
		}
		// The pipeline closed without delivering: either a benign reason
		// (fence, budget stop) — consumption will see the fence or pay a
		// direct read — or a terminal source failure, which stays
		// invisible until the algorithm actually demands the missing
		// rank (staging is readahead; see subsys.Counted.bufferAhead)
		// and is then recorded as the list's sticky error. Either way
		// the remaining cursors still get their awaits (their pipelines
		// are already in flight) and the round loop decides what next.
	}
	return nil
}

// Gather implements Executor: cols[j][i] = lists[j].Grade(objs[i]),
// overlapped across every (list, object) pair. Memoized grades are
// resolved inline first; the genuinely missing probes fan out on up to
// width() workers against the raw sources — uncounted — and are then
// delivered in the exact serial order (list-major, ascending object
// index), so per-list tallies and memo state match Serial bit for bit.
func (p Pipelined) Gather(ctx context.Context, lists []*subsys.Counted, objs []int, cols [][]float64) error {
	type probe struct{ j, i int }
	var misses []probe
	for j, l := range lists {
		col := cols[j]
		for i, obj := range objs {
			if g, ok := l.Known(obj); ok {
				col[i] = g
			} else {
				misses = append(misses, probe{j, i})
			}
		}
	}
	if len(misses) == 0 {
		return nil
	}
	if len(misses) < pipelinedGatherCutoff {
		for _, pr := range misses {
			cols[pr.j][pr.i] = lists[pr.j].Grade(objs[pr.i])
		}
		return nil
	}
	fallible := false
	for _, l := range lists {
		if l.Fallible() {
			fallible = true
			break
		}
	}
	fetched := make([]float64, len(misses))
	var ferrs []error
	if fallible {
		ferrs = make([]error, len(misses))
	}
	err := fanOut(ctx, p.width(), len(misses), func(ctx context.Context, t int) bool {
		if ctx.Done() != nil && t%ctxCheckEvery == 0 && ctx.Err() != nil {
			return false
		}
		pr := misses[t]
		if ferrs != nil {
			// Raw fallible read: a source failure is recorded per probe,
			// NOT by bailing the fan-out — bailing would fabricate an
			// abandonment (poisoned lists, GC'd state) out of an orderly,
			// typed failure. Delivery below turns the first failed probe
			// in serial order into the list's sticky error.
			fetched[t], ferrs[t] = lists[pr.j].TrySourceGrade(objs[pr.i])
			return true
		}
		// Raw, unmetered read: payment happens at delivery below.
		fetched[t] = lists[pr.j].SourceGrade(objs[pr.i])
		return true
	})
	if err != nil {
		for _, l := range lists {
			l.AbortPrefetch()
		}
		return err
	}
	// Delivery in serial probe order: each miss pays one random access
	// (objs are distinct within a phase, so the miss set was fixed at
	// phase start — exactly the accesses Serial would have paid).
	for t, pr := range misses {
		if ferrs != nil && ferrs[t] != nil {
			// First failed probe in serial order: record it as the list's
			// sticky error and stop delivering — the ExecContext's
			// post-gather check surfaces the typed error, and no grade
			// past the failure point is paid for.
			lists[pr.j].FailGrade(objs[pr.i], ferrs[t])
			for _, l := range lists {
				l.AbortPrefetch()
			}
			return nil
		}
		cols[pr.j][pr.i] = lists[pr.j].DeliverGrade(objs[pr.i], fetched[t])
	}
	return nil
}
