package core

import (
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// These tests check the paper's structural propositions directly, not
// through algorithm outputs: they are the machinery both the upper and
// lower bounds stand on.

// Proposition 4.1: if Xᵢ is upward closed w.r.t. Aᵢ for each i, the query
// is monotone, x ∈ ∩Xᵢ (a "match"), and overall(z) > overall(x), then
// z ∈ ∪Xᵢ — any object beating a match has been seen in at least one
// list, which is exactly why A₀'s random-access phase over the seen set
// suffices. Prefixes of the sorted lists are the upward-closed sets the
// algorithm uses.
func TestProposition41Property(t *testing.T) {
	funcs := []agg.Func{agg.Min, agg.AlgebraicProduct, agg.ArithmeticMean, agg.Median, agg.Max}
	f := func(seed uint64) bool {
		n := 6 + int(seed%30)
		m := 2 + int(seed%3)
		db, err := (scoredb.Generator{N: n, M: m, Law: scoredb.Discrete{Levels: 5}, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		fn := funcs[seed%uint64(len(funcs))]
		// Random per-list prefix depths. A prefix X^i_d must include every
		// object with grade strictly above the d-th grade, so with ties it
		// is upward closed by construction of the sorted list.
		depths := make([]int, m)
		for i := range depths {
			depths[i] = 1 + int((seed/uint64(3*i+7))%uint64(n))
		}
		inPrefix := func(i, obj int) bool {
			r := db.List(i).Rank(obj)
			if r < depths[i] {
				return true
			}
			// Ties at the boundary: an object tied with the last included
			// grade may be outside the counted prefix; to get a genuinely
			// upward-closed set, extend the prefix across the tie.
			g, _ := db.List(i).Grade(obj)
			boundary := db.List(i).Entry(depths[i] - 1).Grade
			return g > boundary || g == boundary
		}
		overall := func(obj int) float64 {
			gs, err := db.Grades(obj)
			if err != nil {
				panic(err)
			}
			return fn.Apply(gs)
		}
		inAll := func(obj int) bool {
			for i := 0; i < m; i++ {
				if !inPrefix(i, obj) {
					return false
				}
			}
			return true
		}
		inAny := func(obj int) bool {
			for i := 0; i < m; i++ {
				if inPrefix(i, obj) {
					return true
				}
			}
			return false
		}
		for x := 0; x < n; x++ {
			if !inAll(x) {
				continue
			}
			ox := overall(x)
			for z := 0; z < n; z++ {
				if overall(z) > ox && !inAny(z) {
					t.Logf("seed=%d fn=%s: z=%d beats match x=%d but was never seen", seed, fn.Name(), z, x)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Proposition 4.3 (min only): with i₀, x₀ minimizing μ_{Ai}(x) over seen
// pairs, any z with overall(z) > overall(x₀) lies in X^{i₀}. We verify on
// the tie-free uniform law where prefixes are exactly upward closed.
func TestProposition43Property(t *testing.T) {
	f := func(seed uint64) bool {
		n := 6 + int(seed%30)
		m := 2 + int(seed%3)
		db, err := (scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		d := 1 + int(seed%uint64(n)) // uniform prefix depth
		// x₀, i₀: minimize the grade over all prefix entries.
		g0 := 2.0
		i0 := 0
		for i := 0; i < m; i++ {
			for r := 0; r < d; r++ {
				e := db.List(i).Entry(r)
				if e.Grade < g0 {
					g0 = e.Grade
					i0 = i
				}
			}
		}
		// Check: any object whose min-grade exceeds g0 appears in list
		// i₀'s prefix.
		for z := 0; z < n; z++ {
			gs, err := db.Grades(z)
			if err != nil {
				return false
			}
			if agg.Min.Apply(gs) > g0 && db.List(i0).Rank(z) >= d {
				t.Logf("seed=%d: object %d has min %v > g0=%v but rank %d in list %d",
					seed, z, agg.Min.Apply(gs), g0, db.List(i0).Rank(z), i0)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// A₀'s cost is monotone in k on a fixed skeleton: asking for more answers
// can only scan deeper.
func TestA0CostMonotoneInK(t *testing.T) {
	f := func(seed uint64) bool {
		db, err := (scoredb.Generator{N: 500, M: 2, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		prev := -1
		for _, k := range []int{1, 5, 25, 125, 500} {
			_, c := run(t, A0{}, db, agg.Min, k)
			if c.Sum() < prev {
				t.Logf("seed=%d: cost dropped from %d to %d as k grew to %d", seed, prev, c.Sum(), k)
				return false
			}
			prev = c.Sum()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Lemma 6.2's contrapositive, checked constructively: whenever A₀ stops
// with sorted depth T per list and pays fewer than N accesses, the
// intersection of the depth-T prefixes holds at least k objects.
func TestLemma62IntersectionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%200)
		m := 2 + int(seed%2)
		k := 1 + int(seed%8)
		db, err := (scoredb.Generator{N: n, M: m, Law: scoredb.Uniform{}, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		srcs := make([]subsys.Source, m)
		for i := range srcs {
			srcs[i] = subsys.FromList(db.List(i))
		}
		counted := subsys.CountAll(srcs)
		if _, err := (A0{}).TopK(Background(), counted, agg.Min, k); err != nil {
			return false
		}
		c := subsys.TotalCost(counted)
		if c.Sum() >= n {
			return true // the lemma only speaks below N
		}
		T := counted[0].Depth() // uniform-depth A0: all lists equal
		count := 0
		for obj := 0; obj < n; obj++ {
			in := true
			for i := 0; i < m; i++ {
				if db.List(i).Rank(obj) >= T {
					in = false
					break
				}
			}
			if in {
				count++
			}
		}
		if count < k {
			t.Logf("seed=%d: depth-%d intersection has %d < k=%d members", seed, T, count, k)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
