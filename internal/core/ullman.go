package core

import (
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// Ullman is the Section 9 algorithm (due to Jeff Ullman) for the standard
// fuzzy conjunction A₁ ∧ A₂ (t = min) over exactly two lists: read list
// Probe under sorted access, and for each object so revealed immediately
// fetch its grade in the other list by random access. Stop as soon as the
// k-th best candidate's overall grade is at least the grade of the last
// sorted access — no unseen object can beat it, because its list-Probe
// grade (hence its min) is bounded by that last grade. For k = 1 this is
// exactly the paper's stopping rule "stop when μ₂(x) ≥ μ₁(x)".
//
// Under independence with the probed list's grades bounded above by b < 1
// and the other list uniform, the expected number of iterations is at
// most 1/(1−b) — constant in N (Section 9 uses b = 0.9, expected ≤ 10).
// With both lists uniform the expected cost is Θ(√N) (Landau), matching
// A₀ up to constants.
type Ullman struct {
	// Probe selects which list (0 or 1) is read by sorted access; the
	// other is probed by random access.
	Probe int
}

// Name implements Algorithm.
func (u Ullman) Name() string { return "ullman" }

// Exact implements Algorithm.
func (Ullman) Exact() bool { return true }

// TopK implements Algorithm. It requires exactly two lists and min
// semantics for t.
func (u Ullman) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if len(lists) != 2 {
		return nil, fmt.Errorf("%w: ullman needs exactly 2 lists, got %d", ErrArity, len(lists))
	}
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if u.Probe != 0 && u.Probe != 1 {
		return nil, fmt.Errorf("%w: probe list %d", ErrArity, u.Probe)
	}
	primary := subsys.NewCursor(lists[u.Probe])
	primaryOnly := []*subsys.Cursor{primary}
	other := lists[1-u.Probe]

	// top incrementally maintains the best k candidates (the same
	// deterministic order KthGrade used), so each iteration's stop test
	// is O(log k) instead of re-selecting over all candidates.
	top := &boundedTopK{k: k}
	var pair [2]float64
	for !primary.Exhausted() {
		if err := ec.Stage(primaryOnly, 1); err != nil {
			return nil, err
		}
		if err := ec.Reserve(1, 0); err != nil {
			return nil, err
		}
		e, ok := primary.Next()
		if !ok {
			break // all objects seen; candidates are complete
		}
		if err := ec.ReserveProbes(lists, e.Object); err != nil {
			return nil, err
		}
		pair[0], pair[1] = e.Grade, other.Grade(e.Object)
		top.offer(gradedset.Entry{Object: e.Object, Grade: t.Apply(pair[:])})
		// Unseen objects have primary grade ≤ e.Grade, hence overall
		// ≤ e.Grade under min. If k candidates already reach that bar,
		// nothing unseen can displace them.
		if top.full() && top.kth().Grade >= e.Grade {
			break
		}
	}
	return topKResults(top.entries, k), nil
}
