package core

import (
	"context"
	"errors"
	"fmt"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// Result is one answer: an object with its overall grade under the query.
type Result struct {
	Object int
	Grade  float64
}

// String renders "(object, grade)".
func (r Result) String() string { return fmt.Sprintf("(%d, %.4f)", r.Object, r.Grade) }

// Algorithm finds the top k answers of F_t(A₁,…,Aₘ) where list i is the
// graded answer of atomic query Aᵢ. Implementations touch the lists only
// through the Counted access interface, so every grade they learn is
// metered, and they route their access phases through the ExecContext
// (Stage before each sorted round, Gather for bulk random access,
// Reserve before paying), which is how cancellation, access budgets, and
// the pluggable executor reach every member of the family uniformly.
type Algorithm interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Exact reports whether returned grades are exact overall grades. It
	// is true for every algorithm except NRA, whose grades are lower
	// bounds (the returned objects are still a correct top-k set).
	Exact() bool
	// TopK returns k results in descending grade order. On cancellation
	// or budget exhaustion it returns nil results and an error that
	// wraps the context error or ErrBudgetExceeded respectively; the
	// cost spent so far remains readable from the lists (or from the
	// ExecContext's SafeCost if the evaluation was abandoned).
	TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error)
}

// Errors shared by the algorithms.
var (
	// ErrBadK reports k outside [1, N].
	ErrBadK = errors.New("core: k must satisfy 1 <= k <= N")
	// ErrNoLists reports an empty list set.
	ErrNoLists = errors.New("core: no lists")
	// ErrArity reports an algorithm applied at an unsupported arity.
	ErrArity = errors.New("core: unsupported number of lists")
	// ErrNotMonotone reports an aggregation function without the
	// monotonicity guarantee A₀-family correctness requires.
	ErrNotMonotone = errors.New("core: aggregation function is not monotone")
)

// checkArgs validates the common preconditions and returns N.
func checkArgs(lists []*subsys.Counted, k int) (int, error) {
	if len(lists) == 0 {
		return 0, ErrNoLists
	}
	n := lists[0].Len()
	for i, l := range lists {
		if l.Len() != n {
			return 0, fmt.Errorf("%w: list %d has %d objects, want %d", ErrArity, i, l.Len(), n)
		}
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("%w: k=%d, N=%d", ErrBadK, k, n)
	}
	return n, nil
}

// topKResults selects the k best (object, grade) pairs in descending
// grade order with the package-wide deterministic tie-break.
func topKResults(entries []gradedset.Entry, k int) []Result {
	top := gradedset.TopK(entries, k)
	out := make([]Result, len(top))
	for i, e := range top {
		out[i] = Result{Object: e.Object, Grade: e.Grade}
	}
	return out
}

// Evaluate wraps sources in counters, runs the algorithm under the given
// context and options, and returns the results together with the exact
// middleware access cost incurred — on success the full Section 5
// tallies, on cancellation or budget exhaustion the partial cost spent
// before the stop. The counters' pooled caches are recycled before
// returning, so callers that need the lists to outlive the evaluation
// (pagination, multi-phase plans) should wrap sources with
// subsys.CountAll and drive the algorithm themselves.
func Evaluate(ctx context.Context, alg Algorithm, srcs []subsys.Source, t agg.Func, k int, opts ...EvalOption) ([]Result, cost.Cost, error) {
	counted := subsys.CountAll(srcs)
	ec := NewExecContext(ctx, counted, opts...)
	res, err := alg.TopK(ec, counted, t, k)
	if err == nil {
		// Final net for fallible sources: an algorithm that saw a failed
		// list merely as an exhausted stream would otherwise return
		// results computed over truncated data. No path may hand such
		// results out without the typed error.
		if serr := ec.SourceFailure(); serr != nil {
			res, err = nil, serr
		}
	}
	if ec.Abandoned() {
		// Workers may still be touching the lists: report the cost as of
		// the last quiescent point and let the GC reclaim the state.
		return res, ec.SafeCost(), err
	}
	c := subsys.TotalCost(counted)
	subsys.ReleaseAll(counted)
	return res, c, err
}
