package core

import (
	"container/heap"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// TA is the Threshold Algorithm, the successor of A₀ in the line of work
// this paper initiated (implemented here as a documented extension for
// the ablation experiments). It differs from A₀ in doing random access
// eagerly: each object revealed by sorted access is immediately probed in
// every other list, so its exact overall grade is known at once. After
// each round the threshold τ = t(g̲₁,…,g̲ₘ) — the aggregate of the last
// grades seen under sorted access — bounds the grade of every unseen
// object (for monotone t), so the algorithm stops as soon as the current
// k-th best grade reaches τ.
//
// TA is instance optimal for monotone t, and never scans deeper than A₀:
// its stopping rule fires at the latest when A₀'s does.
type TA struct {
	// StrictMonotoneCheck as in A0.
	StrictMonotoneCheck bool
}

// Name implements Algorithm.
func (TA) Name() string { return "TA" }

// Exact implements Algorithm.
func (TA) Exact() bool { return true }

// TopK implements Algorithm.
func (ta TA) TopK(ec *ExecContext, lists []*subsys.Counted, t agg.Func, k int) ([]Result, error) {
	if _, err := checkArgs(lists, k); err != nil {
		return nil, err
	}
	if ta.StrictMonotoneCheck && !t.Monotone() {
		return nil, ErrNotMonotone
	}
	cursors := subsys.Cursors(lists)
	sc := acquireScratch(lists)
	defer ec.releaseScratch(sc)
	buf := sc.gradesBuf(len(lists))
	// top maintains the best k exact grades seen so far (a min-heap with
	// the k-th best at the root). Grades are exact on first sight and
	// never change, so incremental maintenance is sound.
	top := &boundedTopK{k: k}
	lasts := make([]float64, len(lists))
	for i := range lasts {
		lasts[i] = 1
	}
	for {
		if err := ec.Stage(cursors, 1); err != nil {
			return nil, err
		}
		exhausted := true
		for i, cu := range cursors {
			if cu.Exhausted() {
				continue
			}
			// Reserve each sorted access immediately before paying it,
			// not round-wide: TA interleaves probe reservations into the
			// round, and a reservation settles the previous grant — a
			// round-wide grant would stop covering the later cursors the
			// moment the first object's probes are reserved, letting the
			// spend overshoot the budget by up to m−1 accesses.
			if err := ec.Reserve(1, 0); err != nil {
				return nil, err
			}
			e, ok := cu.Next()
			if !ok {
				continue
			}
			exhausted = false
			lasts[i] = e.Grade
			if sc.visit(e.Object) == 1 {
				// Eager random access is TA's defining move; each probe is
				// reserved at its exact (uncached) price.
				if err := ec.ReserveProbes(lists, e.Object); err != nil {
					return nil, err
				}
				gradesInto(buf, lists, e.Object)
				top.offer(gradedset.Entry{Object: e.Object, Grade: t.Apply(buf)})
			}
		}
		if exhausted {
			break
		}
		// Threshold: no unseen object can aggregate above t(lasts).
		if top.full() && top.kth().Grade >= t.Apply(lasts) {
			break
		}
	}
	return topKResults(top.entries, k), nil
}

// boundedTopK keeps the k best entries by the package tie-break.
type boundedTopK struct {
	k       int
	entries entryMinHeap
}

func (b *boundedTopK) full() bool { return len(b.entries) >= b.k }

// kth returns the current k-th best entry; call only when full.
func (b *boundedTopK) kth() gradedset.Entry { return b.entries[0] }

func (b *boundedTopK) offer(e gradedset.Entry) {
	if len(b.entries) < b.k {
		heap.Push(&b.entries, e)
		return
	}
	if entryBetter(e, b.entries[0]) {
		b.entries[0] = e
		heap.Fix(&b.entries, 0)
	}
}

// entryBetter mirrors the deterministic ordering of gradedset.TopK.
func entryBetter(a, c gradedset.Entry) bool {
	if a.Grade != c.Grade {
		return a.Grade > c.Grade
	}
	return a.Object < c.Object
}

// entryMinHeap keeps the worst of the kept entries at the root.
type entryMinHeap []gradedset.Entry

func (h entryMinHeap) Len() int            { return len(h) }
func (h entryMinHeap) Less(i, j int) bool  { return entryBetter(h[j], h[i]) }
func (h entryMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryMinHeap) Push(x interface{}) { *h = append(*h, x.(gradedset.Entry)) }
func (h *entryMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
