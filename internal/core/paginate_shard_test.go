package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

// drainPages collects the full page sequence of a paginator.
func drainPages(t *testing.T, p *Paginator, pageSize int) [][]Result {
	t.Helper()
	var pages [][]Result
	for {
		page, err := p.NextPage(pageSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			return pages
		}
		pages = append(pages, page)
	}
}

// TestShardedPaginatorMatchesUnsharded is the sharded-pagination
// equivalence invariant: paginating over partitioned universe slices
// must deliver the very same page sequence as the unsharded paginator —
// page boundaries included — on tie-free data, across arities, shard
// counts, worker caps, and page sizes, since per-shard top-r sets are
// prefixes of each shard's total order and the merge is canonical.
func TestShardedPaginatorMatchesUnsharded(t *testing.T) {
	for _, m := range []int{2, 3} {
		for _, shards := range []int{3, 5} {
			for _, par := range []int{1, 4} {
				for _, pageSize := range []int{1, 7, 64} {
					db := scoredb.Generator{N: 300, M: m, Seed: uint64(70 + m)}.MustGenerate()
					label := fmt.Sprintf("m=%d/P=%d/par=%d/page=%d", m, shards, par, pageSize)

					counted := subsys.CountAll(sourcesOf(db))
					ref := NewPaginator(NewExecContext(context.Background(), counted), A0{}, counted, agg.Min)
					want := drainPages(t, ref, pageSize)
					ref.Release()

					sp, err := NewShardedPaginator(context.Background(), A0{}, sourcesOf(db), agg.Min,
						ShardConfig{Shards: shards, Parallel: par})
					if err != nil {
						t.Fatal(err)
					}
					if !sp.Sharded() {
						t.Fatalf("%s: paginator did not shard", label)
					}
					got := drainPages(t, sp, pageSize)
					sp.Release()

					if len(got) != len(want) {
						t.Fatalf("%s: %d pages sharded, %d unsharded", label, len(got), len(want))
					}
					for pi := range want {
						if len(got[pi]) != len(want[pi]) {
							t.Fatalf("%s: page %d has %d results sharded, %d unsharded",
								label, pi, len(got[pi]), len(want[pi]))
						}
						for i := range want[pi] {
							if got[pi][i] != want[pi][i] {
								t.Errorf("%s: page %d result %d: sharded %v, unsharded %v",
									label, pi, i, got[pi][i], want[pi][i])
							}
						}
					}
				}
			}
		}
	}
}

// TestShardedPaginatorClampsAndDegenerates covers the edges: a shard
// count above N clamps, a count of one degenerates to the unsharded
// paginator, and an invalid page size is rejected.
func TestShardedPaginatorClampsAndDegenerates(t *testing.T) {
	db := scoredb.Generator{N: 40, M: 2, Seed: 77}.MustGenerate()
	sp, err := NewShardedPaginator(context.Background(), A0{}, sourcesOf(db), agg.Min,
		ShardConfig{Shards: 1000, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	pages := drainPages(t, sp, 7)
	total := 0
	for _, p := range pages {
		total += len(p)
	}
	if total != 40 {
		t.Errorf("clamped pagination delivered %d results, want 40", total)
	}
	sp.Release()

	single, err := NewShardedPaginator(context.Background(), A0{}, sourcesOf(db), agg.Min,
		ShardConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if single.Sharded() {
		t.Error("Shards=1 did not degenerate to the unsharded paginator")
	}
	if _, err := single.NextPage(0); !errors.Is(err, ErrBadK) {
		t.Errorf("NextPage(0) = %v, want ErrBadK", err)
	}
	single.Release()
}

// TestShardedPaginationBudgetIsCumulative: one budget pool spans every
// shard and every page; the cumulative spend never overshoots.
func TestShardedPaginationBudgetIsCumulative(t *testing.T) {
	db := scoredb.Generator{N: 2048, M: 2, Seed: 78}.MustGenerate()
	const budget = 3000.0
	sp, err := NewShardedPaginator(context.Background(), A0{}, sourcesOf(db), agg.Min,
		ShardConfig{Shards: 4, Parallel: 1, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Release()
	pages := 0
	for {
		page, err := sp.NextPage(16)
		if errors.Is(err, ErrBudgetExceeded) {
			if got := float64(sp.Cost().Sum()); got > budget {
				t.Errorf("cumulative spend %v over budget %v", got, budget)
			}
			if pages == 0 {
				t.Error("budget exhausted before any page")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			t.Fatal("pagination drained the database without hitting the budget")
		}
		pages++
	}
}

// TestShardedPaginationCancellation: canceling the request context stops
// the next page promptly with the context error.
func TestShardedPaginationCancellation(t *testing.T) {
	db := scoredb.Generator{N: 512, M: 2, Seed: 79}.MustGenerate()
	ctx, cancel := context.WithCancel(context.Background())
	sp, err := NewShardedPaginator(ctx, A0{}, sourcesOf(db), agg.Min,
		ShardConfig{Shards: 4, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Release()
	if _, err := sp.NextPage(5); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := sp.NextPage(5); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel NextPage = %v, want context.Canceled", err)
	}
}
