package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/scoredb"
	"fuzzydb/internal/subsys"
)

func TestNaiveCosts(t *testing.T) {
	db := scoredb.Generator{N: 30, M: 3, Seed: 31}.MustGenerate()
	_, c := run(t, NaiveSorted{}, db, agg.Min, 5)
	if c.Sorted != 90 || c.Random != 0 {
		t.Errorf("naive-sorted cost = %v, want S=90 R=0", c)
	}
	_, c = run(t, NaiveRandom{}, db, agg.Min, 5)
	if c.Sorted != 0 || c.Random != 90 {
		t.Errorf("naive-random cost = %v, want S=0 R=90", c)
	}
}

func TestB0CostIsMK(t *testing.T) {
	// Remark 6.1: B₀ costs mk sorted accesses and nothing else,
	// independent of N.
	for _, n := range []int{50, 500, 5000} {
		db := scoredb.Generator{N: n, M: 3, Seed: 32}.MustGenerate()
		_, c := run(t, B0{}, db, agg.Max, 10)
		if c.Sorted != 30 || c.Random != 0 {
			t.Errorf("N=%d: B0 cost = %v, want S=30 R=0", n, c)
		}
	}
}

func TestA0CostSublinearVsNaive(t *testing.T) {
	// Not a statistical test, just a smoke check on one large instance:
	// A₀ must touch far fewer elements than the naive baseline.
	db := scoredb.Generator{N: 20000, M: 2, Seed: 33}.MustGenerate()
	_, cA0 := run(t, A0{}, db, agg.Min, 10)
	_, cNaive := run(t, NaiveSorted{}, db, agg.Min, 10)
	if cA0.Sum() >= cNaive.Sum()/4 {
		t.Errorf("A0 cost %v vs naive %v: not clearly sublinear", cA0, cNaive)
	}
}

func TestA0PrimeSavesRandomAccesses(t *testing.T) {
	// A₀′ never performs more random accesses than A₀ on the same
	// skeleton (it probes a subset of the objects A₀ probes).
	f := func(seed uint64) bool {
		db, err := (scoredb.Generator{N: 200 + int(seed%200), M: 3, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		_, cA0 := run(t, A0{}, db, agg.Min, 5)
		_, cPrime := run(t, A0Prime{}, db, agg.Min, 5)
		if cPrime.Sorted != cA0.Sorted {
			// Same sorted phase (both run to the same uniform depth).
			return false
		}
		return cPrime.Random <= cA0.Random
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTANeverScansDeeperThanA0(t *testing.T) {
	f := func(seed uint64) bool {
		db, err := (scoredb.Generator{N: 100 + int(seed%400), M: 2, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		_, cA0 := run(t, A0{}, db, agg.Min, 5)
		_, cTA := run(t, TA{}, db, agg.Min, 5)
		return cTA.Sorted <= cA0.Sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUllmanConstantCostOnBoundedGrades(t *testing.T) {
	// Section 9: if list 1's grades are ≤ 0.9 and list 2's are uniform,
	// Ullman's algorithm stops in expected ≤ 10 iterations for k = 1. We
	// assert a generous envelope over several seeds.
	total := 0
	const trials = 40
	for seed := uint64(0); seed < trials; seed++ {
		lists := []*gradedset.List{
			(scoredb.Generator{N: 5000, M: 1, Law: scoredb.BoundedAbove{Max: 0.9}, Seed: seed}).MustGenerate().List(0),
			(scoredb.Generator{N: 5000, M: 1, Law: scoredb.Uniform{}, Seed: seed + 1000}).MustGenerate().List(0),
		}
		db, err := scoredb.New(lists)
		if err != nil {
			t.Fatal(err)
		}
		_, c := run(t, Ullman{}, db, agg.Min, 1)
		total += c.Sorted
	}
	mean := float64(total) / trials
	if mean > 40 {
		t.Errorf("mean sorted cost %v; expected O(10), far below N", mean)
	}
}

func TestHardQueryCostLinear(t *testing.T) {
	// Theorem 7.1: on Q ∧ ¬Q every correct algorithm needs Ω(N) accesses.
	for _, n := range []int{100, 400, 1600} {
		db, err := scoredb.HardQueryPair(n, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{A0{}, TA{}} {
			_, c := run(t, alg, db, agg.Min, 1)
			if c.Sum() < n/2 {
				t.Errorf("%s on hard query N=%d: cost %v below N/2", alg.Name(), n, c)
			}
		}
	}
}

func TestFilterMatchesExhaustiveScan(t *testing.T) {
	f := func(seed uint64) bool {
		laws := []scoredb.GradeLaw{scoredb.Uniform{}, scoredb.Discrete{Levels: 5}}
		db, err := (scoredb.Generator{N: 30 + int(seed%50), M: 2 + int(seed%2), Law: laws[seed%2], Seed: seed}).Generate()
		if err != nil {
			return false
		}
		fns := []agg.Func{agg.Min, agg.AlgebraicProduct, agg.ArithmeticMean}
		fn := fns[seed%3]
		theta := float64(seed%11) / 10
		lists := subsys.CountAll(sourcesOf(db))
		got, err := Filter(Background(), lists, fn, theta)
		if err != nil {
			return false
		}
		// Exhaustive reference.
		var want []gradedset.Entry
		for obj := 0; obj < db.N(); obj++ {
			gs, err := db.Grades(obj)
			if err != nil {
				return false
			}
			if g := fn.Apply(gs); g >= theta {
				want = append(want, gradedset.Entry{Object: obj, Grade: g})
			}
		}
		if len(got) != len(want) {
			t.Logf("seed=%d fn=%s theta=%v: got %d results, want %d", seed, fn.Name(), theta, len(got), len(want))
			return false
		}
		return gradedset.SameGradeMultiset(entriesOf(got), want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFilterValidation(t *testing.T) {
	db := scoredb.Generator{N: 10, M: 2, Seed: 41}.MustGenerate()
	lists := subsys.CountAll(sourcesOf(db))
	if _, err := Filter(Background(), lists, agg.Min, -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Filter(Background(), lists, agg.Min, 1.1); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := Filter(Background(), nil, agg.Min, 0.5); err == nil {
		t.Error("empty lists accepted")
	}
}

func TestFilterIsCheaperThanDrainForHighThresholds(t *testing.T) {
	db := scoredb.Generator{N: 5000, M: 2, Seed: 42}.MustGenerate()
	lists := subsys.CountAll(sourcesOf(db))
	if _, err := Filter(Background(), lists, agg.Min, 0.99); err != nil {
		t.Fatal(err)
	}
	if c := subsys.TotalCost(lists); c.Sum() >= 2000 {
		t.Errorf("filter at θ=0.99 cost %v; expected a small prefix scan", c)
	}
}

func TestPaginatorMatchesWideTopK(t *testing.T) {
	f := func(seed uint64) bool {
		db, err := (scoredb.Generator{N: 30 + int(seed%40), M: 2, Seed: seed}).Generate()
		if err != nil {
			return false
		}
		want, _ := run(t, NaiveSorted{}, db, agg.Min, 15)
		lists := subsys.CountAll(sourcesOf(db))
		p := NewPaginator(Background(), A0{}, lists, agg.Min)
		var all []Result
		for len(all) < 15 {
			page, err := p.NextPage(5)
			if err != nil {
				return false
			}
			if len(page) == 0 {
				break
			}
			all = append(all, page...)
		}
		if p.Delivered() != len(all) {
			return false
		}
		// No duplicates across pages.
		seen := make(map[int]bool)
		for _, r := range all {
			if seen[r.Object] {
				return false
			}
			seen[r.Object] = true
		}
		return gradedset.SameGradeMultiset(entriesOf(all[:15]), entriesOf(want), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPaginatorCostIsIncremental(t *testing.T) {
	// Continuing where we left off: two pages of k over the same counted
	// lists cost no more than one run of 2k from scratch.
	db := scoredb.Generator{N: 5000, M: 2, Seed: 43}.MustGenerate()

	lists := subsys.CountAll(sourcesOf(db))
	p := NewPaginator(Background(), A0{}, lists, agg.Min)
	if _, err := p.NextPage(10); err != nil {
		t.Fatal(err)
	}
	costAfterFirst := subsys.TotalCost(lists).Sum()
	if _, err := p.NextPage(10); err != nil {
		t.Fatal(err)
	}
	costAfterSecond := subsys.TotalCost(lists).Sum()

	// Reference points: one run of k=10 and one of k=20, each from
	// scratch (what restarting without the cache would cost).
	fresh10 := subsys.CountAll(sourcesOf(db))
	if _, err := (A0{}).TopK(Background(), fresh10, agg.Min, 10); err != nil {
		t.Fatal(err)
	}
	scratch10 := subsys.TotalCost(fresh10).Sum()
	fresh20 := subsys.CountAll(sourcesOf(db))
	if _, err := (A0{}).TopK(Background(), fresh20, agg.Min, 20); err != nil {
		t.Fatal(err)
	}
	scratch20 := subsys.TotalCost(fresh20).Sum()

	// Resuming must beat starting over (the sum of independent runs). It
	// may exceed the single k=20 run by a little — objects probed eagerly
	// for page one can later surface in both prefixes — but only a little.
	if costAfterSecond >= scratch10+scratch20 {
		t.Errorf("paginated cost %d does not beat restart cost %d+%d",
			costAfterSecond, scratch10, scratch20)
	}
	if costAfterSecond > scratch20+scratch10/2 {
		t.Errorf("paginated cost %d far above from-scratch k=20 cost %d", costAfterSecond, scratch20)
	}
	if costAfterFirst >= costAfterSecond {
		t.Errorf("second page cost nothing: %d then %d", costAfterFirst, costAfterSecond)
	}
}

func TestPaginatorEdges(t *testing.T) {
	db := scoredb.Generator{N: 7, M: 2, Seed: 44}.MustGenerate()
	lists := subsys.CountAll(sourcesOf(db))
	p := NewPaginator(Background(), A0{}, lists, agg.Min)
	if _, err := p.NextPage(0); err == nil {
		t.Error("page size 0 accepted")
	}
	page, err := p.NextPage(10) // larger than N
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 7 {
		t.Errorf("page = %d results, want all 7", len(page))
	}
	page, err = p.NextPage(3) // past the end
	if err != nil || page != nil {
		t.Errorf("exhausted paginator returned %v, %v", page, err)
	}
}

func TestEvaluateReportsCost(t *testing.T) {
	db := scoredb.Generator{N: 100, M: 2, Seed: 45}.MustGenerate()
	res, c, err := Evaluate(context.Background(), A0{}, sourcesOf(db), agg.Min, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if c.Sorted <= 0 {
		t.Errorf("cost = %v; expected sorted accesses", c)
	}
	if c.Sum() > 2*100 {
		t.Errorf("cost %v exceeds the trivial bound mN", c)
	}
}

// Sanity for the probabilistic claim of Theorem 5.3 at small scale: the
// sorted depth per list stays near √(Nk) for m=2. This is a loose bound
// (c=6) so the test is stable across seeds.
func TestA0SortedDepthNearSqrtNK(t *testing.T) {
	const n, k = 10000, 5
	for seed := uint64(0); seed < 10; seed++ {
		db := scoredb.Generator{N: n, M: 2, Seed: seed}.MustGenerate()
		_, c := run(t, A0{}, db, agg.Min, k)
		perList := float64(c.Sorted) / 2
		bound := 6 * math.Sqrt(float64(n*k))
		if perList > bound {
			t.Errorf("seed %d: depth %v exceeds 6√(Nk)=%v", seed, perList, bound)
		}
	}
}
