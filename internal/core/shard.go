package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fuzzydb/internal/agg"
	"fuzzydb/internal/cost"
	"fuzzydb/internal/gradedset"
	"fuzzydb/internal/subsys"
)

// ShardConfig configures a sharded evaluation (see EvaluateSharded): the
// dense universe {0,…,N−1} is split into Shards contiguous ranges, the
// algorithm runs once per shard over re-ranked shard views of the
// sources, and the per-shard top answers are merged into the global
// top k under the package tie policy (descending grade, ascending id).
type ShardConfig struct {
	// Shards is the number of universe partitions. Values ≤ 1 (and
	// non-exact algorithms, whose reported grades are not comparable
	// across shards) evaluate unsharded; values above N are clamped to N.
	Shards int
	// Parallel caps the number of shard workers running at once: 0 means
	// GOMAXPROCS, 1 runs the shards sequentially in index order — the
	// deterministic mode, where the threshold merge stops later shards
	// against the exact results of earlier ones and the per-shard cost
	// tallies are reproducible bit for bit. Each worker evaluates its
	// shard serially inside unless Prefetch is set (the executor-level
	// overlap of WithParallelism applies to unsharded evaluation;
	// sharding fans out across shards instead).
	Parallel int
	// Budget bounds the weighted middleware cost of the whole evaluation
	// across all shards, through a shared reservation pool: every shard
	// reserves each step's worst-case price from the same pool before
	// issuing accesses, so the global spend never overshoots the limit
	// (the *BudgetError semantics of WithAccessBudget, globally).
	// Non-positive means unlimited.
	Budget float64
	// Model prices sorted and random accesses for budget accounting
	// (zero value means cost.Unweighted).
	Model cost.Model
	// Prefetch pipelines each shard's evaluation: instead of the serial
	// executor, every shard runs under its own Pipelined executor whose
	// background prefetch pipelines stream the shard's re-ranked views
	// (batched Entries spans into the per-list spool, uncounted —
	// pay-on-delivery holds under sharding, so the Section 5 tallies are
	// unchanged) and whose random-access gather overlaps across lists
	// and objects. The gather width and the per-list adaptive depth cap
	// are budgeted globally: the totals (PrefetchWidth, DefaultPrefetchCap
	// per list) are divided by the number of shard workers running at
	// once, so P shards × m lists never multiply the goroutine or buffer
	// count beyond the unsharded pipelined footprint. Shard fencing
	// drains that shard's pipelines (Counted.Fence closes them) without
	// touching the shared budget pool — prefetched-but-undelivered ranks
	// were never reserved or paid.
	Prefetch bool
	// PrefetchDepth pins the per-list prefetch batch depth (> 0) or
	// selects the adaptive policy (0: start at 1, double on stall,
	// shrink when the algorithm falls behind). Meaningful only with
	// Prefetch. A pinned depth is part of the global budget too: like
	// the adaptive cap it is divided across the shards holding pipeline
	// buffers at once (floored at 1), so pinning a deep batch on a
	// many-shard evaluation cannot multiply the buffer footprint.
	PrefetchDepth int
	// PrefetchWidth is the total random-access gather budget shared by
	// the concurrently running shards (0 means the Pipelined default);
	// each shard worker gets an equal slice, floored at 1.
	PrefetchWidth int
	// Plan selects how the universe is cut into shard ranges: the
	// zero value ShardPlanEven splits by object count (the historical
	// behavior, byte for byte), ShardPlanWeighted cuts at quantiles of
	// the predicted access work derived from Sketches. Weighted planning
	// degenerates to even when no usable sketch is supplied.
	Plan ShardPlanPolicy
	// Sketches are the per-list grade-distribution sketches the weighted
	// planner consumes, in source order; nil entries (and sketches over
	// the wrong universe) are tolerated — a list without a sketch is
	// assumed indifferent. Ignored under ShardPlanEven.
	Sketches []*subsys.Sketch
	// Steal lets a shard worker that runs out of planned work split the
	// remaining range of the most-behind running shard and evaluate the
	// ceded tail itself (see stealController). Engages only when more
	// than one worker runs and the algorithm supports threshold fencing
	// (the same exactness property that makes a truncated stream safe);
	// otherwise it is silently inert. Stealing changes which worker does
	// the work, never the merged answers — but it does perturb per-shard
	// tallies, so deterministic-cost callers leave it off.
	Steal bool
}

// pipelineExecutor builds the per-shard pipelined executor under the
// global resource budget: the total gather width is split across the
// widthShare shards whose gathers can be in flight at once (the worker
// cap), and the per-list readahead depth — the adaptive cap AND a
// pinned PrefetchDepth alike — across the depthShare shards whose
// pipelines hold buffers at once (the worker cap for one-shot
// evaluation, where a finished shard releases its pipelines before the
// next starts; the full shard count for the paginator, whose pipelines
// stay alive across pages on every shard simultaneously). Everything
// floors at 1, so the whole sharded evaluation never holds more probes
// in flight or more speculative ranks buffered than one unsharded
// pipelined evaluation would.
func (cfg ShardConfig) pipelineExecutor(widthShare, depthShare int) Executor {
	if widthShare < 1 {
		widthShare = 1
	}
	if depthShare < 1 {
		depthShare = 1
	}
	width := cfg.PrefetchWidth
	if width <= 0 {
		width = defaultGatherWidth
	}
	if width = width / widthShare; width < 1 {
		width = 1
	}
	maxDepth := subsys.DefaultPrefetchCap / depthShare
	if maxDepth < 1 {
		maxDepth = 1
	}
	depth := cfg.PrefetchDepth
	if depth > 0 {
		if depth = depth / depthShare; depth < 1 {
			depth = 1
		}
	}
	return Pipelined{P: width, Depth: depth, MaxDepth: maxDepth}
}

// ShardReport is the outcome of a sharded evaluation.
type ShardReport struct {
	// Results is the global top k in descending grade order (ties by
	// ascending object id). Nil when the evaluation stopped early.
	Results []Result
	// Cost is the total Section 5 access cost summed over shards.
	Cost cost.Cost
	// PerList breaks Cost down by source (atom), summed across shards.
	PerList []cost.Cost
	// PerShard breaks Cost down by shard.
	PerShard []cost.Cost
	// Shards is the number of shards actually planned (after clamping);
	// 1 means the evaluation degenerated to the unsharded path.
	Shards int
	// Prefetch aggregates the pipeline stats across every shard's lists
	// when the evaluation ran with cfg.Prefetch and the pipelines
	// engaged: MaxDepth is the deepest refill any shard used, Stalls and
	// Batches sum over shards and lists. Nil otherwise.
	Prefetch *subsys.PipelineStats
	// Details is the planning/measurement breakdown per planned shard:
	// the range the planner drew, its predicted work (weighted plan
	// only), the model-weighted cost actually spent inside it (stolen
	// sub-ranges included — cost follows the plan, not the worker), and
	// how many times it was robbed. Nil on the degenerate unsharded
	// path.
	Details []ShardDetail
	// Stolen is the total number of honored steal splits.
	Stolen int
}

// ShardDetail is one planned shard's entry in ShardReport.Details.
type ShardDetail struct {
	// Range is the planned id range.
	Range subsys.ShardRange
	// Planned is the planner's predicted work for the range, in the
	// work proxy's unitless scale; zero under the even plan.
	Planned float64
	// Actual is the model-weighted access cost spent evaluating the
	// range, including any stolen sub-ranges.
	Actual float64
	// Steals counts the splits honored by this shard's tasks.
	Steals int
}

// EvaluateSharded finds the top k answers of F_t(srcs…) by partitioned
// evaluation: it plans cfg.Shards contiguous ranges of the universe,
// runs alg once per shard over re-ranked shard views (each under its
// own ExecContext — serial inside by default, or a per-shard Pipelined
// executor when cfg.Prefetch is set, with the gather width and pipeline
// depth budgeted globally across the shard workers — shards fanned out
// on up to cfg.Parallel workers), and merges the per-shard answers into
// the global top k.
//
// Equivalence contract (pinned by TestShardedVsUnsharded): the merged
// answers carry the same grade sequence as the unsharded evaluation of
// alg, and the very same objects in the same order everywhere above the
// k-th grade. Within a tie class AT the k-th grade both strategies
// return a correct maximal choice (Section 4) over their own candidate
// sets — the sharded pick is canonical (smallest ids) and deterministic,
// and coincides with the unsharded pick byte for byte whenever the k-th
// grade is untied.
//
// The merge is threshold-aware: finished shards publish their exact
// answers to a shared scoreboard, and a running shard whose threshold
// value — the aggregate t(g̲₁,…,g̲ₘ) of the last grades it has seen under
// sorted access, an upper bound on every object it has not yet seen for
// monotone t — falls strictly below the current global k-th grade is
// fenced: its sorted streams run dry and the algorithm completes over
// the objects already seen. Fencing never changes the merged answers
// (every unseen object of a fenced shard is strictly below the final
// k-th grade), it only saves accesses; on skewed data, shards that
// cannot contribute stop after a handful of rounds, so the sharded
// evaluation does less total access work than the unsharded one.
// Fencing engages for the algorithms whose completion phase computes
// exact grades for every seen object (A0, A0Adaptive, TA) under a
// monotone t; other exact algorithms simply run each shard to its own
// natural stop.
//
// For cfg.Shards ≤ 1 — and for non-exact algorithms such as NRA, whose
// reported lower-bound grades cannot be merged across shards — the
// evaluation degenerates to the plain unsharded path, byte for byte.
//
// On cancellation or budget exhaustion every shard worker stops
// promptly (serial execution polls between accesses; a pipelined shard
// abandons even a wedged in-flight batch and closes its pipelines; the
// shared budget pool fails all further reservations once any shard
// trips it, and each tripped shard's reservation failure also closes
// that shard's prefetch pipelines), the workers are joined, and the
// report carries the partial cost with nil results and the first error
// in shard order.
func EvaluateSharded(ctx context.Context, alg Algorithm, srcs []subsys.Source, t agg.Func, k int, cfg ShardConfig) (*ShardReport, error) {
	model := cost.Unweighted
	if cfg.Model.Valid() {
		model = cfg.Model
	}
	if len(srcs) == 0 {
		return &ShardReport{Shards: 1}, ErrNoLists
	}
	n := srcs[0].Len()
	p := cfg.Shards
	if p > n {
		p = n
	}
	if p <= 1 || !alg.Exact() {
		return evaluateUnsharded(ctx, alg, srcs, t, k, cfg, model)
	}
	// The per-shard runs see only their slice, so the global argument
	// contract must be enforced here, exactly as checkArgs states it.
	for i, s := range srcs {
		if s.Len() != n {
			return &ShardReport{Shards: 1}, fmt.Errorf("%w: list %d has %d objects, want %d", ErrArity, i, s.Len(), n)
		}
	}
	if k < 1 || k > n {
		return &ShardReport{Shards: 1}, fmt.Errorf("%w: k=%d, N=%d", ErrBadK, k, n)
	}

	plan := subsys.PlanShards(n, p)
	var planned []float64
	if cfg.Plan == ShardPlanWeighted {
		plan, planned = PlanShardsWeighted(n, p, cfg.Sketches, t)
	}
	var board *shardBoard
	if t.Monotone() && fenceSafe(alg) {
		board = &shardBoard{top: boundedTopK{k: k}}
	}
	var pool *budgetPool
	if cfg.Budget > 0 {
		pool = &budgetPool{limit: cfg.Budget}
	}

	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	var exec Executor
	if cfg.Prefetch {
		// A finished shard releases its pipelines before its worker takes
		// the next one, so at most `workers` shards hold buffers at once.
		exec = cfg.pipelineExecutor(workers, workers)
	}

	// taskOut attributes one evaluated range's outcome to the planned
	// shard it descends from; without stealing there is exactly one task
	// per planned shard.
	type taskOut struct {
		origin int
		out    shardOut
	}
	var touts []taskOut
	var ctrl *stealController
	if cfg.Steal && workers > 1 && board != nil {
		// Work-stealing fan-out: workers drain a dynamic task queue that
		// starts as the plan and grows as running shards cede tails.
		ctrl = newStealController(plan)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					tk, ok := ctrl.next()
					if !ok {
						return
					}
					st := &stealState{task: tk}
					out := evalShard(ctx, alg, srcs, t, k, tk.r, model, pool, board, exec, ctrl, st)
					if out.err == nil {
						board.publish(out.res)
					}
					ctrl.finish(st)
					mu.Lock()
					touts = append(touts, taskOut{origin: tk.origin, out: out})
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	} else {
		outs := make([]shardOut, len(plan))
		runShard := func(i int) {
			outs[i] = evalShard(ctx, alg, srcs, t, k, plan[i], model, pool, board, exec, nil, nil)
			if board != nil && outs[i].err == nil {
				board.publish(outs[i].res)
			}
		}
		if workers <= 1 {
			// Sequential mode: shards run in index order, so the threshold
			// scoreboard a shard stops against is a deterministic function of
			// the data — and so are the per-shard tallies.
			for i := range plan {
				runShard(i)
			}
		} else {
			runIndexed(workers, len(plan), runShard)
		}
		touts = make([]taskOut, len(outs))
		for i := range outs {
			touts[i] = taskOut{origin: i, out: outs[i]}
		}
	}

	rep := &ShardReport{
		PerList:  make([]cost.Cost, len(srcs)),
		PerShard: make([]cost.Cost, len(plan)),
		Details:  make([]ShardDetail, len(plan)),
		Shards:   len(plan),
	}
	for i, r := range plan {
		rep.Details[i].Range = r
		if planned != nil {
			rep.Details[i].Planned = planned[i]
		}
	}
	var firstErr error
	firstOrigin := len(plan)
	total := 0
	for _, to := range touts {
		rep.PerShard[to.origin] = rep.PerShard[to.origin].Add(to.out.total)
		rep.Cost = rep.Cost.Add(to.out.total)
		for j, c := range to.out.per {
			rep.PerList[j] = rep.PerList[j].Add(c)
		}
		if to.out.piped {
			if rep.Prefetch == nil {
				rep.Prefetch = &subsys.PipelineStats{}
			}
			*rep.Prefetch = rep.Prefetch.Add(to.out.pstats)
		}
		if to.out.err != nil && to.origin < firstOrigin {
			firstErr = to.out.err
			firstOrigin = to.origin
		}
		total += len(to.out.res)
	}
	for i := range rep.Details {
		rep.Details[i].Actual = model.Of(rep.PerShard[i])
	}
	if ctrl != nil {
		for i := range rep.Details {
			rep.Details[i].Steals = ctrl.steals[i]
		}
		rep.Stolen = ctrl.stolen
	}
	if firstErr != nil {
		return rep, firstErr
	}
	entries := make([]gradedset.Entry, 0, total)
	for _, to := range touts {
		for _, r := range to.out.res {
			entries = append(entries, gradedset.Entry{Object: r.Object, Grade: r.Grade})
		}
	}
	top := gradedset.TopK(entries, k)
	rep.Results = make([]Result, len(top))
	for i, e := range top {
		rep.Results[i] = Result{Object: e.Object, Grade: e.Grade}
	}
	return rep, nil
}

// runIndexed runs f(0..n-1) on the given number of workers and joins
// them all: the blocking shard fan-out, shared by EvaluateSharded and
// the sharded paginator. Workers poll their serial contexts between
// accesses, so cancellation is honored inside f, not here.
func runIndexed(workers, n int, f func(int)) {
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// shardOut is one shard worker's outcome.
type shardOut struct {
	res    []Result // global ids, exact grades
	per    []cost.Cost
	total  cost.Cost
	pstats subsys.PipelineStats // prefetch-pipeline stats summed over lists
	piped  bool                 // pipelines engaged; pstats is meaningful
	err    error
}

// evalShard runs one shard of a partitioned evaluation: re-ranked views
// over the range, a fresh ExecContext (wired to the shared budget pool,
// the threshold scoreboard, and the per-shard pipelined executor when
// configured), the algorithm at k clamped to the shard size, and
// local→global id translation of the answers. An empty range evaluates
// to nothing at zero cost.
//
// Under work stealing (ctrl and st non-nil) the run is additionally a
// steal victim: it registers its views with the controller, honors
// split requests between sorted rounds (truncating its views, so its
// streams run dry over the ceded tail — safe for exactly the fenceSafe
// algorithms, which is why the caller gates stealing on the board), and
// filters its answers to the final retained range before returning,
// since the ceded ids are re-evaluated exactly by a thief.
func evalShard(ctx context.Context, alg Algorithm, srcs []subsys.Source, t agg.Func, k int, r subsys.ShardRange, model cost.Model, pool *budgetPool, board *shardBoard, exec Executor, ctrl *stealController, st *stealState) shardOut {
	var out shardOut
	if r.Len() == 0 {
		return out
	}
	shards := subsys.ShardSources(srcs, r)
	counted := subsys.CountAll(shards)
	opts := []EvalOption{WithCostModel(model)}
	if exec != nil {
		opts = append(opts, WithExecutor(exec))
	}
	ec := NewExecContext(ctx, counted, opts...)
	if pool != nil {
		ec.budget = pool.limit
		ec.pool = pool
	}
	if board != nil {
		ec.stop = board.stopFunc(t, len(srcs))
	}
	if ctrl != nil && st != nil {
		st.views = subsys.ViewsOf(shards)
		st.cut = r.Len()
		ctrl.begin(st)
		ec.onStage = func() {
			// A fenced shard (stop consumed itself) finishes in a few
			// rounds over what it has seen: nothing worth ceding.
			if ec.stop != nil {
				ctrl.honor(st)
			}
		}
	}
	ks := k
	if ks > r.Len() {
		ks = r.Len()
	}
	res, err := alg.TopK(ec, counted, t, ks)
	if ctrl != nil && st != nil {
		if final := ctrl.freeze(st); final < r.Len() && err == nil {
			// Drop the answers in the ceded tail: a thief owns [final,
			// r.Len()) now, and whatever this run materialized there early
			// would duplicate the thief's exact results in the merge (and
			// inflate the scoreboard's k-th-grade bound, which has no
			// dedup).
			kept := res[:0]
			for _, rr := range res {
				if rr.Object < final {
					kept = append(kept, rr)
				}
			}
			res = kept
		}
	}
	if err == nil {
		// Final net for fallible sources (see Evaluate): a failed list
		// reads as exhausted, so the algorithm may return cleanly over
		// truncated data — surface the typed error instead, before the
		// shard can publish or merge those results. The budget pool is
		// still settled below, and the lists released: the failure was
		// orderly (no accesses in flight), unlike an abandonment.
		if serr := ec.SourceFailure(); serr != nil {
			res, err = nil, serr
		}
	}
	if pool != nil {
		pool.finish(ec)
	}
	if ec.Abandoned() {
		// A pipelined shard canceled with accesses in flight: report the
		// last quiescent tallies and leave the shard state to the GC —
		// abandoned gather workers may still read the raw sources, so the
		// pooled memos must not be recycled.
		out.total = ec.SafeCost()
		out.err = err
		return out
	}
	out.total = subsys.TotalCost(counted)
	out.per = make([]cost.Cost, len(counted))
	for j, c := range counted {
		out.per[j] = c.Cost()
	}
	subsys.ReleaseAll(counted)
	for _, c := range counted {
		if s, ok := c.PrefetchStats(); ok {
			out.pstats = out.pstats.Add(s)
			out.piped = true
		}
	}
	if err != nil {
		out.err = err
		return out
	}
	out.res = make([]Result, len(res))
	for j, rr := range res {
		out.res[j] = Result{Object: rr.Object + r.Lo, Grade: rr.Grade}
	}
	return out
}

// evaluateUnsharded is the degenerate path of EvaluateSharded: the plain
// single-evaluation pipeline (identical to Evaluate), packaged as a
// one-shard report. cfg.Parallel keeps its executor-level meaning here.
func evaluateUnsharded(ctx context.Context, alg Algorithm, srcs []subsys.Source, t agg.Func, k int, cfg ShardConfig, model cost.Model) (*ShardReport, error) {
	opts := []EvalOption{WithCostModel(model)}
	if cfg.Prefetch {
		// One "shard": the whole budget in one executor.
		opts = append(opts, WithExecutor(cfg.pipelineExecutor(1, 1)))
	} else if cfg.Parallel > 1 {
		opts = append(opts, WithExecutor(Concurrent{P: cfg.Parallel}))
	}
	if cfg.Budget > 0 {
		opts = append(opts, WithAccessBudget(cfg.Budget))
	}
	counted := subsys.CountAll(srcs)
	ec := NewExecContext(ctx, counted, opts...)
	res, err := alg.TopK(ec, counted, t, k)
	if err == nil {
		// Final net for fallible sources, as in Evaluate.
		if serr := ec.SourceFailure(); serr != nil {
			res, err = nil, serr
		}
	}
	rep := &ShardReport{Shards: 1}
	if ec.Abandoned() {
		rep.Cost = ec.SafeCost()
		rep.PerShard = []cost.Cost{rep.Cost}
		return rep, err
	}
	rep.Cost = subsys.TotalCost(counted)
	rep.PerShard = []cost.Cost{rep.Cost}
	rep.PerList = make([]cost.Cost, len(counted))
	for j, c := range counted {
		rep.PerList[j] = c.Cost()
	}
	subsys.ReleaseAll(counted)
	for _, c := range counted {
		if s, ok := c.PrefetchStats(); ok {
			if rep.Prefetch == nil {
				rep.Prefetch = &subsys.PipelineStats{}
			}
			*rep.Prefetch = rep.Prefetch.Add(s)
		}
	}
	if err != nil {
		return rep, err
	}
	rep.Results = res
	return rep, nil
}

// fenceSafe reports whether the algorithm tolerates a threshold fence:
// its sorted loop treats fenced cursors as exhausted and its completion
// phase computes exact grades for every object seen so far. A0 and
// A0Adaptive complete every seen object by random access; TA scores
// eagerly on first sight. A0Prime is excluded (its candidate pruning
// needs the full k matches), FilterFirst is excluded (a truncated drive
// scan would drop perfect matches), B0 and the naive algorithms consume
// in one batch before any threshold exists, and OrderStat's inner runs
// use subset arity the threshold check cannot price.
func fenceSafe(alg Algorithm) bool {
	switch alg.(type) {
	case A0, A0Adaptive, TA:
		return true
	}
	return false
}

// shardBoard is the shared scoreboard of a sharded evaluation: finished
// shards publish their exact answers, and running shards poll the
// resulting global k-th grade as their fencing bound. The bound is
// monotone non-decreasing and always at most the final global k-th
// grade, which is what makes fencing on a stale read safe — a stale
// bound is merely conservative.
type shardBoard struct {
	mu   sync.Mutex
	top  boundedTopK
	full atomic.Bool
	bits atomic.Uint64 // Float64bits of the current k-th grade
}

// publish merges one shard's exact answers into the scoreboard.
func (b *shardBoard) publish(res []Result) {
	b.mu.Lock()
	for _, r := range res {
		b.top.offer(gradedset.Entry{Object: r.Object, Grade: r.Grade})
	}
	if b.top.full() {
		b.bits.Store(math.Float64bits(b.top.kth().Grade))
		b.full.Store(true)
	}
	b.mu.Unlock()
}

// bound returns the current global k-th grade, once k exact answers
// have been published.
func (b *shardBoard) bound() (float64, bool) {
	if !b.full.Load() {
		return 0, false
	}
	return math.Float64frombits(b.bits.Load()), true
}

// stopFunc builds the per-shard threshold stop-check: fence when the
// aggregate of the shard's last-seen sorted grades — an upper bound on
// every object the shard has not yet seen, for monotone t — falls
// strictly below the global k-th grade. Strictly: an unseen object tied
// with the k-th grade could still belong to the top k under the id
// tie-break, so equality must keep scanning.
func (b *shardBoard) stopFunc(t agg.Func, m int) func([]*subsys.Cursor) bool {
	buf := make([]float64, m)
	return func(cursors []*subsys.Cursor) bool {
		if len(cursors) != m {
			return false
		}
		bound, ok := b.bound()
		if !ok {
			return false
		}
		for i, cu := range cursors {
			buf[i] = cu.LastGrade()
		}
		return t.Apply(buf) < bound
	}
}

// budgetPool is the shared access-budget ledger of a sharded
// evaluation. Each shard synchronizes its own actual weighted spend
// into the pool and holds at most one outstanding worst-case
// reservation (steps within a shard are sequential, so reserving a new
// step settles the previous one). The invariant committed + outstanding
// ≤ limit holds at every grant, and every access is covered by a
// reservation, so the global spend can never overshoot the limit.
type budgetPool struct {
	mu          sync.Mutex
	limit       float64
	committed   float64 // synchronized actual spend across shards
	outstanding float64 // sum of in-flight worst-case reservations
	broke       bool    // a reservation failed; fail all further ones
}

// reserve settles ec's previous step (commit actual spend, release its
// reservation) and grants the next one, or fails with a *BudgetError.
// The failure's Spent is the synchronized actual spend (committed), per
// the BudgetError contract; a grant can be refused even when committed
// plus need is under the limit, because other shards' outstanding
// worst-case reservations also hold headroom — that pessimism is what
// makes the pool overshoot-proof.
func (p *budgetPool) reserve(ec *ExecContext, need float64) error {
	spent := ec.model.Of(subsys.TotalCost(ec.lists))
	p.mu.Lock()
	defer p.mu.Unlock()
	p.committed += spent - ec.synced
	ec.synced = spent
	p.outstanding -= ec.outstanding
	ec.outstanding = 0
	if p.broke || p.committed+p.outstanding+need > p.limit {
		p.broke = true
		return &BudgetError{Limit: p.limit, Spent: p.committed, Need: need}
	}
	ec.outstanding = need
	p.outstanding += need
	return nil
}

// finish commits ec's final spend and releases its reservation; called
// once when the shard's evaluation returns.
func (p *budgetPool) finish(ec *ExecContext) {
	spent := ec.model.Of(subsys.TotalCost(ec.lists))
	p.mu.Lock()
	p.committed += spent - ec.synced
	ec.synced = spent
	p.outstanding -= ec.outstanding
	ec.outstanding = 0
	p.mu.Unlock()
}
