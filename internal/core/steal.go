package core

import (
	"sync"

	"fuzzydb/internal/subsys"
)

const (
	// minStealWidth is the smallest local universe a victim may be asked
	// to split: below it the ceded half cannot amortize the thief's
	// re-scan of the parent prefix.
	minStealWidth = 64
	// minStealRemaining is the least expected remaining work (local ids
	// not yet materialized as ranks) a victim must have to be worth
	// robbing; it is also the floor on the width of a ceded range.
	minStealRemaining = 32
)

// stealTask is one unit of a work-stealing sharded evaluation: a
// contiguous global id range, and the index of the planned shard it
// descends from (for per-shard cost attribution — a stolen range's cost
// still belongs to the shard the planner drew it in).
type stealTask struct {
	r      subsys.ShardRange
	origin int
}

// stealState is the controller's handle on one running task: the
// shard's views (for progress probes and truncation), its shrinking
// local id bound, and the request/done flags. All fields beyond task
// are guarded by the controller's mutex.
type stealState struct {
	task  stealTask
	views []*subsys.ShardView
	cut   int  // local id bound; shrinks when a split is honored
	want  bool // a thief asked this task to split
	done  bool // evaluation returned; no further split possible
}

// stealController coordinates work stealing across the shard workers of
// one evaluation. The protocol is cooperative: a thief that runs out of
// queued tasks flags the most-behind eligible running task, and that
// task's own evaluation goroutine honors the flag at its next sorted
// round (ExecContext.onStage) by truncating its views at a safe id
// boundary and enqueueing the ceded tail as a fresh task. Thieves block
// on the condition variable between attempts; every enqueue, decline,
// and task completion broadcasts, and the queue drains exactly when the
// active count hits zero, so no worker can wait forever.
type stealController struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []stealTask
	run    map[*stealState]struct{}
	active int   // queued + running tasks
	steals []int // honored splits per planned shard
	stolen int   // total honored splits
}

// newStealController seeds the queue with the planned shards.
func newStealController(plan []subsys.ShardRange) *stealController {
	c := &stealController{
		run:    make(map[*stealState]struct{}),
		steals: make([]int, len(plan)),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, r := range plan {
		c.queue = append(c.queue, stealTask{r: r, origin: i})
	}
	c.active = len(c.queue)
	return c
}

// next returns the next task to evaluate, blocking while the queue is
// empty but tasks are still running (and flagging a victim for a split
// each time it is about to block). It returns false once every task has
// finished.
func (c *stealController) next() (stealTask, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.queue) > 0 {
			t := c.queue[0]
			c.queue = c.queue[1:]
			return t, true
		}
		if c.active == 0 {
			return stealTask{}, false
		}
		c.request()
		c.cond.Wait()
	}
}

// request flags the most-behind eligible running task for a split.
// Caller holds c.mu. Flagging nothing is fine: the waiter is woken by
// the next completion anyway.
func (c *stealController) request() {
	var best *stealState
	bestRem := -1
	for st := range c.run {
		rem, ok := c.eligible(st)
		if ok && rem > bestRem {
			bestRem = rem
			best = st
		}
	}
	if best != nil {
		best.want = true
	}
}

// eligible reports whether st can usefully split, and its remaining-work
// proxy (local ids minus materialized ranks — the two axes differ, but a
// view's final rank count equals its cut, so the difference tracks how
// much of the stream is still undelivered). Caller holds c.mu.
func (c *stealController) eligible(st *stealState) (int, bool) {
	if st.done || st.want || st.cut < minStealWidth || st.views == nil {
		return 0, false
	}
	filled := 0
	for _, v := range st.views {
		if v == nil {
			return 0, false // opaque source in the mix; progress unknowable
		}
		if f := v.Filled(); f > filled {
			filled = f
		}
	}
	rem := st.cut - filled
	if rem < minStealRemaining {
		return 0, false
	}
	return rem, true
}

// begin registers a task as running; called by the worker once the
// task's views exist.
func (c *stealController) begin(st *stealState) {
	c.mu.Lock()
	c.run[st] = struct{}{}
	c.mu.Unlock()
}

// honor is the victim-side half of a split, run on the task's own
// evaluation goroutine (via ExecContext.onStage): if a thief flagged
// this task and it is still worth splitting, truncate every view at the
// midpoint of the remaining local range and enqueue the ceded tail as a
// new task. Declines also broadcast, so the requesting thief re-picks.
func (c *stealController) honor(st *stealState) {
	c.mu.Lock()
	if !st.want || st.done {
		c.mu.Unlock()
		return
	}
	st.want = false
	if _, ok := c.eligible(st); !ok {
		c.mu.Unlock()
		c.cond.Broadcast()
		return
	}
	// Split the local id axis: cede [mid, cut). Floored at the
	// materialized rank count so the ceded width never exceeds the
	// remaining-work proxy that justified the steal.
	mid := st.cut / 2
	filled := 0
	for _, v := range st.views {
		if f := v.Filled(); f > filled {
			filled = f
		}
	}
	if mid < filled {
		mid = filled
	}
	if st.cut-mid < minStealRemaining {
		c.mu.Unlock()
		c.cond.Broadcast()
		return
	}
	for _, v := range st.views {
		v.Truncate(mid)
	}
	ceded := subsys.ShardRange{Lo: st.task.r.Lo + mid, Hi: st.task.r.Lo + st.cut}
	st.cut = mid
	c.queue = append(c.queue, stealTask{r: ceded, origin: st.task.origin})
	c.active++
	c.steals[st.task.origin]++
	c.stolen++
	c.mu.Unlock()
	c.cond.Broadcast()
}

// freeze ends the task's stealable phase: after it returns, no split
// can touch the task, and the returned bound is the final local id cut
// the task's results must be filtered to before publishing or merging
// (ids at or above it were ceded to thieves, and any the victim
// happened to materialize early are duplicates of a thief's exact
// answers).
func (c *stealController) freeze(st *stealState) int {
	c.mu.Lock()
	st.done = true
	final := st.cut
	c.mu.Unlock()
	return final
}

// finish retires the task: drops it from the running set, decrements
// the active count, and wakes every waiter (idle thieves exit when the
// count hits zero). Safe to call for tasks that never began.
func (c *stealController) finish(st *stealState) {
	c.mu.Lock()
	st.done = true
	delete(c.run, st)
	c.active--
	c.mu.Unlock()
	c.cond.Broadcast()
}
