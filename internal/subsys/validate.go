package subsys

import (
	"fmt"

	"fuzzydb/internal/gradedset"
)

// Validated wraps a Source with contract checking: sorted access must
// deliver grades in non-increasing order with no duplicate objects, every
// grade (from either access mode) must lie in [0, 1], and random access
// must agree with what sorted access previously revealed. A subsystem
// that violates the contract would silently corrupt top-k answers — the
// algorithms' correctness proofs all assume sorted order — so violations
// panic with a diagnostic rather than propagate bad grades.
//
// Use it when integrating an untrusted or freshly written subsystem:
//
//	src := subsys.Validated(mySubsystemResult)
type validatedSource struct {
	src       Source
	lastRank  int
	lastGrade float64
	seenAt    map[int]int     // object -> first rank delivered
	grades    map[int]float64 // object -> grade from sorted access
}

// Validated wraps src with contract checking.
func Validated(src Source) Source {
	return &validatedSource{
		src:       src,
		lastRank:  -1,
		lastGrade: 1,
		seenAt:    make(map[int]int),
		grades:    make(map[int]float64),
	}
}

// Len implements Source.
func (v *validatedSource) Len() int { return v.src.Len() }

// Universe forwards the wrapped source's dense-universe hint, so
// validation does not silently knock an evaluation off the dense fast
// path (core requires every list to report dense).
func (v *validatedSource) Universe() (int, bool) {
	if h, ok := v.src.(UniverseHinter); ok {
		return h.Universe()
	}
	return 0, false
}

// Entry implements Source, checking the sorted-access contract.
func (v *validatedSource) Entry(rank int) gradedset.Entry {
	e := v.src.Entry(rank)
	if !gradedset.ValidGrade(e.Grade) {
		panic(fmt.Sprintf("subsys: source delivered invalid grade %v at rank %d", e.Grade, rank))
	}
	if prev, dup := v.seenAt[e.Object]; dup && prev != rank {
		panic(fmt.Sprintf("subsys: source delivered object %d at both rank %d and rank %d", e.Object, prev, rank))
	}
	// Order checking applies to the contiguous prefix the middleware
	// actually walks (sorted access is sequential).
	if rank == v.lastRank+1 {
		if e.Grade > v.lastGrade {
			panic(fmt.Sprintf("subsys: source out of order: rank %d grade %v follows grade %v",
				rank, e.Grade, v.lastGrade))
		}
		v.lastRank = rank
		v.lastGrade = e.Grade
	}
	v.seenAt[e.Object] = rank
	v.grades[e.Object] = e.Grade
	return e
}

// Entries implements Source. Each rank in the span passes through the
// same contract checks as a single-rank sorted access, so validation is
// not weakened by batching (at the price of giving up the underlying
// source's zero-copy bulk path — Validated is a debugging wrapper).
func (v *validatedSource) Entries(lo, hi int) []gradedset.Entry {
	out := make([]gradedset.Entry, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, v.Entry(r))
	}
	return out
}

// Grade implements Source, checking consistency with sorted access.
func (v *validatedSource) Grade(obj int) float64 {
	g := v.src.Grade(obj)
	if !gradedset.ValidGrade(g) {
		panic(fmt.Sprintf("subsys: source delivered invalid grade %v for object %d", g, obj))
	}
	if sg, ok := v.grades[obj]; ok && sg != g {
		panic(fmt.Sprintf("subsys: source grades object %d as %v under random access but %v under sorted access",
			obj, g, sg))
	}
	return g
}
