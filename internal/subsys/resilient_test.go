package subsys

import (
	"errors"
	"testing"
	"time"
)

func TestResilientAbsorbsTransientFaults(t *testing.T) {
	const n = 150
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 11, Rate: 0.2, Transient: 2})
	r := Resilient(f, Policy{MaxRetries: 3})

	span, err := r.TryEntries(0, n)
	if err != nil {
		t.Fatalf("TryEntries: %v", err)
	}
	want := base.Entries(0, n)
	if len(span) != n {
		t.Fatalf("%d entries, want %d", len(span), n)
	}
	for i := range want {
		if span[i] != want[i] {
			t.Fatalf("entry %d: %v, want %v", i, span[i], want[i])
		}
	}
	for obj := 0; obj < n; obj++ {
		g, err := r.TryGrade(obj)
		if err != nil {
			t.Fatalf("TryGrade(%d): %v", obj, err)
		}
		if g != base.Grade(obj) {
			t.Fatalf("TryGrade(%d) = %v, want %v", obj, g, base.Grade(obj))
		}
	}
	if st := r.Stats(); st.Retries == 0 {
		t.Error("no retries recorded despite transient faults")
	}
}

func TestResilientGivesUpOnPermanentFault(t *testing.T) {
	// A permanent fault is not retryable: the raw error surfaces after
	// one attempt, without burning the retry budget.
	const n = 80
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 42, Rate: 0.1})
	r := Resilient(f, Policy{MaxRetries: 2})

	_, err := r.TryEntries(0, n)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Temporary || fe.Random {
		t.Fatalf("err = %v, want the permanent sorted-access fault", err)
	}
	if errors.As(err, new(*RetryError)) {
		t.Error("permanent fault came back wrapped in a RetryError")
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 for a permanent fault", st.Retries)
	}
}

func TestResilientRetryErrorAfterBudgetExhausted(t *testing.T) {
	// A transient fault outlasting the retry budget (Transient 5 vs
	// MaxRetries 2) surfaces as a RetryError counting all attempts at
	// the stuck site.
	const n = 80
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 42, Rate: 0.1, Transient: 5})
	r := Resilient(f, Policy{MaxRetries: 2})

	_, err := r.TryEntries(0, n)
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 try + 2 retries)", re.Attempts)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Temporary {
		t.Errorf("underlying cause = %v, want the transient fault", err)
	}
}

func TestResilientPartialProgressResetsAttempts(t *testing.T) {
	// Rate 0.3 at Transient 1 means many sites fail once; MaxRetries 1
	// only suffices because progress resets the attempt counter — the
	// budget is per site, not per span.
	const n = 300
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 5, Rate: 0.3, Transient: 1})
	r := Resilient(f, Policy{MaxRetries: 1})

	span, err := r.TryEntries(0, n)
	if err != nil {
		t.Fatalf("TryEntries: %v", err)
	}
	if len(span) != n {
		t.Fatalf("%d entries, want %d", len(span), n)
	}
	for i, e := range base.Entries(0, n) {
		if span[i] != e {
			t.Fatalf("entry %d: %v, want %v", i, span[i], e)
		}
	}
}

func TestResilientBreakerTripsAndRecovers(t *testing.T) {
	const n = 40
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 1, Rate: 1, Phase: FaultRandomAccess, Transient: 6})
	r := Resilient(f, Policy{
		MaxRetries: 0, // every fault is terminal for its access
		Breaker:    Breaker{FailureThreshold: 3, Cooldown: time.Minute, HalfOpenProbes: 1},
	})
	clock := time.Now()
	r.now = func() time.Time { return clock }

	// Three failed accesses trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := r.TryGrade(i); err == nil {
			t.Fatalf("access %d unexpectedly succeeded", i)
		}
	}
	if st := r.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", st.BreakerTrips)
	}

	// Open breaker fails fast without touching the source.
	before := f.Injected()
	_, err := r.TryGrade(10)
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("err = %v, want *BreakerOpenError", err)
	}
	if f.Injected() != before {
		t.Error("open breaker still reached the source")
	}
	if st := r.Stats(); st.FastFails == 0 {
		t.Error("no fast-fails recorded")
	}

	// After the cooldown a half-open probe runs; a failure re-opens.
	clock = clock.Add(2 * time.Minute)
	if _, err := r.TryGrade(11); err == nil {
		t.Fatal("half-open probe unexpectedly succeeded")
	}
	if st := r.Stats(); st.BreakerTrips != 2 {
		t.Fatalf("BreakerTrips = %d, want 2 (half-open failure re-opens)", st.BreakerTrips)
	}

	// Sites 0, 1, 2, 11 burned 4 of the 6 transient attempts on object
	// faults; drive one site through its remaining budget so the next
	// probe succeeds and closes the breaker.
	clock = clock.Add(2 * time.Minute)
	if _, err := r.TryGrade(0); err == nil {
		t.Fatal("probe at attempt 2/6 should still fail")
	}
	for i := 0; i < 4; i++ {
		clock = clock.Add(2 * time.Minute)
		r.TryGrade(0)
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := r.TryGrade(0); err != nil {
		t.Fatalf("after the site cleared: %v", err)
	}
	r.mu.Lock()
	state := r.state
	r.mu.Unlock()
	if state != breakerClosed {
		t.Errorf("breaker state = %d, want closed", state)
	}
}

func TestResilientTimeoutAbandonsWedgedCall(t *testing.T) {
	const n = 20
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 2, Rate: 1, Transient: 1, Wedge: time.Minute})
	// Timeout and retry budget carry headroom over scheduler noise (the
	// TestWedgedBatchTimedOutAndRetried treatment): a timeout tight
	// enough to misread a healthy-but-descheduled access as wedged, or
	// a budget with one spare attempt, flakes on a loaded -race runner.
	r := Resilient(f, Policy{MaxRetries: 6, PerAccessTimeout: 20 * time.Millisecond})

	start := time.Now()
	span, err := r.TryEntries(0, 1)
	if err != nil {
		t.Fatalf("TryEntries: %v", err)
	}
	if len(span) != 1 {
		t.Fatalf("%d entries, want 1", len(span))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("waited out the wedge: %v", elapsed)
	}
	if st := r.Stats(); st.Timeouts == 0 {
		t.Error("no timeouts recorded despite the wedged call")
	}
}

func TestResilientMeteringUnchangedByRetries(t *testing.T) {
	// A retried access is still ONE metered access: the Section 5 cost
	// of a counted evaluation over a resilient faulty source equals the
	// fault-free cost.
	const n = 100
	base := func() Source { return FromList(descendingList(t, n)) }

	clean := Count(base())
	for r := 0; r < n; r++ {
		clean.EntryAt(r)
	}
	for obj := 0; obj < n; obj += 3 {
		clean.Grade(obj)
	}
	wantCost := clean.Cost()

	f := NewFaultSource(base(), FaultPlan{Seed: 13, Rate: 0.25, Transient: 2})
	faulty := Count(Resilient(f, Policy{MaxRetries: 2}))
	for r := 0; r < n; r++ {
		if _, ok := faulty.EntryAt(r); !ok {
			t.Fatalf("EntryAt(%d) failed: %v", r, faulty.Err())
		}
	}
	for obj := 0; obj < n; obj += 3 {
		faulty.Grade(obj)
	}
	if err := faulty.Err(); err != nil {
		t.Fatalf("sticky error: %v", err)
	}
	if got := faulty.Cost(); got != wantCost {
		t.Errorf("cost %v, want fault-free %v", got, wantCost)
	}
	if f.Injected() == 0 {
		t.Error("no faults injected; test vacuous")
	}
}

func TestResilientPlainFaceForwards(t *testing.T) {
	const n = 30
	base := FromList(descendingList(t, n))
	r := Resilient(NewFaultSource(base, FaultPlan{Seed: 4, Rate: 1}), Policy{MaxRetries: 1})
	if got := r.Entries(0, n); len(got) != n {
		t.Errorf("plain Entries delivered %d of %d", len(got), n)
	}
	if g := r.Grade(2); g != base.Grade(2) {
		t.Errorf("plain Grade = %v, want %v", g, base.Grade(2))
	}
}
