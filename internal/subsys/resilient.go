package subsys

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fuzzydb/internal/gradedset"
)

// Breaker configures the circuit breaker of a ResilientSource: after
// FailureThreshold consecutive physical failures the breaker opens and
// every access fails fast with *BreakerOpenError (no source call) until
// Cooldown elapses; the breaker then goes half-open, admits up to
// HalfOpenProbes trial accesses, and closes again on the first success
// (or re-opens on the first failure).
type Breaker struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker; ≤ 0 disables it.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before probing;
	// ≤ 0 defaults to one second.
	Cooldown time.Duration
	// HalfOpenProbes bounds the trial accesses admitted while
	// half-open; ≤ 0 defaults to 1.
	HalfOpenProbes int
}

// Policy configures a ResilientSource.
type Policy struct {
	// MaxRetries bounds the retries per fault site (a site is one rank
	// or one probed object; progress inside a batched span resets the
	// budget). ≤ 0 means no retries.
	MaxRetries int
	// BaseBackoff is the first retry's backoff scale; retry n sleeps a
	// uniformly random duration in [0, BaseBackoff·2ⁿ⁻¹) — exponential
	// backoff with full jitter. 0 disables sleeping (test mode).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff scale; ≤ 0 leaves it uncapped (the
	// retry bound caps growth anyway).
	MaxBackoff time.Duration
	// PerAccessTimeout bounds each physical access; an access that
	// overruns it fails with a transient *TimeoutError (and the
	// abandoned call finishes on its own goroutine). 0 disables.
	PerAccessTimeout time.Duration
	// Breaker configures the circuit breaker.
	Breaker Breaker
	// Seed keys the backoff jitter; 0 selects a fixed default.
	Seed uint64
}

// BreakerOpenError is returned (wrapped in the usual *SourceError) when
// an access fails fast because the circuit breaker is open.
type BreakerOpenError struct {
	// Until is when the breaker will next admit a probe.
	Until time.Time
}

// Error implements error.
func (e *BreakerOpenError) Error() string { return "subsys: circuit breaker open" }

// TimeoutError is the transient error injected when a physical access
// overruns the policy's PerAccessTimeout.
type TimeoutError struct {
	// After is the timeout that was exceeded.
	After time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("subsys: source access timed out after %v", e.After)
}

// Transient marks the timeout retryable.
func (e *TimeoutError) Transient() bool { return true }

// RetryError wraps the final cause after a ResilientSource exhausted its
// retry budget at one fault site, recording the total attempts made
// there. Counted lifts Attempts into the SourceError it surfaces.
type RetryError struct {
	// Attempts is the number of physical attempts made at the site.
	Attempts int
	// Err is the last failure.
	Err error
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("subsys: giving up after %d attempt(s): %v", e.Attempts, e.Err)
}

// Unwrap exposes the last failure to errors.Is/As.
func (e *RetryError) Unwrap() error { return e.Err }

// transienter is the capability an error implements to declare whether
// retrying can clear it (FaultError, TimeoutError). Errors without the
// capability are assumed transient.
type transienter interface{ Transient() bool }

// retryable reports whether a retry might clear err. Breaker-open
// failures never retry (the point of the breaker is to stop trying).
func retryable(err error) bool {
	var boe *BreakerOpenError
	if errors.As(err, &boe) {
		return false
	}
	var tr transienter
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return true
}

// ResilienceStats reports what a ResilientSource absorbed.
type ResilienceStats struct {
	// Retries counts retried physical accesses.
	Retries int64
	// Timeouts counts accesses that overran PerAccessTimeout.
	Timeouts int64
	// BreakerTrips counts closed/half-open → open transitions.
	BreakerTrips int64
	// FastFails counts accesses rejected by an open breaker.
	FastFails int64
}

// ResilientSource wraps a (possibly fallible) Source with retries,
// exponential backoff with full jitter, a per-access timeout, and a
// circuit breaker. Transient faults are retried invisibly: the caller
// sees one successful access, and because Counted meters on delivery a
// retried access is still ONE metered access — the Section 5 tallies of
// a run over transient faults are bit-identical to the fault-free run.
// Terminal failures surface through the FallibleSource face as the last
// cause wrapped in *RetryError (when retries were spent) or
// *BreakerOpenError (fail-fast).
//
// The plain Source methods forward to the wrapped source untouched,
// like FaultSource's: the resilience machinery is only on the Try* path,
// which Counted always prefers.
//
// Try* methods are safe for concurrent use when the wrapped source is
// (the breaker and jitter state are internally synchronized).
type ResilientSource struct {
	src Source
	fs  FallibleSource // nil when src is infallible
	pol Policy
	now func() time.Time // test hook

	mu       sync.Mutex
	rng      *rand.Rand
	state    breakerPhase
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // trial accesses admitted this half-open period

	retries   atomic.Int64
	timeouts  atomic.Int64
	trips     atomic.Int64
	fastFails atomic.Int64
}

type breakerPhase uint8

const (
	breakerClosed breakerPhase = iota
	breakerOpen
	breakerHalfOpen
)

// Resilient wraps src with the given policy.
func Resilient(src Source, pol Policy) *ResilientSource {
	if pol.Breaker.Cooldown <= 0 {
		pol.Breaker.Cooldown = time.Second
	}
	if pol.Breaker.HalfOpenProbes <= 0 {
		pol.Breaker.HalfOpenProbes = 1
	}
	seed := pol.Seed
	if seed == 0 {
		seed = 0x5eed5eed5eed5eed
	}
	r := &ResilientSource{
		src: src,
		pol: pol,
		now: time.Now,
		rng: rand.New(rand.NewSource(int64(seed))),
	}
	if fs, ok := src.(FallibleSource); ok {
		r.fs = fs
	}
	return r
}

// Stats returns the counters accumulated so far.
func (r *ResilientSource) Stats() ResilienceStats {
	return ResilienceStats{
		Retries:      r.retries.Load(),
		Timeouts:     r.timeouts.Load(),
		BreakerTrips: r.trips.Load(),
		FastFails:    r.fastFails.Load(),
	}
}

// allow consults the breaker before a physical access; a non-nil return
// is the fail-fast error.
func (r *ResilientSource) allow() error {
	if r.pol.Breaker.FailureThreshold <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		until := r.openedAt.Add(r.pol.Breaker.Cooldown)
		if r.now().Before(until) {
			return &BreakerOpenError{Until: until}
		}
		r.state = breakerHalfOpen
		r.probes = 1
		return nil
	default: // half-open
		if r.probes < r.pol.Breaker.HalfOpenProbes {
			r.probes++
			return nil
		}
		return &BreakerOpenError{Until: r.openedAt.Add(r.pol.Breaker.Cooldown)}
	}
}

// onSuccess records a successful physical access with the breaker.
func (r *ResilientSource) onSuccess() {
	if r.pol.Breaker.FailureThreshold <= 0 {
		return
	}
	r.mu.Lock()
	r.failures = 0
	r.state = breakerClosed
	r.mu.Unlock()
}

// onFailure records a failed physical access, tripping the breaker when
// the consecutive-failure threshold is reached (or on any half-open
// failure).
func (r *ResilientSource) onFailure() {
	if r.pol.Breaker.FailureThreshold <= 0 {
		return
	}
	r.mu.Lock()
	switch r.state {
	case breakerHalfOpen:
		r.state = breakerOpen
		r.openedAt = r.now()
		r.trips.Add(1)
	case breakerClosed:
		r.failures++
		if r.failures >= r.pol.Breaker.FailureThreshold {
			r.state = breakerOpen
			r.openedAt = r.now()
			r.failures = 0
			r.trips.Add(1)
		}
	}
	r.mu.Unlock()
}

// retryAfterHint extracts a server-directed pacing advice from err via
// the optional RetryAfter capability (wire.TransportError implements it
// for 429 rejections carrying Retry-After). Zero means no advice.
func retryAfterHint(err error) time.Duration {
	var ra interface{ RetryAfter() time.Duration }
	if errors.As(err, &ra) {
		if d := ra.RetryAfter(); d > 0 {
			return d
		}
	}
	return 0
}

// pause sleeps before retry number attempt (1-based): the failure's own
// RetryAfter advice verbatim when the server gave one (a shedding
// server knows its refill schedule better than our jitter does — the
// hint deliberately overrides MaxBackoff), the exponential backoff
// schedule otherwise.
func (r *ResilientSource) pause(attempt int, err error) {
	if d := retryAfterHint(err); d > 0 {
		time.Sleep(d)
		return
	}
	r.backoff(attempt)
}

// backoff sleeps before retry number attempt (1-based): exponential
// growth with full jitter, capped by MaxBackoff.
func (r *ResilientSource) backoff(attempt int) {
	base := r.pol.BaseBackoff
	if base <= 0 {
		return
	}
	if attempt > 24 {
		attempt = 24 // cap the shift; MaxBackoff usually kicks in first
	}
	d := base << uint(attempt-1)
	if r.pol.MaxBackoff > 0 && d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	r.mu.Lock()
	f := r.rng.Float64()
	r.mu.Unlock()
	time.Sleep(time.Duration(f * float64(d)))
}

// tryResult carries one physical attempt's outcome across the timeout
// boundary (results travel on the channel, never through captured
// variables, so an abandoned attempt cannot race its replacement).
type tryResult struct {
	span []gradedset.Entry
	g    float64
	err  error
}

// call runs one physical attempt under the per-access timeout. On
// timeout the attempt's goroutine finishes (and is discarded) on its
// own; the buffered channel lets it exit regardless.
func (r *ResilientSource) call(f func() tryResult) tryResult {
	if r.pol.PerAccessTimeout <= 0 {
		return f()
	}
	done := make(chan tryResult, 1)
	go func() { done <- f() }()
	timer := time.NewTimer(r.pol.PerAccessTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		r.timeouts.Add(1)
		return tryResult{err: &TimeoutError{After: r.pol.PerAccessTimeout}}
	}
}

// entriesOnce is one physical batched sorted access.
func (r *ResilientSource) entriesOnce(lo, hi int) tryResult {
	if r.fs != nil {
		span, err := r.fs.TryEntries(lo, hi)
		return tryResult{span: span, err: err}
	}
	return tryResult{span: r.src.Entries(lo, hi)}
}

// gradeOnce is one physical random access.
func (r *ResilientSource) gradeOnce(obj int) tryResult {
	if r.fs != nil {
		g, err := r.fs.TryGrade(obj)
		return tryResult{g: g, err: err}
	}
	return tryResult{g: r.src.Grade(obj)}
}

// Len implements Source.
func (r *ResilientSource) Len() int { return r.src.Len() }

// Entry implements Source, forwarding without the resilience machinery
// (see the type comment).
func (r *ResilientSource) Entry(rank int) gradedset.Entry { return r.src.Entry(rank) }

// Entries implements Source, forwarding without the resilience machinery.
func (r *ResilientSource) Entries(lo, hi int) []gradedset.Entry { return r.src.Entries(lo, hi) }

// Grade implements Source, forwarding without the resilience machinery.
func (r *ResilientSource) Grade(obj int) float64 { return r.src.Grade(obj) }

// Universe implements UniverseHinter when the wrapped source does.
func (r *ResilientSource) Universe() (int, bool) {
	if h, ok := r.src.(UniverseHinter); ok {
		return h.Universe()
	}
	return 0, false
}

// TryEntry implements FallibleSource.
func (r *ResilientSource) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := r.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

// TryEntries implements FallibleSource with partial-progress retries:
// partial spans are accumulated and advance the request, and progress
// resets the per-site retry budget, so a span crossing many transient
// fault sites needs only MaxRetries per site, not per span.
func (r *ResilientSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	var out []gradedset.Entry
	pos := lo
	attempts := 0 // failed attempts at the current site
	for pos < hi {
		if berr := r.allow(); berr != nil {
			r.fastFails.Add(1)
			return out, berr
		}
		p := pos
		res := r.call(func() tryResult { return r.entriesOnce(p, hi) })
		if len(res.span) > 0 {
			out = append(out, res.span...)
			pos += len(res.span)
			attempts = 0
		}
		if res.err == nil {
			r.onSuccess()
			if pos < hi && len(res.span) == 0 {
				// Defensive: a short span without an error would
				// otherwise spin; treat it as end of data.
				return out, nil
			}
			continue
		}
		r.onFailure()
		attempts++
		if !retryable(res.err) || attempts > r.pol.MaxRetries {
			if attempts > 1 {
				return out, &RetryError{Attempts: attempts, Err: res.err}
			}
			return out, res.err
		}
		r.retries.Add(1)
		r.pause(attempts, res.err)
	}
	return out, nil
}

// TryGrade implements FallibleSource with retries.
func (r *ResilientSource) TryGrade(obj int) (float64, error) {
	attempts := 0
	for {
		if berr := r.allow(); berr != nil {
			r.fastFails.Add(1)
			return 0, berr
		}
		res := r.call(func() tryResult { return r.gradeOnce(obj) })
		if res.err == nil {
			r.onSuccess()
			return res.g, nil
		}
		r.onFailure()
		attempts++
		if !retryable(res.err) || attempts > r.pol.MaxRetries {
			if attempts > 1 {
				return 0, &RetryError{Attempts: attempts, Err: res.err}
			}
			return 0, res.err
		}
		r.retries.Add(1)
		r.pause(attempts, res.err)
	}
}

// ResilientSubsystem wraps a subsystem so every source it produces is
// wrapped in the resilience layer (see Resilient).
type ResilientSubsystem struct {
	sub Subsystem
	pol Policy

	mu   sync.Mutex
	srcs []*ResilientSource
}

// WithResilience wraps sub with the given resilience policy.
func WithResilience(sub Subsystem, pol Policy) *ResilientSubsystem {
	return &ResilientSubsystem{sub: sub, pol: pol}
}

// Attribute implements Subsystem.
func (w *ResilientSubsystem) Attribute() string { return w.sub.Attribute() }

// Size implements Subsystem.
func (w *ResilientSubsystem) Size() int { return w.sub.Size() }

// Query implements Subsystem, wrapping the result in a ResilientSource.
func (w *ResilientSubsystem) Query(target string) (Source, error) {
	src, err := w.sub.Query(target)
	if err != nil {
		return nil, err
	}
	pol := w.pol
	if pol.Seed != 0 {
		pol.Seed = splitmix64(pol.Seed ^ hashString(w.sub.Attribute()+"\x00"+target))
	}
	rs := Resilient(src, pol)
	w.mu.Lock()
	w.srcs = append(w.srcs, rs)
	w.mu.Unlock()
	return rs, nil
}

// GradeSketch forwards GradeSketcher: the resilience layer is transport,
// not data, so the shard planner sees the wrapped subsystem's exact
// distribution and weighted plans stay invariant under it.
func (w *ResilientSubsystem) GradeSketch(target string) *Sketch {
	if gs, ok := w.sub.(GradeSketcher); ok {
		return gs.GradeSketch(target)
	}
	return nil
}

// Stats sums the resilience counters across every source this subsystem
// has produced.
func (w *ResilientSubsystem) Stats() ResilienceStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total ResilienceStats
	for _, s := range w.srcs {
		st := s.Stats()
		total.Retries += st.Retries
		total.Timeouts += st.Timeouts
		total.BreakerTrips += st.BreakerTrips
		total.FastFails += st.FastFails
	}
	return total
}
