package subsys

import (
	"testing"
	"time"

	"fuzzydb/internal/gradedset"
)

// pacedError is a transient failure carrying a server pacing advice,
// the shape wire.TransportError takes for a 429 with Retry-After.
type pacedError struct{ advice time.Duration }

func (e *pacedError) Error() string             { return "paced: retry later" }
func (e *pacedError) Transient() bool           { return true }
func (e *pacedError) RetryAfter() time.Duration { return e.advice }

// pacedSource fails every access with a pacedError until the failure
// budget is spent, then serves from the backing list.
type pacedSource struct {
	Source
	failures int
	advice   time.Duration
}

func (s *pacedSource) try() error {
	if s.failures > 0 {
		s.failures--
		return &pacedError{advice: s.advice}
	}
	return nil
}

func (s *pacedSource) TryEntry(rank int) (gradedset.Entry, error) {
	if err := s.try(); err != nil {
		return gradedset.Entry{}, err
	}
	return s.Entry(rank), nil
}

func (s *pacedSource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if err := s.try(); err != nil {
		return nil, err
	}
	return s.Entries(lo, hi), nil
}

func (s *pacedSource) TryGrade(obj int) (float64, error) {
	if err := s.try(); err != nil {
		return 0, err
	}
	return s.Grade(obj), nil
}

func pacedList() Source {
	l, err := gradedset.NewList([]gradedset.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.4}})
	if err != nil {
		panic(err)
	}
	return FromList(l)
}

// TestResilientHonorsOverloadRetryAfter pins the pacing contract: when
// a transient failure carries a RetryAfter advice (a 429 from a
// shedding server), the retry sleeps the advised interval instead of
// the policy's own exponential backoff.
func TestResilientHonorsOverloadRetryAfter(t *testing.T) {
	const advice = 60 * time.Millisecond
	r := Resilient(&pacedSource{Source: pacedList(), failures: 1, advice: advice}, Policy{
		MaxRetries:  3,
		BaseBackoff: time.Nanosecond, // own schedule would be ~instant
	})
	start := time.Now()
	g, err := r.TryGrade(0)
	if err != nil {
		t.Fatal(err)
	}
	if g != 0.9 {
		t.Fatalf("grade = %v, want 0.9", g)
	}
	if elapsed := time.Since(start); elapsed < advice {
		t.Fatalf("retry waited %v, want at least the advised %v", elapsed, advice)
	}
	if got := r.Stats().Retries; got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
}

// TestResilientOverloadAdviceOnSortedPath pins the same contract on
// the batched sorted-access retry site.
func TestResilientOverloadAdviceOnSortedPath(t *testing.T) {
	const advice = 60 * time.Millisecond
	r := Resilient(&pacedSource{Source: pacedList(), failures: 1, advice: advice}, Policy{
		MaxRetries:  3,
		BaseBackoff: time.Nanosecond,
	})
	start := time.Now()
	span, err := r.TryEntries(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(span) != 2 {
		t.Fatalf("span = %v, want 2 entries", span)
	}
	if elapsed := time.Since(start); elapsed < advice {
		t.Fatalf("retry waited %v, want at least the advised %v", elapsed, advice)
	}
}

// TestResilientNoAdviceKeepsBackoff pins the fallback: a transient
// failure without the capability (advice zero) still rides the
// policy's exponential schedule — no added sleep.
func TestResilientNoAdviceKeepsBackoff(t *testing.T) {
	r := Resilient(&pacedSource{Source: pacedList(), failures: 1}, Policy{
		MaxRetries:  3,
		BaseBackoff: time.Nanosecond,
	})
	start := time.Now()
	if _, err := r.TryGrade(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("zero advice slept %v: the hint path must not add delay", elapsed)
	}
}
