package subsys

import (
	"errors"
	"math"
	"testing"

	"fuzzydb/internal/gradedset"
)

func listOf(t *testing.T, entries []gradedset.Entry) *gradedset.List {
	t.Helper()
	l, err := gradedset.NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestListSource(t *testing.T) {
	l := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.4}})
	s := FromList(l)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if e := s.Entry(0); e.Object != 0 || e.Grade != 0.9 {
		t.Errorf("Entry(0) = %v", e)
	}
	if g := s.Grade(1); g != 0.4 {
		t.Errorf("Grade(1) = %v", g)
	}
	if g := s.Grade(99); g != 0 {
		t.Errorf("Grade(absent) = %v, want 0", g)
	}
}

func TestCountedSortedAccessIsSequentialAndMetered(t *testing.T) {
	l := listOf(t, []gradedset.Entry{{Object: 2, Grade: 0.9}, {Object: 0, Grade: 0.5}, {Object: 1, Grade: 0.1}})
	c := Count(FromList(l))
	cu := NewCursor(c)
	if cu.LastGrade() != 1 {
		t.Errorf("LastGrade before access = %v, want 1", cu.LastGrade())
	}
	e1, ok := cu.Next()
	if !ok || e1.Object != 2 {
		t.Fatalf("Next() = %v, %v", e1, ok)
	}
	e2, _ := cu.Next()
	if e2.Object != 0 {
		t.Fatalf("second Next() = %v", e2)
	}
	if c.Depth() != 2 || c.Cost().Sorted != 2 || c.Cost().Random != 0 {
		t.Errorf("after 2 sorted accesses: depth=%d cost=%v", c.Depth(), c.Cost())
	}
	if cu.LastGrade() != 0.5 {
		t.Errorf("LastGrade = %v, want 0.5", cu.LastGrade())
	}
	if cu.Exhausted() {
		t.Error("cursor claims exhausted with one entry left")
	}
	cu.Next()
	if _, ok := cu.Next(); ok {
		t.Error("Next past end reported ok")
	}
	if !cu.Exhausted() {
		t.Error("cursor should be exhausted")
	}
	if c.Cost().Sorted != 3 {
		t.Errorf("exhausted Next should not cost: %v", c.Cost())
	}
	if cu.Pos() != 3 {
		t.Errorf("Pos = %d, want 3", cu.Pos())
	}
}

func TestCursorsShareHighWaterMark(t *testing.T) {
	l := listOf(t, []gradedset.Entry{
		{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.7}, {Object: 2, Grade: 0.5}, {Object: 3, Grade: 0.3},
	})
	c := Count(FromList(l))
	first := NewCursor(c)
	first.Next()
	first.Next()
	first.Next()
	if c.Cost().Sorted != 3 {
		t.Fatalf("cost after 3 reads: %v", c.Cost())
	}
	// A second cursor re-reads the cached prefix for free, then pays for
	// rank 3 only.
	second := NewCursor(c)
	for i := 0; i < 4; i++ {
		if _, ok := second.Next(); !ok {
			t.Fatalf("second cursor ended early at %d", i)
		}
	}
	if c.Cost().Sorted != 4 {
		t.Errorf("cost after overlapping reads = %v, want S=4", c.Cost())
	}
}

func TestEntryAtOutOfRange(t *testing.T) {
	l := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.9}})
	c := Count(FromList(l))
	if _, ok := c.EntryAt(-1); ok {
		t.Error("EntryAt(-1) ok")
	}
	if _, ok := c.EntryAt(1); ok {
		t.Error("EntryAt(past end) ok")
	}
	if c.Cost().Sorted != 0 {
		t.Errorf("failed accesses were charged: %v", c.Cost())
	}
	// Jumping straight to a deep rank pays for the whole prefix.
	l2 := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.5}, {Object: 2, Grade: 0.2}})
	c2 := Count(FromList(l2))
	if e, ok := c2.EntryAt(2); !ok || e.Object != 2 {
		t.Fatalf("EntryAt(2) = %v, %v", e, ok)
	}
	if c2.Cost().Sorted != 3 {
		t.Errorf("deep access cost = %v, want S=3", c2.Cost())
	}
	// All prefix objects became known.
	if _, ok := c2.Known(0); !ok {
		t.Error("prefix object not known after deep access")
	}
}

func TestCountedRandomAccessMemoization(t *testing.T) {
	l := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.4}})
	c := Count(FromList(l))
	if g := c.Grade(1); g != 0.4 {
		t.Fatalf("Grade(1) = %v", g)
	}
	if c.Cost().Random != 1 {
		t.Fatalf("one random access: %v", c.Cost())
	}
	// Repeat is free.
	c.Grade(1)
	if c.Cost().Random != 1 {
		t.Errorf("repeated random access was charged: %v", c.Cost())
	}
	// Objects already delivered by sorted access are free too.
	NewCursor(c).Next()
	if c.Cost().Sorted != 1 {
		t.Fatalf("cost = %v", c.Cost())
	}
	c.Grade(0)
	if c.Cost().Random != 1 {
		t.Errorf("random access after sorted sighting was charged: %v", c.Cost())
	}
	if g, ok := c.Known(0); !ok || g != 0.9 {
		t.Errorf("Known(0) = %v, %v", g, ok)
	}
	if _, ok := c.Known(42); ok {
		t.Error("Known(42) should be false")
	}
	if len(c.Seen()) != 2 {
		t.Errorf("Seen = %v, want 2 objects", c.Seen())
	}
}

func TestTotalCost(t *testing.T) {
	l := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.9}, {Object: 1, Grade: 0.4}})
	cs := CountAll([]Source{FromList(l), FromList(l)})
	NewCursor(cs[0]).Next()
	cs[1].Grade(1)
	total := TotalCost(cs)
	if total.Sorted != 1 || total.Random != 1 || total.Sum() != 2 {
		t.Errorf("TotalCost = %v", total)
	}
}

func TestRelationalBinaryGrades(t *testing.T) {
	r := NewRelational("Artist", []string{"Beatles", "Stones", "Beatles", "Dylan"})
	if r.Attribute() != "Artist" || r.Size() != 4 {
		t.Fatalf("attr=%q size=%d", r.Attribute(), r.Size())
	}
	src, err := r.Query("Beatles")
	if err != nil {
		t.Fatal(err)
	}
	if g := src.Grade(0); g != 1 {
		t.Errorf("Grade(0) = %v, want 1", g)
	}
	if g := src.Grade(1); g != 0 {
		t.Errorf("Grade(1) = %v, want 0", g)
	}
	// Sorted access yields the two matches first (grade 1), then zeros.
	if e := src.Entry(0); e.Grade != 1 {
		t.Errorf("Entry(0) = %v", e)
	}
	if e := src.Entry(2); e.Grade != 0 {
		t.Errorf("Entry(2) = %v", e)
	}
	// Unknown artist: all grades 0, still a valid total source.
	none, err := r.Query("Elvis")
	if err != nil {
		t.Fatal(err)
	}
	if none.Len() != 4 || none.Entry(0).Grade != 0 {
		t.Error("query with no matches should grade all objects 0")
	}
}

func TestVectorSimilarity(t *testing.T) {
	if g := Similarity([]float64{1, 0}, []float64{1, 0}); g != 1 {
		t.Errorf("identical vectors grade %v, want 1", g)
	}
	g := Similarity([]float64{1, 0}, []float64{0, 1})
	want := 1 / (1 + math.Sqrt2)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("orthogonal unit vectors grade %v, want %v", g, want)
	}
	// Length mismatch counts the excess as distance.
	if got := Similarity([]float64{1}, []float64{1, 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mismatched lengths grade %v, want 0.5", got)
	}
	if Similarity(nil, nil) != 1 {
		t.Error("empty vectors should match perfectly")
	}
}

func TestVectorSubsystem(t *testing.T) {
	features := [][]float64{
		{1, 0, 0}, // pure red
		{0, 1, 0}, // pure green
		{0.9, 0.05, 0.05},
	}
	v := NewVector("AlbumColor", features, map[string][]float64{
		"red": {1, 0, 0},
	})
	src, err := v.Query("red")
	if err != nil {
		t.Fatal(err)
	}
	if src.Entry(0).Object != 0 {
		t.Errorf("best match = %d, want 0 (pure red)", src.Entry(0).Object)
	}
	if src.Entry(1).Object != 2 {
		t.Errorf("second match = %d, want 2", src.Entry(1).Object)
	}
	if src.Grade(0) != 1 {
		t.Errorf("perfect match grade = %v", src.Grade(0))
	}
	if _, err := v.Query("plaid"); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("unknown target error = %v", err)
	}
	v.AddTarget("green", []float64{0, 1, 0})
	if src2, err := v.Query("green"); err != nil || src2.Entry(0).Object != 1 {
		t.Error("AddTarget not honored")
	}
}

func TestTextSubsystem(t *testing.T) {
	docs := []string{
		"Abbey Road by the Beatles",
		"Sticky Fingers by the Rolling Stones",
		"Let It Be by the Beatles",
		"",
	}
	ts := NewText("Title", docs)
	if ts.Size() != 4 {
		t.Fatalf("Size = %d", ts.Size())
	}
	src, err := ts.Query("beatles road")
	if err != nil {
		t.Fatal(err)
	}
	// Doc 0 contains both tokens: must rank first with a higher grade than
	// doc 2 (one token).
	if src.Entry(0).Object != 0 {
		t.Errorf("best doc = %d, want 0", src.Entry(0).Object)
	}
	if !(src.Grade(0) > src.Grade(2)) {
		t.Errorf("grades: doc0=%v doc2=%v", src.Grade(0), src.Grade(2))
	}
	if src.Grade(3) != 0 {
		t.Errorf("empty doc grade = %v", src.Grade(3))
	}
	if g := src.Grade(0); g > 1 || g < 0 {
		t.Errorf("grade out of range: %v", g)
	}
	if _, err := ts.Query("   "); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("empty query error = %v", err)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Abbey Road, by The BEATLES (1969)!")
	want := []string{"abbey", "road", "by", "the", "beatles", "1969"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStaticSubsystem(t *testing.T) {
	s := NewStatic("Color", 3)
	l := listOf(t, []gradedset.Entry{{Object: 0, Grade: 0.5}, {Object: 1, Grade: 0.2}, {Object: 2, Grade: 0.9}})
	s.Set("red", l)
	if got := s.Targets(); len(got) != 1 || got[0] != "red" {
		t.Errorf("Targets = %v", got)
	}
	src, err := s.Query("red")
	if err != nil {
		t.Fatal(err)
	}
	if src.Entry(0).Object != 2 {
		t.Errorf("Entry(0) = %v", src.Entry(0))
	}
	if _, err := s.Query("blue"); !errors.Is(err, ErrUnknownTarget) {
		t.Errorf("unknown target error = %v", err)
	}
	if s.Attribute() != "Color" || s.Size() != 3 {
		t.Error("metadata wrong")
	}
}
