package subsys

import (
	"sync/atomic"
	"time"

	"fuzzydb/internal/gradedset"
)

// LatencySource wraps a Source with simulated access latency, standing
// in for a remote backend (a subsystem reached over a network, a disk
// index): every physical call sleeps PerCall, plus PerItem for each
// entry or grade it delivers. A batched sorted access therefore pays the
// per-call price once for the whole span — the amortization a real
// cursor-style protocol gives — which is exactly the shape that makes
// readahead depth matter: with latency dominated by PerCall, doubling
// the batch halves the per-rank cost.
//
// The wrapper is stateless apart from atomic call counters, so it is
// safe for the concurrent reads a pipelined executor performs (provided
// the wrapped source is too, as every built-in source is). Access
// tallies are unaffected: latency changes wall-clock, never the Section
// 5 cost of the evaluation.
type LatencySource struct {
	src     Source
	perCall time.Duration
	perItem time.Duration
	calls   atomic.Int64
	items   atomic.Int64
}

// NewLatencySource wraps src with perCall latency on every physical call
// plus perItem latency per delivered entry or grade.
func NewLatencySource(src Source, perCall, perItem time.Duration) *LatencySource {
	return &LatencySource{src: src, perCall: perCall, perItem: perItem}
}

// pay simulates the latency of one physical call delivering n items.
func (s *LatencySource) pay(n int) {
	s.calls.Add(1)
	s.items.Add(int64(n))
	if d := s.perCall + time.Duration(n)*s.perItem; d > 0 {
		time.Sleep(d)
	}
}

// Calls returns how many physical calls the source has served — the
// number a batched transport amortizes, as opposed to the per-rank
// Section 5 tallies.
func (s *LatencySource) Calls() int64 { return s.calls.Load() }

// Items returns how many entries and grades the source has delivered
// across all calls.
func (s *LatencySource) Items() int64 { return s.items.Load() }

// Len implements Source.
func (s *LatencySource) Len() int { return s.src.Len() }

// Entry implements Source: one call delivering one entry.
func (s *LatencySource) Entry(rank int) gradedset.Entry {
	s.pay(1)
	return s.src.Entry(rank)
}

// Entries implements Source: one call delivering hi-lo entries — the
// batch amortization a remote cursor protocol provides.
func (s *LatencySource) Entries(lo, hi int) []gradedset.Entry {
	s.pay(hi - lo)
	return s.src.Entries(lo, hi)
}

// Grade implements Source: one call delivering one grade.
func (s *LatencySource) Grade(obj int) float64 {
	s.pay(1)
	return s.src.Grade(obj)
}

// Universe forwards the wrapped source's dense-universe hint, so latency
// simulation does not knock an evaluation off the flat-array fast path.
func (s *LatencySource) Universe() (int, bool) {
	if h, ok := s.src.(UniverseHinter); ok {
		return h.Universe()
	}
	return 0, false
}

// LatencySubsystem wraps a subsystem so that every Source it produces is
// latency-wrapped — the way to run an engine against simulated remote
// backends (cmd/fuzzyquery's -latency flag). Planner statistics of the
// wrapped subsystem (SelectivityEstimator) are not forwarded: a remote
// backend's optimizer hints are a separate protocol concern.
type LatencySubsystem struct {
	sub     Subsystem
	perCall time.Duration
	perItem time.Duration
}

// WithLatency wraps sub so its query results simulate remote-backend
// latency (see LatencySource).
func WithLatency(sub Subsystem, perCall, perItem time.Duration) *LatencySubsystem {
	return &LatencySubsystem{sub: sub, perCall: perCall, perItem: perItem}
}

// Attribute implements Subsystem.
func (l *LatencySubsystem) Attribute() string { return l.sub.Attribute() }

// Size implements Subsystem.
func (l *LatencySubsystem) Size() int { return l.sub.Size() }

// Query implements Subsystem, wrapping the result in a LatencySource.
func (l *LatencySubsystem) Query(target string) (Source, error) {
	src, err := l.sub.Query(target)
	if err != nil {
		return nil, err
	}
	return NewLatencySource(src, l.perCall, l.perItem), nil
}
