package subsys

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fuzzydb/internal/gradedset"
)

// LatencySource wraps a Source with simulated access latency, standing
// in for a remote backend (a subsystem reached over a network, a disk
// index): every physical call sleeps PerCall, plus PerItem for each
// entry or grade it delivers. A batched sorted access therefore pays the
// per-call price once for the whole span — the amortization a real
// cursor-style protocol gives — which is exactly the shape that makes
// readahead depth matter: with latency dominated by PerCall, doubling
// the batch halves the per-rank cost.
//
// The wrapper is stateless apart from atomic call counters (and the
// mutex-guarded jitter generator, when configured), so it is safe for
// the concurrent reads a pipelined executor performs (provided the
// wrapped source is too, as every built-in source is). Access tallies
// are unaffected: latency changes wall-clock, never the Section 5 cost
// of the evaluation.
//
// LatencySource also implements FallibleSource: failures of a fallible
// wrapped source pass through (with the latency still paid — a failed
// round trip is still a round trip), and over an infallible source the
// Try* methods simply never fail, so latency simulation composes with
// the resilience stack in either nesting order.
type LatencySource struct {
	src     Source
	fs      FallibleSource // non-nil when src exposes the fallible face
	perCall time.Duration
	perItem time.Duration
	jit     *jitterer
	calls   atomic.Int64
	items   atomic.Int64
}

// LatencyOption configures optional latency-simulation behavior.
type LatencyOption func(*latencyConfig)

type latencyConfig struct {
	jitterFrac float64
	jitterSeed uint64
}

// WithLatencyJitter makes every simulated sleep vary uniformly within
// ±frac of its nominal duration (frac clamped to [0, 1]), drawn from a
// generator seeded with seed — so latency sims stop being perfectly
// uniform while staying reproducible. frac = 0 disables jitter.
func WithLatencyJitter(frac float64, seed uint64) LatencyOption {
	return func(c *latencyConfig) {
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		c.jitterFrac = frac
		c.jitterSeed = seed
	}
}

// jitterer scales durations by a seeded uniform factor in [1−frac, 1+frac].
type jitterer struct {
	frac float64
	mu   sync.Mutex
	rng  *rand.Rand
}

func (j *jitterer) scale(d time.Duration) time.Duration {
	j.mu.Lock()
	u := j.rng.Float64()
	j.mu.Unlock()
	return time.Duration(float64(d) * (1 - j.frac + 2*j.frac*u))
}

// NewLatencySource wraps src with perCall latency on every physical call
// plus perItem latency per delivered entry or grade.
func NewLatencySource(src Source, perCall, perItem time.Duration, opts ...LatencyOption) *LatencySource {
	var cfg latencyConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &LatencySource{src: src, perCall: perCall, perItem: perItem}
	if fs, ok := src.(FallibleSource); ok {
		s.fs = fs
	}
	if cfg.jitterFrac > 0 {
		s.jit = &jitterer{frac: cfg.jitterFrac, rng: rand.New(rand.NewSource(int64(cfg.jitterSeed)))}
	}
	return s
}

// pay simulates the latency of one physical call delivering n items.
func (s *LatencySource) pay(n int) {
	s.calls.Add(1)
	s.items.Add(int64(n))
	if d := s.perCall + time.Duration(n)*s.perItem; d > 0 {
		if s.jit != nil {
			d = s.jit.scale(d)
		}
		time.Sleep(d)
	}
}

// Calls returns how many physical calls the source has served — the
// number a batched transport amortizes, as opposed to the per-rank
// Section 5 tallies.
func (s *LatencySource) Calls() int64 { return s.calls.Load() }

// Items returns how many entries and grades the source has delivered
// across all calls.
func (s *LatencySource) Items() int64 { return s.items.Load() }

// Len implements Source.
func (s *LatencySource) Len() int { return s.src.Len() }

// Entry implements Source: one call delivering one entry.
func (s *LatencySource) Entry(rank int) gradedset.Entry {
	s.pay(1)
	return s.src.Entry(rank)
}

// Entries implements Source: one call delivering hi-lo entries — the
// batch amortization a remote cursor protocol provides.
func (s *LatencySource) Entries(lo, hi int) []gradedset.Entry {
	s.pay(hi - lo)
	return s.src.Entries(lo, hi)
}

// Grade implements Source: one call delivering one grade.
func (s *LatencySource) Grade(obj int) float64 {
	s.pay(1)
	return s.src.Grade(obj)
}

// TryEntry implements FallibleSource.
func (s *LatencySource) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := s.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

// TryEntries implements FallibleSource: the call's latency covers the
// entries actually delivered.
func (s *LatencySource) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	if s.fs == nil {
		s.pay(hi - lo)
		return s.src.Entries(lo, hi), nil
	}
	span, err := s.fs.TryEntries(lo, hi)
	s.pay(len(span))
	return span, err
}

// TryGrade implements FallibleSource.
func (s *LatencySource) TryGrade(obj int) (float64, error) {
	s.pay(1)
	if s.fs == nil {
		return s.src.Grade(obj), nil
	}
	return s.fs.TryGrade(obj)
}

// Universe forwards the wrapped source's dense-universe hint, so latency
// simulation does not knock an evaluation off the flat-array fast path.
func (s *LatencySource) Universe() (int, bool) {
	if h, ok := s.src.(UniverseHinter); ok {
		return h.Universe()
	}
	return 0, false
}

// LatencySubsystem wraps a subsystem so that every Source it produces is
// latency-wrapped — the way to run an engine against simulated remote
// backends (cmd/fuzzyquery's -latency flag). Planner statistics of the
// wrapped subsystem (SelectivityEstimator) are not forwarded: a remote
// backend's optimizer hints are a separate protocol concern.
type LatencySubsystem struct {
	sub     Subsystem
	perCall time.Duration
	perItem time.Duration
	opts    []LatencyOption
}

// WithLatency wraps sub so its query results simulate remote-backend
// latency (see LatencySource); options such as WithLatencyJitter apply
// to every source the subsystem produces.
func WithLatency(sub Subsystem, perCall, perItem time.Duration, opts ...LatencyOption) *LatencySubsystem {
	return &LatencySubsystem{sub: sub, perCall: perCall, perItem: perItem, opts: opts}
}

// Attribute implements Subsystem.
func (l *LatencySubsystem) Attribute() string { return l.sub.Attribute() }

// Size implements Subsystem.
func (l *LatencySubsystem) Size() int { return l.sub.Size() }

// Query implements Subsystem, wrapping the result in a LatencySource.
func (l *LatencySubsystem) Query(target string) (Source, error) {
	src, err := l.sub.Query(target)
	if err != nil {
		return nil, err
	}
	return NewLatencySource(src, l.perCall, l.perItem, l.opts...), nil
}

// GradeSketch forwards GradeSketcher: simulated latency does not move
// grade mass, so the shard planner must see the same distribution it
// would see against the unwrapped subsystem — weighted plans (and with
// them the Section 5 tallies) stay transport-invariant, and sketching
// never pays the simulated round trips.
func (l *LatencySubsystem) GradeSketch(target string) *Sketch {
	if gs, ok := l.sub.(GradeSketcher); ok {
		return gs.GradeSketch(target)
	}
	return nil
}
