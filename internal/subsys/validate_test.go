package subsys

import (
	"strings"
	"testing"

	"fuzzydb/internal/gradedset"
)

// brokenSource is a configurable misbehaving subsystem for failure
// injection.
type brokenSource struct {
	entries    []gradedset.Entry
	badGradeAt int    // rank whose grade is corrupted to 1.5 (-1 = off)
	swapRanks  [2]int // two ranks delivered out of order (equal = off)
	dupAt      int    // rank that repeats the object of rank 0 (-1 = off)
	lieOn      int    // object whose random-access grade disagrees (-1 = off)
}

func (b *brokenSource) Len() int { return len(b.entries) }

func (b *brokenSource) Entry(rank int) gradedset.Entry {
	e := b.entries[rank]
	if rank == b.badGradeAt {
		e.Grade = 1.5
	}
	if b.swapRanks[0] != b.swapRanks[1] {
		if rank == b.swapRanks[0] {
			e = b.entries[b.swapRanks[1]]
		} else if rank == b.swapRanks[1] {
			e = b.entries[b.swapRanks[0]]
		}
	}
	if rank == b.dupAt {
		e.Object = b.entries[0].Object
	}
	return e
}

func (b *brokenSource) Entries(lo, hi int) []gradedset.Entry {
	out := make([]gradedset.Entry, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, b.Entry(r))
	}
	return out
}

func (b *brokenSource) Grade(obj int) float64 {
	if obj == b.lieOn {
		return 0.123
	}
	for _, e := range b.entries {
		if e.Object == obj {
			return e.Grade
		}
	}
	return 0
}

func healthyEntries() []gradedset.Entry {
	return []gradedset.Entry{
		{Object: 3, Grade: 0.9},
		{Object: 1, Grade: 0.7},
		{Object: 0, Grade: 0.4},
		{Object: 2, Grade: 0.2},
	}
}

func newBroken() *brokenSource {
	return &brokenSource{entries: healthyEntries(), badGradeAt: -1, dupAt: -1, lieOn: -1}
}

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("no panic; wanted one mentioning %q", wantSubstr)
			return
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, wantSubstr) {
			t.Errorf("panic %v does not mention %q", r, wantSubstr)
		}
	}()
	f()
}

func TestValidatedPassesHealthySource(t *testing.T) {
	v := Validated(newBroken())
	for r := 0; r < v.Len(); r++ {
		v.Entry(r)
	}
	if g := v.Grade(1); g != 0.7 {
		t.Errorf("Grade(1) = %v", g)
	}
	// Re-reading a rank is fine.
	if e := v.Entry(2); e.Object != 0 {
		t.Errorf("re-read Entry(2) = %v", e)
	}
}

func TestValidatedCatchesBadGrade(t *testing.T) {
	b := newBroken()
	b.badGradeAt = 1
	v := Validated(b)
	v.Entry(0)
	mustPanic(t, "invalid grade", func() { v.Entry(1) })
}

func TestValidatedCatchesOutOfOrder(t *testing.T) {
	b := newBroken()
	b.swapRanks = [2]int{1, 3} // rank 1 now has grade 0.2, rank 3 grade 0.7
	v := Validated(b)
	v.Entry(0)
	v.Entry(1) // grade 0.2: fine, descending so far
	mustPanic(t, "out of order", func() {
		v.Entry(2) // grade 0.4 after 0.2: violation
	})
}

func TestValidatedCatchesDuplicateObject(t *testing.T) {
	b := newBroken()
	b.dupAt = 2 // rank 2 repeats the object of rank 0
	v := Validated(b)
	v.Entry(0)
	v.Entry(1)
	mustPanic(t, "at both rank", func() { v.Entry(2) })
}

func TestValidatedCatchesInconsistentRandomAccess(t *testing.T) {
	b := newBroken()
	b.lieOn = 3 // object 3's random grade disagrees with sorted
	v := Validated(b)
	v.Entry(0) // reveals object 3 at 0.9
	mustPanic(t, "under random access", func() { v.Grade(3) })
}

func TestValidatedCatchesBadRandomGrade(t *testing.T) {
	b := newBroken()
	v := Validated(b)
	b.entries[0].Grade = 1.5 // corrupt before any sorted access
	mustPanic(t, "invalid grade", func() { v.Grade(3) })
}

// The counting layer composes with validation: a full A0-style walk over
// a validated healthy source behaves identically.
func TestValidatedUnderCounted(t *testing.T) {
	v := Count(Validated(newBroken()))
	cu := NewCursor(v)
	for {
		if _, ok := cu.Next(); !ok {
			break
		}
	}
	if v.Cost().Sorted != 4 {
		t.Errorf("cost = %v", v.Cost())
	}
	if g := v.Grade(0); g != 0.4 {
		t.Errorf("Grade(0) = %v", g)
	}
}
