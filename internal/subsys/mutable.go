package subsys

import (
	"fmt"
	"sync"

	"fuzzydb/internal/gradedset"
)

// Update is one versioned grade change on a subsystem: at sequence Seq
// the grade of Object under Target went from Old to New. Updates are the
// currency of cheap cache invalidation — a consumer that knows which
// grades moved, and by how much, can prove most of its cached answers
// undisturbed instead of dropping them all.
type Update struct {
	// Seq is the subsystem epoch this update created: the first update
	// ever applied has Seq 1, and the subsystem's Epoch equals the Seq of
	// its latest change.
	Seq uint64
	// Target names the graded list the update touched.
	Target string
	// Object is the regraded object.
	Object int
	// Old and New are the object's grades before and after. No-op
	// updates (Old == New) are never journaled.
	Old, New float64
}

// Versioned is the optional capability of a Subsystem whose grades can
// change after construction. Epoch is a monotone version counter over
// the whole subsystem (all targets); UpdatesSince replays the changes a
// consumer missed, so it can revalidate derived state (cached top-k
// answers) instead of rebuilding it.
//
// Subsystems that do not implement Versioned are immutable by contract:
// consumers may treat their epoch as permanently 0.
type Versioned interface {
	// Epoch returns the current version: 0 before any change, and
	// monotonically increasing with each one.
	Epoch() uint64
	// UpdatesSince returns every update with Seq > since in order. ok is
	// false when the journal no longer reaches back that far — the
	// changes since are unknown (journal overflow, or a wholesale list
	// replacement that no per-object delta describes) and the consumer
	// must assume everything moved.
	UpdatesSince(since uint64) ([]Update, bool)
}

// DefaultJournalDepth is how many updates a Mutable subsystem keeps for
// UpdatesSince replay before overflowing.
const DefaultJournalDepth = 1024

// Mutable serves precomputed graded lists per target, like Static, but
// its grades can change after construction: UpdateGrade swaps in a
// copy-on-write updated list (gradedset.List.Updated) under a write
// lock, bumps the subsystem epoch, and journals the change for
// Versioned replay. Query returns an immutable snapshot — evaluations
// and streaming cursors in flight keep reading the list they started
// on, untouched by later updates.
type Mutable struct {
	attr       string
	n          int
	journalCap int

	mu       sync.RWMutex
	lists    map[string]*gradedset.List
	epoch    uint64
	floor    uint64 // UpdatesSince(since) with since < floor is unanswerable
	journal  []Update
	sketches map[string]*Sketch // lazily built; dropped when the target's grades move
}

// NewMutable builds a mutable subsystem over an n-object universe.
// journalDepth bounds the update journal kept for Versioned replay
// (0 means DefaultJournalDepth).
func NewMutable(attr string, n, journalDepth int) *Mutable {
	if journalDepth <= 0 {
		journalDepth = DefaultJournalDepth
	}
	return &Mutable{
		attr:       attr,
		n:          n,
		journalCap: journalDepth,
		lists:      make(map[string]*gradedset.List),
		sketches:   make(map[string]*Sketch),
	}
}

// Attribute implements Subsystem.
func (m *Mutable) Attribute() string { return m.attr }

// Size implements Subsystem.
func (m *Mutable) Size() int { return m.n }

// Set registers (or wholesale-replaces) the graded list returned for
// target. A replacement is not expressible as per-object deltas, so Set
// bumps the epoch and poisons the journal: UpdatesSince from any
// earlier epoch answers ok=false and consumers rebuild.
func (m *Mutable) Set(target string, l *gradedset.List) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lists[target] = l
	m.epoch++
	m.journal = m.journal[:0]
	m.floor = m.epoch
	delete(m.sketches, target)
}

// UpdateGrade changes the grade of obj under target to g, copy-on-write:
// the previously served snapshots are untouched, the next Query sees the
// new list, the epoch advances, and the change is journaled. A no-op
// update (the grade already is g) changes nothing, not even the epoch.
func (m *Mutable) UpdateGrade(target string, obj int, g float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.lists[target]
	if !ok {
		return fmt.Errorf("%w: %q for attribute %q", ErrUnknownTarget, target, m.attr)
	}
	old, err := l.Grade(obj)
	if err != nil {
		return fmt.Errorf("attribute %q target %q: %w", m.attr, target, err)
	}
	if old == g {
		return nil
	}
	nl, err := l.Updated(obj, g)
	if err != nil {
		return fmt.Errorf("attribute %q target %q: %w", m.attr, target, err)
	}
	m.lists[target] = nl
	m.epoch++
	delete(m.sketches, target)
	m.journal = append(m.journal, Update{Seq: m.epoch, Target: target, Object: obj, Old: old, New: g})
	if len(m.journal) > m.journalCap {
		drop := len(m.journal) - m.journalCap
		m.journal = append(m.journal[:0], m.journal[drop:]...)
		m.floor = m.journal[0].Seq - 1
	}
	return nil
}

// Query implements Subsystem: an immutable snapshot of the target's
// current list. Updates applied after Query never affect the returned
// source.
func (m *Mutable) Query(target string) (Source, error) {
	m.mu.RLock()
	l, ok := m.lists[target]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q for attribute %q", ErrUnknownTarget, target, m.attr)
	}
	return FromList(l), nil
}

// GradeSketch implements GradeSketcher: the exact equi-depth sketch of
// the target's current list, built on first request and cached until
// the next update that touches the target — Set and UpdateGrade both
// bump the epoch and drop the cached sketch, so a planner never cuts
// the universe against stale grade mass. Planning metadata, never
// metered. Unknown targets yield nil.
func (m *Mutable) GradeSketch(target string) *Sketch {
	m.mu.RLock()
	sk, ok := m.sketches[target]
	m.mu.RUnlock()
	if ok {
		return sk
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if sk, ok := m.sketches[target]; ok {
		return sk
	}
	l, ok := m.lists[target]
	if !ok {
		return nil
	}
	sk = SketchList(l)
	m.sketches[target] = sk
	return sk
}

// Epoch implements Versioned.
func (m *Mutable) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// UpdatesSince implements Versioned: the journaled updates with
// Seq > since, in order. ok is false when since predates the journal
// (overflow or a Set replacement) — the caller must assume anything may
// have changed.
func (m *Mutable) UpdatesSince(since uint64) ([]Update, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if since >= m.epoch {
		return nil, true
	}
	if since < m.floor {
		return nil, false
	}
	span := m.journal[since-m.floor:]
	out := make([]Update, len(span))
	copy(out, span)
	return out, true
}
