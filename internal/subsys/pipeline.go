package subsys

import (
	"sync"

	"fuzzydb/internal/gradedset"
)

// DefaultPrefetchCap bounds the adaptive readahead depth of a prefetch
// pipeline: deep enough to amortize per-call latency over hundreds of
// ranks, shallow enough that an early-stopping query never drags a large
// unread span out of a slow subsystem.
const DefaultPrefetchCap = 512

// PipelineStats reports what a list's background prefetch pipeline did:
// how deep the adaptive readahead grew, how often the consumer caught up
// with it (stalls are what drive the depth doubling), and how many
// physical batched sorted calls it issued against the source. Counters
// reflect batches that completed; a batch still in flight when the
// pipeline shuts down (shutdown never waits on the source) is not
// counted.
type PipelineStats struct {
	// MaxDepth is the largest batch depth any single refill used.
	MaxDepth int
	// Stalls counts the times a consumer had to wait for the pipeline.
	Stalls int
	// Batches counts the physical Entries calls issued to the source.
	Batches int
}

// Add merges two stat sets: counters sum, MaxDepth takes the maximum.
func (s PipelineStats) Add(o PipelineStats) PipelineStats {
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.Stalls += o.Stalls
	s.Batches += o.Batches
	return s
}

// pipeline is the background prefetcher of one Counted list: a single
// worker goroutine issues batched sorted accesses (src.Entries) ahead of
// the algorithm's consumption and parks the results in a spool the
// consumer absorbs into the list's uncounted prefix buffer. Prefetched
// ranks are NOT delivered — the Section 5 sorted tally and the grade
// memo advance only when the algorithm consumes a rank — so the pipeline
// is pure transport: it changes wall-clock, never cost.
//
// The batch depth adapts to the consumer: it starts at 1 (or a fixed
// configured depth), doubles every time a refill completes while the
// consumer is waiting (a stall: the pipeline is too shallow for the
// source's latency), up to maxDepth, and halves when a refill completes
// that the consumer has not even asked for yet (the algorithm fell
// behind; deep readahead would only be waste if the query stops early).
// The worker never runs more than depth ranks past the consumer's demand
// watermark, so a fenced or abandoned evaluation strands at most one
// batch.
//
// Exactly one goroutine consumes (the one driving the evaluation); the
// worker is the only other toucher. All shared state is guarded by mu;
// the two buffered-by-one channels carry wakeups, not data.
type pipeline struct {
	src    Source
	fs     FallibleSource // non-nil when src exposes the fallible face
	length int

	mu       sync.Mutex
	need     int               // consumer demand watermark (absolute rank)
	fetched  int               // ranks fetched so far (spool covers [absorbed, fetched))
	absorbed int               // ranks already drained to the Counted's prefix
	spool    []gradedset.Entry // fetched, not yet absorbed
	depth    int               // current batch depth
	adapt    bool              // adaptive depth (false = fixed)
	maxDepth int               // adaptive cap
	waiting  bool              // consumer is blocked in await right now
	closed   bool
	err      error // terminal source failure; set once, before closed
	stats    PipelineStats

	kick    chan struct{} // consumer -> worker: demand grew / close
	updates chan struct{} // worker -> consumer: fetched advanced / close
	done    chan struct{} // worker exited
}

// newPipeline starts the worker for src, resuming after the `buffered`
// ranks the list already holds. depth <= 0 selects the adaptive policy
// (start at 1, double on stall); maxDepth <= 0 selects DefaultPrefetchCap.
func newPipeline(src Source, fs FallibleSource, length, buffered, depth, maxDepth int) *pipeline {
	if maxDepth <= 0 {
		maxDepth = DefaultPrefetchCap
	}
	adapt := depth <= 0
	if adapt {
		depth = 1
	}
	if maxDepth < depth {
		maxDepth = depth
	}
	p := &pipeline{
		src:      src,
		fs:       fs,
		length:   length,
		need:     buffered,
		fetched:  buffered,
		absorbed: buffered,
		depth:    depth,
		adapt:    adapt,
		maxDepth: maxDepth,
		kick:     make(chan struct{}, 1),
		updates:  make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

// notify posts a non-blocking wakeup token; a token already pending is
// enough, since both loops re-check state after waking.
func notify(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// run is the worker loop: fetch batches of the current depth until the
// demand-plus-depth target is covered, park until kicked, repeat.
func (p *pipeline) run() {
	defer close(p.done)
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		target := p.need + p.depth
		if target > p.length {
			target = p.length
		}
		if p.fetched >= target {
			p.mu.Unlock()
			<-p.kick
			continue
		}
		lo, d := p.fetched, p.depth
		hi := lo + d
		if hi > target {
			hi = target
		}
		p.mu.Unlock()

		// The slow call, outside the lock: one batched sorted access.
		var span []gradedset.Entry
		var ferr error
		if p.fs != nil {
			span, ferr = p.fs.TryEntries(lo, hi)
		} else {
			span = p.src.Entries(lo, hi)
		}

		p.mu.Lock()
		if p.closed {
			// Closed mid-flight: discard the span; fetched stays put, so
			// the spool and the watermark remain consistent.
			p.mu.Unlock()
			return
		}
		if len(span) < hi-lo {
			// The batch came back short: a terminal source failure inside
			// it, or — with no error — a stream that genuinely ended early
			// (a shard view truncated by work stealing). Either way absorb
			// the partial span (the consumer still drains it; a failure
			// pins to the first missing rank), record the cause if any,
			// and shut down: fetched advances only by what arrived, so
			// await never over-promises and the consumer falls through to
			// a direct read that settles the stream as failed or dry. An
			// error alongside a COMPLETE span is not a failure of this
			// batch — a source that scans beyond the request internally
			// (a shard view's chunked re-ranking) hit a fault past it —
			// and is dropped: the site re-fires if a later batch actually
			// needs the faulty rank.
			p.spool = append(p.spool, span...)
			p.fetched = lo + len(span)
			p.stats.Batches++
			p.err = ferr
			p.closed = true
			p.mu.Unlock()
			notify(p.updates)
			return
		}
		p.spool = append(p.spool, span...)
		p.fetched = hi
		p.stats.Batches++
		if d > p.stats.MaxDepth {
			p.stats.MaxDepth = d
		}
		if p.adapt {
			if p.waiting {
				// The consumer is stalled on us: the batch was too small
				// for the source's latency. Double it.
				if p.depth < p.maxDepth {
					p.depth *= 2
					if p.depth > p.maxDepth {
						p.depth = p.maxDepth
					}
				}
			} else if p.need <= lo && p.depth > 1 {
				// The consumer has not demanded even the start of this
				// batch: it fell behind. Shrink the speculation.
				p.depth /= 2
			}
		}
		p.mu.Unlock()
		notify(p.updates)
	}
}

// demand raises the consumer's watermark to n ranks (clamped to the list
// length) and wakes the worker. Demands are monotone.
func (p *pipeline) demand(n int) {
	if n > p.length {
		n = p.length
	}
	p.mu.Lock()
	if n > p.need {
		p.need = n
		notify(p.kick)
	}
	p.mu.Unlock()
}

// await blocks until at least n ranks are fetched, the pipeline closes,
// or stop fires; it reports whether the n ranks are available. A wait
// counts as one stall (and, via the waiting flag, drives the worker's
// depth doubling). stop may be nil.
func (p *pipeline) await(n int, stop <-chan struct{}) bool {
	if n > p.length {
		n = p.length
	}
	p.mu.Lock()
	if n > p.need {
		p.need = n
		notify(p.kick)
	}
	if p.fetched >= n {
		p.mu.Unlock()
		return true
	}
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.stats.Stalls++
	p.waiting = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.waiting = false
		p.mu.Unlock()
	}()
	for {
		select {
		case <-p.updates:
		case <-stop:
			return false
		}
		p.mu.Lock()
		if p.fetched >= n {
			p.mu.Unlock()
			return true
		}
		if p.closed {
			p.mu.Unlock()
			return false
		}
		p.mu.Unlock()
	}
}

// drainInto appends every fetched-but-unabsorbed entry to dst and marks
// it absorbed. Non-blocking; the entries are copies, safe to keep.
func (p *pipeline) drainInto(dst []gradedset.Entry) []gradedset.Entry {
	p.mu.Lock()
	if len(p.spool) > 0 {
		dst = append(dst, p.spool...)
		p.spool = p.spool[:0]
		p.absorbed = p.fetched
	}
	p.mu.Unlock()
	return dst
}

// close stops the worker: no further source accesses are issued once the
// in-flight batch (if any) returns. Idempotent, non-blocking, safe from
// any goroutine. Already-fetched entries remain drainable.
func (p *pipeline) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	notify(p.kick)
	notify(p.updates)
}

// join waits for the worker to exit; call close first. A wedged source
// call wedges join too — abandoning callers skip it.
func (p *pipeline) join() { <-p.done }

// failure returns the terminal source error the worker hit, if any. Set
// at most once, strictly before the pipeline closes, so a consumer that
// observed the close (await returned false) reads a settled value.
func (p *pipeline) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// snapshot returns the stats so far.
func (p *pipeline) snapshot() PipelineStats {
	p.mu.Lock()
	s := p.stats
	p.mu.Unlock()
	return s
}
