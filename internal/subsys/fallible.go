package subsys

import (
	"errors"
	"fmt"

	"fuzzydb/internal/gradedset"
)

// FallibleSource is the optional failure-aware face of a Source: a
// subsystem whose accesses can fail (a remote engine, a flaky transport)
// implements the Try* variants alongside the plain interface. Counted
// detects the capability at wrap time and routes every physical access
// through it; the plain methods exist only to satisfy Source for
// consumers that never look, and by convention they forward to the
// underlying data without surfacing faults.
//
// Contract for the Try* methods: on a nil error the result is complete
// (TryEntries returns exactly hi−lo entries). On a non-nil error
// TryEntries may return a partial span — the longest prefix of [lo, hi)
// it obtained before failing — which the middleware absorbs, so the
// failure is pinned to the first undelivered rank regardless of how the
// caller batched its requests. A source that internally reads beyond
// the request (a shard view's chunked re-ranking) may even return a
// complete span alongside an error; the middleware treats that as
// success, since the fault lies past the demanded ranks and will
// re-fire on the first request that actually needs it.
type FallibleSource interface {
	Source
	// TryEntry performs one fallible sorted access.
	TryEntry(rank int) (gradedset.Entry, error)
	// TryEntries performs fallible batched sorted access for ranks
	// [lo, hi). On error the returned span holds the ranks obtained
	// before the failure (possibly none).
	TryEntries(lo, hi int) ([]gradedset.Entry, error)
	// TryGrade performs one fallible random access.
	TryGrade(obj int) (float64, error)
}

// SourceError is the typed failure the middleware surfaces when a
// list's source fails: which list, where in which access mode, how many
// attempts were made, and the underlying cause. It propagates unchanged
// through every executor up to the engine, so callers select on it with
// errors.As.
type SourceError struct {
	// List is the index of the failed list within the evaluation.
	List int
	// Rank locates the failure: the sorted rank of the first
	// undelivered entry when Random is false, the object id of the
	// failed probe when Random is true.
	Rank int
	// Random reports which access mode failed.
	Random bool
	// Attempts is the total number of physical attempts made at the
	// failing site (≥ 1; > 1 when a Resilient wrapper retried).
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *SourceError) Error() string {
	if e.Random {
		return fmt.Sprintf("subsys: list %d: random access failed at object %d after %d attempt(s): %v",
			e.List, e.Rank, e.Attempts, e.Err)
	}
	return fmt.Sprintf("subsys: list %d: sorted access failed at rank %d after %d attempt(s): %v",
		e.List, e.Rank, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SourceError) Unwrap() error { return e.Err }

// newSourceError builds the sticky typed error for one list failure,
// lifting the attempt count out of a RetryError cause when present.
func newSourceError(list, rank int, random bool, err error) *SourceError {
	attempts := 1
	var re *RetryError
	if errors.As(err, &re) {
		attempts = re.Attempts
	}
	return &SourceError{List: list, Rank: rank, Random: random, Attempts: attempts, Err: err}
}
