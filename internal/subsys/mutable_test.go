package subsys

import (
	"errors"
	"sync"
	"testing"

	"fuzzydb/internal/gradedset"
)

func mutableFixture(t *testing.T) *Mutable {
	t.Helper()
	l, err := gradedset.NewList([]gradedset.Entry{
		{Object: 0, Grade: 0.9},
		{Object: 1, Grade: 0.6},
		{Object: 2, Grade: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable("A", 3, 4)
	m.Set("*", l)
	return m
}

func TestMutableSnapshotIsolation(t *testing.T) {
	m := mutableFixture(t)
	before, err := m.Query("*")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateGrade("*", 2, 0.95); err != nil {
		t.Fatal(err)
	}
	// The snapshot taken before the update still reads the old data.
	if g := before.Grade(2); g != 0.3 {
		t.Fatalf("snapshot grade(2) = %g, want 0.3", g)
	}
	if before.Entry(0).Object != 0 {
		t.Fatalf("snapshot top = %v, want object 0", before.Entry(0))
	}
	after, err := m.Query("*")
	if err != nil {
		t.Fatal(err)
	}
	if g := after.Grade(2); g != 0.95 {
		t.Fatalf("fresh snapshot grade(2) = %g, want 0.95", g)
	}
	if after.Entry(0) != (gradedset.Entry{Object: 2, Grade: 0.95}) {
		t.Fatalf("fresh snapshot top = %v", after.Entry(0))
	}
}

func TestMutableEpochAndJournal(t *testing.T) {
	m := mutableFixture(t)
	base := m.Epoch() // Set bumps the epoch; record the baseline
	if ups, ok := m.UpdatesSince(base); !ok || len(ups) != 0 {
		t.Fatalf("UpdatesSince(current) = %v, %v", ups, ok)
	}
	if err := m.UpdateGrade("*", 0, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateGrade("*", 1, 0.8); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != base+2 {
		t.Fatalf("epoch = %d, want %d", got, base+2)
	}
	ups, ok := m.UpdatesSince(base)
	if !ok || len(ups) != 2 {
		t.Fatalf("UpdatesSince(%d) = %v, %v", base, ups, ok)
	}
	want0 := Update{Seq: base + 1, Target: "*", Object: 0, Old: 0.9, New: 0.1}
	if ups[0] != want0 {
		t.Fatalf("update 0 = %+v, want %+v", ups[0], want0)
	}
	// No-op updates are invisible: same grade, no epoch, no journal entry.
	if err := m.UpdateGrade("*", 1, 0.8); err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != base+2 {
		t.Fatalf("no-op bumped epoch to %d", got)
	}
}

func TestMutableJournalOverflow(t *testing.T) {
	m := mutableFixture(t) // journal depth 4
	base := m.Epoch()
	for i := 0; i < 6; i++ {
		if err := m.UpdateGrade("*", 0, float64(i+1)/10); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.UpdatesSince(base); ok {
		t.Fatal("overflowed journal still claims full replay")
	}
	if ups, ok := m.UpdatesSince(base + 2); !ok || len(ups) != 4 {
		t.Fatalf("UpdatesSince(base+2) = %d updates, ok=%v; want 4, true", len(ups), ok)
	}
}

func TestMutableSetPoisonsJournal(t *testing.T) {
	m := mutableFixture(t)
	base := m.Epoch()
	l, err := gradedset.NewList([]gradedset.Entry{
		{Object: 0, Grade: 1}, {Object: 1, Grade: 0}, {Object: 2, Grade: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Set("*", l)
	if m.Epoch() <= base {
		t.Fatal("Set did not bump the epoch")
	}
	if _, ok := m.UpdatesSince(base); ok {
		t.Fatal("Set is not journalable; UpdatesSince must answer ok=false")
	}
	if ups, ok := m.UpdatesSince(m.Epoch()); !ok || len(ups) != 0 {
		t.Fatalf("UpdatesSince(current) after Set = %v, %v", ups, ok)
	}
}

func TestMutableUpdateErrors(t *testing.T) {
	m := mutableFixture(t)
	if err := m.UpdateGrade("missing", 0, 0.5); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target: err = %v", err)
	}
	if err := m.UpdateGrade("*", 99, 0.5); !errors.Is(err, gradedset.ErrUnknownObject) {
		t.Fatalf("unknown object: err = %v", err)
	}
	if err := m.UpdateGrade("*", 0, 2); err == nil {
		t.Fatal("invalid grade accepted")
	}
}

// TestMutableConcurrentReadersWriters hammers Query/UpdateGrade/Epoch/
// UpdatesSince from many goroutines; run under -race it pins the lock
// discipline, and every snapshot a reader obtains must be internally
// consistent (validated).
func TestMutableConcurrentReadersWriters(t *testing.T) {
	entries := make([]gradedset.Entry, 32)
	for i := range entries {
		entries[i] = gradedset.Entry{Object: i, Grade: float64(i) / 32}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMutable("A", 32, 16)
	m.Set("*", l)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := m.UpdateGrade("*", (w*7+i)%32, float64(i%11)/10); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			since := m.Epoch()
			for i := 0; i < 100; i++ {
				src, err := m.Query("*")
				if err != nil {
					t.Error(err)
					return
				}
				last := 2.0
				for r := 0; r < src.Len(); r++ {
					g := src.Entry(r).Grade
					if g > last {
						t.Errorf("snapshot unsorted at rank %d", r)
						return
					}
					last = g
				}
				if ups, ok := m.UpdatesSince(since); ok {
					for j := 1; j < len(ups); j++ {
						if ups[j].Seq != ups[j-1].Seq+1 {
							t.Errorf("journal gap: %d then %d", ups[j-1].Seq, ups[j].Seq)
							return
						}
					}
				} else {
					since = m.Epoch()
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestMutableIsVersionedSubsystem(t *testing.T) {
	var s Subsystem = NewMutable("A", 1, 0)
	if _, ok := s.(Versioned); !ok {
		t.Fatal("Mutable must implement Versioned")
	}
	if _, ok := s.(interface{ Epoch() uint64 }); !ok {
		t.Fatal("epoch capability missing")
	}
	// Static remains immutable by contract: not Versioned.
	if _, ok := Subsystem(NewStatic("A", 1)).(Versioned); ok {
		t.Fatal("Static must not claim Versioned")
	}
}
