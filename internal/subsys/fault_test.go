package subsys

import (
	"errors"
	"fmt"
	"testing"

	"fuzzydb/internal/gradedset"
)

// descendingList builds an n-entry list with distinct descending grades.
func descendingList(t *testing.T, n int) *gradedset.List {
	t.Helper()
	entries := make([]gradedset.Entry, n)
	for i := range entries {
		entries[i] = gradedset.Entry{Object: i, Grade: 1 - float64(i)/float64(n+1)}
	}
	return listOf(t, entries)
}

// faultRanks maps the plan's sorted-access fault sites over [0, n) by
// probing each rank on a fresh source.
func faultRanks(t *testing.T, base Source, plan FaultPlan, n int) map[int]bool {
	t.Helper()
	sites := make(map[int]bool)
	for r := 0; r < n; r++ {
		f := NewFaultSource(base, plan)
		if _, err := f.TryEntries(r, r+1); err != nil {
			sites[r] = true
		}
	}
	return sites
}

func TestFaultSourceSitesAreBatchIndependent(t *testing.T) {
	const n = 200
	base := FromList(descendingList(t, n))
	plan := FaultPlan{Seed: 42, Rate: 0.1}
	sites := faultRanks(t, base, plan, n)
	if len(sites) == 0 || len(sites) == n {
		t.Fatalf("degenerate site set: %d of %d", len(sites), n)
	}

	// Whatever the span shape, TryEntries fails at exactly the first site
	// in the span and returns the partial prefix before it.
	for _, width := range []int{1, 3, 7, n} {
		f := NewFaultSource(base, plan)
		for lo := 0; lo < n; lo += width {
			hi := lo + width
			if hi > n {
				hi = n
			}
			first := -1
			for r := lo; r < hi; r++ {
				if sites[r] {
					first = r
					break
				}
			}
			span, err := f.TryEntries(lo, hi)
			if first < 0 {
				if err != nil {
					t.Fatalf("width %d [%d,%d): unexpected error %v", width, lo, hi, err)
				}
				if len(span) != hi-lo {
					t.Fatalf("width %d [%d,%d): %d entries", width, lo, hi, len(span))
				}
				continue
			}
			if err == nil {
				t.Fatalf("width %d [%d,%d): expected fault at %d", width, lo, hi, first)
			}
			var fe *FaultError
			if !errors.As(err, &fe) || fe.Key != first || fe.Random {
				t.Fatalf("width %d [%d,%d): error %v, want sorted fault at %d", width, lo, hi, err, first)
			}
			if len(span) != first-lo {
				t.Fatalf("width %d [%d,%d): partial span %d entries, want %d", width, lo, hi, len(span), first-lo)
			}
		}
	}
}

func TestFaultSourceTransientClears(t *testing.T) {
	const n = 50
	base := FromList(descendingList(t, n))
	plan := FaultPlan{Seed: 7, Rate: 0.2, Transient: 2}
	sites := faultRanks(t, base, FaultPlan{Seed: 7, Rate: 0.2}, n)
	var site int
	for r := range sites {
		site = r
		break
	}

	f := NewFaultSource(base, plan)
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := f.TryEntries(site, site+1)
		var fe *FaultError
		if !errors.As(err, &fe) || !fe.Temporary {
			t.Fatalf("attempt %d: err = %v, want transient fault", attempt, err)
		}
	}
	span, err := f.TryEntries(site, site+1)
	if err != nil || len(span) != 1 {
		t.Fatalf("after clearing: span %d, err %v", len(span), err)
	}
	if f.Injected() != 2 {
		t.Errorf("Injected = %d, want 2", f.Injected())
	}
}

func TestFaultSourcePlainFaceNeverFails(t *testing.T) {
	const n = 40
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{Seed: 1, Rate: 1})
	if got := f.Entries(0, n); len(got) != n {
		t.Errorf("Entries delivered %d of %d under rate-1 faults", len(got), n)
	}
	if g := f.Grade(3); g != base.Grade(3) {
		t.Errorf("Grade(3) = %v, want %v", g, base.Grade(3))
	}
	if f.Injected() != 0 {
		t.Errorf("plain access injected %d faults", f.Injected())
	}
}

func TestFaultSourcePhaseTargeting(t *testing.T) {
	const n = 60
	base := FromList(descendingList(t, n))
	sorted := NewFaultSource(base, FaultPlan{Seed: 3, Rate: 1, Phase: FaultSortedAccess})
	if _, err := sorted.TryGrade(5); err != nil {
		t.Errorf("sorted-only plan failed a random access: %v", err)
	}
	if _, err := sorted.TryEntries(0, n); err == nil {
		t.Error("sorted-only plan at rate 1 never failed sorted access")
	}
	random := NewFaultSource(base, FaultPlan{Seed: 3, Rate: 1, Phase: FaultRandomAccess})
	if _, err := random.TryEntries(0, n); err != nil {
		t.Errorf("random-only plan failed a sorted access: %v", err)
	}
	if _, err := random.TryGrade(5); err == nil {
		t.Error("random-only plan at rate 1 never failed random access")
	}
}

func TestFaultSourceFailAfter(t *testing.T) {
	const n = 30
	base := FromList(descendingList(t, n))
	f := NewFaultSource(base, FaultPlan{FailAfter: 2})
	if _, err := f.TryEntries(0, 5); err != nil {
		t.Fatalf("access 1: %v", err)
	}
	if _, err := f.TryGrade(7); err != nil {
		t.Fatalf("access 2: %v", err)
	}
	_, err := f.TryGrade(8)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Key != -1 || fe.Temporary {
		t.Fatalf("access 3: err = %v, want permanent exhaustion fault", err)
	}
	if _, err := f.TryEntries(5, 6); err == nil {
		t.Error("exhaustion should be permanent")
	}
}

func TestWithFaultsDerivesPerTargetSeeds(t *testing.T) {
	const n = 120
	sub := NewStatic("A", n)
	for _, target := range []string{"x", "y"} {
		sub.Set(target, descendingList(t, n))
	}
	fsub := WithFaults(sub, FaultPlan{Seed: 9, Rate: 0.15})
	sitesOf := func(target string) map[int]bool {
		sites := make(map[int]bool)
		for r := 0; r < n; r++ {
			src, err := fsub.Query(target)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := src.(FallibleSource).TryEntries(r, r+1); err != nil {
				sites[r] = true
			}
		}
		return sites
	}
	x, y := sitesOf("x"), sitesOf("y")
	if len(x) == 0 || len(y) == 0 {
		t.Fatalf("degenerate site sets: %d, %d", len(x), len(y))
	}
	same := len(x) == len(y)
	if same {
		for r := range x {
			if !y[r] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("targets x and y drew identical fault sites; per-target seed derivation broken")
	}
	if fsub.Injected() == 0 {
		t.Error("subsystem-level Injected stayed 0")
	}
}

func TestFaultSourceErrorStrings(t *testing.T) {
	cases := []struct {
		err  FaultError
		want string
	}{
		{FaultError{Key: 4}, "subsys: injected permanent sorted-access fault at 4"},
		{FaultError{Random: true, Key: 9, Temporary: true}, "subsys: injected transient random-access fault at 9"},
		{FaultError{Key: -1}, "subsys: injected fault: source exhausted (fail-after limit)"},
	}
	for _, tc := range cases {
		if got := tc.err.Error(); got != tc.want {
			t.Errorf("Error() = %q, want %q", got, tc.want)
		}
	}
	se := &SourceError{List: 2, Rank: 17, Err: &FaultError{Key: 17}}
	if !errors.As(fmt.Errorf("wrap: %w", se), new(*SourceError)) {
		t.Error("SourceError not reachable through errors.As")
	}
	var fe *FaultError
	if !errors.As(se, &fe) || fe.Key != 17 {
		t.Error("SourceError does not unwrap to the injected fault")
	}
}
