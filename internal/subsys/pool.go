package subsys

import "sync"

// denseCache memoizes grades over the dense universe {0,…,N−1} with an
// epoch-stamped flat array: grades[obj] is valid iff stamp[obj] == gen.
// Reuse is O(1) — bumping gen invalidates every slot at once — so a cache
// drawn from the pool is ready without zeroing N slots, which matters
// because the algorithms touch only a sublinear fraction of them.
type denseCache struct {
	n      int
	gen    uint32
	grades []float64
	stamp  []uint32
	seen   []int // objects with known grades, in first-seen order
}

// get returns the memoized grade of obj, if known.
func (d *denseCache) get(obj int) (float64, bool) {
	if obj < 0 || obj >= d.n || d.stamp[obj] != d.gen {
		return 0, false
	}
	return d.grades[obj], true
}

// put memoizes the grade of obj. It reports false when obj lies outside
// the universe (the caller falls back to its overflow map).
func (d *denseCache) put(obj int, g float64) bool {
	if obj < 0 || obj >= d.n {
		return false
	}
	if d.stamp[obj] != d.gen {
		d.stamp[obj] = d.gen
		d.seen = append(d.seen, obj)
	}
	d.grades[obj] = g
	return true
}

var denseCachePool sync.Pool // of *denseCache

// acquireDenseCache returns a cache ready for a universe of size n, with
// every slot unknown. Concurrent evaluations each acquire their own.
func acquireDenseCache(n int) *denseCache {
	d, _ := denseCachePool.Get().(*denseCache)
	if d == nil || cap(d.stamp) < n {
		return &denseCache{
			n:      n,
			gen:    1,
			grades: make([]float64, n),
			stamp:  make([]uint32, n),
		}
	}
	d.n = n
	d.grades = d.grades[:cap(d.grades)]
	d.stamp = d.stamp[:cap(d.stamp)]
	d.seen = d.seen[:0]
	d.gen++
	if d.gen == 0 { // epoch wrap: stale stamps could alias; clear once
		clear(d.stamp)
		d.gen = 1
	}
	return d
}

// releaseDenseCache returns a cache to the pool for reuse.
func releaseDenseCache(d *denseCache) {
	denseCachePool.Put(d)
}
