package subsys

import (
	"testing"
	"time"

	"fuzzydb/internal/gradedset"
)

// pipelineList builds a descending-grade list over the dense universe.
func pipelineList(t *testing.T, n int) *gradedset.List {
	t.Helper()
	entries := make([]gradedset.Entry, n)
	for i := range entries {
		entries[i] = gradedset.Entry{Object: i, Grade: 1 - float64(i)/float64(n+1)}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestPipelinePaysOnDeliveryOnly is the pay-on-delivery invariant at the
// subsys layer: readahead through the background pipeline must not move
// the sorted tally or the grade memo; consumption meters exactly what
// the cursor delivered, whatever the pipeline buffered beyond it.
func TestPipelinePaysOnDeliveryOnly(t *testing.T) {
	c := Count(FromList(pipelineList(t, 256)))
	defer c.Release()
	c.StartPrefetch(0, 64)
	cu := NewCursor(c)
	cu.DemandAhead(50)
	if !cu.AwaitAhead(50, nil) {
		t.Fatal("pipeline did not deliver 50 ranks")
	}
	if got := c.Cost(); got.Sorted != 0 || got.Random != 0 {
		t.Fatalf("prefetching cost %v, want zero", got)
	}
	for i := 0; i < 10; i++ {
		if _, ok := cu.Next(); !ok {
			t.Fatalf("cursor dry at rank %d", i)
		}
	}
	if got := c.Cost(); got.Sorted != 10 {
		t.Fatalf("sorted tally %d after consuming 10, want 10", got.Sorted)
	}
	// Rank 20 was buffered but never delivered: its grade must not be in
	// the memo (a later random access on it must still cost).
	if _, known := c.Known(20); known {
		t.Error("undelivered prefetched rank leaked into the grade memo")
	}
}

// TestPipelineBatchesSortedAccess pins the amortization: draining a list
// through an adaptive pipeline must cost far fewer physical source calls
// than ranks, because the batch depth doubles as the consumer stalls.
func TestPipelineBatchesSortedAccess(t *testing.T) {
	const n = 2048
	lat := NewLatencySource(FromList(pipelineList(t, n)), 20*time.Microsecond, 0)
	c := Count(lat)
	defer c.Release()
	c.StartPrefetch(0, 0)
	cu := NewCursor(c)
	for {
		cu.DemandAhead(1)
		if !cu.AwaitAhead(1, nil) {
			break
		}
		if _, ok := cu.Next(); !ok {
			break
		}
	}
	if got := c.Cost().Sorted; got != n {
		t.Fatalf("consumed %d ranks, want %d", got, n)
	}
	calls := lat.Calls()
	if calls >= n/4 {
		t.Errorf("pipeline issued %d calls for %d ranks; batching did not amortize", calls, n)
	}
	s, ok := c.PrefetchStats()
	if !ok {
		t.Fatal("no pipeline stats")
	}
	if s.MaxDepth <= 1 {
		t.Errorf("adaptive depth never grew: max %d", s.MaxDepth)
	}
	if int64(s.Batches) != calls {
		t.Errorf("stats count %d batches, source saw %d calls", s.Batches, calls)
	}
	t.Logf("%d ranks in %d calls, max depth %d, %d stalls", n, calls, s.MaxDepth, s.Stalls)
}

// TestPipelineFenceDrains: fencing a list mid-stream closes its pipeline
// (no further physical calls once the in-flight batch lands) and the
// cursor reports exhaustion.
func TestPipelineFenceDrains(t *testing.T) {
	lat := NewLatencySource(FromList(pipelineList(t, 1024)), 50*time.Microsecond, 0)
	c := Count(lat)
	c.StartPrefetch(0, 32)
	cu := NewCursor(c)
	cu.DemandAhead(16)
	cu.AwaitAhead(16, nil)
	for i := 0; i < 8; i++ {
		cu.Next()
	}
	c.Fence()
	if _, ok := cu.Next(); ok {
		t.Error("cursor delivered past a fence")
	}
	time.Sleep(5 * time.Millisecond) // let any in-flight batch land
	before := lat.Calls()
	time.Sleep(10 * time.Millisecond)
	if after := lat.Calls(); after != before {
		t.Errorf("pipeline still fetching after fence: %d -> %d calls", before, after)
	}
	if got := c.Cost().Sorted; got != 8 {
		t.Errorf("fenced list's sorted tally %d, want 8", got)
	}
	c.Release()
	if s, ok := c.PrefetchStats(); !ok || s.Batches == 0 {
		t.Errorf("stats lost across Release: %v %v", s, ok)
	}
}

// TestLatencySourceShape pins the wrapper's accounting: one physical
// call per operation, item counts matching the delivered span, and
// tallies (via Counted) identical to the unwrapped source.
func TestLatencySourceShape(t *testing.T) {
	l := pipelineList(t, 64)
	lat := NewLatencySource(FromList(l), 0, 0)
	if n, dense := lat.Universe(); !dense || n != 64 {
		t.Fatalf("Universe() = %d, %v; want 64, true", n, dense)
	}
	span := lat.Entries(0, 10)
	if len(span) != 10 {
		t.Fatalf("Entries returned %d", len(span))
	}
	lat.Grade(3)
	lat.Entry(12)
	if lat.Calls() != 3 {
		t.Errorf("Calls() = %d, want 3", lat.Calls())
	}
	if lat.Items() != 12 {
		t.Errorf("Items() = %d, want 12", lat.Items())
	}
}

// wedgeSource parks every Entries call after the first on a channel.
type wedgeSource struct {
	Source
	release chan struct{}
	calls   int
}

func (w *wedgeSource) Entries(lo, hi int) []gradedset.Entry {
	w.calls++
	if w.calls > 1 {
		<-w.release
	}
	return w.Source.Entries(lo, hi)
}

// TestReleaseDoesNotWaitOutWedgedBatch: releasing a list whose pipeline
// has a wedged batch in flight must return promptly — a budget-stopped
// evaluation still releases its lists, and a wedged subsystem must not
// wedge the caller.
func TestReleaseDoesNotWaitOutWedgedBatch(t *testing.T) {
	w := &wedgeSource{Source: FromList(pipelineList(t, 512)), release: make(chan struct{})}
	defer close(w.release) // let the abandoned worker finish
	c := Count(w)
	c.StartPrefetch(0, 64)
	cu := NewCursor(c)
	cu.DemandAhead(1)
	cu.AwaitAhead(1, nil) // first batch lands
	cu.DemandAhead(64)    // second batch goes in flight and wedges
	time.Sleep(5 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Release blocked on a wedged in-flight batch")
	}
}
