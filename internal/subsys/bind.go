package subsys

import "context"

// ContextSource is the optional per-request capability of a Source whose
// physical accesses should be performed under the caller's context — a
// remote source issuing RPCs, most prominently. The engine binds the
// request context to every capable source when it builds an evaluation
// (core.NewExecContext), so cancellation and deadlines propagate into
// in-flight transport calls instead of only being polled between
// accesses.
//
// BindContext may be called while earlier accesses are still in flight
// (a background prefetch pipeline from a previous page, a retried call
// abandoned by a timeout), so implementations must store the context
// race-safely (an atomic pointer) and in-flight calls may finish under
// the previously bound context. Binding nil or context.Background()
// clears any deadline coupling.
type ContextSource interface {
	// BindContext makes subsequent accesses run under ctx.
	BindContext(ctx context.Context)
}

// BindContext binds ctx to every source that declares the ContextSource
// capability; the rest are untouched. Wrappers (Counted, shard views,
// resilience/fault/latency layers) forward the capability to what they
// wrap, so the binding reaches the transport no matter how deep the
// stack is.
func BindContext(ctx context.Context, srcs []Source) {
	for _, s := range srcs {
		bindContext(ctx, s)
	}
}

// bindContext binds ctx to one source when it has the capability.
func bindContext(ctx context.Context, s Source) {
	if cs, ok := s.(ContextSource); ok {
		cs.BindContext(ctx)
	}
}

// BindContext forwards the request context to the wrapped source (see
// ContextSource); no-op after Release or when the source lacks the
// capability.
func (c *Counted) BindContext(ctx context.Context) {
	if c.src != nil {
		bindContext(ctx, c.src)
	}
}

// BindContext forwards the request context to the view's parent source,
// so a sharded evaluation over remote sources still runs its RPCs under
// the request context. Idempotent across the P views of one parent.
func (s *ShardView) BindContext(ctx context.Context) { bindContext(ctx, s.parent) }

// BindContext forwards the request context through the resilience layer.
func (r *ResilientSource) BindContext(ctx context.Context) { bindContext(ctx, r.src) }

// BindContext forwards the request context through the fault injector.
func (f *FaultSource) BindContext(ctx context.Context) { bindContext(ctx, f.src) }

// BindContext forwards the request context through the latency wrapper.
func (s *LatencySource) BindContext(ctx context.Context) { bindContext(ctx, s.src) }

// BindContext forwards the request context through validation.
func (v *validatedSource) BindContext(ctx context.Context) { bindContext(ctx, v.src) }
