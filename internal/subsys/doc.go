// Package subsys models the subsystems a Garlic-style middleware talks
// to, and the only two ways it may talk to them (Section 4):
//
//   - sorted access: the subsystem streams its graded result set in
//     descending grade order, one object at a time (or as a batched
//     span via Entries — semantically the same per-rank accesses,
//     delivered in one call);
//   - random access: the middleware asks for the grade of one given
//     object.
//
// Source is the minimal interface exposing both modes over a materialized
// result. Counted wraps a Source with the bookkeeping the cost model of
// Section 5 needs: it meters every access, memoizes grades the middleware
// has already seen (a repeated request costs nothing, matching the
// paper's "the grade has already been determined, so random access is not
// needed"), and exposes the sequential cursor semantics of sorted access.
//
// # Dense-universe fast path
//
// Every subsystem in this repository grades exactly the objects
// {0,…,N−1}, and a Source over such a universe advertises it through the
// optional UniverseHinter interface. Counted then backs its grade memo
// with a pooled, epoch-stamped flat array instead of a map, so a metered
// access is a pair of array writes; the delivered sorted prefix is kept
// in order so re-reads never touch the source. Sources over sparse or
// undeclared object sets (custom integrations, filtered views) silently
// fall back to the map memo with identical semantics and identical
// Section 5 access counts — the fast path is a mechanical speedup, never
// a behavioral change, and the equivalence tests in core pin exactly
// that. Call Release (or subsys.ReleaseAll) after an evaluation to
// recycle the pooled arrays; long-lived consumers such as paginators may
// simply skip it.
//
// # Readahead vs delivery: the pay-on-delivery invariant
//
// Counted distinguishes buffering from paying: Prefetch reads sorted
// ranks from the source into the prefix buffer without advancing the
// sorted-access tally or the grade memo, and consumption (EntryAt, the
// cursors) delivers buffered ranks, at which point they are metered and
// memoized. A concurrent executor exploits this to overlap the per-round
// sorted accesses of all m lists — readahead is a latency-hiding detail
// of the transport, while the Section 5 tallies record exactly what the
// algorithm consumed, bit-identical to a serial evaluation.
//
// # Background prefetch pipelines
//
// StartPrefetch extends the readahead buffer into a background per-list
// pipeline: a worker goroutine issues batched sorted accesses
// (src.Entries) ahead of the algorithm's demand, with adaptive depth —
// start at 1, double every time the consumer stalls on the pipeline,
// shrink when the consumer falls behind, capped at DefaultPrefetchCap —
// so the per-call latency of a slow or remote source is amortized over
// ever-larger spans exactly when the source is slow enough to warrant
// it. The pay-on-delivery invariant is unchanged: the worker fills a
// spool the consumer absorbs into the (still uncounted) prefix buffer,
// and only consumption meters and memoizes, so tallies stay
// bit-identical however deep the pipeline ran. The random-access twins
// SourceGrade (raw, unmetered, callable concurrently) and DeliverGrade
// (pays in serial order) let an executor overlap random accesses across
// lists and objects under the same invariant.
//
// Lifecycle: Fence drains a list's pipeline (no further accesses once
// the in-flight batch lands), Release stops and joins it, AbortPrefetch
// closes it without waiting (cancellation with a wedged batch in
// flight, budget-reservation failure — an exhausted budget must stop
// even uncounted readahead). A pipelined source must tolerate
// concurrent reads: every built-in source does, the stateful Validated
// wrapper does not.
//
// # Partitioned universes (sharding)
//
// PlanShards splits the dense universe into P contiguous ranges, and
// ShardView presents the restriction of a parent Source to one range as
// a full-fledged Source of its own: objects renumbered to a local dense
// universe (so the flat-array fast path applies per shard with pooled,
// shard-sized memos), sorted order re-ranked lazily by scanning the
// parent's canonical order forward — a comparison-only scan, never a
// metered access, and never an O(N) per-query copy. A per-shard Counted
// over the view meters exactly the accesses that shard's evaluation
// consumed, so per-shard Section 5 tallies compose by addition.
//
// Fence supports the threshold-aware merge that sits above the views: a
// shard driver that can prove a shard's remaining objects are out of
// the global top k closes the shard's sorted streams, the algorithm's
// cursors run dry, and its completion phase runs over what was seen.
// What Fence never touches: delivered prefixes, tallies, memos, or
// random access.
//
// # Grade-distribution sketches (planning metadata)
//
// A Sketch is an equi-depth histogram of one list's grade mass over the
// id axis: at most DefaultSketchBuckets contiguous id buckets cut so
// each holds a near-equal share of the list's total grade, which makes
// the cuts quantiles of the mass distribution — hot id regions get
// narrow buckets, cold tails get wide ones — and MassBetween answers
// "how much grade lives in [lo, hi)?" with per-bucket uniform
// interpolation. SketchList builds the exact sketch from a materialized
// list; SampleSketch estimates one from any Source using a bounded,
// deterministic burst of strided random probes and no sorted access at
// all, for opaque or remote subsystems whose sorted streams must not be
// disturbed. Sketches are planning metadata, not evaluation state:
// building one is never a metered access and never moves a cursor, so
// the Section 5 tallies of a query are identical whether or not its
// shard plan consulted sketches. Static and Mutable subsystems cache
// one sketch per target and invalidate it with exactly the mutations
// that move grade mass (UpdateGrade, Set — the same events that bump a
// Versioned epoch), so a planner never cuts the universe against stale
// distributions. core.PlanShardsWeighted consumes these to place shard
// boundaries at quantiles of expected work instead of object count.
//
// Sharding and the prefetch pipelines compose: a Counted over a
// ShardView may run StartPrefetch, so the pipeline worker drives the
// view's lazy re-ranking scan — batched parent Entries spans, filtered
// and renumbered into the view's prefix — ahead of the shard's
// evaluation while that evaluation's random accesses read the parent
// concurrently. The view's scan state is internally synchronized for
// exactly this pairing (the parent itself still only sees reads), and
// the spans land in the pipeline's spool uncounted, so the
// pay-on-delivery invariant holds under sharding too: per-shard Section
// 5 tallies are bit-identical to an unpipelined shard run, however deep
// the pipelines speculated. Fencing a shard closes its pipelines the
// usual way — no further source accesses once in-flight batches land,
// and a batch that lands after the fence is discarded, never delivered.
//
// # Error semantics: fallible sources
//
// A subsystem whose accesses can fail implements FallibleSource — the
// Try* variants of the two access modes — and Counted detects the
// capability at wrap time. Failures then obey three rules.
//
// First, failures are sticky and typed. The first failed access pins a
// *SourceError carrying the list index, the failing rank or object id,
// the access mode, and the attempt count; every later access to the
// list reports the same error, and the executors propagate it unchanged
// to the engine, so callers select on it with errors.As. Partial spans
// are absorbed before the error is pinned: however a caller batched its
// sorted requests, the failure lands on the first undelivered rank.
//
// Second, failure surfacing is demand-gated, mirroring pay-on-delivery.
// Readahead — Prefetch, the background pipelines, a concurrent
// executor's staging — swallows source failures: the partial span is
// kept, nothing is recorded, and the fault site re-fires if and when
// the algorithm actually demands the missing rank. Only consumption
// records a failure, so which faults surface is a property of what the
// algorithm consumed, invariant across Serial, Concurrent, Pipelined,
// and sharded execution — the executor-equivalence fuzz pins a
// permanent fault to the identical *SourceError under every executor,
// and a fault past the last demanded rank to no error at all.
//
// Third, recovery wraps below, not inside: Resilient adds per-site
// retries with jittered exponential backoff, per-access timeouts
// (abandoning wedged calls), and a circuit breaker (failing fast with
// *BreakerOpenError while open) around any Source, fallible or not.
// However many physical attempts a retried access took, it was ONE
// logical access and meters once — resilience, like readahead, is a
// transport detail invisible to the Section 5 tallies; a transient
// fault plan fully absorbed by retries yields bit-identical results
// and costs to a fault-free run. FaultSource provides the seeded,
// deterministic fault injection (site-keyed, so the faulty ranks are
// identical however accesses are batched or sharded) the tests and the
// fuzz harness drive all of this with.
//
// The package also provides realistic stand-ins for the subsystems the
// paper names: a relational predicate engine (0/1 grades, the
// Artist="Beatles" conjunct), a color-histogram similarity engine in the
// role of QBIC (AlbumColor="red"), and a token-overlap text scorer. Each
// evaluates an atomic query X = t into a Source.
package subsys
