// Package subsys models the subsystems a Garlic-style middleware talks
// to, and the only two ways it may talk to them (Section 4):
//
//   - sorted access: the subsystem streams its graded result set in
//     descending grade order, one object at a time;
//   - random access: the middleware asks for the grade of one given
//     object.
//
// Source is the minimal interface exposing both modes over a materialized
// result. Counted wraps a Source with the bookkeeping the cost model of
// Section 5 needs: it meters every access, memoizes grades the middleware
// has already seen (a repeated request costs nothing, matching the
// paper's "the grade has already been determined, so random access is not
// needed"), and exposes the sequential cursor semantics of sorted access.
//
// The package also provides realistic stand-ins for the subsystems the
// paper names: a relational predicate engine (0/1 grades, the
// Artist="Beatles" conjunct), a color-histogram similarity engine in the
// role of QBIC (AlbumColor="red"), and a token-overlap text scorer. Each
// evaluates an atomic query X = t into a Source.
package subsys
