package subsys

import (
	"sync"

	"fuzzydb/internal/gradedset"
)

// ShardRange is one contiguous slice [Lo, Hi) of the dense universe
// {0,…,N−1}: the unit of partitioned evaluation. Shards are disjoint and
// cover the universe, so every object belongs to exactly one shard.
type ShardRange struct {
	// Lo is the first global object id of the shard.
	Lo int
	// Hi is one past the last global object id of the shard.
	Hi int
}

// Len returns the number of objects in the shard.
func (r ShardRange) Len() int { return r.Hi - r.Lo }

// PlanShards splits the dense universe {0,…,n−1} into p contiguous
// ranges of near-equal size (the first n mod p shards hold one extra
// object). p < 1 is treated as 1, and p is clamped to n (floored at 1)
// so the plan never contains a zero-width trailing shard: every planned
// range is non-empty, and callers allocating a ShardView plus scratch
// per range never pay for shards that could not hold an object.
func PlanShards(n, p int) []ShardRange {
	if p < 1 {
		p = 1
	}
	if n < 0 {
		n = 0
	}
	if p > n {
		if p = n; p < 1 {
			p = 1 // empty universe: one empty range, not p of them
		}
	}
	out := make([]ShardRange, p)
	base, rem := n/p, n%p
	lo := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = ShardRange{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}

// ShardView is a re-ranked view of a parent source restricted to the
// objects of one contiguous range: the graded list the shard's subsystem
// would have produced had it only indexed those objects. Objects are
// renumbered to the local dense universe {0,…,Hi−Lo−1} (local id =
// global id − Lo), so the view reports a dense universe of its own and
// every downstream layer — pooled grade memos, flat-array scratch —
// stays on the fast path without any per-query O(N) copy of the parent.
//
// Sorted order is inherited: the view's rank order is the subsequence of
// the parent's canonical order (descending grade, ascending id on ties)
// whose objects fall in the range, discovered lazily by scanning the
// parent's entries forward as deeper local ranks are demanded. Because
// renumbering subtracts a constant, the parent's tie order restricted to
// the shard is exactly the canonical tie order on local ids.
//
// A view performs read-only operations on the parent (Entries, Grade),
// so the P views of one parent may be driven from P shard workers
// concurrently provided the parent is immutable under reads — true of
// ListSource and every built-in subsystem. The lazy re-ranking scan is
// internally synchronized, so a view tolerates concurrent reads itself:
// a background prefetch pipeline (Counted.StartPrefetch) may extend the
// view's sorted prefix from its worker goroutine while the shard's
// evaluation goroutine performs random accesses — the composed
// WithShards+WithPrefetch mode. Returned Entries spans stay valid
// across concurrent growth: the prefix only ever appends.
//
// The view assumes the parent honors the dense-universe contract
// (objects are exactly {0,…,N−1}); an out-of-range object would belong
// to no shard and silently vanish from every view. Wrap untrusted
// sources with Validated before sharding them.
type ShardView struct {
	parent    Source
	fparent   FallibleSource // non-nil when parent exposes the fallible face
	r         ShardRange
	parentLen int

	mu      sync.Mutex        // guards entries/scanned/cut (lazy re-ranking)
	entries []gradedset.Entry // local-id entries in shard rank order
	scanned int               // parent ranks examined so far
	cut     int               // future fills keep only local ids < cut (work stealing)
}

// NewShardView builds the shard's re-ranked view of parent.
func NewShardView(parent Source, r ShardRange) *ShardView {
	v := &ShardView{parent: parent, r: r, parentLen: parent.Len(), cut: r.Len()}
	if fp, ok := parent.(FallibleSource); ok {
		v.fparent = fp
	}
	return v
}

// ShardSources builds one view per parent source for the given range.
// A view over a fallible parent exposes the fallible face itself, so a
// per-shard Counted detects and routes around failures the same way an
// unsharded one does; fault sites stay keyed on the parent's global
// ranks and object ids.
func ShardSources(parents []Source, r ShardRange) []Source {
	out := make([]Source, len(parents))
	for i, p := range parents {
		v := NewShardView(p, r)
		if v.fparent != nil {
			out[i] = fallibleShardView{v}
		} else {
			out[i] = v
		}
	}
	return out
}

// Len implements Source: the number of objects in the shard.
func (s *ShardView) Len() int { return s.r.Len() }

// Universe implements UniverseHinter: a shard view is always dense over
// its local ids.
func (s *ShardView) Universe() (int, bool) { return s.r.Len(), true }

// fill extends the re-ranked prefix to at least n local entries (or the
// shard's end), scanning the parent's sorted entries forward in chunks
// sized to the expected stride between in-range objects. Callers hold
// s.mu.
func (s *ShardView) fill(n int) {
	if n > s.r.Len() {
		n = s.r.Len()
	}
	for len(s.entries) < n && s.scanned < s.parentLen {
		// Expected parent entries per in-range hit is parentLen/shardLen;
		// scan a chunk sized for the remaining deficit, floored so tiny
		// deficits still amortize the virtual call.
		deficit := n - len(s.entries)
		stride := (s.parentLen + s.r.Len() - 1) / s.r.Len()
		chunk := deficit * stride
		if chunk < 64 {
			chunk = 64
		}
		hi := s.scanned + chunk
		if hi > s.parentLen {
			hi = s.parentLen
		}
		for _, e := range s.parent.Entries(s.scanned, hi) {
			if local := e.Object - s.r.Lo; local >= 0 && local < s.cut {
				s.entries = append(s.entries, gradedset.Entry{Object: local, Grade: e.Grade})
			}
		}
		s.scanned = hi
	}
}

// Entry implements Source: the shard's entry at the given local rank.
func (s *ShardView) Entry(rank int) gradedset.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fill(rank + 1)
	return s.entries[rank]
}

// Entries implements Source: the shard's entries at local ranks
// [lo, hi). The returned slice must not be mutated. It remains valid
// under concurrent calls: growth only appends (within capacity it
// writes indices past every previously returned span; on reallocation
// the old backing array is left untouched).
func (s *ShardView) Entries(lo, hi int) []gradedset.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fill(hi)
	// A truncated view (see Truncate) holds fewer than r.Len() entries
	// once its parent is fully scanned: clamp instead of overrunning, so
	// the consumer sees a short span — the dry-stream signal.
	if n := len(s.entries); hi > n {
		hi = n
		if lo > hi {
			lo = hi
		}
	}
	return s.entries[lo:hi]
}

// Grade implements Source: random access by local id, translated to the
// parent's global id.
func (s *ShardView) Grade(obj int) float64 {
	return s.parent.Grade(obj + s.r.Lo)
}

// tryFill is the fallible twin of fill: it scans through the fallible
// parent, absorbing whatever partial spans arrive before a terminal
// failure, so the view's prefix ends exactly at the re-ranked entries
// the parent managed to deliver. Callers hold s.mu.
func (s *ShardView) tryFill(n int) error {
	if n > s.r.Len() {
		n = s.r.Len()
	}
	for len(s.entries) < n && s.scanned < s.parentLen {
		deficit := n - len(s.entries)
		stride := (s.parentLen + s.r.Len() - 1) / s.r.Len()
		chunk := deficit * stride
		if chunk < 64 {
			chunk = 64
		}
		hi := s.scanned + chunk
		if hi > s.parentLen {
			hi = s.parentLen
		}
		span, err := s.fparent.TryEntries(s.scanned, hi)
		for _, e := range span {
			if local := e.Object - s.r.Lo; local >= 0 && local < s.cut {
				s.entries = append(s.entries, gradedset.Entry{Object: local, Grade: e.Grade})
			}
		}
		s.scanned += len(span)
		if err != nil {
			return err
		}
	}
	return nil
}

// fallibleShardView is the fallible face of a ShardView over a fallible
// parent: ShardSources returns it so the per-shard Counted's capability
// check sees exactly what the parent offers.
type fallibleShardView struct{ *ShardView }

// TryEntry implements FallibleSource.
func (s fallibleShardView) TryEntry(rank int) (gradedset.Entry, error) {
	span, err := s.TryEntries(rank, rank+1)
	if len(span) == 1 {
		return span[0], err
	}
	return gradedset.Entry{}, err
}

// TryEntries implements FallibleSource: on a terminal parent failure it
// returns the local ranks obtained before the failure plus the error.
func (s fallibleShardView) TryEntries(lo, hi int) ([]gradedset.Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.tryFill(hi)
	if n := len(s.entries); hi > n {
		hi = n
		if lo > hi {
			lo = hi
		}
	}
	return s.entries[lo:hi], err
}

// TryGrade implements FallibleSource, translated to the parent's global
// id (so random fault sites are shard-independent).
func (s fallibleShardView) TryGrade(obj int) (float64, error) {
	return s.fparent.TryGrade(obj + s.r.Lo)
}

// Scanned reports how many parent ranks the lazy re-ranking has
// examined: the scan cost of the view so far (comparisons, not metered
// accesses). Exposed for tests and instrumentation.
func (s *ShardView) Scanned() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scanned
}

// Truncate narrows the view's future responsibility to the local ids
// below cut: entries already materialized are kept (removing them would
// re-rank a stream a consumer may have buffered), but every future fill
// delivers only ids < cut, so the view's sorted stream eventually runs
// dry instead of covering the ceded tail. The stream stays a valid
// descending-grade sequence: a subsequence of the parent's canonical
// order containing every id < cut, plus whatever ceded ids happened to
// be materialized already — a thief re-evaluates the ceded range
// [cut, Len()) in full, so the work-stealing driver filters this view's
// shard results to ids < cut before merging.
//
// cut only ever shrinks; a larger value is a no-op. Safe to call while
// other goroutines read the view (a prefetch pipeline mid-fill observes
// the new cut on its next chunk at the latest).
func (s *ShardView) Truncate(cut int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cut < 0 {
		cut = 0
	}
	if cut < s.cut {
		s.cut = cut
	}
}

// Cut reports the view's current local responsibility bound: r.Len()
// until Truncate shrinks it.
func (s *ShardView) Cut() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cut
}

// Filled reports how many re-ranked entries the view has materialized —
// the progress proxy a work-stealing driver uses to find the
// most-behind shard.
func (s *ShardView) Filled() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ViewsOf extracts the underlying *ShardView from sources built by
// ShardSources (plain views and their fallible faces alike); other
// source kinds yield nil at their index.
func ViewsOf(srcs []Source) []*ShardView {
	out := make([]*ShardView, len(srcs))
	for i, s := range srcs {
		switch v := s.(type) {
		case *ShardView:
			out[i] = v
		case fallibleShardView:
			out[i] = v.ShardView
		}
	}
	return out
}
