package subsys

import (
	"reflect"
	"testing"

	"fuzzydb/internal/gradedset"
)

// hotListOf builds an n-object list whose grade mass concentrates in
// the first `hot` ids — the skew shape sketches exist to resolve.
func hotListOf(t *testing.T, n, hot int) *gradedset.List {
	t.Helper()
	entries := make([]gradedset.Entry, n)
	for i := 0; i < n; i++ {
		g := 0.001 * float64(n-i) / float64(n)
		if i < hot {
			g = 0.9 - 0.4*float64(i)/float64(hot)
		}
		entries[i] = gradedset.Entry{Object: i, Grade: g}
	}
	return listOf(t, entries)
}

// TestSketchListEquiDepth pins the structural invariants of an exact
// sketch: cut boundaries ascending from 0 to N with one more cut than
// bucket, total mass equal to the list's, and buckets holding
// near-equal mass — so the hot region, where mass concentrates, is cut
// into far narrower id spans than the cold tail.
func TestSketchListEquiDepth(t *testing.T) {
	const n, hot = 4096, 256
	l := hotListOf(t, n, hot)
	s := SketchList(l)
	if s.N != n {
		t.Fatalf("N = %d, want %d", s.N, n)
	}
	if len(s.Cuts) != len(s.Mass)+1 {
		t.Fatalf("%d cuts for %d buckets", len(s.Cuts), len(s.Mass))
	}
	if s.Buckets() > DefaultSketchBuckets {
		t.Errorf("%d buckets, cap is %d", s.Buckets(), DefaultSketchBuckets)
	}
	if s.Cuts[0] != 0 || s.Cuts[len(s.Cuts)-1] != n {
		t.Errorf("cut span [%d, %d], want [0, %d]", s.Cuts[0], s.Cuts[len(s.Cuts)-1], n)
	}
	for i := 1; i < len(s.Cuts); i++ {
		if s.Cuts[i] <= s.Cuts[i-1] {
			t.Errorf("cuts not strictly ascending at %d: %v <= %v", i, s.Cuts[i], s.Cuts[i-1])
		}
	}
	var exact float64
	for id := 0; id < n; id++ {
		g, err := l.Grade(id)
		if err != nil {
			t.Fatal(err)
		}
		exact += g
	}
	if got := s.Total(); got < exact-1e-9 || got > exact+1e-9 {
		t.Errorf("Total = %v, exact mass %v", got, exact)
	}
	// Equi-depth: no bucket may hold more than its fair share plus one
	// grade (the single entry that tips the accumulator over).
	share := exact / float64(s.Buckets())
	for i, m := range s.Mass {
		if m > share+0.9+1e-9 {
			t.Errorf("bucket %d mass %v far above share %v", i, m, share)
		}
	}
	// Skew resolution: the hot prefix must be cut much finer than the
	// cold tail — its buckets average well under the even-split width.
	hotBuckets := 0
	for i := 0; i+1 < len(s.Cuts); i++ {
		if s.Cuts[i+1] <= hot {
			hotBuckets++
		}
	}
	if hotBuckets < s.Buckets()/2 {
		t.Errorf("only %d of %d buckets inside the hot prefix [0,%d)", hotBuckets, s.Buckets(), hot)
	}
}

// TestSketchMassBetween pins the interpolating range query: exact on
// bucket boundaries, additive over adjacent ranges, total over the full
// axis, zero on empty or inverted ranges, and clamped outside [0, N).
func TestSketchMassBetween(t *testing.T) {
	const n = 1000
	l := hotListOf(t, n, 100)
	s := SketchList(l)
	total := s.Total()
	if got := s.MassBetween(0, n); got < total-1e-9 || got > total+1e-9 {
		t.Errorf("MassBetween(0, n) = %v, Total = %v", got, total)
	}
	if got := s.MassBetween(-50, n+50); got < total-1e-9 || got > total+1e-9 {
		t.Errorf("clamped full range = %v, Total = %v", got, total)
	}
	if got := s.MassBetween(700, 700); got != 0 {
		t.Errorf("empty range mass %v", got)
	}
	if got := s.MassBetween(800, 300); got != 0 {
		t.Errorf("inverted range mass %v", got)
	}
	// Exact on a bucket boundary: mass of [0, Cuts[j]) is the sum of the
	// first j buckets.
	j := len(s.Mass) / 2
	var want float64
	for i := 0; i < j; i++ {
		want += s.Mass[i]
	}
	if got := s.MassBetween(0, s.Cuts[j]); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("prefix to cut %d = %v, bucket sum %v", j, got, want)
	}
	// Additivity at an arbitrary split point.
	for _, mid := range []int{1, 137, 500, 999} {
		a, b := s.MassBetween(0, mid), s.MassBetween(mid, n)
		if sum := a + b; sum < total-1e-9 || sum > total+1e-9 {
			t.Errorf("split at %d: %v + %v != %v", mid, a, b, total)
		}
	}
}

// TestSketchZeroMass: an all-zero list still partitions the axis (the
// planner needs boundaries even when there is nothing to weigh), with
// equal-width buckets and zero mass everywhere.
func TestSketchZeroMass(t *testing.T) {
	entries := make([]gradedset.Entry, 128)
	for i := range entries {
		entries[i] = gradedset.Entry{Object: i, Grade: 0}
	}
	s := SketchList(listOf(t, entries))
	if s.Total() != 0 {
		t.Errorf("Total = %v, want 0", s.Total())
	}
	if s.Cuts[0] != 0 || s.Cuts[len(s.Cuts)-1] != 128 {
		t.Errorf("cut span [%d, %d]", s.Cuts[0], s.Cuts[len(s.Cuts)-1])
	}
	for i := 1; i < len(s.Cuts); i++ {
		if s.Cuts[i] <= s.Cuts[i-1] {
			t.Errorf("cuts not ascending at %d: %v", i, s.Cuts)
		}
	}
	if got := s.MassBetween(0, 128); got != 0 {
		t.Errorf("mass %v over a zero list", got)
	}
}

// probeSource counts the raw accesses SampleSketch issues.
type probeSource struct {
	Source
	grades int
	sorted int
}

func (p *probeSource) Grade(obj int) float64 {
	p.grades++
	return p.Source.Grade(obj)
}

func (p *probeSource) Entry(rank int) gradedset.Entry {
	p.sorted++
	return p.Source.Entry(rank)
}

func (p *probeSource) Entries(lo, hi int) []gradedset.Entry {
	p.sorted += hi - lo
	return p.Source.Entries(lo, hi)
}

// TestSampleSketch pins the opaque-source path: a bounded burst of
// random probes and no sorted access at all (sketching must never
// disturb a source's sorted stream), deterministic across calls, and
// close enough to the exact sketch that range masses agree within the
// stride resolution.
func TestSampleSketch(t *testing.T) {
	const n = 4096
	l := hotListOf(t, n, 256)
	ps := &probeSource{Source: FromList(l)}
	s := SampleSketch(ps, 0)
	if ps.grades != DefaultSketchProbes {
		t.Errorf("%d random probes, want %d", ps.grades, DefaultSketchProbes)
	}
	if ps.sorted != 0 {
		t.Errorf("%d sorted accesses; sampling must use random access only", ps.sorted)
	}
	again := SampleSketch(FromList(l), 0)
	if !reflect.DeepEqual(s, again) {
		t.Error("SampleSketch is not deterministic across calls")
	}
	exact := SketchList(l)
	for _, r := range [][2]int{{0, 256}, {256, n}, {0, n / 2}, {n / 2, n}} {
		got, want := s.MassBetween(r[0], r[1]), exact.MassBetween(r[0], r[1])
		tol := 0.15*exact.Total() + 1e-9
		if got < want-tol || got > want+tol {
			t.Errorf("range %v: sampled mass %v, exact %v (tol %v)", r, got, want, tol)
		}
	}
	// More probes than objects clamps to one probe per object: exact.
	dense := SampleSketch(FromList(l), n*2)
	if got, want := dense.Total(), exact.Total(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("fully probed total %v, exact %v", got, want)
	}
}

// TestStaticGradeSketchCaching: a Static subsystem builds each target's
// sketch once, serves the cached pointer on every later request, and
// drops it when Set replaces the list. Unknown targets yield nil.
func TestStaticGradeSketchCaching(t *testing.T) {
	s := NewStatic("color", 512)
	s.Set("red", hotListOf(t, 512, 32))
	first := s.GradeSketch("red")
	if first == nil {
		t.Fatal("nil sketch for a registered target")
	}
	if s.GradeSketch("red") != first {
		t.Error("second request rebuilt the sketch instead of serving the cache")
	}
	if s.GradeSketch("blue") != nil {
		t.Error("sketch for an unknown target")
	}
	s.Set("red", hotListOf(t, 512, 256))
	second := s.GradeSketch("red")
	if second == first {
		t.Error("Set did not invalidate the cached sketch")
	}
	if second.MassBetween(0, 256) <= first.MassBetween(0, 256) {
		t.Error("fresh sketch does not reflect the replaced list")
	}
}

// TestWrapperSketchForwarding: the transport wrappers (latency, fault
// injection, resilience) move no grade mass, so each must forward the
// wrapped subsystem's exact cached sketch — a weighted shard plan, and
// with it the Section 5 tallies, must be identical with and without the
// wrapper in the stack.
func TestWrapperSketchForwarding(t *testing.T) {
	s := NewStatic("color", 512)
	s.Set("red", hotListOf(t, 512, 32))
	want := s.GradeSketch("red")
	if want == nil {
		t.Fatal("nil sketch from the base subsystem")
	}
	wrapped := map[string]GradeSketcher{
		"latency":   WithLatency(s, 0, 0),
		"faults":    WithFaults(s, FaultPlan{}),
		"resilient": WithResilience(s, Policy{}),
	}
	for name, gs := range wrapped {
		if got := gs.GradeSketch("red"); got != want {
			t.Errorf("%s wrapper did not forward the cached sketch", name)
		}
		if got := gs.GradeSketch("blue"); got != nil {
			t.Errorf("%s wrapper invented a sketch for an unknown target", name)
		}
	}
}

// TestMutableGradeSketchInvalidation: a Mutable subsystem's cached
// sketch survives reads and no-op updates, and is dropped by exactly
// the mutations that move grade mass — UpdateGrade and Set — so a
// planner never cuts the universe against stale distributions.
func TestMutableGradeSketchInvalidation(t *testing.T) {
	m := NewMutable("color", 256, 0)
	m.Set("red", hotListOf(t, 256, 16))
	first := m.GradeSketch("red")
	if first == nil {
		t.Fatal("nil sketch for a registered target")
	}
	if m.GradeSketch("red") != first {
		t.Error("read rebuilt the cached sketch")
	}
	// A no-op update moves no mass and must keep the cache (and epoch).
	g, err := m.Query("red")
	if err != nil {
		t.Fatal(err)
	}
	before := m.Epoch()
	if err := m.UpdateGrade("red", 0, g.Grade(0)); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != before {
		t.Error("no-op update bumped the epoch")
	}
	if m.GradeSketch("red") != first {
		t.Error("no-op update dropped the cached sketch")
	}
	// A real update drops the cache and the fresh sketch sees the move.
	if err := m.UpdateGrade("red", 200, 0.95); err != nil {
		t.Fatal(err)
	}
	second := m.GradeSketch("red")
	if second == first {
		t.Error("UpdateGrade did not invalidate the cached sketch")
	}
	if second.MassBetween(190, 210) <= first.MassBetween(190, 210) {
		t.Error("fresh sketch does not reflect the moved grade mass")
	}
	// Set replaces wholesale: cache dropped again.
	m.Set("red", hotListOf(t, 256, 128))
	if m.GradeSketch("red") == second {
		t.Error("Set did not invalidate the cached sketch")
	}
}
