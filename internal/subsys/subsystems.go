package subsys

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"fuzzydb/internal/gradedset"
)

// Subsystem evaluates atomic queries "Attribute = target" over a fixed
// object universe into graded Sources. One subsystem owns one attribute,
// as in the paper's running example: a relational engine owns Artist, a
// QBIC-like engine owns AlbumColor.
type Subsystem interface {
	// Attribute returns the attribute name this subsystem answers for.
	Attribute() string
	// Size returns the number of objects in the universe.
	Size() int
	// Query evaluates the atomic query Attribute = target.
	Query(target string) (Source, error)
}

// ErrUnknownTarget reports a target the subsystem cannot interpret.
var ErrUnknownTarget = errors.New("subsys: unknown target")

// --- Relational ---

// Relational is a traditional database subsystem: the grade of the atomic
// query X = t is 1 when the stored value equals the target and 0
// otherwise (Section 2). Ties are broken by object id.
type Relational struct {
	attr   string
	values []string
}

// NewRelational builds a relational subsystem over values[obj].
func NewRelational(attr string, values []string) *Relational {
	return &Relational{attr: attr, values: values}
}

// Attribute implements Subsystem.
func (r *Relational) Attribute() string { return r.attr }

// Size implements Subsystem.
func (r *Relational) Size() int { return len(r.values) }

// Selectivity returns the fraction of objects whose stored value equals
// the target — the statistic a relational optimizer keeps, and what a
// middleware planner needs to decide whether "evaluate the crisp
// conjunct first" beats the general algorithm (Section 4's opening
// discussion).
func (r *Relational) Selectivity(target string) float64 {
	if len(r.values) == 0 {
		return 0
	}
	count := 0
	for _, v := range r.values {
		if v == target {
			count++
		}
	}
	return float64(count) / float64(len(r.values))
}

// Query implements Subsystem. Matching is exact and case-sensitive.
func (r *Relational) Query(target string) (Source, error) {
	entries := make([]gradedset.Entry, len(r.values))
	for obj, v := range r.values {
		g := 0.0
		if v == target {
			g = 1
		}
		entries[obj] = gradedset.Entry{Object: obj, Grade: g}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		return nil, err
	}
	return FromList(l), nil
}

// --- Vector (QBIC stand-in) ---

// Vector simulates a content-based image retrieval engine such as QBIC:
// each object carries a feature vector (for example a color histogram),
// and the grade of X = t is a similarity in [0, 1] between the object's
// vector and a named target vector. This preserves the behavioural
// contract the paper assumes of QBIC — graded answers, sorted and random
// access — without the proprietary system.
type Vector struct {
	attr     string
	features [][]float64
	targets  map[string][]float64
}

// NewVector builds a vector subsystem over features[obj] with named query
// targets (e.g. "red" → a reference histogram).
func NewVector(attr string, features [][]float64, targets map[string][]float64) *Vector {
	return &Vector{attr: attr, features: features, targets: targets}
}

// Attribute implements Subsystem.
func (v *Vector) Attribute() string { return v.attr }

// Size implements Subsystem.
func (v *Vector) Size() int { return len(v.features) }

// AddTarget registers (or replaces) a named target vector.
func (v *Vector) AddTarget(name string, vec []float64) {
	v.targets[name] = vec
}

// Query implements Subsystem. The grade is 1/(1 + d) where d is the
// Euclidean distance between the object's feature vector and the target:
// 1 for a perfect match, decaying toward 0 as vectors diverge — the
// "closeness of colors" shape of QBIC's matching functions.
func (v *Vector) Query(target string) (Source, error) {
	tvec, ok := v.targets[target]
	if !ok {
		return nil, fmt.Errorf("%w: %q for attribute %q", ErrUnknownTarget, target, v.attr)
	}
	entries := make([]gradedset.Entry, len(v.features))
	for obj, f := range v.features {
		entries[obj] = gradedset.Entry{Object: obj, Grade: Similarity(f, tvec)}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		return nil, err
	}
	return FromList(l), nil
}

// QueryConjunction evaluates a conjunction of targets natively, under the
// subsystem's own semantics: the product of the per-target similarities
// rather than their min. This is deliberately different from the standard
// middleware rule — it models the Section 8 situation where a subsystem
// like QBIC has its own conjunction semantics, so pushing a conjunction
// down ("internal conjunction") may return different grades than
// evaluating the conjuncts separately and combining them with the
// middleware's rules ("external conjunction").
func (v *Vector) QueryConjunction(targets []string) (Source, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: empty conjunction for attribute %q", ErrUnknownTarget, v.attr)
	}
	tvecs := make([][]float64, len(targets))
	for i, name := range targets {
		tv, ok := v.targets[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q for attribute %q", ErrUnknownTarget, name, v.attr)
		}
		tvecs[i] = tv
	}
	entries := make([]gradedset.Entry, len(v.features))
	for obj, f := range v.features {
		g := 1.0
		for _, tv := range tvecs {
			g *= Similarity(f, tv)
		}
		entries[obj] = gradedset.Entry{Object: obj, Grade: g}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		return nil, err
	}
	return FromList(l), nil
}

// Similarity maps the Euclidean distance between two vectors into a grade
// in [0, 1]: 1/(1 + ‖a−b‖). Vectors of different lengths are compared on
// the shorter prefix with the excess counted as distance.
func Similarity(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var d2 float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		d2 += d * d
	}
	for i := n; i < len(a); i++ {
		d2 += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		d2 += b[i] * b[i]
	}
	return 1 / (1 + math.Sqrt(d2))
}

// --- Text ---

// Text simulates a text retrieval subsystem: each object carries a
// document, and the grade of X = t is a normalized token-overlap score
// between the document and the target phrase, weighted by inverse
// document frequency so rare terms count more.
type Text struct {
	attr string
	docs [][]string     // tokenized documents
	df   map[string]int // document frequency per token
}

// NewText builds a text subsystem over raw documents, tokenizing on
// whitespace and lowercasing.
func NewText(attr string, docs []string) *Text {
	t := &Text{attr: attr, docs: make([][]string, len(docs)), df: make(map[string]int)}
	for i, d := range docs {
		toks := Tokenize(d)
		t.docs[i] = toks
		seen := make(map[string]bool)
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				t.df[tok]++
			}
		}
	}
	return t
}

// Attribute implements Subsystem.
func (t *Text) Attribute() string { return t.attr }

// Size implements Subsystem.
func (t *Text) Size() int { return len(t.docs) }

// Query implements Subsystem. The score of a document is the
// IDF-weighted fraction of query tokens it contains, squashed into [0, 1].
func (t *Text) Query(target string) (Source, error) {
	qtoks := Tokenize(target)
	if len(qtoks) == 0 {
		return nil, fmt.Errorf("%w: empty query for attribute %q", ErrUnknownTarget, t.attr)
	}
	n := float64(len(t.docs))
	idf := func(tok string) float64 {
		return math.Log(1+n/float64(1+t.df[tok])) / math.Log(1+n)
	}
	var totalW float64
	for _, tok := range qtoks {
		totalW += idf(tok)
	}
	entries := make([]gradedset.Entry, len(t.docs))
	for obj, doc := range t.docs {
		has := make(map[string]bool, len(doc))
		for _, tok := range doc {
			has[tok] = true
		}
		var w float64
		for _, tok := range qtoks {
			if has[tok] {
				w += idf(tok)
			}
		}
		g := 0.0
		if totalW > 0 {
			g = w / totalW
		}
		entries[obj] = gradedset.Entry{Object: obj, Grade: gradedset.ClampGrade(g)}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		return nil, err
	}
	return FromList(l), nil
}

// Tokenize lowercases and splits on non-letter/digit boundaries.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	return strings.FieldsFunc(s, func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
}

// --- Static ---

// Static serves precomputed graded lists per target: the workhorse for
// tests and synthetic experiments where the grades come from a scoring
// database rather than a live engine.
type Static struct {
	attr    string
	n       int
	results map[string]*gradedset.List

	sketchMu sync.Mutex
	sketches map[string]*Sketch
}

// NewStatic builds a static subsystem over an n-object universe.
func NewStatic(attr string, n int) *Static {
	return &Static{
		attr:     attr,
		n:        n,
		results:  make(map[string]*gradedset.List),
		sketches: make(map[string]*Sketch),
	}
}

// Attribute implements Subsystem.
func (s *Static) Attribute() string { return s.attr }

// Size implements Subsystem.
func (s *Static) Size() int { return s.n }

// Set registers the graded list returned for target.
func (s *Static) Set(target string, l *gradedset.List) {
	s.results[target] = l
	s.sketchMu.Lock()
	delete(s.sketches, target)
	s.sketchMu.Unlock()
}

// GradeSketch implements GradeSketcher: the exact equi-depth sketch of
// the target's list, built on first request (one O(N) pass over the raw
// list — planning metadata, never metered) and cached until Set
// replaces the list. Unknown targets yield nil.
func (s *Static) GradeSketch(target string) *Sketch {
	s.sketchMu.Lock()
	defer s.sketchMu.Unlock()
	if sk, ok := s.sketches[target]; ok {
		return sk
	}
	l, ok := s.results[target]
	if !ok {
		return nil
	}
	sk := SketchList(l)
	s.sketches[target] = sk
	return sk
}

// Targets lists the registered targets in sorted order.
func (s *Static) Targets() []string {
	out := make([]string, 0, len(s.results))
	for t := range s.results {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Query implements Subsystem.
func (s *Static) Query(target string) (Source, error) {
	l, ok := s.results[target]
	if !ok {
		return nil, fmt.Errorf("%w: %q for attribute %q", ErrUnknownTarget, target, s.attr)
	}
	return FromList(l), nil
}
