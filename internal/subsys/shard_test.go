package subsys

import (
	"math/rand"
	"testing"

	"fuzzydb/internal/gradedset"
)

func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, p    int
		wantLen []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{7, 1, []int{7}},
		{5, 0, []int{5}},       // p < 1 behaves as 1
		{5, -2, []int{5}},      // ditto
		{3, 5, []int{1, 1, 1}}, // p > n: clamped, no zero-width trailing shards
		{1, 8, []int{1}},       // ditto, extreme
		{0, 2, []int{0}},       // empty universe: one empty range, not p of them
		{0, 0, []int{0}},
	}
	for _, tc := range cases {
		plan := PlanShards(tc.n, tc.p)
		if len(plan) != len(tc.wantLen) {
			t.Fatalf("PlanShards(%d,%d) = %d shards, want %d", tc.n, tc.p, len(plan), len(tc.wantLen))
		}
		lo := 0
		for i, r := range plan {
			if r.Lo != lo {
				t.Errorf("PlanShards(%d,%d)[%d].Lo = %d, want %d (contiguous cover)", tc.n, tc.p, i, r.Lo, lo)
			}
			if r.Len() != tc.wantLen[i] {
				t.Errorf("PlanShards(%d,%d)[%d].Len = %d, want %d", tc.n, tc.p, i, r.Len(), tc.wantLen[i])
			}
			lo = r.Hi
		}
		if lo != tc.n {
			t.Errorf("PlanShards(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.p, lo, tc.n)
		}
	}
}

// randomList builds a dense graded list with deterministic pseudo-random
// distinct grades.
func randomList(t *testing.T, n int, seed int64) *gradedset.List {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	entries := make([]gradedset.Entry, n)
	for i := range entries {
		entries[i] = gradedset.Entry{Object: i, Grade: rng.Float64()}
	}
	l, err := gradedset.NewList(entries)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestShardViewMatchesFilteredReference: a shard view's sorted order,
// grades, and random access must match the brute-force re-ranked
// restriction of the parent, under both rank-at-a-time and batched
// access, for every shard of several partitions.
func TestShardViewMatchesFilteredReference(t *testing.T) {
	const n = 211
	parent := FromList(randomList(t, n, 7))
	for _, p := range []int{1, 2, 3, 7, 50} {
		for _, r := range PlanShards(n, p) {
			// Brute-force reference: parent entries filtered to the range,
			// renumbered.
			var want []gradedset.Entry
			for _, e := range parent.Entries(0, n) {
				if e.Object >= r.Lo && e.Object < r.Hi {
					want = append(want, gradedset.Entry{Object: e.Object - r.Lo, Grade: e.Grade})
				}
			}
			v := NewShardView(parent, r)
			if v.Len() != len(want) {
				t.Fatalf("shard %v: Len = %d, want %d", r, v.Len(), len(want))
			}
			if u, dense := v.Universe(); !dense || u != r.Len() {
				t.Fatalf("shard %v: Universe = (%d,%v), want (%d,true)", r, u, dense, r.Len())
			}
			for rank, w := range want {
				if got := v.Entry(rank); got != w {
					t.Errorf("shard %v: Entry(%d) = %v, want %v", r, rank, got, w)
				}
			}
			// Batched access on a fresh view (exercises fill from scratch).
			v2 := NewShardView(parent, r)
			for lo := 0; lo < len(want); lo += 5 {
				hi := lo + 5
				if hi > len(want) {
					hi = len(want)
				}
				span := v2.Entries(lo, hi)
				for i, e := range span {
					if e != want[lo+i] {
						t.Errorf("shard %v: Entries(%d,%d)[%d] = %v, want %v", r, lo, hi, i, e, want[lo+i])
					}
				}
			}
			// Random access translates local ids to the parent's.
			for local := 0; local < r.Len(); local++ {
				if got, want := v.Grade(local), parent.Grade(local+r.Lo); got != want {
					t.Errorf("shard %v: Grade(%d) = %v, want %v", r, local, got, want)
				}
			}
		}
	}
}

// TestShardViewEmptyRange: a view over an empty slice is a valid
// zero-length source.
func TestShardViewEmptyRange(t *testing.T) {
	parent := FromList(randomList(t, 20, 9))
	v := NewShardView(parent, ShardRange{Lo: 8, Hi: 8})
	if v.Len() != 0 {
		t.Fatalf("Len = %d, want 0", v.Len())
	}
	if got := v.Entries(0, 0); len(got) != 0 {
		t.Errorf("Entries(0,0) = %v, want empty", got)
	}
	if u, dense := v.Universe(); !dense || u != 0 {
		t.Errorf("Universe = (%d,%v), want (0,true)", u, dense)
	}
}

// TestShardViewLazyScan: the re-ranking must not eagerly scan the whole
// parent — shallow ranks examine only a proportional prefix.
func TestShardViewLazyScan(t *testing.T) {
	const n = 10000
	parent := FromList(randomList(t, n, 11))
	v := NewShardView(parent, ShardRange{Lo: 0, Hi: n / 10})
	v.Entry(0)
	if v.Scanned() == 0 || v.Scanned() == n {
		t.Errorf("Scanned = %d after one rank; want a partial prefix scan", v.Scanned())
	}
	scanned := v.Scanned()
	v.Entry(0) // re-reading costs no further scanning
	if v.Scanned() != scanned {
		t.Errorf("Scanned grew to %d on a re-read", v.Scanned())
	}
}

// TestFenceClosesSortedStream: fencing a counted list makes every cursor
// report exhaustion and deliver nothing, without disturbing what was
// already delivered, the tallies, or random access.
func TestFenceClosesSortedStream(t *testing.T) {
	l := Count(FromList(randomList(t, 30, 13)))
	cu := NewCursor(l)
	for i := 0; i < 5; i++ {
		if _, ok := cu.Next(); !ok {
			t.Fatal("list ran out early")
		}
	}
	last := cu.LastGrade()
	l.Fence()
	if !l.Fenced() {
		t.Error("Fenced() = false after Fence")
	}
	if !cu.Exhausted() {
		t.Error("cursor not exhausted after fence")
	}
	if _, ok := cu.Next(); ok {
		t.Error("Next delivered past a fence")
	}
	if got := cu.NextBatch(10); got != nil {
		t.Errorf("NextBatch delivered %d entries past a fence", len(got))
	}
	if cu.LastGrade() != last {
		t.Errorf("LastGrade changed across fence: %v != %v", cu.LastGrade(), last)
	}
	if got := l.Cost(); got.Sorted != 5 {
		t.Errorf("sorted tally %d after fence, want 5", got.Sorted)
	}
	// Random access still works and still memoizes.
	g := l.Grade(29)
	if got := l.Cost(); got.Random != 1 {
		t.Errorf("random tally %d, want 1", got.Random)
	}
	if g2 := l.Grade(29); g2 != g || l.Cost().Random != 1 {
		t.Error("memo broken after fence")
	}
}
